// Command sharded-kv runs a 3-replica, 4-group sharded key-value store on
// the public abcast.Sharded API:
//
//  1. writes are routed to ordering groups by consistent-hashing their
//     keys — every replica routes every key identically, no coordination;
//  2. each group delivers its own total order, so writes to the same key
//     are serialized while unrelated keys order in parallel on 4
//     independent sequencers;
//  3. replica 1 crashes (every group at once, as a real process does) and
//     recovers from its one shared store; all groups replay;
//  4. the replicas' deterministic cross-group merges agree: a single
//     global sequence over all groups, reconstructed independently at
//     each replica.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/abcast"
)

const (
	n      = 3
	groups = 4
	writes = 40
)

type replica struct {
	proc *abcast.Sharded

	mu   sync.Mutex
	data map[string]string // key -> value, updated in delivery order
}

func (r *replica) apply(d abcast.Delivery) {
	key, val, ok := decode(d.Msg.Payload)
	if !ok {
		return
	}
	r.mu.Lock()
	r.data[key] = val
	r.mu.Unlock()
}

func encode(key, val string) []byte {
	return fmt.Appendf(nil, "%s=%s", key, val)
}

func decode(p []byte) (key, val string, ok bool) {
	for i, b := range p {
		if b == '=' {
			return string(p[:i]), string(p[i+1:]), true
		}
	}
	return "", "", false
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sharded-kv:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 16})
	defer net.Close()
	snet := abcast.NewShardedNetwork(net, groups)

	replicas := make([]*replica, n)
	stores := make([]abcast.Storage, n)
	for pid := 0; pid < n; pid++ {
		r := &replica{data: make(map[string]string)}
		replicas[pid] = r
		stores[pid] = abcast.NewMemStorage() // one shared store for all 4 groups
		proc, err := abcast.NewSharded(abcast.ShardedConfig{
			PID: abcast.ProcessID(pid), N: n,
			Protocol:  abcast.ProtocolOptions{PipelineDepth: 2},
			OnDeliver: r.apply, // one handler for all groups; d.Group tells them apart
		}, stores[pid], snet)
		if err != nil {
			return err
		}
		r.proc = proc
		if err := proc.Start(ctx); err != nil {
			return err
		}
		defer proc.Crash()
	}

	// Phase 1: route writes by key; remember each write's (group, id).
	fmt.Printf("== phase 1: %d writes routed over %d groups ==\n", writes, groups)
	type tracked struct {
		g  abcast.GroupID
		id abcast.MsgID
	}
	var acks []tracked
	spread := make(map[abcast.GroupID]int)
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("user:%d", i)
		g, id, err := replicas[i%n].proc.Broadcast(ctx, []byte(key), encode(key, fmt.Sprintf("v%d", i)))
		if err != nil {
			return fmt.Errorf("write %d: %w", i, err)
		}
		spread[g]++
		acks = append(acks, tracked{g, id})
	}
	if err := awaitAll(ctx, replicas, acks, func(t tracked, r *replica) bool {
		return r.proc.Delivered(t.g, t.id)
	}); err != nil {
		return err
	}
	fmt.Printf("   placement: %v\n", spread)

	// Phase 2: crash replica 1 wholesale, keep writing, recover it. These
	// writes pick their group explicitly (the other routing mode), which
	// also guarantees every group keeps deciding rounds — the merge
	// frontier in phase 3 only advances through rounds all groups decided.
	fmt.Println("== phase 2: crash replica 1, write through the survivors, recover ==")
	replicas[1].proc.Crash()
	for i := writes; i < writes+20; i++ {
		key := fmt.Sprintf("user:%d", i)
		g := abcast.GroupID(i % groups)
		id, err := replicas[0].proc.BroadcastTo(ctx, g, encode(key, fmt.Sprintf("v%d", i)))
		if err != nil {
			return fmt.Errorf("write %d: %w", i, err)
		}
		acks = append(acks, tracked{g, id})
	}
	// The crashed replica lost its volatile state; rebuild the application
	// map from re-deliveries during replay.
	replicas[1].mu.Lock()
	replicas[1].data = make(map[string]string)
	replicas[1].mu.Unlock()
	if err := replicas[1].proc.Start(ctx); err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	fmt.Println("   replica 1 recovered; all groups replayed")
	if err := awaitAll(ctx, replicas, acks, func(t tracked, r *replica) bool {
		return r.proc.Delivered(t.g, t.id)
	}); err != nil {
		return err
	}

	// Phase 3: every replica rebuilt the same state, and the deterministic
	// merges agree on one global sequence.
	fmt.Println("== phase 3: audit ==")
	for pid := 1; pid < n; pid++ {
		a, b := replicas[0], replicas[pid]
		a.mu.Lock()
		b.mu.Lock()
		same := len(a.data) == len(b.data)
		if same {
			for k, v := range a.data {
				if b.data[k] != v {
					same = false
					break
				}
			}
		}
		a.mu.Unlock()
		b.mu.Unlock()
		if !same {
			return fmt.Errorf("replica %d state diverged from replica 0", pid)
		}
	}
	merged0, _, rounds, ok := replicas[0].proc.Merged()
	if !ok {
		return fmt.Errorf("merge unavailable")
	}
	for pid := 1; pid < n; pid++ {
		m, _, _, ok := replicas[pid].proc.Merged()
		if !ok {
			return fmt.Errorf("merge unavailable at %d", pid)
		}
		short := merged0
		if len(m) < len(short) {
			short = m
		}
		for i := range short {
			if m[i].Group != merged0[i].Group || m[i].Msg.ID != merged0[i].Msg.ID {
				return fmt.Errorf("merged sequences disagree at %d", i)
			}
		}
	}
	st := replicas[0].proc.Stats()
	fmt.Printf("   %d replicas converged; merge frontier %d rounds, %d deliveries in the global sequence\n",
		n, rounds, len(merged0))
	fmt.Printf("   per-group rounds at replica 0: ")
	for g, gs := range st.PerGroup {
		fmt.Printf("g%d=%d ", g, gs.Rounds)
	}
	fmt.Printf("(total delivered %d)\n", st.Total.Delivered)
	fmt.Println("OK — sharded ordering with per-group total order and deterministic merge")
	return nil
}

func awaitAll[T any](ctx context.Context, replicas []*replica, items []T, done func(T, *replica) bool) error {
	for {
		all := true
	scan:
		for _, it := range items {
			for _, r := range replicas {
				if !done(it, r) {
					all = false
					break scan
				}
			}
		}
		if all {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}
