// Command tcp-cluster runs the full stack over real loopback TCP sockets
// with file-backed, CRC-framed stable storage — the deployment
// configuration rather than the simulation one. A process is crashed and
// recovered from its on-disk log to show that recovery works end-to-end
// through the production storage and transport engines.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/abcast"
)

const n = 3

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcp-cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	dir, err := os.MkdirTemp("", "abcast-tcp-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	addrs := []string{"127.0.0.1:42611", "127.0.0.1:42612", "127.0.0.1:42613"}
	net := abcast.NewTCPNetwork(addrs)

	procs := make([]*abcast.Process, n)
	stores := make([]abcast.Storage, n)
	for pid := 0; pid < n; pid++ {
		st, err := abcast.NewFileStorage(filepath.Join(dir, fmt.Sprintf("p%d", pid)), false)
		if err != nil {
			return err
		}
		stores[pid] = st
		procs[pid], err = abcast.NewProcess(abcast.Config{
			PID: abcast.ProcessID(pid),
			N:   n,
		}, st, net)
		if err != nil {
			return err
		}
		if err := procs[pid].Start(ctx); err != nil {
			return fmt.Errorf("start p%d: %w", pid, err)
		}
		defer procs[pid].Crash()
	}
	fmt.Printf("3 processes listening on %v, stable storage under %s\n", addrs, dir)

	var lastID abcast.MsgID
	for i := 0; i < 6; i++ {
		id, err := procs[i%n].Broadcast(ctx, []byte(fmt.Sprintf("tcp-msg-%d", i)))
		if err != nil {
			return fmt.Errorf("broadcast %d: %w", i, err)
		}
		lastID = id
	}
	fmt.Println("6 messages ordered over TCP")

	// Crash p2 (its sockets close; peers' sends to it start failing) and
	// recover it from the on-disk log.
	procs[2].Crash()
	fmt.Println("p2 crashed; recovering from file-backed storage...")
	if err := procs[2].Start(ctx); err != nil {
		return fmt.Errorf("recover p2: %w", err)
	}
	st := procs[2].Stats()
	fmt.Printf("p2 replayed %d rounds from disk\n", st.ReplayedRounds)

	// p2 must still hold the full order and keep participating.
	if !procs[2].Delivered(lastID) {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) && !procs[2].Delivered(lastID) {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !procs[2].Delivered(lastID) {
		return fmt.Errorf("p2 lost history across disk recovery")
	}
	if _, err := procs[2].Broadcast(ctx, []byte("after-recovery")); err != nil {
		return fmt.Errorf("post-recovery broadcast: %w", err)
	}
	_, suffix := procs[2].Sequence()
	fmt.Printf("p2 delivery sequence after recovery (%d messages):\n", len(suffix))
	for _, d := range suffix {
		fmt.Printf("  pos %d (round %d): %s\n", d.Pos, d.Round, d.Msg.Payload)
	}
	fmt.Println("disk + TCP recovery verified ✓")
	return nil
}
