// Command bank-ledger demonstrates §6.2: a deferred-update replicated
// database. Transfers between accounts execute optimistically against a
// local replica, then their read/write sets are atomically broadcast;
// every replica certifies them in the same total order, so conflicting
// transfers get the same commit/abort verdict everywhere and no money is
// ever created or destroyed — even across a replica crash and recovery.
//
// The sequencer replica additionally runs the latency fast path: a
// teller speculates on the tentative delivery order, issuing provisional
// receipts as soon as a transfer is predicted into the total order —
// before the round's consensus decision is durable — and upgrades them
// to final receipts only when OnConfirm certifies the prediction. A
// revoked prediction voids its provisional receipts; the transfer is not
// lost (it re-delivers in a later round), only the speculation is. The
// stable-sequencer lease keeps the confirmed path itself on the
// accept-only fast rounds.
package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/abcast"
)

const (
	n        = 3
	accounts = 4
	initial  = 1000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bank-ledger:", err)
		os.Exit(1)
	}
}

type bank struct {
	proc *abcast.Process
	kv   *abcast.KVStore
}

// teller is the sequencer-side speculator: it issues provisional
// receipts from the tentative stream and finalizes them on confirm.
// Externalizable state (finalized) only ever grows from confirmed
// positions; everything built on unconfirmed predictions stays in
// provisional and is discarded wholesale on revoke.
type teller struct {
	mu          sync.Mutex
	provisional map[uint64]string // pos -> txID, speculated but unconfirmed
	finalized   int
	voided      int
}

func newTeller() *teller {
	return &teller{provisional: make(map[uint64]string)}
}

func (t *teller) onTentative(d abcast.Delivery) {
	if tx, ok := abcast.DecodeTx(d.Msg.Payload); ok {
		t.mu.Lock()
		t.provisional[d.Pos] = tx.ID
		t.mu.Unlock()
	}
}

func (t *teller) onConfirm(_ abcast.GroupID, upTo uint64) {
	t.mu.Lock()
	for pos := range t.provisional {
		if pos < upTo {
			delete(t.provisional, pos)
			t.finalized++
		}
	}
	t.mu.Unlock()
}

func (t *teller) onRevoke(_ abcast.GroupID, from uint64) {
	t.mu.Lock()
	for pos := range t.provisional {
		if pos >= from {
			delete(t.provisional, pos)
			t.voided++
		}
	}
	t.mu.Unlock()
}

func (t *teller) stats() (pending, finalized, voided int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.provisional), t.finalized, t.voided
}

// transfer executes a deferred-update transaction moving amount from one
// account to another on the local replica, then broadcasts it for
// certification. It returns the replica-agreed verdict.
func (b *bank) transfer(ctx context.Context, txID, from, to string, amount int) (bool, error) {
	reads := b.kv.Begin(from, to)
	fromBal, _, _ := b.kv.Get(from)
	toBal, _, _ := b.kv.Get(to)
	fb, _ := strconv.Atoi(fromBal)
	tb, _ := strconv.Atoi(toBal)
	if fb < amount {
		return false, nil // insufficient funds: abort locally
	}
	tx := abcast.Tx{
		ID:    txID,
		Reads: reads,
		Writes: map[string]string{
			from: strconv.Itoa(fb - amount),
			to:   strconv.Itoa(tb + amount),
		},
	}
	if _, err := b.proc.Broadcast(ctx, abcast.EncodeTx(tx)); err != nil {
		return false, err
	}
	committed, known := b.kv.Outcome(txID)
	if !known {
		return false, fmt.Errorf("tx %s delivered but verdict unknown", txID)
	}
	return committed, nil
}

func (b *bank) total() int {
	sum := 0
	for a := 0; a < accounts; a++ {
		v, _, _ := b.kv.Get("acct:" + strconv.Itoa(a))
		x, _ := strconv.Atoi(v)
		sum += x
	}
	return sum
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 21, Loss: 0.02})
	defer net.Close()

	till := newTeller()
	banks := make([]*bank, n)
	for pid := 0; pid < n; pid++ {
		kv := abcast.NewKVStore()
		b := &bank{kv: kv}
		cfg := abcast.Config{
			PID:       abcast.ProcessID(pid),
			N:         n,
			OnDeliver: func(d abcast.Delivery) { kv.Apply(d) },
			// On recovery the basic protocol re-delivers the whole
			// history; the replica resets first.
			OnRestore: func(s abcast.Snapshot) { kv.Restore(s.App) },
			// The stable-sequencer lease keeps the durable commit path
			// on accept-only fast rounds while p0 stays up.
			Protocol: abcast.ProtocolOptions{Lease: true},
		}
		if pid == 0 {
			// p0 is the stable sequencer (PolicyLeader default), so only
			// it sees its predictions; the teller speculates on them.
			cfg.OnTentative = till.onTentative
			cfg.OnConfirm = till.onConfirm
			cfg.OnRevoke = till.onRevoke
		}
		var err error
		b.proc, err = abcast.NewProcess(cfg, abcast.NewMemStorage(), net)
		if err != nil {
			return err
		}
		if err := b.proc.Start(ctx); err != nil {
			return fmt.Errorf("start p%d: %w", pid, err)
		}
		defer b.proc.Crash()
		banks[pid] = b
	}

	// Seed the accounts through the total order.
	for a := 0; a < accounts; a++ {
		key := "acct:" + strconv.Itoa(a)
		if _, err := banks[0].proc.Broadcast(ctx, abcast.EncodePut(key, strconv.Itoa(initial))); err != nil {
			return err
		}
	}
	fmt.Printf("seeded %d accounts with %d each (total %d)\n", accounts, initial, accounts*initial)

	// Concurrent conflicting transfers from all replicas.
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed, aborted := 0, 0
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				from := "acct:" + strconv.Itoa((pid+i)%accounts)
				to := "acct:" + strconv.Itoa((pid+i+1)%accounts)
				txID := fmt.Sprintf("tx-p%d-%d", pid, i)
				ok, err := banks[pid].transfer(ctx, txID, from, to, 50)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: %v\n", txID, err)
					return
				}
				mu.Lock()
				if ok {
					committed++
				} else {
					aborted++
				}
				mu.Unlock()
			}
		}(pid)
	}
	wg.Wait()
	fmt.Printf("transfers: %d committed, %d aborted (conflicts detected identically everywhere)\n",
		committed, aborted)

	// Crash and recover a replica mid-flight, then verify convergence
	// and conservation of money on every replica.
	banks[1].proc.Crash()
	if err := banks[1].proc.Start(ctx); err != nil {
		return fmt.Errorf("recover p1: %w", err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		fp := banks[0].kv.Fingerprint()
		if banks[1].kv.Fingerprint() == fp && banks[2].kv.Fingerprint() == fp {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for pid := 0; pid < n; pid++ {
		total := banks[pid].total()
		c, a := banks[pid].kv.CommitStats()
		fmt.Printf("replica %d: total=%d committed=%d aborted=%d\n", pid, total, c, a)
		if total != accounts*initial {
			return fmt.Errorf("MONEY NOT CONSERVED at replica %d: %d", pid, total)
		}
	}
	fmt.Println("money conserved across crash, recovery and conflicts ✓")

	// The teller's speculative receipts: every provisional receipt must
	// have settled — finalized by a confirm or voided by a revoke — and
	// voided ones correspond to transfers that simply re-delivered later.
	// (The last round's confirm trails its delivery by a callback, so
	// give it a moment.)
	pending, finalized, voided := till.stats()
	for wait := time.Now().Add(5 * time.Second); pending > 0 && time.Now().Before(wait); {
		time.Sleep(5 * time.Millisecond)
		pending, finalized, voided = till.stats()
	}
	fmt.Printf("teller: %d receipts finalized early via tentative order, %d voided by revoke, %d pending\n",
		finalized, voided, pending)
	if pending > 0 {
		return fmt.Errorf("%d provisional receipts never settled", pending)
	}
	if finalized == 0 {
		return fmt.Errorf("speculation never engaged: no tentative transfer was confirmed")
	}
	return nil
}
