// Command quickstart runs three in-process group members, atomically
// broadcasts a handful of messages from different senders concurrently,
// and prints each process's delivery sequence — demonstrating that all of
// them agree on a single total order.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/abcast"
)

const n = 3

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One shared in-memory network; a fair-lossy channel with 5% loss to
	// show the protocol rides out an unreliable transport.
	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 1, Loss: 0.05})
	defer net.Close()

	var mu sync.Mutex
	orders := make([][]string, n)

	procs := make([]*abcast.Process, n)
	for pid := 0; pid < n; pid++ {
		pid := pid
		var err error
		procs[pid], err = abcast.NewProcess(abcast.Config{
			PID: abcast.ProcessID(pid),
			N:   n,
			OnDeliver: func(d abcast.Delivery) {
				mu.Lock()
				orders[pid] = append(orders[pid], string(d.Msg.Payload))
				mu.Unlock()
			},
		}, abcast.NewMemStorage(), net)
		if err != nil {
			return err
		}
		if err := procs[pid].Start(ctx); err != nil {
			return fmt.Errorf("start p%d: %w", pid, err)
		}
		defer procs[pid].Crash()
	}

	// Every process broadcasts concurrently; Broadcast returns once the
	// message has a place in the total order.
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				payload := fmt.Sprintf("p%d/msg%d", pid, i)
				if _, err := procs[pid].Broadcast(ctx, []byte(payload)); err != nil {
					fmt.Fprintf(os.Stderr, "broadcast %s: %v\n", payload, err)
					return
				}
			}
		}(pid)
	}
	wg.Wait()

	// Wait until everyone has delivered all 12 messages.
	for {
		mu.Lock()
		done := len(orders[0]) == 4*n && len(orders[1]) == 4*n && len(orders[2]) == 4*n
		mu.Unlock()
		if done {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Println("delivery sequences (identical at every process):")
	for pid := 0; pid < n; pid++ {
		fmt.Printf("  p%d: %v\n", pid, orders[pid])
	}
	for pid := 1; pid < n; pid++ {
		for i := range orders[0] {
			if orders[pid][i] != orders[0][i] {
				return fmt.Errorf("TOTAL ORDER VIOLATION at index %d", i)
			}
		}
	}
	fmt.Println("total order verified ✓")
	return nil
}
