// Command replicated-kv runs a 3-replica key-value store on top of the
// crash-recovery Atomic Broadcast (the software-replication pattern of the
// paper's introduction), then exercises the full §5 machinery:
//
//  1. writes flow while all replicas are up;
//  2. replica 2 crashes and misses many writes;
//  3. the survivors keep serving and take application-level checkpoints
//     (§5.2), garbage-collecting their logs;
//  4. replica 2 recovers: it cannot replay the garbage-collected rounds,
//     so a Δ-triggered state transfer (§5.3) ships it a snapshot;
//  5. all replicas converge to the same fingerprint.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/abcast"
)

const n = 3

type replica struct {
	proc  *abcast.Process
	store *abcast.KVStore
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replicated-kv:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 11})
	defer net.Close()

	replicas := make([]*replica, n)
	stores := make([]abcast.Storage, n)
	for pid := 0; pid < n; pid++ {
		pid := pid
		kv := abcast.NewKVStore()
		stores[pid] = abcast.NewMemStorage()
		replicas[pid] = &replica{store: kv}
		var err error
		replicas[pid].proc, err = abcast.NewProcess(abcast.Config{
			PID: abcast.ProcessID(pid),
			N:   n,
			Protocol: abcast.ProtocolOptions{
				CheckpointEvery: 5,
				Delta:           3,
				Checkpointer:    kv,
			},
			OnDeliver: func(d abcast.Delivery) { kv.Apply(d) },
			OnRestore: func(s abcast.Snapshot) { kv.Restore(s.App) },
		}, stores[pid], net)
		if err != nil {
			return err
		}
		if err := replicas[pid].proc.Start(ctx); err != nil {
			return fmt.Errorf("start p%d: %w", pid, err)
		}
		defer replicas[pid].proc.Crash()
	}

	put := func(from int, key, value string) error {
		_, err := replicas[from].proc.Broadcast(ctx, abcast.EncodePut(key, value))
		return err
	}

	// Phase 1: everyone up.
	fmt.Println("phase 1: writing with all replicas up")
	for i := 0; i < 5; i++ {
		if err := put(i%n, fmt.Sprintf("user:%d", i), fmt.Sprintf("alice-%d", i)); err != nil {
			return err
		}
	}

	// Phase 2: replica 2 crashes and misses writes.
	fmt.Println("phase 2: replica 2 crashes; survivors keep writing")
	replicas[2].proc.Crash()
	for i := 5; i < 30; i++ {
		if err := put(i%2, fmt.Sprintf("user:%d", i), fmt.Sprintf("bob-%d", i)); err != nil {
			return err
		}
	}

	// Phase 3: survivors checkpoint (folding state into app snapshots)
	// and GC their consensus logs.
	fmt.Println("phase 3: survivors checkpoint and garbage-collect")
	for pid := 0; pid < 2; pid++ {
		if err := replicas[pid].proc.CheckpointNow(); err != nil {
			return err
		}
	}

	// Phase 4: replica 2 recovers. Replay cannot cover the GC'd rounds;
	// the Δ rule ships it a state transfer instead.
	fmt.Println("phase 4: replica 2 recovers (state transfer expected)")
	if err := replicas[2].proc.Start(ctx); err != nil {
		return fmt.Errorf("recover p2: %w", err)
	}

	// Phase 5: wait for convergence.
	fmt.Println("phase 5: waiting for convergence")
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if replicas[2].store.Fingerprint() == replicas[0].store.Fingerprint() &&
			replicas[1].store.Fingerprint() == replicas[0].store.Fingerprint() &&
			replicas[0].store.Applied() >= 30 {
			st := replicas[2].proc.Stats()
			fmt.Printf("converged: %d keys, %d applied updates\n",
				replicas[2].store.Len(), replicas[2].store.Applied())
			fmt.Printf("replica 2 recovery: adopted %d state transfer(s), skipped %d messages, replayed %d rounds\n",
				st.StateAdopted, st.DeliveredByTransfer, st.ReplayedRounds)
			v, ver, _ := replicas[2].store.Get("user:29")
			fmt.Printf("spot check user:29 = %q (version %d) ✓\n", v, ver)
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("replicas never converged")
}
