package abcast_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/abcast"
)

// TestPublicAPIAppCheckpointAndStateTransfer drives the full §5 feature
// set through the public facade only: a replicated KV store with
// application checkpoints, garbage collection, and a Δ state transfer on
// recovery.
func TestPublicAPIAppCheckpointAndStateTransfer(t *testing.T) {
	const n = 3
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 99})
	defer net.Close()

	kvs := make([]*abcast.KVStore, n)
	procs := make([]*abcast.Process, n)
	for pid := 0; pid < n; pid++ {
		kv := abcast.NewKVStore()
		kvs[pid] = kv
		var err error
		procs[pid], err = abcast.NewProcess(abcast.Config{
			PID: abcast.ProcessID(pid),
			N:   n,
			Protocol: abcast.ProtocolOptions{
				CheckpointEvery: 4,
				Delta:           2,
				Checkpointer:    kv,
			},
			OnDeliver: func(d abcast.Delivery) { kv.Apply(d) },
			OnRestore: func(s abcast.Snapshot) { kv.Restore(s.App) },
		}, abcast.NewMemStorage(), net)
		if err != nil {
			t.Fatal(err)
		}
		if err := procs[pid].Start(ctx); err != nil {
			t.Fatal(err)
		}
		defer procs[pid].Crash()
	}

	procs[2].Crash()
	for i := 0; i < 25; i++ {
		if _, err := procs[0].Broadcast(ctx, abcast.EncodePut(fmt.Sprintf("k%d", i%6), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for pid := 0; pid < 2; pid++ {
		if err := procs[pid].CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	if err := procs[2].Start(ctx); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if kvs[2].Fingerprint() == kvs[0].Fingerprint() && kvs[0].Applied() >= 25 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if kvs[2].Fingerprint() != kvs[0].Fingerprint() {
		t.Fatal("replica 2 never converged after state transfer")
	}
	if procs[2].Stats().StateAdopted == 0 {
		t.Fatal("expected a state transfer through the public API")
	}
	base, _ := procs[2].Sequence()
	if base.Pos == 0 || base.App == nil {
		t.Fatalf("adopted base snapshot empty: %+v", base)
	}
}

// TestPublicAPIReducedConsensus exercises the §6.1 reduction through the
// facade.
func TestPublicAPIReducedConsensus(t *testing.T) {
	const n = 3
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 98})
	defer net.Close()

	cons := make([]*abcast.ReducedConsensus, n)
	procs := make([]*abcast.Process, n)
	for pid := 0; pid < n; pid++ {
		rc := abcast.NewReducedConsensus()
		cons[pid] = rc
		var err error
		procs[pid], err = abcast.NewProcess(abcast.Config{
			PID:       abcast.ProcessID(pid),
			N:         n,
			OnDeliver: func(d abcast.Delivery) { rc.Tap(d) },
		}, abcast.NewMemStorage(), net)
		if err != nil {
			t.Fatal(err)
		}
		if err := procs[pid].Start(ctx); err != nil {
			t.Fatal(err)
		}
		defer procs[pid].Crash()
	}
	// The facade exposes the node-level Protocol through Broadcast only;
	// the reduction needs the core protocol handle, so propose through
	// the payload directly: broadcast an encoded proposal and wait for
	// the tap to decide.
	// (Propose requires *core.Protocol; validate the decision path via
	// Tap + Decision instead.)
	want := []byte("decided-value")
	id, err := procs[1].Broadcast(ctx, encodeReductionProposal(7, want))
	if err != nil {
		t.Fatal(err)
	}
	_ = id
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := cons[0].Decision(7); ok {
			if string(v) != string(want) {
				t.Fatalf("decided %q", v)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("decision never reached p0's tap")
}

// encodeReductionProposal mirrors reduction's wire format (instance,
// value) for facade-level testing.
func encodeReductionProposal(instance uint64, v []byte) []byte {
	// varint(instance) + varint(len) + v — matches internal/wire.
	buf := make([]byte, 0, 16+len(v))
	buf = appendUvarint(buf, instance)
	buf = appendUvarint(buf, uint64(len(v)))
	return append(buf, v...)
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}
