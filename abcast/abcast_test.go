package abcast_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/abcast"
)

// group spins up n processes over one mem network with per-process
// delivery logs.
type group struct {
	procs []*abcast.Process
	mu    sync.Mutex
	logs  [][]abcast.MsgID
}

func newGroup(t *testing.T, n int, proto abcast.ProtocolOptions) *group {
	t.Helper()
	g := &group{logs: make([][]abcast.MsgID, n)}
	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 7})
	t.Cleanup(net.Close)
	for pid := 0; pid < n; pid++ {
		pid := pid
		st := abcast.NewMemStorage()
		p := abcast.NewProcess(abcast.Config{
			PID:      abcast.ProcessID(pid),
			N:        n,
			Protocol: proto,
			OnDeliver: func(d abcast.Delivery) {
				g.mu.Lock()
				g.logs[pid] = append(g.logs[pid], d.Msg.ID)
				g.mu.Unlock()
			},
		}, st, net)
		g.procs = append(g.procs, p)
	}
	t.Cleanup(func() {
		for _, p := range g.procs {
			p.Crash()
		}
	})
	return g
}

func TestPublicAPIBasicRoundTrip(t *testing.T) {
	g := newGroup(t, 3, abcast.ProtocolOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, p := range g.procs {
		if err := p.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	id, err := g.procs[0].Broadcast(ctx, []byte("public api"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, p := range g.procs {
			if !p.Delivered(id) {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(time.Millisecond)
	}
	_, suffix := g.procs[2].Sequence()
	if len(suffix) != 1 || suffix[0].Msg.ID != id {
		t.Fatalf("sequence: %v", suffix)
	}
	if g.procs[0].Round() == 0 {
		t.Fatal("round never advanced")
	}
	if g.procs[0].Stats().Broadcasts != 1 {
		t.Fatal("stats not counted")
	}
}

func TestPublicAPICrashRecover(t *testing.T) {
	g := newGroup(t, 3, abcast.ProtocolOptions{CheckpointEvery: 3, Delta: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, p := range g.procs {
		if err := p.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := g.procs[0].Broadcast(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	g.procs[1].Crash()
	if g.procs[1].Up() {
		t.Fatal("crashed process reports up")
	}
	if err := g.procs[1].Start(ctx); err != nil {
		t.Fatal(err)
	}
	if !g.procs[1].Up() {
		t.Fatal("recovered process reports down")
	}
	id, err := g.procs[1].Broadcast(ctx, []byte("after recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.procs[1].Delivered(id) {
		t.Fatal("broadcast returned but not delivered")
	}
}
