package abcast_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/abcast"
	"repro/internal/storage"
)

// group spins up n processes over one mem network with per-process
// delivery logs.
type group struct {
	procs []*abcast.Process
	mu    sync.Mutex
	logs  [][]abcast.MsgID
}

func newGroup(t *testing.T, n int, proto abcast.ProtocolOptions) *group {
	t.Helper()
	g := &group{logs: make([][]abcast.MsgID, n)}
	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 7})
	t.Cleanup(net.Close)
	for pid := 0; pid < n; pid++ {
		pid := pid
		st := abcast.NewMemStorage()
		p, err := abcast.NewProcess(abcast.Config{
			PID:      abcast.ProcessID(pid),
			N:        n,
			Protocol: proto,
			OnDeliver: func(d abcast.Delivery) {
				g.mu.Lock()
				g.logs[pid] = append(g.logs[pid], d.Msg.ID)
				g.mu.Unlock()
			},
		}, st, net)
		if err != nil {
			t.Fatal(err)
		}
		g.procs = append(g.procs, p)
	}
	t.Cleanup(func() {
		for _, p := range g.procs {
			p.Crash()
		}
	})
	return g
}

func TestPublicAPIBasicRoundTrip(t *testing.T) {
	g := newGroup(t, 3, abcast.ProtocolOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, p := range g.procs {
		if err := p.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	id, err := g.procs[0].Broadcast(ctx, []byte("public api"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, p := range g.procs {
			if !p.Delivered(id) {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(time.Millisecond)
	}
	_, suffix := g.procs[2].Sequence()
	if len(suffix) != 1 || suffix[0].Msg.ID != id {
		t.Fatalf("sequence: %v", suffix)
	}
	if g.procs[0].Round() == 0 {
		t.Fatal("round never advanced")
	}
	if g.procs[0].Stats().Broadcasts != 1 {
		t.Fatal("stats not counted")
	}
}

func TestPublicAPICrashRecover(t *testing.T) {
	g := newGroup(t, 3, abcast.ProtocolOptions{CheckpointEvery: 3, Delta: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, p := range g.procs {
		if err := p.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := g.procs[0].Broadcast(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	g.procs[1].Crash()
	if g.procs[1].Up() {
		t.Fatal("crashed process reports up")
	}
	if err := g.procs[1].Start(ctx); err != nil {
		t.Fatal(err)
	}
	if !g.procs[1].Up() {
		t.Fatal("recovered process reports down")
	}
	id, err := g.procs[1].Broadcast(ctx, []byte("after recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.procs[1].Delivered(id) {
		t.Fatal("broadcast returned but not delivered")
	}
}

// TestPublicAPIWALStorage runs the pipelined+batched stack over the
// group-commit WAL engine through the public API, with the durability
// policy set via ProtocolOptions (SyncEvery / MaxSyncDelay), and exercises
// a crash-faithful recovery: the crashed process's WAL is CLOSED and
// reopened from disk, so the recovered incarnation sees exactly the
// durable prefix (the reopened engine's replay of the segment files), not
// a surviving in-memory index.
func TestPublicAPIWALStorage(t *testing.T) {
	const n = 3
	dir := t.TempDir()
	g := &group{logs: make([][]abcast.MsgID, n)}
	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 9})
	t.Cleanup(net.Close)
	proto := abcast.ProtocolOptions{
		PipelineDepth:    4,
		BatchedBroadcast: true,
		IncrementalLog:   true,
		MaxBatchDelay:    200 * time.Microsecond,
		SyncEvery:        32,
		MaxSyncDelay:     300 * time.Microsecond,
	}
	stores := make([]*storage.WAL, n)
	for pid := 0; pid < n; pid++ {
		pid := pid
		st, err := abcast.NewWALStorage(fmt.Sprintf("%s/p%d", dir, pid), abcast.WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		stores[pid] = st
		p, err := abcast.NewProcess(abcast.Config{
			PID:      abcast.ProcessID(pid),
			N:        n,
			Protocol: proto,
			OnDeliver: func(d abcast.Delivery) {
				g.mu.Lock()
				g.logs[pid] = append(g.logs[pid], d.Msg.ID)
				g.mu.Unlock()
			},
		}, st, net)
		if err != nil {
			t.Fatal(err)
		}
		g.procs = append(g.procs, p)
	}
	t.Cleanup(func() {
		for _, p := range g.procs {
			p.Crash()
		}
		for _, st := range stores {
			st.Close()
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, p := range g.procs {
		if err := p.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	var ids []abcast.MsgID
	for i := 0; i < 12; i++ {
		id, err := g.procs[i%n].Broadcast(ctx, []byte(fmt.Sprintf("wal%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Crash p1 and lose its volatile state for real: close the WAL (the
	// un-fsynced queue dies with it) and rebuild the process over a fresh
	// engine opened from the segment files alone.
	g.procs[1].Crash()
	if err := stores[1].Close(); err != nil {
		t.Fatal(err)
	}
	st1, err := abcast.NewWALStorage(fmt.Sprintf("%s/p%d", dir, 1), abcast.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stores[1] = st1
	g.procs[1], err = abcast.NewProcess(abcast.Config{
		PID:      1,
		N:        n,
		Protocol: proto,
		OnDeliver: func(d abcast.Delivery) {
			g.mu.Lock()
			g.logs[1] = append(g.logs[1], d.Msg.ID)
			g.mu.Unlock()
		},
	}, st1, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.procs[1].Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Every batched broadcast that returned must eventually be delivered
	// by the recovered process too.
	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for !g.procs[1].Delivered(id) {
			if time.Now().After(deadline) {
				t.Fatalf("recovered process never delivered %v", id)
			}
			time.Sleep(time.Millisecond)
		}
	}
	id, err := g.procs[1].Broadcast(ctx, []byte("after recovery"))
	if err != nil {
		t.Fatal(err)
	}
	for !g.procs[1].Delivered(id) {
		if time.Now().After(deadline) {
			t.Fatal("post-recovery broadcast never delivered")
		}
		time.Sleep(time.Millisecond)
	}
}
