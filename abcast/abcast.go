// Package abcast is the public API of the crash-recovery Atomic Broadcast
// library — a reproduction of Rodrigues & Raynal, "Atomic Broadcast in
// Asynchronous Crash-Recovery Distributed Systems" (ICDCS 2000).
//
// # Overview
//
// A Process is one member of a static group. Messages submitted with
// Broadcast are delivered by every good process in the same total order,
// even though processes may crash, lose their volatile memory and the
// messages that arrived while they were down, and later recover from
// stable storage.
//
// The zero configuration runs the paper's basic protocol (Fig. 2), whose
// only stable-storage writes are the Consensus proposals. The alternative
// protocol of §5 is enabled piecewise through Config (checkpointing, state
// transfer, batched broadcast, incremental logging, application
// checkpoints).
//
// # Pipelining and adaptive batching
//
// Beyond the paper, the ordering hot path can be pipelined and batched:
//
//   - ProtocolOptions.PipelineDepth > 1 keeps several consensus rounds in
//     flight at once — round k+1 is proposed while round k's decision is
//     still outstanding. Decided batches always commit in round order, so
//     the total order is exactly the sequential protocol's; recovery
//     replays (or skips, via state transfer) in-flight rounds from the
//     consensus log.
//   - MaxBatch / MaxBatchBytes / MaxBatchDelay control adaptive batching:
//     pending messages aggregate into one proposal until the batch is full
//     (size triggers) or the oldest pending message has waited
//     MaxBatchDelay (time trigger), whichever comes first.
//
// Combining BatchedBroadcast with PipelineDepth 4 and a small MaxBatchDelay
// is the recommended high-throughput configuration; see the E14 experiment
// (cmd/abcast-bench -exp E14).
//
// # Group-commit durable logging
//
// On durable deployments the storage layer has the same shape of knob:
// NewWALStorage returns a group-commit write-ahead log that coalesces the
// log writes of all in-flight rounds and concurrent Broadcast calls into
// one fsync (SyncEvery / MaxSyncDelay in ProtocolOptions), at durability
// identical to sync-per-write NewFileStorage. The protocol issues its
// persists asynchronously and acts on each only once the covering fsync
// completes, as the paper's crash-recovery model requires (§2.1, §5.5);
// see the E15 experiment for the throughput margin.
//
// # Adaptive tuning
//
// Every knob above — pipeline depth, batch delay, group-commit triggers —
// is a static compromise across workload phases. ProtocolOptions.Adaptive
// replaces the compromise with a closed loop: a per-process controller
// observes the observability plane's signals (batch seal causes, pipeline
// occupancy, ordering backlog, quorum latency, fsync amortization) every
// epoch and continuously moves MaxBatchDelay, the live pipeline window
// and the WAL group-commit policy between a latency-lean operating point
// (idle traffic) and a throughput-lean one (bursts). When Adaptive is on,
// the static options become the controller's BOUNDS — PipelineDepth caps
// the live depth, MaxBatchDelay caps the batching window, SyncEvery /
// MaxSyncDelay cap the fsync amortization — and TuneOptions can override
// any bound explicitly. When it is off, no controller exists and the
// static options mean exactly what they always did. Decisions are
// exported as abcast.tune.* metrics and flight-recorder events; see the
// README's "Adaptive tuning" section and experiment E21 for when a static
// configuration is still preferable.
//
// # Sharded multi-group ordering
//
// Past the single sequencer's ceiling (PipelineDepth x MaxBatch messages
// per consensus round trip), Sharded runs G independent ordering groups —
// the paper's protocol instantiated G times — behind one API, one
// multiplexed connection set (NewShardedNetwork) and one shared store
// whose group-commit fsyncs all groups share. Keys are placed on groups
// by a deterministic consistent-hash Router (or explicitly); each group
// delivers its own total order, and Merged computes an optional
// deterministic global interleave. See the README's "Sharding" section
// for ordering guarantees and caveats, and experiment E16 for scaling.
//
// # Log lifecycle
//
// Long-lived deployments keep their state bounded end to end. In merged
// mode, ShardedConfig.MergedDelivery gates every group's checkpoint fold
// by the process-wide merge frontier, so application checkpointing
// (§5.2) now composes with the cross-group merge; Sharded.MergeCursor
// streams the global sequence online and incrementally where Merged
// recomputes it per call. On disk, WALOptions.CompactFactor enables
// background segment compaction: the WAL rewrites its live state into a
// fresh segment (group-committed before the old segments are unlinked,
// so every crash point replays to the same index) and reclaims the dead
// records that checkpointing leaves behind. Experiment E18 measures
// both. An idle group does not stall any of this: in merged mode the
// quiescent group's sequencer proposes empty heartbeat rounds after a
// bounded idle interval (ProtocolOptions.IdleHeartbeat), so the merge
// frontier — and every group's checkpoint reclamation behind it —
// keeps advancing without traffic on every group.
//
// # Latency fast path
//
// Two independent knobs cut commit latency below full consensus plus an
// fsync per round:
//
//   - Config.OnTentative enables optimistic delivery: the sequencer emits
//     each locally proposed batch in predicted total order BEFORE the
//     round's consensus decision is durable, then certifies the prediction
//     with OnConfirm (it matched the agreed order — externalize now) or
//     retracts it with OnRevoke (a competing batch or state transfer won —
//     discard the speculative suffix; the messages re-deliver later). The
//     OnDeliver stream stays authoritative and unchanged; speculate on
//     tentative deliveries, externalize only on confirm.
//   - ProtocolOptions.Lease grants the stable sequencer a quorum lease (a
//     ranged promise, multi-Paxos style): while the same process keeps
//     proposing, each round skips the prepare phase entirely and runs
//     accept-only at the lease ballot. FD suspicion, a competitor's higher
//     ballot, or LeaseTTL expiry falls back to full consensus. Safety
//     rests on ballots and quorum intersection, never on clocks, so the
//     §2.1 crash-recovery durability contract is preserved verbatim.
//
// Experiment E19 measures both (tentative vs confirmed p50/p99, leased vs
// unleased, mem and TCP transports); the README's "Latency" section covers
// the contract and when not to enable optimism.
//
// # Dissemination
//
// By default the sequencer's proposals carry full payloads, so every
// ordered byte crosses the network O(N) times from one process (the
// consensus coordinator fans the decided value out to all members). Past
// a few KiB per message that egress link is the throughput ceiling.
// ProtocolOptions.RingDissem splits ordering from dissemination: payloads
// stream around a successor ring derived from the failure detector's
// membership (each process forwards to one live successor, so per-process
// egress is O(1) in N), while consensus orders only ID+checksum vectors.
// Delivery is gated on "ID ordered AND payload present": a decided ID
// whose payload has not arrived yet parks the delivery cursor and issues
// a targeted pull over the digest-gossip repair path; the cursor advances
// the moment the payload lands, so loss or a crashed ring successor costs
// latency, never safety. The ring heals around suspects automatically,
// and recovery is unchanged — the unordered log persists payloads
// locally, so replay re-resolves decided ID vectors against it.
//
// RingDissem changes the proposal wire format: every process of a
// deployment must enable it together (it forces DigestGossip on). Enable
// it when payloads are large (>= a few KiB) and throughput-bound; leave
// it off for small-message or latency-critical workloads — the ring hop
// chain adds a relay latency proportional to N before the last member
// holds the payload. Experiment E20 measures the crossover.
//
// # Elastic resharding
//
// The group count G is no longer fixed at construction: Sharded.AddGroup
// grows a running cluster and Sharded.RetireGroup drains and removes a
// group, both under load and without restarting any process. Transitions
// are coordinated through the ordering machinery itself — a JOIN or SEAL
// marker is broadcast as an ordinary agreed round, so every process
// observes the topology change at the same point in every group's total
// order. AddGroup is called on ONE process (the marker replicates the
// decision); RetireGroup is called on EVERY process (each must stand up
// nothing, only locally drain) and is idempotent — ErrSealed from a
// concurrent caller means the retirement is already underway. A sealed
// group stops accepting proposals, finishes a bounded drain window (the
// maximum pipeline depth, so every in-flight round lands), re-injects
// orphaned messages into surviving groups under remapped identities, and
// archives its namespace to stable storage (ReapRetired deletes the
// archives once they are no longer wanted). Each transition bumps a
// topology epoch; the consistent-hash router swaps atomically under the
// epoch, Broadcast transparently re-routes keys addressed to a sealed
// group, and the merged cursor splices the epochs deterministically — the
// global sequence is identical on every process across the transition.
//
// Resharding folds in a cluster-wide GC floor: every group's digest
// gossip carries the process's durable (checkpoint-covered) merge
// frontier, and checkpoint folds discard consensus state only below the
// cluster-wide minimum, capped by ShardedConfig.MergeFloorStaleness. A
// process that recovers within the cap therefore finds every round it
// still needs and never takes a GC-forced state transfer. Experiment E22
// measures a live G=2->4 scale-out under load (throughput ~2x, guarded
// in CI) and the drain cost of a live retirement; the README's "Elastic
// resharding" section covers the API contract and failure semantics.
//
// # Shared process services
//
// A sharded process's background costs do not scale with G: one
// process-level failure detector serves every group through per-group
// facades (the paper's liveness oracle is per process, §3.5 — the groups
// of a process crash and recover together), DigestGossip replaces
// periodic full-payload gossip with message-ID digests plus pull-based
// repair, and NewShardedNetworkOpts coalesces small frames from all
// groups into single transport writes (the network twin of the WAL's
// group-commit). Experiment E17 measures the background cost vs G; the
// README's "Performance tuning" section covers the knobs.
//
// # Quickstart
//
//	net := abcast.NewMemNetwork(3, abcast.MemNetOptions{})
//	for pid := 0; pid < 3; pid++ {
//		p, _ := abcast.NewProcess(abcast.Config{
//			PID: abcast.ProcessID(pid), N: 3,
//			OnDeliver: func(d abcast.Delivery) { fmt.Println(d.Msg) },
//		}, abcast.NewMemStorage(), net)
//		p.Start(ctx)
//	}
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package abcast

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/node"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/tune"
)

// Re-exported identity types.
type (
	// ProcessID identifies a group member (0..N-1).
	ProcessID = ids.ProcessID
	// MsgID is a globally unique message identity.
	MsgID = ids.MsgID
	// Message is an application message with its identity.
	Message = msg.Message
	// Delivery is an A-delivered message with its agreed position.
	Delivery = core.Delivery
	// Snapshot is an application-level checkpoint (§5.2).
	Snapshot = core.Snapshot
	// Checkpointer is the A-checkpoint upcall interface (Fig. 5).
	Checkpointer = core.Checkpointer
	// Stats exposes broadcast-layer counters.
	Stats = core.Stats
)

// Network abstracts the transport (in-memory simulation or TCP).
type Network = transport.Network

// MemNetOptions configures the simulated network.
type MemNetOptions = transport.MemOptions

// Storage is the stable-storage interface processes persist into.
type Storage = storage.Stable

// ConsensusPolicy selects the consensus engine's coordinator style.
type ConsensusPolicy = consensus.Policy

// FDOptions tunes the failure detector's heartbeat interval and suspicion
// timeout. Lower values suspect (and hand off coordination) faster at the
// cost of more background traffic and a higher false-suspicion risk on a
// jittery network.
type FDOptions = fd.Options

// Consensus coordinator policies: PolicyLeader follows an Ω leader hint
// (ACT-style [1]); PolicyRotating rotates coordinators (HMR-style [11]).
const (
	PolicyLeader   = consensus.PolicyLeader
	PolicyRotating = consensus.PolicyRotating
)

// Config assembles one process. Unset durations use library defaults tuned
// for LAN-like latencies.
type Config struct {
	// PID and N identify the process within its static group.
	PID ProcessID
	N   int

	// Protocol selects the broadcast options; its zero value is the
	// paper's basic protocol.
	Protocol ProtocolOptions

	// Policy selects the consensus coordinator policy (default
	// PolicyLeader).
	Policy ConsensusPolicy

	// FD tunes the failure detector (zero values use library defaults).
	FD FDOptions

	// OnDeliver receives every A-delivered message in order (including
	// re-deliveries during recovery replay).
	OnDeliver func(Delivery)
	// OnRestore is invoked when the process adopts a checkpoint or
	// state transfer instead of replaying.
	OnRestore func(Snapshot)
	// OnTentative enables the optimistic-delivery fast path: deliveries
	// with Tentative set arrive in predicted total order before the
	// round's consensus decision is durable. Speculate on them; hold
	// externalization until the covering OnConfirm. OnDeliver remains the
	// authoritative stream either way. See the package comment's "Latency
	// fast path" section.
	OnTentative func(Delivery)
	// OnConfirm certifies the tentative stream of group g up to (but not
	// including) position upToPos: the predictions matched the agreed
	// order, their authoritative OnDeliver calls have fired, and their
	// effects may be externalized. Fires only once the confirming round's
	// decision is durable.
	OnConfirm func(g GroupID, upToPos uint64)
	// OnRevoke retracts every unconfirmed tentative delivery (all at
	// positions >= fromPos): discard the speculative state built on them
	// and rebuild from the confirmed OnDeliver stream. Revoked messages
	// are not lost — they re-deliver (and re-predict) in a later round.
	OnRevoke func(g GroupID, fromPos uint64)
}

// ProtocolOptions mirrors the §5 alternative-protocol knobs plus the
// ordering hot-path options (round pipelining and adaptive batching).
type ProtocolOptions struct {
	// CheckpointEvery logs (k, Agreed) every so many rounds (§5.1);
	// 0 disables checkpointing (basic protocol).
	CheckpointEvery int
	// Delta enables state transfer when a process lags more than Delta
	// rounds (§5.3); 0 disables it.
	Delta uint64
	// BatchedBroadcast returns from Broadcast after logging the
	// Unordered set, before ordering (§5.4).
	BatchedBroadcast bool
	// IncrementalLog logs only new Unordered entries (§5.5).
	IncrementalLog bool
	// Checkpointer enables application-level checkpoints (§5.2).
	Checkpointer Checkpointer

	// GossipInterval is the period of the background gossip task (zero
	// uses the library default, 20ms). Gossip repetition is what makes
	// dissemination fair-lossy-proof; shorter intervals spread messages
	// and round news faster at more background traffic.
	GossipInterval time.Duration
	// GossipMaxMessages caps the unordered messages advertised per gossip
	// frame (zero uses the default, 512). Larger Unordered backlogs are
	// covered by rotating the window across ticks.
	GossipMaxMessages int
	// DigestGossip switches the periodic gossip from full payloads to
	// message-ID digests with pull-based repair: steady-state background
	// bandwidth drops from O(|Unordered| * payload bytes) to
	// O(|Unordered|) IDs, while the eager delta push and recovery
	// catch-up keep working unchanged. See the README's performance
	// tuning section and experiment E17.
	DigestGossip bool
	// RingDissem enables the ordering/dissemination split: payloads
	// stream around a failure-detector-derived successor ring while
	// consensus orders ID+checksum vectors, making per-process egress
	// O(1) in N instead of the coordinator's O(N x payload). Delivery is
	// gated on payload presence, with missing payloads pulled over the
	// digest repair path. Every process of the deployment must set it
	// together (the proposal wire format changes); it forces DigestGossip
	// on. See the package comment's "Dissemination" section and
	// experiment E20.
	RingDissem bool

	// PipelineDepth is the number of consensus rounds that may be in
	// flight concurrently. 0 or 1 reproduces the paper's strictly
	// sequential sequencer; higher depths overlap round k+1's proposal
	// with round k's decision latency for higher throughput. Deliveries
	// always commit in round order, so the total order is unchanged.
	PipelineDepth int
	// MaxBatch caps the messages aggregated into one proposal (0 = no
	// cap).
	MaxBatch int
	// MaxBatchBytes caps the cumulative payload bytes aggregated into
	// one proposal (0 = no cap); a batch at the cap is "full" and is
	// proposed immediately.
	MaxBatchBytes int
	// MaxBatchDelay, when positive, holds back a non-full proposal until
	// the oldest pending message has waited this long, trading a bounded
	// amount of latency for bigger batches under light load (adaptive
	// batching: the earlier of the size and time triggers wins).
	MaxBatchDelay time.Duration

	// IdleHeartbeat, when positive, makes the sequencer propose an empty
	// heartbeat round after the group has committed nothing for this long
	// (staggered by PID so normally one process fires), keeping an idle
	// group's round counter moving. Sharded merged-mode deployments need
	// it so a quiescent group does not pin the merge frontier and every
	// group's checkpoint reclamation behind it — NewSharded defaults it
	// on when MergedDelivery is set (set it negative to force it off).
	// Heartbeat rounds deliver nothing and are reclaimed by the normal
	// checkpoint/compaction lifecycle.
	IdleHeartbeat time.Duration
	// Lease enables the stable-sequencer lease: while the same process
	// keeps proposing (the common case), each round skips the consensus
	// prepare phase and runs accept-only at a quorum-granted ballot,
	// cutting a full message round trip plus its acceptor fsync from the
	// commit path. Suspicion, competition, or LeaseTTL expiry falls back
	// to full consensus; crash-recovery safety is untouched (the grant is
	// a durable ranged promise, arbitrated by ballots, not clocks).
	// PolicyLeader only; ignored under PolicyRotating.
	Lease bool
	// LeaseTTL bounds how long a holder keeps trying the fast path
	// without a successful round (default 500ms). A liveness knob only.
	LeaseTTL time.Duration

	// SyncEvery and MaxSyncDelay set the storage durability policy when
	// the process runs over a group-commit engine (NewWALStorage): an
	// fsync is forced once SyncEvery log records are pending, or when
	// the oldest pending record has waited MaxSyncDelay — the storage
	// twin of the MaxBatch/MaxBatchDelay triggers above. Every setting
	// preserves the §2.1 durability contract (no protocol action before
	// the covering fsync); the knobs only trade commit latency against
	// fsyncs per record. Zero values keep the engine's defaults; both
	// are ignored by engines without a group-commit pipeline (Mem,
	// File).
	SyncEvery    int
	MaxSyncDelay time.Duration

	// Adaptive closes the loop on the three hot-path policies above: a
	// per-process controller (internal/tune) watches batch seal causes,
	// pipeline occupancy, backlog, quorum latency and fsync amortization
	// every epoch and continuously retunes MaxBatchDelay, the live
	// pipeline window and the WAL group-commit policy between idle-lean
	// and throughput-lean operating points. When Adaptive is set, the
	// static knobs become the controller's BOUNDS rather than fixed
	// values: PipelineDepth caps the live depth, MaxBatchDelay caps the
	// batching window, SyncEvery/MaxSyncDelay cap the fsync amortization
	// (unset knobs fall back to the tune package defaults; Tune overrides
	// any of them explicitly). With Adaptive false nothing changes: no
	// controller is constructed and every knob stays exactly where the
	// static options put it. See the README's "Adaptive tuning" section
	// and experiment E21.
	Adaptive bool
	// Tune bounds the adaptive controller explicitly (epoch period, knob
	// floors and caps). Zero fields derive from the static options as
	// described on Adaptive. Ignored when Adaptive is false.
	Tune TuneOptions
}

// TuneOptions bounds the adaptive controller; see ProtocolOptions.Adaptive.
type TuneOptions = tune.Options

// Validate rejects nonsensical options — negative depths, counts or
// delays, and (with Adaptive) inverted controller bounds — with explicit
// errors instead of silent misbehavior. NewProcess and NewSharded call it;
// IdleHeartbeat may be negative (documented: forces heartbeats off).
func (o ProtocolOptions) Validate() error {
	var errs []error
	neg := func(name string, bad bool) {
		if bad {
			errs = append(errs, fmt.Errorf("abcast: negative %s", name))
		}
	}
	neg("CheckpointEvery", o.CheckpointEvery < 0)
	neg("GossipInterval", o.GossipInterval < 0)
	neg("GossipMaxMessages", o.GossipMaxMessages < 0)
	neg("PipelineDepth", o.PipelineDepth < 0)
	neg("MaxBatch", o.MaxBatch < 0)
	neg("MaxBatchBytes", o.MaxBatchBytes < 0)
	neg("MaxBatchDelay", o.MaxBatchDelay < 0)
	neg("LeaseTTL", o.LeaseTTL < 0)
	neg("SyncEvery", o.SyncEvery < 0)
	neg("MaxSyncDelay", o.MaxSyncDelay < 0)
	if o.Adaptive {
		if err := o.tuneOptions().Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// tuneOptions derives the controller bounds from the static options:
// every unset Tune bound inherits the corresponding static knob (which is
// how "static options become the controller's bounds when Adaptive is
// on"), and the depth cap never exceeds the consensus learner's ask-ahead
// span.
func (o ProtocolOptions) tuneOptions() TuneOptions {
	t := o.Tune
	if t.BatchDelayMax == 0 && o.MaxBatchDelay > 0 {
		t.BatchDelayMax = o.MaxBatchDelay
	}
	if t.DepthMax == 0 && o.PipelineDepth > 1 {
		t.DepthMax = o.PipelineDepth
	}
	if t.SyncEveryMax == 0 && o.SyncEvery > 0 {
		t.SyncEveryMax = o.SyncEvery
	}
	if t.SyncDelayMax == 0 && o.MaxSyncDelay > 0 {
		t.SyncDelayMax = o.MaxSyncDelay
	}
	if t.DepthMax > consensus.DecideWindow {
		t.DepthMax = consensus.DecideWindow
	}
	return t
}

// Process is one group member with crash/recover lifecycle.
type Process struct {
	n     *node.Node
	tuner *tune.Controller // nil unless ProtocolOptions.Adaptive
}

// groupCommitter is implemented by storage engines whose durability
// policy (group-commit triggers) is runtime-tunable — storage.WAL.
type groupCommitter interface {
	SetGroupCommit(syncEvery int, maxSyncDelay time.Duration)
}

// coreConfig maps the public protocol options onto the core layer's
// config. NewProcess and NewSharded both build their per-node configs
// from it, so a new ProtocolOptions knob wired here reaches sharded and
// unsharded deployments alike.
func (o ProtocolOptions) coreConfig() core.Config {
	cc := core.Config{
		CheckpointEvery:   o.CheckpointEvery,
		Delta:             o.Delta,
		BatchedBroadcast:  o.BatchedBroadcast,
		IncrementalLog:    o.IncrementalLog,
		Checkpointer:      o.Checkpointer,
		GossipInterval:    o.GossipInterval,
		GossipMaxMessages: o.GossipMaxMessages,
		DigestGossip:      o.DigestGossip,
		PipelineDepth:     o.PipelineDepth,
		MaxBatch:          o.MaxBatch,
		MaxBatchBytes:     o.MaxBatchBytes,
		MaxBatchDelay:     o.MaxBatchDelay,
		IdleHeartbeat:     max(o.IdleHeartbeat, 0),
	}
	if o.Adaptive {
		// Give the sequencer resize headroom up to the controller's depth
		// cap; the controller itself decides where within it to sit.
		cc.MaxPipelineDepth = o.tuneOptions().Filled().DepthMax
	}
	return cc
}

// consensusConfig maps the options' consensus knobs (the lease) plus the
// coordinator policy onto the consensus layer's config.
func (o ProtocolOptions) consensusConfig(policy ConsensusPolicy) consensus.Config {
	return consensus.Config{
		Policy:   policy,
		Lease:    o.Lease,
		LeaseTTL: o.LeaseTTL,
	}
}

// applyGroupCommit applies the options' storage durability policy to st
// when st is a group-commit engine and a policy is set.
func (o ProtocolOptions) applyGroupCommit(st Storage) {
	if gc, ok := st.(groupCommitter); ok && (o.SyncEvery > 0 || o.MaxSyncDelay > 0) {
		gc.SetGroupCommit(o.SyncEvery, o.MaxSyncDelay)
	}
}

// NewProcess builds a process over the given stable storage and network.
// The same Storage must be passed again after a crash for recovery to work;
// the same Network must be shared by the whole group. Invalid options
// (negative depths, counts or delays; inverted adaptive bounds) are
// rejected with an explicit error.
//
// When st is a group-commit engine (NewWALStorage) and the protocol
// options carry a durability policy (SyncEvery / MaxSyncDelay), the policy
// is applied to the engine here, so one ProtocolOptions value describes
// both halves of the pipeline: how messages batch into rounds and how the
// rounds' log records batch into fsyncs. With Protocol.Adaptive set, both
// halves are handed to a per-process controller instead; see the package
// comment's "Adaptive tuning" section.
func NewProcess(cfg Config, st Storage, net Network) (*Process, error) {
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, err
	}
	cfg.Protocol.applyGroupCommit(st)
	coreCfg := cfg.Protocol.coreConfig()
	coreCfg.OnDeliver = cfg.OnDeliver
	coreCfg.OnRestore = cfg.OnRestore
	coreCfg.OnTentative = cfg.OnTentative
	coreCfg.OnConfirm = cfg.OnConfirm
	coreCfg.OnRevoke = cfg.OnRevoke
	nodeCfg := node.Config{
		PID:        cfg.PID,
		N:          cfg.N,
		Core:       coreCfg,
		Consensus:  cfg.Protocol.consensusConfig(cfg.Policy),
		FD:         cfg.FD,
		RingDissem: cfg.Protocol.RingDissem,
	}
	p := &Process{n: node.New(nodeCfg, st, net)}
	if cfg.Protocol.Adaptive {
		ctl, err := tune.New(cfg.Protocol.tuneOptions(), nil)
		if err != nil {
			return nil, err
		}
		ctl.AddGroup(node.TuneGroup(p.n))
		if s, ok := node.TuneSync(st); ok {
			ctl.AddSync(s)
		}
		p.tuner = ctl
	}
	return p, nil
}

// Start boots the process (initialization or recovery). It blocks until
// the replay phase completes.
func (p *Process) Start(ctx context.Context) error {
	if err := p.n.Start(ctx); err != nil {
		return err
	}
	if p.tuner != nil {
		p.tuner.Start()
	}
	return nil
}

// Crash kills the process, losing all volatile state. Stable storage is
// untouched; call Start to recover.
func (p *Process) Crash() {
	if p.tuner != nil {
		p.tuner.Stop()
	}
	p.n.Crash()
}

// Up reports whether the process is currently running.
func (p *Process) Up() bool { return p.n.Up() }

// Broadcast implements A-broadcast(m): in the basic protocol it returns
// once m has a position in the total order.
func (p *Process) Broadcast(ctx context.Context, payload []byte) (MsgID, error) {
	return p.n.Broadcast(ctx, payload)
}

// Delivered reports whether id is in this process's delivery sequence.
func (p *Process) Delivered(id MsgID) bool {
	proto := p.n.Proto()
	return proto != nil && proto.Delivered(id)
}

// DeliveredTentative reports whether id is in the delivery sequence or in
// an outstanding optimistic prediction (tentatively delivered, not yet
// confirmed). A true answer obtained only through a prediction carries no
// durability guarantee — it can be revoked.
func (p *Process) DeliveredTentative(id MsgID) bool {
	proto := p.n.Proto()
	return proto != nil && proto.DeliveredTentative(id)
}

// Sequence implements A-deliver-sequence(): the base snapshot that
// initiates the sequence plus the explicitly delivered suffix.
func (p *Process) Sequence() (Snapshot, []Delivery) {
	proto := p.n.Proto()
	if proto == nil {
		return Snapshot{}, nil
	}
	return proto.Sequence()
}

// Round returns the current protocol round (the next Consensus instance).
func (p *Process) Round() uint64 {
	proto := p.n.Proto()
	if proto == nil {
		return 0
	}
	return proto.Round()
}

// CheckpointNow forces a checkpoint (alternative protocol).
func (p *Process) CheckpointNow() error {
	proto := p.n.Proto()
	if proto == nil {
		return node.ErrDown
	}
	return proto.CheckpointNow()
}

// Stats returns broadcast-layer counters for the live incarnation.
func (p *Process) Stats() Stats {
	proto := p.n.Proto()
	if proto == nil {
		return Stats{}
	}
	return proto.Stats()
}

// NewMemNetwork creates the in-memory fair-lossy network for n processes.
func NewMemNetwork(n int, opts MemNetOptions) *transport.Mem {
	return transport.NewMem(n, opts)
}

// NewTCPNetwork creates a TCP network; addrs[i] is process i's listen
// address.
func NewTCPNetwork(addrs []string) *transport.TCP {
	return transport.NewTCP(addrs)
}

// NewMemStorage creates volatile-machine-resident stable storage (it
// survives process crashes because the caller owns it, mirroring how a
// real OS keeps files across process restarts).
func NewMemStorage() *storage.Mem { return storage.NewMem() }

// NewFileStorage creates file-backed stable storage rooted at dir. With
// syncWrites every log write is fsynced — one fsync per record. For the
// high-throughput engine at the same durability, use NewWALStorage.
func NewFileStorage(dir string, syncWrites bool) (*storage.File, error) {
	return storage.NewFile(dir, syncWrites)
}

// WALOptions tunes the group-commit write-ahead-log engine.
type WALOptions = storage.WALOptions

// NewWALStorage creates group-commit write-ahead-log storage rooted at
// dir: one segmented append-only log, CRC framing, torn-tail recovery, and
// a committer that coalesces all concurrent writes into one fsync. A
// Put/Append returns (and the protocol acts) only once the fsync covering
// its record completes, so durability is identical to NewFileStorage with
// syncWrites — at a fraction of the fsyncs (see experiment E15). Close it
// when the process is retired; crashes need no cleanup (reopen replays the
// durable prefix and truncates any torn tail).
func NewWALStorage(dir string, opts WALOptions) (*storage.WAL, error) {
	return storage.OpenWAL(dir, opts)
}
