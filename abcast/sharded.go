package abcast

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dissem"
	"repro/internal/fd"
	"repro/internal/group"
	"repro/internal/ids"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tune"
)

// GroupID identifies one ordering group of a sharded process (0..G-1).
type GroupID = ids.GroupID

// Router places broadcast keys onto ordering groups; see NewHashRouter.
type Router = group.Router

// RouterFunc adapts a function as a Router (explicit custom placement).
type RouterFunc = group.RouterFunc

// NewHashRouter returns the default deterministic consistent-hash router:
// every process maps a key to the same group without coordination, and
// regrowing the group count moves only ~1/G of the keyspace.
func NewHashRouter(groups int) Router { return group.NewHashRouter(groups) }

// NewRoundRobinRouter spreads keys evenly regardless of content (placement
// is per-router-instance, not cluster-deterministic).
func NewRoundRobinRouter(groups int) Router { return group.NewRoundRobinRouter(groups) }

// ShardedNetwork multiplexes one Network among G ordering groups: frames
// are tagged with their GroupID and demultiplexed to the owning group, so
// all groups share one connection set. Like the Network it wraps, one
// ShardedNetwork is shared by every process of the cluster.
type ShardedNetwork = group.Mux

// ShardedNetOptions tunes the sharded network's write-coalescing pipeline:
// with FlushDelay > 0, small frames submitted by any of a process's groups
// within the delay window are packed into one length-delimited transport
// write (flushed earlier once FlushBytes are queued) — the network twin of
// the WAL's group-commit triggers.
type ShardedNetOptions = group.MuxOptions

// NewShardedNetwork wraps net for groups ordering groups, without write
// coalescing.
func NewShardedNetwork(net Network, groups int) *ShardedNetwork {
	return group.NewMux(net, groups)
}

// NewShardedNetworkOpts wraps net for groups ordering groups with the
// given coalescing policy.
func NewShardedNetworkOpts(net Network, groups int, opts ShardedNetOptions) *ShardedNetwork {
	return group.NewMuxOpts(net, groups, opts)
}

// ShardedConfig assembles one sharded process: G independent ordering
// groups behind one API, one transport connection set, and one stable
// store.
type ShardedConfig struct {
	// PID and N identify the process within the static group; they are
	// shared by every ordering group (each group is the same Π).
	PID ProcessID
	N   int

	// Protocol and Policy configure every group identically (groups are
	// interchangeable shards, not heterogeneous deployments).
	Protocol ProtocolOptions
	Policy   ConsensusPolicy

	// FD tunes the process-level failure detector shared by every group:
	// a sharded process sends ONE heartbeat stream per peer, whatever G
	// is, because the paper's liveness oracle is per process (§3.5) and
	// all groups of a process crash and recover together. Zero values use
	// the library defaults.
	FD FDOptions

	// Router places Broadcast keys onto groups; nil defaults to the
	// deterministic consistent-hash router. Keys that must be mutually
	// ordered must route to the same group.
	Router Router

	// GroupStore, when set, supplies each group's stable storage and the
	// store argument of NewSharded may be nil. The default carves group
	// g's storage out of the shared store as the "g<g>/" namespace
	// (storage.Prefixed), so on a group-commit WAL engine all groups
	// share fsyncs. A per-group-store deployment (one WAL per group,
	// separate fsync streams) is the main use of the hook; experiment E16
	// measures the difference.
	GroupStore func(GroupID) Storage

	// MergedDelivery declares that this process consumes the merged
	// cross-group sequence (Merged or MergeCursor) and makes application
	// checkpointing compose with it: every group's checkpoint folds only
	// rounds below the process-wide merge frontier (the highest round
	// every group has committed), so per-round delivery metadata survives
	// until the merge has passed it and the interleave stays
	// reconstructible across checkpoints and recoveries. An idle group
	// does not pin the frontier: merged mode defaults
	// Protocol.IdleHeartbeat on (50ms unless the config sets its own
	// value; negative forces it off), so a quiescent group proposes empty
	// heartbeat rounds and the frontier — with every group's checkpoint
	// reclamation behind it — keeps advancing without traffic on every
	// group. Leave MergedDelivery false when only per-group orders are
	// consumed, so checkpoints fold eagerly.
	MergedDelivery bool

	// MergeFloorStaleness bounds how long a silent peer's gossiped merge
	// frontier keeps holding the cluster-wide GC floor down (see
	// ClusterFloor in internal/group): a crashed process that recovers
	// within the cap finds every round it is missing still gossipable — no
	// GC-forced state transfer — while a process dead longer than the cap
	// stops blocking garbage collection for everyone else. 0 selects the
	// default (10s); negative means reports never go stale (the floor
	// waits for every peer indefinitely).
	MergeFloorStaleness time.Duration

	// Obs, when set, is the process's observability plane: it is threaded
	// into every group node (metrics, traces, flight recorder), the merge
	// stream, and the resharding machinery ("abcast.reshard.*" counters
	// and EvReshard* flight events).
	Obs *obs.Plane

	// OnDeliver receives every A-delivered message of every group, tagged
	// with its owning group (Delivery.Group). Within a group, calls are
	// ordered; across groups they interleave arbitrarily — use Merged for
	// one deterministic global sequence.
	//
	// Live resharding orders its SEAL/JOIN topology markers through the
	// groups themselves, so marker payloads appear in the delivery stream
	// (and in Merged output) like any agreed message — identically
	// positioned at every process, which is what makes the topology switch
	// deterministic. Applications that reshard should skip payloads for
	// which IsReshardMarker reports true.
	OnDeliver func(Delivery)
	// OnRestore is invoked when group g adopts a checkpoint or state
	// transfer instead of replaying.
	OnRestore func(GroupID, Snapshot)
	// OnTentative, OnConfirm and OnRevoke enable the optimistic-delivery
	// fast path per group, with the same contract as the unsharded
	// Config hooks: tentative deliveries (tagged with their group) are
	// predictions, OnConfirm(g, upTo) certifies group g's stream below
	// upTo, OnRevoke(g, from) retracts g's unconfirmed suffix. Positions
	// are per group; the merged sequence carries only confirmed rounds.
	OnTentative func(Delivery)
	OnConfirm   func(g GroupID, upToPos uint64)
	OnRevoke    func(g GroupID, fromPos uint64)
}

// Validate rejects nonsensical sharded configurations with explicit errors
// instead of silent misbehavior, mirroring ProtocolOptions.Validate (which
// it includes). NewSharded calls it; constraints that involve NewSharded's
// arguments (the store/GroupStore exclusivity, the group count) stay in
// NewSharded.
func (c ShardedConfig) Validate() error {
	var errs []error
	if c.N <= 0 {
		errs = append(errs, fmt.Errorf("abcast: sharded config needs N > 0"))
	}
	if c.PID < 0 || (c.N > 0 && int(c.PID) >= c.N) {
		errs = append(errs, fmt.Errorf("abcast: PID %v out of range [0,%d)", c.PID, c.N))
	}
	if err := c.Protocol.Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// ErrSealed is returned by Broadcast/BroadcastTo when the target group has
// been sealed for retirement. A rejection at entry admitted nothing — the
// caller can safely re-route the key (Broadcast does this itself when the
// default router is in use). A call that was already waiting when the seal
// cut the drain may instead report ErrSealed without the message having
// been ordered — the same may-or-may-not outcome as a crash mid-call.
var ErrSealed = core.ErrSealed

// IsReshardMarker reports whether an A-delivered payload is a live-
// resharding topology marker (SEAL/JOIN) rather than application content.
// Markers ride the agreed order itself — that is what coordinates the
// topology switch — so they appear in OnDeliver and Merged output; skip
// them in application logic.
func IsReshardMarker(p []byte) bool { return group.IsMarker(p) }

// defaultFloorStaleness is the MergeFloorStaleness applied when the config
// leaves it zero.
const defaultFloorStaleness = 10 * time.Second

// Keys of the process-level resharding cells, stored in the epoch store
// (outside every group's namespace).
const (
	keyTopo   = "abcast/topo"
	keyReaped = "abcast/reaped"
)

// Sharded is a process running G independent ordering groups — the paper's
// protocol instantiated G times — behind one API. Each group delivers its
// own total order with the full Atomic Broadcast guarantees; across groups
// there is no ordering unless the merged sequence is consumed. Start,
// Crash and recovery act on the whole process: a crash loses every group's
// volatile state at once, exactly like an unsharded crash.
//
// The group set is live: AddGroup splices a fresh group into the merged
// order and RetireGroup drains one out of it, both coordinated purely by
// markers ordered through the groups themselves (see internal/group). The
// node slice is indexed by GroupID and only ever grows — a retired group's
// slot goes nil once reaped, and GroupIDs are never reused.
type Sharded struct {
	cfg     ShardedConfig
	net     *ShardedNetwork
	shared  Storage // nil when every group store came from the hook
	epochSt Storage // pinned at construction; holds process-level cells
	stream  *group.Stream // per-round fan-out driving Merged/MergeCursor
	floors  *group.FloorTracker
	peers   []ids.ProcessID // every process but this one
	rm      reshardMetrics

	// ns is the copy-on-write (nodes, stores) pair, swapped under mu;
	// router/topoEnc are the broadcast hot path's view of the topology,
	// swapped by the stream's topology hook.
	ns      atomic.Pointer[nodeSet]
	router  atomic.Pointer[routerEpoch]
	topoEnc atomic.Pointer[topoDescriptor]

	mu       sync.Mutex
	up       bool
	startCtx context.Context  // last Start context, for nodes spliced in live
	sfd      *node.SharedFD   // live process-level failure detector (nil when down)
	sring    *node.SharedRing // live process-level payload ring (nil when down or ring mode off)
	reaped   map[GroupID]bool
	seen     map[GroupID]group.Span // last observed topology (edge-detects seals/joins)

	// reshardMu serializes AddGroup / RetireGroup / ReapRetired. It is
	// never taken by the topology hook, which runs on delivery goroutines
	// while a reshard call may be blocked broadcasting a marker.
	reshardMu sync.Mutex

	// tuner is the process's single adaptive controller (nil unless
	// Protocol.Adaptive): every group feeds it, and its one durability
	// target arbitrates the shared WAL's sync policy across all of them.
	tuner *tune.Controller
}

// nodeSet is the immutable (nodes, stores) snapshot read by every hot
// path; mutations copy and swap under Sharded.mu. Index is the GroupID;
// nil entries are reaped groups.
type nodeSet struct {
	nodes  []*node.Node
	stores []Storage
}

// routerEpoch pairs the live router with the topology epoch it was built
// from (the "swap under an epoch number" of live resharding).
type routerEpoch struct {
	r     Router
	epoch uint64
}

// topoDescriptor caches the encoded topology the floor gossip carries.
type topoDescriptor struct {
	epoch uint64
	enc   []byte
}

// reshardMetrics are the "abcast.reshard.*" registry entries (all nil
// without an Obs plane).
type reshardMetrics struct {
	drainNS       *obs.Counter
	orphans       *obs.Counter
	migratedKeys  *obs.Counter
	migratedBytes *obs.Counter
	epoch         *obs.Gauge
}

// flight returns the flight recorder (nil-safe: obs.Recorder methods
// no-op on nil).
func (s *Sharded) flight() *obs.Recorder {
	if s.cfg.Obs == nil {
		return nil
	}
	return s.cfg.Obs.Flight()
}

// NewSharded builds a sharded process over the given stable store and
// sharded network. st is the process's one shared store (each group runs
// in its own namespace of it); it may be nil when cfg.GroupStore supplies
// per-group stores. The same store(s) must be passed again after a crash
// for recovery, and the same ShardedNetwork must be shared by the whole
// cluster.
//
// As with NewProcess, a group-commit durability policy in cfg.Protocol
// (SyncEvery / MaxSyncDelay) is applied to every distinct engine in use —
// once to a shared store, per group with a GroupStore hook.
func NewSharded(cfg ShardedConfig, st Storage, net *ShardedNetwork) (*Sharded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if net.Groups() < 1 {
		return nil, fmt.Errorf("abcast: sharded process needs at least one ordering group")
	}
	if st == nil && cfg.GroupStore == nil {
		return nil, fmt.Errorf("abcast: sharded process needs a shared store or a GroupStore hook")
	}
	if st != nil && cfg.GroupStore != nil {
		// Ambiguous: nothing would write through st, but Stats would
		// read its sync counter and the durability policy would arm its
		// group-commit timer. Refuse rather than misreport.
		return nil, fmt.Errorf("abcast: pass either a shared store or a GroupStore hook, not both")
	}
	if cfg.MergedDelivery && cfg.Protocol.IdleHeartbeat == 0 {
		// Merged mode needs idle groups to keep their round counters
		// moving or the merge frontier (and every group's checkpoint
		// reclamation) pins on the first quiescent group. A negative
		// IdleHeartbeat opts out explicitly (coreConfig clamps it to 0).
		cfg.Protocol.IdleHeartbeat = 50 * time.Millisecond
	}
	s := &Sharded{
		cfg:    cfg,
		net:    net,
		shared: st,
		reaped: make(map[GroupID]bool),
		seen:   make(map[GroupID]group.Span),
	}
	for p := 0; p < cfg.N; p++ {
		if pid := ids.ProcessID(p); pid != cfg.PID {
			s.peers = append(s.peers, pid)
		}
	}
	if st != nil {
		cfg.Protocol.applyGroupCommit(st)
		s.epochSt = st
	} else {
		g0 := cfg.GroupStore(0)
		if g0 == nil {
			return nil, fmt.Errorf("abcast: GroupStore returned nil for group g0")
		}
		cfg.Protocol.applyGroupCommit(g0)
		s.epochSt = g0
	}

	// Restore the persisted topology (a resharded deployment restarting)
	// or fall back to the static epoch-0 shape of the network mux. The
	// reaped set tells which retired groups' nodes are NOT rebuilt.
	topo := group.NewStaticTopology(net.Groups())
	if enc, ok, err := s.epochSt.Get(keyTopo); err != nil {
		return nil, fmt.Errorf("abcast: read persisted topology: %w", err)
	} else if ok {
		t, err := group.DecodeTopology(enc)
		if err != nil {
			return nil, fmt.Errorf("abcast: persisted topology: %w", err)
		}
		topo = t
	}
	if enc, ok, err := s.epochSt.Get(keyReaped); err != nil {
		return nil, fmt.Errorf("abcast: read reaped set: %w", err)
	} else if ok {
		gs, err := decodeReaped(enc)
		if err != nil {
			return nil, fmt.Errorf("abcast: reaped set: %w", err)
		}
		for _, g := range gs {
			s.reaped[g] = true
		}
	}
	s.stream = group.NewStreamTopology(topo)
	s.stream.SetObs(cfg.Obs)
	s.floors = group.NewFloorTracker(s.stream.Frontier, floorCap(cfg.MergeFloorStaleness))
	if cfg.Obs != nil {
		reg := cfg.Obs.Reg()
		s.rm = reshardMetrics{
			drainNS:       reg.Counter("abcast.reshard.drain_ns"),
			orphans:       reg.Counter("abcast.reshard.orphans"),
			migratedKeys:  reg.Counter("abcast.reshard.migrated_keys"),
			migratedBytes: reg.Counter("abcast.reshard.migrated_bytes"),
			epoch:         reg.Gauge("abcast.reshard.epoch"),
		}
		s.rm.epoch.Set(int64(topo.Epoch))
	}

	// Build one node per known, unreaped group. The mux may predate a
	// restored topology that grew: raise its lane count first.
	maxG := net.Groups()
	for g := range topo.Spans {
		if int(g)+1 > maxG {
			maxG = int(g) + 1
		}
	}
	net.Grow(maxG)
	ns := &nodeSet{nodes: make([]*node.Node, maxG), stores: make([]Storage, maxG)}
	for g := 0; g < maxG; g++ {
		gid := GroupID(g)
		if s.reaped[gid] {
			// Reaped groups never replay, so their decided counters must
			// be pinned past their final round by hand or they would gate
			// the merge frontier at their offset forever.
			if sp, ok := topo.Spans[gid]; ok && sp.Sealed {
				s.stream.NoteSkip(gid, sp.Final+1)
			}
			continue
		}
		gst, n, err := s.buildGroup(gid)
		if err != nil {
			return nil, err
		}
		ns.nodes[g], ns.stores[g] = n, gst
	}
	s.ns.Store(ns)
	for g, sp := range topo.Spans {
		s.seen[g] = sp
	}
	s.installTopology(topo)
	s.stream.SetOnTopology(s.onTopology)

	if cfg.Protocol.Adaptive {
		// ONE controller for the whole process: each group is a target,
		// and the single durability target arbitrates the shared WAL's
		// group-commit policy from the aggregate record rate (the WAL's
		// counters are process-wide, so any busy group keeps amortization
		// on for all of them). Per-group stores register each distinct
		// engine once.
		ctl, err := tune.New(cfg.Protocol.tuneOptions(), nil)
		if err != nil {
			return nil, err
		}
		for _, n := range ns.nodes {
			if n != nil {
				ctl.AddGroup(node.TuneGroup(n))
			}
		}
		if st != nil {
			if sy, ok := node.TuneSync(st); ok {
				ctl.AddSync(sy)
			}
		} else {
			seen := make(map[*storage.WAL]bool)
			for g, gst := range ns.stores {
				if gst == nil {
					continue
				}
				if w := node.FindWAL(gst); w != nil && !seen[w] {
					seen[w] = true
					if sy, ok := node.TuneSync(gst); ok {
						sy.Name = fmt.Sprintf("g%d", g)
						ctl.AddSync(sy)
					}
				}
			}
		}
		s.tuner = ctl
	}
	return s, nil
}

// floorCap normalizes the MergeFloorStaleness knob into the tracker's cap
// (0 there means "never stale").
func floorCap(d time.Duration) time.Duration {
	if d == 0 {
		return defaultFloorStaleness
	}
	if d < 0 {
		return 0
	}
	return d
}

// encodeReaped serializes the reaped-group set (ascending).
func encodeReaped(gs []GroupID) []byte {
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	buf := binary.AppendUvarint(nil, uint64(len(gs)))
	for _, g := range gs {
		buf = binary.AppendUvarint(buf, uint64(g))
	}
	return buf
}

// decodeReaped parses an encodeReaped result.
func decodeReaped(b []byte) ([]GroupID, error) {
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("bad count")
	}
	b = b[n:]
	out := make([]GroupID, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("truncated")
		}
		out = append(out, GroupID(v))
		b = b[n:]
	}
	return out, nil
}

// buildGroup constructs group gid's store and node (the per-group loop
// body of NewSharded, reused by live AddGroup splices).
func (s *Sharded) buildGroup(gid GroupID) (Storage, *node.Node, error) {
	cfg := s.cfg
	var gst Storage
	if cfg.GroupStore != nil {
		if gid == 0 {
			gst = s.epochSt // already fetched (and policy-applied) once
		} else {
			gst = cfg.GroupStore(gid)
			if gst == nil {
				return nil, nil, fmt.Errorf("abcast: GroupStore returned nil for group %v", gid)
			}
			cfg.Protocol.applyGroupCommit(gst)
		}
	} else {
		gst = storage.NewPrefixed(s.shared, group.StoreNamespace(gid))
	}

	coreCfg := cfg.Protocol.coreConfig()
	coreCfg.OnDeliver = cfg.OnDeliver
	if restore := cfg.OnRestore; restore != nil {
		coreCfg.OnRestore = func(sn Snapshot) { restore(gid, sn) }
	}
	coreCfg.OnTentative = cfg.OnTentative
	coreCfg.OnConfirm = cfg.OnConfirm
	coreCfg.OnRevoke = cfg.OnRevoke
	// Every group feeds the process's per-round stream (it also tracks
	// the decided counters Merged and MergeCursor use); the merge floor
	// gates checkpoint folds only when the merged sequence is declared
	// consumed, so an idle group cannot pin reclamation of processes that
	// never merge. The floor is the CLUSTER-wide minimum (gossiped on the
	// digest lane, bounded by the staleness cap), localized to this
	// group's span.
	coreCfg.OnRound = s.stream.NoteRound
	coreCfg.OnRoundSkip = s.stream.NoteSkip
	if cfg.MergedDelivery {
		coreCfg.MergeFloor = func() uint64 {
			return s.stream.LocalFloor(gid, s.floors.ClusterFloor(s.peers))
		}
	}
	// Checkpoint discards wait for the cluster-wide durable floor: a
	// checkpoint still logs locally at full speed, but Consensus state a
	// slow or crashed peer may need to re-learn its rounds survives until
	// every process's own recoverable prefix (gossiped via FloorSelf) has
	// passed them. This is what makes a lagging recoverer catch up through
	// ordinary Consensus instead of a GC-forced state transfer.
	coreCfg.OnCheckpoint = func(k uint64) { s.stream.NoteDurable(gid, k) }
	coreCfg.DiscardFloor = func() uint64 {
		return s.stream.LocalFloor(gid, s.floors.ClusterFloor(s.peers))
	}
	// Every group gossips the process-wide merge frontier and topology
	// descriptor on its digest lane, and folds peers' reports into the
	// floor tracker; a peer that slept through a reshard resynchronizes
	// its epoch from the descriptor instead of replaying markers.
	coreCfg.FloorSelf = s.floorSelf
	coreCfg.OnPeerFloor = s.onPeerFloor

	ncfg := node.Config{
		PID:       cfg.PID,
		N:         cfg.N,
		Group:     gid,
		Core:      coreCfg,
		Consensus: cfg.Protocol.consensusConfig(cfg.Policy),
		FD:        cfg.FD,
		Obs:       cfg.Obs,
		// Every group's consensus engine reads the one process-level
		// detector through its own facade; the group nodes send no
		// heartbeats of their own.
		SharedFD: func() fd.API { return s.fdView(gid) },
	}
	if cfg.Protocol.RingDissem {
		// All groups of the process share one payload ring over the
		// mux's dissem lane (the ring twin of the shared detector):
		// G groups cost one successor stream, not G.
		ncfg.SharedRing = s.ringView
	}
	return gst, node.New(ncfg, gst, s.net.Net(gid)), nil
}

// floorSelf is every group's core.Config.FloorSelf hook: the process-wide
// merge frontier plus the cached topology descriptor.
func (s *Sharded) floorSelf() (uint64, uint64, []byte) {
	td := s.topoEnc.Load()
	// The gossiped floor is the DURABLE frontier — the prefix this
	// process recovers from its own storage after a crash. Reporting the
	// in-memory frontier would let peers discard rounds committed here
	// since the last checkpoint, which a crash sends this process right
	// back to needing.
	return s.stream.DurableFrontier(), td.epoch, td.enc
}

// onPeerFloor is every group's core.Config.OnPeerFloor hook.
func (s *Sharded) onPeerFloor(from ids.ProcessID, floor uint64, epoch uint64, topo []byte) {
	s.floors.Report(from, floor, epoch, topo)
	if epoch > s.stream.Epoch() && len(topo) > 0 {
		if t, err := group.DecodeTopology(topo); err == nil {
			s.stream.AdoptTopology(t)
		}
	}
}

// installTopology refreshes the hot-path topology views: the router ring
// (unless the config pinned a custom router) and the encoded descriptor
// the floor gossip carries.
func (s *Sharded) installTopology(t *group.Topology) {
	r := s.cfg.Router
	if r == nil {
		r = group.NewHashRouterOver(t.Active())
	}
	s.router.Store(&routerEpoch{r: r, epoch: t.Epoch})
	s.topoEnc.Store(&topoDescriptor{epoch: t.Epoch, enc: t.Encode()})
	if s.rm.epoch != nil {
		s.rm.epoch.Set(int64(t.Epoch))
	}
}

// onTopology runs (outside the stream lock, on a delivery or gossip
// goroutine) after every topology transition: it swaps the router under
// the new epoch, persists the topology, seals the protocols of newly
// sealed groups, splices in nodes for newly joined groups, and stamps the
// flight recorder. It must never take reshardMu (a reshard call may be
// blocked broadcasting the very marker that triggered it).
func (s *Sharded) onTopology(t *group.Topology) {
	s.installTopology(t)
	if err := s.epochSt.Put(keyTopo, t.Encode()); err != nil {
		s.flight().Event(obs.EvViolation, -1, 0, 0, 0, "persist topology: "+err.Error())
	}

	// Edge-detect transitions against the last observed spans.
	s.mu.Lock()
	var sealed, joined []GroupID
	for g, sp := range t.Spans {
		prev, known := s.seen[g]
		if !known {
			joined = append(joined, g)
		}
		if sp.Sealed && (!known || !prev.Sealed) {
			sealed = append(sealed, g)
		}
		s.seen[g] = sp
	}
	s.mu.Unlock()
	sort.Slice(joined, func(i, j int) bool { return joined[i] < joined[j] })

	for _, g := range sealed {
		sp := t.Spans[g]
		s.flight().Event(obs.EvReshardSeal, g, sp.Final, int64(t.Epoch), 0, "")
		if p := s.protoAt(g); p != nil {
			p.Seal(sp.Final)
		}
	}
	for _, g := range joined {
		sp := t.Spans[g]
		s.flight().Event(obs.EvReshardJoin, g, 0, int64(g), int64(sp.Offset), "")
	}
	if len(joined) > 0 {
		s.ensureGroups(t)
	}
}

// nodeAt returns group g's node (nil when reaped or unknown).
func (s *Sharded) nodeAt(g GroupID) *node.Node {
	ns := s.ns.Load()
	if g < 0 || int(g) >= len(ns.nodes) {
		return nil
	}
	return ns.nodes[g]
}

// protoAt returns group g's live protocol (nil when reaped, unknown or
// down).
func (s *Sharded) protoAt(g GroupID) *core.Protocol {
	n := s.nodeAt(g)
	if n == nil {
		return nil
	}
	return n.Proto()
}

// ensureGroups builds and installs a node for every group the topology
// knows that this process has none for — the heal path for a process that
// slept through an AddGroup (crashed during the reshard, or recovering
// with a stale persisted topology). New nodes are started asynchronously
// when the process is up: this runs on delivery/gossip goroutines and a
// node Start blocks through replay.
func (s *Sharded) ensureGroups(t *group.Topology) {
	type started struct {
		n   *node.Node
		ctx context.Context
	}
	var boot []started
	s.mu.Lock()
	ns := s.ns.Load()
	maxG := len(ns.nodes)
	for g := range t.Spans {
		if int(g)+1 > maxG {
			maxG = int(g) + 1
		}
	}
	if maxG > len(ns.nodes) {
		s.net.Grow(maxG)
		grown := &nodeSet{nodes: make([]*node.Node, maxG), stores: make([]Storage, maxG)}
		copy(grown.nodes, ns.nodes)
		copy(grown.stores, ns.stores)
		ns = grown
	}
	changed := maxG > len(s.ns.Load().nodes)
	for g := range t.Spans {
		if ns.nodes[g] != nil || s.reaped[g] {
			continue
		}
		if sp := t.Spans[g]; sp.Sealed && s.stream.Drained(g) {
			continue // fully drained before we ever hosted it: nothing to order
		}
		gst, n, err := s.buildGroup(g)
		if err != nil {
			s.flight().Event(obs.EvViolation, g, 0, 0, 0, "ensure group: "+err.Error())
			continue
		}
		ns.nodes[g], ns.stores[g] = n, gst
		changed = true
		if s.up {
			boot = append(boot, started{n: n, ctx: s.startCtx})
		}
		if s.tuner != nil {
			s.tuner.AddGroup(node.TuneGroup(n))
		}
	}
	if changed {
		s.ns.Store(ns)
	}
	s.mu.Unlock()
	for _, b := range boot {
		go func(b started) {
			if err := b.n.Start(b.ctx); err != nil {
				return // already-up or crashed-meanwhile: the next Start heals
			}
			s.applySeals()
			s.mu.Lock()
			up := s.up
			s.mu.Unlock()
			if !up {
				b.n.Crash() // the process crashed while we were booting
			}
		}(b)
	}
}

// applySeals re-applies the topology's seals to the live protocol
// incarnations. A protocol is a per-incarnation object: a crash between a
// SEAL marker's delivery and the drain loses the in-memory seal, and the
// replaying incarnation re-delivers the marker into a stream that already
// knows it (inert), so the sharded layer re-arms the seal explicitly after
// every boot.
func (s *Sharded) applySeals() {
	t := s.stream.Topology()
	for g, sp := range t.Spans {
		if !sp.Sealed {
			continue
		}
		if p := s.protoAt(g); p != nil {
			p.Seal(sp.Final)
		}
	}
}

// ringView returns the live process-level ring group nodes register their
// payload sinks with. A nil ring means a torn-down process — return an
// inert ring rather than nil so a racing start cannot panic (the node
// still runs in ring mode, which the deployment's wire format requires;
// its publishes drop, exactly like traffic from a down process).
func (s *Sharded) ringView() *dissem.Ring {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sring == nil {
		return dissem.Inert()
	}
	return s.sring.Ring()
}

// fdView returns group g's facade over the live shared detector. Group
// nodes only start after Start boots the detector, so a nil here means a
// torn-down process — return an inert facade rather than nil so a racing
// start cannot panic (it will be crashed anyway).
func (s *Sharded) fdView(g GroupID) fd.API {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sfd == nil {
		return fd.InertView(s.cfg.PID, s.cfg.N, s.cfg.FD, g)
	}
	return s.sfd.View(g)
}

// epochStore returns the store holding the process-level cells (the
// incarnation counter, the persisted topology, the reaped set): the shared
// store, or — in a per-group-store deployment — group 0's store (the
// cells' keys are namespaced so they cannot collide with the group's own
// state; that store is pinned at construction and survives group 0's
// retirement).
func (s *Sharded) epochStore() Storage { return s.epochSt }

// Groups returns the number of ordering groups ever hosted (GroupIDs are
// dense and never reused, so this is max GroupID + 1; retired and even
// reaped groups count).
func (s *Sharded) Groups() int { return len(s.ns.Load().nodes) }

// ActiveGroups returns the unsealed groups new keys may route to,
// ascending.
func (s *Sharded) ActiveGroups() []GroupID { return s.stream.Topology().Active() }

// Epoch returns the topology epoch the live router was built under; it
// bumps on every seal or join.
func (s *Sharded) Epoch() uint64 { return s.router.Load().epoch }

// InTopology reports whether this process's topology knows group g — its
// span is spliced into the global round numbering (sealed groups
// included). A process that slept through a reshard learns the group late,
// from the ordered JOIN marker or the floor gossip's topology descriptor;
// an operator sequencing a retirement across processes should wait for
// this before asking the process to retire g.
func (s *Sharded) InTopology(g GroupID) bool {
	_, ok := s.stream.Topology().Spans[g]
	return ok
}

// Start boots the process (initialization or recovery): it logs the
// process-level epoch, starts the shared failure detector, then boots
// every group concurrently and blocks until all replay phases complete.
// On any failure every group is crashed again, so the process is either
// fully up or fully down.
func (s *Sharded) Start(ctx context.Context) error {
	s.mu.Lock()
	if s.up {
		s.mu.Unlock()
		return fmt.Errorf("abcast: sharded process %v already up", s.cfg.PID)
	}
	s.up = true
	s.startCtx = ctx
	s.mu.Unlock()

	// The process-level liveness service comes up first so every group's
	// consensus engine starts against a live oracle: one epoch log write
	// and one heartbeat stream for the whole process.
	epoch, err := node.NextProcEpoch(s.epochStore())
	if err != nil {
		s.Crash()
		return fmt.Errorf("abcast: sharded process %v: %w", s.cfg.PID, err)
	}
	sfd, err := node.StartSharedFD(ctx, s.cfg.PID, s.cfg.N, epoch, s.cfg.FD, s.net.ProcNet())
	if err != nil {
		s.Crash()
		return fmt.Errorf("abcast: sharded process %v: %w", s.cfg.PID, err)
	}
	s.mu.Lock()
	s.sfd = sfd
	s.mu.Unlock()

	if s.cfg.Protocol.RingDissem {
		// The shared payload ring follows the detector (it derives ring
		// successors from it) and precedes the group nodes (they register
		// their sinks with it as they boot).
		sring, err := node.StartSharedRing(ctx, s.cfg.PID, s.cfg.N, sfd.Detector(), s.net.DissemNet(), dissem.Options{})
		if err != nil {
			s.Crash()
			return fmt.Errorf("abcast: sharded process %v: %w", s.cfg.PID, err)
		}
		s.mu.Lock()
		s.sring = sring
		s.mu.Unlock()
	}

	// Splice in any groups a newer topology knows that this instance has
	// no node for yet (a recovery that learned of a reshard through the
	// persisted topology happens in NewSharded; this covers in-process
	// crash/recover cycles that slept through a live AddGroup).
	s.ensureGroups(s.stream.Topology())

	ns := s.ns.Load()
	errs := make([]error, len(ns.nodes))
	var wg sync.WaitGroup
	for g, n := range ns.nodes {
		if n == nil {
			continue
		}
		wg.Add(1)
		go func(g int, n *node.Node) {
			defer wg.Done()
			errs[g] = n.Start(ctx)
		}(g, n)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			s.Crash()
			return fmt.Errorf("abcast: sharded group %d: %w", g, err)
		}
	}
	// Re-arm the retirement seals on the fresh incarnations (the stream
	// outlives incarnations, the protocols do not).
	s.applySeals()
	if s.tuner != nil {
		s.tuner.Start()
	}
	return nil
}

// Crash kills every group of the process (and the shared failure
// detector), losing all volatile state; the stable store(s) survive. Call
// Start to recover.
func (s *Sharded) Crash() {
	if s.tuner != nil {
		s.tuner.Stop()
	}
	s.mu.Lock()
	s.up = false
	sfd := s.sfd
	s.sfd = nil
	sring := s.sring
	s.sring = nil
	s.mu.Unlock()
	for _, n := range s.ns.Load().nodes {
		if n != nil {
			n.Crash() // each group unregisters its sink from the shared ring
		}
	}
	if sring != nil {
		sring.Stop()
	}
	if sfd != nil {
		sfd.Stop()
	}
}

// Up reports whether every (unreaped) group of the process is running.
func (s *Sharded) Up() bool {
	live := 0
	for _, n := range s.ns.Load().nodes {
		if n == nil {
			continue
		}
		if !n.Up() {
			return false
		}
		live++
	}
	return live > 0
}

// Route returns the group the live router places key on (the configured
// Router, or the default consistent-hash ring over the currently active
// groups).
func (s *Sharded) Route(key []byte) GroupID { return s.router.Load().r.Route(key) }

// FD returns the live process-level failure-detector view shared by every
// group (nil when the process is down). All groups' facades read the same
// state, so one query answers for the whole process.
func (s *Sharded) FD() fd.API {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sfd == nil {
		return nil
	}
	return s.sfd.Detector()
}

// Broadcast routes key to its group and A-broadcasts payload there. It
// returns the owning group and the message identity (unique within that
// group). A custom Router that places the key outside the known groups is
// an error, not a panic.
//
// A broadcast in flight while its group is sealed for retirement is
// bounced with ErrSealed; when the default router is in use the call
// re-routes the key on the post-seal ring (the seal swapped the router
// before the protocol started bouncing) and retries with a fresh message
// identity, so callers only ever see ErrSealed with a custom Router that
// keeps placing the key on the sealed group.
func (s *Sharded) Broadcast(ctx context.Context, key, payload []byte) (GroupID, MsgID, error) {
	last := GroupID(-1)
	for {
		g := s.router.Load().r.Route(key)
		if err := s.checkGroup(g); err != nil {
			return g, MsgID{}, fmt.Errorf("abcast: router returned unknown group %v (groups=%d)", g, s.Groups())
		}
		n := s.nodeAt(g)
		if n == nil {
			return g, MsgID{}, fmt.Errorf("abcast: router returned retired group %v", g)
		}
		id, err := n.Broadcast(ctx, payload)
		if !errors.Is(err, ErrSealed) || g == last {
			return g, id, err
		}
		// Sealed under us: the topology moved and the router with it —
		// re-route and retry. ErrSealed guarantees the message was NOT
		// delivered, so the fresh identity cannot duplicate it. One equal
		// re-route means the router is pinned (custom): surface the error.
		last = g
	}
}

// BroadcastTo A-broadcasts payload on an explicitly chosen group. A sealed
// group returns ErrSealed (the explicit choice is not re-routed).
func (s *Sharded) BroadcastTo(ctx context.Context, g GroupID, payload []byte) (MsgID, error) {
	if err := s.checkGroup(g); err != nil {
		return MsgID{}, err
	}
	n := s.nodeAt(g)
	if n == nil {
		return MsgID{}, fmt.Errorf("abcast: group %v retired", g)
	}
	return n.Broadcast(ctx, payload)
}

// BroadcastToAsync submits payload on group g without waiting for
// ordering (open-loop load generation).
func (s *Sharded) BroadcastToAsync(g GroupID, payload []byte) (MsgID, error) {
	if err := s.checkGroup(g); err != nil {
		return MsgID{}, err
	}
	p := s.protoAt(g)
	if p == nil {
		return MsgID{}, node.ErrDown
	}
	return p.BroadcastAsync(payload)
}

func (s *Sharded) checkGroup(g GroupID) error {
	if n := s.Groups(); g < 0 || int(g) >= n {
		return fmt.Errorf("abcast: group %v out of range [0,%d)", g, n)
	}
	return nil
}

// Delivered reports whether id is in group g's delivery sequence.
func (s *Sharded) Delivered(g GroupID, id MsgID) bool {
	p := s.protoAt(g)
	return p != nil && p.Delivered(id)
}

// Sequence returns group g's A-deliver-sequence (base snapshot plus
// explicit suffix).
func (s *Sharded) Sequence(g GroupID) (Snapshot, []Delivery) {
	p := s.protoAt(g)
	if p == nil {
		return Snapshot{}, nil
	}
	return p.Sequence()
}

// CheckpointNow forces one checkpoint on every group of the process
// (Fig. 4 lines (b)/(c)), the sharded counterpart of
// Process.CheckpointNow. With MergedDelivery set, each group's fold
// stops at the process-wide merge frontier, so forcing checkpoints never
// destroys rounds a merge consumer still needs.
func (s *Sharded) CheckpointNow() error {
	for g, n := range s.ns.Load().nodes {
		if n == nil {
			continue // reaped
		}
		p := n.Proto()
		if p == nil {
			return fmt.Errorf("abcast: group %d is down", g)
		}
		if err := p.CheckpointNow(); err != nil {
			return fmt.Errorf("abcast: checkpoint group %d: %w", g, err)
		}
	}
	// Folds just advanced the merge base: a drained retired group may now
	// be reapable. Opportunistic only — never block a checkpoint behind a
	// reshard in progress.
	if s.reshardMu.TryLock() {
		s.reapLocked()
		s.reshardMu.Unlock()
	}
	return nil
}

// Round returns group g's round counter (its next Consensus instance).
func (s *Sharded) Round(g GroupID) uint64 {
	p := s.protoAt(g)
	if p == nil {
		return 0
	}
	return p.Round()
}

// UnorderedLen returns the size of group g's Unordered set
// (observability: a non-empty set means ordering work is pending).
func (s *Sharded) UnorderedLen(g GroupID) int {
	p := s.protoAt(g)
	if p == nil {
		return 0
	}
	return p.UnorderedLen()
}

// Merged returns the deterministic cross-group interleave of this
// process's delivery sequences: rounds in increasing number, groups in
// increasing GroupID within a round. Any two processes' merges agree on
// the rounds both cover, so the result is one global total order over all
// groups, each Delivery tagged with its owning Group ((Group, Msg.ID) is
// the global identity — MsgIDs are unique only per group).
//
// The output covers rounds [from, rounds): rounds is the merge frontier
// (rounds every group has decided here), from the highest round
// checkpointing has folded into a base snapshot. With MergedDelivery set,
// folds stop at the merge frontier, so successive Merged calls (and any
// MergeCursor) always see a contiguous sequence across checkpoints; the
// folded prefix itself is represented by the groups' base snapshots
// (Sequence). ok is false only while the process is down. For online
// consumption without the per-call recompute, use MergeCursor.
func (s *Sharded) Merged() (merged []Delivery, from, rounds uint64, ok bool) {
	seqs, err := s.sequences()
	if err != nil {
		return nil, 0, 0, false
	}
	merged, from, rounds = group.MergeT(seqs, s.stream.Topology())
	return merged, from, rounds, true
}

// sequences snapshots every group's delivery sequence (MergeT input).
// Reaped groups are omitted — MergeT treats an absent sealed group as
// fully decided, and the reap gate guarantees every consumer has already
// passed its final round.
func (s *Sharded) sequences() ([]group.Sequence, error) {
	ns := s.ns.Load()
	seqs := make([]group.Sequence, 0, len(ns.nodes))
	for g, n := range ns.nodes {
		if n == nil {
			continue // reaped
		}
		p := n.Proto()
		if p == nil {
			return nil, fmt.Errorf("abcast: group %d is down", g)
		}
		// Round is read before Sequence: between the two reads more
		// rounds may commit, which only under-reports the frontier —
		// never claims a round the sequence does not yet cover.
		rounds := p.Round()
		base, suffix := p.Sequence()
		seqs = append(seqs, group.Sequence{
			Group:      GroupID(g),
			Base:       base,
			Deliveries: suffix,
			Rounds:     rounds,
		})
	}
	return seqs, nil
}

// MergeCursor is a streaming subscription to the merged cross-group
// sequence: per-group round frontiers plus a buffer of complete rounds,
// advanced as groups commit. Drain it with Next; see Sharded.MergeCursor.
type MergeCursor = group.Cursor

// MergeCursor subscribes a streaming cursor to this process's merged
// cross-group sequence. The cursor's Next output begins at the current
// merge base (everything older is represented by the groups' base
// snapshots) and is byte-identical to what batch Merged computes from
// that base on — delivered online and incrementally instead of recomputed
// per call. Each round advances in O(groups log groups); a Next poll that
// finds no new complete round allocates nothing.
//
// The cursor keeps working across crash/recovery of this process's groups
// (recovery replay deduplicates), but a Δ-triggered state transfer that
// skips rounds leaves it permanently lagged (ErrMergeCursorLagged from
// Next) — resynchronize by adopting the base snapshots and resubscribing.
// Processes running checkpointing in merged mode should set
// ShardedConfig.MergedDelivery so checkpoint folds never outrun the
// merge. Close the cursor when done to stop buffering.
func (s *Sharded) MergeCursor() (*MergeCursor, error) {
	return s.stream.Subscribe(s.sequences)
}

// MergePush is a push-mode subscription to the merged cross-group
// sequence: the same output as a MergeCursor, delivered over a bounded
// channel by an adapter goroutine instead of polled. See Sharded.MergeChan.
type MergePush = group.PushCursor

// MergeChan subscribes a push-mode consumer to this process's merged
// cross-group sequence: every delivery a MergeCursor would return from
// Next arrives on the returned subscription's C() channel in the same
// deterministic merge order. buf is the channel capacity (minimum 1) — the
// bounded buffer between the merge and the consumer. A consumer that stops
// reading exerts backpressure: the adapter blocks, the merge stops being
// drained, and rounds accumulate upstream exactly as they would for an
// undrained poll cursor; nothing is dropped or reordered.
//
// The channel closes when the subscription ends: after Close (Err() == nil)
// or when a state transfer outruns the merge (Err() wraps
// ErrMergeCursorLagged — resynchronize by adopting the groups' base
// snapshots and resubscribing, as with MergeCursor). The same
// crash/recovery caveats as MergeCursor apply.
func (s *Sharded) MergeChan(buf int) (*MergePush, error) {
	return s.stream.SubscribePush(s.sequences, buf)
}

// MergeFrontier returns the process-wide merge frontier: the highest
// round every group of this process has committed, i.e. how far Merged /
// MergeCursor output can extend right now.
func (s *Sharded) MergeFrontier() uint64 { return s.stream.Frontier() }

// ErrMergeCursorLagged is returned by MergeCursor.Next after a state
// transfer skipped rounds the cursor never saw; resubscribe to recover.
var ErrMergeCursorLagged = group.ErrCursorLagged

// syncCounter is implemented by engines that count their fsyncs
// (storage.WAL); the stats rollup uses it to report shared-WAL syncs once.
type syncCounter interface {
	SyncCount() int64
}

// ShardedStats is the cross-group stats rollup of one sharded process.
type ShardedStats struct {
	// PerGroup holds each group's protocol counters, indexed by GroupID.
	PerGroup []Stats
	// Total is the field-wise aggregation over all groups (sums;
	// RecoveredFromCkpt is OR-ed).
	Total Stats
	// WALSyncs counts the fsyncs of the underlying group-commit
	// engine(s), without double-counting: a store shared by all groups
	// is read once, per-group stores are summed. 0 when no engine in
	// use exposes a sync count.
	WALSyncs int64
}

// Stats returns the per-group and rolled-up counters of the live process.
// Reaped groups report zero counters.
func (s *Sharded) Stats() ShardedStats {
	ns := s.ns.Load()
	st := ShardedStats{PerGroup: make([]Stats, len(ns.nodes))}
	for g, n := range ns.nodes {
		if n == nil {
			continue
		}
		p := n.Proto()
		if p == nil {
			continue
		}
		st.PerGroup[g] = p.Stats()
		addStats(&st.Total, st.PerGroup[g])
	}
	if sc, ok := s.shared.(syncCounter); ok {
		// One engine under every group: its fsyncs are shared, count
		// them exactly once.
		st.WALSyncs = sc.SyncCount()
	} else if s.cfg.GroupStore != nil {
		seen := make(map[syncCounter]bool)
		for _, gst := range ns.stores {
			if gst == nil {
				continue
			}
			if sc, ok := gst.(syncCounter); ok && !seen[sc] {
				seen[sc] = true
				st.WALSyncs += sc.SyncCount()
			}
		}
	}
	return st
}

// addStats accumulates o into t field-wise.
func addStats(t *Stats, o Stats) {
	t.Rounds += o.Rounds
	t.EmptyRounds += o.EmptyRounds
	t.Delivered += o.Delivered
	t.Broadcasts += o.Broadcasts
	t.GossipSent += o.GossipSent
	t.GossipReceived += o.GossipReceived
	t.DigestsSent += o.DigestsSent
	t.PullsSent += o.PullsSent
	t.PullsServed += o.PullsServed
	t.StateSent += o.StateSent
	t.StateAdopted += o.StateAdopted
	t.Checkpoints += o.Checkpoints
	t.ReplayedRounds += o.ReplayedRounds
	t.RecoveredFromCkpt = t.RecoveredFromCkpt || o.RecoveredFromCkpt
	t.RecoveredUnordered += o.RecoveredUnordered
	t.ProposalsSubmitted += o.ProposalsSubmitted
	t.PipelinedProposals += o.PipelinedProposals
	t.ProposedMessages += o.ProposedMessages
	t.DeliveredByTransfer += o.DeliveredByTransfer
	t.TentativeDeliveries += o.TentativeDeliveries
	t.TentativeConfirmed += o.TentativeConfirmed
	t.TentativeRevoked += o.TentativeRevoked
	t.HeartbeatRounds += o.HeartbeatRounds
	t.RingPublished += o.RingPublished
	t.PayloadStalls += o.PayloadStalls
	t.BatchFullSeals += o.BatchFullSeals
	t.BatchTimerSeals += o.BatchTimerSeals
	t.StateSentGCForced += o.StateSentGCForced
}

// drainWindow is the W carried in SEAL markers: an upper bound on the
// deepest proposal pipeline any process runs, so a proposer whose window
// reaches past round r_s+W must have committed — and therefore delivered —
// the seal at r_s, and proposes no application content.
func (s *Sharded) drainWindow() uint64 {
	w := 1
	if d := s.cfg.Protocol.PipelineDepth; d > w {
		w = d
	}
	if d := s.cfg.Protocol.coreConfig().MaxPipelineDepth; d > w {
		w = d // adaptive resize headroom: the tuner may deepen past the static depth
	}
	return uint64(w)
}

// remapOrphanSeq tags an orphan's sequence number with its retiring
// group's identity, making the re-injected identity disjoint from the
// successor group's native ones: per-group sequence counters are
// independent, so the original (sender, incarnation, seq) may already name
// a different message in the successor, and the dedup that makes the
// injection idempotent would then silently swallow the orphan. GroupIDs
// are never reused and native counters stay far below 2^48, so the tag is
// collision-free (an orphan re-orphaned through a chain of retirements
// keeps only the most recent tag, which stays deterministic because every
// process walks the same chain).
func remapOrphanSeq(retiring GroupID, seq uint64) uint64 {
	return uint64(retiring+1)<<48 | seq&(1<<48-1)
}

// retiredNamespace is the namespace inside the successor's store that a
// retired group's sealed history is archived under.
func retiredNamespace(g GroupID) string {
	return fmt.Sprintf("retired/g%d/", g)
}

// AddGroup splices one fresh ordering group into the live deployment and
// returns its GroupID. Call it on ONE process per scale-out (each call
// mints a new group; reshard operations must be serialized cluster-wide
// by the operator): the caller builds and boots its local member node,
// then announces a JOIN marker in the anchor group, whose agreed delivery
// position fixes the new group's offset in the global round space. Every
// other process splices its own member node in when the marker reaches it
// (or when the floor gossip's topology descriptor does) — no call needed
// there, including processes that were down during the reshard. The call
// returns once the local topology includes the group and the local node
// is up; from that point the default router places ~1/G of the keyspace
// on it.
func (s *Sharded) AddGroup(ctx context.Context) (GroupID, error) {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()

	s.mu.Lock()
	up := s.up
	s.mu.Unlock()
	if !up {
		return 0, fmt.Errorf("abcast: sharded process %v is down", s.cfg.PID)
	}

	// The agreed new GroupID: one past every group ever hosted. Serialized
	// resharding makes this the same number at every process.
	gid := GroupID(s.Groups())
	if sp := s.stream.Topology().Spans; len(sp) > int(gid) {
		for g := range sp {
			if g >= gid {
				gid = g + 1
			}
		}
	}
	s.net.Grow(int(gid) + 1)

	// Build, install and boot the local member node before announcing:
	// the group must be able to order the moment the marker lands.
	s.mu.Lock()
	ns := s.ns.Load()
	if int(gid) >= len(ns.nodes) {
		grown := &nodeSet{nodes: make([]*node.Node, gid+1), stores: make([]Storage, gid+1)}
		copy(grown.nodes, ns.nodes)
		copy(grown.stores, ns.stores)
		ns = grown
	}
	n := ns.nodes[gid]
	if n == nil {
		gst, built, err := s.buildGroup(gid)
		if err != nil {
			s.mu.Unlock()
			return gid, err
		}
		n = built
		ns.nodes[gid], ns.stores[gid] = n, gst
		s.ns.Store(ns)
		if s.tuner != nil {
			s.tuner.AddGroup(node.TuneGroup(n))
		}
	}
	bootCtx := s.startCtx
	s.mu.Unlock()
	if !n.Up() {
		// Boot under the process's Start context, not the caller's: the
		// node outlives this call, and a caller timeout must not take the
		// freshly minted group's incarnation down with it.
		if err := n.Start(bootCtx); err != nil {
			return gid, fmt.Errorf("abcast: start group %v: %w", gid, err)
		}
	}

	// Announce until the marker (ours or a peer's) lands. A sealed anchor
	// means a retirement raced the join: re-read the topology for the new
	// anchor and announce there.
	for {
		if _, known := s.stream.Topology().Spans[gid]; known {
			break
		}
		anchor, ok := s.stream.Topology().Anchor()
		if !ok {
			return gid, fmt.Errorf("abcast: no active anchor group to order the join")
		}
		_, err := s.BroadcastTo(ctx, anchor, group.EncodeJoinMarker(gid))
		if err == nil || errors.Is(err, ErrSealed) {
			// Delivered locally (the broadcast waits for it) or bounced
			// by a racing seal; either way re-check the topology.
			if _, known := s.stream.Topology().Spans[gid]; known {
				break
			}
			if errors.Is(err, ErrSealed) {
				continue // pick the post-seal anchor
			}
			// Delivered but the topology hook lags the commit by a
			// goroutine handoff: poll it in.
			if err := s.awaitTopology(ctx, gid); err != nil {
				return gid, err
			}
			break
		}
		if ctx.Err() != nil {
			return gid, ctx.Err()
		}
		return gid, fmt.Errorf("abcast: announce join of %v: %w", gid, err)
	}
	return gid, nil
}

// awaitTopology polls until the local topology knows g.
func (s *Sharded) awaitTopology(ctx context.Context, g GroupID) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if _, known := s.stream.Topology().Spans[g]; known {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// RetireGroup drains ordering group g out of the live deployment. Every
// process calls RetireGroup for the same logical scale-in (serialized
// cluster-wide by the operator); each announces the SEAL marker in g
// itself — idempotent, the first one ordered fixes the drain boundary —
// then waits for the group's sequence to seal shut at its final round,
// re-injects the drained group's leftover unordered messages into the
// active groups (identity-remapped, deduplicated, so all processes doing
// the same is idempotent), and archives the group's namespace into the
// anchor group's store under "retired/g<g>/".
//
// The retired node stays alive and quiescent (no proposals, no new
// admissions) until every merge consumer — local and, via the gossiped
// cluster floor, remote — has passed its final round; ReapRetired then
// stops it and purges its namespace. The call is idempotent: crashed mid-
// retirement, call it again.
func (s *Sharded) RetireGroup(ctx context.Context, g GroupID) error {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()

	if err := s.checkGroup(g); err != nil {
		return err
	}
	if s.nodeAt(g) == nil {
		return fmt.Errorf("abcast: group %v already retired and reaped", g)
	}
	topo := s.stream.Topology()
	sp, known := topo.Spans[g]
	if !known {
		return fmt.Errorf("abcast: group %v not in the topology", g)
	}
	if !sp.Sealed {
		if len(topo.Active()) <= 1 {
			return fmt.Errorf("abcast: cannot retire the last active group %v", g)
		}
		if _, err := s.BroadcastTo(ctx, g, group.EncodeSealMarker(s.drainWindow())); err != nil && !errors.Is(err, ErrSealed) {
			// ErrSealed is success: a peer's marker won the race (or the
			// drain cut our waiter) — the group IS sealed.
			return fmt.Errorf("abcast: announce seal of %v: %w", g, err)
		}
	}

	// Wait for the drain through the stream, not the protocol: the stream
	// outlives incarnations, so the wait survives crash/recovery of the
	// group under it.
	start := time.Now()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for !s.stream.Drained(g) {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	drainNS := time.Since(start).Nanoseconds()

	topo = s.stream.Topology()
	sp = topo.Spans[g]
	p := s.protoAt(g)
	if p == nil {
		return fmt.Errorf("abcast: group %v is down; recover and retry", g)
	}

	// Orphans: admitted before the seal, never ordered by the drain
	// rounds. Every process re-injects its leftovers into the active
	// groups — identity-remapped so the successor's dedup distinguishes
	// them from its native messages, routed deterministically so every
	// process picks the same successor. Marker payloads never cross
	// groups (a re-injected SEAL would seal the successor).
	orphans := 0
	for _, m := range p.TakeOrphans() {
		if group.IsMarker(m.Payload) {
			continue
		}
		succ := s.orphanSuccessor(topo, m.Payload)
		spProto := s.protoAt(succ)
		if spProto == nil {
			return fmt.Errorf("abcast: successor group %v is down; recover and retry", succ)
		}
		m.ID.Seq = remapOrphanSeq(g, m.ID.Seq)
		if spProto.AddDisseminated(m) {
			orphans++
		}
	}
	s.rm.addOrphans(int64(orphans))
	s.flight().Event(obs.EvReshardDrain, g, sp.Final+1, int64(orphans), drainNS, "")

	// Archive the sealed namespace into the anchor's store: on a shared
	// WAL engine this rides the compactor's live-state rewrite (the
	// export enumerates exactly the live index) and lands as ordinary
	// writes the next commit group fsyncs.
	anchor, ok := topo.Anchor()
	if !ok {
		return fmt.Errorf("abcast: no active group to archive %v into", g)
	}
	ns := s.ns.Load()
	src, dst := ns.stores[g], ns.stores[anchor]
	if src != nil && dst != nil {
		keys, bytes, err := storage.ExportNamespace(src, storage.NewPrefixed(dst, retiredNamespace(g)))
		if err != nil {
			return fmt.Errorf("abcast: archive group %v: %w", g, err)
		}
		s.rm.addMigrated(int64(keys), bytes)
		s.flight().Event(obs.EvReshardMigrate, g, 0, int64(keys), bytes, "")
	}

	s.rm.addDrain(drainNS)
	s.reapLocked() // usually too early (consumers lag), but free to try
	return nil
}

// orphanSuccessor picks the active group an orphan payload is re-injected
// into: the live router's placement when it lands on an active group, the
// anchor otherwise. Both are pure functions of (payload, topology), so
// every process picks the same successor.
func (s *Sharded) orphanSuccessor(topo *group.Topology, payload []byte) GroupID {
	g := s.router.Load().r.Route(payload)
	if sp, ok := topo.Spans[g]; ok && !sp.Sealed {
		return g
	}
	if anchor, ok := topo.Anchor(); ok {
		return anchor
	}
	return g
}

// ReapRetired stops and purges retired groups whose sealed history no
// consumer can still need: the group is drained, the local merge base
// (checkpoint folds) has passed its final round, and the gossiped
// cluster-wide floor says every fresh peer's merge has too. It returns how
// many groups were reaped. CheckpointNow calls it opportunistically; call
// it directly to reclaim eagerly.
func (s *Sharded) ReapRetired() int {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	return s.reapLocked()
}

func (s *Sharded) reapLocked() int {
	topo := s.stream.Topology()
	seqs, err := s.sequences()
	if err != nil {
		return 0 // some group down: cannot assess the merge base
	}
	base := group.MergeBaseT(seqs, topo)
	floor := s.floors.ClusterFloor(s.peers)
	reaped := 0
	for g, sp := range topo.Spans {
		if !sp.Sealed || s.nodeAt(g) == nil || !s.stream.Drained(g) {
			continue
		}
		final := sp.Offset + sp.Final
		if base < final+1 || floor < final+1 {
			continue
		}
		s.mu.Lock()
		ns := s.ns.Load()
		n, st := ns.nodes[g], ns.stores[g]
		next := &nodeSet{nodes: make([]*node.Node, len(ns.nodes)), stores: make([]Storage, len(ns.stores))}
		copy(next.nodes, ns.nodes)
		copy(next.stores, ns.stores)
		next.nodes[g], next.stores[g] = nil, nil
		s.ns.Store(next)
		s.reaped[g] = true
		gs := make([]GroupID, 0, len(s.reaped))
		for rg := range s.reaped {
			gs = append(gs, rg)
		}
		s.mu.Unlock()
		if err := s.epochSt.Put(keyReaped, encodeReaped(gs)); err != nil {
			s.flight().Event(obs.EvViolation, g, 0, 0, 0, "persist reaped set: "+err.Error())
		}
		n.Crash()
		if st != s.epochSt {
			// The epoch store keeps the process-level cells; a hook
			// deployment that gave group 0 that store skips the purge.
			if _, err := storage.PurgeNamespace(st); err != nil {
				s.flight().Event(obs.EvViolation, g, 0, 0, 0, "purge namespace: "+err.Error())
			}
		}
		reaped++
	}
	return reaped
}

// addDrain/addOrphans/addMigrated are nil-safe metric helpers.
func (m *reshardMetrics) addDrain(ns int64) {
	if m.drainNS != nil {
		m.drainNS.Add(uint64(ns))
	}
}

func (m *reshardMetrics) addOrphans(n int64) {
	if m.orphans != nil {
		m.orphans.Add(uint64(n))
	}
}

func (m *reshardMetrics) addMigrated(keys, bytes int64) {
	if m.migratedKeys != nil {
		m.migratedKeys.Add(uint64(keys))
		m.migratedBytes.Add(uint64(bytes))
	}
}
