package abcast

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dissem"
	"repro/internal/fd"
	"repro/internal/group"
	"repro/internal/ids"
	"repro/internal/node"
	"repro/internal/storage"
	"repro/internal/tune"
)

// GroupID identifies one ordering group of a sharded process (0..G-1).
type GroupID = ids.GroupID

// Router places broadcast keys onto ordering groups; see NewHashRouter.
type Router = group.Router

// RouterFunc adapts a function as a Router (explicit custom placement).
type RouterFunc = group.RouterFunc

// NewHashRouter returns the default deterministic consistent-hash router:
// every process maps a key to the same group without coordination, and
// regrowing the group count moves only ~1/G of the keyspace.
func NewHashRouter(groups int) Router { return group.NewHashRouter(groups) }

// NewRoundRobinRouter spreads keys evenly regardless of content (placement
// is per-router-instance, not cluster-deterministic).
func NewRoundRobinRouter(groups int) Router { return group.NewRoundRobinRouter(groups) }

// ShardedNetwork multiplexes one Network among G ordering groups: frames
// are tagged with their GroupID and demultiplexed to the owning group, so
// all groups share one connection set. Like the Network it wraps, one
// ShardedNetwork is shared by every process of the cluster.
type ShardedNetwork = group.Mux

// ShardedNetOptions tunes the sharded network's write-coalescing pipeline:
// with FlushDelay > 0, small frames submitted by any of a process's groups
// within the delay window are packed into one length-delimited transport
// write (flushed earlier once FlushBytes are queued) — the network twin of
// the WAL's group-commit triggers.
type ShardedNetOptions = group.MuxOptions

// NewShardedNetwork wraps net for groups ordering groups, without write
// coalescing.
func NewShardedNetwork(net Network, groups int) *ShardedNetwork {
	return group.NewMux(net, groups)
}

// NewShardedNetworkOpts wraps net for groups ordering groups with the
// given coalescing policy.
func NewShardedNetworkOpts(net Network, groups int, opts ShardedNetOptions) *ShardedNetwork {
	return group.NewMuxOpts(net, groups, opts)
}

// ShardedConfig assembles one sharded process: G independent ordering
// groups behind one API, one transport connection set, and one stable
// store.
type ShardedConfig struct {
	// PID and N identify the process within the static group; they are
	// shared by every ordering group (each group is the same Π).
	PID ProcessID
	N   int

	// Protocol and Policy configure every group identically (groups are
	// interchangeable shards, not heterogeneous deployments).
	Protocol ProtocolOptions
	Policy   ConsensusPolicy

	// FD tunes the process-level failure detector shared by every group:
	// a sharded process sends ONE heartbeat stream per peer, whatever G
	// is, because the paper's liveness oracle is per process (§3.5) and
	// all groups of a process crash and recover together. Zero values use
	// the library defaults.
	FD FDOptions

	// Router places Broadcast keys onto groups; nil defaults to the
	// deterministic consistent-hash router. Keys that must be mutually
	// ordered must route to the same group.
	Router Router

	// GroupStore, when set, supplies each group's stable storage and the
	// store argument of NewSharded may be nil. The default carves group
	// g's storage out of the shared store as the "g<g>/" namespace
	// (storage.Prefixed), so on a group-commit WAL engine all groups
	// share fsyncs. A per-group-store deployment (one WAL per group,
	// separate fsync streams) is the main use of the hook; experiment E16
	// measures the difference.
	GroupStore func(GroupID) Storage

	// MergedDelivery declares that this process consumes the merged
	// cross-group sequence (Merged or MergeCursor) and makes application
	// checkpointing compose with it: every group's checkpoint folds only
	// rounds below the process-wide merge frontier (the highest round
	// every group has committed), so per-round delivery metadata survives
	// until the merge has passed it and the interleave stays
	// reconstructible across checkpoints and recoveries. An idle group
	// does not pin the frontier: merged mode defaults
	// Protocol.IdleHeartbeat on (50ms unless the config sets its own
	// value; negative forces it off), so a quiescent group proposes empty
	// heartbeat rounds and the frontier — with every group's checkpoint
	// reclamation behind it — keeps advancing without traffic on every
	// group. Leave MergedDelivery false when only per-group orders are
	// consumed, so checkpoints fold eagerly.
	MergedDelivery bool

	// OnDeliver receives every A-delivered message of every group, tagged
	// with its owning group (Delivery.Group). Within a group, calls are
	// ordered; across groups they interleave arbitrarily — use Merged for
	// one deterministic global sequence.
	OnDeliver func(Delivery)
	// OnRestore is invoked when group g adopts a checkpoint or state
	// transfer instead of replaying.
	OnRestore func(GroupID, Snapshot)
	// OnTentative, OnConfirm and OnRevoke enable the optimistic-delivery
	// fast path per group, with the same contract as the unsharded
	// Config hooks: tentative deliveries (tagged with their group) are
	// predictions, OnConfirm(g, upTo) certifies group g's stream below
	// upTo, OnRevoke(g, from) retracts g's unconfirmed suffix. Positions
	// are per group; the merged sequence carries only confirmed rounds.
	OnTentative func(Delivery)
	OnConfirm   func(g GroupID, upToPos uint64)
	OnRevoke    func(g GroupID, fromPos uint64)
}

// Sharded is a process running G independent ordering groups — the paper's
// protocol instantiated G times — behind one API. Each group delivers its
// own total order with the full Atomic Broadcast guarantees; across groups
// there is no ordering unless the merged sequence is consumed. Start,
// Crash and recovery act on the whole process: a crash loses every group's
// volatile state at once, exactly like an unsharded crash.
type Sharded struct {
	cfg    ShardedConfig
	groups int
	router Router
	net    *ShardedNetwork
	shared Storage // nil when every group store came from the hook
	stores []Storage
	nodes  []*node.Node
	stream *group.Stream // per-round fan-out driving Merged/MergeCursor

	mu    sync.Mutex
	up    bool
	sfd   *node.SharedFD   // live process-level failure detector (nil when down)
	sring *node.SharedRing // live process-level payload ring (nil when down or ring mode off)

	// tuner is the process's single adaptive controller (nil unless
	// Protocol.Adaptive): every group feeds it, and its one durability
	// target arbitrates the shared WAL's sync policy across all of them.
	tuner *tune.Controller
}

// NewSharded builds a sharded process over the given stable store and
// sharded network. st is the process's one shared store (each group runs
// in its own namespace of it); it may be nil when cfg.GroupStore supplies
// per-group stores. The same store(s) must be passed again after a crash
// for recovery, and the same ShardedNetwork must be shared by the whole
// cluster.
//
// As with NewProcess, a group-commit durability policy in cfg.Protocol
// (SyncEvery / MaxSyncDelay) is applied to every distinct engine in use —
// once to a shared store, per group with a GroupStore hook.
func NewSharded(cfg ShardedConfig, st Storage, net *ShardedNetwork) (*Sharded, error) {
	groups := net.Groups()
	if cfg.N <= 0 {
		return nil, fmt.Errorf("abcast: sharded config needs N > 0")
	}
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, err
	}
	if st == nil && cfg.GroupStore == nil {
		return nil, fmt.Errorf("abcast: sharded process needs a shared store or a GroupStore hook")
	}
	if st != nil && cfg.GroupStore != nil {
		// Ambiguous: nothing would write through st, but Stats would
		// read its sync counter and the durability policy would arm its
		// group-commit timer. Refuse rather than misreport.
		return nil, fmt.Errorf("abcast: pass either a shared store or a GroupStore hook, not both")
	}
	s := &Sharded{
		cfg:    cfg,
		groups: groups,
		router: cfg.Router,
		net:    net,
		shared: st,
		stores: make([]Storage, groups),
		nodes:  make([]*node.Node, groups),
		stream: group.NewStream(groups),
	}
	if s.router == nil {
		s.router = group.NewHashRouter(groups)
	}
	if st != nil {
		cfg.Protocol.applyGroupCommit(st)
	}
	if cfg.MergedDelivery && cfg.Protocol.IdleHeartbeat == 0 {
		// Merged mode needs idle groups to keep their round counters
		// moving or the merge frontier (and every group's checkpoint
		// reclamation) pins on the first quiescent group. A negative
		// IdleHeartbeat opts out explicitly (coreConfig clamps it to 0).
		cfg.Protocol.IdleHeartbeat = 50 * time.Millisecond
	}
	for g := 0; g < groups; g++ {
		gid := GroupID(g)
		var gst Storage
		if cfg.GroupStore != nil {
			gst = cfg.GroupStore(gid)
			if gst == nil {
				return nil, fmt.Errorf("abcast: GroupStore returned nil for group %v", gid)
			}
			cfg.Protocol.applyGroupCommit(gst)
		} else {
			gst = storage.NewPrefixed(st, group.StoreNamespace(gid))
		}
		s.stores[g] = gst

		coreCfg := cfg.Protocol.coreConfig()
		coreCfg.OnDeliver = cfg.OnDeliver
		if restore := cfg.OnRestore; restore != nil {
			coreCfg.OnRestore = func(sn Snapshot) { restore(gid, sn) }
		}
		coreCfg.OnTentative = cfg.OnTentative
		coreCfg.OnConfirm = cfg.OnConfirm
		coreCfg.OnRevoke = cfg.OnRevoke
		// Every group feeds the process's per-round stream (it also
		// tracks the decided counters Merged and MergeCursor use); the
		// merge floor gates checkpoint folds only when the merged
		// sequence is declared consumed, so an idle group cannot pin
		// reclamation of processes that never merge.
		coreCfg.OnRound = s.stream.NoteRound
		coreCfg.OnRoundSkip = s.stream.NoteSkip
		if cfg.MergedDelivery {
			coreCfg.MergeFloor = s.stream.Frontier
		}
		ncfg := node.Config{
			PID:       cfg.PID,
			N:         cfg.N,
			Group:     gid,
			Core:      coreCfg,
			Consensus: cfg.Protocol.consensusConfig(cfg.Policy),
			FD:        cfg.FD,
			// Every group's consensus engine reads the one process-level
			// detector through its own facade; the group nodes send no
			// heartbeats of their own.
			SharedFD: func() fd.API { return s.fdView(gid) },
		}
		if cfg.Protocol.RingDissem {
			// All groups of the process share one payload ring over the
			// mux's dissem lane (the ring twin of the shared detector):
			// G groups cost one successor stream, not G.
			ncfg.SharedRing = s.ringView
		}
		s.nodes[g] = node.New(ncfg, gst, net.Net(gid))
	}
	if cfg.Protocol.Adaptive {
		// ONE controller for the whole process: each group is a target,
		// and the single durability target arbitrates the shared WAL's
		// group-commit policy from the aggregate record rate (the WAL's
		// counters are process-wide, so any busy group keeps amortization
		// on for all of them). Per-group stores register each distinct
		// engine once.
		ctl, err := tune.New(cfg.Protocol.tuneOptions(), nil)
		if err != nil {
			return nil, err
		}
		for _, n := range s.nodes {
			ctl.AddGroup(node.TuneGroup(n))
		}
		if st != nil {
			if sy, ok := node.TuneSync(st); ok {
				ctl.AddSync(sy)
			}
		} else {
			seen := make(map[*storage.WAL]bool)
			for g, gst := range s.stores {
				if w := node.FindWAL(gst); w != nil && !seen[w] {
					seen[w] = true
					if sy, ok := node.TuneSync(gst); ok {
						sy.Name = fmt.Sprintf("g%d", g)
						ctl.AddSync(sy)
					}
				}
			}
		}
		s.tuner = ctl
	}
	return s, nil
}

// ringView returns the live process-level ring group nodes register their
// payload sinks with. A nil ring means a torn-down process — return an
// inert ring rather than nil so a racing start cannot panic (the node
// still runs in ring mode, which the deployment's wire format requires;
// its publishes drop, exactly like traffic from a down process).
func (s *Sharded) ringView() *dissem.Ring {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sring == nil {
		return dissem.Inert()
	}
	return s.sring.Ring()
}

// fdView returns group g's facade over the live shared detector. Group
// nodes only start after Start boots the detector, so a nil here means a
// torn-down process — return an inert facade rather than nil so a racing
// start cannot panic (it will be crashed anyway).
func (s *Sharded) fdView(g GroupID) fd.API {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sfd == nil {
		return fd.InertView(s.cfg.PID, s.cfg.N, s.cfg.FD, g)
	}
	return s.sfd.View(g)
}

// epochStore returns the store holding the process-level incarnation
// counter: the shared store, or — in a per-group-store deployment — group
// 0's store (the cell's key is namespaced so it cannot collide with the
// group's own state).
func (s *Sharded) epochStore() Storage {
	if s.shared != nil {
		return s.shared
	}
	return s.stores[0]
}

// Groups returns the number of ordering groups.
func (s *Sharded) Groups() int { return s.groups }

// Start boots the process (initialization or recovery): it logs the
// process-level epoch, starts the shared failure detector, then boots
// every group concurrently and blocks until all replay phases complete.
// On any failure every group is crashed again, so the process is either
// fully up or fully down.
func (s *Sharded) Start(ctx context.Context) error {
	s.mu.Lock()
	if s.up {
		s.mu.Unlock()
		return fmt.Errorf("abcast: sharded process %v already up", s.cfg.PID)
	}
	s.up = true
	s.mu.Unlock()

	// The process-level liveness service comes up first so every group's
	// consensus engine starts against a live oracle: one epoch log write
	// and one heartbeat stream for the whole process.
	epoch, err := node.NextProcEpoch(s.epochStore())
	if err != nil {
		s.Crash()
		return fmt.Errorf("abcast: sharded process %v: %w", s.cfg.PID, err)
	}
	sfd, err := node.StartSharedFD(ctx, s.cfg.PID, s.cfg.N, epoch, s.cfg.FD, s.net.ProcNet())
	if err != nil {
		s.Crash()
		return fmt.Errorf("abcast: sharded process %v: %w", s.cfg.PID, err)
	}
	s.mu.Lock()
	s.sfd = sfd
	s.mu.Unlock()

	if s.cfg.Protocol.RingDissem {
		// The shared payload ring follows the detector (it derives ring
		// successors from it) and precedes the group nodes (they register
		// their sinks with it as they boot).
		sring, err := node.StartSharedRing(ctx, s.cfg.PID, s.cfg.N, sfd.Detector(), s.net.DissemNet(), dissem.Options{})
		if err != nil {
			s.Crash()
			return fmt.Errorf("abcast: sharded process %v: %w", s.cfg.PID, err)
		}
		s.mu.Lock()
		s.sring = sring
		s.mu.Unlock()
	}

	errs := make([]error, s.groups)
	var wg sync.WaitGroup
	for g, n := range s.nodes {
		wg.Add(1)
		go func(g int, n *node.Node) {
			defer wg.Done()
			errs[g] = n.Start(ctx)
		}(g, n)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			s.Crash()
			return fmt.Errorf("abcast: sharded group %d: %w", g, err)
		}
	}
	if s.tuner != nil {
		s.tuner.Start()
	}
	return nil
}

// Crash kills every group of the process (and the shared failure
// detector), losing all volatile state; the stable store(s) survive. Call
// Start to recover.
func (s *Sharded) Crash() {
	if s.tuner != nil {
		s.tuner.Stop()
	}
	s.mu.Lock()
	s.up = false
	sfd := s.sfd
	s.sfd = nil
	sring := s.sring
	s.sring = nil
	s.mu.Unlock()
	for _, n := range s.nodes {
		n.Crash() // each group unregisters its sink from the shared ring
	}
	if sring != nil {
		sring.Stop()
	}
	if sfd != nil {
		sfd.Stop()
	}
}

// Up reports whether every group of the process is running.
func (s *Sharded) Up() bool {
	for _, n := range s.nodes {
		if !n.Up() {
			return false
		}
	}
	return len(s.nodes) > 0
}

// Route returns the group the configured Router places key on.
func (s *Sharded) Route(key []byte) GroupID { return s.router.Route(key) }

// FD returns the live process-level failure-detector view shared by every
// group (nil when the process is down). All groups' facades read the same
// state, so one query answers for the whole process.
func (s *Sharded) FD() fd.API {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sfd == nil {
		return nil
	}
	return s.sfd.Detector()
}

// Broadcast routes key to its group and A-broadcasts payload there. It
// returns the owning group and the message identity (unique within that
// group). A custom Router that places the key outside [0, Groups) is an
// error, not a panic.
func (s *Sharded) Broadcast(ctx context.Context, key, payload []byte) (GroupID, MsgID, error) {
	g := s.router.Route(key)
	if s.checkGroup(g) != nil {
		return g, MsgID{}, fmt.Errorf("abcast: router returned out-of-range group %v (groups=%d)", g, s.groups)
	}
	id, err := s.nodes[g].Broadcast(ctx, payload)
	return g, id, err
}

// BroadcastTo A-broadcasts payload on an explicitly chosen group.
func (s *Sharded) BroadcastTo(ctx context.Context, g GroupID, payload []byte) (MsgID, error) {
	if err := s.checkGroup(g); err != nil {
		return MsgID{}, err
	}
	return s.nodes[g].Broadcast(ctx, payload)
}

// BroadcastToAsync submits payload on group g without waiting for
// ordering (open-loop load generation).
func (s *Sharded) BroadcastToAsync(g GroupID, payload []byte) (MsgID, error) {
	if err := s.checkGroup(g); err != nil {
		return MsgID{}, err
	}
	p := s.nodes[g].Proto()
	if p == nil {
		return MsgID{}, node.ErrDown
	}
	return p.BroadcastAsync(payload)
}

func (s *Sharded) checkGroup(g GroupID) error {
	if g < 0 || int(g) >= s.groups {
		return fmt.Errorf("abcast: group %v out of range [0,%d)", g, s.groups)
	}
	return nil
}

// Delivered reports whether id is in group g's delivery sequence.
func (s *Sharded) Delivered(g GroupID, id MsgID) bool {
	if s.checkGroup(g) != nil {
		return false
	}
	p := s.nodes[g].Proto()
	return p != nil && p.Delivered(id)
}

// Sequence returns group g's A-deliver-sequence (base snapshot plus
// explicit suffix).
func (s *Sharded) Sequence(g GroupID) (Snapshot, []Delivery) {
	if s.checkGroup(g) != nil {
		return Snapshot{}, nil
	}
	p := s.nodes[g].Proto()
	if p == nil {
		return Snapshot{}, nil
	}
	return p.Sequence()
}

// CheckpointNow forces one checkpoint on every group of the process
// (Fig. 4 lines (b)/(c)), the sharded counterpart of
// Process.CheckpointNow. With MergedDelivery set, each group's fold
// stops at the process-wide merge frontier, so forcing checkpoints never
// destroys rounds a merge consumer still needs.
func (s *Sharded) CheckpointNow() error {
	for g, n := range s.nodes {
		p := n.Proto()
		if p == nil {
			return fmt.Errorf("abcast: group %d is down", g)
		}
		if err := p.CheckpointNow(); err != nil {
			return fmt.Errorf("abcast: checkpoint group %d: %w", g, err)
		}
	}
	return nil
}

// Round returns group g's round counter (its next Consensus instance).
func (s *Sharded) Round(g GroupID) uint64 {
	if s.checkGroup(g) != nil {
		return 0
	}
	p := s.nodes[g].Proto()
	if p == nil {
		return 0
	}
	return p.Round()
}

// UnorderedLen returns the size of group g's Unordered set
// (observability: a non-empty set means ordering work is pending).
func (s *Sharded) UnorderedLen(g GroupID) int {
	if s.checkGroup(g) != nil {
		return 0
	}
	p := s.nodes[g].Proto()
	if p == nil {
		return 0
	}
	return p.UnorderedLen()
}

// Merged returns the deterministic cross-group interleave of this
// process's delivery sequences: rounds in increasing number, groups in
// increasing GroupID within a round. Any two processes' merges agree on
// the rounds both cover, so the result is one global total order over all
// groups, each Delivery tagged with its owning Group ((Group, Msg.ID) is
// the global identity — MsgIDs are unique only per group).
//
// The output covers rounds [from, rounds): rounds is the merge frontier
// (rounds every group has decided here), from the highest round
// checkpointing has folded into a base snapshot. With MergedDelivery set,
// folds stop at the merge frontier, so successive Merged calls (and any
// MergeCursor) always see a contiguous sequence across checkpoints; the
// folded prefix itself is represented by the groups' base snapshots
// (Sequence). ok is false only while the process is down. For online
// consumption without the per-call recompute, use MergeCursor.
func (s *Sharded) Merged() (merged []Delivery, from, rounds uint64, ok bool) {
	seqs, err := s.sequences()
	if err != nil {
		return nil, 0, 0, false
	}
	merged, from, rounds = group.Merge(seqs)
	return merged, from, rounds, true
}

// sequences snapshots every group's delivery sequence (Merge input).
func (s *Sharded) sequences() ([]group.Sequence, error) {
	seqs := make([]group.Sequence, 0, s.groups)
	for g, n := range s.nodes {
		p := n.Proto()
		if p == nil {
			return nil, fmt.Errorf("abcast: group %d is down", g)
		}
		// Round is read before Sequence: between the two reads more
		// rounds may commit, which only under-reports the frontier —
		// never claims a round the sequence does not yet cover.
		rounds := p.Round()
		base, suffix := p.Sequence()
		seqs = append(seqs, group.Sequence{
			Group:      GroupID(g),
			Base:       base,
			Deliveries: suffix,
			Rounds:     rounds,
		})
	}
	return seqs, nil
}

// MergeCursor is a streaming subscription to the merged cross-group
// sequence: per-group round frontiers plus a buffer of complete rounds,
// advanced as groups commit. Drain it with Next; see Sharded.MergeCursor.
type MergeCursor = group.Cursor

// MergeCursor subscribes a streaming cursor to this process's merged
// cross-group sequence. The cursor's Next output begins at the current
// merge base (everything older is represented by the groups' base
// snapshots) and is byte-identical to what batch Merged computes from
// that base on — delivered online and incrementally instead of recomputed
// per call. Each round advances in O(groups log groups); a Next poll that
// finds no new complete round allocates nothing.
//
// The cursor keeps working across crash/recovery of this process's groups
// (recovery replay deduplicates), but a Δ-triggered state transfer that
// skips rounds leaves it permanently lagged (ErrMergeCursorLagged from
// Next) — resynchronize by adopting the base snapshots and resubscribing.
// Processes running checkpointing in merged mode should set
// ShardedConfig.MergedDelivery so checkpoint folds never outrun the
// merge. Close the cursor when done to stop buffering.
func (s *Sharded) MergeCursor() (*MergeCursor, error) {
	return s.stream.Subscribe(s.sequences)
}

// MergePush is a push-mode subscription to the merged cross-group
// sequence: the same output as a MergeCursor, delivered over a bounded
// channel by an adapter goroutine instead of polled. See Sharded.MergeChan.
type MergePush = group.PushCursor

// MergeChan subscribes a push-mode consumer to this process's merged
// cross-group sequence: every delivery a MergeCursor would return from
// Next arrives on the returned subscription's C() channel in the same
// deterministic merge order. buf is the channel capacity (minimum 1) — the
// bounded buffer between the merge and the consumer. A consumer that stops
// reading exerts backpressure: the adapter blocks, the merge stops being
// drained, and rounds accumulate upstream exactly as they would for an
// undrained poll cursor; nothing is dropped or reordered.
//
// The channel closes when the subscription ends: after Close (Err() == nil)
// or when a state transfer outruns the merge (Err() wraps
// ErrMergeCursorLagged — resynchronize by adopting the groups' base
// snapshots and resubscribing, as with MergeCursor). The same
// crash/recovery caveats as MergeCursor apply.
func (s *Sharded) MergeChan(buf int) (*MergePush, error) {
	return s.stream.SubscribePush(s.sequences, buf)
}

// MergeFrontier returns the process-wide merge frontier: the highest
// round every group of this process has committed, i.e. how far Merged /
// MergeCursor output can extend right now.
func (s *Sharded) MergeFrontier() uint64 { return s.stream.Frontier() }

// ErrMergeCursorLagged is returned by MergeCursor.Next after a state
// transfer skipped rounds the cursor never saw; resubscribe to recover.
var ErrMergeCursorLagged = group.ErrCursorLagged

// syncCounter is implemented by engines that count their fsyncs
// (storage.WAL); the stats rollup uses it to report shared-WAL syncs once.
type syncCounter interface {
	SyncCount() int64
}

// ShardedStats is the cross-group stats rollup of one sharded process.
type ShardedStats struct {
	// PerGroup holds each group's protocol counters, indexed by GroupID.
	PerGroup []Stats
	// Total is the field-wise aggregation over all groups (sums;
	// RecoveredFromCkpt is OR-ed).
	Total Stats
	// WALSyncs counts the fsyncs of the underlying group-commit
	// engine(s), without double-counting: a store shared by all groups
	// is read once, per-group stores are summed. 0 when no engine in
	// use exposes a sync count.
	WALSyncs int64
}

// Stats returns the per-group and rolled-up counters of the live process.
func (s *Sharded) Stats() ShardedStats {
	st := ShardedStats{PerGroup: make([]Stats, s.groups)}
	for g, n := range s.nodes {
		p := n.Proto()
		if p == nil {
			continue
		}
		st.PerGroup[g] = p.Stats()
		addStats(&st.Total, st.PerGroup[g])
	}
	if sc, ok := s.shared.(syncCounter); ok {
		// One engine under every group: its fsyncs are shared, count
		// them exactly once.
		st.WALSyncs = sc.SyncCount()
	} else if s.cfg.GroupStore != nil {
		seen := make(map[syncCounter]bool)
		for _, gst := range s.stores {
			if sc, ok := gst.(syncCounter); ok && !seen[sc] {
				seen[sc] = true
				st.WALSyncs += sc.SyncCount()
			}
		}
	}
	return st
}

// addStats accumulates o into t field-wise.
func addStats(t *Stats, o Stats) {
	t.Rounds += o.Rounds
	t.EmptyRounds += o.EmptyRounds
	t.Delivered += o.Delivered
	t.Broadcasts += o.Broadcasts
	t.GossipSent += o.GossipSent
	t.GossipReceived += o.GossipReceived
	t.DigestsSent += o.DigestsSent
	t.PullsSent += o.PullsSent
	t.PullsServed += o.PullsServed
	t.StateSent += o.StateSent
	t.StateAdopted += o.StateAdopted
	t.Checkpoints += o.Checkpoints
	t.ReplayedRounds += o.ReplayedRounds
	t.RecoveredFromCkpt = t.RecoveredFromCkpt || o.RecoveredFromCkpt
	t.RecoveredUnordered += o.RecoveredUnordered
	t.ProposalsSubmitted += o.ProposalsSubmitted
	t.PipelinedProposals += o.PipelinedProposals
	t.ProposedMessages += o.ProposedMessages
	t.DeliveredByTransfer += o.DeliveredByTransfer
	t.TentativeDeliveries += o.TentativeDeliveries
	t.TentativeConfirmed += o.TentativeConfirmed
	t.TentativeRevoked += o.TentativeRevoked
	t.HeartbeatRounds += o.HeartbeatRounds
	t.RingPublished += o.RingPublished
	t.PayloadStalls += o.PayloadStalls
	t.BatchFullSeals += o.BatchFullSeals
	t.BatchTimerSeals += o.BatchTimerSeals
}
