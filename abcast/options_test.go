package abcast

import (
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/tune"
)

// TestProtocolOptionsValidateRejectsNegatives exercises every negative
// knob individually: each must surface an explicit error naming the field,
// never a silent clamp.
func TestProtocolOptionsValidateRejectsNegatives(t *testing.T) {
	cases := []struct {
		name string
		opts ProtocolOptions
	}{
		{"CheckpointEvery", ProtocolOptions{CheckpointEvery: -1}},
		{"GossipInterval", ProtocolOptions{GossipInterval: -time.Millisecond}},
		{"GossipMaxMessages", ProtocolOptions{GossipMaxMessages: -2}},
		{"PipelineDepth", ProtocolOptions{PipelineDepth: -1}},
		{"MaxBatch", ProtocolOptions{MaxBatch: -4}},
		{"MaxBatchBytes", ProtocolOptions{MaxBatchBytes: -1}},
		{"MaxBatchDelay", ProtocolOptions{MaxBatchDelay: -time.Microsecond}},
		{"LeaseTTL", ProtocolOptions{LeaseTTL: -time.Second}},
		{"SyncEvery", ProtocolOptions{SyncEvery: -8}},
		{"MaxSyncDelay", ProtocolOptions{MaxSyncDelay: -time.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if err == nil {
				t.Fatalf("negative %s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.name) {
				t.Fatalf("error %q does not name the offending field %s", err, tc.name)
			}
		})
	}
}

// TestProtocolOptionsValidateAllowsNegativeIdleHeartbeat documents the one
// deliberate exception: a negative IdleHeartbeat is the explicit opt-out
// from merged-mode heartbeats, not a misconfiguration.
func TestProtocolOptionsValidateAllowsNegativeIdleHeartbeat(t *testing.T) {
	if err := (ProtocolOptions{IdleHeartbeat: -1}).Validate(); err != nil {
		t.Fatalf("negative IdleHeartbeat rejected: %v", err)
	}
}

// TestProtocolOptionsValidateTuneBounds: with Adaptive set, bad controller
// bounds (negative values, inverted min/max pairs) are construction-time
// errors; with Adaptive off the Tune struct is inert and ignored.
func TestProtocolOptionsValidateTuneBounds(t *testing.T) {
	bad := TuneOptions{DepthMin: 6, DepthMax: 2}
	if err := (ProtocolOptions{Adaptive: true, Tune: bad}).Validate(); err == nil {
		t.Fatal("inverted DepthMin/DepthMax accepted with Adaptive on")
	}
	if err := (ProtocolOptions{Tune: bad}).Validate(); err != nil {
		t.Fatalf("inert Tune bounds rejected with Adaptive off: %v", err)
	}
	neg := TuneOptions{BatchDelayMin: -time.Millisecond}
	if err := (ProtocolOptions{Adaptive: true, Tune: neg}).Validate(); err == nil {
		t.Fatal("negative BatchDelayMin accepted with Adaptive on")
	}
	if err := (ProtocolOptions{Adaptive: true}).Validate(); err != nil {
		t.Fatalf("zero-valued adaptive options rejected: %v", err)
	}
}

// TestNewProcessRejectsInvalidOptions: validation happens at construction,
// not first use.
func TestNewProcessRejectsInvalidOptions(t *testing.T) {
	net := NewMemNetwork(1, MemNetOptions{})
	defer net.Close()
	_, err := NewProcess(Config{
		PID:      0,
		N:        1,
		Protocol: ProtocolOptions{PipelineDepth: -3},
	}, NewMemStorage(), net)
	if err == nil {
		t.Fatal("NewProcess accepted a negative PipelineDepth")
	}
}

// TestNewShardedRejectsInvalidOptions: same contract on the sharded
// constructor.
func TestNewShardedRejectsInvalidOptions(t *testing.T) {
	inner := NewMemNetwork(1, MemNetOptions{})
	defer inner.Close()
	net := NewShardedNetwork(inner, 2)
	_, err := NewSharded(ShardedConfig{
		PID:      0,
		N:        1,
		Protocol: ProtocolOptions{Adaptive: true, Tune: TuneOptions{SyncEveryMax: -1}},
	}, NewMemStorage(), net)
	if err == nil {
		t.Fatal("NewSharded accepted a negative SyncEveryMax")
	}
}

// TestTuneOptionsInheritStaticKnobs pins the "static options become the
// controller's bounds" contract: unset Tune caps inherit the corresponding
// static knob, explicit Tune caps win, and the depth cap never exceeds the
// consensus learner's ask-ahead span.
func TestTuneOptionsInheritStaticKnobs(t *testing.T) {
	o := ProtocolOptions{
		Adaptive:      true,
		MaxBatchDelay: 3 * time.Millisecond,
		PipelineDepth: 6,
		SyncEvery:     32,
		MaxSyncDelay:  4 * time.Millisecond,
	}
	got := o.tuneOptions()
	if got.BatchDelayMax != 3*time.Millisecond {
		t.Fatalf("BatchDelayMax = %v, want inherited 3ms", got.BatchDelayMax)
	}
	if got.DepthMax != 6 {
		t.Fatalf("DepthMax = %d, want inherited 6", got.DepthMax)
	}
	if got.SyncEveryMax != 32 || got.SyncDelayMax != 4*time.Millisecond {
		t.Fatalf("sync caps = (%d, %v), want inherited (32, 4ms)", got.SyncEveryMax, got.SyncDelayMax)
	}

	o.Tune = TuneOptions{DepthMax: 3, BatchDelayMax: time.Millisecond}
	got = o.tuneOptions()
	if got.DepthMax != 3 || got.BatchDelayMax != time.Millisecond {
		t.Fatalf("explicit Tune caps overridden: %+v", got)
	}

	o.Tune = TuneOptions{DepthMax: consensus.DecideWindow + 50}
	if got = o.tuneOptions(); got.DepthMax != consensus.DecideWindow {
		t.Fatalf("DepthMax = %d, want clamped to consensus.DecideWindow (%d)", got.DepthMax, consensus.DecideWindow)
	}

	// Defaults fill only at Filled() time, so tuneOptions stays a faithful
	// "what did the user constrain" view.
	var zero ProtocolOptions
	if f := zero.tuneOptions().Filled(); f.DepthMax != tune.DefaultDepthMax {
		t.Fatalf("filled DepthMax = %d, want default %d", f.DepthMax, tune.DefaultDepthMax)
	}
}
