package abcast

import (
	"repro/internal/quorum"
	"repro/internal/reduction"
	"repro/internal/rsm"
)

// KVStore is a replicated key-value state machine with deferred-update
// transaction certification (§6.2) that also implements Checkpointer
// (Fig. 5). Wire Apply into OnDeliver and Restore into OnRestore.
type KVStore = rsm.Store

// NewKVStore creates an empty replica state machine.
func NewKVStore() *KVStore { return rsm.NewStore() }

// Tx is a deferred-update transaction (read versions + writes).
type Tx = rsm.Tx

// EncodePut builds a broadcast payload for an unconditional write.
func EncodePut(key, value string) []byte { return rsm.EncodePut(key, value) }

// EncodeDel builds a broadcast payload for an unconditional delete.
func EncodeDel(key string) []byte { return rsm.EncodeDel(key) }

// EncodeTx builds a broadcast payload for a transaction commit request.
func EncodeTx(tx Tx) []byte { return rsm.EncodeTx(tx) }

// DecodeTx parses a transaction payload back into a Tx; ok is false for
// non-transaction payloads. Useful for speculating on the tentative
// delivery stream without applying it (see examples/bank-ledger).
func DecodeTx(payload []byte) (tx Tx, ok bool) { return rsm.DecodeTx(payload) }

// ReducedConsensus is Consensus implemented over Atomic Broadcast (§6.1):
// the first proposal delivered for an instance is its decision.
type ReducedConsensus = reduction.Consensus

// NewReducedConsensus creates a reduction endpoint; feed deliveries into
// its Tap method via OnDeliver.
func NewReducedConsensus() *ReducedConsensus { return reduction.New() }

// QuorumReplica is a weighted-voting replica whose writes are serialized
// by Atomic Broadcast (§6.3).
type QuorumReplica = quorum.Replica
