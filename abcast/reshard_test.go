package abcast_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/abcast"
)

// awaitGroupKnown polls until every process's topology includes g as an
// active group and its local member node answers (Groups() covers it).
func awaitGroupKnown(t *testing.T, procs []*abcast.Sharded, g abcast.GroupID, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		all := true
		for _, s := range procs {
			active := false
			for _, a := range s.ActiveGroups() {
				if a == g {
					active = true
				}
			}
			if !active || s.Groups() <= int(g) {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("group %v not active at every process", g)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedConfigValidate: construction-time validation mirrors
// ProtocolOptions.Validate and rejects out-of-range identities.
func TestShardedConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  abcast.ShardedConfig
		want string // substring of the error; empty = valid
	}{
		{"valid", abcast.ShardedConfig{PID: 0, N: 3}, ""},
		{"zero N", abcast.ShardedConfig{PID: 0, N: 0}, "N > 0"},
		{"negative N", abcast.ShardedConfig{PID: 0, N: -1}, "N > 0"},
		{"negative PID", abcast.ShardedConfig{PID: -1, N: 3}, "out of range"},
		{"PID beyond N", abcast.ShardedConfig{PID: 3, N: 3}, "out of range"},
		{"bad protocol", abcast.ShardedConfig{PID: 0, N: 3,
			Protocol: abcast.ProtocolOptions{PipelineDepth: -2}}, "PipelineDepth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// NewSharded must reject what Validate rejects.
	net := abcast.NewMemNetwork(3, abcast.MemNetOptions{Seed: 3})
	defer net.Close()
	snet := abcast.NewShardedNetwork(net, 2)
	if _, err := abcast.NewSharded(abcast.ShardedConfig{PID: 9, N: 3}, abcast.NewMemStorage(), snet); err == nil {
		t.Fatal("NewSharded accepted an out-of-range PID")
	}
}

// TestShardedAddGroupLive scales a running deployment from 2 to 3 groups:
// one process announces the join, every process splices the group in off
// the ordered marker, the router epoch bumps, and the new group orders
// traffic at every process.
func TestShardedAddGroupLive(t *testing.T) {
	const n, groups = 3, 2
	// Idle heartbeats keep quiescent groups from pinning the merge
	// frontier below the marker round.
	procs, stop := shardedCluster(t, n, groups,
		abcast.ProtocolOptions{IdleHeartbeat: 5 * time.Millisecond}, nil)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Warm every existing group so the merge has content on both sides of
	// the splice.
	for g := abcast.GroupID(0); int(g) < groups; g++ {
		id, err := procs[0].BroadcastTo(ctx, g, fmt.Appendf(nil, "pre-%d", g))
		if err != nil {
			t.Fatal(err)
		}
		awaitShardedDelivered(t, procs, g, id, 20*time.Second)
	}

	epoch0 := procs[0].Epoch()
	gid, err := procs[0].AddGroup(ctx)
	if err != nil {
		t.Fatalf("AddGroup: %v", err)
	}
	if gid != abcast.GroupID(groups) {
		t.Fatalf("AddGroup minted gid %v; want %v", gid, groups)
	}
	awaitGroupKnown(t, procs, gid, 20*time.Second)
	for p, s := range procs {
		if e := s.Epoch(); e <= epoch0 {
			t.Fatalf("p%d epoch %d did not advance past %d on join", p, e, epoch0)
		}
	}

	// The new group orders traffic, at every process, addressed explicitly
	// and through the key router (which must now place keys on it).
	id, err := procs[1].BroadcastTo(ctx, gid, []byte("post-join"))
	if err != nil {
		t.Fatalf("broadcast to joined group: %v", err)
	}
	awaitShardedDelivered(t, procs, gid, id, 20*time.Second)
	routed := false
	for i := 0; i < 4096 && !routed; i++ {
		key := fmt.Appendf(nil, "key-%d", i)
		if procs[0].Route(key) != gid {
			continue
		}
		routed = true
		if g2 := procs[2].Route(key); g2 != gid {
			t.Fatalf("routers disagree after join: %v vs %v", gid, g2)
		}
		g, rid, err := procs[0].Broadcast(ctx, key, []byte("routed"))
		if err != nil {
			t.Fatal(err)
		}
		if g != gid {
			t.Fatalf("Broadcast used %v, Route promised %v", g, gid)
		}
		awaitShardedDelivered(t, procs, g, rid, 20*time.Second)
	}
	if !routed {
		t.Fatal("router never places any key on the joined group")
	}

	// The merged order spans the splice identically everywhere, and the
	// JOIN marker itself shows up in it (that is the coordination point).
	awaitAgreedMerge(t, procs, 20*time.Second, func(m []abcast.Delivery) error {
		marker, post := false, false
		for _, d := range m {
			if abcast.IsReshardMarker(d.Msg.Payload) {
				marker = true
			}
			if d.Group == gid {
				post = true
			}
		}
		if !marker {
			return fmt.Errorf("no reshard marker in the merged order")
		}
		if !post {
			return fmt.Errorf("no post-join delivery in the merged order")
		}
		return nil
	})
}

// awaitAgreedMerge polls until every process's Merged output prefix-agrees
// with p0's and p0's satisfies check.
func awaitAgreedMerge(t *testing.T, procs []*abcast.Sharded, d time.Duration, check func([]abcast.Delivery) error) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		err := func() error {
			m0, _, _, ok := procs[0].Merged()
			if !ok {
				return fmt.Errorf("merge unavailable at p0")
			}
			for p := 1; p < len(procs); p++ {
				mp, _, _, ok := procs[p].Merged()
				if !ok {
					return fmt.Errorf("merge unavailable at p%d", p)
				}
				short := m0
				if len(mp) < len(short) {
					short = mp
				}
				for i := range short {
					if m0[i].Group != mp[i].Group || m0[i].Msg.ID != mp[i].Msg.ID {
						t.Fatalf("merged orders disagree at %d: p0=%v/%v p%d=%v/%v",
							i, m0[i].Group, m0[i].Msg.ID, p, mp[i].Group, mp[i].Msg.ID)
					}
				}
			}
			return check(m0)
		}()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("merge never converged: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedRetireGroupDrains retires one of three groups: the seal
// marker drains it shut at every process, broadcasts to it bounce with
// ErrSealed, the router stops placing keys on it, and the merged order
// stays agreed across the epoch splice.
func TestShardedRetireGroupDrains(t *testing.T) {
	const n, groups = 3, 3
	const retired = abcast.GroupID(2)
	procs, stop := shardedCluster(t, n, groups,
		abcast.ProtocolOptions{IdleHeartbeat: 5 * time.Millisecond}, nil)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for g := abcast.GroupID(0); int(g) < groups; g++ {
		id, err := procs[0].BroadcastTo(ctx, g, fmt.Appendf(nil, "pre-%d", g))
		if err != nil {
			t.Fatal(err)
		}
		awaitShardedDelivered(t, procs, g, id, 20*time.Second)
	}

	epoch0 := procs[0].Epoch()
	for p, s := range procs { // every process retires; announcements are dup-inert
		if err := s.RetireGroup(ctx, retired); err != nil {
			t.Fatalf("RetireGroup at p%d: %v", p, err)
		}
	}
	for p, s := range procs {
		if e := s.Epoch(); e <= epoch0 {
			t.Fatalf("p%d epoch %d did not advance past %d on seal", p, e, epoch0)
		}
		active := s.ActiveGroups()
		for _, a := range active {
			if a == retired {
				t.Fatalf("p%d still lists %v active after retirement: %v", p, retired, active)
			}
		}
		if len(active) != groups-1 {
			t.Fatalf("p%d active groups = %v; want %d of them", p, active, groups-1)
		}
	}

	// Sealed group bounces new work; the default router never lands there.
	if _, err := procs[0].BroadcastTo(ctx, retired, []byte("late")); !errors.Is(err, abcast.ErrSealed) {
		t.Fatalf("broadcast to sealed group: err=%v; want ErrSealed", err)
	}
	for i := 0; i < 4096; i++ {
		if g := procs[1].Route(fmt.Appendf(nil, "key-%d", i)); g == retired {
			t.Fatalf("router still places keys on the retired group")
		}
	}
	// Keyed Broadcast re-routes around a seal race instead of failing.
	if _, _, err := procs[0].Broadcast(ctx, []byte("after-retire"), []byte("x")); err != nil {
		t.Fatalf("keyed broadcast after retirement: %v", err)
	}

	// The SEAL marker is in the retired group's sequence, and the merged
	// order — spanning pre-seal deliveries of the retired group, the
	// marker, and post-seal traffic — agrees everywhere.
	_, seq := procs[0].Sequence(retired)
	sawSeal := false
	for _, d := range seq {
		if abcast.IsReshardMarker(d.Msg.Payload) {
			sawSeal = true
		}
	}
	if !sawSeal {
		t.Fatal("seal marker missing from the retired group's sequence")
	}
	id, err := procs[2].BroadcastTo(ctx, 0, []byte("post-seal"))
	if err != nil {
		t.Fatal(err)
	}
	awaitShardedDelivered(t, procs, 0, id, 20*time.Second)
	awaitAgreedMerge(t, procs, 20*time.Second, func(m []abcast.Delivery) error {
		var sawRetired, sawPost bool
		for _, d := range m {
			if d.Group == retired {
				sawRetired = true
			}
			if d.Group == 0 && string(d.Msg.Payload) == "post-seal" {
				sawPost = true
			}
		}
		if !sawRetired || !sawPost {
			return fmt.Errorf("merge does not span the splice (retired=%v post=%v)", sawRetired, sawPost)
		}
		return nil
	})

	// Retiring again is a no-op class of its own: the group is already
	// sealed and drained, so a repeat call just re-runs the idempotent
	// tail and succeeds.
	if err := procs[0].RetireGroup(ctx, retired); err != nil {
		t.Fatalf("repeated RetireGroup: %v", err)
	}
	// Reshard metrics surfaced the drain.
	if st := procs[0].Stats(); st.Total.Delivered == 0 {
		t.Fatal("stats lost deliveries across retirement")
	}
}

// TestShardedRetireOrphanTermination floods a group with asynchronous
// broadcasts and retires it immediately: messages the drain cut off must
// be re-injected into a successor group and still reach every process
// (Termination survives the reshard).
func TestShardedRetireOrphanTermination(t *testing.T) {
	const n, groups, msgs = 3, 2, 24
	const retired = abcast.GroupID(1)
	procs, stop := shardedCluster(t, n, groups, abcast.ProtocolOptions{}, nil)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	payloads := make(map[string]bool, msgs)
	for i := 0; i < msgs; i++ {
		pl := fmt.Sprintf("orphan-candidate-%d", i)
		if _, err := procs[i%n].BroadcastToAsync(retired, []byte(pl)); err != nil {
			if errors.Is(err, abcast.ErrSealed) {
				break // a racing test run's seal landed absurdly fast; rest would bounce
			}
			t.Fatal(err)
		}
		payloads[pl] = true
	}
	for p, s := range procs {
		if err := s.RetireGroup(ctx, retired); err != nil {
			t.Fatalf("RetireGroup at p%d: %v", p, err)
		}
	}

	// Every admitted payload must surface in some group's sequence at
	// every process — ordered pre-seal in the retiring group, or remapped
	// and re-injected into the successor.
	deadline := time.Now().Add(20 * time.Second)
	for {
		missing := ""
		for p, s := range procs {
			found := make(map[string]bool, len(payloads))
			for g := 0; g < s.Groups(); g++ {
				_, seq := s.Sequence(abcast.GroupID(g))
				for _, d := range seq {
					found[string(d.Msg.Payload)] = true
				}
			}
			for pl := range payloads {
				if !found[pl] {
					missing = fmt.Sprintf("p%d missing %q", p, pl)
				}
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphan never delivered after retirement: %s", missing)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedReshardRestart crashes every process after a scale-out and a
// retirement and rebuilds the deployment from its stores: the persisted
// topology restores the joined group's offset and the retired group's
// seal without replaying any marker.
func TestShardedReshardRestart(t *testing.T) {
	const n, groups = 3, 2
	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 11})
	defer net.Close()
	snet := abcast.NewShardedNetwork(net, groups)
	stores := make([]abcast.Storage, n)
	for p := range stores {
		stores[p] = abcast.NewMemStorage()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	build := func() []*abcast.Sharded {
		procs := make([]*abcast.Sharded, n)
		for p := 0; p < n; p++ {
			s, err := abcast.NewSharded(abcast.ShardedConfig{
				PID: abcast.ProcessID(p), N: n,
				Protocol: abcast.ProtocolOptions{IdleHeartbeat: 5 * time.Millisecond},
			}, stores[p], snet)
			if err != nil {
				t.Fatal(err)
			}
			procs[p] = s
		}
		for _, s := range procs {
			if err := s.Start(ctx); err != nil {
				t.Fatal(err)
			}
		}
		return procs
	}

	procs := build()
	id0, err := procs[0].BroadcastTo(ctx, 0, []byte("seed"))
	if err != nil {
		t.Fatal(err)
	}
	awaitShardedDelivered(t, procs, 0, id0, 20*time.Second)

	gid, err := procs[0].AddGroup(ctx)
	if err != nil {
		t.Fatal(err)
	}
	awaitGroupKnown(t, procs, gid, 20*time.Second)
	idNew, err := procs[1].BroadcastTo(ctx, gid, []byte("in-new-group"))
	if err != nil {
		t.Fatal(err)
	}
	awaitShardedDelivered(t, procs, gid, idNew, 20*time.Second)
	for p, s := range procs {
		if err := s.RetireGroup(ctx, 1); err != nil {
			t.Fatalf("RetireGroup at p%d: %v", p, err)
		}
	}

	for _, s := range procs {
		s.Crash()
	}
	procs = build()

	for p, s := range procs {
		if s.Groups() != groups+1 {
			t.Fatalf("p%d rebuilt with %d groups; want %d", p, s.Groups(), groups+1)
		}
		active := s.ActiveGroups()
		if len(active) != 2 || active[0] != 0 || active[1] != gid {
			t.Fatalf("p%d active groups after restart = %v; want [0 %v]", p, active, gid)
		}
	}
	// The seal survived the restart without any marker replay: new work
	// still bounces.
	if _, err := procs[0].BroadcastTo(ctx, 1, []byte("late")); !errors.Is(err, abcast.ErrSealed) {
		t.Fatalf("broadcast to sealed group after restart: err=%v; want ErrSealed", err)
	}
	// The joined group's history and offset survived: old traffic is
	// still there and new traffic still orders.
	awaitShardedDelivered(t, procs, gid, idNew, 20*time.Second)
	idAgain, err := procs[2].BroadcastTo(ctx, gid, []byte("post-restart"))
	if err != nil {
		t.Fatal(err)
	}
	awaitShardedDelivered(t, procs, gid, idAgain, 20*time.Second)
	awaitAgreedMerge(t, procs, 20*time.Second, func(m []abcast.Delivery) error {
		for _, d := range m {
			if d.Group == gid && string(d.Msg.Payload) == "post-restart" {
				return nil
			}
		}
		return fmt.Errorf("post-restart delivery not merged yet")
	})
}
