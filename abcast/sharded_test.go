package abcast_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/abcast"
)

// shardedCluster wires N sharded processes over one mem network and one
// shared in-memory store per process.
func shardedCluster(t *testing.T, n, groups int, opts abcast.ProtocolOptions, store func(int) abcast.Storage) ([]*abcast.Sharded, func()) {
	t.Helper()
	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 7})
	snet := abcast.NewShardedNetwork(net, groups)
	procs := make([]*abcast.Sharded, n)
	ctx, cancel := context.WithCancel(context.Background())
	for p := 0; p < n; p++ {
		var st abcast.Storage = abcast.NewMemStorage()
		if store != nil {
			st = store(p)
		}
		s, err := abcast.NewSharded(abcast.ShardedConfig{
			PID:      abcast.ProcessID(p),
			N:        n,
			Protocol: opts,
		}, st, snet)
		if err != nil {
			t.Fatal(err)
		}
		procs[p] = s
	}
	for _, s := range procs {
		if err := s.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return procs, func() {
		for _, s := range procs {
			s.Crash()
		}
		cancel()
		net.Close()
	}
}

func awaitShardedDelivered(t *testing.T, procs []*abcast.Sharded, g abcast.GroupID, id abcast.MsgID, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		all := true
		for _, s := range procs {
			if !s.Delivered(g, id) {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("message %v not delivered by all processes in group %v", id, g)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedBasic: keys route deterministically, every group orders its
// own messages at every process, and per-group sequences agree.
func TestShardedBasic(t *testing.T) {
	const n, groups, msgs = 3, 4, 40
	procs, stop := shardedCluster(t, n, groups, abcast.ProtocolOptions{}, nil)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	type sent struct {
		g  abcast.GroupID
		id abcast.MsgID
	}
	var sends []sent
	used := make(map[abcast.GroupID]bool)
	for i := 0; i < msgs; i++ {
		key := fmt.Appendf(nil, "key-%d", i)
		p := procs[i%n]
		wantG := p.Route(key)
		g, id, err := p.Broadcast(ctx, key, fmt.Appendf(nil, "payload-%d", i))
		if err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
		if g != wantG {
			t.Fatalf("Broadcast used group %v, Route says %v", g, wantG)
		}
		if g2 := procs[(i+1)%n].Route(key); g2 != g {
			t.Fatalf("routers disagree across processes: %v vs %v", g, g2)
		}
		used[g] = true
		sends = append(sends, sent{g, id})
	}
	if len(used) < 2 {
		t.Fatalf("hash router used only %d of %d groups", len(used), groups)
	}
	for _, s := range sends {
		awaitShardedDelivered(t, procs, s.g, s.id, 20*time.Second)
	}

	// Per-group total order: the suffixes agree across processes.
	for g := 0; g < groups; g++ {
		_, ref := procs[0].Sequence(abcast.GroupID(g))
		for p := 1; p < n; p++ {
			_, seq := procs[p].Sequence(abcast.GroupID(g))
			if len(seq) != len(ref) {
				t.Fatalf("group %d: p0 has %d deliveries, p%d has %d", g, len(ref), p, len(seq))
			}
			for i := range ref {
				if ref[i].Msg.ID != seq[i].Msg.ID {
					t.Fatalf("group %d: order differs at %d", g, i)
				}
				if ref[i].Group != abcast.GroupID(g) {
					t.Fatalf("delivery not tagged with its group: %+v", ref[i])
				}
			}
		}
	}

	// Stats roll up without losing messages.
	st := procs[0].Stats()
	if len(st.PerGroup) != groups {
		t.Fatalf("PerGroup has %d entries; want %d", len(st.PerGroup), groups)
	}
	if st.Total.Delivered != uint64(msgs) {
		t.Fatalf("rolled-up Delivered = %d; want %d", st.Total.Delivered, msgs)
	}
	var sum uint64
	for _, g := range st.PerGroup {
		sum += g.Delivered
	}
	if sum != st.Total.Delivered {
		t.Fatalf("per-group sum %d != total %d", sum, st.Total.Delivered)
	}
}

// TestShardedMergeDeterminism: the merged sequences of all processes agree
// on their common prefix.
func TestShardedMergeDeterminism(t *testing.T) {
	const n, groups, msgs = 3, 3, 30
	procs, stop := shardedCluster(t, n, groups, abcast.ProtocolOptions{}, nil)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var sends []struct {
		g  abcast.GroupID
		id abcast.MsgID
	}
	for i := 0; i < msgs; i++ {
		// Route explicitly so every group sees traffic (an idle group
		// pins the merge frontier at 0).
		g := abcast.GroupID(i % groups)
		id, err := procs[i%n].BroadcastTo(ctx, g, fmt.Appendf(nil, "m-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sends = append(sends, struct {
			g  abcast.GroupID
			id abcast.MsgID
		}{g, id})
	}
	for _, s := range sends {
		awaitShardedDelivered(t, procs, s.g, s.id, 20*time.Second)
	}

	merged0, from0, rounds, ok := procs[0].Merged()
	if !ok {
		t.Fatal("merge not ok at p0")
	}
	if rounds == 0 || len(merged0) == 0 || from0 != 0 {
		t.Fatalf("empty merge: from=%d rounds=%d len=%d", from0, rounds, len(merged0))
	}
	for p := 1; p < n; p++ {
		mergedP, _, _, ok := procs[p].Merged()
		if !ok {
			t.Fatalf("merge not ok at p%d", p)
		}
		short, long := merged0, mergedP
		if len(long) < len(short) {
			short, long = long, short
		}
		for i := range short {
			if short[i].Group != long[i].Group || short[i].Msg.ID != long[i].Msg.ID {
				t.Fatalf("merged sequences disagree at %d: p0=%v/%v pX=%v/%v",
					i, merged0[i].Group, merged0[i].Msg.ID, mergedP[i].Group, mergedP[i].Msg.ID)
			}
		}
	}
}

// TestShardedCrashRecoveryOverSharedWAL crashes a whole sharded process
// and recovers it from one shared WAL: every group's order survives, and
// shared-WAL fsyncs are counted once in the rollup.
func TestShardedCrashRecoveryOverSharedWAL(t *testing.T) {
	const n, groups, msgs = 3, 2, 16
	dir := t.TempDir()
	wals := make([]abcast.Storage, n)
	for p := 0; p < n; p++ {
		w, err := abcast.NewWALStorage(fmt.Sprintf("%s/p%d", dir, p), abcast.WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wals[p] = w
	}
	procs, stop := shardedCluster(t, n, groups,
		abcast.ProtocolOptions{BatchedBroadcast: true, IncrementalLog: true, PipelineDepth: 2},
		func(p int) abcast.Storage { return wals[p] })
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var sends []struct {
		g  abcast.GroupID
		id abcast.MsgID
	}
	send := func(from int, i int) {
		g := abcast.GroupID(i % groups)
		id, err := procs[from].BroadcastTo(ctx, g, fmt.Appendf(nil, "m-%d", i))
		if err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
		sends = append(sends, struct {
			g  abcast.GroupID
			id abcast.MsgID
		}{g, id})
	}
	for i := 0; i < msgs/2; i++ {
		send(i%n, i)
	}
	for _, s := range sends {
		awaitShardedDelivered(t, procs, s.g, s.id, 20*time.Second)
	}

	procs[1].Crash()
	if procs[1].Up() {
		t.Fatal("crashed process reports up")
	}
	for i := msgs / 2; i < msgs; i++ {
		send(0, i) // p1 is down; survivors keep ordering in every group
	}
	if err := procs[1].Start(ctx); err != nil {
		t.Fatalf("recover: %v", err)
	}
	for _, s := range sends {
		awaitShardedDelivered(t, procs, s.g, s.id, 20*time.Second)
	}
	for g := 0; g < groups; g++ {
		_, ref := procs[0].Sequence(abcast.GroupID(g))
		_, rec := procs[1].Sequence(abcast.GroupID(g))
		if len(ref) != len(rec) {
			t.Fatalf("group %d: recovered process has %d deliveries, want %d", g, len(rec), len(ref))
		}
		for i := range ref {
			if ref[i].Msg.ID != rec[i].Msg.ID {
				t.Fatalf("group %d: recovered order differs at %d", g, i)
			}
		}
	}
	if st := procs[0].Stats(); st.WALSyncs == 0 {
		t.Fatal("shared WAL sync count missing from rollup")
	}
}

// TestShardedDeliverCallbackTagging: one shared OnDeliver handler serves
// all groups, with Delivery.Group telling them apart.
func TestShardedDeliverCallbackTagging(t *testing.T) {
	const n, groups = 3, 2
	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 9})
	snet := abcast.NewShardedNetwork(net, groups)
	defer net.Close()

	var mu sync.Mutex
	got := make(map[abcast.GroupID]int)
	procs := make([]*abcast.Sharded, n)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for p := 0; p < n; p++ {
		pid := p
		s, err := abcast.NewSharded(abcast.ShardedConfig{
			PID: abcast.ProcessID(p), N: n,
			OnDeliver: func(d abcast.Delivery) {
				if pid == 0 {
					mu.Lock()
					got[d.Group]++
					mu.Unlock()
				}
			},
		}, abcast.NewMemStorage(), snet)
		if err != nil {
			t.Fatal(err)
		}
		procs[p] = s
		if err := s.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, s := range procs {
			s.Crash()
		}
	}()

	for g := abcast.GroupID(0); int(g) < groups; g++ {
		id, err := procs[0].BroadcastTo(ctx, g, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		awaitShardedDelivered(t, procs, g, id, 20*time.Second)
	}
	mu.Lock()
	defer mu.Unlock()
	for g := abcast.GroupID(0); int(g) < groups; g++ {
		if got[g] != 1 {
			t.Fatalf("OnDeliver tag counts = %v; want one delivery per group", got)
		}
	}
}

// countFold is a minimal application checkpointer for the merged-mode
// checkpointing test: state is the count of folded messages.
type countFold struct{}

func (countFold) Checkpoint(prev []byte, delivered []abcast.Message) []byte {
	var n uint64
	for _, b := range prev {
		n = n<<8 | uint64(b)
	}
	n += uint64(len(delivered))
	return []byte{byte(n >> 56), byte(n >> 48), byte(n >> 40), byte(n >> 32),
		byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

func (countFold) Restore([]byte) {}

// TestShardedMergeCursorWithCheckpointing exercises the public log-
// lifecycle surface end to end: a streaming MergeCursor subscribed
// before any traffic must deliver exactly what batch Merged reconstructs
// while MergedDelivery-gated application checkpoints fold the prefix
// underneath it.
func TestShardedMergeCursorWithCheckpointing(t *testing.T) {
	const n, groups, msgs = 3, 2, 36
	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 9})
	snet := abcast.NewShardedNetwork(net, groups)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	procs := make([]*abcast.Sharded, n)
	for p := 0; p < n; p++ {
		s, err := abcast.NewSharded(abcast.ShardedConfig{
			PID: abcast.ProcessID(p),
			N:   n,
			Protocol: abcast.ProtocolOptions{
				CheckpointEvery: 4,
				Checkpointer:    countFold{},
				PipelineDepth:   2,
				MaxBatchDelay:   200 * time.Microsecond,
			},
			MergedDelivery: true,
		}, abcast.NewMemStorage(), snet)
		if err != nil {
			t.Fatal(err)
		}
		procs[p] = s
	}
	defer func() {
		for _, s := range procs {
			s.Crash()
		}
		net.Close()
	}()
	for _, s := range procs {
		if err := s.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}

	cur, err := procs[0].MergeCursor()
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()

	for i := 0; i < msgs; i++ {
		g := abcast.GroupID(i % groups)
		id, err := procs[i%n].BroadcastTo(ctx, g, fmt.Appendf(nil, "m-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		awaitShardedDelivered(t, procs, g, id, 20*time.Second)
	}
	// Force folds under the merge floor, then verify the fold actually
	// happened (every group saw traffic, so the floor is positive).
	if err := procs[0].CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	var streamed []abcast.Delivery
	deadline := time.Now().Add(20 * time.Second)
	for {
		streamed, err = cur.Next(streamed)
		if err != nil {
			t.Fatal(err)
		}
		batch, from, rounds, ok := procs[0].Merged()
		if !ok {
			t.Fatal("merge unavailable")
		}
		// Cursor output starts at round 0; align to the folded base.
		aligned := streamed
		for len(aligned) > 0 && aligned[0].Round < from {
			aligned = aligned[1:]
		}
		match := len(aligned) == len(batch)
		for i := 0; match && i < len(batch); i++ {
			if aligned[i].Group != batch[i].Group || aligned[i].Msg.ID != batch[i].Msg.ID ||
				aligned[i].Pos != batch[i].Pos {
				t.Fatalf("cursor and batch merge disagree at %d: %+v vs %+v", i, aligned[i], batch[i])
			}
		}
		if match && from > 0 && cur.Emitted() >= rounds && len(streamed) > len(aligned) {
			// Folds happened (from > 0), the cursor covered everything the
			// batch covers, and it also streamed the pre-fold prefix the
			// batch can no longer reconstruct.
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: streamed=%d aligned=%d batch=%d from=%d emitted=%d rounds=%d",
				len(streamed), len(aligned), len(batch), from, cur.Emitted(), rounds)
		}
		time.Sleep(time.Millisecond)
	}
	if procs[0].MergeFrontier() == 0 {
		t.Fatal("merge frontier never advanced")
	}
}
