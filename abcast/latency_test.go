package abcast_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/abcast"
)

// TestTentativeConfirmFastPath exercises the optimistic delivery hooks on
// a calm network: tentative deliveries appear at the proposing process
// before their round commits, every one is eventually confirmed (nothing
// revoked — no competition, no crashes), and each confirmed tentative
// matches the authoritative delivery at the same position exactly.
func TestTentativeConfirmFastPath(t *testing.T) {
	const n, msgs = 3, 24
	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 7})
	t.Cleanup(net.Close)

	type slot struct {
		g   abcast.GroupID
		pos uint64
	}
	var (
		mu        sync.Mutex
		pending   = make([]map[slot]abcast.MsgID, n) // tentative, unconfirmed
		actual    = make([]map[slot]abcast.MsgID, n) // authoritative by position
		tentative int
		confirmed int
		failures  []string
	)
	fail := func(format string, args ...any) {
		if len(failures) < 8 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}

	procs := make([]*abcast.Process, n)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for p := 0; p < n; p++ {
		pid := p
		pending[pid] = make(map[slot]abcast.MsgID)
		actual[pid] = make(map[slot]abcast.MsgID)
		var nperr error
		procs[p], nperr = abcast.NewProcess(abcast.Config{
			PID: abcast.ProcessID(p),
			N:   n,
			OnTentative: func(d abcast.Delivery) {
				mu.Lock()
				defer mu.Unlock()
				tentative++
				if !d.Tentative {
					fail("p%d: OnTentative delivery not flagged Tentative", pid)
				}
				pending[pid][slot{d.Group, d.Pos}] = d.Msg.ID
			},
			OnDeliver: func(d abcast.Delivery) {
				mu.Lock()
				defer mu.Unlock()
				actual[pid][slot{d.Group, d.Pos}] = d.Msg.ID
			},
			OnConfirm: func(g abcast.GroupID, upTo uint64) {
				mu.Lock()
				defer mu.Unlock()
				for k, id := range pending[pid] {
					if k.g != g || k.pos >= upTo {
						continue
					}
					if got, ok := actual[pid][k]; !ok || got != id {
						fail("p%d g%v: pos %d confirmed as %v, authoritative %v (present=%v)",
							pid, g, k.pos, id, got, ok)
					} else {
						confirmed++
					}
					delete(pending[pid], k)
				}
			},
			OnRevoke: func(g abcast.GroupID, from uint64) {
				mu.Lock()
				defer mu.Unlock()
				fail("p%d g%v: unexpected revoke from pos %d on a calm network", pid, g, from)
			},
		}, abcast.NewMemStorage(), net)
		if nperr != nil {
			t.Fatal(nperr)
		}
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Crash()
		}
	})
	for _, p := range procs {
		if err := p.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < msgs; i++ {
		id, err := procs[i%n].Broadcast(ctx, fmt.Appendf(nil, "m-%d", i))
		if err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
		// A returned Broadcast is committed, so the proposer's tentative
		// (if it predicted this round) is already settled.
		for _, p := range procs {
			if !p.Delivered(id) && !p.DeliveredTentative(id) {
				// DeliveredTentative covers both: tentative overlay or
				// authoritative. Poll the slow learners below.
				awaitDeliveredAll(t, procs, id, 20*time.Second)
				break
			}
		}
	}
	// Every prediction must settle as a confirm (poll: the confirm of the
	// last round trails its deliveries by a callback).
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		left := 0
		for p := range pending {
			left += len(pending[p])
		}
		tent, conf, errs := tentative, confirmed, len(failures)
		mu.Unlock()
		if errs > 0 {
			mu.Lock()
			defer mu.Unlock()
			t.Fatalf("optimism contract violated: %v", failures)
		}
		if left == 0 && tent > 0 {
			if conf == 0 || conf != tent {
				t.Fatalf("tentative=%d confirmed=%d; want all confirmed", tent, conf)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tentatives never settled: tentative=%d confirmed=%d pending=%d", tent, conf, left)
		}
		time.Sleep(time.Millisecond)
	}
}

func awaitDeliveredAll(t *testing.T, procs []*abcast.Process, id abcast.MsgID, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		all := true
		for _, p := range procs {
			if !p.Delivered(id) {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("message %v not delivered by all processes", id)
		}
		time.Sleep(time.Millisecond)
	}
}

// heartbeatCluster builds a merged-delivery sharded cluster with the
// given idle-heartbeat setting (0 = the merged-mode default; negative =
// forced off, reproducing the pre-heartbeat behavior).
func heartbeatCluster(t *testing.T, n, groups int, idle time.Duration) []*abcast.Sharded {
	t.Helper()
	net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 11})
	t.Cleanup(net.Close)
	snet := abcast.NewShardedNetwork(net, groups)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	procs := make([]*abcast.Sharded, n)
	for p := 0; p < n; p++ {
		s, err := abcast.NewSharded(abcast.ShardedConfig{
			PID:            abcast.ProcessID(p),
			N:              n,
			MergedDelivery: true,
			Protocol:       abcast.ProtocolOptions{IdleHeartbeat: idle},
		}, abcast.NewMemStorage(), snet)
		if err != nil {
			t.Fatal(err)
		}
		procs[p] = s
	}
	t.Cleanup(func() {
		for _, s := range procs {
			s.Crash()
		}
	})
	for _, s := range procs {
		if err := s.Start(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return procs
}

// TestIdleGroupHeartbeatUnpinsMerge is the regression test for the
// idle-group merge-frontier stall. The merge frontier is the minimum of
// the per-group round counters, so before the idle heartbeat a group
// with no traffic pinned it forever: a message ordered by a busy group
// never entered the merged sequence. The control subtest forces the
// heartbeat off and proves the stall is real; the fixed subtest runs the
// merged-mode default and proves the same message merges without any
// traffic on the other group.
func TestIdleGroupHeartbeatUnpinsMerge(t *testing.T) {
	const n, groups = 3, 2

	t.Run("heartbeat-off-stalls", func(t *testing.T) {
		procs := heartbeatCluster(t, n, groups, -1)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		id, err := procs[0].BroadcastTo(ctx, 0, []byte("busy-group-only"))
		if err != nil {
			t.Fatal(err)
		}
		awaitShardedDelivered(t, procs, 0, id, 20*time.Second)
		// Group 1 never decides a round, so the frontier must stay pinned
		// at 0 and the merge stays empty — hold the observation over a
		// grace window long enough for several would-be heartbeats.
		for wait := 0; wait < 25; wait++ {
			merged, _, rounds, ok := procs[0].Merged()
			if !ok {
				t.Fatal("merge unavailable")
			}
			if rounds != 0 || len(merged) != 0 || procs[0].MergeFrontier() != 0 {
				t.Fatalf("frontier advanced with an idle group and heartbeats off: rounds=%d merged=%d frontier=%d",
					rounds, len(merged), procs[0].MergeFrontier())
			}
			time.Sleep(10 * time.Millisecond)
		}
		if st := procs[0].Stats(); st.Total.HeartbeatRounds != 0 {
			t.Fatalf("heartbeat rounds proposed while forced off: %d", st.Total.HeartbeatRounds)
		}
	})

	t.Run("heartbeat-default-advances", func(t *testing.T) {
		procs := heartbeatCluster(t, n, groups, 0) // merged-mode default kicks in
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		id, err := procs[0].BroadcastTo(ctx, 0, []byte("busy-group-only"))
		if err != nil {
			t.Fatal(err)
		}
		awaitShardedDelivered(t, procs, 0, id, 20*time.Second)
		deadline := time.Now().Add(20 * time.Second)
		for {
			merged, _, _, ok := procs[0].Merged()
			if ok {
				for _, d := range merged {
					if d.Group == 0 && d.Msg.ID == id {
						// The idle group's heartbeat rounds carried the
						// frontier past the busy group's round.
						var hb uint64
						for _, s := range procs {
							hb += s.Stats().Total.HeartbeatRounds
						}
						if hb == 0 {
							t.Fatal("frontier advanced but no heartbeat rounds counted")
						}
						return
					}
				}
			}
			if time.Now().After(deadline) {
				merged, _, rounds, _ := procs[0].Merged()
				t.Fatalf("message never merged: rounds=%d merged=%d frontier=%d",
					rounds, len(merged), procs[0].MergeFrontier())
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}

// TestHeartbeatRoundsBoundWALSize is the compaction-friendliness guard
// for heartbeat rounds (the log-lifecycle counterpart of the storage
// package's TestCompactionBoundsWALSize): empty rounds still append
// proposal, acceptor and decision records, so a long idle period must
// not grow the log without bound. Heartbeat rounds count toward
// CheckpointEvery like any other round, every checkpoint discards
// consensus state below it, and WAL compaction reclaims the dead
// records — the control run with checkpointing off shows the growth the
// discipline prevents.
func TestHeartbeatRoundsBoundWALSize(t *testing.T) {
	const n = 3
	const idleFor = 700 * time.Millisecond
	run := func(t *testing.T, checkpointEvery int) (live, disk int64, hb uint64) {
		t.Helper()
		net := abcast.NewMemNetwork(n, abcast.MemNetOptions{Seed: 13})
		defer net.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		wals := make([]abcast.Storage, n)
		walOpts := abcast.WALOptions{
			SyncEvery:       16,
			MaxSyncDelay:    200 * time.Microsecond,
			SegmentBytes:    8 << 10,
			CompactFactor:   2,
			CompactMinBytes: 4 << 10,
		}
		for p := 0; p < n; p++ {
			w, err := abcast.NewWALStorage(fmt.Sprintf("%s/p%d", t.TempDir(), p), walOpts)
			if err != nil {
				t.Fatal(err)
			}
			wals[p] = w
		}
		procs := make([]*abcast.Process, n)
		for p := 0; p < n; p++ {
			var err error
			procs[p], err = abcast.NewProcess(abcast.Config{
				PID: abcast.ProcessID(p),
				N:   n,
				Protocol: abcast.ProtocolOptions{
					IdleHeartbeat:   time.Millisecond,
					CheckpointEvery: checkpointEvery,
				},
			}, wals[p], net)
			if err != nil {
				t.Fatal(err)
			}
		}
		defer func() {
			for _, p := range procs {
				p.Crash()
			}
		}()
		for _, p := range procs {
			if err := p.Start(ctx); err != nil {
				t.Fatal(err)
			}
		}
		// A little real traffic so the log holds live state, then idle:
		// from here on every round is a heartbeat.
		for i := 0; i < 4; i++ {
			id, err := procs[0].Broadcast(ctx, fmt.Appendf(nil, "warm-%d", i))
			if err != nil {
				t.Fatal(err)
			}
			awaitDeliveredAll(t, procs, id, 20*time.Second)
		}
		time.Sleep(idleFor)
		w := wals[0].(interface {
			LiveBytes() int64
			DiskBytes() int64
		})
		return w.LiveBytes(), w.DiskBytes(), procs[0].Stats().HeartbeatRounds
	}

	ctrlLive, ctrlDisk, ctrlHB := run(t, 0)
	live, disk, hb := run(t, 8)
	t.Logf("control (no checkpoint): live=%d disk=%d heartbeats=%d; checkpointed: live=%d disk=%d heartbeats=%d",
		ctrlLive, ctrlDisk, ctrlHB, live, disk, hb)
	if ctrlHB < 20 || hb < 20 {
		t.Fatalf("idle period produced too few heartbeat rounds to measure growth: control=%d checkpointed=%d", ctrlHB, hb)
	}
	// Checkpoint + discard + compaction must keep the live set near the
	// steady state while the control accumulates per-round records.
	if live*2 > ctrlLive {
		t.Fatalf("heartbeat rounds not reclaimed: live=%d vs unbounded control live=%d", live, ctrlLive)
	}
	// And the disk footprint must track the live set, not history (same
	// bound shape as TestCompactionBoundsWALSize).
	bound := 2 * 2 * live // 2 x CompactFactor x live
	if min := int64(2 * (4 << 10)); bound < min {
		bound = min
	}
	if disk > bound {
		t.Fatalf("WAL disk %d exceeds %d (live %d)", disk, bound, live)
	}
}
