// Command abcast-bench runs the reproduction experiments (E1–E10 in
// DESIGN.md, plus the E11–E13 ablations, the E14 pipeline/batching
// shootout over both the simulated LAN and a TCP loopback transport, the
// E15 group-commit-WAL-versus-sync-per-write storage comparison, the E16
// sharded multi-group ordering scaling study, the E17 shared-process-
// services background-cost study, the E18 log-lifecycle study —
// bounded state under churn and streaming-versus-batch merge latency —
// the E19 latency fast-path study: tentative-versus-confirmed commit
// latency, leased versus unleased, on mem and TCP transports — and the
// E20 ordering/dissemination split study: sequencer egress and delivered
// throughput, full-payload versus ring dissemination, across payload
// sizes and cluster sizes — and the E21 closed-loop autotuning study:
// adaptive batching/pipeline/group-commit knobs against both static
// extremes through a phase-shifting workload — and the E22 elastic-
// resharding study: a live G=2->4 scale-out and live retirement under
// closed-loop load) and prints their tables. EXPERIMENTS.md is generated
// from its full-scale output; BENCH_e19.json is generated with -e19json,
// BENCH_e20.json with -e20json, BENCH_e21.json with -e21json and
// BENCH_e22.json with -e22json.
//
// Usage:
//
//	abcast-bench                 # run everything at full scale
//	abcast-bench -quick          # small sizes (seconds, CI-friendly)
//	abcast-bench -exp E4,E5      # a subset
//	abcast-bench -md             # markdown tables (for EXPERIMENTS.md)
//	abcast-bench -e19json PATH   # write the E19 latency trajectory JSON
//	abcast-bench -e20json PATH   # write the E20 dissemination sweep JSON
//	abcast-bench -e21json PATH   # write the E21 autotuning phase-shift JSON
//	abcast-bench -e22json PATH   # write the E22 elastic-resharding JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	expFlag := flag.String("exp", "", "comma-separated experiment ids (e.g. E1,E4); empty = all")
	md := flag.Bool("md", false, "emit markdown tables")
	e19json := flag.String("e19json", "", "write the E19 latency trajectory JSON to this path and exit")
	e20json := flag.String("e20json", "", "write the E20 dissemination sweep JSON to this path and exit")
	e21json := flag.String("e21json", "", "write the E21 autotuning phase-shift JSON to this path and exit")
	e22json := flag.String("e22json", "", "write the E22 elastic-resharding scale-out JSON to this path and exit")
	flag.Parse()

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	if *e19json != "" {
		if err := experiments.E19WriteJSON(scale, *e19json); err != nil {
			fmt.Fprintln(os.Stderr, "abcast-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *e19json)
		return
	}

	if *e20json != "" {
		if err := experiments.E20WriteJSON(scale, *e20json); err != nil {
			fmt.Fprintln(os.Stderr, "abcast-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *e20json)
		return
	}

	if *e21json != "" {
		if err := experiments.E21WriteJSON(scale, *e21json); err != nil {
			fmt.Fprintln(os.Stderr, "abcast-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *e21json)
		return
	}

	if *e22json != "" {
		if err := experiments.E22WriteJSON(scale, *e22json); err != nil {
			fmt.Fprintln(os.Stderr, "abcast-bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *e22json)
		return
	}

	if err := run(scale, *expFlag, *md); err != nil {
		fmt.Fprintln(os.Stderr, "abcast-bench:", err)
		os.Exit(1)
	}
}

func run(scale experiments.Scale, expFlag string, md bool) error {
	var results []*experiments.Result
	start := time.Now()
	if expFlag == "" {
		var err error
		results, err = experiments.All(scale)
		if err != nil {
			return err
		}
	} else {
		for _, name := range strings.Split(expFlag, ",") {
			name = strings.TrimSpace(name)
			fn, ok := experiments.ByName(name)
			if !ok {
				return fmt.Errorf("unknown experiment %q", name)
			}
			r, err := fn(scale)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			results = append(results, r)
		}
	}
	for _, r := range results {
		if md {
			fmt.Println(r.Table.Markdown())
		} else {
			r.Table.Print(os.Stdout)
		}
		for _, n := range r.Notes {
			fmt.Printf("  note: %s\n", n)
		}
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
