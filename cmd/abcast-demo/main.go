// Command abcast-demo runs an interactive-ish chaos demonstration: a
// cluster under configurable message loss and continuous crash-recovery
// churn, with a live workload and a final audit of all four Atomic
// Broadcast properties.
//
// Usage:
//
//	abcast-demo -n 5 -loss 0.1 -msgs 100 -churn 2 -duration 5s
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
)

func main() {
	n := flag.Int("n", 5, "number of processes")
	loss := flag.Float64("loss", 0.10, "per-packet loss probability")
	msgs := flag.Int("msgs", 60, "messages per sender")
	churn := flag.Int("churn", 2, "processes that crash/recover continuously")
	duration := flag.Duration("duration", 4*time.Second, "churn duration")
	seed := flag.Uint64("seed", 42, "random seed")
	policy := flag.String("policy", "leader", "consensus policy: leader|rotating")
	metrics := flag.String("metrics", "", "serve Prometheus /metrics and expvar /debug/vars on this address (e.g. :9090)")
	flight := flag.Bool("flight", false, "print the anomaly flight-recorder timeline after the audit")
	flag.Parse()

	if err := run(*n, *loss, *msgs, *churn, *duration, *seed, *policy, *metrics, *flight); err != nil {
		fmt.Fprintln(os.Stderr, "abcast-demo:", err)
		os.Exit(1)
	}
}

func run(n int, loss float64, msgs, churn int, duration time.Duration, seed uint64, policyName, metricsAddr string, flight bool) error {
	if churn >= (n+1)/2 {
		return fmt.Errorf("churn %d would leave no stable majority of %d processes", churn, n)
	}
	policy := consensus.PolicyLeader
	if policyName == "rotating" {
		policy = consensus.PolicyRotating
	}

	fmt.Printf("cluster: n=%d loss=%.0f%% policy=%v — %d senders x %d msgs, %d oscillating processes for %v\n",
		n, loss*100, policy, n-churn, msgs, churn, duration)

	c := harness.NewCluster(harness.Options{
		N:    n,
		Seed: seed,
		Net: transport.MemOptions{
			Seed:     seed,
			Loss:     loss,
			Dup:      0.02,
			MaxDelay: time.Millisecond,
		},
		Core:      core.Config{CheckpointEvery: 20, Delta: 10},
		Consensus: consensus.Config{Policy: policy},
		Obs:       obs.Options{SampleRate: 1}, // demo scale: trace everything
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return err
	}

	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.PromHandler(c.Obs))
		mux.Handle("/debug/vars", expvar.Handler())
		for i, p := range c.Obs {
			p.Reg().PublishExpvar(fmt.Sprintf("abcast.p%d", i))
		}
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		go func() { _ = http.Serve(ln, mux) }()
		fmt.Printf("metrics: http://%s/metrics (Prometheus), /debug/vars (expvar)\n", ln.Addr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Churned processes oscillate; the rest are senders.
	var schedules []harness.FaultSchedule
	var senders []ids.ProcessID
	for p := 0; p < n; p++ {
		if p >= n-churn {
			schedules = append(schedules, harness.FaultSchedule{
				PID:     ids.ProcessID(p),
				UpFor:   350 * time.Millisecond,
				DownFor: 200 * time.Millisecond,
			})
		} else {
			senders = append(senders, ids.ProcessID(p))
		}
	}
	fctx, stopFaults := context.WithTimeout(ctx, duration)
	defer stopFaults()
	wait := c.RunFaults(fctx, schedules...)

	start := time.Now()
	m, err := c.Run(ctx, harness.Workload{
		Senders:           senders,
		MessagesPerSender: msgs,
		PayloadSize:       64,
	})
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	stopFaults()
	wait()
	fmt.Printf("workload done: %d broadcasts in %v (%.0f msgs/s, mean latency %v)\n",
		m.Count, m.Elapsed.Round(time.Millisecond), m.Throughput(), m.Mean().Round(time.Microsecond))

	all := make([]ids.ProcessID, n)
	for p := range all {
		all[p] = ids.ProcessID(p)
	}
	fmt.Println("waiting for every process to deliver everything...")
	if err := c.AwaitAllDelivered(ctx, all...); err != nil {
		return fmt.Errorf("termination: %w", err)
	}
	fmt.Printf("converged after %v total\n", time.Since(start).Round(time.Millisecond))

	for p := 0; p < n; p++ {
		proto := c.Nodes[p].Proto()
		st := proto.Stats()
		fmt.Printf("  p%d: epoch=%d round=%d delivered=%d replayed=%d transfers(in/out)=%d/%d ckpts=%d\n",
			p, c.Nodes[p].Epoch(), proto.Round(), st.Delivered,
			st.ReplayedRounds, st.StateAdopted, st.StateSent, st.Checkpoints)
	}
	ns := c.Net.Stats()
	fmt.Printf("network: sent=%d delivered=%d dropped=%d duplicated=%d\n",
		ns.Sent, ns.Delivered, ns.Dropped, ns.Duplicated)

	// Stage-latency breakdown from p0's trace plane: where the end-to-end
	// time went for the messages that survived the churn.
	reg := c.Obs[0].Reg()
	for _, name := range []string{"abcast.trace.propose_ns", "abcast.trace.decide_ns", "abcast.trace.deliver_ns", "abcast.trace.e2e_ns"} {
		if s, ok := reg.HistogramSnapshot(name); ok && s.Count > 0 {
			fmt.Printf("  %-28s count=%-5d p50=%-10v p99=%v\n", name, s.Count,
				time.Duration(s.Quantile(0.50)).Round(time.Microsecond),
				time.Duration(s.Quantile(0.99)).Round(time.Microsecond))
		}
	}

	if err := c.VerifyAll(all...); err != nil {
		return fmt.Errorf("AUDIT FAILED: %w", err)
	}
	fmt.Println("audit: validity ✓  integrity ✓  total order ✓  termination ✓")
	if flight {
		fmt.Println("--- flight recorder ---")
		fmt.Print(c.FlightDump())
	}
	return nil
}
