// Command abcast-demo runs an interactive-ish chaos demonstration: a
// cluster under configurable message loss and continuous crash-recovery
// churn, with a live workload and a final audit of all four Atomic
// Broadcast properties.
//
// Usage:
//
//	abcast-demo -n 5 -loss 0.1 -msgs 100 -churn 2 -duration 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/transport"
)

func main() {
	n := flag.Int("n", 5, "number of processes")
	loss := flag.Float64("loss", 0.10, "per-packet loss probability")
	msgs := flag.Int("msgs", 60, "messages per sender")
	churn := flag.Int("churn", 2, "processes that crash/recover continuously")
	duration := flag.Duration("duration", 4*time.Second, "churn duration")
	seed := flag.Uint64("seed", 42, "random seed")
	policy := flag.String("policy", "leader", "consensus policy: leader|rotating")
	flag.Parse()

	if err := run(*n, *loss, *msgs, *churn, *duration, *seed, *policy); err != nil {
		fmt.Fprintln(os.Stderr, "abcast-demo:", err)
		os.Exit(1)
	}
}

func run(n int, loss float64, msgs, churn int, duration time.Duration, seed uint64, policyName string) error {
	if churn >= (n+1)/2 {
		return fmt.Errorf("churn %d would leave no stable majority of %d processes", churn, n)
	}
	policy := consensus.PolicyLeader
	if policyName == "rotating" {
		policy = consensus.PolicyRotating
	}

	fmt.Printf("cluster: n=%d loss=%.0f%% policy=%v — %d senders x %d msgs, %d oscillating processes for %v\n",
		n, loss*100, policy, n-churn, msgs, churn, duration)

	c := harness.NewCluster(harness.Options{
		N:    n,
		Seed: seed,
		Net: transport.MemOptions{
			Seed:     seed,
			Loss:     loss,
			Dup:      0.02,
			MaxDelay: time.Millisecond,
		},
		Core:      core.Config{CheckpointEvery: 20, Delta: 10},
		Consensus: consensus.Config{Policy: policy},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Churned processes oscillate; the rest are senders.
	var schedules []harness.FaultSchedule
	var senders []ids.ProcessID
	for p := 0; p < n; p++ {
		if p >= n-churn {
			schedules = append(schedules, harness.FaultSchedule{
				PID:     ids.ProcessID(p),
				UpFor:   350 * time.Millisecond,
				DownFor: 200 * time.Millisecond,
			})
		} else {
			senders = append(senders, ids.ProcessID(p))
		}
	}
	fctx, stopFaults := context.WithTimeout(ctx, duration)
	defer stopFaults()
	wait := c.RunFaults(fctx, schedules...)

	start := time.Now()
	m, err := c.Run(ctx, harness.Workload{
		Senders:           senders,
		MessagesPerSender: msgs,
		PayloadSize:       64,
	})
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	stopFaults()
	wait()
	fmt.Printf("workload done: %d broadcasts in %v (%.0f msgs/s, mean latency %v)\n",
		m.Count, m.Elapsed.Round(time.Millisecond), m.Throughput(), m.Mean().Round(time.Microsecond))

	all := make([]ids.ProcessID, n)
	for p := range all {
		all[p] = ids.ProcessID(p)
	}
	fmt.Println("waiting for every process to deliver everything...")
	if err := c.AwaitAllDelivered(ctx, all...); err != nil {
		return fmt.Errorf("termination: %w", err)
	}
	fmt.Printf("converged after %v total\n", time.Since(start).Round(time.Millisecond))

	for p := 0; p < n; p++ {
		proto := c.Nodes[p].Proto()
		st := proto.Stats()
		fmt.Printf("  p%d: epoch=%d round=%d delivered=%d replayed=%d transfers(in/out)=%d/%d ckpts=%d\n",
			p, c.Nodes[p].Epoch(), proto.Round(), st.Delivered,
			st.ReplayedRounds, st.StateAdopted, st.StateSent, st.Checkpoints)
	}
	ns := c.Net.Stats()
	fmt.Printf("network: sent=%d delivered=%d dropped=%d duplicated=%d\n",
		ns.Sent, ns.Delivered, ns.Dropped, ns.Duplicated)

	if err := c.VerifyAll(all...); err != nil {
		return fmt.Errorf("AUDIT FAILED: %w", err)
	}
	fmt.Println("audit: validity ✓  integrity ✓  total order ✓  termination ✓")
	return nil
}
