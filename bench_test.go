// Package repro_test hosts the benchmark harness: one testing.B benchmark
// per experiment in DESIGN.md §3. Each benchmark runs its experiment at
// Quick scale per iteration, so `go test -bench=. -benchmem` regenerates
// (small-scale versions of) every table; `cmd/abcast-bench` produces the
// full-scale numbers recorded in EXPERIMENTS.md.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

// runExperiment executes fn b.N times, printing the last table at -v.
func runExperiment(b *testing.B, fn func(experiments.Scale) (*experiments.Result, error)) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := fn(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if testing.Verbose() && last != nil {
		lg := benchLogger{b}
		last.Table.Print(lg)
	}
}

type benchLogger struct{ b *testing.B }

func (l benchLogger) Write(p []byte) (int, error) {
	l.b.Log(string(p))
	return len(p), nil
}

// BenchmarkE1LogOps measures log operations per layer (§4.3 minimal
// logging claim).
func BenchmarkE1LogOps(b *testing.B) { runExperiment(b, experiments.E1LogOps) }

// BenchmarkE2Recovery measures replay length and recovery time with and
// without checkpointing (§5.1).
func BenchmarkE2Recovery(b *testing.B) { runExperiment(b, experiments.E2Recovery) }

// BenchmarkE3LogSize measures stable-storage growth with and without
// application checkpoints (§5.2).
func BenchmarkE3LogSize(b *testing.B) { runExperiment(b, experiments.E3LogSize) }

// BenchmarkE4CatchUp measures catch-up via consensus replay vs Δ-triggered
// state transfer (§5.3).
func BenchmarkE4CatchUp(b *testing.B) { runExperiment(b, experiments.E4CatchUp) }

// BenchmarkE5Batching measures batching throughput and early-return
// latency (§5.4).
func BenchmarkE5Batching(b *testing.B) { runExperiment(b, experiments.E5Batching) }

// BenchmarkE6IncrementalLog measures incremental vs full Unordered logging
// (§5.5).
func BenchmarkE6IncrementalLog(b *testing.B) { runExperiment(b, experiments.E6IncrementalLog) }

// BenchmarkE7VsCrashStop compares against the Chandra–Toueg crash-stop
// baseline (§5.6).
func BenchmarkE7VsCrashStop(b *testing.B) { runExperiment(b, experiments.E7VsCrashStop) }

// BenchmarkE8FaultStorm measures liveness under loss and churn (C2/C3).
func BenchmarkE8FaultStorm(b *testing.B) { runExperiment(b, experiments.E8FaultStorm) }

// BenchmarkE9Reduction measures Consensus implemented over Atomic
// Broadcast (§6.1).
func BenchmarkE9Reduction(b *testing.B) { runExperiment(b, experiments.E9Reduction) }

// BenchmarkE10Engines swaps the consensus engine under the unchanged
// broadcast transformation (§3.5).
func BenchmarkE10Engines(b *testing.B) { runExperiment(b, experiments.E10Engines) }

// BenchmarkE11FDTimeout is the failure-detector timeout ablation.
func BenchmarkE11FDTimeout(b *testing.B) { runExperiment(b, experiments.E11FDTimeout) }

// BenchmarkE12GossipInterval is the gossip-period ablation.
func BenchmarkE12GossipInterval(b *testing.B) { runExperiment(b, experiments.E12GossipInterval) }

// BenchmarkE13GroupSize is the group-size ablation.
func BenchmarkE13GroupSize(b *testing.B) { runExperiment(b, experiments.E13GroupSize) }

// BenchmarkE14Pipeline measures the round-pipeline + adaptive-batching
// ordering hot path against the basic sequential protocol.
func BenchmarkE14Pipeline(b *testing.B) { runExperiment(b, experiments.E14Pipeline) }

// BenchmarkE15Storage measures the group-commit WAL against sync-per-write
// File storage at equal durability.
func BenchmarkE15Storage(b *testing.B) { runExperiment(b, experiments.E15Storage) }

// BenchmarkE16Sharding measures sharded multi-group ordering throughput
// versus group count (one sequencer per group over a shared substrate).
func BenchmarkE16Sharding(b *testing.B) { runExperiment(b, experiments.E16Sharding) }
