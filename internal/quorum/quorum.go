// Package quorum implements the §6.3 bridge between Atomic Broadcast and
// quorum-based (weighted-voting) replica management: writes are serialized
// by the total order — so every replica assigns the same version to the
// same write — while reads contact only a read quorum of replicas and pick
// the highest version among the replies.
//
// With writes applied at all replicas eventually (Termination) and a read
// quorum of r replicas, a read that overlaps the set of replicas that
// already applied version v returns at least v; stale replicas are
// out-voted by fresher ones. The demo keeps the classic r + w > n intuition
// with w = n (broadcast writes) and configurable r.
package quorum

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/wire"
)

// Versioned is a value with its totally-ordered version.
type Versioned struct {
	Value   string
	Version uint64
}

// Replica is one process's quorum-store endpoint: a versioned KV replica
// maintained by Atomic Broadcast plus a read-quorum protocol on a side
// channel.
type Replica struct {
	pid ids.ProcessID
	n   int
	net router.Net // bound to router.ChanApp

	mu    sync.Mutex
	data  map[string]Versioned
	reads map[uint64]*readOp
	nextR uint64
}

// readOp collects replies for one quorum read.
type readOp struct {
	need    int
	replies map[ids.ProcessID]Versioned
	done    chan struct{}
	best    Versioned
	got     int
}

// NewReplica creates the replica. Chain Apply into the process's OnDeliver
// and register OnMessage on router.ChanApp.
func NewReplica(pid ids.ProcessID, n int, net router.Net) *Replica {
	return &Replica{
		pid:   pid,
		n:     n,
		net:   net,
		data:  make(map[string]Versioned),
		reads: make(map[uint64]*readOp),
	}
}

// EncodeWrite builds a broadcast payload for a quorum write.
func EncodeWrite(key, value string) []byte {
	w := wire.NewWriter(8 + len(key) + len(value))
	w.String(key)
	w.String(value)
	return w.Bytes()
}

// Apply installs one totally-ordered write. Versions are assigned by
// delivery position, so every replica agrees on them.
func (q *Replica) Apply(d core.Delivery) {
	r := wire.NewReader(d.Msg.Payload)
	key := r.String()
	value := r.String()
	if r.Done() != nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.data[key] = Versioned{Value: value, Version: d.Pos + 1}
}

// Local returns this replica's local copy (possibly stale).
func (q *Replica) Local(key string) (Versioned, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	v, ok := q.data[key]
	return v, ok
}

// Message kinds on the app channel.
const (
	mReadReq  uint8 = 1
	mReadResp uint8 = 2
)

// Read performs a quorum read: it queries all replicas, waits for r
// replies (including its own), and returns the highest-version value.
func (q *Replica) Read(ctx context.Context, key string, r int) (Versioned, error) {
	if r < 1 || r > q.n {
		return Versioned{}, fmt.Errorf("quorum: read quorum %d out of range [1,%d]", r, q.n)
	}
	q.mu.Lock()
	q.nextR++
	op := &readOp{
		need:    r,
		replies: make(map[ids.ProcessID]Versioned),
		done:    make(chan struct{}),
	}
	id := q.nextR
	q.reads[id] = op
	// Count the local copy as the first vote.
	local := q.data[key]
	op.replies[q.pid] = local
	op.best = local
	op.got = 1
	if op.got >= op.need {
		close(op.done)
		delete(q.reads, id)
		q.mu.Unlock()
		return op.best, nil
	}
	q.mu.Unlock()

	// Ask everyone; retransmit until enough votes arrive (fair-lossy).
	w := wire.NewWriter(16 + len(key))
	w.U8(mReadReq)
	w.U64(id)
	w.String(key)
	req := w.Bytes()
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	q.net.Multisend(req)
	for {
		select {
		case <-op.done:
			q.mu.Lock()
			best := op.best
			q.mu.Unlock()
			return best, nil
		case <-ctx.Done():
			q.mu.Lock()
			delete(q.reads, id)
			q.mu.Unlock()
			return Versioned{}, ctx.Err()
		case <-ticker.C:
			q.net.Multisend(req)
		}
	}
}

// OnMessage handles quorum-read traffic on the app channel.
func (q *Replica) OnMessage(from ids.ProcessID, payload []byte) {
	r := wire.NewReader(payload)
	switch r.U8() {
	case mReadReq:
		id := r.U64()
		key := r.String()
		if r.Done() != nil {
			return
		}
		q.mu.Lock()
		v := q.data[key]
		q.mu.Unlock()
		w := wire.NewWriter(32 + len(v.Value))
		w.U8(mReadResp)
		w.U64(id)
		w.String(v.Value)
		w.U64(v.Version)
		q.net.Send(from, w.Bytes())
	case mReadResp:
		id := r.U64()
		value := r.String()
		version := r.U64()
		if r.Done() != nil {
			return
		}
		q.mu.Lock()
		defer q.mu.Unlock()
		op, ok := q.reads[id]
		if !ok {
			return
		}
		if _, dup := op.replies[from]; dup {
			return
		}
		v := Versioned{Value: value, Version: version}
		op.replies[from] = v
		op.got++
		if v.Version > op.best.Version {
			op.best = v
		}
		if op.got >= op.need {
			close(op.done)
			delete(q.reads, id)
		}
	}
}
