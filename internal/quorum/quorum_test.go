package quorum_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/quorum"
	"repro/internal/router"
)

type fixture struct {
	c        *harness.Cluster
	mu       sync.Mutex
	replicas map[ids.ProcessID]*quorum.Replica
}

func (f *fixture) replica(pid ids.ProcessID) *quorum.Replica {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replicas[pid]
}

func build(n int, seed uint64) *fixture {
	f := &fixture{replicas: make(map[ids.ProcessID]*quorum.Replica)}
	f.c = harness.NewCluster(harness.Options{
		N:    n,
		Seed: seed,
		App: func(pid ids.ProcessID, net router.Net) router.Handler {
			r := quorum.NewReplica(pid, n, net)
			f.mu.Lock()
			f.replicas[pid] = r
			f.mu.Unlock()
			return r.OnMessage
		},
		OnDeliver: func(pid ids.ProcessID, d core.Delivery) {
			f.mu.Lock()
			r := f.replicas[pid]
			f.mu.Unlock()
			if r != nil {
				r.Apply(d)
			}
		},
	})
	return f
}

func TestQuorumReadSeesLatestWrite(t *testing.T) {
	f := build(3, 81)
	defer f.c.Stop()
	if err := f.c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := f.c.Broadcast(ctx, 0, quorum.EncodeWrite("x", "v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.c.Broadcast(ctx, 1, quorum.EncodeWrite("x", "v2")); err != nil {
		t.Fatal(err)
	}
	if err := f.c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	// Read quorum of 2 from each replica: everyone sees v2.
	for p := 0; p < 3; p++ {
		got, err := f.replica(ids.ProcessID(p)).Read(ctx, "x", 2)
		if err != nil {
			t.Fatalf("p%d read: %v", p, err)
		}
		if got.Value != "v2" {
			t.Fatalf("p%d read %q, want v2", p, got.Value)
		}
	}
}

func TestQuorumReadOutvotesStaleReplica(t *testing.T) {
	f := build(3, 82)
	defer f.c.Stop()
	if err := f.c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := f.c.Broadcast(ctx, 0, quorum.EncodeWrite("k", "old")); err != nil {
		t.Fatal(err)
	}
	if err := f.c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	// p2 crashes; a new write lands while it is down.
	f.c.Crash(2)
	if _, err := f.c.Broadcast(ctx, 0, quorum.EncodeWrite("k", "new")); err != nil {
		t.Fatal(err)
	}
	if err := f.c.AwaitAllDelivered(ctx, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.c.Recover(2); err != nil {
		t.Fatal(err)
	}
	// Even if p2's replica were stale, a read quorum of 2 must see
	// version 2 ("new") because it overlaps {p0, p1}.
	got, err := f.replica(2).Read(ctx, "k", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != "new" || got.Version != 2 {
		t.Fatalf("quorum read got %+v, want new/v2", got)
	}
}

func TestQuorumLocalVsQuorumRead(t *testing.T) {
	f := build(3, 83)
	defer f.c.Stop()
	if err := f.c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 0; i < 5; i++ {
		if _, err := f.c.Broadcast(ctx, 0, quorum.EncodeWrite("seq", fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	local, ok := f.replica(1).Local("seq")
	if !ok || local.Value != "v4" {
		t.Fatalf("local read: %+v %v", local, ok)
	}
	// Read quorum of 1 is just the local copy.
	q1, err := f.replica(1).Read(ctx, "seq", 1)
	if err != nil || q1 != local {
		t.Fatalf("r=1 read: %+v %v", q1, err)
	}
}

func TestQuorumReadValidation(t *testing.T) {
	f := build(3, 84)
	defer f.c.Stop()
	if err := f.c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := f.replica(0).Read(ctx, "x", 0); err == nil {
		t.Fatal("r=0 accepted")
	}
	if _, err := f.replica(0).Read(ctx, "x", 4); err == nil {
		t.Fatal("r>n accepted")
	}
}
