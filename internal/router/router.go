// Package router multiplexes one transport endpoint among the protocol
// layers of a process (failure detector, consensus, atomic broadcast). Each
// packet carries a one-byte channel tag; handlers are registered per
// channel before the router starts.
package router

import (
	"context"
	"sync"

	"repro/internal/ids"
	"repro/internal/transport"
)

// Channel tags the protocol layer a packet belongs to.
type Channel uint8

// Channel assignments. They start at 1 so a zero byte is invalid.
const (
	ChanFD        Channel = 1 // failure-detector heartbeats
	ChanConsensus Channel = 2 // consensus engine messages
	ChanCore      Channel = 3 // atomic broadcast gossip/state messages
	ChanApp       Channel = 4 // application-level side traffic (quorum reads)
	ChanDissem    Channel = 5 // payload dissemination ring relay frames
)

// Handler consumes one packet on a channel. Handlers run on the router's
// receive goroutine and must not block indefinitely.
type Handler func(from ids.ProcessID, payload []byte)

// Router demultiplexes an endpoint. Create with New, register handlers,
// then Start. Stop closes the endpoint and waits for the receive loop.
type Router struct {
	ep transport.Endpoint

	mu       sync.Mutex
	handlers map[Channel]Handler
	started  bool

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New creates a router over ep.
func New(ep transport.Endpoint) *Router {
	return &Router{ep: ep, handlers: make(map[Channel]Handler)}
}

// Handle registers the handler for ch. It must be called before Start.
func (r *Router) Handle(ch Channel, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[ch] = h
}

// Start launches the receive loop. The loop ends when ctx is cancelled or
// the endpoint closes.
func (r *Router) Start(ctx context.Context) {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()

	ctx, cancel := context.WithCancel(ctx)
	r.cancel = cancel
	r.wg.Add(1)
	go r.recvLoop(ctx)
}

// Stop closes the endpoint and waits for the receive loop to exit.
func (r *Router) Stop() {
	if r.cancel != nil {
		r.cancel()
	}
	r.ep.Close()
	r.wg.Wait()
}

func (r *Router) recvLoop(ctx context.Context) {
	defer r.wg.Done()
	for {
		pkt, err := r.ep.Recv(ctx)
		if err != nil {
			return
		}
		if len(pkt.Data) < 1 {
			continue
		}
		ch := Channel(pkt.Data[0])
		r.mu.Lock()
		h := r.handlers[ch]
		r.mu.Unlock()
		if h != nil {
			h(pkt.From, pkt.Data[1:])
		}
	}
}

// Send transmits payload to one process on channel ch.
func (r *Router) Send(ch Channel, to ids.ProcessID, payload []byte) {
	buf := make([]byte, 1+len(payload))
	buf[0] = byte(ch)
	copy(buf[1:], payload)
	r.ep.Send(to, buf)
}

// Multisend transmits payload to every process on channel ch.
func (r *Router) Multisend(ch Channel, payload []byte) {
	buf := make([]byte, 1+len(payload))
	buf[0] = byte(ch)
	copy(buf[1:], payload)
	r.ep.Multisend(buf)
}

// Net is the per-channel sending interface handed to protocol layers.
type Net interface {
	Send(to ids.ProcessID, payload []byte)
	Multisend(payload []byte)
}

// Bound returns a Net that sends on channel ch.
func (r *Router) Bound(ch Channel) Net {
	return boundNet{r: r, ch: ch}
}

type boundNet struct {
	r  *Router
	ch Channel
}

func (b boundNet) Send(to ids.ProcessID, payload []byte) { b.r.Send(b.ch, to, payload) }
func (b boundNet) Multisend(payload []byte)              { b.r.Multisend(b.ch, payload) }
