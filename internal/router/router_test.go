package router

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
)

type sink struct {
	mu   sync.Mutex
	got  []string
	from []ids.ProcessID
}

func (s *sink) handler(from ids.ProcessID, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, string(payload))
	s.from = append(s.from, from)
}

func (s *sink) wait(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		if len(s.got) >= n {
			out := append([]string(nil), s.got...)
			s.mu.Unlock()
			return out
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d packets", n)
	return nil
}

func TestRouterDispatchesByChannel(t *testing.T) {
	net := transport.NewMem(2, transport.MemOptions{Seed: 1})
	defer net.Close()
	epA, _ := net.Attach(0)
	epB, _ := net.Attach(1)

	ra := New(epA)
	rb := New(epB)
	fdSink, consSink := &sink{}, &sink{}
	rb.Handle(ChanFD, fdSink.handler)
	rb.Handle(ChanConsensus, consSink.handler)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ra.Start(ctx)
	rb.Start(ctx)
	defer ra.Stop()
	defer rb.Stop()

	ra.Send(ChanFD, 1, []byte("beat"))
	ra.Send(ChanConsensus, 1, []byte("prep"))
	ra.Send(ChanCore, 1, []byte("orphan")) // no handler: dropped

	if got := fdSink.wait(t, 1); got[0] != "beat" {
		t.Fatalf("fd got %v", got)
	}
	if got := consSink.wait(t, 1); got[0] != "prep" {
		t.Fatalf("cons got %v", got)
	}
	fdSink.mu.Lock()
	if fdSink.from[0] != 0 {
		t.Fatalf("from = %v", fdSink.from[0])
	}
	fdSink.mu.Unlock()
}

func TestRouterMultisend(t *testing.T) {
	net := transport.NewMem(3, transport.MemOptions{Seed: 2})
	defer net.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sinks := make([]*sink, 3)
	routers := make([]*Router, 3)
	for i := 0; i < 3; i++ {
		ep, _ := net.Attach(ids.ProcessID(i))
		routers[i] = New(ep)
		sinks[i] = &sink{}
		routers[i].Handle(ChanCore, sinks[i].handler)
		routers[i].Start(ctx)
		defer routers[i].Stop()
	}
	routers[0].Multisend(ChanCore, []byte("toall"))
	for i, s := range sinks {
		if got := s.wait(t, 1); got[0] != "toall" {
			t.Fatalf("sink %d got %v", i, got)
		}
	}
}

func TestBoundNet(t *testing.T) {
	net := transport.NewMem(2, transport.MemOptions{Seed: 3})
	defer net.Close()
	epA, _ := net.Attach(0)
	epB, _ := net.Attach(1)
	ra, rb := New(epA), New(epB)
	s := &sink{}
	rb.Handle(ChanApp, s.handler)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ra.Start(ctx)
	rb.Start(ctx)
	defer ra.Stop()
	defer rb.Stop()

	bound := ra.Bound(ChanApp)
	bound.Send(1, []byte("direct"))
	bound.Multisend([]byte("fan"))
	got := s.wait(t, 2)
	if got[0] != "direct" && got[1] != "direct" {
		t.Fatalf("got %v", got)
	}
}

func TestRouterStopTerminatesLoop(t *testing.T) {
	net := transport.NewMem(1, transport.MemOptions{Seed: 4})
	defer net.Close()
	ep, _ := net.Attach(0)
	r := New(ep)
	r.Start(context.Background())
	done := make(chan struct{})
	go func() {
		r.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung")
	}
}

func TestRouterIgnoresEmptyPackets(t *testing.T) {
	net := transport.NewMem(2, transport.MemOptions{Seed: 5})
	defer net.Close()
	epA, _ := net.Attach(0)
	epB, _ := net.Attach(1)
	rb := New(epB)
	s := &sink{}
	rb.Handle(ChanFD, s.handler)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rb.Start(ctx)
	defer rb.Stop()

	epA.Send(1, nil)             // empty: ignored
	epA.Send(1, []byte{byte(1)}) // ChanFD with empty payload: delivered
	got := s.wait(t, 1)
	if got[0] != "" {
		t.Fatalf("got %q", got[0])
	}
	epA.Close()
}
