package vclock

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/wire"
)

func id(s int32, inc uint32, seq uint64) ids.MsgID {
	return ids.MsgID{Sender: ids.ProcessID(s), Incarnation: inc, Seq: seq}
}

func TestObserveAndCovers(t *testing.T) {
	v := New()
	if v.Covers(id(0, 1, 1)) {
		t.Fatal("empty clock covers something")
	}
	for s := uint64(1); s <= 5; s++ {
		v.Observe(id(0, 1, s))
	}
	if !v.Covers(id(0, 1, 5)) || !v.Covers(id(0, 1, 3)) {
		t.Fatal("clock should cover seq <= 5 (all observed)")
	}
	if v.Covers(id(0, 1, 6)) {
		t.Fatal("clock covers future seq")
	}
	if v.Covers(id(0, 2, 1)) {
		t.Fatal("clock covers other incarnation")
	}
	if v.Covers(id(1, 1, 1)) {
		t.Fatal("clock covers other sender")
	}
}

// TestCoversIsExact: observing a sequence number out of order must NOT
// claim coverage of the skipped-over ones — a checkpoint folding a
// sender's m4 before its m3 was ever delivered does not contain m3, and
// claiming otherwise diverges processes that folded at different rounds
// (see the package doc).
func TestCoversIsExact(t *testing.T) {
	v := New()
	v.Observe(id(0, 1, 4)) // m4 ordered before m3 (gossip loss)
	if !v.Covers(id(0, 1, 4)) {
		t.Fatal("observed message not covered")
	}
	if v.Covers(id(0, 1, 3)) || v.Covers(id(0, 1, 1)) {
		t.Fatal("clock covers never-observed holes")
	}
	v.Observe(id(0, 1, 3)) // m3 delivered later: the hole fills
	if !v.Covers(id(0, 1, 3)) {
		t.Fatal("filled hole not covered")
	}
	if v.Covers(id(0, 1, 2)) {
		t.Fatal("remaining hole covered")
	}
	// Round-trip keeps the holes.
	w := wire.NewWriter(0)
	v.Encode(w)
	got := Decode(wire.NewReader(w.Bytes()))
	if got.Covers(id(0, 1, 2)) || !got.Covers(id(0, 1, 3)) || !got.Covers(id(0, 1, 4)) {
		t.Fatal("holes lost in encode/decode round trip")
	}
	// Merge unions coverage: a clock that covers m2 fills the hole.
	o := New()
	o.Observe(id(0, 1, 1))
	o.Observe(id(0, 1, 2))
	v.Merge(o)
	for s := uint64(1); s <= 4; s++ {
		if !v.Covers(id(0, 1, s)) {
			t.Fatalf("merged clock misses seq %d", s)
		}
	}
}

func TestObserveIsMonotone(t *testing.T) {
	v := New()
	v.Observe(id(0, 1, 10))
	v.Observe(id(0, 1, 3)) // fills one hole, never regresses
	if !v.Covers(id(0, 1, 10)) || !v.Covers(id(0, 1, 3)) {
		t.Fatal("observe regressed")
	}
}

func randVC(rng *rand.Rand) VC {
	v := New()
	for i := 0; i < rng.IntN(8); i++ {
		s, inc := ids.ProcessID(rng.IntN(4)), uint32(rng.IntN(3))
		// A few out-of-order observations per stream, so random clocks
		// carry holes and the lattice laws are checked over them.
		for j := 0; j < 1+rng.IntN(4); j++ {
			v.Observe(ids.MsgID{Sender: s, Incarnation: inc, Seq: rng.Uint64N(20) + 1})
		}
	}
	return v
}

// TestMergeLattice property-checks that Merge is a join: commutative,
// associative, idempotent, and dominating.
func TestMergeLattice(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		a, b, c := randVC(rng), randVC(rng), randVC(rng)

		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false // commutativity
		}
		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		if !abc1.Equal(abc2) {
			return false // associativity
		}
		aa := a.Clone()
		aa.Merge(a)
		if !aa.Equal(a) {
			return false // idempotence
		}
		return ab.Dominates(a) && ab.Dominates(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		v := randVC(rng)
		w := wire.NewWriter(0)
		v.Encode(w)
		r := wire.NewReader(w.Bytes())
		got := Decode(r)
		return r.Done() == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	v := New()
	v.Observe(id(2, 1, 9))
	v.Observe(id(0, 3, 4))
	v.Observe(id(0, 1, 7))
	w1 := wire.NewWriter(0)
	v.Encode(w1)
	w2 := wire.NewWriter(0)
	v.Clone().Encode(w2)
	if string(w1.Bytes()) != string(w2.Bytes()) {
		t.Fatal("encoding not deterministic")
	}
}

func TestDominates(t *testing.T) {
	a := New()
	for s := uint64(1); s <= 5; s++ {
		a.Observe(id(0, 1, s))
	}
	b := New()
	for s := uint64(1); s <= 3; s++ {
		b.Observe(id(0, 1, s))
	}
	if !a.Dominates(b) || b.Dominates(a) {
		t.Fatal("dominates wrong")
	}
	b.Observe(id(1, 1, 1))
	if a.Dominates(b) {
		t.Fatal("incomparable clocks reported dominated")
	}
	if !a.Dominates(New()) {
		t.Fatal("everything dominates empty")
	}
	// Exactness: {5} with holes below does not dominate {3}.
	h := New()
	h.Observe(id(0, 1, 5))
	only3 := New()
	only3.Observe(id(0, 1, 3))
	only3.Observe(id(0, 1, 1))
	only3.Observe(id(0, 1, 2))
	if h.Dominates(only3) {
		t.Fatal("clock with holes dominates contiguous coverage")
	}
}
