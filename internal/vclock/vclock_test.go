package vclock

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/wire"
)

func id(s int32, inc uint32, seq uint64) ids.MsgID {
	return ids.MsgID{Sender: ids.ProcessID(s), Incarnation: inc, Seq: seq}
}

func TestObserveAndCovers(t *testing.T) {
	v := New()
	if v.Covers(id(0, 1, 1)) {
		t.Fatal("empty clock covers something")
	}
	v.Observe(id(0, 1, 5))
	if !v.Covers(id(0, 1, 5)) || !v.Covers(id(0, 1, 3)) {
		t.Fatal("clock should cover seq <= 5")
	}
	if v.Covers(id(0, 1, 6)) {
		t.Fatal("clock covers future seq")
	}
	if v.Covers(id(0, 2, 1)) {
		t.Fatal("clock covers other incarnation")
	}
	if v.Covers(id(1, 1, 1)) {
		t.Fatal("clock covers other sender")
	}
}

func TestObserveIsMonotone(t *testing.T) {
	v := New()
	v.Observe(id(0, 1, 10))
	v.Observe(id(0, 1, 3)) // lower: no-op
	if !v.Covers(id(0, 1, 10)) {
		t.Fatal("observe regressed")
	}
}

func randVC(rng *rand.Rand) VC {
	v := New()
	for i := 0; i < rng.IntN(8); i++ {
		v[Key{ids.ProcessID(rng.IntN(4)), uint32(rng.IntN(3))}] = rng.Uint64N(100) + 1
	}
	return v
}

// TestMergeLattice property-checks that Merge is a join: commutative,
// associative, idempotent, and dominating.
func TestMergeLattice(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		a, b, c := randVC(rng), randVC(rng), randVC(rng)

		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false // commutativity
		}
		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		if !abc1.Equal(abc2) {
			return false // associativity
		}
		aa := a.Clone()
		aa.Merge(a)
		if !aa.Equal(a) {
			return false // idempotence
		}
		return ab.Dominates(a) && ab.Dominates(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		v := randVC(rng)
		w := wire.NewWriter(0)
		v.Encode(w)
		r := wire.NewReader(w.Bytes())
		got := Decode(r)
		return r.Done() == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	v := New()
	v.Observe(id(2, 1, 9))
	v.Observe(id(0, 3, 4))
	v.Observe(id(0, 1, 7))
	w1 := wire.NewWriter(0)
	v.Encode(w1)
	w2 := wire.NewWriter(0)
	v.Clone().Encode(w2)
	if string(w1.Bytes()) != string(w2.Bytes()) {
		t.Fatal("encoding not deterministic")
	}
}

func TestDominates(t *testing.T) {
	a := New()
	a.Observe(id(0, 1, 5))
	b := New()
	b.Observe(id(0, 1, 3))
	if !a.Dominates(b) || b.Dominates(a) {
		t.Fatal("dominates wrong")
	}
	b.Observe(id(1, 1, 1))
	if a.Dominates(b) {
		t.Fatal("incomparable clocks reported dominated")
	}
	if !a.Dominates(New()) {
		t.Fatal("everything dominates empty")
	}
}
