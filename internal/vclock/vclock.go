// Package vclock implements the checkpoint vector clock of §5.2: "The
// vector clock stores the sequence number of the last message delivered from
// each process 'contained' in the checkpoint." A message belongs to a
// delivery sequence if it appears explicitly in the suffix or is logically
// included in the application checkpoint that initiates the sequence.
//
// Because message identities are qualified by the sender's incarnation (see
// internal/ids), the clock is keyed by (sender, incarnation) pairs.
package vclock

import (
	"sort"

	"repro/internal/ids"
	"repro/internal/wire"
)

// Key identifies one message stream: one sender incarnation.
type Key struct {
	Sender      ids.ProcessID
	Incarnation uint32
}

// VC maps each stream to the highest sequence number contained. Sequence
// numbers start at 1; a missing entry means "nothing contained".
type VC map[Key]uint64

// New returns an empty clock.
func New() VC { return make(VC) }

// Covers reports whether the clock logically contains message id.
func (v VC) Covers(id ids.MsgID) bool {
	return v[Key{id.Sender, id.Incarnation}] >= id.Seq
}

// Observe extends the clock to contain id (no-op if already covered).
func (v VC) Observe(id ids.MsgID) {
	k := Key{id.Sender, id.Incarnation}
	if id.Seq > v[k] {
		v[k] = id.Seq
	}
}

// Merge folds o into v entrywise (pointwise maximum). Merge is commutative,
// associative and idempotent.
func (v VC) Merge(o VC) {
	for k, s := range o {
		if s > v[k] {
			v[k] = s
		}
	}
}

// Clone returns an independent copy.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	for k, s := range v {
		c[k] = s
	}
	return c
}

// Equal reports entrywise equality (zero entries are ignored).
func (v VC) Equal(o VC) bool {
	for k, s := range v {
		if s != 0 && o[k] != s {
			return false
		}
	}
	for k, s := range o {
		if s != 0 && v[k] != s {
			return false
		}
	}
	return true
}

// Dominates reports whether v covers everything o covers.
func (v VC) Dominates(o VC) bool {
	for k, s := range o {
		if v[k] < s {
			return false
		}
	}
	return true
}

// sortedKeys returns the keys in deterministic order (for encoding).
func (v VC) sortedKeys() []Key {
	keys := make([]Key, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Sender != keys[j].Sender {
			return keys[i].Sender < keys[j].Sender
		}
		return keys[i].Incarnation < keys[j].Incarnation
	})
	return keys
}

// Encode appends the clock to w deterministically.
func (v VC) Encode(w *wire.Writer) {
	keys := v.sortedKeys()
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.I64(int64(k.Sender))
		w.U64(uint64(k.Incarnation))
		w.U64(v[k])
	}
}

// Decode reads a clock from r.
func Decode(r *wire.Reader) VC {
	n := r.U64()
	if r.Err() != nil {
		return nil
	}
	capHint := n
	if capHint > 4096 {
		capHint = 4096
	}
	v := make(VC, capHint)
	for i := uint64(0); i < n; i++ {
		var k Key
		k.Sender = ids.ProcessID(r.I64())
		k.Incarnation = uint32(r.U64())
		v[k] = r.U64()
		if r.Err() != nil {
			return nil
		}
	}
	return v
}
