// Package vclock implements the checkpoint coverage clock of §5.2: "The
// vector clock stores the sequence number of the last message delivered from
// each process 'contained' in the checkpoint." A message belongs to a
// delivery sequence if it appears explicitly in the suffix or is logically
// included in the application checkpoint that initiates the sequence.
//
// Because message identities are qualified by the sender's incarnation (see
// internal/ids), the clock is keyed by (sender, incarnation) pairs.
//
// # Exact coverage
//
// The paper's clock is a per-stream maximum, which implicitly assumes a
// sender's messages enter the total order in sequence-number order. Under
// message loss that assumption fails: with batched broadcast, a sender's
// m4 can be ordered rounds before its m3 (whose gossip was lost), so a
// checkpoint folding m4 must NOT claim to contain m3 — processes that
// folded at different rounds would otherwise disagree on whether a later
// batch's m3 is fresh, and their delivery sequences would diverge. This
// clock therefore tracks coverage exactly: the per-stream maximum plus the
// explicit "holes" below it (sequence numbers not contained). Holes are
// empty in the common in-order case and bounded by the sender's in-flight
// message skew, so the clock stays O(streams) in practice while Covers is
// exact: it reports containment of precisely the folded messages.
package vclock

import (
	"sort"

	"repro/internal/ids"
	"repro/internal/wire"
)

// Key identifies one message stream: one sender incarnation.
type Key struct {
	Sender      ids.ProcessID
	Incarnation uint32
}

// Clock is the coverage state. Use the VC alias; create with New.
type Clock struct {
	// max[k] is the highest sequence number contained for stream k
	// (sequence numbers start at 1; a missing entry means "nothing
	// contained"). The maximum itself is always contained.
	max map[Key]uint64
	// holes[k] lists the sequence numbers below max[k] that are NOT
	// contained (the stream's messages ordered out of sequence order).
	holes map[Key]map[uint64]struct{}
}

// VC is the clock handle stored in checkpoints (nil means "no clock").
type VC = *Clock

// New returns an empty clock.
func New() VC {
	return &Clock{max: make(map[Key]uint64)}
}

// Covers reports whether the clock contains message id — exactly: true
// iff id was observed (or is below the stream maximum with no hole).
func (c *Clock) Covers(id ids.MsgID) bool {
	k := Key{id.Sender, id.Incarnation}
	if id.Seq > c.max[k] {
		return false
	}
	_, hole := c.holes[k][id.Seq]
	return !hole
}

// Observe extends the clock to contain id. Observing above the stream
// maximum records the skipped-over sequence numbers as holes; observing a
// hole fills it.
func (c *Clock) Observe(id ids.MsgID) {
	k := Key{id.Sender, id.Incarnation}
	seq := id.Seq
	max := c.max[k]
	if seq > max {
		for s := max + 1; s < seq; s++ {
			c.addHole(k, s)
		}
		c.max[k] = seq
		return
	}
	if hs, ok := c.holes[k]; ok {
		delete(hs, seq)
		if len(hs) == 0 {
			delete(c.holes, k)
		}
	}
}

func (c *Clock) addHole(k Key, seq uint64) {
	if c.holes == nil {
		c.holes = make(map[Key]map[uint64]struct{})
	}
	hs := c.holes[k]
	if hs == nil {
		hs = make(map[uint64]struct{})
		c.holes[k] = hs
	}
	hs[seq] = struct{}{}
}

// covered reports containment of (k, seq) without constructing a MsgID.
func (c *Clock) covered(k Key, seq uint64) bool {
	if seq > c.max[k] {
		return false
	}
	_, hole := c.holes[k][seq]
	return !hole
}

// Merge folds o into c so that c covers exactly the union of both
// coverages. Merge is commutative, associative and idempotent.
func (c *Clock) Merge(o *Clock) {
	for k, omax := range o.max {
		cmax := c.max[k]
		if omax > cmax {
			// Sequences in (cmax, omax] follow o's coverage exactly: its
			// holes there become holes here.
			for s := range o.holes[k] {
				if s > cmax {
					c.addHole(k, s)
				}
			}
			c.max[k] = omax
		}
		// At or below both maxima a sequence stays a hole only if both
		// clocks miss it: anything o covers fills c's holes.
		if hs, ok := c.holes[k]; ok {
			for s := range hs {
				if o.covered(k, s) {
					delete(hs, s)
				}
			}
			if len(hs) == 0 {
				delete(c.holes, k)
			}
		}
	}
}

// Clone returns an independent copy.
func (c *Clock) Clone() VC {
	out := &Clock{max: make(map[Key]uint64, len(c.max))}
	for k, s := range c.max {
		out.max[k] = s
	}
	for k, hs := range c.holes {
		cp := make(map[uint64]struct{}, len(hs))
		for s := range hs {
			cp[s] = struct{}{}
		}
		if out.holes == nil {
			out.holes = make(map[Key]map[uint64]struct{}, len(c.holes))
		}
		out.holes[k] = cp
	}
	return out
}

// Equal reports coverage equality (zero entries are ignored).
func (c *Clock) Equal(o *Clock) bool {
	return c.Dominates(o) && o.Dominates(c)
}

// Dominates reports whether c covers everything o covers.
func (c *Clock) Dominates(o *Clock) bool {
	for k, omax := range o.max {
		if omax == 0 {
			continue
		}
		cmax := c.max[k]
		if omax > cmax {
			// o covers omax itself (the maximum is always contained).
			return false
		}
		// Every c-hole at or below omax must be an o-hole too.
		for s := range c.holes[k] {
			if s <= omax && o.covered(k, s) {
				return false
			}
		}
		// Every sequence o covers must be covered by c: the only c
		// coverage gaps are its holes, checked above; additionally o's
		// non-holes below omax that fall into c's holes are covered by
		// the same check.
	}
	return true
}

// sortedKeys returns the keys in deterministic order (for encoding).
func (c *Clock) sortedKeys() []Key {
	keys := make([]Key, 0, len(c.max))
	for k := range c.max {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Sender != keys[j].Sender {
			return keys[i].Sender < keys[j].Sender
		}
		return keys[i].Incarnation < keys[j].Incarnation
	})
	return keys
}

// Encode appends the clock to w deterministically.
func (c *Clock) Encode(w *wire.Writer) {
	keys := c.sortedKeys()
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		w.I64(int64(k.Sender))
		w.U64(uint64(k.Incarnation))
		w.U64(c.max[k])
		hs := c.holes[k]
		sorted := make([]uint64, 0, len(hs))
		for s := range hs {
			sorted = append(sorted, s)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		w.U64(uint64(len(sorted)))
		for _, s := range sorted {
			w.U64(s)
		}
	}
}

// Decode reads a clock from r.
func Decode(r *wire.Reader) VC {
	n := r.U64()
	if r.Err() != nil {
		return nil
	}
	capHint := n
	if capHint > 4096 {
		capHint = 4096
	}
	c := &Clock{max: make(map[Key]uint64, capHint)}
	for i := uint64(0); i < n; i++ {
		var k Key
		k.Sender = ids.ProcessID(r.I64())
		k.Incarnation = uint32(r.U64())
		c.max[k] = r.U64()
		hn := r.U64()
		// hn is disk/attacker-controlled: every hole costs at least one
		// encoded byte, so a count beyond the remaining buffer is
		// malformed — reject it before looping anywhere near it.
		if r.Err() != nil || hn > uint64(r.Remaining()) {
			return nil
		}
		for j := uint64(0); j < hn; j++ {
			c.addHole(k, r.U64())
			if r.Err() != nil {
				return nil
			}
		}
	}
	return c
}
