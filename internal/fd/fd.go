// Package fd implements an unreliable failure detector for the
// crash-recovery model, in the style of Aguilera, Chen and Toueg (the
// paper's reference [1]): its output is unbounded — alongside suspicions it
// exports, for every process, the incarnation (epoch) counter the process
// logged at its last recovery. Consensus uses it both for suspicion-driven
// coordinator hand-off and for an Ω-style eventual-leader hint.
//
// Per the paper's claim C2, the atomic broadcast layer never touches this
// package; only the consensus engine does (§3.5).
//
// The detector's scope is one *process incarnation*, not one ordering
// group: §3.5's liveness oracle answers "is process q alive at epoch e",
// which is the same question for every group a sharded process hosts
// (groups of one process crash and recover together). A sharded deployment
// therefore runs ONE Detector per process and hands each group's consensus
// engine a View facade — G heartbeat streams per peer collapse to one,
// with identical suspicion output.
package fd

import (
	"context"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/wire"
)

// Options configures a Detector.
type Options struct {
	// Heartbeat is the interval between heartbeats (default 15ms).
	Heartbeat time.Duration
	// Timeout is the silence after which a process is suspected
	// (default 4x Heartbeat).
	Timeout time.Duration
	// Obs is the process's observability plane: suspicion/trust
	// transitions and peer epoch changes land in its flight recorder, and
	// the current suspicion count becomes a scrape metric. May be nil.
	Obs *obs.Plane
}

func (o *Options) fill() {
	if o.Heartbeat <= 0 {
		o.Heartbeat = 15 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 4 * o.Heartbeat
	}
}

// API is the detector interface the rest of the stack programs against —
// satisfied by both a Detector and a per-group View over a shared one. It
// is a superset of consensus.Suspector.
type API interface {
	// Suspects reports whether p is currently suspected.
	Suspects(p ids.ProcessID) bool
	// Leader returns the Ω-style eventual-leader hint.
	Leader() ids.ProcessID
	// Trusted returns the processes currently not suspected, in pid order.
	Trusted() []ids.ProcessID
	// Epoch returns the highest incarnation observed for p.
	Epoch(p ids.ProcessID) uint32
	// SelfEpoch returns the observing incarnation's own epoch.
	SelfEpoch() uint32
}

// Detector is a heartbeat failure detector for one process incarnation.
type Detector struct {
	pid   ids.ProcessID
	n     int
	epoch uint32
	opts  Options
	net   router.Net
	clock func() time.Time

	mu       sync.Mutex
	lastSeen []time.Time
	epochs   []uint32
	// suspected caches the last published suspicion per peer, so the
	// heartbeat task can emit flight-recorder events only on transitions
	// (suspicion itself stays derived from lastSeen on every read).
	suspected []bool
	fl        *obs.Recorder

	wg sync.WaitGroup
}

var _ API = (*Detector)(nil)

// New creates a detector for process pid (of n) running incarnation epoch.
// net must be bound to the FD channel.
func New(pid ids.ProcessID, n int, epoch uint32, opts Options, net router.Net) *Detector {
	opts.fill()
	d := &Detector{
		pid:       pid,
		n:         n,
		epoch:     epoch,
		opts:      opts,
		net:       net,
		clock:     time.Now,
		lastSeen:  make([]time.Time, n),
		epochs:    make([]uint32, n),
		suspected: make([]bool, n),
		fl:        opts.Obs.Flight(),
	}
	d.epochs[pid] = epoch
	opts.Obs.Reg().Func("abcast.fd.suspected", func() int64 {
		return int64(d.n - len(d.Trusted()))
	})
	return d
}

// SetClock overrides the time source (tests only).
func (d *Detector) SetClock(clock func() time.Time) { d.clock = clock }

// Start launches the heartbeat task. It returns immediately; the task stops
// when ctx is cancelled. Wait for it with Stop.
func (d *Detector) Start(ctx context.Context) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		ticker := time.NewTicker(d.opts.Heartbeat)
		defer ticker.Stop()
		d.beat()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				d.beat()
				d.scanTransitions()
			}
		}
	}()
}

// Stop waits for the heartbeat task to exit (cancel the Start context
// first).
func (d *Detector) Stop() { d.wg.Wait() }

// scanTransitions compares the derived suspicion state against the last
// published one and records a flight-recorder event per flip. Runs on the
// heartbeat cadence, so a suspicion is timestamped within one interval.
func (d *Detector) scanTransitions() {
	if d.fl == nil {
		return
	}
	now := d.clock()
	d.mu.Lock()
	for p := 0; p < d.n; p++ {
		if ids.ProcessID(p) == d.pid {
			continue
		}
		last := d.lastSeen[p]
		s := !last.IsZero() && now.Sub(last) > d.opts.Timeout
		if s == d.suspected[p] {
			continue
		}
		d.suspected[p] = s
		kind := obs.EvTrust
		if s {
			kind = obs.EvSuspect
		}
		d.fl.Event(kind, 0, uint64(d.epochs[p]), int64(p), 0, "")
	}
	d.mu.Unlock()
}

func (d *Detector) beat() {
	w := wire.GetWriter(8)
	w.U64(uint64(d.epoch))
	d.net.Multisend(w.Bytes())
	wire.PutWriter(w)
}

// OnMessage is the router handler for FD heartbeats.
func (d *Detector) OnMessage(from ids.ProcessID, payload []byte) {
	r := wire.NewReader(payload)
	epoch := uint32(r.U64())
	if r.Err() != nil || from < 0 || int(from) >= d.n {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastSeen[from] = d.clock()
	if epoch > d.epochs[from] {
		prev := d.epochs[from]
		d.epochs[from] = epoch
		if prev != 0 || epoch > 1 {
			// A jump past the first observation: the peer recovered into a
			// new incarnation while we watched.
			d.fl.Event(obs.EvEpochChange, 0, uint64(epoch), int64(from), int64(prev), "peer incarnation advanced")
		}
	}
}

// Suspects reports whether p is currently suspected. A process never
// suspects itself.
func (d *Detector) Suspects(p ids.ProcessID) bool {
	if p == d.pid {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	last := d.lastSeen[p]
	if last.IsZero() {
		// Never heard from p this incarnation: give it one timeout of
		// grace from our own start rather than suspecting instantly.
		return false
	}
	return d.clock().Sub(last) > d.opts.Timeout
}

// Trusted returns the processes currently not suspected, in pid order.
func (d *Detector) Trusted() []ids.ProcessID {
	out := make([]ids.ProcessID, 0, d.n)
	for p := 0; p < d.n; p++ {
		if !d.Suspects(ids.ProcessID(p)) {
			out = append(out, ids.ProcessID(p))
		}
	}
	return out
}

// Leader returns the Ω-style eventual leader hint: the lowest-id trusted
// process. With accurate-enough timeouts all good processes eventually
// agree on it.
func (d *Detector) Leader() ids.ProcessID {
	for p := 0; p < d.n; p++ {
		if !d.Suspects(ids.ProcessID(p)) {
			return ids.ProcessID(p)
		}
	}
	return d.pid
}

// Epoch returns the highest incarnation number observed for p.
func (d *Detector) Epoch(p ids.ProcessID) uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epochs[p]
}

// SelfEpoch returns this incarnation's epoch.
func (d *Detector) SelfEpoch() uint32 { return d.epoch }

// View is one ordering group's facade over a process-level Detector shared
// by every group of a sharded process. All facades of one process expose
// the same suspicions and epochs — correct per §3.5, because the groups of
// one process share its crash/recovery lifecycle: a process that recovers
// at a higher epoch is re-trusted by every group's facade at once. The
// Group tag exists purely for observability (logs, tests).
type View struct {
	d     *Detector
	group ids.GroupID
}

var _ API = View{}

// View returns group g's facade over the shared detector.
func (d *Detector) View(g ids.GroupID) View { return View{d: d, group: g} }

// InertView returns a facade over a detector that was never started and
// never hears a heartbeat: it trusts everyone (the never-heard grace rule)
// and reports epoch 0. Owners of a shared detector hand it out in the
// window where no live detector exists (process torn down or still
// booting) so a racing reader gets a safe, never-nil oracle instead of a
// crash.
func InertView(pid ids.ProcessID, n int, opts Options, g ids.GroupID) View {
	return New(pid, n, 0, opts, nil).View(g)
}

// Group returns the ordering group this facade was handed to.
func (v View) Group() ids.GroupID { return v.group }

// Detector returns the shared process-level detector behind the facade.
func (v View) Detector() *Detector { return v.d }

// Suspects implements API.
func (v View) Suspects(p ids.ProcessID) bool { return v.d.Suspects(p) }

// Leader implements API.
func (v View) Leader() ids.ProcessID { return v.d.Leader() }

// Trusted implements API.
func (v View) Trusted() []ids.ProcessID { return v.d.Trusted() }

// Epoch implements API.
func (v View) Epoch(p ids.ProcessID) uint32 { return v.d.Epoch(p) }

// SelfEpoch implements API.
func (v View) SelfEpoch() uint32 { return v.d.SelfEpoch() }
