package fd

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/router"
	"repro/internal/transport"
	"repro/internal/wire"
)

// fakeNet captures multisends.
type fakeNet struct {
	mu   sync.Mutex
	sent [][]byte
}

var _ router.Net = (*fakeNet)(nil)

func (f *fakeNet) Send(to ids.ProcessID, payload []byte) {}
func (f *fakeNet) Multisend(payload []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := make([]byte, len(payload))
	copy(cp, payload)
	f.sent = append(f.sent, cp)
}
func (f *fakeNet) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sent)
}

func TestHeartbeatTaskBeats(t *testing.T) {
	net := &fakeNet{}
	d := New(0, 3, 1, Options{Heartbeat: 2 * time.Millisecond}, net)
	ctx, cancel := context.WithCancel(context.Background())
	d.Start(ctx)
	time.Sleep(20 * time.Millisecond)
	cancel()
	d.Stop()
	if net.count() < 3 {
		t.Fatalf("only %d heartbeats", net.count())
	}
}

func TestSuspicionLifecycle(t *testing.T) {
	net := &fakeNet{}
	d := New(0, 3, 1, Options{Heartbeat: 5 * time.Millisecond, Timeout: 20 * time.Millisecond}, net)
	now := time.Unix(1000, 0)
	d.SetClock(func() time.Time { return now })

	// Never-heard processes get grace: not suspected.
	if d.Suspects(1) {
		t.Fatal("grace period ignored")
	}
	// Fresh heartbeat: trusted.
	hb := wire.NewWriter(4)
	hb.U64(7)
	d.OnMessage(1, hb.Bytes())
	if d.Suspects(1) {
		t.Fatal("fresh heartbeat suspected")
	}
	if d.Epoch(1) != 7 {
		t.Fatalf("epoch = %d", d.Epoch(1))
	}
	// Silence beyond the timeout: suspected.
	now = now.Add(50 * time.Millisecond)
	if !d.Suspects(1) {
		t.Fatal("silent process not suspected")
	}
	// It speaks again with a higher epoch (it recovered): trusted again.
	hb2 := wire.NewWriter(4)
	hb2.U64(8)
	d.OnMessage(1, hb2.Bytes())
	if d.Suspects(1) {
		t.Fatal("recovered process still suspected")
	}
	if d.Epoch(1) != 8 {
		t.Fatalf("epoch after recovery = %d", d.Epoch(1))
	}
}

func TestNeverSuspectsSelf(t *testing.T) {
	d := New(2, 3, 1, Options{}, &fakeNet{})
	now := time.Unix(0, 0)
	d.SetClock(func() time.Time { return now })
	now = now.Add(time.Hour)
	if d.Suspects(2) {
		t.Fatal("self-suspicion")
	}
}

func TestLeaderIsLowestTrusted(t *testing.T) {
	net := &fakeNet{}
	d := New(2, 3, 1, Options{Timeout: 10 * time.Millisecond}, net)
	now := time.Unix(1000, 0)
	d.SetClock(func() time.Time { return now })

	hb := wire.NewWriter(4)
	hb.U64(1)
	d.OnMessage(0, hb.Bytes())
	d.OnMessage(1, hb.Bytes())
	if d.Leader() != 0 {
		t.Fatalf("leader = %v", d.Leader())
	}
	// p0 goes silent past the timeout; p1 stays fresh.
	now = now.Add(20 * time.Millisecond)
	d.OnMessage(1, hb.Bytes())
	if d.Leader() != 1 {
		t.Fatalf("leader after p0 silence = %v", d.Leader())
	}
}

func TestEpochNeverRegresses(t *testing.T) {
	d := New(0, 2, 1, Options{}, &fakeNet{})
	hbHigh := wire.NewWriter(4)
	hbHigh.U64(9)
	d.OnMessage(1, hbHigh.Bytes())
	hbLow := wire.NewWriter(4)
	hbLow.U64(3) // stale duplicate from an old incarnation
	d.OnMessage(1, hbLow.Bytes())
	if d.Epoch(1) != 9 {
		t.Fatalf("epoch regressed to %d", d.Epoch(1))
	}
}

func TestMalformedHeartbeatIgnored(t *testing.T) {
	d := New(0, 2, 1, Options{}, &fakeNet{})
	d.OnMessage(1, nil)
	d.OnMessage(1, []byte{0xff}) // truncated varint
	d.OnMessage(99, []byte{1})   // out-of-range pid
	d.OnMessage(-1, []byte{1})   // negative pid
	if d.Epoch(1) != 0 {
		t.Fatal("malformed heartbeat had effect")
	}
}

func TestTrustedListOverRealNetwork(t *testing.T) {
	memNet := transport.NewMem(2, transport.MemOptions{Seed: 3})
	defer memNet.Close()
	var rts []*router.Router
	var dets []*Detector
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for p := 0; p < 2; p++ {
		ep, err := memNet.Attach(ids.ProcessID(p))
		if err != nil {
			t.Fatal(err)
		}
		rt := router.New(ep)
		det := New(ids.ProcessID(p), 2, 1, Options{
			Heartbeat: 2 * time.Millisecond,
			Timeout:   20 * time.Millisecond,
		}, rt.Bound(router.ChanFD))
		rt.Handle(router.ChanFD, det.OnMessage)
		rt.Start(ctx)
		det.Start(ctx)
		rts = append(rts, rt)
		dets = append(dets, det)
	}
	defer func() {
		cancel()
		for i := range rts {
			rts[i].Stop()
			dets[i].Stop()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(dets[0].Trusted()) == 2 && dets[0].Leader() == 0 && dets[1].Leader() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("detectors never converged: trusted=%v", dets[0].Trusted())
}

// TestSharedViewsReTrustRecoveredEpoch is the shared-FD recovery contract:
// all group facades of one process-level detector expose the same
// suspicion flip when a peer crashes, and when the peer recovers with a
// higher epoch every facade re-trusts it at that new epoch at once —
// per-group crash semantics are preserved precisely because the groups of
// a process share its lifecycle.
func TestSharedViewsReTrustRecoveredEpoch(t *testing.T) {
	d := New(0, 3, 1, Options{Heartbeat: 5 * time.Millisecond, Timeout: 20 * time.Millisecond}, &fakeNet{})
	now := time.Unix(1000, 0)
	d.SetClock(func() time.Time { return now })

	views := []View{d.View(0), d.View(1), d.View(2)}
	for g, v := range views {
		if v.Group() != ids.GroupID(g) {
			t.Fatalf("view %d tagged %v", g, v.Group())
		}
	}

	// p1 alive at epoch 2: every facade trusts it and reads the epoch.
	hb := wire.NewWriter(4)
	hb.U64(2)
	d.OnMessage(1, hb.Bytes())
	for g, v := range views {
		if v.Suspects(1) || v.Epoch(1) != 2 {
			t.Fatalf("g%d: fresh peer suspected or epoch=%d", g, v.Epoch(1))
		}
	}

	// p1 crashes (silence beyond the timeout): every facade flips at once.
	now = now.Add(50 * time.Millisecond)
	for g, v := range views {
		if !v.Suspects(1) {
			t.Fatalf("g%d: crashed peer not suspected", g)
		}
	}

	// p1 recovers and heartbeats at epoch 3: every facade re-trusts it at
	// the new epoch.
	hb2 := wire.NewWriter(4)
	hb2.U64(3)
	d.OnMessage(1, hb2.Bytes())
	for g, v := range views {
		if v.Suspects(1) {
			t.Fatalf("g%d: recovered peer still suspected", g)
		}
		if v.Epoch(1) != 3 {
			t.Fatalf("g%d: epoch after recovery = %d, want 3", g, v.Epoch(1))
		}
	}

	// The facades share leader/trusted/self-epoch output with the
	// detector itself.
	for g, v := range views {
		if v.Leader() != d.Leader() || v.SelfEpoch() != d.SelfEpoch() {
			t.Fatalf("g%d: facade output diverged from the detector", g)
		}
		if len(v.Trusted()) != len(d.Trusted()) {
			t.Fatalf("g%d: trusted list diverged", g)
		}
	}
}
