// Package transport implements the paper's transport building block (§3.1):
// unreliable send/multisend/receive over fair-lossy channels. "Both send and
// multisend are unreliable: the channel can lose messages but it is assumed
// to be fair, i.e., if a message is sent infinitely often by a process p
// then it is received infinitely often by its receiver."
//
// Two implementations are provided: Mem, an in-memory network with seeded
// loss, duplication, reordering delay and partitions (the simulation
// substrate for every experiment), and TCP, a socket transport for real
// deployments. Messages that arrive while the destination process is down
// are dropped, exactly as §2.1 prescribes.
package transport

import (
	"context"
	"errors"

	"repro/internal/ids"
)

// ErrClosed is returned by Recv after the endpoint is closed (the process
// crashed or shut down).
var ErrClosed = errors.New("transport: endpoint closed")

// ErrDetached is returned by Attach when the process already has a live
// endpoint; a process has at most one incarnation at a time.
var ErrDetached = errors.New("transport: process already attached")

// Packet is one received datagram.
type Packet struct {
	From ids.ProcessID
	Data []byte
}

// Endpoint is a process's handle on the network for one incarnation.
// Send and Multisend never block and never fail: the channel is allowed to
// lose anything. Recv blocks until a packet arrives, the context is
// cancelled, or the endpoint is closed.
type Endpoint interface {
	Local() ids.ProcessID
	// Send transmits data to one process (unreliably).
	Send(to ids.ProcessID, data []byte)
	// Multisend transmits data to every process including the sender
	// (the paper's multisend macro).
	Multisend(data []byte)
	// Recv returns the next packet from the input buffer.
	Recv(ctx context.Context) (Packet, error)
	// Close detaches the process from the network; packets addressed to
	// it are dropped until a new incarnation attaches.
	Close() error
}

// Network creates endpoints.
type Network interface {
	// Attach creates the endpoint for pid's next incarnation.
	Attach(pid ids.ProcessID) (Endpoint, error)
	// N returns the group size.
	N() int
}
