package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/ids"
)

// MaxFrame caps one frame's payload; a peer announcing a larger frame is
// treated as corrupt or hostile and its connection is dropped (the length
// prefix would otherwise let one bad frame command an arbitrary
// allocation).
const MaxFrame = 64 << 20

// maxPooledFrame caps the buffers the frame pool retains: anything larger
// is allocated (and freed) directly, so a burst of 1MiB payloads cannot
// pin megabytes of idle pool memory forever.
const maxPooledFrame = 256 << 10

// framePool recycles frame buffers between Send calls (write path) and
// across dropped packets (read path). Stored as *[]byte to avoid the
// allocation of boxing a slice header per Put.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// getFrame returns a pooled buffer of length n (contents undefined).
func getFrame(n int) *[]byte {
	bp := framePool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// putFrame recycles a buffer obtained from getFrame. Oversized buffers are
// dropped for the GC instead of retained.
func putFrame(bp *[]byte) {
	if cap(*bp) > maxPooledFrame {
		return
	}
	framePool.Put(bp)
}

// TCP is a socket-based Network for real deployments: every process listens
// on one address and dials peers on demand. Delivery is best-effort — a
// failed dial or write simply drops the packet, which is all the fair-lossy
// contract requires (the protocol's gossip retransmits forever).
//
// Frames are length-prefixed: [sender i32][len u32][payload].
type TCP struct {
	addrs []string // index = ProcessID

	mu  sync.Mutex
	eps map[ids.ProcessID]*tcpEndpoint
}

var _ Network = (*TCP)(nil)

// NewTCP creates a TCP network where process i listens on addrs[i].
func NewTCP(addrs []string) *TCP {
	cp := make([]string, len(addrs))
	copy(cp, addrs)
	return &TCP{addrs: cp, eps: make(map[ids.ProcessID]*tcpEndpoint)}
}

// N implements Network.
func (t *TCP) N() int { return len(t.addrs) }

// Attach implements Network. It binds pid's listener.
func (t *TCP) Attach(pid ids.ProcessID) (Endpoint, error) {
	if pid < 0 || int(pid) >= len(t.addrs) {
		return nil, fmt.Errorf("transport: pid %v out of range", pid)
	}
	t.mu.Lock()
	if _, live := t.eps[pid]; live {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrDetached, pid)
	}
	t.mu.Unlock()

	ln, err := net.Listen("tcp", t.addrs[pid])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", t.addrs[pid], err)
	}
	ep := &tcpEndpoint{
		net:     t,
		pid:     pid,
		ln:      ln,
		inbox:   make(chan Packet, 4096),
		done:    make(chan struct{}),
		conns:   make(map[ids.ProcessID]net.Conn),
		inbound: make(map[net.Conn]struct{}),
	}
	t.mu.Lock()
	t.eps[pid] = ep
	t.mu.Unlock()
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Addr returns the listen address of pid (useful when using ":0" ports is
// not possible; addresses are fixed up front).
func (t *TCP) Addr(pid ids.ProcessID) string { return t.addrs[pid] }

func (t *TCP) detach(pid ids.ProcessID, ep *tcpEndpoint) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.eps[pid] == ep {
		delete(t.eps, pid)
	}
}

type tcpEndpoint struct {
	net   *TCP
	pid   ids.ProcessID
	ln    net.Listener
	inbox chan Packet
	done  chan struct{}

	mu      sync.Mutex
	conns   map[ids.ProcessID]net.Conn
	inbound map[net.Conn]struct{}

	closeOnce sync.Once
	wg        sync.WaitGroup
}

var _ Endpoint = (*tcpEndpoint)(nil)

func (e *tcpEndpoint) Local() ids.ProcessID { return e.pid }

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	e.mu.Lock()
	e.inbound[conn] = struct{}{}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.inbound, conn)
		e.mu.Unlock()
	}()
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		from := ids.ProcessID(int32(binary.LittleEndian.Uint32(hdr[0:4])))
		n := binary.LittleEndian.Uint32(hdr[4:8])
		if n > MaxFrame {
			return // oversized frame; drop connection
		}
		// Read into a pooled buffer: a delivered packet escapes into the
		// inbox (its consumer owns the memory from then on, so it is
		// simply not returned), but a dropped one recycles immediately —
		// an overloaded inbox stops costing an allocation per drop.
		bp := getFrame(int(n))
		if _, err := io.ReadFull(conn, *bp); err != nil {
			putFrame(bp)
			return
		}
		select {
		case e.inbox <- Packet{From: from, Data: *bp}:
		case <-e.done:
			putFrame(bp)
			return
		default:
			// Inbox full: drop. Fair-lossy permits it.
			putFrame(bp)
		}
	}
}

// conn returns a cached or fresh connection to pid, or nil.
func (e *tcpEndpoint) conn(to ids.ProcessID) net.Conn {
	e.mu.Lock()
	c := e.conns[to]
	e.mu.Unlock()
	if c != nil {
		return c
	}
	d := net.Dialer{Timeout: 500 * time.Millisecond}
	c, err := d.Dial("tcp", e.net.addrs[to])
	if err != nil {
		return nil
	}
	e.mu.Lock()
	if old := e.conns[to]; old != nil {
		e.mu.Unlock()
		c.Close()
		return old
	}
	e.conns[to] = c
	e.mu.Unlock()
	return c
}

func (e *tcpEndpoint) dropConn(to ids.ProcessID, c net.Conn) {
	e.mu.Lock()
	if e.conns[to] == c {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	c.Close()
}

func (e *tcpEndpoint) Send(to ids.ProcessID, data []byte) {
	select {
	case <-e.done:
		return
	default:
	}
	if to == e.pid {
		// Reliable local delivery.
		cp := make([]byte, len(data))
		copy(cp, data)
		select {
		case e.inbox <- Packet{From: e.pid, Data: cp}:
		default:
		}
		return
	}
	if to < 0 || int(to) >= len(e.net.addrs) {
		return
	}
	bp := e.buildFrame(data)
	e.writeFrame(to, *bp)
	putFrame(bp)
}

// buildFrame assembles one length-prefixed wire frame in a pooled buffer;
// the caller returns it with putFrame after the write(s).
func (e *tcpEndpoint) buildFrame(data []byte) *[]byte {
	bp := getFrame(8 + len(data))
	frame := *bp
	binary.LittleEndian.PutUint32(frame[0:4], uint32(int32(e.pid)))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(data)))
	copy(frame[8:], data)
	return bp
}

// writeFrame sends one assembled frame to a remote peer.
func (e *tcpEndpoint) writeFrame(to ids.ProcessID, frame []byte) {
	c := e.conn(to)
	if c == nil {
		return // peer unreachable; packet lost
	}
	c.SetWriteDeadline(time.Now().Add(time.Second))
	if _, err := c.Write(frame); err != nil {
		e.dropConn(to, c)
	}
}

func (e *tcpEndpoint) Multisend(data []byte) {
	select {
	case <-e.done:
		return
	default:
	}
	// One frame assembly serves every peer (the per-peer copy the old
	// Send-in-a-loop paid is gone); the local delivery still needs its own
	// copy, because the inbox consumer owns its memory.
	bp := e.buildFrame(data)
	for to := range e.net.addrs {
		pid := ids.ProcessID(to)
		if pid == e.pid {
			cp := make([]byte, len(data))
			copy(cp, data)
			select {
			case e.inbox <- Packet{From: e.pid, Data: cp}:
			default:
			}
			continue
		}
		e.writeFrame(pid, *bp)
	}
	putFrame(bp)
}

func (e *tcpEndpoint) Recv(ctx context.Context) (Packet, error) {
	select {
	case pkt := <-e.inbox:
		return pkt, nil
	case <-e.done:
		return Packet{}, ErrClosed
	case <-ctx.Done():
		return Packet{}, ctx.Err()
	}
}

func (e *tcpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.ln.Close()
		e.mu.Lock()
		for to, c := range e.conns {
			c.Close()
			delete(e.conns, to)
		}
		for c := range e.inbound {
			c.Close() // unblocks the readLoop goroutines
		}
		e.mu.Unlock()
		e.net.detach(e.pid, e)
		e.wg.Wait()
	})
	return nil
}
