package transport

import (
	"context"
	"fmt"
	"net"
	"testing"

	"repro/internal/ids"
)

// loopbackAddrs reserves n distinct loopback ports by briefly listening on
// :0, so parallel benchmark runs cannot collide on fixed ports.
func loopbackAddrs(tb testing.TB, n int) []string {
	tb.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// BenchmarkTCPSendRecv measures the per-frame cost of the socket transport
// round trip — the pooled write/read frame buffers show up directly in the
// allocs/op column.
func BenchmarkTCPSendRecv(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			tn := NewTCP(loopbackAddrs(b, 2))
			e0, err := tn.Attach(0)
			if err != nil {
				b.Fatal(err)
			}
			e1, err := tn.Attach(1)
			if err != nil {
				b.Fatal(err)
			}
			defer e0.Close()
			defer e1.Close()

			payload := make([]byte, size)
			ctx := context.Background()
			// Prime the connection (first Send dials).
			e0.Send(1, payload)
			if _, err := e1.Recv(ctx); err != nil {
				b.Fatal(err)
			}

			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e0.Send(1, payload)
				if _, err := e1.Recv(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTCPMultisend measures the fan-out write path: one frame
// assembly must serve every peer.
func BenchmarkTCPMultisend(b *testing.B) {
	const n = 4
	tn := NewTCP(loopbackAddrs(b, n))
	eps := make([]Endpoint, n)
	for i := range eps {
		ep, err := tn.Attach(ids.ProcessID(i))
		if err != nil {
			b.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
	}
	payload := make([]byte, 1024)
	ctx := context.Background()
	eps[0].Multisend(payload)
	for i := 1; i < n; i++ {
		if _, err := eps[i].Recv(ctx); err != nil {
			b.Fatal(err)
		}
	}

	b.SetBytes(1024 * (n - 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eps[0].Multisend(payload)
		for j := 1; j < n; j++ {
			if _, err := eps[j].Recv(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
}
