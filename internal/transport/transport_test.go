package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ids"
)

func recvOne(t *testing.T, ep Endpoint, timeout time.Duration) (Packet, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return ep.Recv(ctx)
}

func TestMemDeliversPointToPoint(t *testing.T) {
	net := NewMem(2, MemOptions{Seed: 1})
	defer net.Close()
	a, err := net.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	a.Send(1, []byte("hi"))
	pkt, err := recvOne(t, b, time.Second)
	if err != nil || pkt.From != 0 || string(pkt.Data) != "hi" {
		t.Fatalf("recv: %+v %v", pkt, err)
	}
}

func TestMemMultisendIncludesSelf(t *testing.T) {
	net := NewMem(3, MemOptions{Seed: 2})
	defer net.Close()
	eps := make([]Endpoint, 3)
	for i := range eps {
		ep, err := net.Attach(ids.ProcessID(i))
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	eps[0].Multisend([]byte("all"))
	for i, ep := range eps {
		pkt, err := recvOne(t, ep, time.Second)
		if err != nil || string(pkt.Data) != "all" {
			t.Fatalf("ep %d: %v %v", i, pkt, err)
		}
	}
}

func TestMemDropsWhileDetached(t *testing.T) {
	net := NewMem(2, MemOptions{Seed: 3})
	defer net.Close()
	a, _ := net.Attach(0)
	b, _ := net.Attach(1)
	b.Close() // p1 goes down

	a.Send(1, []byte("lost"))
	// Reattach: the message sent while down must NOT be delivered (§2.1).
	b2, err := net.Attach(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if pkt, err := b2.Recv(ctx); err == nil {
		t.Fatalf("message survived downtime: %+v", pkt)
	}
	if net.Stats().Dropped == 0 {
		t.Fatal("drop not counted")
	}
}

func TestMemDoubleAttachRejected(t *testing.T) {
	net := NewMem(1, MemOptions{Seed: 4})
	defer net.Close()
	_, err := net.Attach(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(0); !errors.Is(err, ErrDetached) {
		t.Fatalf("want ErrDetached, got %v", err)
	}
}

func TestMemLossIsFairNotTotal(t *testing.T) {
	// 50% loss: over many sends, some get through and some are lost —
	// the fair-lossy property the gossip task relies on.
	net := NewMem(2, MemOptions{Seed: 5, Loss: 0.5})
	defer net.Close()
	a, _ := net.Attach(0)
	b, _ := net.Attach(1)
	for i := 0; i < 200; i++ {
		a.Send(1, []byte{byte(i)})
	}
	received := 0
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err := b.Recv(ctx)
		cancel()
		if err != nil {
			break
		}
		received++
	}
	if received == 0 || received == 200 {
		t.Fatalf("loss not fair: received %d/200", received)
	}
	st := net.Stats()
	if st.Dropped == 0 || st.Delivered == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMemSelfDeliveryIsReliable(t *testing.T) {
	net := NewMem(1, MemOptions{Seed: 6, Loss: 0.99})
	defer net.Close()
	a, _ := net.Attach(0)
	for i := 0; i < 50; i++ {
		a.Send(0, []byte{byte(i)})
	}
	for i := 0; i < 50; i++ {
		pkt, err := recvOne(t, a, time.Second)
		if err != nil || pkt.Data[0] != byte(i) {
			t.Fatalf("self delivery %d: %v %v", i, pkt, err)
		}
	}
}

func TestMemDuplication(t *testing.T) {
	net := NewMem(2, MemOptions{Seed: 7, Dup: 1.0})
	defer net.Close()
	a, _ := net.Attach(0)
	b, _ := net.Attach(1)
	a.Send(1, []byte("twice"))
	for i := 0; i < 2; i++ {
		pkt, err := recvOne(t, b, time.Second)
		if err != nil || string(pkt.Data) != "twice" {
			t.Fatalf("copy %d: %v %v", i, pkt, err)
		}
	}
}

func TestMemDelayedDeliveryArrives(t *testing.T) {
	net := NewMem(2, MemOptions{Seed: 8, MinDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond})
	defer net.Close()
	a, _ := net.Attach(0)
	b, _ := net.Attach(1)
	start := time.Now()
	a.Send(1, []byte("later"))
	pkt, err := recvOne(t, b, time.Second)
	if err != nil || string(pkt.Data) != "later" {
		t.Fatalf("recv: %v %v", pkt, err)
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("delivery was not delayed")
	}
}

func TestMemPartitionAndHeal(t *testing.T) {
	net := NewMem(2, MemOptions{Seed: 9})
	defer net.Close()
	a, _ := net.Attach(0)
	b, _ := net.Attach(1)
	net.Partition([]ids.ProcessID{0}, []ids.ProcessID{1})
	a.Send(1, []byte("blocked"))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := b.Recv(ctx); err == nil {
		t.Fatal("message crossed the partition")
	}
	net.Heal()
	a.Send(1, []byte("through"))
	pkt, err := recvOne(t, b, time.Second)
	if err != nil || string(pkt.Data) != "through" {
		t.Fatalf("after heal: %v %v", pkt, err)
	}
}

func TestMemLinkLossOverride(t *testing.T) {
	net := NewMem(2, MemOptions{Seed: 10})
	defer net.Close()
	a, _ := net.Attach(0)
	b, _ := net.Attach(1)
	net.SetLinkLoss(0, 1, 1.0) // directed: everything 0->1 lost
	a.Send(1, []byte("gone"))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := b.Recv(ctx); err == nil {
		t.Fatal("message survived total link loss")
	}
	net.SetLinkLoss(0, 1, -1) // restore default
	a.Send(1, []byte("back"))
	if pkt, err := recvOne(t, b, time.Second); err != nil || string(pkt.Data) != "back" {
		t.Fatalf("after restore: %v %v", pkt, err)
	}
}

func TestMemRecvHonorsContext(t *testing.T) {
	net := NewMem(1, MemOptions{Seed: 11})
	defer net.Close()
	a, _ := net.Attach(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline, got %v", err)
	}
}

func TestMemRecvAfterCloseReturnsErrClosed(t *testing.T) {
	net := NewMem(1, MemOptions{Seed: 12})
	defer net.Close()
	a, _ := net.Attach(0)
	a.Close()
	if _, err := a.Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestMemSenderBufferCopied(t *testing.T) {
	net := NewMem(2, MemOptions{Seed: 13})
	defer net.Close()
	a, _ := net.Attach(0)
	b, _ := net.Attach(1)
	buf := []byte("original")
	a.Send(1, buf)
	copy(buf, "MUTATED!")
	pkt, err := recvOne(t, b, time.Second)
	if err != nil || string(pkt.Data) != "original" {
		t.Fatalf("buffer aliased: %q %v", pkt.Data, err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	addrs := []string{"127.0.0.1:39471", "127.0.0.1:39472"}
	net := NewTCP(addrs)
	if net.N() != 2 {
		t.Fatal("N wrong")
	}
	a, err := net.Attach(0)
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer a.Close()
	b, err := net.Attach(1)
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer b.Close()

	// Delivery is best-effort; retry like the gossip task would.
	deadline := time.Now().Add(5 * time.Second)
	var pkt Packet
	for time.Now().Before(deadline) {
		a.Send(1, []byte("over tcp"))
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		p, err := b.Recv(ctx)
		cancel()
		if err == nil {
			pkt = p
			break
		}
	}
	if string(pkt.Data) != "over tcp" || pkt.From != 0 {
		t.Fatalf("tcp recv: %+v", pkt)
	}

	// Self delivery.
	a.Send(0, []byte("self"))
	if p, err := recvOne(t, a, time.Second); err != nil || string(p.Data) != "self" {
		t.Fatalf("self: %v %v", p, err)
	}

	// Multisend reaches both.
	deadline = time.Now().Add(5 * time.Second)
	got := false
	for time.Now().Before(deadline) && !got {
		b.Multisend([]byte("multi"))
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		p, err := a.Recv(ctx)
		cancel()
		if err == nil && string(p.Data) == "multi" {
			got = true
		}
	}
	if !got {
		t.Fatal("multisend never arrived")
	}
}

func TestTCPReattachAfterClose(t *testing.T) {
	addrs := []string{"127.0.0.1:39481"}
	net := NewTCP(addrs)
	a, err := net.Attach(0)
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	a.Close()
	a2, err := net.Attach(0)
	if err != nil {
		t.Fatalf("reattach: %v", err)
	}
	a2.Close()
}

func TestSchedulerRunsCallbacksInOrder(t *testing.T) {
	s := newScheduler()
	defer s.stop()
	ch := make(chan int, 3)
	s.after(30*time.Millisecond, func() { ch <- 3 })
	s.after(10*time.Millisecond, func() { ch <- 1 })
	s.after(20*time.Millisecond, func() { ch <- 2 })
	var got []int
	for i := 0; i < 3; i++ {
		select {
		case v := <-ch:
			got = append(got, v)
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout, got %v", got)
		}
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("order: %v", got)
	}
}

func TestSchedulerStopDiscardsPending(t *testing.T) {
	s := newScheduler()
	fired := make(chan struct{}, 1)
	s.after(50*time.Millisecond, func() { fired <- struct{}{} })
	s.stop()
	select {
	case <-fired:
		t.Fatal("callback ran after stop")
	case <-time.After(100 * time.Millisecond):
	}
	// after() on a stopped scheduler is a no-op, not a panic.
	s.after(time.Millisecond, func() { fired <- struct{}{} })
}
