package transport

import (
	"container/heap"
	"sync"
	"time"
)

// scheduler runs callbacks after a delay using a single goroutine and a
// timer heap, so delayed delivery does not spawn one goroutine per packet.
type scheduler struct {
	mu      sync.Mutex
	heap    timerHeap
	wake    chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

type timerItem struct {
	at time.Time
	fn func()
}

type timerHeap []timerItem

func (h timerHeap) Len() int            { return len(h) }
func (h timerHeap) Less(i, j int) bool  { return h[i].at.Before(h[j].at) }
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(timerItem)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func newScheduler() *scheduler {
	s := &scheduler{wake: make(chan struct{}, 1)}
	s.wg.Add(1)
	go s.run()
	return s
}

// after schedules fn to run after d.
func (s *scheduler) after(d time.Duration, fn func()) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	heap.Push(&s.heap, timerItem{at: time.Now().Add(d), fn: fn})
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// stop halts the scheduler; pending callbacks are discarded.
func (s *scheduler) stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.heap = nil
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.wg.Wait()
}

func (s *scheduler) run() {
	defer s.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		var ready []func()
		now := time.Now()
		for len(s.heap) > 0 && !s.heap[0].at.After(now) {
			it := heap.Pop(&s.heap).(timerItem)
			ready = append(ready, it.fn)
		}
		var wait time.Duration = time.Hour
		if len(s.heap) > 0 {
			wait = time.Until(s.heap[0].at)
			if wait < 0 {
				wait = 0
			}
		}
		s.mu.Unlock()

		for _, fn := range ready {
			fn()
		}
		if len(ready) > 0 {
			continue // re-check the heap before sleeping
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-s.wake:
		}
	}
}
