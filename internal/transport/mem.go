package transport

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
)

// MemOptions configures the simulated network.
type MemOptions struct {
	// Loss is the default per-packet drop probability in [0,1).
	Loss float64
	// Dup is the probability a delivered packet is duplicated once.
	Dup float64
	// MinDelay and MaxDelay bound the uniformly distributed delivery
	// delay. Zero means immediate in-order delivery per link.
	MinDelay time.Duration
	MaxDelay time.Duration
	// Seed makes the loss/dup/delay sequence reproducible.
	Seed uint64
	// InboxSize is the per-process input buffer capacity (default 4096).
	// A full buffer drops packets, which fair-lossy channels permit.
	InboxSize int
	// EgressBytesPerSec, when positive, models each sender's NIC
	// serialization rate: a packet occupies its sender's egress link for
	// size/rate, and packets queue behind one another at the sender. This
	// is the bottleneck the ordering/dissemination split attacks — a
	// coordinator multisending P-byte payloads to N-1 peers serializes
	// (N-1)*P bytes through one link per round, while a ring relay
	// serializes P — so experiments that measure that effect (E20) need
	// the model; protocol tests leave it zero (no bandwidth limit).
	EgressBytesPerSec float64
}

// MemStats counts network-level events.
type MemStats struct {
	Sent       int64
	Dropped    int64 // lost, partitioned, down, or buffer-full
	Duplicated int64
	Delivered  int64
}

// Mem is the in-memory fair-lossy network. It is safe for concurrent use by
// all processes.
type Mem struct {
	n    int
	opts MemOptions

	mu         sync.Mutex
	rng        *rand.Rand
	eps        []*memEndpoint // nil while a process is down
	linkLoss   map[[2]ids.ProcessID]float64
	cut        map[[2]ids.ProcessID]bool // severed links (partition)
	egressFree []time.Time               // per-sender NIC next-idle time (EgressBytesPerSec)
	closed     bool

	sched *scheduler

	sent, dropped, duplicated, delivered atomic.Int64
}

var _ Network = (*Mem)(nil)

// NewMem creates a network for processes 0..n-1.
func NewMem(n int, opts MemOptions) *Mem {
	if opts.InboxSize <= 0 {
		opts.InboxSize = 4096
	}
	m := &Mem{
		n:        n,
		opts:     opts,
		rng:      rand.New(rand.NewPCG(opts.Seed, opts.Seed^0x9e3779b97f4a7c15)),
		eps:      make([]*memEndpoint, n),
		linkLoss: make(map[[2]ids.ProcessID]float64),
		cut:      make(map[[2]ids.ProcessID]bool),
	}
	if opts.EgressBytesPerSec > 0 {
		m.egressFree = make([]time.Time, n)
	}
	m.sched = newScheduler()
	return m
}

// N implements Network.
func (m *Mem) N() int { return m.n }

// Close stops the delivery scheduler. Endpoints become inert.
func (m *Mem) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.sched.stop()
}

// Stats returns a snapshot of the network counters.
func (m *Mem) Stats() MemStats {
	return MemStats{
		Sent:       m.sent.Load(),
		Dropped:    m.dropped.Load(),
		Duplicated: m.duplicated.Load(),
		Delivered:  m.delivered.Load(),
	}
}

// SetLinkLoss overrides the drop probability of the directed link from->to.
// Pass a negative value to restore the default.
func (m *Mem) SetLinkLoss(from, to ids.ProcessID, p float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p < 0 {
		delete(m.linkLoss, [2]ids.ProcessID{from, to})
		return
	}
	m.linkLoss[[2]ids.ProcessID{from, to}] = p
}

// Partition severs every link between the two sides (both directions).
func (m *Mem) Partition(sideA, sideB []ids.ProcessID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range sideA {
		for _, b := range sideB {
			m.cut[[2]ids.ProcessID{a, b}] = true
			m.cut[[2]ids.ProcessID{b, a}] = true
		}
	}
}

// Heal removes all partitions.
func (m *Mem) Heal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cut = make(map[[2]ids.ProcessID]bool)
}

// Attach implements Network.
func (m *Mem) Attach(pid ids.ProcessID) (Endpoint, error) {
	if pid < 0 || int(pid) >= m.n {
		return nil, fmt.Errorf("transport: pid %v out of range [0,%d)", pid, m.n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if m.eps[pid] != nil {
		return nil, fmt.Errorf("%w: %v", ErrDetached, pid)
	}
	ep := &memEndpoint{
		net:   m,
		pid:   pid,
		inbox: make(chan Packet, m.opts.InboxSize),
		done:  make(chan struct{}),
	}
	m.eps[pid] = ep
	return ep, nil
}

// route decides the fate of one packet and schedules its delivery.
func (m *Mem) route(from, to ids.ProcessID, data []byte) {
	m.sent.Add(1)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if m.cut[[2]ids.ProcessID{from, to}] {
		m.mu.Unlock()
		m.dropped.Add(1)
		return
	}
	loss := m.opts.Loss
	if p, ok := m.linkLoss[[2]ids.ProcessID{from, to}]; ok {
		loss = p
	}
	// Local delivery is reliable and immediate: a process never loses a
	// message to itself.
	local := from == to
	drop := !local && loss > 0 && m.rng.Float64() < loss
	dup := !local && m.opts.Dup > 0 && m.rng.Float64() < m.opts.Dup
	var delay time.Duration
	if !local && m.opts.MaxDelay > 0 {
		span := int64(m.opts.MaxDelay - m.opts.MinDelay)
		if span > 0 {
			delay = m.opts.MinDelay + time.Duration(m.rng.Int64N(span))
		} else {
			delay = m.opts.MinDelay
		}
	}
	if !local && m.egressFree != nil {
		// The packet serializes through the sender's NIC: it starts when
		// the link is next idle and occupies it for size/rate, so packets
		// queue behind one another at the sender.
		ser := time.Duration(float64(len(data)) / m.opts.EgressBytesPerSec * float64(time.Second))
		now := time.Now()
		start := now
		if m.egressFree[from].After(now) {
			start = m.egressFree[from]
		}
		done := start.Add(ser)
		m.egressFree[from] = done
		delay += done.Sub(now)
	}
	m.mu.Unlock()

	if drop {
		m.dropped.Add(1)
		return
	}
	copies := 1
	if dup {
		copies = 2
		m.duplicated.Add(1)
	}
	for i := 0; i < copies; i++ {
		pkt := Packet{From: from, Data: data}
		if delay == 0 {
			m.deliver(to, pkt)
		} else {
			m.sched.after(delay, func() { m.deliver(to, pkt) })
		}
	}
}

// deliver places a packet in the destination's inbox if it is up.
func (m *Mem) deliver(to ids.ProcessID, pkt Packet) {
	m.mu.Lock()
	ep := m.eps[to]
	m.mu.Unlock()
	if ep == nil {
		// Destination is down: "the set of messages that arrive at a
		// process while it is down are lost" (§2.1).
		m.dropped.Add(1)
		return
	}
	select {
	case ep.inbox <- pkt:
		m.delivered.Add(1)
	default:
		m.dropped.Add(1) // buffer overrun; fair-lossy permits this
	}
}

// detach removes pid's endpoint (crash or shutdown).
func (m *Mem) detach(pid ids.ProcessID, ep *memEndpoint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.eps[pid] == ep {
		m.eps[pid] = nil
	}
}

type memEndpoint struct {
	net       *Mem
	pid       ids.ProcessID
	inbox     chan Packet
	done      chan struct{}
	closeOnce sync.Once
}

var _ Endpoint = (*memEndpoint)(nil)

func (e *memEndpoint) Local() ids.ProcessID { return e.pid }

func (e *memEndpoint) Send(to ids.ProcessID, data []byte) {
	if to < 0 || int(to) >= e.net.n {
		return
	}
	select {
	case <-e.done:
		return // closed endpoints transmit nothing
	default:
	}
	// Copy: the caller may reuse its buffer; packets outlive the call.
	cp := make([]byte, len(data))
	copy(cp, data)
	e.net.route(e.pid, to, cp)
}

func (e *memEndpoint) Multisend(data []byte) {
	for to := 0; to < e.net.n; to++ {
		e.Send(ids.ProcessID(to), data)
	}
}

func (e *memEndpoint) Recv(ctx context.Context) (Packet, error) {
	select {
	case pkt := <-e.inbox:
		return pkt, nil
	case <-e.done:
		return Packet{}, ErrClosed
	case <-ctx.Done():
		return Packet{}, ctx.Err()
	}
}

func (e *memEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.net.detach(e.pid, e)
	})
	return nil
}
