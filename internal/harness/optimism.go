package harness

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
)

// optimismTracker is the soak's differential oracle for the optimistic
// delivery contract: every tentative delivery a process emits must
// eventually be either confirmed — and then match the authoritative
// delivery at the same position exactly — or revoked before anything
// conflicting is delivered, and a confirm watermark, once issued, is
// never retracted (confirmed state is externalizable). Tentative state
// is volatile: a crash clears a process's speculative suffix, so a
// recovered incarnation owes neither confirms nor revokes for the dead
// one's predictions.
type optimismTracker struct {
	mu                             sync.Mutex
	procs                          []optProc
	tentatives, confirmed, revoked int
	errs                           []string
}

// optPos identifies one slot of a group's total order.
type optPos struct {
	g   ids.GroupID
	pos uint64
}

type optProc struct {
	pending     map[optPos]ids.MsgID // speculative, awaiting confirm/revoke
	actual      map[optPos]ids.MsgID // authoritative deliveries by position
	confirmedTo map[ids.GroupID]uint64
}

func newOptimismTracker(n int) *optimismTracker {
	t := &optimismTracker{procs: make([]optProc, n)}
	for i := range t.procs {
		t.procs[i] = optProc{
			pending:     make(map[optPos]ids.MsgID),
			actual:      make(map[optPos]ids.MsgID),
			confirmedTo: make(map[ids.GroupID]uint64),
		}
	}
	return t
}

func (t *optimismTracker) failf(format string, args ...any) {
	if len(t.errs) < 8 {
		t.errs = append(t.errs, fmt.Sprintf(format, args...))
	}
}

func (t *optimismTracker) onTentative(pid ids.ProcessID, d core.Delivery) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := &t.procs[pid]
	t.tentatives++
	if !d.Tentative {
		t.failf("p%v: OnTentative delivery %v@%d not flagged Tentative", pid, d.Msg.ID, d.Pos)
	}
	if d.Pos < p.confirmedTo[d.Group] {
		t.failf("p%v g%v: tentative at pos %d below the confirmed watermark %d",
			pid, d.Group, d.Pos, p.confirmedTo[d.Group])
	}
	p.pending[optPos{d.Group, d.Pos}] = d.Msg.ID
}

func (t *optimismTracker) onDeliver(pid ids.ProcessID, g ids.GroupID, d core.Delivery) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.procs[pid].actual[optPos{g, d.Pos}] = d.Msg.ID
}

func (t *optimismTracker) onConfirm(pid ids.ProcessID, g ids.GroupID, upTo uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := &t.procs[pid]
	for k, id := range p.pending {
		if k.g != g || k.pos >= upTo {
			continue
		}
		// OnConfirm fires after the covering round's authoritative
		// deliveries, so the actual slot must already be populated — and
		// identical, or the protocol certified a misprediction.
		switch got, ok := p.actual[k]; {
		case !ok:
			t.failf("p%v g%v: pos %d confirmed but never authoritatively delivered", pid, g, k.pos)
		case got != id:
			t.failf("p%v g%v: pos %d confirmed as %v but authoritatively delivered %v",
				pid, g, k.pos, id, got)
		default:
			t.confirmed++
		}
		delete(p.pending, k)
	}
	if upTo > p.confirmedTo[g] {
		p.confirmedTo[g] = upTo
	}
}

func (t *optimismTracker) onRevoke(pid ids.ProcessID, g ids.GroupID, from uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := &t.procs[pid]
	if from < p.confirmedTo[g] {
		t.failf("p%v g%v: revoke from pos %d retracts confirmed (externalized) state below %d",
			pid, g, from, p.confirmedTo[g])
	}
	for k := range p.pending {
		if k.g != g {
			continue
		}
		if k.pos < from {
			t.failf("p%v g%v: tentative at pos %d survives a revoke from %d (the whole speculative suffix must drop)",
				pid, g, k.pos, from)
		}
		delete(p.pending, k)
		t.revoked++
	}
}

// onRestore clears a recovering process's speculative state: predictions
// die with the incarnation that made them.
func (t *optimismTracker) onRestore(pid ids.ProcessID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	clear(t.procs[pid].pending)
}

// awaitSettled polls until no process holds an unsettled tentative
// delivery: after the drain every predicted round has committed, so
// every surviving prediction must have been confirmed or revoked.
func (t *optimismTracker) awaitSettled(ctx context.Context) error {
	for {
		t.mu.Lock()
		var leftover string
		for pid := range t.procs {
			if n := len(t.procs[pid].pending); n > 0 {
				leftover = fmt.Sprintf("p%d holds %d tentative deliveries never confirmed or revoked", pid, n)
			}
		}
		t.mu.Unlock()
		if leftover == "" {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("optimism: %s: %w", leftover, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// err reports the accumulated contract violations, if any.
func (t *optimismTracker) err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.errs) == 0 {
		return nil
	}
	return fmt.Errorf("optimism contract violated: %s", strings.Join(t.errs, "; "))
}

func (t *optimismTracker) counts() (tentatives, confirmed, revoked int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tentatives, t.confirmed, t.revoked
}
