package harness

import (
	"fmt"

	"repro/internal/obs"
)

// verifyObsInvariants checks the conservation laws every observability
// plane must satisfy regardless of the crash/recovery schedule, so the
// soaks fail loudly if the instrumentation itself miscounts:
//
//   - every histogram is internally consistent (bucket sum == count,
//     monotone quantiles bounded by the recorded max);
//   - the tracer's span accounting conserves: exactly one end-to-end
//     observation per finished span;
//   - the flight-recorder ring holds min(total, cap) events (nothing
//     silently lost below the watermark, nothing fabricated above it).
//
// Exact workload equalities (broadcasts == delivered, trace count ==
// messages) only hold on calm clusters and live in the dedicated
// conservation test; these structural laws hold always.
func verifyObsInvariants(planes []*obs.Plane) error {
	for pid, p := range planes {
		reg := p.Reg()
		var histErr error
		reg.EachHistogram(func(name string, s obs.HistSnapshot) {
			if histErr != nil {
				return
			}
			var n uint64
			for _, c := range s.Bucket {
				n += c
			}
			if n != s.Count {
				histErr = fmt.Errorf("p%d: histogram %s: bucket sum %d != count %d", pid, name, n, s.Count)
				return
			}
			if s.Count == 0 {
				return
			}
			p50, p99 := s.Quantile(0.50), s.Quantile(0.99)
			if p50 > p99 || (s.Max > 0 && p99 > s.Max) {
				histErr = fmt.Errorf("p%d: histogram %s: non-monotone quantiles p50=%d p99=%d max=%d",
					pid, name, p50, p99, s.Max)
			}
		})
		if histErr != nil {
			return histErr
		}

		if e2e, ok := reg.HistogramSnapshot("abcast.trace.e2e_ns"); ok {
			finished := reg.Counter("abcast.trace.spans_finished").Value()
			if e2e.Count != finished {
				return fmt.Errorf("p%d: trace conservation: e2e observations %d != finished spans %d",
					pid, e2e.Count, finished)
			}
		}

		fl := p.Flight()
		want := fl.Total()
		if c := uint64(fl.Cap()); want > c {
			want = c
		}
		if uint64(fl.Len()) != want {
			return fmt.Errorf("p%d: flight recorder watermark: ring holds %d, want min(total=%d, cap=%d)",
				pid, fl.Len(), fl.Total(), fl.Cap())
		}

		// Resharding events are edge-detected off the agreed topology (the
		// sharded layer fires them only when a marker actually changes its
		// view, and re-seeds that view from the persisted topology across
		// restarts), so a plane never records the same join or seal twice,
		// and every drain carries a non-negative duration. The topology
		// epoch gauge counts ALL transitions ever applied, so it bounds the
		// retained marker events from above even after ring overwrites.
		joins := make(map[int64]bool)
		seals := make(map[int64]bool)
		reshardEvents := int64(0)
		for _, e := range fl.Dump() {
			switch e.Kind {
			case obs.EvReshardJoin:
				if joins[e.A] {
					return fmt.Errorf("p%d: reshard conservation: group %d joined twice", pid, e.A)
				}
				joins[e.A] = true
				reshardEvents++
			case obs.EvReshardSeal:
				if seals[int64(e.Group)] {
					return fmt.Errorf("p%d: reshard conservation: group %v sealed twice", pid, e.Group)
				}
				seals[int64(e.Group)] = true
				reshardEvents++
			case obs.EvReshardDrain:
				if e.B < 0 {
					return fmt.Errorf("p%d: reshard conservation: negative drain duration %d", pid, e.B)
				}
			}
		}
		if epoch := reg.Gauge("abcast.reshard.epoch").Value(); epoch < reshardEvents {
			return fmt.Errorf("p%d: reshard conservation: epoch gauge %d below %d retained topology events",
				pid, epoch, reshardEvents)
		}
	}
	return nil
}
