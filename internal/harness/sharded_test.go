package harness

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
)

// TestShardedClusterOrdersPerGroup drives a small multi-group cluster:
// every group orders its own traffic at every process, the per-group
// recorders verify the full specification, and the merged sequences agree.
func TestShardedClusterOrdersPerGroup(t *testing.T) {
	const groups = 3
	c := NewShardedCluster(ShardedOptions{
		N:      3,
		Groups: groups,
		Seed:   17,
		Core:   core.Config{PipelineDepth: 2, MaxBatchDelay: 100 * time.Microsecond},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 0; i < 30; i++ {
		pid := ids.ProcessID(i % 3)
		g := ids.GroupID(i % groups)
		if _, err := c.Broadcast(ctx, pid, g, fmt.Appendf(nil, "m-%d", i)); err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyMergeDeterminism(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	merged, from, rounds, ok := c.MergedAt(0)
	if !ok || rounds == 0 || from != 0 {
		t.Fatalf("merge unavailable: from=%d rounds=%d ok=%v", from, rounds, ok)
	}
	if len(merged) != 30 {
		// Every broadcast was awaited, and the frontier covers every
		// group's decided rounds after quiescence... but trailing rounds
		// at different counters may hold back a suffix; at minimum the
		// merge must not duplicate or invent messages.
		seen := make(map[string]bool)
		for _, d := range merged {
			k := fmt.Sprintf("%v/%v", d.Group, d.Msg.ID)
			if seen[k] {
				t.Fatalf("duplicate in merge: %s", k)
			}
			seen[k] = true
		}
		if len(merged) > 30 {
			t.Fatalf("merge invented deliveries: %d > 30", len(merged))
		}
	}

	// Layer rollup: consensus ops exist in every group, and the rolled-up
	// map uses true layer names (namespaces stay below the accounting).
	layers := c.LayerTotals(0)
	if layers["cons"].LogOps() == 0 {
		t.Fatalf("no consensus log ops in rollup: %+v", layers)
	}
	if _, bad := layers["g0"]; bad {
		t.Fatalf("group namespace leaked into layer accounting: %+v", layers)
	}
}

// TestShardedClusterProcessCrashRecovery crashes a whole process and
// recovers it: every group replays to the common order.
func TestShardedClusterProcessCrashRecovery(t *testing.T) {
	const groups = 2
	c := NewShardedCluster(ShardedOptions{
		N:      3,
		Groups: groups,
		Seed:   23,
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 0; i < 10; i++ {
		if _, err := c.Broadcast(ctx, 1, ids.GroupID(i%groups), []byte("pre")); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash(1)
	if c.Up(1) {
		t.Fatal("crashed process reports up")
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Broadcast(ctx, 0, ids.GroupID(i%groups), []byte("during")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyMergeDeterminism(0, 1, 2); err != nil {
		t.Fatal(err)
	}
}
