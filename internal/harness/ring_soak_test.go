package harness

// Sharded ring-dissemination soaks: G ordering groups share one
// process-level payload ring while consensus orders ID vectors. The soaks
// cover the two ways the ring loses payloads — relay frames dropped by a
// lossy channel, and a ring successor crashing mid-stream — and assert the
// pull repair path and ring healing preserve every group's total order.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
)

func TestShardedRingDissemination(t *testing.T) {
	const groups = 3
	c := NewShardedCluster(ShardedOptions{
		N:          3,
		Groups:     groups,
		Seed:       21,
		RingDissem: true,
		Core:       core.Config{PipelineDepth: 2, MaxBatchDelay: 100 * time.Microsecond},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 0; i < 30; i++ {
		pid := ids.ProcessID(i % 3)
		g := ids.GroupID(i % groups)
		if _, err := c.Broadcast(ctx, pid, g, fmt.Appendf(nil, "ring-%d", i)); err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyMergeDeterminism(0, 1, 2); err != nil {
		t.Fatal(err)
	}

	// Every group's payloads rode the one shared ring, not the proposals.
	var published uint64
	for _, nodes := range c.Nodes {
		for _, n := range nodes {
			if p := n.Proto(); p != nil {
				published += p.Stats().RingPublished
			}
		}
	}
	if published == 0 {
		t.Fatal("no payloads published through the shared ring")
	}
}

// TestShardedRingRelayLoss runs ring dissemination over the lossy channel:
// dropped relay frames starve deliveries until the pull repair path fills
// the gaps.
func TestShardedRingRelayLoss(t *testing.T) {
	const groups = 2
	c := NewShardedCluster(ShardedOptions{
		N:          3,
		Groups:     groups,
		Seed:       22,
		Net:        DefaultLossyNet(22),
		RingDissem: true,
		Core:       core.Config{PipelineDepth: 2, MaxBatchDelay: 100 * time.Microsecond},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	for i := 0; i < 24; i++ {
		pid := ids.ProcessID(i % 3)
		g := ids.GroupID(i % groups)
		if _, err := c.Broadcast(ctx, pid, g, fmt.Appendf(nil, "lossy-%d", i)); err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyMergeDeterminism(0, 1, 2); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRingSuccessorCrash crashes a broadcaster's ring successor
// mid-stream and keeps broadcasting: the ring heals around the suspect,
// messages ordered while it was down survive, and the recovered process
// catches up in every group.
func TestShardedRingSuccessorCrash(t *testing.T) {
	const groups = 2
	c := NewShardedCluster(ShardedOptions{
		N:          3,
		Groups:     groups,
		Seed:       23,
		RingDissem: true,
		Core:       core.Config{PipelineDepth: 2, MaxBatchDelay: 100 * time.Microsecond},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	for i := 0; i < 8; i++ {
		if _, err := c.Broadcast(ctx, 0, ids.GroupID(i%groups), fmt.Appendf(nil, "pre-%d", i)); err != nil {
			t.Fatalf("broadcast pre-%d: %v", i, err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}

	// p1 is p0's ring successor (0 -> 1 -> 2). Crash it and keep the
	// traffic flowing from p0 on every group.
	c.Crash(1)
	for i := 0; i < 10; i++ {
		if _, err := c.Broadcast(ctx, 0, ids.GroupID(i%groups), fmt.Appendf(nil, "mid-%d", i)); err != nil {
			t.Fatalf("broadcast mid-%d: %v", i, err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Broadcast(ctx, 0, ids.GroupID(i%groups), fmt.Appendf(nil, "post-%d", i)); err != nil {
			t.Fatalf("broadcast post-%d: %v", i, err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyMergeDeterminism(0, 1, 2); err != nil {
		t.Fatal(err)
	}
}
