package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/dissem"
	"repro/internal/fd"
	"repro/internal/group"
	"repro/internal/ids"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/transport"
)

// ShardedOptions configures a ShardedCluster: N processes, each hosting
// Groups independent ordering groups over one multiplexed network and one
// shared per-process store.
type ShardedOptions struct {
	N      int
	Groups int
	Seed   uint64
	Net    transport.MemOptions
	// Consensus policy/timing (PID/N/Seed filled per process and group).
	Consensus consensus.Config
	// Core protocol options, applied to every group (PID/N/Group/
	// Incarnation and the recorder callbacks are filled per node).
	Core core.Config
	FD   fd.Options
	// MergedDelivery wires each group's checkpoint fold to the
	// process-wide merge frontier (core.Config.MergeFloor over the
	// process's group.Stream), the merged-mode checkpointing discipline:
	// per-round delivery metadata is retained until every group of the
	// process has committed past it, so the cross-group interleave stays
	// reconstructible across checkpoints. Set it for clusters that verify
	// merged sequences while running a Checkpointer.
	MergedDelivery bool
	// PerGroupFD reverts to the legacy wiring where every group runs its
	// own failure detector (G heartbeat streams per peer instead of one).
	// The default is the shared process-level detector; the flag exists
	// for the E17 background-traffic baseline.
	PerGroupFD bool
	// RingDissem enables the ordering/dissemination split: one shared
	// payload ring per process (over the mux's dissem lane) serves every
	// group, while consensus orders ID+checksum vectors. Requires the
	// shared process-level detector (incompatible with PerGroupFD).
	RingDissem bool
	// Mux tunes the multiplexer's write coalescing (zero = no coalescing).
	Mux group.MuxOptions
	// InjectFaultyStorage wraps each process's shared store in a
	// storage.Faulty trigger — below the group namespaces, so one fault
	// takes the whole process down, like a real disk failure.
	InjectFaultyStorage bool
	// NewStore, when set, supplies each process's shared stable-storage
	// engine (default storage.NewMem): all groups of the process run in
	// namespaces of it, so a group-commit engine coalesces their fsyncs.
	NewStore func(ids.ProcessID) storage.Stable
	// GroupStore, when set, overrides the shared store entirely: each
	// (process, group) pair gets its own engine — the per-group-store
	// deployment E16 compares against. Engines implementing
	// storage.Closer are closed by Stop.
	GroupStore func(ids.ProcessID, ids.GroupID) storage.Stable
	// Transport, when set, replaces the simulated in-memory network
	// (e.g. TCP loopback); Net is then ignored and Cluster.Net is nil.
	Transport transport.Network
	// OnDeliver/OnRestore, when set, are chained after the recorder and
	// stream callbacks for each node (application hooks; the process and
	// group ids are prepended).
	OnDeliver func(ids.ProcessID, ids.GroupID, core.Delivery)
	OnRestore func(ids.ProcessID, ids.GroupID, core.Snapshot)
	// OnTentative/OnConfirm/OnRevoke, when set, receive each node's
	// optimistic-delivery stream (positions are per group; the recorders
	// and the merge stream see only the authoritative order).
	OnTentative func(ids.ProcessID, core.Delivery)
	OnConfirm   func(ids.ProcessID, ids.GroupID, uint64)
	OnRevoke    func(ids.ProcessID, ids.GroupID, uint64)
	// Obs is the per-process observability template (PID is filled per
	// process). One plane serves all groups of a process — per-group
	// metrics carry a {group} label, so they stay distinguishable.
	Obs obs.Options
}

func (o *ShardedOptions) fill() {
	if o.N <= 0 {
		o.N = 3
	}
	if o.Groups <= 0 {
		o.Groups = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Net.Seed == 0 {
		o.Net.Seed = o.Seed
	}
	if o.Consensus.RetryMin <= 0 {
		o.Consensus.RetryMin = 3 * time.Millisecond
	}
	if o.Consensus.RetryMax <= 0 {
		o.Consensus.RetryMax = 50 * time.Millisecond
	}
	if o.Core.GossipInterval <= 0 {
		o.Core.GossipInterval = 10 * time.Millisecond
	}
	if o.FD.Heartbeat <= 0 {
		o.FD.Heartbeat = 5 * time.Millisecond
	}
	if o.FD.Timeout <= 0 {
		o.FD.Timeout = 30 * time.Millisecond
	}
}

// ShardedCluster is N processes x G ordering groups over one multiplexed
// network. Group g's nodes across all processes form one instance of the
// paper's protocol, verified by its own recorder; crash and recovery act
// on whole processes (all groups at once), as they would in production.
type ShardedCluster struct {
	Opts ShardedOptions
	Net  *transport.Mem // nil when Options.Transport overrides it
	Mux  *group.Mux
	// Nodes[pid][gid] is group gid's node at process pid.
	Nodes [][]*node.Node
	// Stores[pid][gid] is the per-group accounted view over the process's
	// shared engine (true layer names: the group namespace sits below).
	Stores [][]*storage.Accounted
	// Faults[pid] is the process-level fault trigger (shared-store mode
	// with InjectFaultyStorage only).
	Faults []*storage.Faulty
	// Recs[gid] is group gid's safety recorder.
	Recs []*check.Recorder
	// Streams[pid] is process pid's per-round merge stream: every group's
	// OnRound feeds it, Frontier is the process's merge floor, and
	// SubscribeMerged hangs streaming cursors off it.
	Streams []*group.Stream
	// Obs[pid] is process pid's observability plane, shared by all of its
	// groups. Always populated.
	Obs []*obs.Plane

	net         transport.Network
	inners      []storage.Stable // engines to close on Stop
	epochStores []storage.Stable // per process: holds the proc-epoch cell
	ctx         context.Context
	cancel      context.CancelFunc

	fdMu  sync.Mutex
	fds   []*node.SharedFD   // per process; nil when down or PerGroupFD
	rings []*node.SharedRing // per process; nil when down or ring mode off
}

// NewShardedCluster builds (but does not start) a sharded cluster.
func NewShardedCluster(opts ShardedOptions) *ShardedCluster {
	opts.fill()
	c := &ShardedCluster{Opts: opts}
	if opts.Transport != nil {
		c.net = opts.Transport
	} else {
		c.Net = transport.NewMem(opts.N, opts.Net)
		c.net = c.Net
	}
	c.Mux = group.NewMuxOpts(c.net, opts.Groups, opts.Mux)
	for g := 0; g < opts.Groups; g++ {
		c.Recs = append(c.Recs, check.NewRecorder(opts.N))
	}
	if opts.RingDissem && opts.PerGroupFD {
		panic("harness: RingDissem requires the shared process-level detector (PerGroupFD must be off)")
	}
	c.fds = make([]*node.SharedFD, opts.N)
	c.rings = make([]*node.SharedRing, opts.N)
	c.ctx, c.cancel = context.WithCancel(context.Background())

	for p := 0; p < opts.N; p++ {
		pid := ids.ProcessID(p)
		obsOpts := opts.Obs
		obsOpts.PID = pid
		plane := obs.New(obsOpts)
		c.Obs = append(c.Obs, plane)
		if p == 0 {
			// The mux is cluster-global in this simulated harness; its
			// counters land on process 0's registry.
			c.Mux.SetObs(plane)
		}
		stream := group.NewStream(opts.Groups)
		stream.SetObs(plane)
		c.Streams = append(c.Streams, stream)
		// The process's shared engine, with the optional process-level
		// fault trigger below every group namespace.
		var shared storage.Stable
		if opts.GroupStore == nil {
			if opts.NewStore != nil {
				shared = opts.NewStore(pid)
				c.inners = append(c.inners, shared)
			} else {
				shared = storage.NewMem()
			}
			if opts.InjectFaultyStorage {
				f := storage.NewFaulty(shared)
				c.Faults = append(c.Faults, f)
				shared = f
			}
		} else if opts.InjectFaultyStorage {
			panic("harness: InjectFaultyStorage requires the shared-store mode (no GroupStore hook)")
		}

		var nodes []*node.Node
		var stores []*storage.Accounted
		for g := 0; g < opts.Groups; g++ {
			gid := ids.GroupID(g)
			var engine storage.Stable
			if opts.GroupStore != nil {
				engine = opts.GroupStore(pid, gid)
				c.inners = append(c.inners, engine)
			} else {
				engine = storage.NewPrefixed(shared, group.StoreNamespace(gid))
			}
			acct := storage.NewAccounted(engine)
			stores = append(stores, acct)
			if g == 0 && shared == nil {
				// Per-group-store mode: the proc-epoch cell lives in group
				// 0's engine (its key is namespaced; no collision).
				c.epochStores = append(c.epochStores, acct)
			}

			coreCfg := opts.Core
			deliver := c.Recs[g].OnDeliver(pid)
			restore := c.Recs[g].OnRestore(pid)
			userDeliver := opts.OnDeliver
			userRestore := opts.OnRestore
			coreCfg.OnDeliver = func(d core.Delivery) {
				deliver(d)
				if userDeliver != nil {
					userDeliver(pid, gid, d)
				}
			}
			coreCfg.OnRestore = func(s core.Snapshot) {
				restore(s)
				if userRestore != nil {
					userRestore(pid, gid, s)
				}
			}
			if userTent := opts.OnTentative; userTent != nil {
				coreCfg.OnTentative = func(d core.Delivery) { userTent(pid, d) }
			}
			if userConfirm := opts.OnConfirm; userConfirm != nil {
				coreCfg.OnConfirm = func(gg ids.GroupID, upTo uint64) { userConfirm(pid, gg, upTo) }
			}
			if userRevoke := opts.OnRevoke; userRevoke != nil {
				coreCfg.OnRevoke = func(gg ids.GroupID, from uint64) { userRevoke(pid, gg, from) }
			}
			coreCfg.OnRound = stream.NoteRound
			coreCfg.OnRoundSkip = stream.NoteSkip
			if opts.MergedDelivery {
				coreCfg.MergeFloor = stream.Frontier
			}
			ncfg := node.Config{
				PID:       pid,
				N:         opts.N,
				Group:     gid,
				Core:      coreCfg,
				Consensus: opts.Consensus,
				FD:        opts.FD,
				Obs:       plane,
			}
			if !opts.PerGroupFD {
				ncfg.SharedFD = func() fd.API { return c.fdView(pid, gid) }
			}
			if opts.RingDissem {
				ncfg.SharedRing = func() *dissem.Ring { return c.ringView(pid) }
			}
			nodes = append(nodes, node.New(ncfg, acct, c.Mux.Net(gid)))
		}
		if shared != nil {
			// The proc-epoch cell rides the shared engine, below the
			// fault trigger: an armed storage fault kills the whole
			// process's recovery, epoch log included.
			c.epochStores = append(c.epochStores, shared)
		}
		c.Nodes = append(c.Nodes, nodes)
		c.Stores = append(c.Stores, stores)
	}
	return c
}

// ringView returns process pid's live shared payload ring, or an inert one
// while the process is down or mid-teardown (the node reading it still runs
// ring mode — wire-format uniformity — but its publishes drop, like any
// traffic from a down process).
func (c *ShardedCluster) ringView(pid ids.ProcessID) *dissem.Ring {
	c.fdMu.Lock()
	defer c.fdMu.Unlock()
	if c.rings[pid] == nil {
		return dissem.Inert()
	}
	return c.rings[pid].Ring()
}

// fdView returns group gid's facade over process pid's live shared
// detector. During the window where no detector is up (the process is
// down or mid-teardown) it returns an inert facade; the node reading it
// is being crashed anyway.
func (c *ShardedCluster) fdView(pid ids.ProcessID, gid ids.GroupID) fd.API {
	c.fdMu.Lock()
	defer c.fdMu.Unlock()
	if c.fds[pid] == nil {
		return fd.InertView(pid, c.Opts.N, c.Opts.FD, gid)
	}
	return c.fds[pid].View(gid)
}

// FD returns process pid's live shared failure detector (nil when the
// process is down or the cluster runs PerGroupFD).
func (c *ShardedCluster) FD(pid ids.ProcessID) *node.SharedFD {
	c.fdMu.Lock()
	defer c.fdMu.Unlock()
	return c.fds[pid]
}

// StartAll boots every process.
func (c *ShardedCluster) StartAll() error {
	for p := 0; p < c.Opts.N; p++ {
		if err := c.Start(ids.ProcessID(p)); err != nil {
			return err
		}
	}
	return nil
}

// Start boots process pid: the shared failure detector comes up first
// (one proc-epoch log write, one heartbeat stream), then every group
// starts concurrently (their replay phases are independent) and Start
// returns when all are up. On any failure the whole process is crashed
// again — a sharded process is either fully up or fully down.
func (c *ShardedCluster) Start(pid ids.ProcessID) error {
	for g := range c.Recs {
		c.Recs[g].StartSession(pid)
	}
	if c.Faults != nil {
		c.Faults[pid].Disarm()
	}
	if !c.Opts.PerGroupFD {
		epoch, err := node.NextProcEpoch(c.epochStores[pid])
		if err != nil {
			return fmt.Errorf("sharded start p%v: %w", pid, err)
		}
		sfd, err := node.StartSharedFD(c.ctx, pid, c.Opts.N, epoch, c.Opts.FD, c.Mux.ProcNet())
		if err != nil {
			return fmt.Errorf("sharded start p%v: %w", pid, err)
		}
		c.fdMu.Lock()
		c.fds[pid] = sfd
		c.fdMu.Unlock()
		if c.Opts.RingDissem {
			ring, err := node.StartSharedRing(c.ctx, pid, c.Opts.N, sfd.Detector(), c.Mux.DissemNet(), dissem.Options{})
			if err != nil {
				c.Crash(pid)
				return fmt.Errorf("sharded start p%v: shared ring: %w", pid, err)
			}
			c.fdMu.Lock()
			c.rings[pid] = ring
			c.fdMu.Unlock()
		}
	}
	errs := make([]error, c.Opts.Groups)
	var wg sync.WaitGroup
	for g, n := range c.Nodes[pid] {
		wg.Add(1)
		go func(g int, n *node.Node) {
			defer wg.Done()
			errs[g] = n.Start(c.ctx)
		}(g, n)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			c.Crash(pid)
			return fmt.Errorf("sharded start p%v g%d: %w", pid, g, err)
		}
	}
	return nil
}

// Crash kills process pid: every group's volatile state is lost at once,
// and the shared failure detector stops with them.
func (c *ShardedCluster) Crash(pid ids.ProcessID) {
	for _, n := range c.Nodes[pid] {
		n.Crash()
	}
	c.fdMu.Lock()
	sfd := c.fds[pid]
	c.fds[pid] = nil
	ring := c.rings[pid]
	c.rings[pid] = nil
	c.fdMu.Unlock()
	if ring != nil {
		ring.Stop()
	}
	if sfd != nil {
		sfd.Stop()
	}
}

// Recover restarts process pid and returns once every group's replay
// completes.
func (c *ShardedCluster) Recover(pid ids.ProcessID) (time.Duration, error) {
	start := time.Now()
	err := c.Start(pid)
	return time.Since(start), err
}

// Up reports whether every group of process pid is running.
func (c *ShardedCluster) Up(pid ids.ProcessID) bool {
	for _, n := range c.Nodes[pid] {
		if !n.Up() {
			return false
		}
	}
	return true
}

// Stop tears the whole cluster down, closing any engines the store hooks
// opened.
func (c *ShardedCluster) Stop() {
	for p := range c.Nodes {
		c.Crash(ids.ProcessID(p))
	}
	c.cancel()
	if c.Net != nil {
		c.Net.Close()
	}
	for _, st := range c.inners {
		if cl, ok := st.(storage.Closer); ok {
			cl.Close()
		}
	}
}

// Broadcast submits a payload on group g at process pid, records it with
// the group's recorder, and waits until it is ordered (basic A-broadcast
// semantics).
func (c *ShardedCluster) Broadcast(ctx context.Context, pid ids.ProcessID, g ids.GroupID, payload []byte) (ids.MsgID, error) {
	p := c.Nodes[pid][g].Proto()
	if p == nil {
		return ids.MsgID{}, node.ErrDown
	}
	id, err := p.Broadcast(ctx, payload)
	if id != (ids.MsgID{}) {
		c.Recs[g].RecordBroadcast(id, payload)
	}
	if err == nil {
		c.Recs[g].MarkReturned(id)
	}
	return id, err
}

// AwaitDelivered blocks until every listed process has delivered id in
// group g.
func (c *ShardedCluster) AwaitDelivered(ctx context.Context, g ids.GroupID, id ids.MsgID, pids ...ids.ProcessID) error {
	for {
		all := true
		for _, pid := range pids {
			p := c.Nodes[pid][g].Proto()
			if p == nil || !p.Delivered(id) {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("await %v g%v: %w", id, g, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// FlightDump returns the merged, time-ordered anomaly event log of every
// process's flight recorder — the first artifact to read after a failed
// sharded soak.
func (c *ShardedCluster) FlightDump() string {
	return obs.FormatDump(obs.DumpAll(c.Obs))
}

// violation annotates a safety/liveness violation with the flight-recorder
// dump, so the causal event sequence leading up to the failure travels with
// the error.
func (c *ShardedCluster) violation(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w\n--- flight recorder ---\n%s", err, c.FlightDump())
}

// VerifyAll runs every group's safety checks plus Termination for the
// given good processes (which must be fully up).
func (c *ShardedCluster) VerifyAll(good ...ids.ProcessID) error {
	for g, rec := range c.Recs {
		gid := ids.GroupID(g)
		if err := rec.Verify(); err != nil {
			return c.violation(fmt.Errorf("group %v: %w", gid, err))
		}
		must := rec.DeliveredAnywhere()
		must = append(must, rec.ReturnedBroadcasts()...)
		finals := make([]check.Final, 0, len(good))
		for _, pid := range good {
			p := c.Nodes[pid][gid].Proto()
			if p == nil {
				return fmt.Errorf("group %v: good process p%d is down", gid, pid)
			}
			base, suffix := p.Sequence()
			finals = append(finals, check.NewFinal(pid, base, suffix))
		}
		if err := check.VerifyTermination(must, finals); err != nil {
			return c.violation(fmt.Errorf("group %v: %w", gid, err))
		}
	}
	return nil
}

// AwaitAllDelivered waits until every group's must-deliver set is
// delivered by all listed processes and all groups quiesce, then runs
// VerifyAll (see Cluster.AwaitAllDelivered for the quiescence rationale).
func (c *ShardedCluster) AwaitAllDelivered(ctx context.Context, good ...ids.ProcessID) error {
	for {
		total := 0
		for g, rec := range c.Recs {
			must := rec.DeliveredAnywhere()
			must = append(must, rec.ReturnedBroadcasts()...)
			total += len(must)
			for _, id := range must {
				if err := c.AwaitDelivered(ctx, ids.GroupID(g), id, good...); err != nil {
					return err
				}
			}
		}
		quiesced := true
	outer:
		for _, pid := range good {
			for _, n := range c.Nodes[pid] {
				if p := n.Proto(); p == nil || p.UnorderedLen() > 0 {
					quiesced = false
					break outer
				}
			}
		}
		again := 0
		for _, rec := range c.Recs {
			again += len(rec.DeliveredAnywhere()) + len(rec.ReturnedBroadcasts())
		}
		if quiesced && again == total {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("await sharded quiescence: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
	return c.VerifyAll(good...)
}

// Sequences snapshots every group's delivery sequence at process pid
// (Merge / Subscribe input).
func (c *ShardedCluster) Sequences(pid ids.ProcessID) ([]group.Sequence, error) {
	seqs := make([]group.Sequence, 0, c.Opts.Groups)
	for g, n := range c.Nodes[pid] {
		p := n.Proto()
		if p == nil {
			return nil, fmt.Errorf("p%v g%d is down", pid, g)
		}
		r := p.Round() // read before Sequence: under-reports, never over
		base, suffix := p.Sequence()
		seqs = append(seqs, group.Sequence{
			Group:      ids.GroupID(g),
			Base:       base,
			Deliveries: suffix,
			Rounds:     r,
		})
	}
	return seqs, nil
}

// MergedAt computes process pid's deterministic cross-group merge,
// covering rounds [from, rounds). ok is false while the process is down.
func (c *ShardedCluster) MergedAt(pid ids.ProcessID) (merged []core.Delivery, from, rounds uint64, ok bool) {
	seqs, err := c.Sequences(pid)
	if err != nil {
		return nil, 0, 0, false
	}
	merged, from, rounds = group.Merge(seqs)
	return merged, from, rounds, true
}

// SubscribeMerged subscribes a streaming merge cursor at process pid.
func (c *ShardedCluster) SubscribeMerged(pid ids.ProcessID) (*group.Cursor, error) {
	return c.Streams[pid].Subscribe(func() ([]group.Sequence, error) {
		return c.Sequences(pid)
	})
}

// VerifyMergeDeterminism checks that the merged sequences of all listed
// processes agree on the rounds they all cover. Processes may have folded
// different prefixes (their checkpoint floors advance independently), so
// each merge is first trimmed to the highest base among them.
func (c *ShardedCluster) VerifyMergeDeterminism(pids ...ids.ProcessID) error {
	merges := make([][]core.Delivery, 0, len(pids))
	var base uint64
	for _, pid := range pids {
		m, from, _, ok := c.MergedAt(pid)
		if !ok {
			return fmt.Errorf("merge at p%v unavailable (process down?)", pid)
		}
		if from > base {
			base = from
		}
		merges = append(merges, m)
	}
	ref := group.TrimBelowRound(merges[0], base)
	for i := 1; i < len(merges); i++ {
		if at := group.VerifyMergePrefix(ref, group.TrimBelowRound(merges[i], base)); at >= 0 {
			return fmt.Errorf("merged sequences of p%v and p%v disagree at index %d (past round %d)",
				pids[0], pids[i], at, base)
		}
	}
	return nil
}

// deliveryEqual is the byte-identical comparison the streaming-vs-batch
// differential uses: identity, position, round, owning group and payload
// must all agree.
func deliveryEqual(a, b core.Delivery) bool {
	return a.Group == b.Group && a.Round == b.Round && a.Pos == b.Pos &&
		a.Msg.ID == b.Msg.ID && bytes.Equal(a.Msg.Payload, b.Msg.Payload)
}

// sliceRounds cuts a round-ordered delivery sequence down to the rounds
// in [lo, hi).
func sliceRounds(m []core.Delivery, lo, hi uint64) []core.Delivery {
	m = group.TrimBelowRound(m, lo)
	end := 0
	for end < len(m) && m[end].Round < hi {
		end++
	}
	return m[:end]
}

// cursorState is one long-lived streaming subscription plus everything it
// has streamed so far; the soak threads it through its differential
// checks.
type cursorState struct {
	cur      *group.Cursor
	streamed []core.Delivery
	resyncs  int
}

// verifyCursorAgainstBatch drains cs's cursor and compares the whole
// streamed sequence against the batch merge at pid, polling until both
// views converge on identical sequences (events trail commits by
// microseconds) or ctx expires. Any content mismatch fails immediately.
//
// A lagged cursor — the process adopted a GC-forced state transfer whose
// skipped rounds no consumer can reconstruct — is handled the way a real
// consumer must: the prefix streamed before the lag is verified against
// the batch merge over the rounds both cover, then the subscription is
// replaced by a fresh one (which resumes at the merge base) and the check
// continues. The return value is the agreed sequence length of the final
// comparison.
func (c *ShardedCluster) verifyCursorAgainstBatch(ctx context.Context, pid ids.ProcessID, cs *cursorState) (int, error) {
	for {
		var err error
		cs.streamed, err = cs.cur.Next(cs.streamed)
		if errors.Is(err, group.ErrCursorLagged) {
			if err := c.verifyLaggedPrefix(pid, cs); err != nil {
				return 0, err
			}
			fresh, err := c.SubscribeMerged(pid)
			if err != nil {
				return 0, fmt.Errorf("cursor p%v: resubscribe after lag: %w", pid, err)
			}
			cs.cur.Close()
			cs.cur, cs.streamed = fresh, nil
			cs.resyncs++
			continue
		}
		if err != nil {
			return 0, fmt.Errorf("cursor p%v: %w", pid, err)
		}
		batch, from, _, ok := c.MergedAt(pid)
		if !ok {
			return 0, fmt.Errorf("cursor p%v: batch merge unavailable", pid)
		}
		trimmed := group.TrimBelowRound(cs.streamed, from)
		n := len(trimmed)
		if len(batch) < n {
			n = len(batch)
		}
		for i := 0; i < n; i++ {
			if !deliveryEqual(trimmed[i], batch[i]) {
				return 0, fmt.Errorf("cursor p%v: streaming and batch merge disagree at index %d (past round %d): stream %v/%v@%d batch %v/%v@%d",
					pid, i, from,
					trimmed[i].Group, trimmed[i].Msg.ID, trimmed[i].Pos,
					batch[i].Group, batch[i].Msg.ID, batch[i].Pos)
			}
		}
		if len(trimmed) == len(batch) {
			return len(batch), nil
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("cursor p%v: streaming (%d) and batch (%d) merges never converged: %w",
				pid, len(trimmed), len(batch), ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// verifyLaggedPrefix checks that what a now-lagged cursor streamed before
// the gap is byte-identical to the batch merge over the rounds both
// cover.
func (c *ShardedCluster) verifyLaggedPrefix(pid ids.ProcessID, cs *cursorState) error {
	batch, from, rounds, ok := c.MergedAt(pid)
	if !ok {
		return fmt.Errorf("cursor p%v: batch merge unavailable after lag", pid)
	}
	lo, hi := cs.cur.StartRound(), cs.cur.Emitted()
	if from > lo {
		lo = from
	}
	if rounds < hi {
		hi = rounds
	}
	if hi <= lo {
		return nil // no overlap to compare
	}
	a := sliceRounds(cs.streamed, lo, hi)
	b := sliceRounds(batch, lo, hi)
	if len(a) != len(b) {
		return fmt.Errorf("cursor p%v: lagged prefix covers rounds [%d,%d) with %d deliveries; batch has %d",
			pid, lo, hi, len(a), len(b))
	}
	for i := range a {
		if !deliveryEqual(a[i], b[i]) {
			return fmt.Errorf("cursor p%v: lagged prefix disagrees with batch at index %d (rounds [%d,%d))", pid, i, lo, hi)
		}
	}
	return nil
}

// verifyFoldedMerge is the bounded-state phase of a checkpointing soak:
// it force-checkpoints every group of every process (folding under the
// merge floor), asserts the folds actually reclaimed delivered prefix,
// and re-verifies merge determinism, the long-lived cursors, and a
// freshly subscribed cursor over the genuinely folded state. Returns the
// rounds folded at p0 (summed over groups).
func (c *ShardedCluster) verifyFoldedMerge(ctx context.Context, all []ids.ProcessID, cursors []*cursorState) (uint64, error) {
	everyGroupActive := true
	for _, rec := range c.Recs {
		if len(rec.DeliveredAnywhere()) == 0 {
			everyGroupActive = false
		}
	}
	for _, pid := range all {
		var foldedMsgs uint64
		for g, n := range c.Nodes[pid] {
			p := n.Proto()
			if p == nil {
				return 0, fmt.Errorf("folded merge: p%v g%d down at verification", pid, g)
			}
			if err := p.CheckpointNow(); err != nil {
				return 0, fmt.Errorf("folded merge: checkpoint p%v g%d: %w", pid, g, err)
			}
			base, _ := p.Sequence()
			foldedMsgs += base.Pos
		}
		// Bounded state: the slowest group's floor equals its own round
		// counter, so with every group active the forced fold must have
		// absorbed delivered prefix somewhere at this process.
		if everyGroupActive && foldedMsgs == 0 {
			return 0, fmt.Errorf("folded merge: p%v folded nothing under the merge floor (frontier %d)",
				pid, c.Streams[pid].Frontier())
		}
	}
	if err := c.VerifyMergeDeterminism(all...); err != nil {
		return 0, fmt.Errorf("folded merge: %w", err)
	}
	var folded uint64
	for g, n := range c.Nodes[all[0]] {
		p := n.Proto()
		if p == nil {
			return 0, fmt.Errorf("folded merge: p%v g%d down", all[0], g)
		}
		base, _ := p.Sequence()
		folded += base.Rounds
	}
	for _, pid := range all {
		// The long-lived cursor is unaffected by folds (it buffered the
		// history live)...
		if _, err := c.verifyCursorAgainstBatch(ctx, pid, cursors[pid]); err != nil {
			return 0, fmt.Errorf("folded merge (long-lived cursor): %w", err)
		}
		// ...and a fresh subscription must still reconstruct everything
		// from the merge base on — the metadata the floor retained.
		fresh, err := c.SubscribeMerged(pid)
		if err != nil {
			return 0, fmt.Errorf("folded merge: fresh subscribe p%v: %w", pid, err)
		}
		fcs := &cursorState{cur: fresh}
		_, err = c.verifyCursorAgainstBatch(ctx, pid, fcs)
		fcs.cur.Close()
		if err != nil {
			return 0, fmt.Errorf("folded merge (fresh cursor): %w", err)
		}
	}
	return folded, nil
}

// LayerTotals rolls the per-group accounted stats of process pid up by
// layer name ("cons", "abcast", "node", ...): group namespaces sit below
// the accounting, so the per-layer attribution stays truthful and summing
// across groups double-counts nothing (each group's ops are its own; the
// shared engine's fsyncs are not per-group state and are read from the
// engine once — see Cluster/E16).
func (c *ShardedCluster) LayerTotals(pid ids.ProcessID) map[string]storage.LayerStats {
	out := make(map[string]storage.LayerStats)
	for _, acct := range c.Stores[pid] {
		for name, st := range acct.Layers() {
			cur := out[name]
			cur.Add(st)
			out[name] = cur
		}
	}
	return out
}

// SharedSyncCount returns the fsync count of process pid's shared engine
// (0 when the engine does not expose one or per-group stores are in use).
// One number per process — the whole point of the shared WAL is that every
// group's records ride the same fsyncs, so summing anything per group
// would double-count.
func (c *ShardedCluster) SharedSyncCount(pid ids.ProcessID) int64 {
	if c.Opts.GroupStore != nil {
		var total int64
		seen := make(map[storage.Stable]bool)
		for g := range c.Stores[pid] {
			eng := c.Stores[pid][g].Inner()
			if seen[eng] {
				continue
			}
			seen[eng] = true
			if sc, ok := eng.(interface{ SyncCount() int64 }); ok {
				total += sc.SyncCount()
			}
		}
		return total
	}
	if len(c.Stores[pid]) == 0 {
		return 0
	}
	// Walk below the first group's namespace to the shared engine.
	eng := c.Stores[pid][0].Inner()
	for {
		switch e := eng.(type) {
		case *storage.Prefixed:
			eng = e.Inner()
		case *storage.Faulty:
			eng = e.Inner()
		default:
			if sc, ok := eng.(interface{ SyncCount() int64 }); ok {
				return sc.SyncCount()
			}
			return 0
		}
	}
}
