package harness

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/storage"
	"repro/internal/tune"
	"repro/internal/wire"
)

// soakVariants are the protocol configurations the randomized soak guards:
// the paper's basic protocol, the high-throughput pipelined + adaptively
// batched + checkpointing + state-transfer stack, and the same stack over
// digest anti-entropy gossip (IDs + pull-based repair instead of full
// payload re-sends — dissemination, recovery catch-up and the state
// transfer must all still hold under crashes and loss).
func soakVariants() map[string]core.Config {
	pipelined := core.Config{
		PipelineDepth:    4,
		BatchedBroadcast: true,
		IncrementalLog:   true,
		MaxBatchBytes:    4 << 10,
		MaxBatchDelay:    300 * time.Microsecond,
		CheckpointEvery:  8,
		Delta:            12,
	}
	digest := pipelined
	digest.DigestGossip = true
	return map[string]core.Config{
		"basic":     {},
		"pipelined": pipelined,
		"digest":    digest,
	}
}

// TestSoakSeeds runs the randomized crash-recovery soak for a fixed set of
// seeds: each seed generates a random schedule of crashes, async
// recoveries, and injected storage faults under a lossy network while a
// closed-loop workload broadcasts, then everything recovers, drains, and
// the recorder verifies Validity, Integrity, Total Order and Termination.
//
// Reproducing a failure: the schedule is a pure function of the seed, so
// re-run the failing subtest by name, e.g.
//
//	go test ./internal/harness -run 'TestSoakSeeds/seed=23/pipelined' -v -count=1
//
// and iterate with -race for interleaving-dependent bugs. To investigate a
// new seed, add it to the seeds list below or call RunSoak directly.
func TestSoakSeeds(t *testing.T) {
	seeds := []uint64{1, 7, 23}
	for _, seed := range seeds {
		for name, cfg := range soakVariants() {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, name), func(t *testing.T) {
				t.Parallel()
				res, err := RunSoak(SoakOptions{
					Seed: seed,
					N:    3,
					Core: cfg,
				})
				t.Logf("soak: %v", res)
				if err != nil {
					t.Fatalf("soak failed: %v", err)
				}
				if res.Crashes+res.StorageFaults == 0 {
					t.Fatalf("schedule exercised no faults (seed too tame?): %v", res)
				}
			})
		}
	}
}

// TestSoakSeedsOptimistic runs the seeded soak with the optimistic
// delivery fast path and the stable-sequencer lease enabled, against a
// schedule where optimism is systematically wrong: besides the usual
// crashes, recoveries and storage faults, quiet steps now revoke held
// leases mid-stream (injected suspicion forcing the fast path back onto
// full consensus) and inject fsync latency (widening the window between
// a tentative delivery and its confirm). The optimism tracker asserts
// the confirm/revoke contract event by event — every confirmed tentative
// matches the authoritative delivery at its position, a revoke never
// retracts a confirmed watermark, and nothing speculative survives
// unsettled — while the recorder holds the authoritative order to the
// full Atomic Broadcast specification: a tentative rolled back on a
// sequencer crash must re-appear through the usual delivery path.
func TestSoakSeedsOptimistic(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d/optimistic", seed), func(t *testing.T) {
			t.Parallel()
			res, err := RunSoak(SoakOptions{
				Seed:       seed,
				N:          3,
				Core:       soakVariants()["pipelined"],
				Consensus:  consensus.Config{Lease: true, LeaseTTL: 50 * time.Millisecond},
				Optimistic: true,
			})
			t.Logf("soak: %v", res)
			if err != nil {
				t.Fatalf("soak failed: %v", err)
			}
			if res.Crashes+res.StorageFaults == 0 {
				t.Fatalf("schedule exercised no faults (seed too tame?): %v", res)
			}
			if res.Tentatives == 0 {
				t.Fatalf("optimistic soak observed no tentative deliveries: %v", res)
			}
			if res.LeaseRevokes == 0 {
				t.Fatalf("schedule injected no lease revocations: %v", res)
			}
		})
	}
}

// TestSoakSeedsWAL runs the seeded soak schedule over the group-commit WAL
// engine with storage.Faulty injection on top: injected faults fail log
// operations at arbitrary points of the asynchronous pipeline and the
// resulting crash/recovery cycles must still produce one total order with
// no loss and no duplication. Like the harness's in-memory stores, the WAL
// instances stay open across simulated crashes (the node's volatile
// incarnation dies; the storage object does not), so this soak exercises
// fault-time behavior of the pipeline, not loss of the un-fsynced tail —
// cold-restart recovery from the durable prefix alone is covered by the
// reopen tests in internal/storage and abcast's TestPublicAPIWALStorage.
func TestSoakSeedsWAL(t *testing.T) {
	for _, seed := range []uint64{5, 31} {
		t.Run(fmt.Sprintf("seed=%d/wal", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			res, err := RunSoak(SoakOptions{
				Seed: seed,
				N:    3,
				Core: soakVariants()["pipelined"],
				NewStore: func(pid ids.ProcessID) storage.Stable {
					w, werr := storage.OpenWAL(
						filepath.Join(dir, fmt.Sprintf("p%d", pid)),
						storage.WALOptions{SyncEvery: 16, MaxSyncDelay: 500 * time.Microsecond})
					if werr != nil {
						t.Fatalf("open wal: %v", werr)
					}
					return w
				},
			})
			t.Logf("soak: %v", res)
			if err != nil {
				t.Fatalf("soak failed: %v", err)
			}
			if res.Crashes+res.StorageFaults == 0 {
				t.Fatalf("schedule exercised no faults (seed too tame?): %v", res)
			}
		})
	}
}

// TestSoakSeedsAdaptive runs the seeded crash-recovery soak with the
// closed-loop autotuner live on every process, over the group-commit WAL
// engine so all three controlled knobs (batch delay, pipeline depth,
// group-commit policy) actually move. Everything the adaptive path touches
// is under the full specification here: the controller resizes the
// pipeline and retunes durability WHILE processes crash mid-epoch, recover
// and replay, and injected storage faults fail the very writes the policy
// is amortizing — and the recorder still requires one total order, no
// loss, no duplication. The per-controller restart path (Stop on crash,
// Start on recovery, re-baseline after the counter reset) is exercised by
// every recovery in the schedule.
func TestSoakSeedsAdaptive(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d/adaptive", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			res, err := RunSoak(SoakOptions{
				Seed:     seed,
				N:        3,
				Core:     soakVariants()["pipelined"],
				Adaptive: true,
				// A fast epoch so the controllers take many steps within
				// the soak's lifetime.
				Tune: tune.Options{Epoch: 2 * time.Millisecond},
				NewStore: func(pid ids.ProcessID) storage.Stable {
					w, werr := storage.OpenWAL(
						filepath.Join(dir, fmt.Sprintf("p%d", pid)),
						storage.WALOptions{SyncEvery: 16, MaxSyncDelay: 500 * time.Microsecond})
					if werr != nil {
						t.Fatalf("open wal: %v", werr)
					}
					return w
				},
			})
			t.Logf("soak: %v", res)
			if err != nil {
				t.Fatalf("soak failed: %v", err)
			}
			if res.Crashes+res.StorageFaults == 0 {
				t.Fatalf("schedule exercised no faults (seed too tame?): %v", res)
			}
			if res.TuneMoves == 0 {
				t.Fatalf("adaptive soak observed no controller adjustments: %v", res)
			}
		})
	}
}

// soakCheckpointer is the application fold the checkpointing soak variant
// runs: a running (count, FNV-style hash) over every folded message, so
// the app state genuinely depends on the folded prefix.
type soakCheckpointer struct{}

func (soakCheckpointer) Checkpoint(prev []byte, delivered []msg.Message) []byte {
	var count, h uint64
	if len(prev) > 0 {
		r := wire.NewReader(prev)
		count, h = r.U64(), r.U64()
	}
	for _, m := range delivered {
		count++
		h = h*1099511628211 ^ uint64(m.ID.Sender)<<40 ^ uint64(m.ID.Incarnation)<<32 ^ m.ID.Seq
	}
	w := wire.NewWriter(20)
	w.U64(count)
	w.U64(h)
	return w.Bytes()
}

func (soakCheckpointer) Restore([]byte) {}

// TestSoakSeedsSharded extends the soak matrix to sharded multi-group
// clusters over a shared WAL: whole-process crashes, async recoveries and
// process-level storage faults (below the group namespaces, so one fault
// kills every group's write path at once) under a lossy network, while the
// workload spreads broadcasts over every group. Verification is per group
// — each group's total order must satisfy the full specification — plus
// cross-group merge determinism, the streaming-vs-batch merge
// differential (a cursor subscribed before the faults must stream exactly
// what batch Merge reconstructs), and shared-FD re-trust at recovered
// epochs (RunShardedSoak's awaitSharedFDConvergence).
//
// The cluster runs the full shared-substrate stack under test: shared
// process-level failure detector (the harness default), digest
// anti-entropy gossip, and the write-coalescing mux. The ckpt variant
// additionally runs merged-mode application checkpointing (folds gated by
// the merge floor) with WAL segment compaction underneath, and the soak's
// final phase force-folds every group and re-verifies the merge over the
// checkpointed prefixes.
//
// Reproduce a failing seed like the other soaks:
//
//	go test ./internal/harness -run 'TestSoakSeedsSharded/seed=11' -v -count=1
func TestSoakSeedsSharded(t *testing.T) {
	base := core.Config{
		PipelineDepth:    4,
		BatchedBroadcast: true,
		IncrementalLog:   true,
		MaxBatchBytes:    4 << 10,
		MaxBatchDelay:    300 * time.Microsecond,
		DigestGossip:     true,
	}
	ckpt := base
	ckpt.CheckpointEvery = 6
	ckpt.Checkpointer = soakCheckpointer{}
	variants := map[string]core.Config{
		"sharded-wal":      base,
		"sharded-wal-ckpt": ckpt,
	}
	for _, seed := range []uint64{11, 47} {
		for name, cfg := range variants {
			cfg := cfg
			t.Run(fmt.Sprintf("seed=%d/%s", seed, name), func(t *testing.T) {
				t.Parallel()
				dir := t.TempDir()
				walOpts := storage.WALOptions{SyncEvery: 16, MaxSyncDelay: 500 * time.Microsecond}
				if cfg.Checkpointer != nil {
					// The checkpointing variant also exercises the segment
					// compactor under crash/recovery: checkpoint deletes
					// create garbage, compaction reclaims it mid-soak.
					walOpts.CompactFactor = 2
					walOpts.CompactMinBytes = 4 << 10
				}
				res, err := RunShardedSoak(ShardedSoakOptions{
					Seed:   seed,
					N:      3,
					Groups: 3,
					Core:   cfg,
					Mux:    group.MuxOptions{FlushDelay: 200 * time.Microsecond},
					NewStore: func(pid ids.ProcessID) storage.Stable {
						w, werr := storage.OpenWAL(
							filepath.Join(dir, fmt.Sprintf("p%d", pid)), walOpts)
						if werr != nil {
							t.Fatalf("open wal: %v", werr)
						}
						return w
					},
				})
				t.Logf("sharded soak: %v", res)
				if err != nil {
					t.Fatalf("sharded soak failed: %v", err)
				}
				if res.Crashes+res.StorageFaults == 0 {
					t.Fatalf("schedule exercised no faults (seed too tame?): %v", res)
				}
				if cfg.Checkpointer != nil && res.FoldedRounds == 0 {
					t.Fatalf("checkpointing variant folded nothing: %v", res)
				}
			})
		}
	}
}

// TestSoakSeedsShardedOptimistic runs the sharded soak with tentative
// delivery, the lease fast path and the merged-mode idle heartbeat wired
// through every group: the optimism tracker checks the per-group
// confirm/revoke contract while the merge verification proves the merged
// sequence carries only confirmed rounds (tentative deliveries never
// reach the recorders or the stream).
func TestSoakSeedsShardedOptimistic(t *testing.T) {
	cfg := core.Config{
		PipelineDepth:    4,
		BatchedBroadcast: true,
		IncrementalLog:   true,
		MaxBatchBytes:    4 << 10,
		MaxBatchDelay:    300 * time.Microsecond,
		DigestGossip:     true,
	}
	for _, seed := range []uint64{11, 47} {
		t.Run(fmt.Sprintf("seed=%d/sharded-optimistic", seed), func(t *testing.T) {
			t.Parallel()
			res, err := RunShardedSoak(ShardedSoakOptions{
				Seed:       seed,
				N:          3,
				Groups:     3,
				Core:       cfg,
				Consensus:  consensus.Config{Lease: true, LeaseTTL: 50 * time.Millisecond},
				Mux:        group.MuxOptions{FlushDelay: 200 * time.Microsecond},
				Optimistic: true,
			})
			t.Logf("sharded soak: %v", res)
			if err != nil {
				t.Fatalf("sharded soak failed: %v", err)
			}
			if res.Crashes+res.StorageFaults == 0 {
				t.Fatalf("schedule exercised no faults (seed too tame?): %v", res)
			}
			if res.Tentatives == 0 {
				t.Fatalf("optimistic soak observed no tentative deliveries: %v", res)
			}
		})
	}
}

// TestSoakFiveProcesses widens the group so schedules can take two
// processes down at once while a majority keeps ordering.
func TestSoakFiveProcesses(t *testing.T) {
	res, err := RunSoak(SoakOptions{
		Seed:  99,
		N:     5,
		Steps: 50,
		Core: core.Config{
			PipelineDepth:    3,
			BatchedBroadcast: true,
			MaxBatchDelay:    300 * time.Microsecond,
		},
	})
	t.Logf("soak: %v", res)
	if err != nil {
		t.Fatalf("soak failed: %v", err)
	}
}
