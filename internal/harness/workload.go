package harness

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
)

// Metrics aggregates a workload run.
type Metrics struct {
	Count     int
	Elapsed   time.Duration
	Latencies []time.Duration
	Errors    int
}

// Throughput returns messages per second.
func (m Metrics) Throughput() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Count) / m.Elapsed.Seconds()
}

// Percentile returns the q-th latency percentile (q in [0,100]).
func (m Metrics) Percentile(q float64) time.Duration {
	if len(m.Latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(m.Latencies))
	copy(sorted, m.Latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Mean returns the mean latency.
func (m Metrics) Mean() time.Duration {
	if len(m.Latencies) == 0 {
		return 0
	}
	var total time.Duration
	for _, l := range m.Latencies {
		total += l
	}
	return total / time.Duration(len(m.Latencies))
}

// Workload parameterizes a load run.
type Workload struct {
	// Senders broadcast in parallel (closed loop, one outstanding
	// message each).
	Senders []ids.ProcessID
	// MessagesPerSender is the per-sender message count.
	MessagesPerSender int
	// PayloadSize in bytes.
	PayloadSize int
	// Pipeline > 1 keeps several broadcasts outstanding per sender
	// (batching pressure, §5.4).
	Pipeline int
	// Seed randomizes payload content.
	Seed uint64
}

func (w *Workload) fill() {
	if w.MessagesPerSender <= 0 {
		w.MessagesPerSender = 10
	}
	if w.PayloadSize <= 0 {
		w.PayloadSize = 64
	}
	if w.Pipeline <= 0 {
		w.Pipeline = 1
	}
	if w.Seed == 0 {
		w.Seed = 1
	}
}

// Run drives the workload to completion: every sender broadcasts its quota
// (waiting for ordering, i.e. the basic A-broadcast contract) and the
// elapsed time and latencies are collected.
func (c *Cluster) Run(ctx context.Context, w Workload) (Metrics, error) {
	w.fill()
	var (
		mu  sync.Mutex
		m   Metrics
		wg  sync.WaitGroup
		err error
	)
	start := time.Now()
	for si, sender := range w.Senders {
		for lane := 0; lane < w.Pipeline; lane++ {
			wg.Add(1)
			go func(sender ids.ProcessID, stream int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(w.Seed, uint64(stream)))
				payload := make([]byte, w.PayloadSize)
				for i := 0; i < w.MessagesPerSender; i++ {
					for b := range payload {
						payload[b] = byte(rng.Uint64())
					}
					t0 := time.Now()
					_, berr := c.Broadcast(ctx, sender, payload)
					lat := time.Since(t0)
					mu.Lock()
					if berr != nil {
						m.Errors++
						if err == nil && ctx.Err() != nil {
							err = fmt.Errorf("workload: %w", berr)
						}
					} else {
						m.Count++
						m.Latencies = append(m.Latencies, lat)
					}
					mu.Unlock()
					if ctx.Err() != nil {
						return
					}
				}
			}(sender, si*w.Pipeline+lane)
		}
	}
	wg.Wait()
	m.Elapsed = time.Since(start)
	return m, err
}

// FaultSchedule crashes and recovers a process in a loop until the context
// ends. It models the paper's oscillating (potentially bad) process.
type FaultSchedule struct {
	PID     ids.ProcessID
	UpFor   time.Duration
	DownFor time.Duration
}

// RunFaults executes schedules concurrently until ctx is done, then leaves
// every scheduled process recovered (so it can be judged "good": it
// eventually remains permanently up). It returns a function that waits for
// the schedules to finish.
func (c *Cluster) RunFaults(ctx context.Context, schedules ...FaultSchedule) (wait func()) {
	var wg sync.WaitGroup
	for _, s := range schedules {
		wg.Add(1)
		go func(s FaultSchedule) {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					// Leave the process up: good processes
					// eventually remain permanently up.
					if !c.Nodes[s.PID].Up() {
						_, _ = c.Recover(s.PID)
					}
					return
				case <-time.After(s.UpFor):
				}
				c.Crash(s.PID)
				select {
				case <-ctx.Done():
					_, _ = c.Recover(s.PID)
					return
				case <-time.After(s.DownFor):
				}
				if _, err := c.Recover(s.PID); err != nil {
					return
				}
			}
		}(s)
	}
	return wg.Wait
}
