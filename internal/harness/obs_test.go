package harness

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/obs"
)

// On a calm cluster (no crashes, every message traced) the exact
// conservation laws hold: every broadcast is delivered everywhere exactly
// once, every traced span finishes, and the per-stage histograms account
// for every message. This is the equality counterpart to the structural
// invariants the chaotic soaks check.
func TestObsConservationCalm(t *testing.T) {
	c := NewCluster(Options{
		N:    3,
		Seed: 601,
		Obs:  obs.Options{SampleRate: 1},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const msgs = 30
	for i := 0; i < msgs; i++ {
		if _, err := c.Broadcast(ctx, ids.ProcessID(i%3), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}

	var totalBroadcasts uint64
	for pid, p := range c.Obs {
		reg := p.Reg()
		totalBroadcasts += reg.Counter(obs.GroupLabel("abcast.core.broadcasts", 0)).Value()
		if d := reg.Counter(obs.GroupLabel("abcast.core.delivered", 0)).Value(); d != msgs {
			t.Fatalf("p%d delivered %d messages, want %d", pid, d, msgs)
		}
		// Trace conservation at SampleRate 1: one finished span and one
		// end-to-end observation per message, no span left open.
		e2e, ok := reg.HistogramSnapshot("abcast.trace.e2e_ns")
		if !ok || e2e.Count != msgs {
			t.Fatalf("p%d e2e trace count = %d (ok=%v), want %d", pid, e2e.Count, ok, msgs)
		}
		if fin := reg.Counter("abcast.trace.spans_finished").Value(); fin != msgs {
			t.Fatalf("p%d finished spans = %d, want %d", pid, fin, msgs)
		}
		if open := p.Trace().Pending(); open != 0 {
			t.Fatalf("p%d has %d spans still open after quiescence", pid, open)
		}
		// The deliver stage fires for every finished span.
		del, _ := reg.HistogramSnapshot("abcast.trace.deliver_ns")
		if del.Count != msgs {
			t.Fatalf("p%d deliver-stage count = %d, want %d", pid, del.Count, msgs)
		}
	}
	if totalBroadcasts != msgs {
		t.Fatalf("cluster-wide broadcasts counter = %d, want %d", totalBroadcasts, msgs)
	}
	if err := verifyObsInvariants(c.Obs); err != nil {
		t.Fatal(err)
	}
}

// The merged Prometheus endpoint must expose every layer's families in
// parseable text format, with per-process pid labels keeping series
// distinct.
func TestPromEndpointScrape(t *testing.T) {
	c := NewCluster(Options{
		N:                   3,
		Seed:                602,
		Obs:                 obs.Options{SampleRate: 1},
		InjectFaultyStorage: true, // exposes the persist-latency histogram
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 6; i++ {
		if _, err := c.Broadcast(ctx, ids.ProcessID(i%3), []byte("scrape")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.PromHandler(c.Obs))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body strings.Builder
	if _, err := fmt.Fprint(&body); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	for n > 0 {
		body.Write(buf[:n])
		n, _ = resp.Body.Read(buf)
	}
	text := body.String()

	// Every exposition line is either a comment or `name{labels} value`.
	line := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? -?[0-9]+$`)
	families := map[string]bool{}
	for _, l := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(l, "# TYPE ") {
			parts := strings.Fields(l)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", l)
			}
			families[parts[2]] = true
			continue
		}
		if !line.MatchString(l) {
			t.Fatalf("unparseable exposition line: %q", l)
		}
	}
	for _, want := range []string{
		"abcast_core_broadcasts",
		"abcast_core_delivered",
		"abcast_consensus_quorum_ns",
		"abcast_storage_persist_ns",
		"abcast_trace_e2e_ns",
		"abcast_trace_deliver_ns",
	} {
		if !families[want] {
			t.Fatalf("scrape missing family %q; families: %v", want, families)
		}
	}
	// Per-process series must stay distinct under the pid label.
	for pid := 0; pid < 3; pid++ {
		if !strings.Contains(text, fmt.Sprintf(`pid="%d"`, pid)) {
			t.Fatalf("scrape has no series for pid %d", pid)
		}
	}
}

// A safety/liveness violation must arrive with the flight recorder's
// causal timeline attached — the acceptance criterion for the anomaly
// ring.
func TestViolationCarriesFlightDump(t *testing.T) {
	c := NewCluster(Options{N: 3, Seed: 603})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := c.Broadcast(ctx, 0, []byte("evidence")); err != nil {
		t.Fatal(err)
	}
	c.Crash(1)
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}

	err := c.violation(errors.New("forced: agreement violated"))
	if err == nil {
		t.Fatal("violation(non-nil) returned nil")
	}
	s := err.Error()
	if !strings.Contains(s, "forced: agreement violated") {
		t.Fatalf("violation lost the original error: %q", s)
	}
	if !strings.Contains(s, "--- flight recorder ---") {
		t.Fatalf("violation has no flight dump: %q", s)
	}
	// The dump must contain the causal events of the run: every process's
	// incarnation start, and p1's restart.
	if strings.Count(s, "node-start") < 4 {
		t.Fatalf("flight dump missing node-start events:\n%s", s)
	}
	if !strings.Contains(s, "lease-acquire") && !strings.Contains(s, "checkpoint") &&
		strings.Count(s, "node-start") == 0 {
		t.Fatalf("flight dump carries no causal events:\n%s", s)
	}
	// And a clean verification stays clean.
	if v := c.violation(nil); v != nil {
		t.Fatalf("violation(nil) = %v", v)
	}
}
