package harness

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/storage"
)

// SoakOptions configures one randomized crash-recovery soak run. A soak
// interleaves a broadcast workload with a seeded random schedule of
// crashes, recoveries and injected storage faults over a lossy network,
// then recovers everyone, drains, and verifies the full Atomic Broadcast
// specification (total order, no loss of returned broadcasts, no
// duplication) via the recorder.
//
// Every run is a pure function of Seed (plus the scheduler's goroutine
// interleavings): re-running a failing seed reproduces the same fault
// schedule. See RunSoak.
type SoakOptions struct {
	// Seed drives the whole schedule (also the network's loss/dup/delay
	// pattern). Required; 0 picks the harness default.
	Seed uint64
	// N is the group size (default 3).
	N int
	// Steps is the number of fault-schedule steps (default 40).
	Steps int
	// Msgs is the number of broadcast attempts the workload makes across
	// the run (default 120).
	Msgs int
	// Payload is the broadcast payload size in bytes (default 32).
	Payload int
	// MaxDown caps how many processes may be down simultaneously
	// (default N-1, the crash-recovery model's worst survivable case for
	// eventual progress).
	MaxDown int
	// Core selects the protocol variant under test (basic, pipelined,
	// batched, checkpointing, ...).
	Core core.Config
	// NewStore, when set, supplies each process's stable-storage engine
	// (default in-memory). The soak's storage-fault injection sits on
	// top of it either way, so a WAL-backed soak exercises injected
	// crashes over the group-commit pipeline.
	NewStore func(ids.ProcessID) storage.Stable
	// DrainTimeout bounds the final catch-up-and-verify phase (default
	// 60s).
	DrainTimeout time.Duration
}

func (o *SoakOptions) fill() {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.N <= 0 {
		o.N = 3
	}
	if o.Steps <= 0 {
		o.Steps = 40
	}
	if o.Msgs <= 0 {
		o.Msgs = 120
	}
	if o.Payload <= 0 {
		o.Payload = 32
	}
	if o.MaxDown <= 0 || o.MaxDown >= o.N {
		o.MaxDown = o.N - 1
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 60 * time.Second
	}
}

// SoakResult summarizes what one soak run exercised.
type SoakResult struct {
	Crashes       int
	Recoveries    int
	StorageFaults int
	Broadcasts    int // broadcast attempts that produced a message id
	Returned      int // broadcasts whose A-broadcast returned (must deliver)
	Delivered     int // distinct messages in the final total order
}

func (r SoakResult) String() string {
	return fmt.Sprintf("crashes=%d recoveries=%d storage-faults=%d broadcasts=%d returned=%d delivered=%d",
		r.Crashes, r.Recoveries, r.StorageFaults, r.Broadcasts, r.Returned, r.Delivered)
}

// soakState tracks per-process lifecycle so the schedule never starts two
// recoveries of the same process concurrently. Recoveries run async
// because replay legitimately blocks while a majority is down.
type soakState struct {
	mu         sync.Mutex
	up         []bool
	recovering []bool
	// armed marks a live process with a storage fault ticking. Once the
	// first disarm attempt consumes the flag, later observations cannot
	// tell "never fired" from "fired, crash still in flight", so only a
	// first-disarm-without-trip puts a process back in rotation.
	armed []bool
}

func (s *soakState) pick(rng *rand.Rand, want func(i int) bool) (ids.ProcessID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cands []int
	for i := range s.up {
		if want(i) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	return ids.ProcessID(cands[rng.IntN(len(cands))]), true
}

func (s *soakState) downCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i := range s.up {
		if !s.up[i] || s.recovering[i] {
			n++
		}
	}
	return n
}

// RunSoak executes one randomized crash-recovery soak and returns the
// verification error, if any. The returned SoakResult is valid either way.
func RunSoak(opts SoakOptions) (SoakResult, error) {
	opts.fill()
	var res SoakResult
	rng := rand.New(rand.NewPCG(opts.Seed, opts.Seed^0x50a4_50a4_50a4_50a4))

	c := NewCluster(Options{
		N:                   opts.N,
		Seed:                opts.Seed,
		Net:                 DefaultLossyNet(opts.Seed),
		Core:                opts.Core,
		InjectFaultyStorage: true,
		NewStore:            opts.NewStore,
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return res, fmt.Errorf("soak seed=%d: start: %w", opts.Seed, err)
	}

	st := &soakState{
		up:         make([]bool, opts.N),
		recovering: make([]bool, opts.N),
		armed:      make([]bool, opts.N),
	}
	for i := range st.up {
		st.up[i] = true
	}

	// Workload: closed-loop senders that keep broadcasting (with per-call
	// timeouts) through the fault storm. A Broadcast that returns marks
	// its message must-deliver; one interrupted by a crash may or may not
	// be delivered — exactly the paper's §4.2 contract.
	wctx, wcancel := context.WithCancel(context.Background())
	var (
		wg       sync.WaitGroup
		resMu    sync.Mutex
		sent     int
		workSeed = opts.Seed
	)
	perSender := opts.Msgs / opts.N
	for p := 0; p < opts.N; p++ {
		wg.Add(1)
		go func(pid ids.ProcessID, seed uint64) {
			defer wg.Done()
			wrng := rand.New(rand.NewPCG(seed, uint64(pid)+1))
			payload := make([]byte, opts.Payload)
			for i := 0; i < perSender; i++ {
				if wctx.Err() != nil {
					return
				}
				for b := range payload {
					payload[b] = byte(wrng.Uint64())
				}
				callCtx, cancel := context.WithTimeout(wctx, 250*time.Millisecond)
				id, err := c.Broadcast(callCtx, pid, payload)
				cancel()
				resMu.Lock()
				if id != (ids.MsgID{}) {
					sent++
				}
				resMu.Unlock()
				if err != nil {
					// Down, stopped, or timed out: pause briefly so a
					// dead process doesn't spin.
					select {
					case <-wctx.Done():
						return
					case <-time.After(time.Duration(1+wrng.IntN(5)) * time.Millisecond):
					}
				}
			}
		}(ids.ProcessID(p), workSeed)
	}

	// Fault schedule: the seeded random walk. tripWG tracks the async
	// crash launched by every tripped storage fault, so the wind-down can
	// wait for them deterministically instead of racing the scheduler.
	var recWG, tripWG sync.WaitGroup
	for step := 0; step < opts.Steps; step++ {
		time.Sleep(time.Duration(1+rng.IntN(12)) * time.Millisecond)
		switch rng.IntN(10) {
		case 0, 1, 2: // crash a fully-up process (respecting MaxDown)
			if st.downCount() >= opts.MaxDown {
				continue
			}
			pid, ok := st.pick(rng, func(i int) bool {
				return st.up[i] && !st.recovering[i]
			})
			if !ok {
				continue
			}
			st.mu.Lock()
			st.up[pid] = false
			st.mu.Unlock()
			c.Crash(pid)
			res.Crashes++
		case 3, 4, 5: // recover a down process (async: replay may block)
			pid, ok := st.pick(rng, func(i int) bool {
				return !st.up[i] && !st.recovering[i]
			})
			if !ok {
				continue
			}
			if c.Nodes[pid].Up() {
				// Still alive: either the armed fault never tripped, or
				// it just fired and its async crash has not landed yet.
				// Disarm reports which atomically; only the first
				// disarm of a still-armed fault can prove "unscathed",
				// so later visits conservatively leave it down-marked
				// (the landing crash or the wind-down settles it).
				st.mu.Lock()
				wasArmed := st.armed[pid]
				st.armed[pid] = false
				st.mu.Unlock()
				if !c.Faults[pid].Disarm() && wasArmed {
					st.mu.Lock()
					st.up[pid] = true
					st.mu.Unlock()
				}
				continue
			}
			st.mu.Lock()
			st.recovering[pid] = true
			st.mu.Unlock()
			recWG.Add(1)
			go func(pid ids.ProcessID) {
				defer recWG.Done()
				_, err := c.Recover(pid)
				st.mu.Lock()
				st.recovering[pid] = false
				st.up[pid] = err == nil
				st.mu.Unlock()
			}(pid)
			res.Recoveries++
		case 6, 7: // arm a storage fault: the Nth next log write kills it
			if st.downCount() >= opts.MaxDown {
				continue
			}
			pid, ok := st.pick(rng, func(i int) bool {
				return st.up[i] && !st.recovering[i]
			})
			if !ok {
				continue
			}
			st.mu.Lock()
			st.up[pid] = false // it will die at the fault point
			st.armed[pid] = true
			st.mu.Unlock()
			c.Faults[pid].FailAfter(int64(1+rng.IntN(20)), func() {
				// Async: a synchronous Crash from inside the failing
				// log write would deadlock on the protocol's WaitGroup.
				tripWG.Add(1)
				go func() {
					defer tripWG.Done()
					c.Crash(pid)
				}()
			})
			res.StorageFaults++
		default: // let the cluster run
		}
	}

	// Wind down: stop the workload, finish pending recoveries, bring every
	// process back up (good processes eventually remain permanently up),
	// then drain and verify.
	wcancel()
	wg.Wait()
	recWG.Wait()
	// Disarm every storage fault before the final recoveries, then wait
	// for any tripped fault's async crash so it cannot kill a process
	// after its "final" recovery. Faulty runs onTrip under its trigger
	// lock, so after Disarm returns every fired trip has registered with
	// tripWG — the Wait is race-free.
	for _, f := range c.Faults {
		f.Disarm()
	}
	tripWG.Wait()
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	// Recover every down process concurrently: a lone recovery can block
	// in replay until a majority exists, and that majority may only form
	// once the other pending recoveries come up.
	var finalWG sync.WaitGroup
	for p := 0; p < opts.N; p++ {
		pid := ids.ProcessID(p)
		if c.Nodes[pid].Up() {
			continue
		}
		finalWG.Add(1)
		go func(pid ids.ProcessID) {
			defer finalWG.Done()
			for !c.Nodes[pid].Up() && drainCtx.Err() == nil {
				if _, err := c.Recover(pid); err != nil {
					c.Crash(pid) // tear down a half-started incarnation, retry
					time.Sleep(5 * time.Millisecond)
					continue
				}
				resMu.Lock()
				res.Recoveries++
				resMu.Unlock()
			}
		}(pid)
	}
	finalWG.Wait()
	for p := 0; p < opts.N; p++ {
		if !c.Nodes[p].Up() {
			return res, fmt.Errorf("soak seed=%d: final recovery of p%d did not complete within DrainTimeout", opts.Seed, p)
		}
	}

	resMu.Lock()
	res.Broadcasts = sent
	resMu.Unlock()
	res.Returned = len(c.Rec.ReturnedBroadcasts())

	var all []ids.ProcessID
	for p := 0; p < opts.N; p++ {
		all = append(all, ids.ProcessID(p))
	}
	if err := c.AwaitAllDelivered(drainCtx, all...); err != nil {
		return res, fmt.Errorf("soak seed=%d: drain: %w", opts.Seed, err)
	}
	res.Delivered = len(c.Rec.DeliveredAnywhere())
	return res, nil
}
