package harness

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/storage"
	"repro/internal/tune"
)

// SoakOptions configures one randomized crash-recovery soak run. A soak
// interleaves a broadcast workload with a seeded random schedule of
// crashes, recoveries and injected storage faults over a lossy network,
// then recovers everyone, drains, and verifies the full Atomic Broadcast
// specification (total order, no loss of returned broadcasts, no
// duplication) via the recorder.
//
// Every run is a pure function of Seed (plus the scheduler's goroutine
// interleavings): re-running a failing seed reproduces the same fault
// schedule. See RunSoak.
type SoakOptions struct {
	// Seed drives the whole schedule (also the network's loss/dup/delay
	// pattern). Required; 0 picks the harness default.
	Seed uint64
	// N is the group size (default 3).
	N int
	// Steps is the number of fault-schedule steps (default 40).
	Steps int
	// Msgs is the number of broadcast attempts the workload makes across
	// the run (default 120).
	Msgs int
	// Payload is the broadcast payload size in bytes (default 32).
	Payload int
	// MaxDown caps how many processes may be down simultaneously
	// (default N-1, the crash-recovery model's worst survivable case for
	// eventual progress).
	MaxDown int
	// Core selects the protocol variant under test (basic, pipelined,
	// batched, checkpointing, ...).
	Core core.Config
	// Consensus extends each process's consensus engine configuration —
	// notably the stable-sequencer lease (PID/N/Seed are filled per
	// process, as always).
	Consensus consensus.Config
	// Optimistic runs the soak against the optimistic-delivery contract:
	// the cluster's tentative hooks feed a per-process tracker asserting
	// that every tentative delivery is confirmed (matching the
	// authoritative order exactly) or revoked, and that confirmed state is
	// never retracted; the schedule additionally revokes sequencer leases
	// mid-stream and injects fsync latency — the disturbances that make
	// speculation systematically wrong.
	Optimistic bool
	// NewStore, when set, supplies each process's stable-storage engine
	// (default in-memory). The soak's storage-fault injection sits on
	// top of it either way, so a WAL-backed soak exercises injected
	// crashes over the group-commit pipeline.
	NewStore func(ids.ProcessID) storage.Stable
	// DrainTimeout bounds the final catch-up-and-verify phase (default
	// 60s).
	DrainTimeout time.Duration
	// Adaptive gives every process a closed-loop autotuner (see
	// Options.Adaptive): the soak then exercises live knob movement —
	// batch delay, pipeline depth, group-commit policy — under the same
	// crash/recovery and storage-fault schedule.
	Adaptive bool
	// Tune bounds the adaptive controllers (zero value: tune defaults).
	Tune tune.Options
}

func (o *SoakOptions) fill() {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.N <= 0 {
		o.N = 3
	}
	if o.Steps <= 0 {
		o.Steps = 40
	}
	if o.Msgs <= 0 {
		o.Msgs = 120
	}
	if o.Payload <= 0 {
		o.Payload = 32
	}
	if o.MaxDown <= 0 || o.MaxDown >= o.N {
		o.MaxDown = o.N - 1
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 60 * time.Second
	}
}

// SoakResult summarizes what one soak run exercised.
type SoakResult struct {
	Crashes       int
	Recoveries    int
	StorageFaults int
	Broadcasts    int // broadcast attempts that produced a message id
	Returned      int // broadcasts whose A-broadcast returned (must deliver)
	Delivered     int // distinct messages in the final total order
	LeaseRevokes  int // lease revocations the schedule injected (Optimistic)
	Tentatives    int // tentative deliveries observed (Optimistic)
	Confirmed     int // tentatives certified against the authoritative order
	Revoked       int // tentatives retracted by OnRevoke
	TuneMoves     uint64 // knob adjustments the autotuners made (Adaptive)
}

func (r SoakResult) String() string {
	s := fmt.Sprintf("crashes=%d recoveries=%d storage-faults=%d broadcasts=%d returned=%d delivered=%d",
		r.Crashes, r.Recoveries, r.StorageFaults, r.Broadcasts, r.Returned, r.Delivered)
	if r.Tentatives > 0 {
		s += fmt.Sprintf(" lease-revokes=%d tentative=%d confirmed=%d revoked=%d",
			r.LeaseRevokes, r.Tentatives, r.Confirmed, r.Revoked)
	}
	if r.TuneMoves > 0 {
		s += fmt.Sprintf(" tune-moves=%d", r.TuneMoves)
	}
	return s
}

// soakState tracks per-process lifecycle so the schedule never starts two
// recoveries of the same process concurrently. Recoveries run async
// because replay legitimately blocks while a majority is down.
type soakState struct {
	mu         sync.Mutex
	up         []bool
	recovering []bool
	// armed marks a live process with a storage fault ticking. Once the
	// first disarm attempt consumes the flag, later observations cannot
	// tell "never fired" from "fired, crash still in flight", so only a
	// first-disarm-without-trip puts a process back in rotation.
	armed []bool
}

func (s *soakState) pick(rng *rand.Rand, want func(i int) bool) (ids.ProcessID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var cands []int
	for i := range s.up {
		if want(i) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	return ids.ProcessID(cands[rng.IntN(len(cands))]), true
}

func (s *soakState) downCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i := range s.up {
		if !s.up[i] || s.recovering[i] {
			n++
		}
	}
	return n
}

// soakTarget abstracts the cluster under soak — a single-group Cluster or
// a ShardedCluster — behind the whole-process operations the schedule
// acts on. Crash must be idempotent (crashing a down or half-down process
// finishes the job); Broadcast receives the workload's message index so a
// sharded target can spread messages over its groups.
type soakTarget interface {
	Crash(pid ids.ProcessID)
	Recover(pid ids.ProcessID) (time.Duration, error)
	ProcessUp(pid ids.ProcessID) bool
	Fault(pid ids.ProcessID) *storage.Faulty
	Broadcast(ctx context.Context, pid ids.ProcessID, msgIndex int, payload []byte) (ids.MsgID, error)
	// RevokeLease drops the process's held sequencer lease(s), modelling
	// the injected suspicion an optimistic schedule uses to force the
	// fast path back onto full consensus mid-stream. A no-op when the
	// process is down or holds no lease.
	RevokeLease(pid ids.ProcessID)
}

// soakSchedule holds the shape parameters shared by every soak flavor.
type soakSchedule struct {
	seed         uint64
	n            int
	steps        int
	msgs         int
	payload      int
	maxDown      int
	drainTimeout time.Duration
	// optimistic adds lease-revocation and fsync-latency disturbances to
	// the schedule's quiet steps (the seeded walk is otherwise unchanged,
	// so non-optimistic seeds keep their schedules).
	optimistic bool
}

// soakCounts is what the schedule engine observed.
type soakCounts struct {
	crashes       int
	recoveries    int
	storageFaults int
	broadcasts    int // attempts that produced a message id
	leaseRevokes  int // injected lease revocations (optimistic schedules)
}

// runSoakSchedule is the soak engine shared by RunSoak and
// RunShardedSoak: it drives the closed-loop broadcast workload and the
// seeded random walk of crashes, async recoveries and armed storage
// faults against the target, then winds down — stopping the workload,
// waiting out in-flight recoveries and fault trips, and recovering every
// process (retrying within drainTimeout). The caller drains and verifies
// afterwards; the drain context is returned so it covers both phases.
func runSoakSchedule(sch soakSchedule, t soakTarget) (soakCounts, context.Context, context.CancelFunc, error) {
	var res soakCounts
	rng := rand.New(rand.NewPCG(sch.seed, sch.seed^0x50a4_50a4_50a4_50a4))

	st := &soakState{
		up:         make([]bool, sch.n),
		recovering: make([]bool, sch.n),
		armed:      make([]bool, sch.n),
	}
	for i := range st.up {
		st.up[i] = true
	}

	// Workload: closed-loop senders that keep broadcasting (with per-call
	// timeouts) through the fault storm. A Broadcast that returns marks
	// its message must-deliver; one interrupted by a crash may or may not
	// be delivered — exactly the paper's §4.2 contract.
	wctx, wcancel := context.WithCancel(context.Background())
	var (
		wg    sync.WaitGroup
		resMu sync.Mutex
		sent  int
	)
	perSender := sch.msgs / sch.n
	for p := 0; p < sch.n; p++ {
		wg.Add(1)
		go func(pid ids.ProcessID, seed uint64) {
			defer wg.Done()
			wrng := rand.New(rand.NewPCG(seed, uint64(pid)+1))
			payload := make([]byte, sch.payload)
			for i := 0; i < perSender; i++ {
				if wctx.Err() != nil {
					return
				}
				for b := range payload {
					payload[b] = byte(wrng.Uint64())
				}
				callCtx, cancel := context.WithTimeout(wctx, 250*time.Millisecond)
				id, err := t.Broadcast(callCtx, pid, i, payload)
				cancel()
				resMu.Lock()
				if id != (ids.MsgID{}) {
					sent++
				}
				resMu.Unlock()
				if err != nil {
					// Down, stopped, or timed out: pause briefly so a
					// dead process doesn't spin.
					select {
					case <-wctx.Done():
						return
					case <-time.After(time.Duration(1+wrng.IntN(5)) * time.Millisecond):
					}
				}
			}
		}(ids.ProcessID(p), sch.seed)
	}

	// Fault schedule: the seeded random walk. tripWG tracks the async
	// crash launched by every tripped storage fault, so the wind-down can
	// wait for them deterministically instead of racing the scheduler.
	var recWG, tripWG sync.WaitGroup
	for step := 0; step < sch.steps; step++ {
		time.Sleep(time.Duration(1+rng.IntN(12)) * time.Millisecond)
		if sch.optimistic && step == sch.steps/2 {
			// Deterministic mid-run suspicion burst: revoke every held
			// lease so the fast path is contested on every seed (the
			// random disturbances below may miss short schedules).
			for p := 0; p < sch.n; p++ {
				t.RevokeLease(ids.ProcessID(p))
			}
			res.leaseRevokes += sch.n
		}
		switch rng.IntN(10) {
		case 0, 1, 2: // crash a fully-up process (respecting maxDown)
			if st.downCount() >= sch.maxDown {
				continue
			}
			pid, ok := st.pick(rng, func(i int) bool {
				return st.up[i] && !st.recovering[i]
			})
			if !ok {
				continue
			}
			st.mu.Lock()
			st.up[pid] = false
			st.mu.Unlock()
			t.Crash(pid)
			res.crashes++
		case 3, 4, 5: // recover a down process (async: replay may block)
			pid, ok := st.pick(rng, func(i int) bool {
				return !st.up[i] && !st.recovering[i]
			})
			if !ok {
				continue
			}
			if t.ProcessUp(pid) {
				// Still alive: either the armed fault never tripped, or
				// it just fired and its async crash has not landed yet.
				// Disarm reports which atomically; only the first
				// disarm of a still-armed fault can prove "unscathed",
				// so later visits conservatively leave it down-marked
				// (the landing crash or the wind-down settles it).
				st.mu.Lock()
				wasArmed := st.armed[pid]
				st.armed[pid] = false
				st.mu.Unlock()
				if !t.Fault(pid).Disarm() && wasArmed {
					st.mu.Lock()
					st.up[pid] = true
					st.mu.Unlock()
				}
				continue
			}
			// A tripped fault's async crash may have landed only
			// partially (a sharded process crashes per group); finish it
			// so Recover starts from a fully-down process.
			t.Crash(pid)
			st.mu.Lock()
			st.recovering[pid] = true
			st.mu.Unlock()
			recWG.Add(1)
			go func(pid ids.ProcessID) {
				defer recWG.Done()
				_, err := t.Recover(pid)
				st.mu.Lock()
				st.recovering[pid] = false
				st.up[pid] = err == nil
				st.mu.Unlock()
			}(pid)
			res.recoveries++
		case 6, 7: // arm a storage fault: the Nth next log write kills it
			if st.downCount() >= sch.maxDown {
				continue
			}
			pid, ok := st.pick(rng, func(i int) bool {
				return st.up[i] && !st.recovering[i]
			})
			if !ok {
				continue
			}
			st.mu.Lock()
			st.up[pid] = false // it will die at the fault point
			st.armed[pid] = true
			st.mu.Unlock()
			t.Fault(pid).FailAfter(int64(1+rng.IntN(20)), func() {
				// Async: a synchronous Crash from inside the failing
				// log write would deadlock on the protocol's WaitGroup.
				tripWG.Add(1)
				go func() {
					defer tripWG.Done()
					t.Crash(pid)
				}()
			})
			res.storageFaults++
		default: // let the cluster run — or, optimistically, disturb it
			if !sch.optimistic {
				continue
			}
			pid, ok := st.pick(rng, func(i int) bool {
				return st.up[i] && !st.recovering[i]
			})
			if !ok {
				continue
			}
			switch rng.IntN(3) {
			case 0:
				// Injected suspicion: drop the held lease mid-stream, so
				// the next round falls back to full consensus and any
				// prediction built on the fast path gets contested.
				t.RevokeLease(pid)
				res.leaseRevokes++
			case 1:
				// Slow disk: widen the propose→fsync window tentative
				// deliveries live in, keeping speculation exposed longer.
				t.Fault(pid).SetLatency(time.Duration(1+rng.IntN(2)) * time.Millisecond)
			default:
				t.Fault(pid).SetLatency(0)
			}
		}
	}

	// Wind down: stop the workload, finish pending recoveries, bring every
	// process back up (good processes eventually remain permanently up).
	wcancel()
	wg.Wait()
	recWG.Wait()
	// Disarm every storage fault before the final recoveries, then wait
	// for any tripped fault's async crash so it cannot kill a process
	// after its "final" recovery. Faulty runs onTrip under its trigger
	// lock, so after Disarm returns every fired trip has registered with
	// tripWG — the Wait is race-free.
	for p := 0; p < sch.n; p++ {
		t.Fault(ids.ProcessID(p)).Disarm()
		t.Fault(ids.ProcessID(p)).SetLatency(0)
	}
	tripWG.Wait()
	drainCtx, cancel := context.WithTimeout(context.Background(), sch.drainTimeout)
	// Recover every down process concurrently: a lone recovery can block
	// in replay until a majority exists, and that majority may only form
	// once the other pending recoveries come up.
	var finalWG sync.WaitGroup
	for p := 0; p < sch.n; p++ {
		pid := ids.ProcessID(p)
		if t.ProcessUp(pid) {
			continue
		}
		finalWG.Add(1)
		go func(pid ids.ProcessID) {
			defer finalWG.Done()
			for !t.ProcessUp(pid) && drainCtx.Err() == nil {
				t.Crash(pid) // tear down a half-started incarnation, retry
				if _, err := t.Recover(pid); err != nil {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				resMu.Lock()
				res.recoveries++
				resMu.Unlock()
			}
		}(pid)
	}
	finalWG.Wait()
	for p := 0; p < sch.n; p++ {
		if !t.ProcessUp(ids.ProcessID(p)) {
			cancel()
			return res, nil, nil, fmt.Errorf("final recovery of p%d did not complete within DrainTimeout", p)
		}
	}
	resMu.Lock()
	res.broadcasts = sent
	resMu.Unlock()
	return res, drainCtx, cancel, nil
}

// clusterTarget adapts the single-group Cluster to the soak engine.
type clusterTarget struct{ c *Cluster }

func (t clusterTarget) Crash(pid ids.ProcessID) { t.c.Crash(pid) }
func (t clusterTarget) Recover(pid ids.ProcessID) (time.Duration, error) {
	return t.c.Recover(pid)
}
func (t clusterTarget) ProcessUp(pid ids.ProcessID) bool        { return t.c.Nodes[pid].Up() }
func (t clusterTarget) Fault(pid ids.ProcessID) *storage.Faulty { return t.c.Faults[pid] }
func (t clusterTarget) RevokeLease(pid ids.ProcessID) {
	if e := t.c.Nodes[pid].Engine(); e != nil {
		e.RevokeLease()
	}
}
func (t clusterTarget) Broadcast(ctx context.Context, pid ids.ProcessID, _ int, payload []byte) (ids.MsgID, error) {
	return t.c.Broadcast(ctx, pid, payload)
}

// RunSoak executes one randomized crash-recovery soak and returns the
// verification error, if any. The returned SoakResult is valid either way.
func RunSoak(opts SoakOptions) (SoakResult, error) {
	opts.fill()
	var res SoakResult

	clOpts := Options{
		N:                   opts.N,
		Seed:                opts.Seed,
		Net:                 DefaultLossyNet(opts.Seed),
		Consensus:           opts.Consensus,
		Core:                opts.Core,
		InjectFaultyStorage: true,
		NewStore:            opts.NewStore,
		Adaptive:            opts.Adaptive,
		Tune:                opts.Tune,
	}
	var tracker *optimismTracker
	if opts.Optimistic {
		tracker = newOptimismTracker(opts.N)
		clOpts.OnTentative = tracker.onTentative
		clOpts.OnConfirm = tracker.onConfirm
		clOpts.OnRevoke = tracker.onRevoke
		clOpts.OnDeliver = func(pid ids.ProcessID, d core.Delivery) { tracker.onDeliver(pid, 0, d) }
		clOpts.OnRestore = func(pid ids.ProcessID, _ core.Snapshot) { tracker.onRestore(pid) }
	}
	c := NewCluster(clOpts)
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return res, fmt.Errorf("soak seed=%d: start: %w", opts.Seed, err)
	}

	counts, drainCtx, cancel, err := runSoakSchedule(soakSchedule{
		seed:         opts.Seed,
		n:            opts.N,
		steps:        opts.Steps,
		msgs:         opts.Msgs,
		payload:      opts.Payload,
		maxDown:      opts.MaxDown,
		drainTimeout: opts.DrainTimeout,
		optimistic:   opts.Optimistic,
	}, clusterTarget{c})
	res = SoakResult{
		Crashes:       counts.crashes,
		Recoveries:    counts.recoveries,
		StorageFaults: counts.storageFaults,
		Broadcasts:    counts.broadcasts,
		LeaseRevokes:  counts.leaseRevokes,
	}
	if err != nil {
		return res, fmt.Errorf("soak seed=%d: %w", opts.Seed, err)
	}
	defer cancel()
	res.Returned = len(c.Rec.ReturnedBroadcasts())

	var all []ids.ProcessID
	for p := 0; p < opts.N; p++ {
		all = append(all, ids.ProcessID(p))
	}
	if err := c.AwaitAllDelivered(drainCtx, all...); err != nil {
		return res, fmt.Errorf("soak seed=%d: drain: %w", opts.Seed, err)
	}
	res.Delivered = len(c.Rec.DeliveredAnywhere())
	if tracker != nil {
		if err := tracker.awaitSettled(drainCtx); err != nil {
			return res, fmt.Errorf("soak seed=%d: %w", opts.Seed, err)
		}
		res.Tentatives, res.Confirmed, res.Revoked = tracker.counts()
		if err := tracker.err(); err != nil {
			return res, fmt.Errorf("soak seed=%d: %w", opts.Seed, err)
		}
	}
	if err := verifyObsInvariants(c.Obs); err != nil {
		return res, fmt.Errorf("soak seed=%d: %w", opts.Seed, err)
	}
	if opts.Adaptive {
		for _, pl := range c.Obs {
			res.TuneMoves += pl.Reg().Counter("abcast.tune.adjustments").Value()
		}
	}
	return res, nil
}
