package harness

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/abcast"
	"repro/internal/check"
	"repro/internal/ids"
	"repro/internal/obs"
)

// ReshardSoakOptions configures one randomized live-resharding soak: a
// seeded schedule interleaves scale-outs (AddGroup), retirements
// (RetireGroup), whole-process crashes and recoveries, checkpoint folds
// and keyed broadcast bursts over an abcast.Sharded cluster, then drains
// and verifies that the moving group set never bent the Atomic Broadcast
// guarantees — per group, and across groups through the merged order.
type ReshardSoakOptions struct {
	// Seed drives the whole schedule (0 picks the default).
	Seed uint64
	// N is the process count (default 3). Process 0 never crashes: it
	// holds the run-long merge cursor whose output is diffed against the
	// batch merge at the end.
	N int
	// Groups is the starting group count (default 2).
	Groups int
	// Steps is the schedule length (default 30).
	Steps int
	// MaxGroups caps how many groups a run may ever mint (default 6).
	MaxGroups int
	// Stale is the merge-floor staleness cap (default 60s — longer than
	// any run, so a lagging recoverer must never be served a GC-forced
	// state transfer).
	Stale time.Duration
	// DrainTimeout bounds the final catch-up-and-verify phase (default 60s).
	DrainTimeout time.Duration
}

func (o *ReshardSoakOptions) fill() {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.N <= 0 {
		o.N = 3
	}
	if o.Groups <= 0 {
		o.Groups = 2
	}
	if o.Steps <= 0 {
		o.Steps = 30
	}
	if o.MaxGroups <= o.Groups {
		o.MaxGroups = o.Groups + 4
	}
	if o.Stale <= 0 {
		o.Stale = 60 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 60 * time.Second
	}
}

// ReshardSoakResult summarizes what one resharding soak exercised.
type ReshardSoakResult struct {
	Joins       int // groups minted live
	Retirements int // groups sealed and drained
	Crashes     int
	Recoveries  int
	Broadcasts  int // broadcast attempts that were admitted
	Delivered   int // distinct payloads the always-up process delivered
	Reaped      int // retired groups reclaimed by the floor-gated reap
	CursorLen   int // deliveries the run-long cursor streamed at p0
	GCForced    uint64
}

func (r ReshardSoakResult) String() string {
	return fmt.Sprintf("joins=%d retirements=%d crashes=%d recoveries=%d broadcasts=%d delivered=%d reaped=%d cursor=%d gc-forced=%d",
		r.Joins, r.Retirements, r.Crashes, r.Recoveries, r.Broadcasts, r.Delivered, r.Reaped, r.CursorLen, r.GCForced)
}

// reshardRecorders owns the per-group specification recorders of a
// resharding soak. Group sets are dynamic, so recorders are minted on
// first sight; marker payloads and identity-remapped orphans originate
// inside the protocol, so the first delivery sighting of an unknown id
// registers it as its own broadcast (position accounting — contiguity and
// the global bijection — is what carries Total Order and Integrity; the
// recorder's payload check still pins every process to identical bytes).
type reshardRecorders struct {
	mu     sync.Mutex
	n      int
	recs   map[ids.GroupID]*check.Recorder
	known  map[ids.GroupID]map[ids.MsgID]bool
	events map[ids.GroupID]map[ids.ProcessID]int // deliver+restore events recorded
	seen   []map[string]bool                     // per pid: payloads ever delivered to it
}

func newReshardRecorders(n int) *reshardRecorders {
	rr := &reshardRecorders{
		n:      n,
		recs:   make(map[ids.GroupID]*check.Recorder),
		known:  make(map[ids.GroupID]map[ids.MsgID]bool),
		events: make(map[ids.GroupID]map[ids.ProcessID]int),
		seen:   make([]map[string]bool, n),
	}
	for p := range rr.seen {
		rr.seen[p] = make(map[string]bool)
	}
	return rr
}

// rec returns group g's recorder, minting it on first sight. rr.mu held.
func (rr *reshardRecorders) rec(g ids.GroupID) *check.Recorder {
	r, ok := rr.recs[g]
	if !ok {
		r = check.NewRecorder(rr.n)
		rr.recs[g] = r
		rr.known[g] = make(map[ids.MsgID]bool)
		rr.events[g] = make(map[ids.ProcessID]int)
	}
	return r
}

func (rr *reshardRecorders) onDeliver(pid ids.ProcessID) func(abcast.Delivery) {
	return func(d abcast.Delivery) {
		rr.mu.Lock()
		r := rr.rec(d.Group)
		if !rr.known[d.Group][d.Msg.ID] {
			rr.known[d.Group][d.Msg.ID] = true
			r.RecordBroadcast(d.Msg.ID, d.Msg.Payload)
		}
		rr.events[d.Group][pid]++
		rr.seen[pid][string(d.Msg.Payload)] = true
		rr.mu.Unlock()
		r.OnDeliver(pid)(d)
	}
}

func (rr *reshardRecorders) onRestore(pid ids.ProcessID) func(abcast.GroupID, abcast.Snapshot) {
	return func(g abcast.GroupID, snap abcast.Snapshot) {
		rr.mu.Lock()
		r := rr.rec(g)
		rr.events[g][pid]++
		rr.mu.Unlock()
		r.OnRestore(pid)(snap)
	}
}

// startSessions opens one incarnation history per hosted group. With the
// empty-session reuse in check.Recorder this is restart-count-free: idle
// groups do not accumulate history objects (the leak assertion below).
func (rr *reshardRecorders) startSessions(pid ids.ProcessID, groups int) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	for g := 0; g < groups; g++ {
		rr.rec(ids.GroupID(g)).StartSession(pid)
	}
}

// verify runs every group's specification check plus the recorder-leak
// growth bound: sessions partition recorded events, so a recorder may
// retain at most one session more than the events it recorded for a pid.
func (rr *reshardRecorders) verify() error {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	for g, r := range rr.recs {
		if err := r.Verify(); err != nil {
			return fmt.Errorf("group %v: %w", g, err)
		}
		for p := 0; p < rr.n; p++ {
			pid := ids.ProcessID(p)
			if s, e := r.Sessions(pid), rr.events[g][pid]; s > e+1 {
				return fmt.Errorf("group %v: recorder leak: p%d retains %d sessions for %d events", g, p, s, e)
			}
		}
	}
	return nil
}

// delivered reports whether pid has ever delivered payload (in any group,
// under any identity — orphan re-injection remaps ids but not bytes).
func (rr *reshardRecorders) delivered(pid ids.ProcessID, payload string) bool {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return rr.seen[pid][payload]
}

func (rr *reshardRecorders) deliveredCount(pid ids.ProcessID) int {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return len(rr.seen[pid])
}

// foldCount is the trivial application checkpointer of the soak: state is
// a message count, so folds are cheap and restores are content-free.
type foldCount struct{}

func (foldCount) Checkpoint(prev []byte, delivered []abcast.Message) []byte {
	var n uint64
	if len(prev) == 8 {
		n = binary.BigEndian.Uint64(prev)
	}
	n += uint64(len(delivered))
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, n)
	return out
}

func (foldCount) Restore([]byte) {}

// RunReshardSoak executes one randomized live-resharding soak and returns
// the verification error, if any. The run is a pure function of Seed
// (plus goroutine interleavings).
//
// Verified at the end, after every process recovers and the cluster
// drains:
//
//   - every group's history satisfies the Atomic Broadcast specification
//     (position contiguity + the global position/message bijection =
//     Integrity and Total Order; byte-identical payloads everywhere);
//   - every admitted broadcast is delivered by every process, across
//     however many retirements re-injected it (Termination);
//   - the merged orders of all processes agree across every epoch splice,
//     and the run-long streaming cursor at the never-crashed process is
//     byte-identical to what batch Merged reconstructs;
//   - no process ever served a GC-forced state transfer: the gossiped
//     cluster floor kept checkpoint folds behind the slowest recoverer
//     (the staleness cap exceeds the run length, so laggards always
//     gate);
//   - the observability conservation laws, including the reshard-event
//     edge-detection laws, hold on every process's plane.
func RunReshardSoak(opts ReshardSoakOptions) (ReshardSoakResult, error) {
	opts.fill()
	var res ReshardSoakResult
	rng := rand.New(rand.NewSource(int64(opts.Seed)))

	net := abcast.NewMemNetwork(opts.N, abcast.MemNetOptions{Seed: opts.Seed})
	defer net.Close()
	snet := abcast.NewShardedNetwork(net, opts.Groups)
	stores := make([]abcast.Storage, opts.N)
	planes := make([]*obs.Plane, opts.N)
	for p := 0; p < opts.N; p++ {
		stores[p] = abcast.NewMemStorage()
		planes[p] = obs.New(obs.Options{PID: ids.ProcessID(p)})
	}
	rr := newReshardRecorders(opts.N)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	procs := make([]*abcast.Sharded, opts.N)
	build := func(p int) error {
		pid := ids.ProcessID(p)
		s, err := abcast.NewSharded(abcast.ShardedConfig{
			PID: pid, N: opts.N,
			Protocol: abcast.ProtocolOptions{
				PipelineDepth:   2,
				IdleHeartbeat:   2 * time.Millisecond,
				CheckpointEvery: 8,
				Checkpointer:    foldCount{},
				// Δ-triggered state transfer is the ordinary catch-up
				// lane for recoverers; the cluster floor only has to
				// eliminate the GC-FORCED kind.
				Delta: 8,
			},
			MergedDelivery:      true,
			MergeFloorStaleness: opts.Stale,
			Obs:                 planes[p],
			OnDeliver:           rr.onDeliver(pid),
			OnRestore:           rr.onRestore(pid),
		}, stores[p], snet)
		if err != nil {
			return err
		}
		procs[p] = s
		// Sessions open BEFORE Start: replay calls OnRestore/OnDeliver, and
		// those must land in this incarnation's history, not the crashed
		// one's.
		rr.startSessions(pid, s.Groups())
		if err := s.Start(ctx); err != nil {
			return err
		}
		return nil
	}
	for p := 0; p < opts.N; p++ {
		if err := build(p); err != nil {
			return res, fmt.Errorf("reshard soak seed=%d: start p%d: %w", opts.Seed, p, err)
		}
	}
	defer func() {
		for _, s := range procs {
			if s != nil {
				s.Crash()
			}
		}
	}()

	// The run-long streaming consumer: subscribed before any fault or
	// reshard, diffed against the batch merge at the end. It lives on p0,
	// which the schedule never crashes.
	cursor, err := procs[0].MergeCursor()
	if err != nil {
		return res, fmt.Errorf("reshard soak seed=%d: cursor: %w", opts.Seed, err)
	}
	defer cursor.Close()

	// Shadow bookkeeping the schedule steers by.
	down := -1                            // crashed pid (at most one; never 0)
	retired := make(map[ids.GroupID]bool) // groups sealed by this run
	admitted := make(map[string]bool)     // payloads owed delivery everywhere
	minted := opts.Groups

	upProcs := func() []int {
		var up []int
		for p := 0; p < opts.N; p++ {
			if p != down {
				up = append(up, p)
			}
		}
		return up
	}
	activeGroups := func() []ids.GroupID {
		var a []ids.GroupID
		for _, g := range procs[0].ActiveGroups() {
			if !retired[g] {
				a = append(a, g)
			}
		}
		return a
	}
	broadcast := func(step int) {
		for j := 0; j < 4; j++ {
			up := upProcs()
			p := up[rng.Intn(len(up))]
			key := fmt.Sprintf("k-%d-%d-%d", opts.Seed, step, j)
			payload := []byte(fmt.Sprintf("m-%d-%d-%d", opts.Seed, step, j))
			bctx, bcancel := context.WithTimeout(ctx, 10*time.Second)
			_, _, err := procs[p].Broadcast(bctx, []byte(key), payload)
			bcancel()
			if err == nil {
				admitted[string(payload)] = true
				res.Broadcasts++
			}
		}
	}
	checkpointAll := func() {
		for _, p := range upProcs() {
			_ = procs[p].CheckpointNow() // a group may be mid-boot after a splice; best-effort
		}
	}
	recoverProc := func() error {
		if down < 0 {
			return nil
		}
		p := down
		down = -1
		if err := build(p); err != nil {
			return fmt.Errorf("recover p%d: %w", p, err)
		}
		res.Recoveries++
		// Re-run the idempotent retirement tail on the recovered process:
		// its incarnation may hold orphans of a group the cluster drained
		// while it was down, and only a local RetireGroup re-injects them.
		// A group the floor-gated reap already reclaimed has no orphans by
		// construction (every consumer passed its final round).
		for g := range retired {
			rctx, rcancel := context.WithTimeout(ctx, 30*time.Second)
			// The recovered process may still be resynchronizing its
			// topology from the floor gossip; retiring before it knows
			// the group would bounce off "not in the topology".
			if err := awaitKnown(rctx, procs[p], g); err != nil {
				rcancel()
				return fmt.Errorf("recovered p%d never learned %v: %w", p, g, err)
			}
			err := procs[p].RetireGroup(rctx, g)
			rcancel()
			if err != nil && !strings.Contains(err.Error(), "reaped") {
				detail := ""
				for q := 0; q < opts.N; q++ {
					if procs[q] != nil {
						detail += fmt.Sprintf(" p%d{k=%d active=%v epoch=%d}", q, procs[q].Round(g), procs[q].ActiveGroups(), procs[q].Epoch())
					}
				}
				return fmt.Errorf("re-retire %v at recovered p%d: %w:%s", g, p, err, detail)
			}
		}
		return nil
	}

	// The deterministic lagging-recoverer phase sits mid-schedule: crash a
	// process, fold checkpoints on the survivors for several steps, then
	// recover it. With the staleness cap far beyond the run length, the
	// gossiped floor must have held every fold behind the laggard — the
	// GCForced == 0 assertion at the end is this phase's teeth.
	lagStart := opts.Steps / 3

	for step := 0; step < opts.Steps; step++ {
		if step == lagStart {
			if err := recoverProc(); err != nil {
				return res, fmt.Errorf("reshard soak seed=%d: %w", opts.Seed, err)
			}
			down = 1 + rng.Intn(opts.N-1)
			procs[down].Crash()
			res.Crashes++
			broadcast(step)
			checkpointAll()
			continue
		}
		if step == lagStart+3 {
			if err := recoverProc(); err != nil {
				return res, fmt.Errorf("reshard soak seed=%d: %w", opts.Seed, err)
			}
		}

		switch pick := rng.Intn(10); {
		case pick < 4:
			broadcast(step)
		case pick < 5: // crash (never p0, at most one down, not during the lag phase)
			if down < 0 && (step < lagStart || step > lagStart+3) {
				down = 1 + rng.Intn(opts.N-1)
				procs[down].Crash()
				res.Crashes++
			} else {
				broadcast(step)
			}
		case pick < 6:
			if err := recoverProc(); err != nil {
				return res, fmt.Errorf("reshard soak seed=%d: %w", opts.Seed, err)
			}
		case pick < 8: // scale-out
			if minted >= opts.MaxGroups {
				broadcast(step)
				break
			}
			caller := upProcs()[rng.Intn(len(upProcs()))]
			actx, acancel := context.WithTimeout(ctx, 30*time.Second)
			gid, err := procs[caller].AddGroup(actx)
			acancel()
			if err != nil {
				return res, fmt.Errorf("reshard soak seed=%d step=%d: AddGroup at p%d: %w", opts.Seed, step, caller, err)
			}
			minted++
			res.Joins++
			// Wait for every up process to splice the group in before the
			// schedule moves on (the next op may retire it).
			wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
			err = awaitSpliced(wctx, procs, upProcs(), gid)
			wcancel()
			if err != nil {
				return res, fmt.Errorf("reshard soak seed=%d step=%d: splice of %v: %w", opts.Seed, step, gid, err)
			}
		case pick < 9: // retire
			active := activeGroups()
			if len(active) < 2 {
				broadcast(step)
				break
			}
			g := active[rng.Intn(len(active))]
			// Feed the group a last burst on the async path so the drain
			// has orphan candidates to re-inject.
			for j := 0; j < 3; j++ {
				payload := []byte(fmt.Sprintf("o-%d-%d-%d", opts.Seed, step, j))
				if _, err := procs[upProcs()[j%len(upProcs())]].BroadcastToAsync(g, payload); err == nil {
					admitted[string(payload)] = true
					res.Broadcasts++
				}
			}
			for _, p := range upProcs() {
				rctx, rcancel := context.WithTimeout(ctx, 30*time.Second)
				// A process that recovered after the join learns the group
				// from the floor gossip's topology descriptor — wait for
				// that splice (and its node boot) before asking it to
				// retire.
				if err := awaitKnown(rctx, procs[p], g); err != nil {
					rcancel()
					return res, fmt.Errorf("reshard soak seed=%d step=%d: p%d never learned %v: %w", opts.Seed, step, p, g, err)
				}
				err := procs[p].RetireGroup(rctx, g)
				rcancel()
				if err != nil && !strings.Contains(err.Error(), "reaped") {
					detail := ""
					for q := 0; q < opts.N; q++ {
						if procs[q] != nil {
							detail += fmt.Sprintf(" p%d{groups=%d active=%v epoch=%d k=%d}", q, procs[q].Groups(), procs[q].ActiveGroups(), procs[q].Epoch(), procs[q].Round(g))
						}
					}
					return res, fmt.Errorf("reshard soak seed=%d step=%d: RetireGroup(%v) at p%d: %w:%s", opts.Seed, step, g, p, err, detail)
				}
			}
			retired[g] = true
			res.Retirements++
		default:
			checkpointAll()
		}
	}

	// Drain: everyone up, every admitted payload delivered everywhere.
	if err := recoverProc(); err != nil {
		return res, fmt.Errorf("reshard soak seed=%d: %w", opts.Seed, err)
	}
	drainCtx, drainCancel := context.WithTimeout(ctx, opts.DrainTimeout)
	defer drainCancel()
	for {
		missing := ""
		for p := 0; p < opts.N; p++ {
			for payload := range admitted {
				if !rr.delivered(ids.ProcessID(p), payload) {
					missing = fmt.Sprintf("p%d missing %q", p, payload)
					break
				}
			}
		}
		if missing == "" {
			break
		}
		select {
		case <-drainCtx.Done():
			return res, fmt.Errorf("reshard soak seed=%d: termination: %s", opts.Seed, missing)
		case <-time.After(2 * time.Millisecond):
		}
	}
	res.Delivered = rr.deliveredCount(0)

	// Per-group specification + recorder-leak growth bound.
	if err := rr.verify(); err != nil {
		return res, fmt.Errorf("reshard soak seed=%d: %w", opts.Seed, err)
	}

	// Cross-group: merged orders agree across every epoch splice, and the
	// run-long cursor streamed exactly the batch interleave. Frontiers
	// converge asynchronously, so poll under the drain deadline.
	var streamed []abcast.Delivery
	for {
		err := func() error {
			if err := verifyMergedAgreement(procs); err != nil {
				return err
			}
			streamed, err = cursor.Next(streamed)
			if err != nil {
				return fmt.Errorf("cursor: %w", err)
			}
			return verifyCursorMatchesBatch(procs[0], streamed)
		}()
		if err == nil {
			break
		}
		select {
		case <-drainCtx.Done():
			return res, fmt.Errorf("reshard soak seed=%d: merge verification: %w", opts.Seed, err)
		case <-time.After(2 * time.Millisecond):
		}
	}
	res.CursorLen = len(streamed)

	// The cluster-wide GC floor held every fold behind the lagging
	// recoverer: nobody was ever forced into a state transfer by GC.
	for p := 0; p < opts.N; p++ {
		res.GCForced += procs[p].Stats().Total.StateSentGCForced
	}
	if res.GCForced != 0 {
		detail := ""
		for p := 0; p < opts.N; p++ {
			for _, e := range planes[p].Flight().Dump() {
				if e.Kind == obs.EvStateSent && e.Note == "peer below gc floor" {
					detail += fmt.Sprintf(" [p%d g%v k=%d to=p%d kq=%d]", p, e.Group, e.Round, e.A, e.B)
				}
			}
		}
		return res, fmt.Errorf("reshard soak seed=%d: %d GC-forced state transfers despite the staleness cap:%s", opts.Seed, res.GCForced, detail)
	}

	// Give the floor-gated reap one chance to fire (not asserted: remote
	// floors may legitimately still lag the final rounds).
	for p := 0; p < opts.N; p++ {
		res.Reaped += procs[p].ReapRetired()
	}

	if err := verifyObsInvariants(planes); err != nil {
		return res, fmt.Errorf("reshard soak seed=%d: %w", opts.Seed, err)
	}
	return res, nil
}

// awaitSpliced waits until every up process's topology includes g AND its
// auto-spliced member node has finished booting (ensureGroups boots the
// node asynchronously on marker arrival; a retire that races the boot
// would seal a group whose member is still calling Start).
func awaitSpliced(ctx context.Context, procs []*abcast.Sharded, up []int, g ids.GroupID) error {
	for {
		all := true
		for _, p := range up {
			found := false
			for _, a := range procs[p].ActiveGroups() {
				if a == g {
					found = true
				}
			}
			if !found || procs[p].Groups() <= int(g) || !procs[p].Up() {
				all = false
			}
		}
		if all {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// awaitKnown waits until one process's TOPOLOGY knows g (node-set size is
// not enough: the shared network grows it early), its node set covers g,
// and every node it hosts is up (the floor gossip's descriptor splices
// late groups in; the boot is asynchronous).
func awaitKnown(ctx context.Context, p *abcast.Sharded, g ids.GroupID) error {
	for {
		if p.InTopology(g) && p.Groups() > int(g) && p.Up() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// verifyMergedAgreement checks that all processes' merged orders agree on
// the global rounds they share (folds differ per process, so each pair is
// compared above both fold horizons).
func verifyMergedAgreement(procs []*abcast.Sharded) error {
	type view struct {
		seq  []abcast.Delivery
		from uint64
	}
	views := make([]view, len(procs))
	for p, s := range procs {
		m, from, _, ok := s.Merged()
		if !ok {
			return fmt.Errorf("merge unavailable at p%d", p)
		}
		views[p] = view{m, from}
	}
	for i := 0; i < len(views); i++ {
		for j := i + 1; j < len(views); j++ {
			f := views[i].from
			if views[j].from > f {
				f = views[j].from
			}
			a := trimBelow(views[i].seq, f)
			b := trimBelow(views[j].seq, f)
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			for k := 0; k < n; k++ {
				if a[k].Group != b[k].Group || a[k].Msg.ID != b[k].Msg.ID || a[k].Round != b[k].Round {
					return fmt.Errorf("merged orders disagree at shared round %d: p%d=%v/%v p%d=%v/%v",
						a[k].Round, i, a[k].Group, a[k].Msg.ID, j, b[k].Group, b[k].Msg.ID)
				}
			}
		}
	}
	return nil
}

func trimBelow(seq []abcast.Delivery, round uint64) []abcast.Delivery {
	for i, d := range seq {
		if d.Round >= round {
			return seq[i:]
		}
	}
	return nil
}

// verifyCursorMatchesBatch diffs the run-long cursor's stream against the
// batch merge at its process: above the fold horizon they must be
// byte-identical, and the cursor must additionally hold the pre-fold
// prefix the batch can no longer reconstruct.
func verifyCursorMatchesBatch(s *abcast.Sharded, streamed []abcast.Delivery) error {
	batch, from, _, ok := s.Merged()
	if !ok {
		return fmt.Errorf("batch merge unavailable")
	}
	aligned := trimBelow(streamed, from)
	if len(aligned) != len(batch) {
		return fmt.Errorf("cursor covers %d deliveries above round %d, batch %d", len(aligned), from, len(batch))
	}
	for i := range batch {
		if aligned[i].Group != batch[i].Group || aligned[i].Msg.ID != batch[i].Msg.ID ||
			aligned[i].Pos != batch[i].Pos || aligned[i].Round != batch[i].Round {
			return fmt.Errorf("cursor and batch merge disagree at %d: %+v vs %+v", i, aligned[i], batch[i])
		}
	}
	return nil
}
