package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates experiment rows and prints them fixed-width, the way
// EXPERIMENTS.md records paper-versus-measured results.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Print writes the table to w.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	var sb strings.Builder
	for i, h := range t.Headers {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	sb.Reset()
	for i := range t.Headers {
		sb.WriteString(strings.Repeat("-", widths[i]))
		sb.WriteString("  ")
	}
	fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	for _, row := range t.Rows {
		sb.Reset()
		for i, cell := range row {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s  ", width, cell)
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}
