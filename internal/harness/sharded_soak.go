package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/ids"
	"repro/internal/storage"
)

// ShardedSoakOptions configures one randomized crash-recovery soak over a
// sharded multi-group cluster: the seeded schedule (shared with RunSoak)
// crashes and recovers whole processes (every group at once) and arms
// process-level storage faults below the group namespaces, while
// closed-loop senders spread the broadcast workload over every group. The
// final verification is per group — each group must satisfy the full
// Atomic Broadcast specification — plus the cross-group merge determinism
// check.
type ShardedSoakOptions struct {
	// Seed drives the whole schedule. Required; 0 picks the default.
	Seed uint64
	// N is the process count (default 3); Groups the ordering-group count
	// (default 2).
	N      int
	Groups int
	// Steps is the number of fault-schedule steps (default 40).
	Steps int
	// Msgs is the number of broadcast attempts across the run (default
	// 120), spread round-robin over the groups.
	Msgs int
	// Payload is the broadcast payload size in bytes (default 32).
	Payload int
	// MaxDown caps how many processes may be down simultaneously
	// (default N-1).
	MaxDown int
	// Core selects the protocol variant under test. Checkpointing and
	// state transfer must stay off (the merge determinism check needs
	// the full per-group suffixes); RunShardedSoak rejects them.
	Core core.Config
	// Mux tunes the multiplexer's write coalescing (zero = none), so the
	// soak can exercise the coalesced data plane under crash/recovery.
	Mux group.MuxOptions
	// NewStore, when set, supplies each process's shared engine (all
	// groups in namespaces of it); default in-memory.
	NewStore func(ids.ProcessID) storage.Stable
	// DrainTimeout bounds the final catch-up-and-verify phase (default
	// 60s).
	DrainTimeout time.Duration
}

func (o *ShardedSoakOptions) fill() {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.N <= 0 {
		o.N = 3
	}
	if o.Groups <= 0 {
		o.Groups = 2
	}
	if o.Steps <= 0 {
		o.Steps = 40
	}
	if o.Msgs <= 0 {
		o.Msgs = 120
	}
	if o.Payload <= 0 {
		o.Payload = 32
	}
	if o.MaxDown <= 0 || o.MaxDown >= o.N {
		o.MaxDown = o.N - 1
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 60 * time.Second
	}
}

// ShardedSoakResult summarizes what one sharded soak run exercised.
type ShardedSoakResult struct {
	Crashes       int
	Recoveries    int
	StorageFaults int
	Broadcasts    int
	Returned      int // across all groups
	Delivered     int // distinct messages across all groups' final orders
	MergedRounds  uint64
}

func (r ShardedSoakResult) String() string {
	return fmt.Sprintf("crashes=%d recoveries=%d storage-faults=%d broadcasts=%d returned=%d delivered=%d merged-rounds=%d",
		r.Crashes, r.Recoveries, r.StorageFaults, r.Broadcasts, r.Returned, r.Delivered, r.MergedRounds)
}

// shardedTarget adapts a ShardedCluster to the soak engine: crash and
// recovery act on whole processes, and the workload walks the groups
// round-robin (offset per sender) so every group sees traffic — merge
// liveness needs every group to keep deciding rounds.
type shardedTarget struct{ c *ShardedCluster }

func (t shardedTarget) Crash(pid ids.ProcessID) { t.c.Crash(pid) }
func (t shardedTarget) Recover(pid ids.ProcessID) (time.Duration, error) {
	return t.c.Recover(pid)
}
func (t shardedTarget) ProcessUp(pid ids.ProcessID) bool        { return t.c.Up(pid) }
func (t shardedTarget) Fault(pid ids.ProcessID) *storage.Faulty { return t.c.Faults[pid] }
func (t shardedTarget) Broadcast(ctx context.Context, pid ids.ProcessID, msgIndex int, payload []byte) (ids.MsgID, error) {
	g := ids.GroupID((msgIndex + int(pid)) % t.c.Opts.Groups)
	return t.c.Broadcast(ctx, pid, g, payload)
}

// RunShardedSoak executes one randomized sharded crash-recovery soak and
// returns the verification error, if any. Every run is a pure function of
// Seed (plus goroutine interleavings), like RunSoak.
func RunShardedSoak(opts ShardedSoakOptions) (ShardedSoakResult, error) {
	opts.fill()
	var res ShardedSoakResult
	if opts.Core.CheckpointEvery > 0 || opts.Core.Delta > 0 || opts.Core.Checkpointer != nil {
		return res, fmt.Errorf("sharded soak: checkpointing/state transfer fold the delivered prefix away, which breaks the merge determinism check — run those variants through RunSoak")
	}

	c := NewShardedCluster(ShardedOptions{
		N:                   opts.N,
		Groups:              opts.Groups,
		Seed:                opts.Seed,
		Net:                 DefaultLossyNet(opts.Seed),
		Core:                opts.Core,
		Mux:                 opts.Mux,
		InjectFaultyStorage: true,
		NewStore:            opts.NewStore,
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return res, fmt.Errorf("sharded soak seed=%d: start: %w", opts.Seed, err)
	}

	counts, drainCtx, cancel, err := runSoakSchedule(soakSchedule{
		seed:         opts.Seed,
		n:            opts.N,
		steps:        opts.Steps,
		msgs:         opts.Msgs,
		payload:      opts.Payload,
		maxDown:      opts.MaxDown,
		drainTimeout: opts.DrainTimeout,
	}, shardedTarget{c})
	res = ShardedSoakResult{
		Crashes:       counts.crashes,
		Recoveries:    counts.recoveries,
		StorageFaults: counts.storageFaults,
		Broadcasts:    counts.broadcasts,
	}
	if err != nil {
		return res, fmt.Errorf("sharded soak seed=%d: %w", opts.Seed, err)
	}
	defer cancel()
	for _, rec := range c.Recs {
		res.Returned += len(rec.ReturnedBroadcasts())
	}

	var all []ids.ProcessID
	for p := 0; p < opts.N; p++ {
		all = append(all, ids.ProcessID(p))
	}
	if err := c.AwaitAllDelivered(drainCtx, all...); err != nil {
		return res, fmt.Errorf("sharded soak seed=%d: drain: %w", opts.Seed, err)
	}
	for _, rec := range c.Recs {
		res.Delivered += len(rec.DeliveredAnywhere())
	}
	if err := c.VerifyMergeDeterminism(all...); err != nil {
		return res, fmt.Errorf("sharded soak seed=%d: %w", opts.Seed, err)
	}
	if _, rounds, ok := c.MergedAt(0); ok {
		res.MergedRounds = rounds
	}
	if err := awaitSharedFDConvergence(drainCtx, c, all); err != nil {
		return res, fmt.Errorf("sharded soak seed=%d: %w", opts.Seed, err)
	}
	return res, nil
}

// awaitSharedFDConvergence asserts the shared-FD recovery contract after
// every process came back up: each process's one detector must re-trust
// every peer at that peer's CURRENT process-level epoch — a crashed and
// recovered process advertises a higher epoch and all groups' facades see
// the re-trust at once (they read the same detector). Heartbeats are
// periodic, so the check polls until the views converge.
func awaitSharedFDConvergence(ctx context.Context, c *ShardedCluster, all []ids.ProcessID) error {
	for {
		converged := true
		var detail string
		for _, p := range all {
			fdP := c.FD(p)
			if fdP == nil {
				return fmt.Errorf("shared fd: p%v has no detector while up", p)
			}
			for _, q := range all {
				fdQ := c.FD(q)
				if fdQ == nil {
					return fmt.Errorf("shared fd: p%v has no detector while up", q)
				}
				want := fdQ.Detector().SelfEpoch()
				// Every group's facade reads the shared state; check one
				// per group to pin the facade path itself.
				for g := 0; g < c.Opts.Groups; g++ {
					v := fdP.View(ids.GroupID(g))
					if v.Epoch(q) != want || v.Suspects(q) {
						converged = false
						detail = fmt.Sprintf("p%v g%d sees p%v at epoch %d (want %d), suspected=%v",
							p, g, q, v.Epoch(q), want, v.Suspects(q))
					}
				}
			}
		}
		if converged {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("shared fd never converged: %s: %w", detail, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}
