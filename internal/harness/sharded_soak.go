package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/ids"
	"repro/internal/storage"
)

// ShardedSoakOptions configures one randomized crash-recovery soak over a
// sharded multi-group cluster: the seeded schedule (shared with RunSoak)
// crashes and recovers whole processes (every group at once) and arms
// process-level storage faults below the group namespaces, while
// closed-loop senders spread the broadcast workload over every group. The
// final verification is per group — each group must satisfy the full
// Atomic Broadcast specification — plus the cross-group merge determinism
// check.
type ShardedSoakOptions struct {
	// Seed drives the whole schedule. Required; 0 picks the default.
	Seed uint64
	// N is the process count (default 3); Groups the ordering-group count
	// (default 2).
	N      int
	Groups int
	// Steps is the number of fault-schedule steps (default 40).
	Steps int
	// Msgs is the number of broadcast attempts across the run (default
	// 120), spread round-robin over the groups.
	Msgs int
	// Payload is the broadcast payload size in bytes (default 32).
	Payload int
	// MaxDown caps how many processes may be down simultaneously
	// (default N-1).
	MaxDown int
	// Core selects the protocol variant under test. Application
	// checkpointing (CheckpointEvery + Checkpointer) is supported: the
	// cluster then runs the merged-mode checkpointing discipline (each
	// group's folds gated by the process-wide merge frontier), and the
	// final phase force-folds and re-verifies the merge over genuinely
	// checkpointed prefixes. Δ-triggered state transfer must stay off —
	// an adoption skips rounds wholesale, which no merge consumer can
	// reconstruct; RunShardedSoak rejects it.
	Core core.Config
	// Consensus extends every group's consensus engine configuration —
	// notably the stable-sequencer lease (PID/N/Seed filled per node).
	Consensus consensus.Config
	// Optimistic runs the soak against the optimistic-delivery contract
	// (see SoakOptions.Optimistic): per-process tentative tracking over
	// every group, plus lease revocations and injected fsync latency in
	// the schedule. The merge stream is unaffected — it carries only
	// confirmed rounds.
	Optimistic bool
	// Mux tunes the multiplexer's write coalescing (zero = none), so the
	// soak can exercise the coalesced data plane under crash/recovery.
	Mux group.MuxOptions
	// NewStore, when set, supplies each process's shared engine (all
	// groups in namespaces of it); default in-memory.
	NewStore func(ids.ProcessID) storage.Stable
	// DrainTimeout bounds the final catch-up-and-verify phase (default
	// 60s).
	DrainTimeout time.Duration
}

func (o *ShardedSoakOptions) fill() {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.N <= 0 {
		o.N = 3
	}
	if o.Groups <= 0 {
		o.Groups = 2
	}
	if o.Steps <= 0 {
		o.Steps = 40
	}
	if o.Msgs <= 0 {
		o.Msgs = 120
	}
	if o.Payload <= 0 {
		o.Payload = 32
	}
	if o.MaxDown <= 0 || o.MaxDown >= o.N {
		o.MaxDown = o.N - 1
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 60 * time.Second
	}
}

// ShardedSoakResult summarizes what one sharded soak run exercised.
type ShardedSoakResult struct {
	Crashes       int
	Recoveries    int
	StorageFaults int
	Broadcasts    int
	Returned      int // across all groups
	Delivered     int // distinct messages across all groups' final orders
	MergedRounds  uint64
	FoldedRounds  uint64 // rounds folded into base checkpoints (p0, summed over groups)
	CursorMerged  int    // deliveries streamed by p0's cursor (== batch merge length)
	CursorResyncs int    // cursor resubscriptions after GC-forced state transfers
	LeaseRevokes  int    // lease revocations the schedule injected (Optimistic)
	Tentatives    int    // tentative deliveries observed across groups (Optimistic)
	Confirmed     int    // tentatives certified against the authoritative order
	Revoked       int    // tentatives retracted by OnRevoke
}

func (r ShardedSoakResult) String() string {
	s := fmt.Sprintf("crashes=%d recoveries=%d storage-faults=%d broadcasts=%d returned=%d delivered=%d merged-rounds=%d folded-rounds=%d cursor-merged=%d cursor-resyncs=%d",
		r.Crashes, r.Recoveries, r.StorageFaults, r.Broadcasts, r.Returned, r.Delivered, r.MergedRounds, r.FoldedRounds, r.CursorMerged, r.CursorResyncs)
	if r.Tentatives > 0 {
		s += fmt.Sprintf(" lease-revokes=%d tentative=%d confirmed=%d revoked=%d",
			r.LeaseRevokes, r.Tentatives, r.Confirmed, r.Revoked)
	}
	return s
}

// shardedTarget adapts a ShardedCluster to the soak engine: crash and
// recovery act on whole processes, and the workload walks the groups
// round-robin (offset per sender) so every group sees traffic — merge
// liveness needs every group to keep deciding rounds.
type shardedTarget struct{ c *ShardedCluster }

func (t shardedTarget) Crash(pid ids.ProcessID) { t.c.Crash(pid) }
func (t shardedTarget) Recover(pid ids.ProcessID) (time.Duration, error) {
	return t.c.Recover(pid)
}
func (t shardedTarget) ProcessUp(pid ids.ProcessID) bool        { return t.c.Up(pid) }
func (t shardedTarget) Fault(pid ids.ProcessID) *storage.Faulty { return t.c.Faults[pid] }
func (t shardedTarget) RevokeLease(pid ids.ProcessID) {
	for _, n := range t.c.Nodes[pid] {
		if e := n.Engine(); e != nil {
			e.RevokeLease()
		}
	}
}
func (t shardedTarget) Broadcast(ctx context.Context, pid ids.ProcessID, msgIndex int, payload []byte) (ids.MsgID, error) {
	g := ids.GroupID((msgIndex + int(pid)) % t.c.Opts.Groups)
	return t.c.Broadcast(ctx, pid, g, payload)
}

// RunShardedSoak executes one randomized sharded crash-recovery soak and
// returns the verification error, if any. Every run is a pure function of
// Seed (plus goroutine interleavings), like RunSoak.
//
// Beyond the per-group specification checks, the final phase verifies the
// streaming merge against the batch merge: a cursor subscribed at every
// process before the faults begin must, after the drain, have streamed a
// sequence byte-identical to what batch Merge reconstructs — across every
// crash, recovery and (in the checkpointing variant) merge-floor-gated
// fold the schedule produced. With a Checkpointer configured the run then
// force-folds every group under the merge floor, asserts the folds
// actually reclaimed delivered prefix (bounded state), and re-verifies
// merge determinism plus a freshly subscribed cursor over the folded
// state.
func RunShardedSoak(opts ShardedSoakOptions) (ShardedSoakResult, error) {
	opts.fill()
	var res ShardedSoakResult
	if opts.Core.Delta > 0 {
		return res, fmt.Errorf("sharded soak: Δ state transfer skips rounds wholesale, which no merge consumer can reconstruct — run that variant through RunSoak")
	}
	if opts.Core.CheckpointEvery > 0 && opts.Core.Checkpointer == nil {
		return res, fmt.Errorf("sharded soak: CheckpointEvery without a Checkpointer never folds; configure one (the variant under test is merged-mode application checkpointing)")
	}

	shOpts := ShardedOptions{
		N:                   opts.N,
		Groups:              opts.Groups,
		Seed:                opts.Seed,
		Net:                 DefaultLossyNet(opts.Seed),
		Consensus:           opts.Consensus,
		Core:                opts.Core,
		Mux:                 opts.Mux,
		InjectFaultyStorage: true,
		NewStore:            opts.NewStore,
		// The soak consumes merged sequences, so checkpointing runs the
		// merged-mode discipline: folds gated by the merge frontier.
		MergedDelivery: opts.Core.Checkpointer != nil,
	}
	var tracker *optimismTracker
	if opts.Optimistic {
		tracker = newOptimismTracker(opts.N)
		shOpts.OnTentative = tracker.onTentative
		shOpts.OnConfirm = tracker.onConfirm
		shOpts.OnRevoke = tracker.onRevoke
		shOpts.OnDeliver = tracker.onDeliver
		// Crashes are whole-process, so one group's restore clears the
		// process's entire speculative set (all groups died with it).
		shOpts.OnRestore = func(pid ids.ProcessID, _ ids.GroupID, _ core.Snapshot) { tracker.onRestore(pid) }
	}
	c := NewShardedCluster(shOpts)
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return res, fmt.Errorf("sharded soak seed=%d: start: %w", opts.Seed, err)
	}

	// One streaming cursor per process, subscribed before any fault: its
	// output is the differential oracle's counterpart for the whole run.
	// A GC-forced state transfer during the schedule lags a cursor; the
	// verification then checks its pre-lag prefix and resubscribes, the
	// protocol real merged-mode consumers follow.
	cursors := make([]*cursorState, opts.N)
	for p := 0; p < opts.N; p++ {
		cur, err := c.SubscribeMerged(ids.ProcessID(p))
		if err != nil {
			return res, fmt.Errorf("sharded soak seed=%d: subscribe p%d: %w", opts.Seed, p, err)
		}
		cursors[p] = &cursorState{cur: cur}
	}

	counts, drainCtx, cancel, err := runSoakSchedule(soakSchedule{
		seed:         opts.Seed,
		n:            opts.N,
		steps:        opts.Steps,
		msgs:         opts.Msgs,
		payload:      opts.Payload,
		maxDown:      opts.MaxDown,
		drainTimeout: opts.DrainTimeout,
		optimistic:   opts.Optimistic,
	}, shardedTarget{c})
	res = ShardedSoakResult{
		Crashes:       counts.crashes,
		Recoveries:    counts.recoveries,
		StorageFaults: counts.storageFaults,
		Broadcasts:    counts.broadcasts,
		LeaseRevokes:  counts.leaseRevokes,
	}
	if err != nil {
		return res, fmt.Errorf("sharded soak seed=%d: %w", opts.Seed, err)
	}
	defer cancel()
	for _, rec := range c.Recs {
		res.Returned += len(rec.ReturnedBroadcasts())
	}

	var all []ids.ProcessID
	for p := 0; p < opts.N; p++ {
		all = append(all, ids.ProcessID(p))
	}
	if err := c.AwaitAllDelivered(drainCtx, all...); err != nil {
		return res, fmt.Errorf("sharded soak seed=%d: drain: %w", opts.Seed, err)
	}
	for _, rec := range c.Recs {
		res.Delivered += len(rec.DeliveredAnywhere())
	}
	if tracker != nil {
		if err := tracker.awaitSettled(drainCtx); err != nil {
			return res, fmt.Errorf("sharded soak seed=%d: %w", opts.Seed, err)
		}
		res.Tentatives, res.Confirmed, res.Revoked = tracker.counts()
		if err := tracker.err(); err != nil {
			return res, fmt.Errorf("sharded soak seed=%d: %w", opts.Seed, err)
		}
	}
	if err := c.VerifyMergeDeterminism(all...); err != nil {
		return res, fmt.Errorf("sharded soak seed=%d: %w", opts.Seed, err)
	}
	if _, _, rounds, ok := c.MergedAt(0); ok {
		res.MergedRounds = rounds
	}

	// Streaming-vs-batch differential: every process's cursor must have
	// streamed exactly the interleave batch Merge reconstructs.
	for p := 0; p < opts.N; p++ {
		n, err := c.verifyCursorAgainstBatch(drainCtx, ids.ProcessID(p), cursors[p])
		if err != nil {
			return res, fmt.Errorf("sharded soak seed=%d: %w", opts.Seed, err)
		}
		if p == 0 {
			res.CursorMerged = n
		}
		res.CursorResyncs += cursors[p].resyncs
	}

	if opts.Core.Checkpointer != nil {
		folded, err := c.verifyFoldedMerge(drainCtx, all, cursors)
		if err != nil {
			return res, fmt.Errorf("sharded soak seed=%d: %w", opts.Seed, err)
		}
		res.FoldedRounds = folded
	}

	if err := awaitSharedFDConvergence(drainCtx, c, all); err != nil {
		return res, fmt.Errorf("sharded soak seed=%d: %w", opts.Seed, err)
	}
	if err := verifyObsInvariants(c.Obs); err != nil {
		return res, fmt.Errorf("sharded soak seed=%d: %w", opts.Seed, err)
	}
	return res, nil
}

// awaitSharedFDConvergence asserts the shared-FD recovery contract after
// every process came back up: each process's one detector must re-trust
// every peer at that peer's CURRENT process-level epoch — a crashed and
// recovered process advertises a higher epoch and all groups' facades see
// the re-trust at once (they read the same detector). Heartbeats are
// periodic, so the check polls until the views converge.
func awaitSharedFDConvergence(ctx context.Context, c *ShardedCluster, all []ids.ProcessID) error {
	for {
		converged := true
		var detail string
		for _, p := range all {
			fdP := c.FD(p)
			if fdP == nil {
				return fmt.Errorf("shared fd: p%v has no detector while up", p)
			}
			for _, q := range all {
				fdQ := c.FD(q)
				if fdQ == nil {
					return fmt.Errorf("shared fd: p%v has no detector while up", q)
				}
				want := fdQ.Detector().SelfEpoch()
				// Every group's facade reads the shared state; check one
				// per group to pin the facade path itself.
				for g := 0; g < c.Opts.Groups; g++ {
					v := fdP.View(ids.GroupID(g))
					if v.Epoch(q) != want || v.Suspects(q) {
						converged = false
						detail = fmt.Sprintf("p%v g%d sees p%v at epoch %d (want %d), suspected=%v",
							p, g, q, v.Epoch(q), want, v.Suspects(q))
					}
				}
			}
		}
		if converged {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("shared fd never converged: %s: %w", detail, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}
