package harness

import (
	"fmt"
	"testing"
)

// TestSoakSeedsReshard runs the randomized live-resharding soak for a
// fixed set of seeds: scale-outs and retirements interleave with whole-
// process crashes, recoveries and checkpoint folds, and the verification
// demands zero Total Order / Agreement violations per group, Termination
// across orphan re-injection, a merge cursor byte-identical to the batch
// merge across every epoch splice, and zero GC-forced state transfers
// for the lagging recoverer (the cluster-wide floor held folds back).
//
// Reproduce a failure by seed, e.g.
//
//	go test ./internal/harness -run 'TestSoakSeedsReshard/seed=7' -v -count=1
func TestSoakSeedsReshard(t *testing.T) {
	for _, seed := range []uint64{7, 19} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := RunReshardSoak(ReshardSoakOptions{Seed: seed})
			t.Logf("reshard soak: %v", res)
			if err != nil {
				t.Fatalf("reshard soak failed: %v", err)
			}
			if res.Joins == 0 || res.Retirements == 0 {
				t.Fatalf("schedule exercised no resharding (seed too tame?): %v", res)
			}
			if res.Crashes == 0 {
				t.Fatalf("schedule exercised no crashes: %v", res)
			}
		})
	}
}
