// Package harness orchestrates clusters of processes for tests,
// experiments and benchmarks: it owns the simulated network, the per-
// process stable stores (which survive crashes), fault injection, the
// history recorder, and workload/metric helpers.
package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/dissem"
	"repro/internal/fd"
	"repro/internal/ids"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/tune"
)

// Options configures a Cluster. Zero values give a 3-process, fault-free,
// basic-protocol cluster with fast timers.
type Options struct {
	N    int
	Seed uint64
	Net  transport.MemOptions
	// Consensus policy/timing (PID/N/Seed filled per process).
	Consensus consensus.Config
	// Core protocol options (PID/N/Incarnation and the recorder
	// callbacks are filled per process).
	Core core.Config
	FD   fd.Options
	// InjectFaultyStorage wraps each store in a storage.Faulty trigger
	// reachable via Cluster.Faulty.
	InjectFaultyStorage bool
	// NewStore, when set, supplies each process's stable-storage engine
	// (default storage.NewMem). It is still wrapped in the Accounted
	// (and optionally Faulty) layers; engines implementing
	// storage.Closer are closed by Cluster.Stop.
	NewStore func(ids.ProcessID) storage.Stable
	// Transport, when set, replaces the simulated in-memory network
	// (e.g. a TCP loopback cluster); Net is then ignored and
	// Cluster.Net is nil.
	Transport transport.Network
	// OnDeliver/OnRestore, when set, are chained after the recorder's
	// callbacks for each process (application hooks).
	OnDeliver func(ids.ProcessID, core.Delivery)
	OnRestore func(ids.ProcessID, core.Snapshot)
	// OnTentative/OnConfirm/OnRevoke, when set, receive each process's
	// optimistic-delivery stream (the core.Config hooks with the process
	// id prepended). The recorder never sees tentative deliveries — only
	// the authoritative order is checked against the specification.
	OnTentative func(ids.ProcessID, core.Delivery)
	OnConfirm   func(ids.ProcessID, ids.GroupID, uint64)
	OnRevoke    func(ids.ProcessID, ids.GroupID, uint64)
	// App, when set, is invoked per process at each incarnation start
	// with the app-channel binding (see node.Config.App).
	App func(ids.ProcessID, router.Net) router.Handler
	// RingDissem enables the ordering/dissemination split on every node:
	// payloads relay around the successor ring while consensus orders
	// ID+checksum vectors (see node.Config.RingDissem).
	RingDissem bool
	// Ring, when set, supplies each node's dissemination ring directly
	// (node.Config.SharedRing) and implies ring mode; RingDissem is then
	// ignored. Tests use it to inject inert or instrumented rings — e.g.
	// dissem.Inert() to force every remote payload through the pull
	// repair path.
	Ring func(ids.ProcessID) *dissem.Ring
	// Obs is the per-process observability template (PID is filled per
	// process). The zero value gives every process a working plane with
	// default sampling; set SampleRate to 1 in tests that must trace every
	// message.
	Obs obs.Options
	// Adaptive gives every process a closed-loop autotuner (internal/tune)
	// driving its batch delay, pipeline depth and — when the store chain
	// bottoms out in a WAL — group-commit policy, publishing decisions to
	// the process's obs plane. Tune bounds the controller; its zero value
	// uses the tune defaults with the static Core knobs as initial values.
	Adaptive bool
	Tune     tune.Options
}

func (o *Options) fill() {
	if o.N <= 0 {
		o.N = 3
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Net.Seed == 0 {
		o.Net.Seed = o.Seed
	}
	if o.Consensus.RetryMin <= 0 {
		o.Consensus.RetryMin = 3 * time.Millisecond
	}
	if o.Consensus.RetryMax <= 0 {
		o.Consensus.RetryMax = 50 * time.Millisecond
	}
	if o.Core.GossipInterval <= 0 {
		o.Core.GossipInterval = 10 * time.Millisecond
	}
	if o.FD.Heartbeat <= 0 {
		o.FD.Heartbeat = 5 * time.Millisecond
	}
	if o.FD.Timeout <= 0 {
		o.FD.Timeout = 30 * time.Millisecond
	}
}

// DefaultLossyNet returns network options with moderate loss, duplication
// and delay — the adversarial-but-fair channel of §3.1.
func DefaultLossyNet(seed uint64) transport.MemOptions {
	return transport.MemOptions{
		Seed:     seed,
		Loss:     0.05,
		Dup:      0.02,
		MaxDelay: 2 * time.Millisecond,
	}
}

// Cluster is a group of processes over one simulated network.
type Cluster struct {
	Opts   Options
	Net    *transport.Mem // nil when Options.Transport overrides it
	Nodes  []*node.Node
	Stores []*storage.Accounted
	Faults []*storage.Faulty // non-nil only with InjectFaultyStorage
	Rec    *check.Recorder
	// Obs holds each process's observability plane: metrics registry,
	// lifecycle tracer and anomaly flight recorder. Always populated.
	Obs []*obs.Plane
	// Tuners holds each process's adaptive controller (nil entries unless
	// Options.Adaptive). Started and stopped with the process.
	Tuners []*tune.Controller

	net    transport.Network
	inners []storage.Stable // engines from NewStore (closed by Stop)
	ctx    context.Context
	cancel context.CancelFunc
}

// NewCluster builds (but does not start) a cluster.
func NewCluster(opts Options) *Cluster {
	opts.fill()
	c := &Cluster{
		Opts: opts,
		Rec:  check.NewRecorder(opts.N),
	}
	if opts.Transport != nil {
		c.net = opts.Transport
	} else {
		c.Net = transport.NewMem(opts.N, opts.Net)
		c.net = c.Net
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	for p := 0; p < opts.N; p++ {
		pid := ids.ProcessID(p)
		var inner storage.Stable = storage.NewMem()
		if opts.NewStore != nil {
			inner = opts.NewStore(pid)
			c.inners = append(c.inners, inner)
		}
		acct := storage.NewAccounted(inner)
		c.Stores = append(c.Stores, acct)
		var st storage.Stable = acct
		if opts.InjectFaultyStorage {
			f := storage.NewFaulty(acct)
			c.Faults = append(c.Faults, f)
			st = f
		}
		coreCfg := opts.Core
		deliver := c.Rec.OnDeliver(pid)
		restore := c.Rec.OnRestore(pid)
		userDeliver := opts.OnDeliver
		userRestore := opts.OnRestore
		coreCfg.OnDeliver = func(d core.Delivery) {
			deliver(d)
			if userDeliver != nil {
				userDeliver(pid, d)
			}
		}
		coreCfg.OnRestore = func(s core.Snapshot) {
			restore(s)
			if userRestore != nil {
				userRestore(pid, s)
			}
		}
		if userTent := opts.OnTentative; userTent != nil {
			coreCfg.OnTentative = func(d core.Delivery) { userTent(pid, d) }
		}
		if userConfirm := opts.OnConfirm; userConfirm != nil {
			coreCfg.OnConfirm = func(g ids.GroupID, upTo uint64) { userConfirm(pid, g, upTo) }
		}
		if userRevoke := opts.OnRevoke; userRevoke != nil {
			coreCfg.OnRevoke = func(g ids.GroupID, from uint64) { userRevoke(pid, g, from) }
		}
		var appHook func(router.Net) router.Handler
		if opts.App != nil {
			appHook = func(net router.Net) router.Handler {
				return opts.App(pid, net)
			}
		}
		obsOpts := opts.Obs
		obsOpts.PID = pid
		plane := obs.New(obsOpts)
		c.Obs = append(c.Obs, plane)
		if opts.Adaptive {
			// Give the sequencer resize headroom up to the controller's
			// depth cap (the live depth still starts at the static config).
			if m := opts.Tune.Filled().DepthMax; m > coreCfg.MaxPipelineDepth {
				coreCfg.MaxPipelineDepth = m
			}
		}
		ncfg := node.Config{
			PID:        pid,
			N:          opts.N,
			Core:       coreCfg,
			Consensus:  opts.Consensus,
			FD:         opts.FD,
			RingDissem: opts.RingDissem,
			App:        appHook,
			Obs:        plane,
		}
		if opts.Ring != nil {
			p := pid
			ncfg.RingDissem = false
			ncfg.SharedRing = func() *dissem.Ring { return opts.Ring(p) }
		}
		n := node.New(ncfg, st, c.net)
		c.Nodes = append(c.Nodes, n)
		var ctl *tune.Controller
		if opts.Adaptive {
			var err error
			ctl, err = tune.New(opts.Tune, plane)
			if err != nil {
				panic(fmt.Sprintf("harness: bad tune options: %v", err))
			}
			ctl.AddGroup(node.TuneGroup(n))
			if sy, ok := node.TuneSync(st); ok {
				ctl.AddSync(sy)
			}
		}
		c.Tuners = append(c.Tuners, ctl)
	}
	return c
}

// StartAll boots every process.
func (c *Cluster) StartAll() error {
	for p := range c.Nodes {
		if err := c.Start(ids.ProcessID(p)); err != nil {
			return err
		}
	}
	return nil
}

// Start boots process pid (initialization or recovery).
func (c *Cluster) Start(pid ids.ProcessID) error {
	c.Rec.StartSession(pid)
	if c.Faults != nil {
		c.Faults[pid].Disarm()
	}
	if err := c.Nodes[pid].Start(c.ctx); err != nil {
		return err
	}
	if t := c.Tuners[pid]; t != nil {
		t.Start()
	}
	return nil
}

// Crash kills process pid (volatile state lost).
func (c *Cluster) Crash(pid ids.ProcessID) {
	if t := c.Tuners[pid]; t != nil {
		t.Stop()
	}
	c.Nodes[pid].Crash()
}

// Recover restarts process pid and returns once its replay completes. It
// returns the recovery duration.
func (c *Cluster) Recover(pid ids.ProcessID) (time.Duration, error) {
	start := time.Now()
	err := c.Start(pid)
	return time.Since(start), err
}

// Stop tears the whole cluster down, closing any engines NewStore opened.
func (c *Cluster) Stop() {
	for _, t := range c.Tuners {
		if t != nil {
			t.Stop()
		}
	}
	for _, n := range c.Nodes {
		n.Crash()
	}
	c.cancel()
	if c.Net != nil {
		c.Net.Close()
	}
	for _, st := range c.inners {
		if cl, ok := st.(storage.Closer); ok {
			cl.Close()
		}
	}
}

// Broadcast submits a payload at pid, records it, and (basic protocol)
// waits until it is ordered.
func (c *Cluster) Broadcast(ctx context.Context, pid ids.ProcessID, payload []byte) (ids.MsgID, error) {
	p := c.Nodes[pid].Proto()
	if p == nil {
		return ids.MsgID{}, node.ErrDown
	}
	id, err := p.Broadcast(ctx, payload)
	if id != (ids.MsgID{}) {
		c.Rec.RecordBroadcast(id, payload)
	}
	if err == nil {
		c.Rec.MarkReturned(id)
	}
	return id, err
}

// BroadcastAsync submits without waiting for ordering.
func (c *Cluster) BroadcastAsync(pid ids.ProcessID, payload []byte) (ids.MsgID, error) {
	p := c.Nodes[pid].Proto()
	if p == nil {
		return ids.MsgID{}, node.ErrDown
	}
	id, err := p.BroadcastAsync(payload)
	if err == nil {
		c.Rec.RecordBroadcast(id, payload)
	}
	return id, err
}

// AwaitDelivered blocks until every listed process has delivered id.
func (c *Cluster) AwaitDelivered(ctx context.Context, id ids.MsgID, pids ...ids.ProcessID) error {
	for {
		all := true
		for _, pid := range pids {
			p := c.Nodes[pid].Proto()
			if p == nil || !p.Delivered(id) {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("await %v: %w", id, ctx.Err())
		// A fine poll: a millisecond tick would quantize every
		// commit-latency measurement built on this wait.
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// AwaitRound blocks until process pid's round counter reaches k.
func (c *Cluster) AwaitRound(ctx context.Context, pid ids.ProcessID, k uint64) error {
	for {
		if p := c.Nodes[pid].Proto(); p != nil && p.Round() >= k {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("await round %d at p%d: %w", k, pid, ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// MemStore returns the raw in-memory engine behind pid's accounted store
// (for live log-size measurements).
func (c *Cluster) MemStore(pid ids.ProcessID) *storage.Mem {
	if m, ok := c.Stores[pid].Inner().(*storage.Mem); ok {
		return m
	}
	return nil
}

// UpPIDs returns the processes currently up.
func (c *Cluster) UpPIDs() []ids.ProcessID {
	var out []ids.ProcessID
	for p, n := range c.Nodes {
		if n.Up() {
			out = append(out, ids.ProcessID(p))
		}
	}
	return out
}

// FlightDump returns the merged, time-ordered anomaly event log of every
// process's flight recorder — the first artifact to read after a failed
// soak.
func (c *Cluster) FlightDump() string {
	return obs.FormatDump(obs.DumpAll(c.Obs))
}

// violation annotates a safety/liveness violation with the flight-recorder
// dump, so the causal event sequence (lease churn, state transfers,
// revokes, slow fsyncs) ships with the failure instead of being lost with
// the process.
func (c *Cluster) violation(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w\n--- flight recorder ---\n%s", err, c.FlightDump())
}

// VerifySafety runs the recorder's Validity/Integrity/Total Order checks.
func (c *Cluster) VerifySafety() error {
	return c.violation(c.Rec.Verify())
}

// VerifyAll runs the safety checks plus Termination for the given good
// processes (which must be up).
func (c *Cluster) VerifyAll(good ...ids.ProcessID) error {
	if err := c.Rec.Verify(); err != nil {
		return c.violation(err)
	}
	must := c.Rec.DeliveredAnywhere()
	must = append(must, c.Rec.ReturnedBroadcasts()...)
	finals := make([]check.Final, 0, len(good))
	for _, pid := range good {
		p := c.Nodes[pid].Proto()
		if p == nil {
			return fmt.Errorf("good process p%d is down", pid)
		}
		base, suffix := p.Sequence()
		finals = append(finals, check.NewFinal(pid, base, suffix))
	}
	return c.violation(check.VerifyTermination(must, finals))
}

// AwaitAllDelivered waits until every id in the recorder's must-deliver set
// is delivered by all listed processes, then runs VerifyAll. The must set
// can grow while the await is in progress (messages recovered from logs or
// straggling in peers' Unordered sets get ordered mid-drain and enter
// DeliveredAnywhere), so the await loops until a full pass adds nothing new
// — otherwise VerifyAll's own recomputation would see late arrivals the
// await never covered and report a spurious termination violation.
func (c *Cluster) AwaitAllDelivered(ctx context.Context, good ...ids.ProcessID) error {
	for {
		must := c.Rec.DeliveredAnywhere()
		must = append(must, c.Rec.ReturnedBroadcasts()...)
		for _, id := range must {
			if err := c.AwaitDelivered(ctx, id, good...); err != nil {
				return err
			}
		}
		// Quiescence: nothing new entered the must set during the pass,
		// and no good process holds a pending message that a round could
		// still deliver behind the verifier's back.
		quiesced := true
		for _, pid := range good {
			if p := c.Nodes[pid].Proto(); p == nil || p.UnorderedLen() > 0 {
				quiesced = false
				break
			}
		}
		again := len(c.Rec.DeliveredAnywhere()) + len(c.Rec.ReturnedBroadcasts())
		if quiesced && again == len(must) {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("await quiescence: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
	return c.VerifyAll(good...)
}
