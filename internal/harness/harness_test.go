package harness

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
)

func TestClusterLifecycle(t *testing.T) {
	c := NewCluster(Options{N: 3, Seed: 501})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.UpPIDs()); got != 3 {
		t.Fatalf("up = %d", got)
	}
	c.Crash(1)
	if got := len(c.UpPIDs()); got != 2 {
		t.Fatalf("up after crash = %d", got)
	}
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	if got := len(c.UpPIDs()); got != 3 {
		t.Fatalf("up after recover = %d", got)
	}
}

func TestWorkloadRunCollectsMetrics(t *testing.T) {
	c := NewCluster(Options{N: 3, Seed: 502})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	m, err := c.Run(ctx, Workload{
		Senders:           []ids.ProcessID{0, 1},
		MessagesPerSender: 5,
		PayloadSize:       32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 10 || m.Errors != 0 {
		t.Fatalf("count=%d errors=%d", m.Count, m.Errors)
	}
	if m.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
	if m.Mean() <= 0 || m.Percentile(50) <= 0 || m.Percentile(99) < m.Percentile(50) {
		t.Fatalf("latency stats inconsistent: mean=%v p50=%v p99=%v",
			m.Mean(), m.Percentile(50), m.Percentile(99))
	}
}

func TestMetricsEdgeCases(t *testing.T) {
	var m Metrics
	if m.Throughput() != 0 || m.Mean() != 0 || m.Percentile(99) != 0 {
		t.Fatal("empty metrics should be zero")
	}
	m = Metrics{
		Count:     3,
		Elapsed:   time.Second,
		Latencies: []time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond},
	}
	if m.Throughput() != 3 {
		t.Fatalf("throughput = %f", m.Throughput())
	}
	if m.Percentile(0) != time.Millisecond {
		t.Fatalf("p0 = %v", m.Percentile(0))
	}
	if m.Percentile(100) != 3*time.Millisecond {
		t.Fatalf("p100 = %v", m.Percentile(100))
	}
	if m.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", m.Mean())
	}
}

func TestRunFaultsLeavesProcessesUp(t *testing.T) {
	c := NewCluster(Options{N: 3, Seed: 503})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	fctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	wait := c.RunFaults(fctx, FaultSchedule{
		PID:     2,
		UpFor:   60 * time.Millisecond,
		DownFor: 40 * time.Millisecond,
	})
	wait()
	if !c.Nodes[2].Up() {
		t.Fatal("fault schedule left process down")
	}
	// The process should have gone through at least one extra epoch.
	if c.Nodes[2].Epoch() < 2 {
		t.Fatalf("epoch = %d, expected churn", c.Nodes[2].Epoch())
	}
}

func TestTablePrintAndMarkdown(t *testing.T) {
	tb := NewTable("demo", "col-a", "b")
	tb.Add("x", 1)
	tb.Add("longer-value", 2.5)
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "longer-value") {
		t.Fatalf("print output:\n%s", out)
	}
	// Columns align: header width adapts to widest cell.
	if !strings.Contains(out, "col-a") {
		t.Fatal("missing header")
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| col-a | b |") || !strings.Contains(md, "| x | 1 |") {
		t.Fatalf("markdown output:\n%s", md)
	}
	if !strings.Contains(md, "2.50") {
		t.Fatal("float not formatted")
	}
}

func TestMemStoreAccessor(t *testing.T) {
	c := NewCluster(Options{N: 1, Seed: 504})
	defer c.Stop()
	if c.MemStore(0) == nil {
		t.Fatal("mem store accessor broken")
	}
}

func TestBroadcastOnDownNodeFails(t *testing.T) {
	c := NewCluster(Options{N: 3, Seed: 505})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	c.Crash(0)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := c.Broadcast(ctx, 0, []byte("x")); err == nil {
		t.Fatal("broadcast on down node succeeded")
	}
	if _, err := c.BroadcastAsync(0, []byte("x")); err == nil {
		t.Fatal("async broadcast on down node succeeded")
	}
}
