package experiments

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/harness"
	"repro/internal/ids"
)

// Ablation experiments: design-choice sweeps over knobs the paper leaves
// open ("implementation dependent frequency", failure-detector quality,
// group size). They are not paper claims but quantify the sensitivity of
// the protocol to its tuning parameters.

// E11FDTimeout sweeps the failure-detector timeout and measures how fast
// the protocol recovers ordering after the Ω leader crashes: an aggressive
// detector hands off quickly; a conservative one stalls every instance for
// the full timeout (the trade-off behind §3.5's "unreliable" detectors).
func E11FDTimeout(scale Scale) (*Result, error) {
	msgs := scale.pick(5, 20)
	table := harness.NewTable(
		"E11 (ablation) — FD timeout vs ordering stall after leader crash (n=3)",
		"fd timeout", "first post-crash delivery", "total for all msgs")
	res := &Result{Table: table}
	for _, timeout := range []time.Duration{20 * time.Millisecond, 80 * time.Millisecond, 300 * time.Millisecond} {
		c := harness.NewCluster(harness.Options{
			N:    3,
			Seed: 11000 + uint64(timeout),
			FD: fd.Options{
				Heartbeat: 5 * time.Millisecond,
				Timeout:   timeout,
			},
			Consensus: consensus.Config{
				RetryMin: 3 * time.Millisecond,
				RetryMax: 40 * time.Millisecond,
			},
		})
		if err := c.StartAll(); err != nil {
			c.Stop()
			return nil, err
		}
		cx, cancel := ctx()
		// Warm up so the detector has seen the leader alive.
		if err := broadcastN(c, cx, []ids.ProcessID{1}, 3, 32); err != nil {
			cancel()
			c.Stop()
			return nil, err
		}
		// Kill the Ω leader (p0) and immediately broadcast from p1.
		c.Crash(0)
		start := time.Now()
		var first time.Duration
		err := error(nil)
		for i := 0; i < msgs; i++ {
			if _, err = c.Broadcast(cx, 1, []byte("post-crash")); err != nil {
				break
			}
			if i == 0 {
				first = time.Since(start)
			}
		}
		total := time.Since(start)
		cancel()
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("E11 timeout=%v: %w", timeout, err)
		}
		table.Add(timeout, first.Round(time.Millisecond), total.Round(time.Millisecond))
		c.Stop()
	}
	res.Notes = append(res.Notes,
		"after the leader crashes, non-leaders take over once the detector suspects it (plus a grace period); ordering stall tracks the FD timeout")
	return res, nil
}

// E12GossipInterval sweeps the gossip period: dissemination of unordered
// messages (and hence non-leader broadcast latency when the eager push is
// lost) degrades as gossip slows, while network cost shrinks.
func E12GossipInterval(scale Scale) (*Result, error) {
	perSender := scale.pick(15, 60)
	table := harness.NewTable(
		fmt.Sprintf("E12 (ablation) — gossip interval sweep (n=3, lossy net, 3 senders x %d msgs)", perSender),
		"gossip interval", "msgs/s", "mean latency", "p99 latency", "gossips sent")
	res := &Result{Table: table}
	for _, interval := range []time.Duration{5 * time.Millisecond, 20 * time.Millisecond, 80 * time.Millisecond} {
		c := harness.NewCluster(harness.Options{
			N:    3,
			Seed: 12000 + uint64(interval),
			Net:  harness.DefaultLossyNet(12000 + uint64(interval)),
			Core: core.Config{GossipInterval: interval},
		})
		if err := c.StartAll(); err != nil {
			c.Stop()
			return nil, err
		}
		cx, cancel := ctx()
		m, err := c.Run(cx, harness.Workload{
			Senders:           []ids.ProcessID{0, 1, 2},
			MessagesPerSender: perSender,
			PayloadSize:       64,
		})
		cancel()
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("E12 interval=%v: %w", interval, err)
		}
		var gossips uint64
		for p := 0; p < 3; p++ {
			gossips += c.Nodes[p].Proto().Stats().GossipSent
		}
		table.Add(interval, m.Throughput(),
			m.Mean().Round(10*time.Microsecond),
			m.Percentile(99).Round(10*time.Microsecond), gossips)
		c.Stop()
	}
	res.Notes = append(res.Notes,
		"the gossip period bounds retransmission frequency on a lossy network: slower gossip = fewer messages but slower recovery of lost payloads (tail latency)")
	return res, nil
}

// E13GroupSize sweeps n: consensus quorums grow with n, so per-message
// cost rises while the protocol keeps working unchanged.
func E13GroupSize(scale Scale) (*Result, error) {
	perSender := scale.pick(15, 60)
	table := harness.NewTable(
		fmt.Sprintf("E13 (ablation) — group size sweep (3 senders x %d msgs)", perSender),
		"n", "quorum", "msgs/s", "mean latency", "cons log ops/msg")
	res := &Result{Table: table}
	for _, n := range []int{3, 5, 7} {
		c := harness.NewCluster(harness.Options{N: n, Seed: 13000 + uint64(n)})
		if err := c.StartAll(); err != nil {
			c.Stop()
			return nil, err
		}
		cx, cancel := ctx()
		m, err := c.Run(cx, harness.Workload{
			Senders:           []ids.ProcessID{0, 1, 2},
			MessagesPerSender: perSender,
			PayloadSize:       64,
		})
		cancel()
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("E13 n=%d: %w", n, err)
		}
		var consOps int64
		for p := 0; p < n; p++ {
			consOps += c.Stores[p].Layer("cons").LogOps()
		}
		table.Add(n, consensus.Quorum(n), m.Throughput(),
			m.Mean().Round(10*time.Microsecond),
			float64(consOps)/float64(m.Count))
		c.Stop()
	}
	res.Notes = append(res.Notes,
		"quorum size (and acceptor logging) grows linearly with n; the protocol itself is unchanged")
	return res, nil
}
