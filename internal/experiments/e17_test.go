package experiments

import (
	"testing"

	"repro/internal/transport"
)

// TestSharedServicesCutBackgroundTraffic is the background-cost regression
// guard for the shared process services (E17's acceptance claim): at G=8
// with identical failure-detector timing — so equal suspicion latency —
// the shared control plane (one process-level detector, digest gossip,
// write-coalescing mux) must produce at least 2x fewer background
// transport writes per second than the legacy per-group services. The
// measured margin is well above 2x (G heartbeat streams collapse to one
// and coalescing batches the rest), so the guard only trips when a group
// starts paying per-group fixed costs again.
//
// One retry absorbs scheduler noise, mirroring the E14/E15/E16 guards.
func TestSharedServicesCutBackgroundTraffic(t *testing.T) {
	if raceEnabled {
		t.Skip("rate comparison is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("perf guard: runs in its own CI step (and in full local runs)")
	}

	mkNet := func() transport.Network { return transport.NewMem(3, transport.MemOptions{Seed: 1}) }
	ratio := func(attempt int) float64 {
		t.Helper()
		seed := 17500 + uint64(attempt)*10
		legacy, err := BackgroundTraffic(Quick, seed, 8, false, mkNet)
		if err != nil {
			t.Fatalf("legacy run: %v", err)
		}
		shared, err := BackgroundTraffic(Quick, seed+1, 8, true, mkNet)
		if err != nil {
			t.Fatalf("shared run: %v", err)
		}
		t.Logf("G=8 background: per-group %.0f msgs/s (%.1f KB/s), shared %.0f msgs/s (%.1f KB/s)",
			legacy.MsgsPerSec, legacy.BytesPerSec/1024, shared.MsgsPerSec, shared.BytesPerSec/1024)
		if shared.MsgsPerSec <= 0 {
			t.Fatal("shared mode produced no background traffic at all (heartbeats dead?)")
		}
		return legacy.MsgsPerSec / shared.MsgsPerSec
	}
	r := ratio(0)
	t.Logf("background msgs/s reduction: %.2fx", r)
	if r < 2 {
		r = ratio(1)
		t.Logf("retry: background msgs/s reduction: %.2fx", r)
	}
	if r < 2 {
		t.Fatalf("shared services cut background traffic only %.2fx (want >= 2x)", r)
	}
}
