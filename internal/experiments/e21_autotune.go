package experiments

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/tune"
)

// E21 measures closed-loop autotuning through a phase-shifting workload.
// Any static knob setting picks a point on the latency/throughput
// trade-off: a latency point (no batch delay, depth 1, sync-on-write)
// collapses under load, a throughput point (3 ms batch delay, depth 8,
// deep group commit) taxes every quiet-period request with its windows.
// The adaptive config starts at the latency point with the throughput
// point's knobs as controller bounds, and the experiment walks all three
// through four regimes — idle (paced closed loop, commit latency), burst
// (open-loop flood, msgs/s), trickle (paced submission, fsyncs per
// message), large payloads (closed loop, MB/s) — each phase preceded by an
// unmeasured lead-in so the controller's convergence transient is part of
// the story (the recorded knob trajectory) but not the steady-state
// number.

// e21N is the cluster size: the smallest quorum-bearing cluster keeps the
// wall clock on the knobs, not the fan-out.
const e21N = 3

// e21SmallPayload/e21LargePayload are the two message sizes: small enough
// that batching decides everything, and large enough (>= MaxBatchBytes)
// that every proposal seals full and only pipeline + sync policy matter.
const (
	e21SmallPayload = 64
	e21LargePayload = 64 << 10
)

// e21BatchBytes caps proposal payload bytes for every config, so the
// batching dimension is the delay knob alone.
const e21BatchBytes = 4096

// e21Knobs is the adaptive run's controller state (p0's tune gauges) at a
// phase boundary — the committed trajectory artifact.
type e21Knobs struct {
	BatchDelayMs float64 `json:"batch_delay_ms"`
	Depth        int64   `json:"depth"`
	SyncEvery    int64   `json:"sync_every"`
	SyncDelayMs  float64 `json:"sync_delay_ms"`
}

// e21PhaseResult is one phase's steady-state measurement.
type e21PhaseResult struct {
	Phase  string `json:"phase"`
	Metric string `json:"metric"`
	// Better is "lower" or "higher" — how to read Value when comparing
	// configs.
	Better string  `json:"better"`
	Value  float64 `json:"value"`
	// KnobsAfter is the adaptive controller's operating point when the
	// phase ended (adaptive config only).
	KnobsAfter *e21Knobs `json:"knobs_after,omitempty"`
}

// E21Metrics is one (config, transport) walk through all four phases.
type E21Metrics struct {
	Config    string           `json:"config"`
	Transport string           `json:"transport"`
	N         int              `json:"n"`
	Phases    []e21PhaseResult `json:"phases"`
	// TuneMoves counts controller knob adjustments across the cluster
	// (adaptive config only; a static run has no controller).
	TuneMoves uint64 `json:"tune_moves,omitempty"`
}

// e21Config is one point on the static trade-off, or the adaptive config
// bounded by the throughput point's knobs.
type e21Config struct {
	name     string
	core     core.Config
	wal      storage.WALOptions
	adaptive bool
	tune     tune.Options
}

func e21Configs() []e21Config {
	base := core.Config{
		BatchedBroadcast: true,
		IncrementalLog:   true,
		MaxBatchBytes:    e21BatchBytes,
		GossipInterval:   50 * time.Millisecond,
	}
	lat := base
	lat.PipelineDepth = 1
	thr := base
	thr.MaxBatchDelay = 3 * time.Millisecond
	thr.PipelineDepth = 8
	return []e21Config{
		{name: "static-lat", core: lat,
			wal: storage.WALOptions{SyncEvery: 1}},
		{name: "static-thr", core: thr,
			wal: storage.WALOptions{SyncEvery: 64, MaxSyncDelay: 3 * time.Millisecond}},
		// The adaptive run starts where static-lat sits and may roam the
		// box whose far corner is static-thr: the comparison asks whether
		// one closed loop can track whichever static point each phase
		// favors. The 2 ms epoch makes convergence a few-ms transient.
		{name: "adaptive", core: lat,
			wal:      storage.WALOptions{SyncEvery: 1},
			adaptive: true,
			// A 4 ms epoch: fast enough to converge inside each phase's
			// lead-in, slow enough that three controllers' wakeups do not
			// crowd the hot path on a single-core runner.
			tune: tune.Options{
				Epoch:         4 * time.Millisecond,
				BatchDelayMax: 3 * time.Millisecond,
				DepthMax:      8,
				SyncEveryMax:  64,
				SyncDelayMax:  3 * time.Millisecond,
			}},
	}
}

// e21ReadKnobs snapshots p0's tune gauges (zero for static runs, where the
// gauges are never set).
func e21ReadKnobs(c *harness.Cluster) *e21Knobs {
	reg := c.Obs[0].Reg()
	return &e21Knobs{
		BatchDelayMs: float64(reg.Gauge("abcast.tune.batch_delay_ns{g0}").Value()) / 1e6,
		Depth:        reg.Gauge("abcast.tune.depth{g0}").Value(),
		SyncEvery:    reg.Gauge("abcast.tune.sync_every").Value(),
		SyncDelayMs:  float64(reg.Gauge("abcast.tune.sync_delay_ns").Value()) / 1e6,
	}
}

// e21Run is one config's live cluster during a transport sweep. All
// configs' clusters run concurrently and the closed-loop phases
// interleave their commits across them: commit i lands on every config
// within one round, so the slow drift of a shared machine (frequency
// scaling, cache pressure from neighbors) hits each config alike instead
// of biasing whichever config happened to run last.
type e21Run struct {
	cfg  e21Config
	m    E21Metrics
	c    *harness.Cluster
	pids []ids.ProcessID

	mu   sync.Mutex
	wals []*storage.WAL

	idleLat  []time.Duration
	largeLat []time.Duration

	stop func()
}

// e21Start builds and starts one config's cluster over per-process WALs.
func e21Start(seed uint64, cfg e21Config, tcp bool) (*e21Run, error) {
	r := &e21Run{cfg: cfg, m: E21Metrics{Config: cfg.name, Transport: "mem", N: e21N}}
	if tcp {
		r.m.Transport = "tcp"
	}
	dir, err := os.MkdirTemp("", "abcast-e21-")
	if err != nil {
		return nil, err
	}
	opts := harness.Options{
		N:    e21N,
		Seed: seed,
		Core: cfg.core,
		// No failures in E21; a lazy detector keeps burst-queued heartbeats
		// from reading as crashes.
		FD: fd.Options{Heartbeat: 25 * time.Millisecond, Timeout: 500 * time.Millisecond},
		NewStore: func(pid ids.ProcessID) storage.Stable {
			w, werr := storage.OpenWAL(filepath.Join(dir, fmt.Sprintf("p%d", pid)), cfg.wal)
			if werr != nil {
				panic(fmt.Sprintf("E21: open wal: %v", werr))
			}
			r.mu.Lock()
			r.wals = append(r.wals, w)
			r.mu.Unlock()
			return w
		},
		Adaptive: cfg.adaptive,
		Tune:     cfg.tune,
	}
	if tcp {
		addrs, aerr := freeLoopbackAddrs(e21N)
		if aerr != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("reserve loopback addrs: %w", aerr)
		}
		opts.Transport = transport.NewTCP(addrs)
	} else {
		// A fast simulated LAN: the knobs under test, not the network, are
		// the contended resource.
		opts.Net = transport.MemOptions{Seed: seed, MinDelay: 50 * time.Microsecond, MaxDelay: 100 * time.Microsecond}
	}
	c := harness.NewCluster(opts)
	r.c = c
	r.stop = func() {
		c.Stop()
		os.RemoveAll(dir)
	}
	if err := c.StartAll(); err != nil {
		r.stop()
		return nil, err
	}
	r.pids = make([]ids.ProcessID, e21N)
	for i := range r.pids {
		r.pids[i] = ids.ProcessID(i)
	}
	return r, nil
}

func (r *e21Run) syncTotal() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t int64
	for _, w := range r.wals {
		t += w.SyncCount()
	}
	return t
}

// commit broadcasts at pid and waits until every process delivered —
// BatchedBroadcast returns at log time, so delivery is awaited
// explicitly to measure commit latency.
func (r *e21Run) commit(cx context.Context, pid ids.ProcessID, payload []byte) (time.Duration, error) {
	start := time.Now()
	id, err := r.c.Broadcast(cx, pid, payload)
	if err != nil {
		return 0, err
	}
	if err := r.c.AwaitDelivered(cx, id, r.pids...); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func (r *e21Run) phase(name, metric, better string, v float64) {
	pr := e21PhaseResult{Phase: name, Metric: metric, Better: better, Value: v}
	if r.cfg.adaptive {
		pr.KnobsAfter = e21ReadKnobs(r.c)
	}
	r.m.Phases = append(r.m.Phases, pr)
}

// e21Transport walks every config through the four phases on one
// transport. The closed-loop phases (idle, large) interleave commits
// across the live clusters; the rate phases (burst, trickle) run each
// config back to back — their metrics (open-loop msgs/s over a dense
// interval, fsyncs per message) average over enough work that machine
// drift washes out, where a single closed-loop commit latency does not.
func e21Transport(scale Scale, seed uint64, tcp bool) ([]E21Metrics, error) {
	var runs []*e21Run
	defer func() {
		for _, r := range runs {
			r.stop()
		}
	}()
	for i, cfg := range e21Configs() {
		r, err := e21Start(seed+uint64(i)*17, cfg, tcp)
		if err != nil {
			return nil, fmt.Errorf("start %s: %w", cfg.name, err)
		}
		runs = append(runs, r)
	}
	cx, cancel := ctx()
	defer cancel()
	small := make([]byte, e21SmallPayload)

	// Warmup: each cluster elects its sequencer and every WAL turns over
	// once before anything is timed.
	for _, r := range runs {
		for i := 0; i < 3; i++ {
			if _, err := r.commit(cx, 0, small); err != nil {
				return nil, fmt.Errorf("%s warmup %d: %w", r.cfg.name, i, err)
			}
		}
	}

	// Phase 1 — idle: one small broadcast every 10 ms, median commit
	// latency (the median reads the config's floor; a mean would mix in
	// scheduler stragglers). The throughput point pays its batch-delay and
	// sync-delay windows on every lone message here.
	for i := 0; i < 8; i++ { // lead-in: the adaptive run collapses its windows
		for _, r := range runs {
			if _, err := r.commit(cx, 0, small); err != nil {
				return nil, fmt.Errorf("%s idle lead-in: %w", r.cfg.name, err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	idleMsgs := scale.pick(30, 80)
	for i := 0; i < idleMsgs; i++ {
		for _, r := range runs {
			d, err := r.commit(cx, 0, small)
			if err != nil {
				return nil, fmt.Errorf("%s idle %d: %w", r.cfg.name, i, err)
			}
			r.idleLat = append(r.idleLat, d)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, r := range runs {
		r.phase("idle", "median_commit_ms", "lower",
			float64(e21Median(r.idleLat).Microseconds())/1e3)
	}

	// Phase 2 — burst: open-loop flood from every process, delivered
	// msgs/s. The latency point caps overlap at one round in flight and
	// fsyncs every record promptly.
	burstMsgs := scale.pick(1500, 6000)
	for _, r := range runs {
		burst := func(count int) error {
			buf := make([]byte, e21SmallPayload)
			for i := 0; i < count; i++ {
				binary.BigEndian.PutUint64(buf, uint64(i))
				if _, err := r.c.BroadcastAsync(r.pids[i%e21N], buf); err != nil {
					return err
				}
			}
			return nil
		}
		if err := burst(burstMsgs / 4); err != nil { // lead-in: deepen + amortize
			return nil, fmt.Errorf("%s burst lead-in: %w", r.cfg.name, err)
		}
		if err := r.c.AwaitAllDelivered(cx, r.pids...); err != nil {
			return nil, fmt.Errorf("%s burst lead-in settle: %w", r.cfg.name, err)
		}
		t0 := time.Now()
		if err := burst(burstMsgs); err != nil {
			return nil, fmt.Errorf("%s burst: %w", r.cfg.name, err)
		}
		if err := r.c.AwaitAllDelivered(cx, r.pids...); err != nil {
			return nil, fmt.Errorf("%s burst settle: %w", r.cfg.name, err)
		}
		r.phase("burst", "msgs_per_s", "higher",
			float64(burstMsgs)/time.Since(t0).Seconds())
	}

	// Phase 3 — trickle: a paced feed from one hot producer (12 small
	// messages every 2 ms at p0), cluster-wide fsyncs per message. The
	// latency point syncs every record it could have grouped; the
	// amortizing configs ride one fsync per window — including the
	// followers, whose thin decide-record streams only group under a
	// sustained-stream policy.
	trickleMsgs := scale.pick(480, 1920)
	for _, r := range runs {
		trickle := func(count int) error {
			buf := make([]byte, e21SmallPayload)
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for i := 0; i < count; i++ {
				binary.BigEndian.PutUint64(buf, uint64(count-i))
				if _, err := r.c.BroadcastAsync(0, buf); err != nil {
					return err
				}
				if (i+1)%12 == 0 {
					<-tick.C
				}
			}
			return nil
		}
		// Lead-in ramps the amortization at the trickle rate; measurement
		// starts without draining in between — a quiescent gap would
		// collapse the adaptive windows and charge the whole re-ramp to the
		// measured segment, a phase-transition artifact, not steady state.
		if err := trickle(360); err != nil {
			return nil, fmt.Errorf("%s trickle lead-in: %w", r.cfg.name, err)
		}
		sync0 := r.syncTotal()
		if err := trickle(trickleMsgs); err != nil {
			return nil, fmt.Errorf("%s trickle: %w", r.cfg.name, err)
		}
		if err := r.c.AwaitAllDelivered(cx, r.pids...); err != nil {
			return nil, fmt.Errorf("%s trickle settle: %w", r.cfg.name, err)
		}
		r.phase("trickle", "fsyncs_per_msg", "lower",
			float64(r.syncTotal()-sync0)/float64(trickleMsgs))
	}

	// Phase 4 — large payloads: a closed loop of 64 KiB messages, ordered
	// MB/s. Every proposal seals full (>= MaxBatchBytes) so no config pays
	// a batch delay; the throughput point's sync window now holds each
	// round's lone record hostage. Interleaved like the idle phase — the
	// metric is again a single closed-loop commit's latency.
	large := make([]byte, e21LargePayload)
	for i := 0; i < 4; i++ { // lead-in: the adaptive run re-collapses its sync window
		for _, r := range runs {
			if _, err := r.commit(cx, 0, large); err != nil {
				return nil, fmt.Errorf("%s large lead-in: %w", r.cfg.name, err)
			}
		}
	}
	largeMsgs := scale.pick(16, 48)
	for i := 0; i < largeMsgs; i++ {
		binary.BigEndian.PutUint64(large, uint64(i))
		for _, r := range runs {
			d, err := r.commit(cx, 0, large)
			if err != nil {
				return nil, fmt.Errorf("%s large %d: %w", r.cfg.name, i, err)
			}
			r.largeLat = append(r.largeLat, d)
		}
	}
	for _, r := range runs {
		// Throughput of the median commit, for the same robustness reason
		// as the idle phase.
		r.phase("large", "mb_per_s", "higher",
			float64(e21LargePayload)/e21Median(r.largeLat).Seconds()/(1<<20))
	}

	out := make([]E21Metrics, 0, len(runs))
	for _, r := range runs {
		if err := r.c.VerifyAll(r.pids...); err != nil {
			return nil, fmt.Errorf("%s verify: %w", r.cfg.name, err)
		}
		if r.cfg.adaptive {
			for _, pl := range r.c.Obs {
				r.m.TuneMoves += pl.Reg().Counter("abcast.tune.adjustments").Value()
			}
		}
		out = append(out, r.m)
	}
	return out, nil
}

// e21Median returns the median of a latency sample (the input is sorted
// in place).
func e21Median(xs []time.Duration) time.Duration {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// e21Variants walks every config on mem, then on a TCP loopback.
func e21Variants(scale Scale) ([]E21Metrics, error) {
	var out []E21Metrics
	seed := uint64(21000)
	for _, tcp := range []bool{false, true} {
		ms, err := e21Transport(scale, seed, tcp)
		if err != nil {
			tr := map[bool]string{false: "mem", true: "tcp"}[tcp]
			return nil, fmt.Errorf("E21 %s: %w", tr, err)
		}
		out = append(out, ms...)
		seed += 100
	}
	return out, nil
}

// e21Score converts a phase value to higher-is-better for comparisons.
func e21Score(p e21PhaseResult) float64 {
	if p.Better == "lower" {
		if p.Value == 0 {
			return 0
		}
		return 1 / p.Value
	}
	return p.Value
}

// e21Find returns the named config's metrics on a transport.
func e21Find(ms []E21Metrics, config, tr string) *E21Metrics {
	for i := range ms {
		if ms[i].Config == config && ms[i].Transport == tr {
			return &ms[i]
		}
	}
	return nil
}

// e21AdaptiveFloor/e21StaticCliff are the acceptance thresholds: the
// adaptive config must hold at least e21AdaptiveFloor of the best static
// score on every phase, while each static must fall to e21StaticCliff or
// below on at least one — otherwise the phase shift is not actually
// separating the trade-off and "adaptive matches best static" is vacuous.
const (
	e21AdaptiveFloor = 0.85
	e21StaticCliff   = 0.70
)

// e21Acceptance checks the experiment's claim against one transport's
// rows. Returns nil when the claim holds, else the violations.
func e21Acceptance(ms []E21Metrics) []string {
	if len(ms) == 0 {
		return []string{"no variants"}
	}
	tr := ms[0].Transport
	lat, thr, ad := e21Find(ms, "static-lat", tr), e21Find(ms, "static-thr", tr), e21Find(ms, "adaptive", tr)
	if lat == nil || thr == nil || ad == nil {
		return []string{"missing config rows"}
	}
	best := func(i int) float64 {
		b := e21Score(lat.Phases[i])
		if s := e21Score(thr.Phases[i]); s > b {
			b = s
		}
		return b
	}
	var bad []string
	for i, p := range ad.Phases {
		if b := best(i); e21Score(p) < e21AdaptiveFloor*b {
			bad = append(bad, fmt.Sprintf("adaptive at %.0f%% of best static on %s (floor %.0f%%)",
				100*e21Score(p)/b, p.Phase, 100*e21AdaptiveFloor))
		}
	}
	for _, st := range []*E21Metrics{lat, thr} {
		cliff := false
		for i, p := range st.Phases {
			if e21Score(p) <= e21StaticCliff*best(i) {
				cliff = true
				break
			}
		}
		if !cliff {
			bad = append(bad, fmt.Sprintf("%s never drops to %.0f%% of best — the phases are not separating the static trade-off",
				st.Config, 100*e21StaticCliff))
		}
	}
	return bad
}

// e21Compare summarizes the mem rows: for each phase, the adaptive config's
// score relative to the best static, and each static's worst phase
// relative to the other static.
func e21Compare(ms []E21Metrics) []string {
	lat, thr, ad := e21Find(ms, "static-lat", "mem"), e21Find(ms, "static-thr", "mem"), e21Find(ms, "adaptive", "mem")
	if lat == nil || thr == nil || ad == nil {
		return nil
	}
	var notes []string
	worstAd := 1.0
	worstOf := func(v *E21Metrics) (string, float64) {
		phase, worst := "", 1.0
		for i, p := range v.Phases {
			best := e21Score(lat.Phases[i])
			if s := e21Score(thr.Phases[i]); s > best {
				best = s
			}
			if r := e21Score(p) / best; r < worst {
				phase, worst = p.Phase, r
			}
		}
		return phase, worst
	}
	for i, p := range ad.Phases {
		best, bestName, bestVal := e21Score(lat.Phases[i]), "static-lat", lat.Phases[i].Value
		if s := e21Score(thr.Phases[i]); s > best {
			best, bestName, bestVal = s, "static-thr", thr.Phases[i].Value
		}
		r := e21Score(p) / best
		if r < worstAd {
			worstAd = r
		}
		notes = append(notes, fmt.Sprintf("%s: best static is %s (%s %.3g vs adaptive %.3g); adaptive at %.0f%% of it",
			p.Phase, bestName, p.Metric, bestVal, p.Value, 100*r))
	}
	latPhase, latWorst := worstOf(lat)
	thrPhase, thrWorst := worstOf(thr)
	notes = append(notes, fmt.Sprintf(
		"worst phase per config: adaptive %.0f%% of best static; static-lat %.0f%% (%s); static-thr %.0f%% (%s) — no single static point survives the phase shifts",
		100*worstAd, 100*latWorst, latPhase, 100*thrWorst, thrPhase))
	return notes
}

// E21Autotune assembles the phase-shift table.
func E21Autotune(scale Scale) (*Result, error) {
	ms, err := e21Variants(scale)
	if err != nil {
		return nil, err
	}
	table := harness.NewTable(
		"E21 — closed-loop autotuning through phase shifts: idle latency, burst throughput, trickle fsync amortization, large-payload throughput (3 processes over per-process WALs)",
		"config", "transport", "idle ms", "burst msg/s", "trickle fsync/msg", "large MB/s", "tune moves")
	res := &Result{Table: table}
	for _, m := range ms {
		row := []any{m.Config, m.Transport}
		for _, p := range m.Phases {
			switch p.Metric {
			case "median_commit_ms", "fsyncs_per_msg":
				row = append(row, fmt.Sprintf("%.2f", p.Value))
			default:
				row = append(row, fmt.Sprintf("%.0f", p.Value))
			}
		}
		row = append(row, m.TuneMoves)
		table.Add(row...)
	}
	res.Notes = append(res.Notes, e21Compare(ms)...)
	if ad := e21Find(ms, "adaptive", "mem"); ad != nil {
		for _, p := range ad.Phases {
			if k := p.KnobsAfter; k != nil {
				res.Notes = append(res.Notes, fmt.Sprintf(
					"adaptive operating point after %s: batch delay %.2f ms, depth %d, sync every %d / %.2f ms",
					p.Phase, k.BatchDelayMs, k.Depth, k.SyncEvery, k.SyncDelayMs))
			}
		}
	}
	res.Notes = append(res.Notes,
		"the controller's bounds are static-thr's knobs and its start point is static-lat's: every operating point it visits was reachable by hand, the loop only picks per regime",
		"acceptance: on mem, adaptive stays within 15% of the best static config on every phase while each static loses >= 30% somewhere (TestAdaptiveMatchesBestStatic)")
	return res, nil
}

// E21WriteJSON runs the phase-shift sweep and publishes it as JSON (the
// committed BENCH_e21.json artifact, including the adaptive knob
// trajectory).
func E21WriteJSON(scale Scale, path string) error {
	ms, err := e21Variants(scale)
	if err != nil {
		return err
	}
	doc := struct {
		Experiment string       `json:"experiment"`
		Claim      string       `json:"claim"`
		Scale      string       `json:"scale"`
		Variants   []E21Metrics `json:"variants"`
	}{
		Experiment: "E21 closed-loop autotuning",
		Claim:      "one adaptive config tracks the best static config within 15% across idle/burst/trickle/large-payload phases, while every static config loses >= 30% on at least one phase",
		Scale:      map[Scale]string{Quick: "quick", Full: "full"}[scale],
		Variants:   ms,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
