package experiments

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
)

// E20 measures the ordering/dissemination split: with full-payload
// dissemination the sequencer's proposal carries every payload to every
// process, so its egress is O(N x payload) per round and its NIC is the
// throughput ceiling; in ring mode payloads relay around the successor
// ring (each process forwards to one successor) while consensus orders
// ID+checksum vectors, so the sequencer's egress per round is O(payload +
// small x N). The sweep crosses payload size with cluster size on the
// simulated-NIC mem transport and a TCP loopback, measuring the
// sequencer's egress bytes per round and the delivered payload
// throughput for both modes.

// e20EgressRate is the simulated per-process NIC serialization rate for
// the mem variants (128 MiB/s, a gigabit-class link): the resource the
// split is designed to stop oversubscribing.
const e20EgressRate = 128 << 20

// egressNet wraps a Network and counts the bytes one observed process
// sends to remote peers — the sequencer's NIC egress.
type egressNet struct {
	inner transport.Network
	watch ids.ProcessID
	bytes atomic.Int64
}

func newEgressNet(inner transport.Network, watch ids.ProcessID) *egressNet {
	return &egressNet{inner: inner, watch: watch}
}

func (c *egressNet) N() int { return c.inner.N() }

func (c *egressNet) Attach(pid ids.ProcessID) (transport.Endpoint, error) {
	ep, err := c.inner.Attach(pid)
	if err != nil {
		return nil, err
	}
	if pid != c.watch {
		return ep, nil
	}
	return &egressEndpoint{Endpoint: ep, net: c}, nil
}

type egressEndpoint struct {
	transport.Endpoint
	net *egressNet
}

func (e *egressEndpoint) Send(to ids.ProcessID, data []byte) {
	if to != e.Local() {
		e.net.bytes.Add(int64(len(data)))
	}
	e.Endpoint.Send(to, data)
}

func (e *egressEndpoint) Multisend(data []byte) {
	e.net.bytes.Add(int64(e.net.N()-1) * int64(len(data)))
	e.Endpoint.Multisend(data)
}

// E20Metrics is one (mode, transport, n, payload) measurement.
type E20Metrics struct {
	Mode      string `json:"mode"` // "full-payload" or "ring"
	Transport string `json:"transport"`
	N         int    `json:"n"`
	PayloadB  int    `json:"payload_bytes"`
	Msgs      int    `json:"msgs"`
	// EgressBytesPerRound is the sequencer's remote-send bytes divided by
	// the rounds of the measurement window (closed loop: one broadcast =
	// one round). Full-payload mode grows O(N x payload); ring mode stays
	// O(payload) plus small ID-vector consensus traffic.
	EgressBytesPerRound float64 `json:"sequencer_egress_bytes_per_round"`
	// DeliveredMBps is ordered payload throughput: msgs x payload over
	// the window from first broadcast to every process delivered.
	DeliveredMBps float64 `json:"delivered_mb_per_s"`
	RingPublished uint64  `json:"ring_published,omitempty"`
	PayloadStalls uint64  `json:"payload_stalls,omitempty"`
	// Stages is the sequencer's traced lifecycle breakdown (p50/p99
	// offsets from broadcast, ns) — in ring mode it separates payload
	// relay arrival from decision latency.
	Stages []StageLatency `json:"stage_latency,omitempty"`
}

// e20Msgs sizes the closed-loop workload so megabyte payloads do not
// dominate the wall clock.
func e20Msgs(scale Scale, payload int) int {
	if payload >= 1<<20 {
		return scale.pick(6, 16)
	}
	return scale.pick(16, 64)
}

// DissemRun drives one E20 variant: a closed loop of broadcasts from the
// sequencer process p0, every payload the given size, in full-payload or
// ring-dissemination mode, on the simulated-NIC mem transport or a TCP
// loopback.
func DissemRun(scale Scale, seed uint64, n, payload int, ring, tcp bool) (E20Metrics, error) {
	msgs := e20Msgs(scale, payload)
	m := E20Metrics{Mode: "full-payload", Transport: "mem", N: n, PayloadB: payload, Msgs: msgs}
	if ring {
		m.Mode = "ring"
	}
	if tcp {
		m.Transport = "tcp"
	}

	var inner transport.Network
	if tcp {
		addrs, err := freeLoopbackAddrs(n)
		if err != nil {
			return m, fmt.Errorf("reserve loopback addrs: %w", err)
		}
		inner = transport.NewTCP(addrs)
	} else {
		inner = transport.NewMem(n, transport.MemOptions{Seed: seed, EgressBytesPerSec: e20EgressRate})
	}
	en := newEgressNet(inner, 0)

	opts := harness.Options{
		N:          n,
		Seed:       seed,
		Transport:  en,
		RingDissem: ring,
		// Large payloads queue behind the simulated NIC for tens of
		// milliseconds per round in full-payload mode; a lazy detector
		// keeps queued heartbeats from reading as crashes (E20 runs no
		// failures).
		FD: fd.Options{Heartbeat: 25 * time.Millisecond, Timeout: 500 * time.Millisecond},
		// Calm-network timing for both modes: the default 3 ms retry
		// floor retransmits multi-megabyte proposals faster than the NIC
		// serializes them, snowballing the full-payload egress queue at
		// 1 MiB payloads; nothing is lost here, so retries and gossip
		// re-sends are pure repair-path insurance.
		Consensus: consensus.Config{RetryMin: 250 * time.Millisecond, RetryMax: time.Second},
		Core:      core.Config{GossipInterval: 100 * time.Millisecond},
		// Trace every message so the JSON stage breakdown covers the
		// whole (small) measurement window.
		Obs: obs.Options{SampleRate: 1},
	}
	c := harness.NewCluster(opts)
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return m, err
	}
	cx, cancel := ctx()
	defer cancel()

	pids := make([]ids.ProcessID, n)
	for i := range pids {
		pids[i] = ids.ProcessID(i)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Broadcast(cx, 0, []byte("warmup-filler-20")); err != nil {
			return m, fmt.Errorf("warmup %d: %w", i, err)
		}
	}
	if err := c.AwaitAllDelivered(cx, pids...); err != nil {
		return m, fmt.Errorf("warmup settle: %w", err)
	}

	buf := make([]byte, payload)
	b0 := en.bytes.Load()
	t0 := time.Now()
	for i := 0; i < msgs; i++ {
		binary.BigEndian.PutUint64(buf, uint64(i))
		if _, err := c.Broadcast(cx, 0, buf); err != nil {
			return m, fmt.Errorf("broadcast %d: %w", i, err)
		}
	}
	if err := c.AwaitAllDelivered(cx, pids...); err != nil {
		return m, err
	}
	elapsed := time.Since(t0)
	b1 := en.bytes.Load()
	if err := c.VerifyAll(pids...); err != nil {
		return m, err
	}

	m.EgressBytesPerRound = float64(b1-b0) / float64(msgs)
	m.DeliveredMBps = float64(msgs) * float64(payload) / elapsed.Seconds() / (1 << 20)
	for _, nd := range c.Nodes {
		if p := nd.Proto(); p != nil {
			st := p.Stats()
			m.RingPublished += st.RingPublished
			m.PayloadStalls += st.PayloadStalls
		}
	}
	m.Stages = stageLatencies(c.Obs[0])
	return m, nil
}

// e20Variants runs the payload x N sweep on mem for both modes, plus TCP
// loopback points at the payload sizes where dissemination dominates.
func e20Variants(scale Scale) ([]E20Metrics, error) {
	ns := []int{3, 5}
	payloads := []int{64, 4096, 65536}
	tcpPayloads := []int{65536}
	if scale == Full {
		ns = []int{3, 5, 7}
		payloads = append(payloads, 1<<20)
		tcpPayloads = append(tcpPayloads, 1<<20)
	}
	var out []E20Metrics
	seed := uint64(20000)
	for _, n := range ns {
		for _, p := range payloads {
			for _, ring := range []bool{false, true} {
				m, err := DissemRun(scale, seed, n, p, ring, false)
				if err != nil {
					return nil, fmt.Errorf("E20 mem n=%d payload=%d ring=%v: %w", n, p, ring, err)
				}
				out = append(out, m)
				seed += 13
			}
		}
	}
	for _, p := range tcpPayloads {
		for _, ring := range []bool{false, true} {
			m, err := DissemRun(scale, seed, 3, p, ring, true)
			if err != nil {
				return nil, fmt.Errorf("E20 tcp payload=%d ring=%v: %w", p, ring, err)
			}
			out = append(out, m)
			seed += 13
		}
	}
	return out, nil
}

// e20Find returns the first measurement matching the coordinates.
func e20Find(ms []E20Metrics, mode, tr string, n, payload int) *E20Metrics {
	for i := range ms {
		m := &ms[i]
		if m.Mode == mode && m.Transport == tr && m.N == n && m.PayloadB == payload {
			return m
		}
	}
	return nil
}

// E20Dissemination assembles the ordering/dissemination split table.
func E20Dissemination(scale Scale) (*Result, error) {
	ms, err := e20Variants(scale)
	if err != nil {
		return nil, err
	}
	table := harness.NewTable(
		"E20 — ordering/dissemination split: sequencer egress and delivered throughput, full-payload vs ring (closed loop from the sequencer; mem transport models a 256 MiB/s NIC)",
		"mode", "transport", "n", "payload", "egress B/round", "MB/s")
	res := &Result{Table: table}
	for _, m := range ms {
		table.Add(m.Mode, m.Transport, m.N, m.PayloadB,
			fmt.Sprintf("%.0f", m.EgressBytesPerRound), fmt.Sprintf("%.1f", m.DeliveredMBps))
	}

	// Egress growth in N: at 4 KiB the relay keeps up with the decide
	// rate (no repair pulls), so the ring's curve is the clean O(1)-in-N
	// story; at 64 KiB the magnitude gap and the throughput win show.
	const flatPayload, bigPayload = 4096, 65536
	nLo, nHi := 3, 5
	if scale == Full {
		nHi = 7
	}
	fLo, fHi := e20Find(ms, "full-payload", "mem", nLo, flatPayload), e20Find(ms, "full-payload", "mem", nHi, flatPayload)
	rLo, rHi := e20Find(ms, "ring", "mem", nLo, flatPayload), e20Find(ms, "ring", "mem", nHi, flatPayload)
	if fLo != nil && fHi != nil && rLo != nil && rHi != nil {
		res.Notes = append(res.Notes,
			fmt.Sprintf("sequencer egress/round at %d B payloads, n=%d -> n=%d: full-payload %.0f -> %.0f B (%.2fx, O(N)); ring %.0f -> %.0f B (%.2fx, near-flat) — consensus decides ID vectors, payloads leave the sequencer once",
				flatPayload, nLo, nHi,
				fLo.EgressBytesPerRound, fHi.EgressBytesPerRound, fHi.EgressBytesPerRound/fLo.EgressBytesPerRound,
				rLo.EgressBytesPerRound, rHi.EgressBytesPerRound, rHi.EgressBytesPerRound/rLo.EgressBytesPerRound))
	}
	fBig, rBig := e20Find(ms, "full-payload", "mem", nHi, bigPayload), e20Find(ms, "ring", "mem", nHi, bigPayload)
	if fBig != nil && rBig != nil {
		res.Notes = append(res.Notes,
			fmt.Sprintf("at %d B payloads, n=%d: ring %.1f MB/s vs full-payload %.1f MB/s (%.2fx) with %.1fx less sequencer egress — the NIC serializes one payload copy instead of n-1 (plus consensus echoes)",
				bigPayload, nHi, rBig.DeliveredMBps, fBig.DeliveredMBps, rBig.DeliveredMBps/fBig.DeliveredMBps,
				fBig.EgressBytesPerRound/rBig.EgressBytesPerRound))
	}
	res.Notes = append(res.Notes,
		"consensus in ring mode decides ID+CRC vectors only; delivery waits for 'ID ordered AND payload present', missing payloads are pulled over the digest-gossip repair path",
		"acceptance: ring >= 2x full-payload delivered MB/s at 64 KiB payloads on the NIC-modelled mem transport (TestRingBeatsFullPayloadAtLargeMsgs)")
	return res, nil
}

// E20WriteJSON runs the E20 sweep and publishes it as JSON (the committed
// BENCH_e20.json artifact).
func E20WriteJSON(scale Scale, path string) error {
	ms, err := e20Variants(scale)
	if err != nil {
		return err
	}
	doc := struct {
		Experiment string       `json:"experiment"`
		Claim      string       `json:"claim"`
		Scale      string       `json:"scale"`
		Variants   []E20Metrics `json:"variants"`
	}{
		Experiment: "E20 ordering/dissemination split",
		Claim:      "ring dissemination keeps the sequencer's egress bytes/round O(1) in N while full-payload mode grows O(N); delivered throughput at >= 64 KiB payloads is >= 2x full-payload mode on a bandwidth-limited NIC",
		Scale:      map[Scale]string{Quick: "quick", Full: "full"}[scale],
		Variants:   ms,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
