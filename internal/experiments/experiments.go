// Package experiments implements the reproduction suite: one function per
// experiment in DESIGN.md §3 (E1–E10), each quantifying a claim of the
// paper and returning a printable table, plus the E11–E13 ablations, the
// E14 round-pipeline/adaptive-batching shootout (simulated LAN and TCP
// loopback), and the E15 group-commit WAL storage comparison.
// cmd/abcast-bench runs them all; bench_test.go wraps them as Go
// benchmarks.
//
// The paper is a protocol paper without quantitative tables, so the
// experiments measure the claims it states qualitatively: minimal logging
// (§4.3), recovery/replay cost and checkpointing (§5.1), bounded logs
// (§5.2), state transfer (§5.3), batching throughput (§5.4), incremental
// logging (§5.5), the reduction to the crash-stop protocol (§5.6), the
// Consensus equivalence (§6.1), and failure-detector independence via
// interchangeable consensus engines (§3.5).
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/rsm"
)

// Scale selects experiment sizes.
type Scale int

// Scales: Quick runs in a few seconds (CI / go test); Full produces the
// EXPERIMENTS.md numbers.
const (
	Quick Scale = iota + 1
	Full
)

func (s Scale) pick(quick, full int) int {
	if s == Full {
		return full
	}
	return quick
}

// Result is one experiment's outcome.
type Result struct {
	Table *harness.Table
	Notes []string
}

// ctx returns a generous deadline for one experiment.
func ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Minute)
}

// broadcastN sends count messages round-robin from senders, waiting for
// ordering (basic A-broadcast semantics).
func broadcastN(c *harness.Cluster, cx context.Context, senders []ids.ProcessID, count, payload int) error {
	buf := make([]byte, payload)
	for i := 0; i < count; i++ {
		s := senders[i%len(senders)]
		if _, err := c.Broadcast(cx, s, buf); err != nil {
			return fmt.Errorf("broadcast %d: %w", i, err)
		}
	}
	return nil
}

// kvFold adapts the pure rsm fold as a shared Checkpointer (restores are
// routed per process by the harness wiring).
type kvFold struct{ s *rsm.Store }

var _ core.Checkpointer = kvFold{}

func (k kvFold) Checkpoint(prev []byte, delivered []msg.Message) []byte {
	return k.s.Checkpoint(prev, delivered)
}
func (k kvFold) Restore([]byte) {}

// E1LogOps verifies claim C1 (§4.3): the basic protocol performs zero log
// operations in the broadcast layer — the only forced writes are the
// Consensus proposals (plus consensus-internal acceptor/decision cells) —
// while each §5 option adds measurable, attributable extras.
func E1LogOps(scale Scale) (*Result, error) {
	msgs := scale.pick(30, 200)
	type variant struct {
		name string
		core core.Config
	}
	variants := []variant{
		{"basic (Fig.2)", core.Config{}},
		{"ckpt every 10 (§5.1)", core.Config{CheckpointEvery: 10}},
		{"ckpt+appstate (§5.2)", core.Config{CheckpointEvery: 10, Checkpointer: kvFold{rsm.NewStore()}}},
		{"batched bcast (§5.4)", core.Config{BatchedBroadcast: true}},
		{"batched+incremental (§5.5)", core.Config{BatchedBroadcast: true, IncrementalLog: true}},
	}
	table := harness.NewTable(
		fmt.Sprintf("E1 — stable-storage log operations by layer (n=3, %d msgs, per process avg)", msgs),
		"variant", "abcast ops", "abcast bytes", "cons ops", "cons bytes", "node ops", "extra ops vs consensus")
	res := &Result{Table: table}
	for _, v := range variants {
		c := harness.NewCluster(harness.Options{N: 3, Seed: 1000, Core: v.core})
		if err := c.StartAll(); err != nil {
			c.Stop()
			return nil, err
		}
		cx, cancel := ctx()
		err := broadcastN(c, cx, []ids.ProcessID{0, 1, 2}, msgs, 64)
		if err == nil {
			err = c.AwaitAllDelivered(cx, 0, 1, 2)
		}
		cancel()
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("E1 %s: %w", v.name, err)
		}
		var ab, cons, node float64
		var abBytes, consBytes float64
		for p := 0; p < 3; p++ {
			layers := c.Stores[p].Layers()
			ab += float64(layers["abcast"].LogOps())
			abBytes += float64(layers["abcast"].LogBytes())
			cons += float64(layers["cons"].LogOps())
			consBytes += float64(layers["cons"].LogBytes())
			node += float64(layers["node"].LogOps())
		}
		ab /= 3
		abBytes /= 3
		cons /= 3
		consBytes /= 3
		node /= 3
		table.Add(v.name, ab, abBytes, cons, consBytes, node, ab)
		c.Stop()
	}
	res.Notes = append(res.Notes,
		"paper claim: basic protocol needs no log ops beyond the Consensus' own (abcast ops = 0)",
		"checkpoint/batched variants trade extra log ops for faster recovery / earlier returns (§5)")
	return res, nil
}

// E2Recovery verifies C4/C5a (§5.1): recovery work grows with the number
// of rounds to replay and checkpointing caps it.
func E2Recovery(scale Scale) (*Result, error) {
	roundsList := []int{10, 50}
	if scale == Full {
		roundsList = []int{10, 50, 200, 500}
	}
	table := harness.NewTable(
		"E2 — recovery cost vs history length (n=3, crash p1 after R messages)",
		"R msgs", "checkpoint", "replayed rounds", "recovery time", "recovered from ckpt")
	res := &Result{Table: table}
	for _, rounds := range roundsList {
		for _, every := range []int{0, 10, 100} {
			if every == 100 && rounds < 100 {
				continue
			}
			c := harness.NewCluster(harness.Options{
				N:    3,
				Seed: 2000 + uint64(rounds) + uint64(every),
				Core: core.Config{CheckpointEvery: every},
			})
			if err := c.StartAll(); err != nil {
				c.Stop()
				return nil, err
			}
			cx, cancel := ctx()
			// p1 must participate so it has rounds to replay.
			err := broadcastN(c, cx, []ids.ProcessID{1}, rounds, 32)
			if err == nil {
				err = c.AwaitRound(cx, 1, uint64(rounds/2))
			}
			if err != nil {
				cancel()
				c.Stop()
				return nil, fmt.Errorf("E2 R=%d: %w", rounds, err)
			}
			c.Crash(1)
			dur, err := c.Recover(1)
			if err != nil {
				cancel()
				c.Stop()
				return nil, fmt.Errorf("E2 recover R=%d: %w", rounds, err)
			}
			st := c.Nodes[1].Proto().Stats()
			label := "off"
			if every > 0 {
				label = fmt.Sprintf("every %d", every)
			}
			table.Add(rounds, label, st.ReplayedRounds, dur.Round(time.Microsecond), st.RecoveredFromCkpt)
			cancel()
			c.Stop()
		}
	}
	res.Notes = append(res.Notes,
		"paper claim: without checkpoints the whole history is replayed; checkpoints bound replay to the rounds since the last one")
	return res, nil
}

// E3LogSize verifies C5b (§5.2): without application-level checkpoints the
// stable-storage footprint grows without bound; with them it stays flat.
func E3LogSize(scale Scale) (*Result, error) {
	msgs := scale.pick(120, 600)
	stride := msgs / 4
	type variant struct {
		name string
		core core.Config
	}
	variants := []variant{
		{"basic, no GC", core.Config{}},
		{"ckpt, full queue (§5.1)", core.Config{CheckpointEvery: 10}},
		{"ckpt, app state (§5.2)", core.Config{CheckpointEvery: 10, Checkpointer: kvFold{rsm.NewStore()}}},
	}
	table := harness.NewTable(
		fmt.Sprintf("E3 — stable-storage footprint growth (p0 bytes after each %d msgs)", stride),
		"variant", "25%", "50%", "75%", "100%", "live keys at end")
	res := &Result{Table: table}
	for _, v := range variants {
		c := harness.NewCluster(harness.Options{N: 3, Seed: 3000, Core: v.core})
		if err := c.StartAll(); err != nil {
			c.Stop()
			return nil, err
		}
		cx, cancel := ctx()
		var samples []int
		ok := true
		for step := 0; step < 4; step++ {
			if err := broadcastN(c, cx, []ids.ProcessID{0}, stride, 128); err != nil {
				ok = false
				break
			}
			samples = append(samples, c.MemStore(0).Size())
		}
		cancel()
		if !ok {
			c.Stop()
			return nil, fmt.Errorf("E3 %s failed", v.name)
		}
		table.Add(v.name, samples[0], samples[1], samples[2], samples[3], c.MemStore(0).KeyCount())
		c.Stop()
	}
	res.Notes = append(res.Notes,
		"paper claim: 'the size of the logs grows indefinitely' without application checkpoints; 'a checkpoint of the application state can substitute the associated prefix of the delivered message log'")
	return res, nil
}
