package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/storage"
	"repro/internal/transport"
)

// E16 measures sharded multi-group ordering: G independent instances of
// the ordering protocol behind one API, one multiplexed connection set and
// (optionally) one shared group-commit WAL. PR 1 made consensus rounds
// concurrent within one sequencer and PR 2 made their fsyncs shared; the
// sequencer itself remained the last global serialization point — its
// throughput is capped at PipelineDepth x MaxBatch messages per consensus
// round trip no matter how fast the machine is. Groups multiply that cap:
// each group runs its own sequencer over the same substrate.
//
// The claim under test: on the delayed-LAN configuration, combined
// throughput scales near-linearly in G until a shared resource (CPU,
// fsync bandwidth, NIC) saturates — with >= 1.8x at G=4 enforced in CI by
// TestShardedBeatsSingleGroup. The shared-WAL rows additionally show that
// one store under all groups beats per-group stores on fsync count:
// cross-group persists coalesce into the same commit groups.

// ShardedCore returns the per-group protocol configuration used by E16:
// the pipelined + batched hot path with a bounded proposal size. The
// MaxBatch cap is what makes a single sequencer saturate — real
// deployments always bound proposals (message-size limits, fairness);
// without a cap a lone group hides its serialization point by growing
// batches without bound as load rises.
func ShardedCore() core.Config {
	return core.Config{
		PipelineDepth:    4,
		BatchedBroadcast: true,
		IncrementalLog:   true,
		MaxBatch:         8,
		MaxBatchDelay:    200 * time.Microsecond,
	}
}

// ShardedMetrics is one variant's outcome in the E16 scaling shootout.
type ShardedMetrics struct {
	Groups     int
	Msgs       int
	Elapsed    time.Duration
	MsgsPerSec float64
	Rounds     uint64 // consensus instances committed across groups (p0)
	Syncs      int64  // fsyncs at p0's engine(s); 0 for mem stores
}

// ShardedThroughput measures end-to-end ordering throughput of a
// 3-process cluster running G ordering groups: closed-loop lanes spread a
// fixed message count round-robin over the groups, and the clock stops
// when every process has delivered every message in every group. custom,
// when set, adjusts the harness options (transport, storage engines)
// before the cluster is built.
func ShardedThroughput(scale Scale, seed uint64, groups int, cfg core.Config, custom func(*harness.ShardedOptions)) (ShardedMetrics, error) {
	const senders, lanes = 3, 4
	perLane := scale.pick(60, 400)
	total := senders * lanes * perLane

	var sm ShardedMetrics
	opts := harness.ShardedOptions{
		N:      3,
		Groups: groups,
		Seed:   seed,
		// The same LAN-like one-way delay as E14: real networks charge
		// per round trip, which is exactly the cost G sequencers pay in
		// parallel where one pays it serially.
		Net:  transport.MemOptions{Seed: seed, MinDelay: 200 * time.Microsecond, MaxDelay: 400 * time.Microsecond},
		Core: cfg,
	}
	if custom != nil {
		custom(&opts)
	}
	c := harness.NewShardedCluster(opts)
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return sm, err
	}
	cx, cancel := ctx()
	defer cancel()

	start := time.Now()
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		lerr  error
	)
	for s := 0; s < senders; s++ {
		for l := 0; l < lanes; l++ {
			wg.Add(1)
			go func(pid ids.ProcessID, lane int) {
				defer wg.Done()
				payload := make([]byte, 64)
				for i := 0; i < perLane; i++ {
					g := ids.GroupID((lane*perLane + i) % groups)
					if _, err := c.Broadcast(cx, pid, g, payload); err != nil {
						errMu.Lock()
						if lerr == nil {
							lerr = fmt.Errorf("lane p%v/%d: %w", pid, lane, err)
						}
						errMu.Unlock()
						return
					}
				}
			}(ids.ProcessID(s), l)
		}
	}
	wg.Wait()
	if lerr != nil {
		return sm, lerr
	}
	// Stop the clock once everything is delivered everywhere, BEFORE the
	// per-group safety verification (that cost is the checker's).
	for g := 0; g < groups; g++ {
		rec := c.Recs[g]
		must := rec.DeliveredAnywhere()
		must = append(must, rec.ReturnedBroadcasts()...)
		for _, id := range must {
			if err := c.AwaitDelivered(cx, ids.GroupID(g), id, 0, 1, 2); err != nil {
				return sm, err
			}
		}
	}
	elapsed := time.Since(start)
	if err := c.VerifyAll(0, 1, 2); err != nil {
		return sm, err
	}
	var rounds uint64
	for g := 0; g < groups; g++ {
		if p := c.Nodes[0][g].Proto(); p != nil {
			rounds += p.Stats().Rounds
		}
	}
	sm = ShardedMetrics{
		Groups:     groups,
		Msgs:       total,
		Elapsed:    elapsed,
		MsgsPerSec: float64(total) / elapsed.Seconds(),
		Rounds:     rounds,
		Syncs:      c.SharedSyncCount(0),
	}
	return sm, nil
}

// e16WALStore returns a NewStore hook opening one shared WAL per process
// under dir.
func e16WALStore(dir string) func(ids.ProcessID) storage.Stable {
	return func(pid ids.ProcessID) storage.Stable {
		w, err := storage.OpenWAL(filepath.Join(dir, fmt.Sprintf("p%d", pid)),
			storage.WALOptions{SyncEvery: 16, MaxSyncDelay: 500 * time.Microsecond})
		if err != nil {
			panic(fmt.Sprintf("E16: open wal: %v", err))
		}
		return w
	}
}

// e16GroupWALStore returns a GroupStore hook opening one WAL per
// (process, group) pair — the per-group-store deployment whose fsyncs
// cannot coalesce across groups.
func e16GroupWALStore(dir string) func(ids.ProcessID, ids.GroupID) storage.Stable {
	return func(pid ids.ProcessID, g ids.GroupID) storage.Stable {
		w, err := storage.OpenWAL(filepath.Join(dir, fmt.Sprintf("p%d-g%d", pid, g)),
			storage.WALOptions{SyncEvery: 16, MaxSyncDelay: 500 * time.Microsecond})
		if err != nil {
			panic(fmt.Sprintf("E16: open wal: %v", err))
		}
		return w
	}
}

// E16Sharding tabulates throughput versus group count on the simulated
// delayed LAN and a TCP loopback transport, plus shared-WAL versus
// per-group-WAL rows at equal durability.
func E16Sharding(scale Scale) (*Result, error) {
	table := harness.NewTable(
		"E16 — sharded multi-group ordering: throughput vs group count (n=3, 3 senders x 4 lanes, bounded batches)",
		"variant", "groups", "msgs", "elapsed", "msgs/s", "speedup", "rounds", "fsyncs p0")
	res := &Result{Table: table}

	type variant struct {
		name   string
		groups int
		custom func(*harness.ShardedOptions)
		clean  func()
	}
	mkTCP := func(o *harness.ShardedOptions) {
		addrs, err := freeLoopbackAddrs(3)
		if err != nil {
			panic(fmt.Sprintf("E16: reserve loopback addrs: %v", err))
		}
		o.Transport = transport.NewTCP(addrs)
	}
	var variants []variant
	for _, g := range []int{1, 2, 4, 8} {
		variants = append(variants, variant{name: "mem", groups: g})
	}
	for _, g := range []int{1, 4} {
		variants = append(variants, variant{name: "tcp loopback", groups: g, custom: mkTCP})
	}
	for _, v := range []struct {
		name   string
		groups int
		per    bool
	}{{"shared WAL", 1, false}, {"shared WAL", 4, false}, {"per-group WAL", 4, true}} {
		dir, err := os.MkdirTemp("", "abcast-e16-")
		if err != nil {
			return nil, err
		}
		clean := func() { os.RemoveAll(dir) }
		if v.per {
			variants = append(variants, variant{name: v.name, groups: v.groups,
				custom: func(o *harness.ShardedOptions) { o.GroupStore = e16GroupWALStore(dir) }, clean: clean})
		} else {
			variants = append(variants, variant{name: v.name, groups: v.groups,
				custom: func(o *harness.ShardedOptions) { o.NewStore = e16WALStore(dir) }, clean: clean})
		}
	}

	base := make(map[string]float64) // family -> G=1 msgs/s
	walSyncs := make(map[string]int64)
	for i, v := range variants {
		sm, err := ShardedThroughput(scale, 16000+uint64(i)*17, v.groups, ShardedCore(), v.custom)
		if v.clean != nil {
			v.clean()
		}
		if err != nil {
			return nil, fmt.Errorf("E16 %s G=%d: %w", v.name, v.groups, err)
		}
		if v.groups == 1 {
			base[v.name] = sm.MsgsPerSec
		}
		speedup := "-"
		if b := base[v.name]; b > 0 && v.groups > 1 {
			speedup = fmt.Sprintf("%.1fx", sm.MsgsPerSec/b)
		}
		syncs := "-"
		if sm.Syncs > 0 {
			syncs = fmt.Sprint(sm.Syncs)
			walSyncs[fmt.Sprintf("%s/G%d", v.name, v.groups)] = sm.Syncs
		}
		table.Add(v.name, sm.Groups, sm.Msgs, sm.Elapsed.Round(time.Millisecond),
			sm.MsgsPerSec, speedup, sm.Rounds, syncs)
	}
	res.Notes = append(res.Notes,
		"each group is an independent sequencer: throughput scales with G until CPU/fsync/NIC saturates (acceptance: >= 1.8x at G=4 on mem)",
		"bounded proposals (MaxBatch) model real message-size limits; they are what makes a single sequencer the bottleneck",
	)
	if s, p := walSyncs["shared WAL/G4"], walSyncs["per-group WAL/G4"]; s > 0 && p > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"shared WAL coalesces cross-group persists: %d fsyncs at p0 vs %d with per-group WALs at the same durability", s, p))
	}
	res.Notes = append(res.Notes,
		"per-group ordering only: no cross-group causality unless the deterministic merge is consumed (see README)")
	return res, nil
}
