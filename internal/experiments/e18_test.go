package experiments

import (
	"testing"
)

// TestLifecycleBoundsState is the bounded-state regression guard for the
// log lifecycle (E18's acceptance claim): under the same churn workload,
//
//   - merged-mode application checkpointing must fold the delivered
//     prefix — the retained suffix stays a small fraction of the
//     no-checkpoint run's (which retains everything), and
//   - background segment compaction must bound the WAL's disk usage —
//     the compacted run's on-disk bytes stay well below the
//     non-compacted checkpointing run's, with at least one cycle
//     completed.
//
// Functional correctness of the folds and the compactor under faults is
// covered by TestSoakSeedsSharded's ckpt variant and the
// internal/storage crash tests; this guard pins the resource claim.
func TestLifecycleBoundsState(t *testing.T) {
	if testing.Short() {
		t.Skip("perf guard: runs in its own CI step (and in full local runs)")
	}
	noCkpt, err := LifecycleChurn(Quick, 18100, 0, 0)
	if err != nil {
		t.Fatalf("no-ckpt run: %v", err)
	}
	compacted, err := LifecycleChurn(Quick, 18101, 8, 3)
	if err != nil {
		t.Fatalf("ckpt+compact run: %v", err)
	}
	t.Logf("no-ckpt: suffix=%d disk=%dKiB; ckpt+compact: suffix=%d folded=%d disk=%dKiB live=%dKiB cycles=%d",
		noCkpt.SuffixEntries, noCkpt.WALDisk/1024,
		compacted.SuffixEntries, compacted.FoldedRounds, compacted.WALDisk/1024, compacted.WALLive/1024, compacted.Compactions)

	if compacted.FoldedRounds == 0 {
		t.Fatal("merged-mode checkpointing never folded a round")
	}
	if compacted.SuffixEntries*4 > noCkpt.SuffixEntries {
		t.Fatalf("checkpointing retained %d suffix entries; want < 1/4 of the unfolded %d",
			compacted.SuffixEntries, noCkpt.SuffixEntries)
	}
	if compacted.Compactions == 0 {
		t.Fatal("background compaction never triggered under churn")
	}
	if compacted.WALDisk*2 > noCkpt.WALDisk {
		t.Fatalf("compacted WAL holds %d bytes; want < 1/2 of the uncompacted %d",
			compacted.WALDisk, noCkpt.WALDisk)
	}
}

// TestMergeLatencyCursorBeatsBatch guards the streaming cursor's point:
// consuming the merged sequence must not cost O(history) per poll. At a
// modest history depth the cursor's per-round advance must beat one batch
// recompute by a wide margin (the gap grows linearly with history).
func TestMergeLatencyCursorBeatsBatch(t *testing.T) {
	if raceEnabled {
		t.Skip("latency comparison is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("perf guard: runs in its own CI step (and in full local runs)")
	}
	mm, err := MergeLatency(2000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("history=%d rounds: batch %v/call, cursor %v/round", mm.Rounds, mm.BatchPerCall, mm.CursorPerRnd)
	if mm.CursorPerRnd*10 > mm.BatchPerCall {
		t.Fatalf("cursor advance (%v/round) is not >=10x cheaper than a batch recompute (%v/call) at %d rounds",
			mm.CursorPerRnd, mm.BatchPerCall, mm.Rounds)
	}
}
