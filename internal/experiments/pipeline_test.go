package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestPipelinedBatchedBeatsBasicThroughput is the perf-regression guard for
// the ordering hot path: on a 3-process cluster with LAN-like delays, the
// pipelined + adaptively batched configuration must beat the basic
// (strictly sequential, wait-until-ordered) protocol's end-to-end ordering
// throughput. The margin is normally >10x (see E14, which is where the
// >=2x acceptance number is demonstrated); the assertion bar here is lower
// because basic is latency-bound while pipelined+batched is CPU-bound, so
// a fully loaded test machine (the whole suite in parallel, -race) can
// compress the ratio without any protocol regression. A genuine loss of
// pipelining or batching drops the ratio to ~1x or below, well under the
// bar; scheduler noise is additionally absorbed by one retry.
func TestPipelinedBatchedBeatsBasicThroughput(t *testing.T) {
	if raceEnabled {
		t.Skip("throughput comparison is not meaningful under the race detector")
	}
	const want = 1.2
	measure := func(seed uint64) (basic, pipelined float64) {
		t.Helper()
		b, err := PipelineThroughput(Quick, seed, core.Config{})
		if err != nil {
			t.Fatalf("basic run: %v", err)
		}
		p, err := PipelineThroughput(Quick, seed+1, PipelinedCore())
		if err != nil {
			t.Fatalf("pipelined run: %v", err)
		}
		return b.MsgsPerSec, p.MsgsPerSec
	}
	basic, pipelined := measure(1400)
	t.Logf("basic=%.0f msgs/s pipelined+batched=%.0f msgs/s ratio=%.1fx", basic, pipelined, pipelined/basic)
	if pipelined < want*basic {
		basic, pipelined = measure(2400)
		t.Logf("retry: basic=%.0f msgs/s pipelined+batched=%.0f msgs/s ratio=%.1fx", basic, pipelined, pipelined/basic)
	}
	if pipelined < want*basic {
		t.Fatalf("pipelined+batched throughput %.0f msgs/s < %.1fx basic %.0f msgs/s", pipelined, want, basic)
	}
}
