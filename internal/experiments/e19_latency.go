package experiments

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/transport"
)

// E19 measures the latency fast path: how long a client waits for a
// speculative (tentative) delivery versus a durable (confirmed) one, and
// what the stable-sequencer lease shaves off the confirmed path by
// skipping the prepare phase while the proposer stays stable.
//
// The workload is closed-loop from the sequencer process: each broadcast
// carries its index, the OnTentative hook timestamps the speculative
// delivery, and the Broadcast return (which per §2.1 implies the round
// is decided and logged) timestamps the durable commit. Tentative
// deliveries cost no extra network round — the sequencer emits them at
// propose time — so their latency is the local proposal path, while the
// confirmed path pays consensus: with the lease, one accept round; cold,
// prepare + accept.

// E19Metrics is one variant's latency distribution.
type E19Metrics struct {
	Variant    string        `json:"variant"`
	Transport  string        `json:"transport"`
	Lease      bool          `json:"lease"`
	Msgs       int           `json:"msgs"`
	TentP50    time.Duration `json:"tentative_p50_ns"`
	TentP99    time.Duration `json:"tentative_p99_ns"`
	ConfP50    time.Duration `json:"confirmed_p50_ns"`
	ConfP99    time.Duration `json:"confirmed_p99_ns"`
	FastRounds uint64        `json:"lease_fast_rounds"`
	Tentatives uint64        `json:"tentative_deliveries"`
	Confirmed  uint64        `json:"tentative_confirmed"`
	Revoked    uint64        `json:"tentative_revoked"`
	// Trajectory samples per-message latencies (µs, broadcast order,
	// uniformly downsampled) so BENCH_e19.json captures the shape of the
	// distribution, not just two quantiles.
	TrajTentUS []int64 `json:"trajectory_tentative_us,omitempty"`
	TrajConfUS []int64 `json:"trajectory_confirmed_us,omitempty"`
	// Stages is the sequencer's traced lifecycle breakdown (broadcast →
	// batch-seal → propose → decide → ... → confirm, p50/p99 offsets from
	// broadcast): where within the confirmed path the time goes.
	Stages []StageLatency `json:"stage_latency,omitempty"`
}

// LatencyRun drives one E19 variant and returns its distribution.
// tcp selects a real TCP loopback transport over the delayed simulated
// LAN; lease enables the stable-sequencer lease.
func LatencyRun(scale Scale, seed uint64, tcp, lease bool) (E19Metrics, error) {
	msgs := scale.pick(150, 1200)
	m := E19Metrics{Transport: "mem", Lease: lease, Msgs: msgs}
	if tcp {
		m.Transport = "tcp"
	}
	m.Variant = fmt.Sprintf("%s/lease=%v", m.Transport, lease)

	// Tentative timestamps, indexed by the message's payload counter.
	var mu sync.Mutex
	tentAt := make(map[uint64]time.Time, msgs)
	t0 := make([]time.Time, msgs)

	opts := harness.Options{
		N:    3,
		Seed: seed,
		Net: transport.MemOptions{
			Seed:     seed,
			MinDelay: 200 * time.Microsecond,
			MaxDelay: 400 * time.Microsecond,
		},
		// The basic Fig.2 configuration: Broadcast blocks until the round
		// is decided and logged, so its duration IS the confirmed commit
		// latency. (Batched broadcast's §5.4 early return would measure
		// the local append instead.)
		Core:      core.Config{},
		Consensus: consensus.Config{Lease: lease, LeaseTTL: time.Second},
		// Trace every message: the stage-latency breakdown in the JSON
		// artifact must account for the whole measurement window.
		Obs: obs.Options{SampleRate: 1},
		OnTentative: func(pid ids.ProcessID, d core.Delivery) {
			now := time.Now()
			if len(d.Msg.Payload) < 8 {
				return
			}
			i := binary.BigEndian.Uint64(d.Msg.Payload)
			mu.Lock()
			if _, dup := tentAt[i]; !dup {
				tentAt[i] = now
			}
			mu.Unlock()
		},
	}
	if tcp {
		addrs, err := freeLoopbackAddrs(3)
		if err != nil {
			return m, fmt.Errorf("reserve loopback addrs: %w", err)
		}
		opts.Transport = transport.NewTCP(addrs)
	}
	c := harness.NewCluster(opts)
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return m, err
	}
	cx, cancel := ctx()
	defer cancel()

	// All broadcasts from p0: PolicyLeader makes it the stable sequencer,
	// so it both proposes (emitting tentatives) and, with the lease,
	// keeps the fast path engaged. Warmup rounds run until the lease is
	// actually held (acquisition is asynchronous, piggybacked on decided
	// rounds), so the measurement window sees the steady state.
	payload := make([]byte, 64)
	warmupUntil := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		if _, err := c.Broadcast(cx, 0, []byte("warmup-filler-00")); err != nil {
			return m, fmt.Errorf("warmup %d: %w", i, err)
		}
		if i >= 7 && (!lease || c.Nodes[0].Engine().LeaseStats().Held) {
			break
		}
		if time.Now().After(warmupUntil) {
			return m, fmt.Errorf("lease never acquired during warmup (%d rounds)", i+1)
		}
	}
	confLat := make([]time.Duration, 0, msgs)
	for i := 0; i < msgs; i++ {
		binary.BigEndian.PutUint64(payload, uint64(i))
		t0[i] = time.Now()
		if _, err := c.Broadcast(cx, 0, payload); err != nil {
			return m, fmt.Errorf("broadcast %d: %w", i, err)
		}
		confLat = append(confLat, time.Since(t0[i]))
	}
	if err := c.AwaitAllDelivered(cx, 0, 1, 2); err != nil {
		return m, err
	}
	if err := c.VerifyAll(0, 1, 2); err != nil {
		return m, err
	}

	var tentLat []time.Duration
	mu.Lock()
	for i, at := range tentAt {
		if int(i) < len(t0) && at.After(t0[i]) {
			tentLat = append(tentLat, at.Sub(t0[i]))
		}
	}
	mu.Unlock()
	if len(tentLat) < msgs/2 {
		return m, fmt.Errorf("only %d/%d broadcasts got a tentative delivery (sequencer not predicting?)", len(tentLat), msgs)
	}

	st := c.Nodes[0].Proto().Stats()
	m.Tentatives = st.TentativeDeliveries
	m.Confirmed = st.TentativeConfirmed
	m.Revoked = st.TentativeRevoked
	if e := c.Nodes[0].Engine(); e != nil {
		m.FastRounds = e.LeaseStats().FastRounds
	}
	m.TentP50, m.TentP99 = durPercentile(tentLat, 50), durPercentile(tentLat, 99)
	m.ConfP50, m.ConfP99 = durPercentile(confLat, 50), durPercentile(confLat, 99)
	m.TrajTentUS = trajectoryUS(tentLat, 120)
	m.TrajConfUS = trajectoryUS(confLat, 120)
	m.Stages = stageLatencies(c.Obs[0])
	return m, nil
}

// durPercentile returns the pth percentile of a latency sample
// (nearest-rank on a sorted copy).
func durPercentile(sample []time.Duration, p int) time.Duration {
	if len(sample) == 0 {
		return 0
	}
	s := make([]time.Duration, len(sample))
	copy(s, sample)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := (len(s)*p + 99) / 100
	if i > 0 {
		i--
	}
	return s[i]
}

// trajectoryUS downsamples a latency series to at most n points, in
// microseconds, preserving broadcast order.
func trajectoryUS(sample []time.Duration, n int) []int64 {
	if len(sample) == 0 {
		return nil
	}
	step := (len(sample) + n - 1) / n
	out := make([]int64, 0, n)
	for i := 0; i < len(sample); i += step {
		out = append(out, sample[i].Microseconds())
	}
	return out
}

// e19Variants runs the 2x2 matrix {mem, tcp} x {lease off, on}.
func e19Variants(scale Scale) ([]E19Metrics, error) {
	var out []E19Metrics
	i := 0
	for _, tcp := range []bool{false, true} {
		for _, lease := range []bool{false, true} {
			m, err := LatencyRun(scale, 19000+uint64(i)*17, tcp, lease)
			if err != nil {
				return nil, fmt.Errorf("E19 %s: %w", m.Variant, err)
			}
			out = append(out, m)
			i++
		}
	}
	return out, nil
}

// E19Latency assembles the latency fast-path table.
func E19Latency(scale Scale) (*Result, error) {
	ms, err := e19Variants(scale)
	if err != nil {
		return nil, err
	}
	table := harness.NewTable(
		fmt.Sprintf("E19 — commit latency: tentative vs confirmed, leased vs unleased (n=3, %d msgs, closed loop from the sequencer)", ms[0].Msgs),
		"variant", "tent p50", "tent p99", "conf p50", "conf p99", "lease fast rounds", "revoked")
	res := &Result{Table: table}
	for _, m := range ms {
		table.Add(m.Variant,
			m.TentP50.Round(time.Microsecond), m.TentP99.Round(time.Microsecond),
			m.ConfP50.Round(time.Microsecond), m.ConfP99.Round(time.Microsecond),
			m.FastRounds, m.Revoked)
	}
	memOff, memOn := ms[0], ms[1]
	res.Notes = append(res.Notes,
		fmt.Sprintf("tentative p50 is %.1fx lower than confirmed p50 on mem (speculation costs no consensus round; externalize only on confirm)",
			float64(memOff.ConfP50)/float64(max64(int64(memOff.TentP50), 1))),
		fmt.Sprintf("the stable-sequencer lease cut confirmed p50 from %v to %v on mem (%d accept-only rounds; prepare skipped while the proposer is stable)",
			memOff.ConfP50.Round(time.Microsecond), memOn.ConfP50.Round(time.Microsecond), memOn.FastRounds),
		"a calm run revokes nothing: every tentative is confirmed in order — revocation paths are exercised by the optimistic soaks instead")
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// E19WriteJSON runs the E19 matrix and publishes the trajectory as JSON
// (the committed BENCH_e19.json artifact).
func E19WriteJSON(scale Scale, path string) error {
	ms, err := e19Variants(scale)
	if err != nil {
		return err
	}
	doc := struct {
		Experiment string       `json:"experiment"`
		Claim      string       `json:"claim"`
		Scale      string       `json:"scale"`
		Variants   []E19Metrics `json:"variants"`
	}{
		Experiment: "E19 latency fast path",
		Claim:      "tentative p50 >= 2x lower than confirmed p50 on the mem transport; lease reduces confirmed latency while the sequencer is stable",
		Scale:      map[Scale]string{Quick: "quick", Full: "full"}[scale],
		Variants:   ms,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
