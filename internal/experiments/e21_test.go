package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/transport"
)

// TestAdaptiveMatchesBestStatic is the E21 regression guard: on the mem
// transport, the adaptive config must hold e21AdaptiveFloor of the best
// static config's score on every phase of the idle/burst/trickle/large
// walk, while each static config loses the cliff somewhere — one closed
// loop tracking whichever static point the regime favors. Commit-latency
// phases interleave all configs per round (see e21Transport), but a
// single-core CI runner still jitters individual runs, so the guard
// retries with fresh seeds: a controller regression fails every attempt,
// noise does not.
func TestAdaptiveMatchesBestStatic(t *testing.T) {
	if raceEnabled {
		t.Skip("latency/throughput comparison is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("perf guard: runs in its own CI step (and in full local runs)")
	}
	const attempts = 3
	var last []string
	for a := 1; a <= attempts; a++ {
		ms, err := e21Transport(Quick, uint64(21000+100*a), false)
		if err != nil {
			t.Fatalf("attempt %d: %v", a, err)
		}
		for _, n := range e21Compare(ms) {
			t.Logf("attempt %d: %s", a, n)
		}
		if last = e21Acceptance(ms); len(last) == 0 {
			return
		}
		t.Logf("attempt %d failed acceptance: %s", a, strings.Join(last, "; "))
	}
	t.Fatalf("E21 acceptance failed on all %d attempts: %s", attempts, strings.Join(last, "; "))
}

// TestAdaptiveOffFullyInert pins the opt-in contract: with
// Options.Adaptive unset, no controller exists, the construction-time
// knobs never move, and the registry carries no abcast.tune.* series —
// the static configurations the controller is benchmarked against are
// genuinely static.
func TestAdaptiveOffFullyInert(t *testing.T) {
	cfg := e21Configs()[1] // static-thr: both knobs sit away from their floors
	c := harness.NewCluster(harness.Options{
		N:    e21N,
		Seed: 9,
		Core: cfg.core,
		FD:   fd.Options{Heartbeat: 25 * time.Millisecond, Timeout: 500 * time.Millisecond},
		Net:  transport.MemOptions{Seed: 9},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	cx, cancel := ctx()
	defer cancel()
	pids := []ids.ProcessID{0, 1, 2}
	if err := broadcastN(c, cx, pids, 60, e21SmallPayload); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitAllDelivered(cx, pids...); err != nil {
		t.Fatal(err)
	}

	for _, tc := range c.Tuners {
		if tc != nil {
			t.Fatal("controller constructed with Adaptive off")
		}
	}
	for pid, n := range c.Nodes {
		if got := n.Proto().BatchDelay(); got != cfg.core.MaxBatchDelay {
			t.Errorf("p%d batch delay moved: %v, want %v", pid, got, cfg.core.MaxBatchDelay)
		}
		if got := n.Proto().PipelineDepth(); got != cfg.core.PipelineDepth {
			t.Errorf("p%d pipeline depth moved: %d, want %d", pid, got, cfg.core.PipelineDepth)
		}
	}
	for pid, pl := range c.Obs {
		pl.Reg().Each(func(name string, _ int64, _ bool) {
			if strings.HasPrefix(name, "abcast.tune.") {
				t.Errorf("p%d registry has %q with tuning off", pid, name)
			}
		})
	}
}
