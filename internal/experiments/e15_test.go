package experiments

import (
	"os"
	"testing"

	"repro/internal/storage"
)

// TestGroupCommitWALBeatsSyncFile is the perf-regression guard for the
// group-commit storage engine (E15's acceptance claim). Two margins are
// enforced, both at equal durability (no operation acknowledged before the
// fsync covering it):
//
//   - storage level: 32 concurrent committers on the bare engine. The WAL
//     must sustain >= 2x the sync-per-write File engine. The measured
//     margin is ~5-13x even on fast-fsync filesystems (it grows with
//     fsync latency), so 2x only trips when group commit genuinely stops
//     coalescing — e.g. the committer serializes per record again.
//   - protocol level: the full pipelined+batched broadcast stack over
//     each engine. The bar is lower (1.3x) because the protocol and the
//     simulated network dilute the storage margin and a loaded test
//     machine compresses ratios; a real regression (every record paying
//     its own fsync) drops this to ~1x.
//
// One retry absorbs scheduler noise, mirroring the E14 guard.
//
// The test skips in -short mode so CI can run it exactly once, in its
// dedicated step, instead of twice (the broad `go test -short ./...` step
// plus the guard step).
func TestGroupCommitWALBeatsSyncFile(t *testing.T) {
	if raceEnabled {
		t.Skip("throughput comparison is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("fsync-heavy perf guard: runs in its own CI step (and in full local runs)")
	}

	engines := e15Engines()
	storageRatio := func() float64 {
		t.Helper()
		var speeds []float64
		for _, eng := range engines {
			dir, err := os.MkdirTemp("", "abcast-e15guard-")
			if err != nil {
				t.Fatal(err)
			}
			st, err := eng.mk(dir)
			if err != nil {
				t.Fatalf("%s: %v", eng.name, err)
			}
			ops, _, _, err := StorageEngineThroughput(32, 40, st)
			if c, ok := st.(storage.Closer); ok {
				c.Close()
			}
			os.RemoveAll(dir)
			if err != nil {
				t.Fatalf("%s: %v", eng.name, err)
			}
			speeds = append(speeds, ops)
		}
		return speeds[1] / speeds[0] // wal / file
	}
	ratio := storageRatio()
	t.Logf("storage level: wal/file = %.1fx", ratio)
	if ratio < 2 {
		ratio = storageRatio()
		t.Logf("storage level retry: wal/file = %.1fx", ratio)
	}
	if ratio < 2 {
		t.Fatalf("group-commit WAL storage throughput only %.1fx of sync-per-write File (want >= 2x)", ratio)
	}

	protocolRatio := func(seed uint64) float64 {
		t.Helper()
		filePM, _, err := StorageProtocolThroughput(Quick, seed, engines[0].mk)
		if err != nil {
			t.Fatalf("file protocol run: %v", err)
		}
		walPM, _, err := StorageProtocolThroughput(Quick, seed+1, engines[1].mk)
		if err != nil {
			t.Fatalf("wal protocol run: %v", err)
		}
		t.Logf("protocol level: file=%.0f msgs/s wal=%.0f msgs/s ratio=%.1fx",
			filePM.MsgsPerSec, walPM.MsgsPerSec, walPM.MsgsPerSec/filePM.MsgsPerSec)
		return walPM.MsgsPerSec / filePM.MsgsPerSec
	}
	const want = 1.3
	ratio = protocolRatio(15100)
	if ratio < want {
		ratio = protocolRatio(15200)
	}
	if ratio < want {
		t.Fatalf("pipelined protocol over WAL only %.1fx of sync-per-write File (want >= %.1fx)", ratio, want)
	}
}
