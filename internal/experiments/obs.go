package experiments

import (
	"strings"

	"repro/internal/obs"
)

// StageLatency is one lifecycle stage's latency distribution — offsets
// from the span's first stamp, in nanoseconds — read from a process's
// trace plane. The experiments trace every message (SampleRate 1), so the
// counts equal the messages that reached the stage.
type StageLatency struct {
	Stage string `json:"stage"`
	Count uint64 `json:"count"`
	P50NS int64  `json:"p50_ns"`
	P99NS int64  `json:"p99_ns"`
}

// stageLatencies extracts every non-empty "abcast.trace.<stage>_ns"
// histogram from plane p, in registry (alphabetical) order.
func stageLatencies(p *obs.Plane) []StageLatency {
	if p == nil {
		return nil
	}
	var out []StageLatency
	p.Reg().EachHistogram(func(name string, s obs.HistSnapshot) {
		const prefix = "abcast.trace."
		if !strings.HasPrefix(name, prefix) || s.Count == 0 {
			return
		}
		out = append(out, StageLatency{
			Stage: strings.TrimSuffix(strings.TrimPrefix(name, prefix), "_ns"),
			Count: s.Count,
			P50NS: s.Quantile(0.50),
			P99NS: s.Quantile(0.99),
		})
	})
	return out
}
