//go:build !race

package experiments

// raceEnabled reports whether the race detector is instrumenting this test
// binary. See race_enabled_test.go.
const raceEnabled = false
