package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/abcast"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/obs"
)

// E22 measures elastic resharding: a live G=2 -> 4 scale-out under
// sustained load. E16 established that group count multiplies the
// sequencer throughput ceiling, but its topologies were fixed at
// construction; PR 10's AddGroup/RetireGroup make the group set a runtime
// knob. The claim under test: calling AddGroup twice on a loaded G=2
// cluster raises delivered throughput to >= 1.5x the pre-scale-out rate
// (guarded in CI by TestScaleOutRaisesThroughput), climbing toward the
// statically-G=4 level, without stopping the feed — and the subsequent
// live RetireGroup drains in a bounded window while traffic keeps
// flowing, re-routed off the sealed group by the router's epoch swap.
//
// The workload is the E16 shape (closed-loop keyed lanes, bounded
// batches over a delayed-LAN mem transport) so a single sequencer's
// PipelineDepth x MaxBatch ceiling — not the machine — is what the extra
// groups relieve. Delivered messages are counted at p0 across fixed
// wall-clock windows: pre (G=2), during (the window containing both
// AddGroup calls and the cluster-wide splice), post (G=4), and
// post-retire (G=3, after a live scale-in of the busiest original
// group). A separate statically-G=4 cluster runs the same lanes for the
// "how close did the live scale-out get" reference row.

// e22N is the cluster size, matching E16's 3-process topology.
const e22N = 3

// e22Lanes is the closed-loop sender lanes per process.
const e22Lanes = 4

// e22Payload is the small-message payload size: batching and round
// cadence, not bandwidth, dominate.
const e22Payload = 64

// e22Protocol is the bounded hot path shared by every E22 cluster: the
// E16 shape with a TIGHTER per-group ceiling (one round in flight, 4
// messages per proposal). E16's knobs leave a 2-group deployment fast
// enough to push a shared CI machine into CPU saturation, where extra
// sequencers relieve nothing; a scale-out experiment needs the per-group
// cap — PipelineDepth x MaxBatch per consensus round trip — to be the
// binding constraint on both sides of the transition, so the group count
// is what moves the ceiling.
func e22Protocol() abcast.ProtocolOptions {
	return abcast.ProtocolOptions{
		PipelineDepth:    1,
		BatchedBroadcast: true,
		IncrementalLog:   true,
		MaxBatch:         4,
		MaxBatchDelay:    200 * time.Microsecond,
		CheckpointEvery:  32,
	}
}

// E22Window is one fixed-duration throughput sample at p0.
type E22Window struct {
	Phase   string  `json:"phase"`
	Groups  int     `json:"groups"`
	Millis  float64 `json:"window_ms"`
	Msgs    uint64  `json:"delivered"`
	PerSec  float64 `json:"msgs_per_s"`
	Speedup float64 `json:"vs_pre,omitempty"` // rate relative to the pre window
}

// E22Metrics is the whole live-resharding walk plus the static reference.
type E22Metrics struct {
	N       int         `json:"n"`
	Windows []E22Window `json:"windows"`
	// ScaleOutMs is the wall time from the first AddGroup call until every
	// process has both new groups spliced in and serving.
	ScaleOutMs float64 `json:"scaleout_ms"`
	// DrainMs is the wall time of the live RetireGroup (the slowest
	// process's call): seal marker ordered, W drain rounds committed,
	// orphans re-injected, namespace archived.
	DrainMs float64 `json:"drain_ms"`
	// MigratedKeys/MigratedBytes are the retired group's archived
	// namespace, from the abcast.reshard.* registry at p0.
	MigratedKeys  uint64 `json:"migrated_keys"`
	MigratedBytes uint64 `json:"migrated_bytes"`
	// FinalEpoch is p0's topology epoch after the walk: one bump per
	// join/seal transition (2 joins + 1 seal = 3 from the initial 0).
	FinalEpoch int64 `json:"final_epoch"`
	// StaticPerSec is the statically-G=4 cluster's rate on the same lanes.
	StaticPerSec float64 `json:"static_g4_msgs_per_s"`
	// PostOverPre and PostOverStatic summarize the claim: live scale-out
	// multiplies throughput (>= e22ScaleOutFloor) and lands near the
	// static-G=4 level.
	PostOverPre    float64 `json:"post_over_pre"`
	PostOverStatic float64 `json:"post_over_static"`
}

// e22ScaleOutFloor is the CI acceptance threshold: post-scale-out
// throughput must be at least this multiple of the pre-scale-out rate.
// Doubling the sequencers ideally doubles the ceiling; 1.5x leaves head-
// room for shared-substrate saturation on a loaded runner.
const e22ScaleOutFloor = 1.5

// e22Cluster is one live abcast.Sharded deployment under closed-loop
// lanes, with delivered-at-p0 counting.
type e22Cluster struct {
	procs     []*abcast.Sharded
	planes    []*obs.Plane
	delivered atomic.Uint64 // non-marker deliveries at p0
	cancel    context.CancelFunc
	laneWG    sync.WaitGroup
	laneStop  context.CancelFunc
}

// e22Start builds and starts an e22N-process cluster with the given
// initial group count.
func e22Start(seed uint64, groups int) (*e22Cluster, error) {
	c := &e22Cluster{}
	net := abcast.NewMemNetwork(e22N, abcast.MemNetOptions{
		// The E16 delayed LAN: networks charge per round trip, which is
		// the cost G sequencers pay in parallel where one pays it serially.
		Seed: seed, MinDelay: 200 * time.Microsecond, MaxDelay: 400 * time.Microsecond,
	})
	snet := abcast.NewShardedNetwork(net, groups)
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = func() { cancel(); net.Close() }
	c.procs = make([]*abcast.Sharded, e22N)
	c.planes = make([]*obs.Plane, e22N)
	for p := 0; p < e22N; p++ {
		pid := ids.ProcessID(p)
		c.planes[p] = obs.New(obs.Options{PID: pid})
		cfg := abcast.ShardedConfig{
			PID: pid, N: e22N,
			Protocol: e22Protocol(),
			Obs:      c.planes[p],
		}
		if p == 0 {
			cfg.OnDeliver = func(d abcast.Delivery) {
				if !abcast.IsReshardMarker(d.Msg.Payload) {
					c.delivered.Add(1)
				}
			}
		}
		s, err := abcast.NewSharded(cfg, abcast.NewMemStorage(), snet)
		if err != nil {
			c.cancel()
			return nil, err
		}
		if err := s.Start(ctx); err != nil {
			c.cancel()
			return nil, err
		}
		c.procs[p] = s
	}
	return c, nil
}

// e22Window is each lane's in-flight cap: deep enough that every group's
// sequencer always has a full MaxBatch x PipelineDepth window of supply
// (throughput measures ordering capacity, not submission latency),
// bounded so the unordered backlog cannot outgrow what the rounds drain —
// BatchedBroadcast returns at log time, and an uncapped feed would bury
// the protocol under an ever-growing unordered set.
const e22InFlight = 32

// startLanes launches e22Lanes keyed sender lanes per process, each a
// sliding window of e22InFlight batched broadcasts: submit at log-time
// speed, await the oldest message's local delivery once the window is
// full. Submission errors are transient by construction (a key routed to
// a group whose local member is still splicing in, or to one sealing
// shut) and the lane retries with its next key; an await that outlives
// its deadline (an orphan re-injected under a remapped identity during a
// retirement) is abandoned — both dips are part of what the during-
// window measures.
func (c *e22Cluster) startLanes() {
	lctx, lcancel := context.WithCancel(context.Background())
	c.laneStop = lcancel
	payload := make([]byte, e22Payload)
	for p := 0; p < e22N; p++ {
		for l := 0; l < e22Lanes; l++ {
			c.laneWG.Add(1)
			go func(s *abcast.Sharded, lane int) {
				defer c.laneWG.Done()
				type sent struct {
					g  abcast.GroupID
					id abcast.MsgID
				}
				var window []sent
				for i := 0; lctx.Err() == nil; i++ {
					key := fmt.Sprintf("e22-%d-%d", lane, i)
					bctx, bcancel := context.WithTimeout(lctx, 5*time.Second)
					g, id, err := s.Broadcast(bctx, []byte(key), payload)
					bcancel()
					if err != nil {
						if lctx.Err() == nil {
							time.Sleep(200 * time.Microsecond)
						}
						continue
					}
					window = append(window, sent{g, id})
					if len(window) < e22InFlight {
						continue
					}
					oldest := window[0]
					window = window[1:]
					deadline := time.Now().Add(250 * time.Millisecond)
					done := false
					for lctx.Err() == nil && time.Now().Before(deadline) {
						if done = s.Delivered(oldest.g, oldest.id); done {
							break
						}
						time.Sleep(200 * time.Microsecond)
					}
					if !done {
						// A retirement orphaned this group's tail: those
						// messages re-enter under remapped identities the
						// lane cannot track. Flush the group's entries so
						// one bounded timeout, not one per entry, covers
						// the seal.
						keep := window[:0]
						for _, w := range window {
							if w.g != oldest.g {
								keep = append(keep, w)
							}
						}
						window = keep
					}
				}
			}(c.procs[p], p*e22Lanes+l)
		}
	}
}

func (c *e22Cluster) stopLanes() {
	if c.laneStop != nil {
		c.laneStop()
		c.laneWG.Wait()
	}
}

func (c *e22Cluster) stop() {
	c.stopLanes()
	for _, s := range c.procs {
		if s != nil {
			s.Crash()
		}
	}
	c.cancel()
}

// window samples delivered-at-p0 over a fixed wall-clock duration.
func (c *e22Cluster) window(phase string, groups int, d time.Duration) E22Window {
	c0 := c.delivered.Load()
	t0 := time.Now()
	time.Sleep(d)
	el := time.Since(t0)
	n := c.delivered.Load() - c0
	return E22Window{
		Phase: phase, Groups: groups,
		Millis: float64(el.Microseconds()) / 1e3,
		Msgs:   n,
		PerSec: float64(n) / el.Seconds(),
	}
}

// awaitServing polls until every process has group g in its topology
// with its local member node up.
func e22AwaitServing(cx context.Context, procs []*abcast.Sharded, g abcast.GroupID) error {
	for {
		ready := true
		for _, p := range procs {
			if !p.InTopology(g) || !p.Up() {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		select {
		case <-cx.Done():
			return fmt.Errorf("await group %v serving everywhere: %w", g, cx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// e22Live runs the full walk: pre window at G=2, two live AddGroups,
// post window at G=4, then a live RetireGroup with the lanes still
// feeding, plus the statically-G=4 reference cluster.
func e22Live(scale Scale, seed uint64) (*E22Metrics, error) {
	warm := time.Duration(scale.pick(150, 400)) * time.Millisecond
	win := time.Duration(scale.pick(400, 1500)) * time.Millisecond

	m := &E22Metrics{N: e22N}
	cx, cancel := ctx()
	defer cancel()

	c, err := e22Start(seed, 2)
	if err != nil {
		return nil, fmt.Errorf("start live cluster: %w", err)
	}
	defer c.stop()
	c.startLanes()
	time.Sleep(warm)

	pre := c.window("pre", 2, win)
	pre.Speedup = 1
	m.Windows = append(m.Windows, pre)

	// Scale out live: mint both groups from p0 (one caller per scale-out;
	// every other process splices in off the JOIN markers), then wait for
	// the whole cluster to serve them. The during-window is the window
	// that contains the transition.
	d0 := c.delivered.Load()
	t0 := time.Now()
	var added []abcast.GroupID
	for i := 0; i < 2; i++ {
		g, err := c.procs[0].AddGroup(cx)
		if err != nil {
			return nil, fmt.Errorf("AddGroup #%d: %w", i+1, err)
		}
		added = append(added, g)
	}
	for _, g := range added {
		if err := e22AwaitServing(cx, c.procs, g); err != nil {
			return nil, err
		}
	}
	m.ScaleOutMs = float64(time.Since(t0).Microseconds()) / 1e3
	if rest := win - time.Since(t0); rest > 0 {
		time.Sleep(rest)
	}
	el := time.Since(t0)
	during := E22Window{
		Phase: "during", Groups: 4,
		Millis: float64(el.Microseconds()) / 1e3,
		Msgs:   c.delivered.Load() - d0,
	}
	during.PerSec = float64(during.Msgs) / el.Seconds()
	during.Speedup = during.PerSec / pre.PerSec
	m.Windows = append(m.Windows, during)

	time.Sleep(warm) // settle: batch delays re-amortize over 4 groups
	post := c.window("post", 4, win)
	post.Speedup = post.PerSec / pre.PerSec
	m.Windows = append(m.Windows, post)

	// Scale in live: retire original group 0 with the lanes still feeding
	// it — Broadcast re-routes sealed keys itself. RetireGroup is an
	// every-caller operation; the drain window is the slowest call.
	t0 = time.Now()
	errs := make(chan error, e22N)
	for _, p := range c.procs {
		go func(p *abcast.Sharded) { errs <- p.RetireGroup(cx, 0) }(p)
	}
	for range c.procs {
		if err := <-errs; err != nil {
			return nil, fmt.Errorf("RetireGroup(g0): %w", err)
		}
	}
	m.DrainMs = float64(time.Since(t0).Microseconds()) / 1e3

	retired := c.window("post-retire", 3, win)
	retired.Speedup = retired.PerSec / pre.PerSec
	m.Windows = append(m.Windows, retired)
	c.stopLanes()

	reg := c.planes[0].Reg()
	m.MigratedKeys = reg.Counter("abcast.reshard.migrated_keys").Value()
	m.MigratedBytes = reg.Counter("abcast.reshard.migrated_bytes").Value()
	m.FinalEpoch = reg.Gauge("abcast.reshard.epoch").Value()
	m.PostOverPre = post.Speedup

	// The statically-G=4 reference: same lanes, same substrate, topology
	// fixed at construction — what the live scale-out climbs toward.
	sc, err := e22Start(seed+101, 4)
	if err != nil {
		return nil, fmt.Errorf("start static cluster: %w", err)
	}
	defer sc.stop()
	sc.startLanes()
	time.Sleep(warm)
	stat := sc.window("static", 4, win)
	m.StaticPerSec = stat.PerSec
	if stat.PerSec > 0 {
		m.PostOverStatic = post.PerSec / stat.PerSec
	}
	return m, nil
}

// e22Acceptance checks the E22 claim on one walk's metrics; nil when it
// holds.
func e22Acceptance(m *E22Metrics) []string {
	var bad []string
	if m.PostOverPre < e22ScaleOutFloor {
		bad = append(bad, fmt.Sprintf("post-scale-out throughput is %.2fx pre (floor %.1fx)",
			m.PostOverPre, e22ScaleOutFloor))
	}
	if m.FinalEpoch != 3 {
		bad = append(bad, fmt.Sprintf("final topology epoch %d, want 3 (2 joins + 1 seal)", m.FinalEpoch))
	}
	return bad
}

// E22Resharding tabulates the live-resharding walk.
func E22Resharding(scale Scale) (*Result, error) {
	m, err := e22Live(scale, 22000)
	if err != nil {
		return nil, fmt.Errorf("E22: %w", err)
	}
	table := harness.NewTable(
		"E22 — elastic resharding: live G=2->4 scale-out and G=4->3 scale-in under closed-loop load (n=3, 12 lanes, bounded batches)",
		"phase", "groups", "window ms", "delivered", "msgs/s", "vs pre")
	res := &Result{Table: table}
	for _, w := range m.Windows {
		table.Add(w.Phase, w.Groups, fmt.Sprintf("%.0f", w.Millis), w.Msgs,
			fmt.Sprintf("%.0f", w.PerSec), fmt.Sprintf("%.2fx", w.Speedup))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("scale-out (2x AddGroup + cluster-wide splice) took %.1f ms; traffic never stopped", m.ScaleOutMs),
		fmt.Sprintf("live RetireGroup drained in %.1f ms (seal marker + W drain rounds + orphan re-injection + archive of %d keys / %d bytes)",
			m.DrainMs, m.MigratedKeys, m.MigratedBytes),
		fmt.Sprintf("post-scale-out reaches %.2fx pre-scale-out (acceptance: >= %.1fx, TestScaleOutRaisesThroughput) and %.0f%% of the statically-G=4 rate (%.0f msgs/s)",
			m.PostOverPre, e22ScaleOutFloor, 100*m.PostOverStatic, m.StaticPerSec),
		"joins and seals are ordinary agreed rounds (JOIN/SEAL markers), so every process switches topology at the same position — no downtime, no coordinator",
	)
	return res, nil
}

// E22WriteJSON runs the walk and publishes it as the committed
// BENCH_e22.json artifact.
func E22WriteJSON(scale Scale, path string) error {
	m, err := e22Live(scale, 22000)
	if err != nil {
		return err
	}
	doc := struct {
		Experiment string      `json:"experiment"`
		Claim      string      `json:"claim"`
		Scale      string      `json:"scale"`
		Metrics    *E22Metrics `json:"metrics"`
	}{
		Experiment: "E22 elastic resharding",
		Claim: fmt.Sprintf("a live G=2->4 scale-out under load reaches >= %.1fx the pre-scale-out delivered throughput, climbing toward the statically-G=4 level, and a live RetireGroup drains in a bounded window without stopping the feed",
			e22ScaleOutFloor),
		Scale:   map[Scale]string{Quick: "quick", Full: "full"}[scale],
		Metrics: m,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
