package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/storage"
	"repro/internal/transport"
)

// E15 measures the group-commit WAL storage engine against the
// sync-per-write File engine at equal durability: in both, a log operation
// is not acknowledged (and the protocol does not act on it) before the
// fsync covering it completes. The File engine pays one fsync per record;
// the WAL coalesces every concurrent record — the writes of all
// PipelineDepth in-flight rounds and all concurrent Broadcast callers —
// into one.
//
// Two levels are reported:
//
//   - storage: concurrent committers driving the engine directly with the
//     hot path's write mix (cell puts + log appends, each must be durable
//     before the writer continues). This isolates the group-commit
//     amortization from protocol/network costs; the margin here is
//     machine-dependent but large (it grows with fsync latency and
//     concurrency).
//   - protocol: the full pipelined+batched Atomic Broadcast over each
//     engine (real files, real fsyncs). Network and protocol costs dilute
//     the margin; the in-memory engine row shows the no-durability
//     ceiling.
//
// TestGroupCommitWALBeatsSyncFile guards the margins in CI.

// syncCounted is implemented by engines that count their fsyncs (File,
// WAL).
type syncCounted interface{ SyncCount() int64 }

// e15Engine is one storage engine variant under test.
type e15Engine struct {
	name string
	mk   func(dir string) (storage.Stable, error)
}

func e15Engines() []e15Engine {
	return []e15Engine{
		{"file sync-per-write", func(dir string) (storage.Stable, error) {
			return storage.NewFile(dir, true)
		}},
		{"wal group-commit", func(dir string) (storage.Stable, error) {
			// MaxSyncDelay 0 is pure natural batching: each fsync
			// coalesces exactly what arrived while the previous one ran.
			// On fast disks that already forms big groups at zero added
			// latency; slow disks (or latency-insensitive workloads)
			// would set a positive delay to grow groups further. The
			// dimension E15 sweeps is the engine, not the policy.
			return storage.OpenWAL(dir, storage.WALOptions{SyncEvery: 64, MaxSyncDelay: 0})
		}},
	}
}

// StorageEngineThroughput drives one engine with `writers` concurrent
// committers, each persisting `per` records (alternating cell puts and log
// appends, the pipelined hot path's mix) that must each be durable before
// the writer issues the next. Returns ops/s and the engine's fsync count.
func StorageEngineThroughput(writers, per int, st storage.Stable) (opsPerSec float64, elapsed time.Duration, syncs int64, err error) {
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	start := time.Now()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rec := make([]byte, 64)
			for i := 0; i < per; i++ {
				var werr error
				if i%2 == 0 {
					werr = st.Put(fmt.Sprintf("cons/a/%04x%012x", g, i), rec)
				} else {
					werr = st.Append(fmt.Sprintf("abcast/unordlog/%04x", g), rec)
				}
				if werr != nil {
					errCh <- werr
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed = time.Since(start)
	select {
	case err = <-errCh:
		return 0, elapsed, 0, err
	default:
	}
	ops := writers * per
	if sc, ok := st.(syncCounted); ok {
		syncs = sc.SyncCount()
	}
	return float64(ops) / elapsed.Seconds(), elapsed, syncs, nil
}

// StorageProtocolThroughput runs the pipelined+batched protocol over
// engine-backed stable storage (one directory per process) and returns the
// end-to-end metrics plus the summed fsync count across the cluster.
// Network delays are kept small so stable storage, not the simulated LAN,
// is the contended resource — the regime the group-commit discipline
// targets.
func StorageProtocolThroughput(scale Scale, seed uint64, mk func(dir string) (storage.Stable, error)) (PipelineMetrics, int64, error) {
	dir, err := os.MkdirTemp("", "abcast-e15-")
	if err != nil {
		return PipelineMetrics{}, 0, err
	}
	defer os.RemoveAll(dir)

	var mu sync.Mutex
	var stores []storage.Stable
	var mkErr error
	pm, err := pipelineRun(scale, seed, PipelinedCore(), 16, func(o *harness.Options) {
		o.Net = transport.MemOptions{Seed: seed, MinDelay: 50 * time.Microsecond, MaxDelay: 100 * time.Microsecond}
		o.NewStore = func(pid ids.ProcessID) storage.Stable {
			st, serr := mk(filepath.Join(dir, fmt.Sprintf("p%d", pid)))
			if serr != nil {
				mu.Lock()
				if mkErr == nil {
					mkErr = serr
				}
				mu.Unlock()
				return storage.NewMem() // inert placeholder; the run is aborted below
			}
			mu.Lock()
			stores = append(stores, st)
			mu.Unlock()
			return st
		}
	})
	if mkErr != nil {
		return pm, 0, fmt.Errorf("open store: %w", mkErr)
	}
	if err != nil {
		return pm, 0, err
	}
	var syncs int64
	mu.Lock()
	for _, st := range stores {
		if sc, ok := st.(syncCounted); ok {
			syncs += sc.SyncCount()
		}
	}
	mu.Unlock()
	return pm, syncs, nil
}

// E15Storage runs both levels and tabulates throughput, fsyncs, and the
// amortization (ops per fsync).
func E15Storage(scale Scale) (*Result, error) {
	table := harness.NewTable(
		"E15 — group-commit WAL vs sync-per-write File at equal durability (pipelined protocol, real fsyncs)",
		"level", "engine", "ops", "elapsed", "ops/s", "fsyncs", "ops/fsync", "mean lat", "p99 lat")
	res := &Result{Table: table}

	// Storage level: concurrent committers on the bare engine.
	writers := 32
	per := scale.pick(40, 150)
	ratios := map[string]float64{}
	var fileStorage, walStorage float64
	for _, eng := range e15Engines() {
		dir, err := os.MkdirTemp("", "abcast-e15s-")
		if err != nil {
			return nil, err
		}
		st, err := eng.mk(dir)
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("E15 %s: %w", eng.name, err)
		}
		ops, elapsed, syncs, err := StorageEngineThroughput(writers, per, st)
		if c, ok := st.(storage.Closer); ok {
			c.Close()
		}
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("E15 storage %s: %w", eng.name, err)
		}
		perSync := 0.0
		if syncs > 0 {
			perSync = float64(writers*per) / float64(syncs)
		}
		table.Add("storage", eng.name, writers*per, elapsed.Round(time.Millisecond), ops, syncs, perSync, "-", "-")
		switch eng.name {
		case "file sync-per-write":
			fileStorage = ops
		case "wal group-commit":
			walStorage = ops
		}
	}
	if fileStorage > 0 {
		ratios["storage"] = walStorage / fileStorage
	}

	// Protocol level: the full stack over each engine, plus the in-memory
	// no-durability ceiling.
	var fileProto, walProto float64
	protoEngines := append(e15Engines(), e15Engine{"mem (no durability, ceiling)", func(string) (storage.Stable, error) {
		return storage.NewMem(), nil
	}})
	for i, eng := range protoEngines {
		pm, syncs, err := StorageProtocolThroughput(scale, 15000+uint64(i), eng.mk)
		if err != nil {
			return nil, fmt.Errorf("E15 protocol %s: %w", eng.name, err)
		}
		perSync := 0.0
		if syncs > 0 {
			perSync = float64(pm.Msgs) / float64(syncs)
		}
		table.Add("protocol", eng.name, pm.Msgs, pm.Elapsed.Round(time.Millisecond), pm.MsgsPerSec,
			syncs, perSync, pm.MeanLat.Round(10*time.Microsecond), pm.P99Lat.Round(10*time.Microsecond))
		switch eng.name {
		case "file sync-per-write":
			fileProto = pm.MsgsPerSec
		case "wal group-commit":
			walProto = pm.MsgsPerSec
		}
	}
	if fileProto > 0 {
		ratios["protocol"] = walProto / fileProto
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("wal/file throughput ratio: %.1fx at the storage level, %.1fx end-to-end (both engines: no ack before the covering fsync)",
			ratios["storage"], ratios["protocol"]),
		"one fsync covers a whole commit group: all in-flight rounds' cells plus all concurrent Broadcast log records (ops/fsync column)",
		"the margin grows with fsync latency (slow disks) and concurrency; the mem row is the no-durability ceiling")
	return res, nil
}
