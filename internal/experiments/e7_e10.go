package experiments

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/ctbaseline"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/reduction"
	"repro/internal/transport"
)

// E7VsCrashStop compares the crash-recovery protocol against the
// Chandra–Toueg crash-stop baseline (§5.6) on identical fault-free
// workloads: the gap is the price of recoverability (logging + gossip).
func E7VsCrashStop(scale Scale) (*Result, error) {
	perSender := scale.pick(30, 150)
	table := harness.NewTable(
		fmt.Sprintf("E7 — crash-recovery vs crash-stop baseline (fault-free, 3 senders x %d msgs)", perSender),
		"n", "protocol", "msgs/s", "mean latency", "log ops/msg")
	res := &Result{Table: table}
	for _, n := range []int{3, 5} {
		// Crash-recovery protocol.
		c := harness.NewCluster(harness.Options{N: n, Seed: 7000 + uint64(n)})
		if err := c.StartAll(); err != nil {
			c.Stop()
			return nil, err
		}
		cx, cancel := ctx()
		senders := []ids.ProcessID{0, 1, 2}
		m, err := c.Run(cx, harness.Workload{
			Senders:           senders,
			MessagesPerSender: perSender,
			PayloadSize:       64,
		})
		cancel()
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("E7 ours n=%d: %w", n, err)
		}
		var logOps int64
		for p := 0; p < n; p++ {
			logOps += c.Stores[p].Total().LogOps()
		}
		table.Add(n, "crash-recovery (ours)",
			m.Throughput(), m.Mean().Round(10*time.Microsecond),
			float64(logOps)/float64(m.Count))
		c.Stop()

		// Crash-stop baseline: no stable storage at all.
		bl, err := ctbaseline.NewCluster(n, transport.MemOptions{Seed: 7100 + uint64(n)}, nil)
		if err != nil {
			return nil, err
		}
		bm, err := runBaselineLoad(bl, senders, perSender, 64)
		bl.Stop()
		if err != nil {
			return nil, fmt.Errorf("E7 baseline n=%d: %w", n, err)
		}
		table.Add(n, "crash-stop (CT baseline)",
			bm.Throughput(), bm.Mean().Round(10*time.Microsecond), 0.0)
	}
	res.Notes = append(res.Notes,
		"paper claim: the crash-recovery protocol reduces to Chandra–Toueg when crashes are definitive; the overhead is the logging and gossip needed for recoverability")
	return res, nil
}

// runBaselineLoad drives the same closed-loop workload over the baseline.
func runBaselineLoad(bl *ctbaseline.Cluster, senders []ids.ProcessID, perSender, payloadSize int) (harness.Metrics, error) {
	cx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var (
		mu  sync.Mutex
		m   harness.Metrics
		wg  sync.WaitGroup
		err error
	)
	start := time.Now()
	for _, s := range senders {
		wg.Add(1)
		go func(s ids.ProcessID) {
			defer wg.Done()
			payload := make([]byte, payloadSize)
			for i := 0; i < perSender; i++ {
				t0 := time.Now()
				_, berr := bl.Procs[s].Broadcast(cx, payload)
				lat := time.Since(t0)
				mu.Lock()
				if berr != nil {
					if err == nil {
						err = berr
					}
				} else {
					m.Count++
					m.Latencies = append(m.Latencies, lat)
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	m.Elapsed = time.Since(start)
	return m, err
}

// E8FaultStorm verifies C2/C3: under message loss and continuous
// crash-recovery churn of a minority, good processes keep delivering and
// all four properties hold.
func E8FaultStorm(scale Scale) (*Result, error) {
	perSender := scale.pick(15, 60)
	stormFor := time.Duration(scale.pick(2, 6)) * time.Second
	table := harness.NewTable(
		fmt.Sprintf("E8 — liveness under fault storms (n=5, 3 senders x %d msgs)", perSender),
		"loss", "churn", "msgs/s", "deliveries", "state transfers", "safety")
	res := &Result{Table: table}
	for _, loss := range []float64{0, 0.10, 0.30} {
		for _, churn := range []bool{false, true} {
			c := harness.NewCluster(harness.Options{
				N:    5,
				Seed: 8000 + uint64(loss*100),
				Net: transport.MemOptions{
					Seed:     8000 + uint64(loss*100),
					Loss:     loss,
					Dup:      0.02,
					MaxDelay: time.Millisecond,
				},
				Core: core.Config{CheckpointEvery: 20, Delta: 10},
				Consensus: consensus.Config{
					RetryMin: 3 * time.Millisecond,
					RetryMax: 60 * time.Millisecond,
				},
			})
			if err := c.StartAll(); err != nil {
				c.Stop()
				return nil, err
			}
			cx, cancel := ctx()
			wait := func() {}
			stopFaults := func() {}
			if churn {
				fctx, fcancel := context.WithTimeout(cx, stormFor)
				stopFaults = fcancel
				wait = c.RunFaults(fctx,
					harness.FaultSchedule{PID: 3, UpFor: 300 * time.Millisecond, DownFor: 150 * time.Millisecond},
					harness.FaultSchedule{PID: 4, UpFor: 250 * time.Millisecond, DownFor: 200 * time.Millisecond},
				)
			}
			m, err := c.Run(cx, harness.Workload{
				Senders:           []ids.ProcessID{0, 1, 2},
				MessagesPerSender: perSender,
				PayloadSize:       64,
			})
			stopFaults()
			wait()
			if err == nil {
				err = c.AwaitAllDelivered(cx, 0, 1, 2, 3, 4)
			}
			cancel()
			if err != nil {
				c.Stop()
				return nil, fmt.Errorf("E8 loss=%.2f churn=%v: %w", loss, churn, err)
			}
			transfers := uint64(0)
			for p := 0; p < 5; p++ {
				if proto := c.Nodes[p].Proto(); proto != nil {
					transfers += proto.Stats().StateAdopted
				}
			}
			safety := "ok"
			if verr := c.VerifySafety(); verr != nil {
				safety = verr.Error()
			}
			churnLabel := "none"
			if churn {
				churnLabel = "p3+p4 oscillate"
			}
			table.Add(fmt.Sprintf("%.0f%%", loss*100), churnLabel,
				m.Throughput(), c.Rec.Deliveries(), transfers, safety)
			c.Stop()
		}
	}
	res.Notes = append(res.Notes,
		"paper claim: the protocol is non-blocking — good processes deliver as long as Consensus terminates, regardless of bad-process oscillation (§1, §5.6)")
	return res, nil
}

// E9Reduction verifies §6.1: Consensus implemented over Atomic Broadcast
// decides, agrees, and keeps up a useful decision rate — closing the
// equivalence loop.
func E9Reduction(scale Scale) (*Result, error) {
	instances := scale.pick(20, 100)
	table := harness.NewTable(
		fmt.Sprintf("E9 — Consensus from Atomic Broadcast (n=3, %d instances, 3 concurrent proposers)", instances),
		"instances", "decisions/s", "agreement", "validity")
	res := &Result{Table: table}

	conses := make([]*reduction.Consensus, 3)
	for i := range conses {
		conses[i] = reduction.New()
	}
	c := harness.NewCluster(harness.Options{
		N:    3,
		Seed: 9000,
		OnDeliver: func(pid ids.ProcessID, d core.Delivery) {
			conses[pid].Tap(d)
		},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return nil, err
	}
	cx, cancel := ctx()
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	decisions := make([][][]byte, 3)
	errs := make([]error, 3)
	for p := 0; p < 3; p++ {
		decisions[p] = make([][]byte, instances)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for inst := 0; inst < instances; inst++ {
				v := []byte(fmt.Sprintf("p%d-i%d", p, inst))
				dec, err := conses[p].Propose(cx, c.Nodes[p].Proto(), uint64(inst), v)
				if err != nil {
					errs[p] = err
					return
				}
				decisions[p][inst] = dec
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for p, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("E9 p%d: %w", p, err)
		}
	}
	agreement, validity := "ok", "ok"
	for inst := 0; inst < instances; inst++ {
		for p := 1; p < 3; p++ {
			if !bytes.Equal(decisions[0][inst], decisions[p][inst]) {
				agreement = fmt.Sprintf("VIOLATED at %d", inst)
			}
		}
		valid := false
		for p := 0; p < 3; p++ {
			if string(decisions[0][inst]) == fmt.Sprintf("p%d-i%d", p, inst) {
				valid = true
			}
		}
		if !valid {
			validity = fmt.Sprintf("VIOLATED at %d", inst)
		}
	}
	table.Add(instances, float64(instances)/elapsed.Seconds(), agreement, validity)
	res.Notes = append(res.Notes,
		"paper claim: 'to propose a value a process atomically broadcasts it; the first value to be delivered can be chosen as the decided value' — both problems are equivalent (§6.1)")
	return res, nil
}

// E10Engines verifies the black-box property (§3.5, C2): the broadcast
// transformation runs unchanged over two different crash-recovery
// consensus engines (Ω-leader-driven vs rotating coordinator), both under
// churn.
func E10Engines(scale Scale) (*Result, error) {
	perSender := scale.pick(20, 100)
	table := harness.NewTable(
		fmt.Sprintf("E10 — interchangeable consensus engines (n=3, 3 senders x %d msgs, one crash/recover)", perSender),
		"engine", "msgs/s", "mean latency", "safety after recovery")
	res := &Result{Table: table}
	for _, policy := range []consensus.Policy{consensus.PolicyLeader, consensus.PolicyRotating} {
		c := harness.NewCluster(harness.Options{
			N:         3,
			Seed:      10000 + uint64(policy),
			Consensus: consensus.Config{Policy: policy},
		})
		if err := c.StartAll(); err != nil {
			c.Stop()
			return nil, err
		}
		cx, cancel := ctx()
		m, err := c.Run(cx, harness.Workload{
			Senders:           []ids.ProcessID{0, 1, 2},
			MessagesPerSender: perSender / 2,
			PayloadSize:       64,
		})
		if err == nil {
			c.Crash(1)
			_, err = c.Recover(1)
		}
		var m2 harness.Metrics
		if err == nil {
			m2, err = c.Run(cx, harness.Workload{
				Senders:           []ids.ProcessID{0, 1, 2},
				MessagesPerSender: perSender / 2,
				PayloadSize:       64,
				Seed:              2,
			})
		}
		if err == nil {
			err = c.AwaitAllDelivered(cx, 0, 1, 2)
		}
		cancel()
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("E10 %v: %w", policy, err)
		}
		safety := "ok"
		if verr := c.VerifySafety(); verr != nil {
			safety = verr.Error()
		}
		total := m.Count + m2.Count
		elapsed := m.Elapsed + m2.Elapsed
		lat := (m.Mean() + m2.Mean()) / 2
		table.Add(policy.String(), float64(total)/elapsed.Seconds(),
			lat.Round(10*time.Microsecond), safety)
		c.Stop()
	}
	res.Notes = append(res.Notes,
		"paper claim: the transformation uses Consensus as a black box and 'is not bound to any particular implementation of Consensus' (§7)")
	return res, nil
}

// All runs every experiment at the given scale, in order.
func All(scale Scale) ([]*Result, error) {
	type exp struct {
		name string
		fn   func(Scale) (*Result, error)
	}
	exps := []exp{
		{"E1", E1LogOps}, {"E2", E2Recovery}, {"E3", E3LogSize},
		{"E4", E4CatchUp}, {"E5", E5Batching}, {"E6", E6IncrementalLog},
		{"E7", E7VsCrashStop}, {"E8", E8FaultStorm}, {"E9", E9Reduction},
		{"E10", E10Engines},
		{"E11", E11FDTimeout}, {"E12", E12GossipInterval}, {"E13", E13GroupSize},
		{"E14", E14Pipeline}, {"E15", E15Storage}, {"E16", E16Sharding},
		{"E17", E17SharedServices},
		{"E18", E18LogLifecycle},
		{"E19", E19Latency},
		{"E20", E20Dissemination},
		{"E21", E21Autotune},
		{"E22", E22Resharding},
	}
	var out []*Result
	for _, e := range exps {
		r, err := e.fn(scale)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ByName returns the experiment runner with the given id (e.g. "E4").
func ByName(name string) (func(Scale) (*Result, error), bool) {
	switch name {
	case "E1":
		return E1LogOps, true
	case "E2":
		return E2Recovery, true
	case "E3":
		return E3LogSize, true
	case "E4":
		return E4CatchUp, true
	case "E5":
		return E5Batching, true
	case "E6":
		return E6IncrementalLog, true
	case "E7":
		return E7VsCrashStop, true
	case "E8":
		return E8FaultStorm, true
	case "E9":
		return E9Reduction, true
	case "E10":
		return E10Engines, true
	case "E11":
		return E11FDTimeout, true
	case "E12":
		return E12GossipInterval, true
	case "E13":
		return E13GroupSize, true
	case "E14":
		return E14Pipeline, true
	case "E15":
		return E15Storage, true
	case "E16":
		return E16Sharding, true
	case "E17":
		return E17SharedServices, true
	case "E18":
		return E18LogLifecycle, true
	case "E19":
		return E19Latency, true
	case "E20":
		return E20Dissemination, true
	case "E21":
		return E21Autotune, true
	case "E22":
		return E22Resharding, true
	default:
		return nil, false
	}
}
