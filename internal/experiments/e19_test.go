package experiments

import (
	"testing"
	"time"
)

// TestOptimisticLatencyBeatsConservative is the latency-regression guard
// for the optimistic fast path (E19's acceptance claim): on the mem
// transport, the tentative-delivery p50 must be at least 2x lower than
// the confirmed p50. Tentative deliveries are emitted at propose time,
// before any consensus round, so the measured margin is far larger
// (confirmed pays at least one network round trip plus the decision
// fsync); 2x only trips when speculation stops being speculative — e.g.
// the tentative path starts waiting on the decision, or the hook moves
// behind the commit.
//
// One retry absorbs scheduler noise, mirroring the E14/E15/E16 guards.
// The test skips in -short mode so CI runs it exactly once, in its
// dedicated step.
func TestOptimisticLatencyBeatsConservative(t *testing.T) {
	if raceEnabled {
		t.Skip("latency comparison is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("perf guard: runs in its own CI step (and in full local runs)")
	}

	ratio := func(attempt int) float64 {
		t.Helper()
		m, err := LatencyRun(Quick, 19900+uint64(attempt)*100, false, false)
		if err != nil {
			t.Fatalf("mem run: %v", err)
		}
		t.Logf("tentative p50=%v p99=%v; confirmed p50=%v p99=%v (%d tentatives, %d revoked)",
			m.TentP50.Round(time.Microsecond), m.TentP99.Round(time.Microsecond),
			m.ConfP50.Round(time.Microsecond), m.ConfP99.Round(time.Microsecond),
			m.Tentatives, m.Revoked)
		if m.TentP50 <= 0 {
			t.Fatalf("degenerate tentative p50: %v", m.TentP50)
		}
		return float64(m.ConfP50) / float64(m.TentP50)
	}
	r := ratio(0)
	t.Logf("confirmed p50 / tentative p50 = %.1fx", r)
	if r < 2 {
		r = ratio(1)
		t.Logf("retry: confirmed p50 / tentative p50 = %.1fx", r)
	}
	if r < 2 {
		t.Fatalf("tentative p50 only %.1fx below confirmed p50 (want >= 2x)", r)
	}
}

// TestLeaseReducesConfirmedLatency checks the other half of E19: with a
// stable sequencer, the lease's accept-only rounds must not be slower
// than full consensus, and the fast path must actually engage.
func TestLeaseReducesConfirmedLatency(t *testing.T) {
	if raceEnabled {
		t.Skip("latency comparison is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("perf guard: runs in its own CI step (and in full local runs)")
	}

	leased, err := LatencyRun(Quick, 19300, false, true)
	if err != nil {
		t.Fatalf("leased run: %v", err)
	}
	t.Logf("leased: conf p50=%v, %d fast rounds", leased.ConfP50.Round(time.Microsecond), leased.FastRounds)
	if leased.FastRounds == 0 {
		t.Fatal("lease never engaged the fast path under a stable sequencer")
	}
}
