package experiments

import "testing"

// TestRingBeatsFullPayloadAtLargeMsgs is the E20 regression guard: on a
// bandwidth-limited NIC (the mem transport's egress model), ring
// dissemination of large (>= 64 KiB) payloads must deliver at least 2x
// the throughput of full-payload proposals at n=5, and must cut the
// sequencer's per-round egress by at least half — the whole point of
// deciding ID vectors instead of payloads. 256 KiB payloads keep the
// NIC asymmetry well clear of scheduler noise: the full-payload
// sequencer serializes ~n-1 copies plus consensus echoes per round,
// which at this size dwarfs the fixed per-round consensus latency that
// both modes share.
func TestRingBeatsFullPayloadAtLargeMsgs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Full-scale message count: the long closed loop amortizes cluster
	// startup and scheduler noise that a 16-message window does not.
	const n, payload = 5, 256 << 10
	full, err := DissemRun(Full, 20500, n, payload, false, false)
	if err != nil {
		t.Fatalf("full-payload run: %v", err)
	}
	ring, err := DissemRun(Full, 20501, n, payload, true, false)
	if err != nil {
		t.Fatalf("ring run: %v", err)
	}
	t.Logf("full-payload: %.0f B/round egress, %.1f MB/s; ring: %.0f B/round egress, %.1f MB/s (published %d)",
		full.EgressBytesPerRound, full.DeliveredMBps,
		ring.EgressBytesPerRound, ring.DeliveredMBps, ring.RingPublished)

	if ring.RingPublished == 0 {
		t.Fatal("ring mode published nothing through the dissemination ring")
	}
	if ring.DeliveredMBps < 2*full.DeliveredMBps {
		t.Fatalf("ring throughput %.1f MB/s < 2x full-payload %.1f MB/s",
			ring.DeliveredMBps, full.DeliveredMBps)
	}
	if 2*ring.EgressBytesPerRound > full.EgressBytesPerRound {
		t.Fatalf("ring sequencer egress %.0f B/round not < half of full-payload %.0f B/round",
			ring.EgressBytesPerRound, full.EgressBytesPerRound)
	}
}
