package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/group"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/transport"
)

// E17 measures the fixed background cost of a sharded process versus its
// group count. PR 3 made G groups share one connection set and one WAL,
// but every group still paid its own control-plane overhead: G heartbeat
// streams per peer (the paper's liveness oracle is per PROCESS, §3.5 — a
// process's groups crash together, so G-1 of those streams answer a
// question already answered), G full-payload gossip re-sends per
// interval, and one transport write per small frame. E17 quantifies the
// three fixes of this PR: the shared process-level failure detector, the
// ID-digest anti-entropy gossip, and the write-coalescing mux — the
// background cost drops from O(G·N) messages/sec toward O(N), and
// throughput at G=8 is unchanged (the control plane was overhead, not
// capacity).

// countingNet wraps a Network and counts transport-level writes and bytes
// on the send side — below the mux, so coalesced batches count as the one
// write they actually are. A Multisend counts as N writes: every
// implementation in this module fans it out per destination.
type countingNet struct {
	inner  transport.Network
	writes atomic.Int64
	bytes  atomic.Int64
}

func newCountingNet(inner transport.Network) *countingNet {
	return &countingNet{inner: inner}
}

func (c *countingNet) N() int { return c.inner.N() }

func (c *countingNet) Attach(pid ids.ProcessID) (transport.Endpoint, error) {
	ep, err := c.inner.Attach(pid)
	if err != nil {
		return nil, err
	}
	return &countingEndpoint{Endpoint: ep, net: c}, nil
}

// snapshot returns the cumulative (writes, bytes) counters.
func (c *countingNet) snapshot() (int64, int64) {
	return c.writes.Load(), c.bytes.Load()
}

type countingEndpoint struct {
	transport.Endpoint
	net *countingNet
}

func (e *countingEndpoint) Send(to ids.ProcessID, data []byte) {
	e.net.writes.Add(1)
	e.net.bytes.Add(int64(len(data)))
	e.Endpoint.Send(to, data)
}

func (e *countingEndpoint) Multisend(data []byte) {
	n := int64(e.net.N())
	e.net.writes.Add(n)
	e.net.bytes.Add(n * int64(len(data)))
	e.Endpoint.Multisend(data)
}

// e17FD is the failure-detector timing used by every E17 variant — both
// modes run identical Heartbeat/Timeout, so the suspicion latency is
// equal by construction and the message-rate comparison is apples to
// apples.
func e17FD() fd.Options {
	return fd.Options{Heartbeat: 5 * time.Millisecond, Timeout: 30 * time.Millisecond}
}

// e17Core returns the per-group protocol config: the E16 hot path plus an
// explicit gossip interval (the background cost under test).
func e17Core(shared bool) core.Config {
	cfg := ShardedCore()
	cfg.GossipInterval = 10 * time.Millisecond
	cfg.DigestGossip = shared
	return cfg
}

// e17Custom returns the harness customization of one mode: the legacy
// per-group control plane, or the shared one (process-level FD, digest
// gossip via e17Core, coalescing mux).
func e17Custom(shared bool, cn *countingNet) func(*harness.ShardedOptions) {
	return func(o *harness.ShardedOptions) {
		o.FD = e17FD()
		if cn != nil {
			o.Transport = cn
		}
		if shared {
			o.Mux = group.MuxOptions{FlushDelay: 500 * time.Microsecond}
		} else {
			o.PerGroupFD = true
		}
	}
}

// BackgroundMetrics is one E17 background measurement.
type BackgroundMetrics struct {
	Groups      int
	MsgsPerSec  float64 // transport-level writes/sec, cluster-wide
	BytesPerSec float64
}

// BackgroundTraffic boots an idle 3-process sharded cluster (after a tiny
// warmup workload, so every group has ordered something and reached
// steady state) and measures the transport-level background write rate
// over a fixed window: heartbeats plus periodic gossip, through whatever
// control plane the mode selects. mkNet builds the underlying transport
// (mem or TCP loopback).
func BackgroundTraffic(scale Scale, seed uint64, groups int, shared bool, mkNet func() transport.Network) (BackgroundMetrics, error) {
	var bm BackgroundMetrics
	cn := newCountingNet(mkNet())
	opts := harness.ShardedOptions{
		N:      3,
		Groups: groups,
		Seed:   seed,
		Core:   e17Core(shared),
	}
	e17Custom(shared, cn)(&opts)
	c := harness.NewShardedCluster(opts)
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return bm, err
	}
	cx, cancel := ctx()
	defer cancel()

	// Warmup: one ordered message per group, everywhere.
	for g := 0; g < groups; g++ {
		if _, err := c.Broadcast(cx, 0, ids.GroupID(g), []byte("warmup")); err != nil {
			return bm, err
		}
	}
	time.Sleep(50 * time.Millisecond) // settle into the idle steady state

	window := time.Duration(scale.pick(400, 1500)) * time.Millisecond
	w0, b0 := cn.snapshot()
	time.Sleep(window)
	w1, b1 := cn.snapshot()
	bm = BackgroundMetrics{
		Groups:      groups,
		MsgsPerSec:  float64(w1-w0) / window.Seconds(),
		BytesPerSec: float64(b1-b0) / window.Seconds(),
	}
	return bm, nil
}

// E17SharedServices tabulates the background message and byte rates of
// the legacy per-group control plane versus the shared one, across group
// counts and transports, plus an end-to-end throughput check at G=8.
func E17SharedServices(scale Scale) (*Result, error) {
	table := harness.NewTable(
		"E17 — per-group vs shared process services: idle background traffic (n=3) and G=8 throughput",
		"variant", "transport", "groups", "bg msgs/s", "bg KB/s", "reduction")
	res := &Result{Table: table}

	memNet := func() transport.Network { return transport.NewMem(3, transport.MemOptions{Seed: 99}) }
	tcpNet := func() transport.Network {
		addrs, err := freeLoopbackAddrs(3)
		if err != nil {
			panic(fmt.Sprintf("E17: reserve loopback addrs: %v", err))
		}
		return transport.NewTCP(addrs)
	}

	groupsList := []int{1, 4, 8, 16}
	legacy := make(map[int]float64)
	for i, g := range groupsList {
		bm, err := BackgroundTraffic(scale, 17000+uint64(i), g, false, memNet)
		if err != nil {
			return nil, fmt.Errorf("E17 legacy G=%d: %w", g, err)
		}
		legacy[g] = bm.MsgsPerSec
		table.Add("per-group services", "mem", g, bm.MsgsPerSec, bm.BytesPerSec/1024, "-")
	}
	for i, g := range groupsList {
		bm, err := BackgroundTraffic(scale, 17100+uint64(i), g, true, memNet)
		if err != nil {
			return nil, fmt.Errorf("E17 shared G=%d: %w", g, err)
		}
		red := "-"
		if l := legacy[g]; l > 0 && bm.MsgsPerSec > 0 {
			red = fmt.Sprintf("%.1fx", l/bm.MsgsPerSec)
		}
		table.Add("shared fd+digest+coalesce", "mem", g, bm.MsgsPerSec, bm.BytesPerSec/1024, red)
	}
	// One TCP loopback pair at G=8: real sockets, same shape of win.
	tl, err := BackgroundTraffic(scale, 17200, 8, false, tcpNet)
	if err != nil {
		return nil, fmt.Errorf("E17 legacy tcp: %w", err)
	}
	table.Add("per-group services", "tcp loopback", 8, tl.MsgsPerSec, tl.BytesPerSec/1024, "-")
	ts, err := BackgroundTraffic(scale, 17201, 8, true, tcpNet)
	if err != nil {
		return nil, fmt.Errorf("E17 shared tcp: %w", err)
	}
	red := "-"
	if tl.MsgsPerSec > 0 && ts.MsgsPerSec > 0 {
		red = fmt.Sprintf("%.1fx", tl.MsgsPerSec/ts.MsgsPerSec)
	}
	table.Add("shared fd+digest+coalesce", "tcp loopback", 8, ts.MsgsPerSec, ts.BytesPerSec/1024, red)

	// Throughput at G=8: the shared control plane must not cost ordering
	// capacity (it should help, if anything — fewer wakeups and writes).
	thrLegacy, err := ShardedThroughput(scale, 17300, 8, e17Core(false), e17Custom(false, nil))
	if err != nil {
		return nil, fmt.Errorf("E17 throughput legacy: %w", err)
	}
	thrShared, err := ShardedThroughput(scale, 17301, 8, e17Core(true), e17Custom(true, nil))
	if err != nil {
		return nil, fmt.Errorf("E17 throughput shared: %w", err)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("G=8 ordering throughput: per-group services %.0f msgs/s, shared services %.0f msgs/s (%.2fx)",
			thrLegacy.MsgsPerSec, thrShared.MsgsPerSec, thrShared.MsgsPerSec/thrLegacy.MsgsPerSec),
		"background cost: per-group services pay G heartbeat streams per peer + G full-payload gossips per interval; shared services pay 1 heartbeat stream (the oracle is per process, §3.5), ID digests, and coalesced writes",
		"suspicion latency is identical by construction: both modes run the same Heartbeat/Timeout",
		"acceptance: >= 2x fewer background msgs/s at G=8 (TestSharedServicesCutBackgroundTraffic)")
	return res, nil
}
