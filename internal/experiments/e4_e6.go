package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
)

// E4CatchUp verifies C5c (§5.3): a process that was down for D rounds
// catches up by replaying missed Consensus instances when D is small, and
// by a Δ-triggered state transfer when D exceeds Δ — the latter in time
// that does not grow with D.
func E4CatchUp(scale Scale) (*Result, error) {
	downs := []int{8, 40}
	if scale == Full {
		downs = []int{8, 40, 150, 400}
	}
	deltas := []uint64{5, 20}
	table := harness.NewTable(
		"E4 — catch-up after D missed messages (n=3)",
		"D", "Δ", "mechanism", "transferred msgs", "caught-up rounds", "catch-up time")
	res := &Result{Table: table}
	for _, down := range downs {
		// Δ = 0: no state transfer, no GC — the recovering process must
		// run every missed Consensus instance (proposing ∅, §4.2).
		allDeltas := append([]uint64{0}, deltas...)
		for _, delta := range allDeltas {
			coreCfg := core.Config{CheckpointEvery: 10, Delta: delta}
			if delta == 0 {
				coreCfg = core.Config{} // basic protocol: replay only
			}
			c := harness.NewCluster(harness.Options{
				N:    3,
				Seed: 4000 + uint64(down) + delta,
				Core: coreCfg,
			})
			if err := c.StartAll(); err != nil {
				c.Stop()
				return nil, err
			}
			cx, cancel := ctx()
			c.Crash(2)
			err := broadcastN(c, cx, []ids.ProcessID{0, 1}, down, 32)
			if err == nil && delta > 0 {
				err = c.Nodes[0].Proto().CheckpointNow()
				if err == nil {
					err = c.Nodes[1].Proto().CheckpointNow()
				}
			}
			if err != nil {
				cancel()
				c.Stop()
				return nil, fmt.Errorf("E4 D=%d: %w", down, err)
			}
			start := time.Now()
			if _, err := c.Recover(2); err != nil {
				cancel()
				c.Stop()
				return nil, fmt.Errorf("E4 recover D=%d: %w", down, err)
			}
			// Catch-up ends when p2 holds everything ordered so far.
			err = c.AwaitAllDelivered(cx, 0, 1, 2)
			catchUp := time.Since(start)
			cancel()
			if err != nil {
				c.Stop()
				return nil, fmt.Errorf("E4 await D=%d Δ=%d: %w", down, delta, err)
			}
			st := c.Nodes[2].Proto().Stats()
			mechanism := "per-round consensus"
			if st.StateAdopted > 0 {
				mechanism = "state transfer"
			}
			deltaLabel := fmt.Sprintf("%d", delta)
			if delta == 0 {
				deltaLabel = "off"
			}
			caughtUp := c.Nodes[2].Proto().Round()
			table.Add(down, deltaLabel, mechanism, st.DeliveredByTransfer, caughtUp,
				catchUp.Round(100*time.Microsecond))
			c.Stop()
		}
	}
	res.Notes = append(res.Notes,
		"paper claim: 'a process that has been down for a long period ... may require a long time to catch-up' without state transfer; with it, missed instances are skipped",
		"the survivors checkpointed and GC'd their logs, so for D > Δ only a state transfer can recover p2")
	return res, nil
}

// E5Batching verifies C5d (§5.4): pipelining broadcasts into shared
// Consensus instances raises throughput, and the batched (early-return)
// A-broadcast slashes caller-visible latency.
func E5Batching(scale Scale) (*Result, error) {
	perSender := scale.pick(20, 100)
	table := harness.NewTable(
		fmt.Sprintf("E5 — batching and early return (n=3, 3 senders x %d msgs)", perSender),
		"mode", "pipeline", "msgs/s", "mean latency", "p99 latency", "msgs/round")
	res := &Result{Table: table}
	for _, batched := range []bool{false, true} {
		for _, pipeline := range []int{1, 8, 32} {
			cfg := core.Config{}
			mode := "wait-until-ordered"
			if batched {
				cfg = core.Config{BatchedBroadcast: true, IncrementalLog: true}
				mode = "batched early-return"
			}
			c := harness.NewCluster(harness.Options{
				N:    3,
				Seed: 5000 + uint64(pipeline),
				Core: cfg,
			})
			if err := c.StartAll(); err != nil {
				c.Stop()
				return nil, err
			}
			cx, cancel := ctx()
			start := time.Now()
			m, err := c.Run(cx, harness.Workload{
				Senders:           []ids.ProcessID{0, 1, 2},
				MessagesPerSender: perSender / pipelineDiv(pipeline),
				Pipeline:          pipeline,
				PayloadSize:       64,
			})
			if err == nil {
				err = c.AwaitAllDelivered(cx, 0, 1, 2)
			}
			elapsed := time.Since(start)
			cancel()
			if err != nil {
				c.Stop()
				return nil, fmt.Errorf("E5 %s pipeline=%d: %w", mode, pipeline, err)
			}
			rounds := c.Nodes[0].Proto().Stats().Rounds
			msgsPerRound := 0.0
			if rounds > 0 {
				msgsPerRound = float64(m.Count) / float64(rounds)
			}
			table.Add(mode, pipeline,
				float64(m.Count)/elapsed.Seconds(),
				m.Mean().Round(10*time.Microsecond),
				m.Percentile(99).Round(10*time.Microsecond),
				msgsPerRound)
			c.Stop()
		}
	}
	res.Notes = append(res.Notes,
		"paper claim: 'for better throughput, it may be interesting to let the application propose batches of messages ... proposed in batch to a single instance of Consensus'",
		"batched mode returns after logging Unordered (§5.4), so caller latency is storage-bound, not ordering-bound")
	return res, nil
}

// pipelineDiv keeps total message counts comparable across pipeline widths.
func pipelineDiv(pipeline int) int {
	if pipeline > 4 {
		return pipeline / 4
	}
	return 1
}

// E6IncrementalLog verifies C5e (§5.5): logging only the new part of the
// Unordered set cuts logged bytes, most visibly when many broadcasts are
// outstanding.
func E6IncrementalLog(scale Scale) (*Result, error) {
	perSender := scale.pick(40, 200)
	table := harness.NewTable(
		fmt.Sprintf("E6 — incremental vs full Unordered logging (n=3, batched, pipeline=16, %d msgs/sender)", perSender),
		"mode", "abcast log ops", "abcast log bytes", "bytes/msg")
	res := &Result{Table: table}
	for _, incremental := range []bool{false, true} {
		mode := "full set per A-broadcast"
		if incremental {
			mode = "incremental (new part only)"
		}
		c := harness.NewCluster(harness.Options{
			N:    3,
			Seed: 6000,
			Core: core.Config{BatchedBroadcast: true, IncrementalLog: incremental},
		})
		if err := c.StartAll(); err != nil {
			c.Stop()
			return nil, err
		}
		cx, cancel := ctx()
		m, err := c.Run(cx, harness.Workload{
			Senders:           []ids.ProcessID{0, 1, 2},
			MessagesPerSender: perSender,
			Pipeline:          16,
			PayloadSize:       64,
		})
		if err == nil {
			err = c.AwaitAllDelivered(cx, 0, 1, 2)
		}
		cancel()
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("E6 %s: %w", mode, err)
		}
		var ops, bytes int64
		for p := 0; p < 3; p++ {
			st := c.Stores[p].Layer("abcast")
			ops += st.LogOps()
			bytes += st.LogBytes()
		}
		table.Add(mode, ops, bytes, float64(bytes)/float64(m.Count*3))
		c.Stop()
	}
	res.Notes = append(res.Notes,
		"paper claim: 'when logging a queue or a set ... only its new part (with respect to the previous logging) has to be logged'")
	return res, nil
}
