package experiments

import (
	"testing"
)

// TestShardedBeatsSingleGroup is the scaling-regression guard for sharded
// multi-group ordering (E16's acceptance claim): on the delayed-LAN
// configuration with bounded proposals, 4 ordering groups must sustain at
// least 1.8x the combined throughput of a single group. The measured
// margin is ~2.5-3x at quick scale, so 1.8x only trips when sharding
// genuinely stops helping — e.g. the multiplexer serializes groups again,
// or a shared lock couples the sequencers.
//
// One retry absorbs scheduler noise, mirroring the E14/E15 guards. The
// test skips in -short mode so CI runs it exactly once, in its dedicated
// step.
func TestShardedBeatsSingleGroup(t *testing.T) {
	if raceEnabled {
		t.Skip("throughput comparison is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("perf guard: runs in its own CI step (and in full local runs)")
	}

	ratio := func(attempt int) float64 {
		t.Helper()
		seed := 16500 + uint64(attempt)*100
		single, err := ShardedThroughput(Quick, seed, 1, ShardedCore(), nil)
		if err != nil {
			t.Fatalf("G=1 run: %v", err)
		}
		quad, err := ShardedThroughput(Quick, seed+1, 4, ShardedCore(), nil)
		if err != nil {
			t.Fatalf("G=4 run: %v", err)
		}
		t.Logf("G=1 %.0f msgs/s, G=4 %.0f msgs/s", single.MsgsPerSec, quad.MsgsPerSec)
		return quad.MsgsPerSec / single.MsgsPerSec
	}
	r := ratio(0)
	t.Logf("sharded G=4 / G=1 = %.2fx", r)
	if r < 1.8 {
		r = ratio(1)
		t.Logf("retry: sharded G=4 / G=1 = %.2fx", r)
	}
	if r < 1.8 {
		t.Fatalf("4-group throughput only %.2fx of single-group (want >= 1.8x)", r)
	}
}
