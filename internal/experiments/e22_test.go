package experiments

import (
	"strings"
	"testing"
)

// TestScaleOutRaisesThroughput is the E22 regression guard: a live
// G=2->4 scale-out under closed-loop load must raise delivered
// throughput to >= e22ScaleOutFloor of the pre-scale-out rate, and the
// walk's topology must land on epoch 3 (two joins, one seal). Rates on a
// shared CI runner jitter, so the guard retries with fresh seeds: a
// resharding regression (a stalled splice, a router that keeps feeding
// two groups) fails every attempt, noise does not.
func TestScaleOutRaisesThroughput(t *testing.T) {
	if raceEnabled {
		t.Skip("throughput comparison is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("perf guard: runs in its own CI step (and in full local runs)")
	}
	const attempts = 3
	var last []string
	for a := 1; a <= attempts; a++ {
		m, err := e22Live(Quick, uint64(22000+100*a))
		if err != nil {
			t.Fatalf("attempt %d: %v", a, err)
		}
		for _, w := range m.Windows {
			t.Logf("attempt %d: %-11s G=%d %6.0f msgs/s (%.2fx pre)", a, w.Phase, w.Groups, w.PerSec, w.Speedup)
		}
		t.Logf("attempt %d: scale-out %.1f ms, drain %.1f ms, static G=4 %.0f msgs/s (post at %.0f%%)",
			a, m.ScaleOutMs, m.DrainMs, m.StaticPerSec, 100*m.PostOverStatic)
		if last = e22Acceptance(m); len(last) == 0 {
			return
		}
		t.Logf("attempt %d failed acceptance: %s", a, strings.Join(last, "; "))
	}
	t.Fatalf("E22 acceptance failed on all %d attempts: %s", attempts, strings.Join(last, "; "))
}
