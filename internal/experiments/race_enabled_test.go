//go:build race

package experiments

// raceEnabled reports whether the race detector is instrumenting this test
// binary. Throughput comparisons are skipped under -race: its ~10x CPU
// overhead starves the CPU-bound pipelined variant while leaving the
// latency-bound baseline untouched, inverting the ratio without any
// protocol regression.
const raceEnabled = true
