package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/transport"
)

// PipelinedCore returns the recommended high-throughput configuration: a
// 4-deep round pipeline over batched broadcast with adaptive batching.
func PipelinedCore() core.Config {
	return core.Config{
		PipelineDepth:    4,
		BatchedBroadcast: true,
		IncrementalLog:   true,
		MaxBatchBytes:    32 << 10,
		MaxBatchDelay:    200 * time.Microsecond,
	}
}

// PipelineMetrics is one variant's outcome in the E14 throughput shootout.
type PipelineMetrics struct {
	Msgs       int
	Elapsed    time.Duration
	MsgsPerSec float64
	Stats      core.Stats // sender 0's protocol counters
	MeanLat    time.Duration
	P99Lat     time.Duration
}

// PipelineThroughput measures end-to-end ordering throughput for one core
// configuration on a 3-process in-memory cluster: a closed-loop workload
// broadcasts msgs messages, and the clock stops when every process has
// delivered all of them (so early-return batching is only credited for
// work that actually got ordered everywhere).
func PipelineThroughput(scale Scale, seed uint64, cfg core.Config) (PipelineMetrics, error) {
	const senders, lanes = 3, 4
	perLane := scale.pick(100, 500)
	total := senders * lanes * perLane

	var pm PipelineMetrics
	// A LAN-like one-way delay: with free messages a single giant batch
	// is always optimal and pipelining has nothing to overlap; real
	// networks charge per round, which is exactly what the pipeline
	// amortizes.
	c := harness.NewCluster(harness.Options{
		N:    3,
		Seed: seed,
		Net:  transport.MemOptions{Seed: seed, MinDelay: 200 * time.Microsecond, MaxDelay: 400 * time.Microsecond},
		Core: cfg,
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return pm, err
	}
	cx, cancel := ctx()
	defer cancel()
	start := time.Now()
	m, err := c.Run(cx, harness.Workload{
		Senders:           []ids.ProcessID{0, 1, 2},
		MessagesPerSender: perLane,
		Pipeline:          lanes,
		PayloadSize:       64,
		Seed:              seed,
	})
	// Stop the clock once everything is delivered everywhere, BEFORE the
	// recorder's O(msgs x processes) safety verification — that cost is
	// the checker's, not the protocol's.
	if err == nil {
		must := c.Rec.DeliveredAnywhere()
		must = append(must, c.Rec.ReturnedBroadcasts()...)
		for _, id := range must {
			if err = c.AwaitDelivered(cx, id, 0, 1, 2); err != nil {
				break
			}
		}
	}
	elapsed := time.Since(start)
	if err == nil {
		err = c.VerifyAll(0, 1, 2)
	}
	if err != nil {
		return pm, err
	}
	pm = PipelineMetrics{
		Msgs:       total,
		Elapsed:    elapsed,
		MsgsPerSec: float64(total) / elapsed.Seconds(),
		Stats:      c.Nodes[0].Proto().Stats(),
		MeanLat:    m.Mean(),
		P99Lat:     m.Percentile(99),
	}
	return pm, nil
}

// E14Pipeline quantifies the round-pipeline + adaptive-batching engine:
// end-to-end ordering throughput of the basic protocol versus pipelining,
// batching, and their combination. The claim under test: the pipelined +
// adaptively batched hot path sustains at least 2x the basic protocol's
// throughput on the same cluster (the bottleneck the strictly sequential
// Fig. 2 sequencer imposes — one consensus round-trip per delivered
// batch).
func E14Pipeline(scale Scale) (*Result, error) {
	type variant struct {
		name string
		core core.Config
	}
	variants := []variant{
		{"basic (Fig.2)", core.Config{}},
		{"pipelined depth 4", core.Config{PipelineDepth: 4}},
		{"batched (§5.4)", core.Config{BatchedBroadcast: true, IncrementalLog: true}},
		{"pipelined+batched+adaptive", PipelinedCore()},
	}
	table := harness.NewTable(
		"E14 — round pipeline + adaptive batching throughput (n=3, 3 senders x 4 lanes)",
		"variant", "msgs", "elapsed", "msgs/s", "rounds", "msgs/round", "pipelined proposals", "mean lat", "p99 lat")
	res := &Result{Table: table}
	var basic, best float64
	for i, v := range variants {
		pm, err := PipelineThroughput(scale, 14000+uint64(i), v.core)
		if err != nil {
			return nil, fmt.Errorf("E14 %s: %w", v.name, err)
		}
		rounds := pm.Stats.Rounds
		perRound := 0.0
		if rounds > 0 {
			perRound = float64(pm.Stats.Delivered) / float64(rounds)
		}
		table.Add(v.name, pm.Msgs, pm.Elapsed.Round(time.Millisecond), pm.MsgsPerSec,
			rounds, perRound, pm.Stats.PipelinedProposals,
			pm.MeanLat.Round(10*time.Microsecond), pm.P99Lat.Round(10*time.Microsecond))
		if i == 0 {
			basic = pm.MsgsPerSec
		}
		if pm.MsgsPerSec > best {
			best = pm.MsgsPerSec
		}
	}
	if basic > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("best/basic throughput ratio: %.1fx (acceptance: pipelined+batched >= 2x basic)", best/basic))
	}
	res.Notes = append(res.Notes,
		"the sequential sequencer is latency-bound: one consensus round-trip per batch; pipelining overlaps rounds, adaptive batching amortizes each round over more messages")
	return res, nil
}
