package experiments

import (
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/transport"
)

// PipelinedCore returns the recommended high-throughput configuration: a
// 4-deep round pipeline over batched broadcast with adaptive batching.
func PipelinedCore() core.Config {
	return core.Config{
		PipelineDepth:    4,
		BatchedBroadcast: true,
		IncrementalLog:   true,
		MaxBatchBytes:    32 << 10,
		MaxBatchDelay:    200 * time.Microsecond,
	}
}

// PipelineMetrics is one variant's outcome in the E14 throughput shootout.
type PipelineMetrics struct {
	Msgs       int
	Elapsed    time.Duration
	MsgsPerSec float64
	Stats      core.Stats // sender 0's protocol counters
	MeanLat    time.Duration
	P99Lat     time.Duration
}

// PipelineThroughput measures end-to-end ordering throughput for one core
// configuration on a 3-process in-memory cluster: a closed-loop workload
// broadcasts msgs messages, and the clock stops when every process has
// delivered all of them (so early-return batching is only credited for
// work that actually got ordered everywhere).
func PipelineThroughput(scale Scale, seed uint64, cfg core.Config) (PipelineMetrics, error) {
	return pipelineRun(scale, seed, cfg, 4, nil)
}

// PipelineThroughputTCP is PipelineThroughput over a real TCP loopback
// transport instead of the simulated LAN: real sockets charge real
// per-message syscall and wire costs, so batching wins the in-memory
// network underestimates show up here.
func PipelineThroughputTCP(scale Scale, seed uint64, cfg core.Config) (PipelineMetrics, error) {
	addrs, err := freeLoopbackAddrs(3)
	if err != nil {
		return PipelineMetrics{}, fmt.Errorf("reserve loopback addrs: %w", err)
	}
	return pipelineRun(scale, seed, cfg, 4, func(o *harness.Options) {
		o.Transport = transport.NewTCP(addrs)
	})
}

// freeLoopbackAddrs reserves n distinct loopback TCP addresses by binding
// ephemeral ports and releasing them (the usual test-port idiom; the tiny
// reuse race is acceptable for benchmarks).
func freeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// pipelineRun is the shared cluster runner; lanes is the per-sender
// closed-loop concurrency; custom, when set, adjusts the harness options
// (transport, storage engine, network delays) before the cluster is built.
func pipelineRun(scale Scale, seed uint64, cfg core.Config, lanes int, custom func(*harness.Options)) (PipelineMetrics, error) {
	const senders = 3
	perLane := scale.pick(100, 500)
	total := senders * lanes * perLane

	var pm PipelineMetrics
	// A LAN-like one-way delay: with free messages a single giant batch
	// is always optimal and pipelining has nothing to overlap; real
	// networks charge per round, which is exactly what the pipeline
	// amortizes.
	opts := harness.Options{
		N:    3,
		Seed: seed,
		Net:  transport.MemOptions{Seed: seed, MinDelay: 200 * time.Microsecond, MaxDelay: 400 * time.Microsecond},
		Core: cfg,
	}
	if custom != nil {
		custom(&opts)
	}
	c := harness.NewCluster(opts)
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		return pm, err
	}
	cx, cancel := ctx()
	defer cancel()
	start := time.Now()
	m, err := c.Run(cx, harness.Workload{
		Senders:           []ids.ProcessID{0, 1, 2},
		MessagesPerSender: perLane,
		Pipeline:          lanes,
		PayloadSize:       64,
		Seed:              seed,
	})
	// Stop the clock once everything is delivered everywhere, BEFORE the
	// recorder's O(msgs x processes) safety verification — that cost is
	// the checker's, not the protocol's.
	if err == nil {
		must := c.Rec.DeliveredAnywhere()
		must = append(must, c.Rec.ReturnedBroadcasts()...)
		for _, id := range must {
			if err = c.AwaitDelivered(cx, id, 0, 1, 2); err != nil {
				break
			}
		}
	}
	elapsed := time.Since(start)
	if err == nil {
		err = c.VerifyAll(0, 1, 2)
	}
	if err != nil {
		return pm, err
	}
	pm = PipelineMetrics{
		Msgs:       total,
		Elapsed:    elapsed,
		MsgsPerSec: float64(total) / elapsed.Seconds(),
		Stats:      c.Nodes[0].Proto().Stats(),
		MeanLat:    m.Mean(),
		P99Lat:     m.Percentile(99),
	}
	return pm, nil
}

// E14Pipeline quantifies the round-pipeline + adaptive-batching engine:
// end-to-end ordering throughput of the basic protocol versus pipelining,
// batching, and their combination — on the simulated LAN and, for the
// bracketing pair, on a real TCP loopback transport (the in-memory network
// underestimates batching wins because it charges no per-message syscall
// or wire cost). The claim under test: the pipelined + adaptively batched
// hot path sustains at least 2x the basic protocol's throughput on the
// same cluster (the bottleneck the strictly sequential Fig. 2 sequencer
// imposes — one consensus round-trip per delivered batch).
func E14Pipeline(scale Scale) (*Result, error) {
	type variant struct {
		name string
		core core.Config
		tcp  bool
	}
	variants := []variant{
		{"basic (Fig.2) [mem]", core.Config{}, false},
		{"pipelined depth 4 [mem]", core.Config{PipelineDepth: 4}, false},
		{"batched (§5.4) [mem]", core.Config{BatchedBroadcast: true, IncrementalLog: true}, false},
		{"pipelined+batched+adaptive [mem]", PipelinedCore(), false},
		{"basic (Fig.2) [tcp]", core.Config{}, true},
		{"pipelined+batched+adaptive [tcp]", PipelinedCore(), true},
	}
	table := harness.NewTable(
		"E14 — round pipeline + adaptive batching throughput (n=3, 3 senders x 4 lanes; mem + tcp loopback)",
		"variant", "msgs", "elapsed", "msgs/s", "rounds", "msgs/round", "pipelined proposals", "mean lat", "p99 lat")
	res := &Result{Table: table}
	var basicMem, bestMem, basicTCP, bestTCP float64
	for i, v := range variants {
		run := PipelineThroughput
		if v.tcp {
			run = PipelineThroughputTCP
		}
		pm, err := run(scale, 14000+uint64(i), v.core)
		if err != nil {
			return nil, fmt.Errorf("E14 %s: %w", v.name, err)
		}
		rounds := pm.Stats.Rounds
		perRound := 0.0
		if rounds > 0 {
			perRound = float64(pm.Stats.Delivered) / float64(rounds)
		}
		table.Add(v.name, pm.Msgs, pm.Elapsed.Round(time.Millisecond), pm.MsgsPerSec,
			rounds, perRound, pm.Stats.PipelinedProposals,
			pm.MeanLat.Round(10*time.Microsecond), pm.P99Lat.Round(10*time.Microsecond))
		switch {
		case v.tcp && basicTCP == 0:
			basicTCP = pm.MsgsPerSec
		case v.tcp:
			if pm.MsgsPerSec > bestTCP {
				bestTCP = pm.MsgsPerSec
			}
		case i == 0:
			basicMem = pm.MsgsPerSec
		default:
			if pm.MsgsPerSec > bestMem {
				bestMem = pm.MsgsPerSec
			}
		}
	}
	if basicMem > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("mem: best/basic throughput ratio %.1fx (acceptance: pipelined+batched >= 2x basic)", bestMem/basicMem))
	}
	if basicTCP > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("tcp loopback: pipelined+batched/basic ratio %.1fx (real sockets charge per message; batching amortizes them)", bestTCP/basicTCP))
	}
	res.Notes = append(res.Notes,
		"the sequential sequencer is latency-bound: one consensus round-trip per batch; pipelining overlaps rounds, adaptive batching amortizes each round over more messages")
	return res, nil
}
