package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/storage"
	"repro/internal/wire"
)

// E18 measures the log lifecycle: whether a long-running sharded process
// has BOUNDED state, and what the streaming merge cursor saves over the
// batch recompute.
//
// The paper's checkpoint task (§5.1–§5.2) exists precisely so a
// crash-recovery process does not accumulate state forever, but two leaks
// survived previous PRs: merged-mode sharding kept every group's full
// delivery suffix (checkpoint folds destroyed the per-round structure the
// cross-group interleave needs, so they had to stay off), and the WAL
// never reclaimed dead records — deleted and overwritten cells lived
// until their segment was discarded, which for a long-lived deployment is
// never. E18 quantifies both fixes:
//
//   - Part A runs an identical churn workload (sustained broadcasts with
//     application checkpointing folding delivered prefixes and the
//     checkpoint deletes creating dead WAL records) under three
//     configurations — no checkpointing, merge-floor checkpointing, and
//     merge-floor checkpointing plus background segment compaction — and
//     reports the retained delivery suffix (memory) and WAL disk bytes.
//     Bounded state needs BOTH: the checkpoint bounds the protocol's
//     memory, the compactor bounds the disk the checkpoint's garbage
//     occupies.
//   - Part B compares consuming the global cross-group sequence through
//     the streaming cursor (O(groups log groups) per round, online)
//     against recomputing the batch merge per poll (O(history) per call,
//     quadratic over a run) at growing history depths.

// e18Fold is the application checkpointer of the churn workload: a
// running (count, hash) pair, so folded state is a few bytes however much
// history it contains.
type e18Fold struct{}

func (e18Fold) Checkpoint(prev []byte, delivered []msg.Message) []byte {
	var count, h uint64
	if len(prev) > 0 {
		r := wire.NewReader(prev)
		count, h = r.U64(), r.U64()
	}
	for _, m := range delivered {
		count++
		h = h*1099511628211 ^ uint64(m.ID.Sender)<<40 ^ m.ID.Seq
	}
	w := wire.NewWriter(20)
	w.U64(count)
	w.U64(h)
	return w.Bytes()
}

func (e18Fold) Restore([]byte) {}

// LifecycleMetrics is one Part-A variant's steady-state footprint.
type LifecycleMetrics struct {
	Msgs          int
	SuffixEntries int // retained explicit deliveries at p0, summed over groups
	FoldedRounds  uint64
	WALDisk       int64 // p0's shared WAL on-disk bytes
	WALLive       int64
	Compactions   int64
}

// LifecycleChurn drives a fixed broadcast workload through a 3-process,
// 2-group cluster over one shared WAL per process and reports p0's final
// footprint. checkpointEvery 0 disables checkpointing; compactFactor 0
// disables compaction.
func LifecycleChurn(scale Scale, seed uint64, checkpointEvery int, compactFactor float64) (LifecycleMetrics, error) {
	const groups = 2
	msgs := scale.pick(240, 2400)
	var lm LifecycleMetrics
	dir, err := os.MkdirTemp("", "e18-*")
	if err != nil {
		return lm, err
	}
	defer os.RemoveAll(dir)

	cfg := ShardedCore()
	if checkpointEvery > 0 {
		cfg.CheckpointEvery = checkpointEvery
		cfg.Checkpointer = e18Fold{}
	}
	wals := make([]*storage.WAL, 0, 3)
	opts := harness.ShardedOptions{
		N:              3,
		Groups:         groups,
		Seed:           seed,
		Core:           cfg,
		MergedDelivery: checkpointEvery > 0,
		NewStore: func(pid ids.ProcessID) storage.Stable {
			w, werr := storage.OpenWAL(filepath.Join(dir, fmt.Sprintf("p%d", pid)), storage.WALOptions{
				SyncEvery:       16,
				MaxSyncDelay:    200 * time.Microsecond,
				SegmentBytes:    64 << 10,
				CompactFactor:   compactFactor,
				CompactMinBytes: 32 << 10,
				NoSync:          true, // CI tmpfs friendliness; identical record stream
			})
			if werr != nil {
				err = werr
				return storage.NewMem()
			}
			wals = append(wals, w)
			return w
		},
	}
	c := harness.NewShardedCluster(opts)
	defer c.Stop()
	if err != nil {
		return lm, err
	}
	if err := c.StartAll(); err != nil {
		return lm, err
	}
	cx, cancel := ctx()
	defer cancel()

	payload := make([]byte, 64)
	for i := 0; i < msgs; i++ {
		pid := ids.ProcessID(i % 3)
		g := ids.GroupID(i % groups)
		if _, err := c.Broadcast(cx, pid, g, payload); err != nil {
			return lm, fmt.Errorf("broadcast %d: %w", i, err)
		}
	}
	var all []ids.ProcessID
	for p := 0; p < 3; p++ {
		all = append(all, ids.ProcessID(p))
	}
	if err := c.AwaitAllDelivered(cx, all...); err != nil {
		return lm, err
	}
	// One final forced checkpoint per group, so every variant is measured
	// at its own steady state (the periodic task's phase doesn't skew the
	// suffix measurement), then a WAL barrier so the disk numbers are
	// settled.
	for _, n := range c.Nodes[0] {
		if p := n.Proto(); p != nil && checkpointEvery > 0 {
			if err := p.CheckpointNow(); err != nil {
				return lm, err
			}
		}
	}
	lm.Msgs = msgs
	for _, n := range c.Nodes[0] {
		p := n.Proto()
		if p == nil {
			return lm, fmt.Errorf("p0 group down at measurement")
		}
		base, suffix := p.Sequence()
		lm.SuffixEntries += len(suffix)
		lm.FoldedRounds += base.Rounds
	}
	if len(wals) > 0 {
		w := wals[0]
		if err := w.Sync(); err != nil {
			return lm, err
		}
		// Give a pending background compaction its window.
		time.Sleep(20 * time.Millisecond)
		_ = w.Sync()
		lm.WALDisk = w.DiskBytes()
		lm.WALLive = w.LiveBytes()
		lm.Compactions = w.CompactCount()
	}
	return lm, nil
}

// MergeLatencyMetrics compares one history depth's merge costs.
type MergeLatencyMetrics struct {
	Rounds       int
	BatchPerCall time.Duration // one full batch Merge over the history
	CursorPerRnd time.Duration // streaming advance, amortized per round
}

// MergeLatency builds a synthetic 4-group history of the given depth and
// times the batch recompute against the streaming cursor.
func MergeLatency(rounds int) (MergeLatencyMetrics, error) {
	const groupsN = 4
	mm := MergeLatencyMetrics{Rounds: rounds}
	seqs := make([]group.Sequence, groupsN)
	batches := make([][][]core.Delivery, groupsN)
	for g := 0; g < groupsN; g++ {
		s := group.Sequence{Group: ids.GroupID(g), Rounds: uint64(rounds)}
		batches[g] = make([][]core.Delivery, rounds)
		var pos uint64
		for r := 0; r < rounds; r++ {
			n := 1 + (r+g)%3
			for i := 0; i < n; i++ {
				d := core.Delivery{
					Msg:   msg.Message{ID: ids.MsgID{Sender: ids.ProcessID(g), Incarnation: 1, Seq: pos + 1}},
					Group: ids.GroupID(g),
					Round: uint64(r),
					Pos:   pos,
				}
				s.Deliveries = append(s.Deliveries, d)
				batches[g][r] = append(batches[g][r], d)
				pos++
			}
		}
		seqs[g] = s
	}

	// Batch: one full recompute (what Merged costs per poll at this
	// depth).
	const calls = 5
	start := time.Now()
	for i := 0; i < calls; i++ {
		if m, _, _ := group.Merge(seqs); len(m) == 0 {
			return mm, fmt.Errorf("empty batch merge")
		}
	}
	mm.BatchPerCall = time.Since(start) / calls

	// Cursor: stream the same history round by round.
	st := group.NewStream(groupsN)
	empty := make([]group.Sequence, groupsN)
	for g := range empty {
		empty[g] = group.Sequence{Group: ids.GroupID(g)}
	}
	cur, err := st.Subscribe(func() ([]group.Sequence, error) { return empty, nil })
	if err != nil {
		return mm, err
	}
	var buf []core.Delivery
	total := 0
	start = time.Now()
	for r := 0; r < rounds; r++ {
		for g := 0; g < groupsN; g++ {
			st.NoteRound(ids.GroupID(g), uint64(r), batches[g][r])
		}
		buf, err = cur.Next(buf[:0])
		if err != nil {
			return mm, err
		}
		total += len(buf)
	}
	mm.CursorPerRnd = time.Since(start) / time.Duration(rounds)
	if want, _, _ := group.Merge(seqs); total != len(want) {
		return mm, fmt.Errorf("cursor streamed %d deliveries; batch merge has %d", total, len(want))
	}
	return mm, nil
}

// E18LogLifecycle runs both parts and assembles the table.
func E18LogLifecycle(scale Scale) (*Result, error) {
	res := &Result{Table: harness.NewTable(
		"E18 — log lifecycle: bounded state (churn, n=3 g=2, shared WAL) and merge latency (4 groups)",
		"part", "variant", "suffix entries", "folded rounds", "WAL disk KiB", "WAL live KiB", "compactions", "merge cost")}

	type variant struct {
		name            string
		checkpointEvery int
		compactFactor   float64
	}
	variants := []variant{
		{"no-ckpt", 0, 0},
		{"ckpt", 8, 0},
		{"ckpt+compact", 8, 3},
	}
	var noCkpt, compacted LifecycleMetrics
	for i, v := range variants {
		lm, err := LifecycleChurn(scale, 18000+uint64(i)*13, v.checkpointEvery, v.compactFactor)
		if err != nil {
			return nil, fmt.Errorf("E18 %s: %w", v.name, err)
		}
		if i == 0 {
			noCkpt = lm
		}
		if v.compactFactor > 0 {
			compacted = lm
		}
		res.Table.Add("A", v.name, lm.SuffixEntries, lm.FoldedRounds,
			lm.WALDisk/1024, lm.WALLive/1024, lm.Compactions, "-")
	}

	depths := []int{scale.pick(500, 2000), scale.pick(4000, 20000)}
	for _, rounds := range depths {
		mm, err := MergeLatency(rounds)
		if err != nil {
			return nil, fmt.Errorf("E18 merge latency (%d rounds): %w", rounds, err)
		}
		res.Table.Add("B", fmt.Sprintf("history=%d rounds", rounds), "-", "-", "-", "-", "-",
			fmt.Sprintf("batch %v/call vs cursor %v/round", mm.BatchPerCall.Round(time.Microsecond), mm.CursorPerRnd.Round(100*time.Nanosecond)))
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("merged-mode checkpointing bounds the retained suffix (%d entries without ckpt vs %d with) — §5.2's bounded recovery state now composes with the cross-group merge",
			noCkpt.SuffixEntries, compacted.SuffixEntries),
		fmt.Sprintf("segment compaction bounds WAL disk (%d KiB without vs %d KiB with, %d cycles) at identical durability",
			noCkpt.WALDisk/1024, compacted.WALDisk/1024, compacted.Compactions),
		"batch Merged is O(history) per poll; the cursor advances in O(groups log groups) per round with zero-alloc idle polls (BenchmarkCursor*)")
	return res, nil
}
