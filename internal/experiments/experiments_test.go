package experiments

import (
	"strings"
	"testing"
)

func TestE1ReproducesMinimalLoggingClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	res, err := E1LogOps(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Table.Rows))
	}
	// The headline number: the basic protocol's broadcast layer logs
	// nothing.
	basic := res.Table.Rows[0]
	if !strings.HasPrefix(basic[0], "basic") {
		t.Fatalf("first row is %v", basic)
	}
	if basic[1] != "0.00" {
		t.Fatalf("basic abcast ops = %s, want 0.00", basic[1])
	}
	// Every alternative variant logs something.
	for _, row := range res.Table.Rows[1:] {
		if row[1] == "0.00" {
			t.Fatalf("variant %s logged nothing", row[0])
		}
	}
}

func TestE2ReplayGrowsWithoutCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	res, err := E2Recovery(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Rows alternate off / every-10 per R; replayed rounds with
	// checkpoints off must equal R.
	for _, row := range res.Table.Rows {
		if row[1] == "off" && row[0] != row[2] {
			t.Fatalf("checkpoint-off replay %s != R %s", row[2], row[0])
		}
	}
}

func TestByNameKnowsAllExperiments(t *testing.T) {
	for _, name := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"} {
		if _, ok := ByName(name); !ok {
			t.Fatalf("experiment %s unknown", name)
		}
	}
	if _, ok := ByName("E99"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestScalePick(t *testing.T) {
	if Quick.pick(1, 2) != 1 || Full.pick(1, 2) != 2 {
		t.Fatal("scale pick broken")
	}
}
