// Package rsm implements a replicated key-value store on top of Atomic
// Broadcast — the canonical application the paper motivates: "By employing
// this primitive to disseminate updates, all correct copies of a service
// deliver the same set of updates in the same order, and consequently the
// state of the service is kept consistent" (§1).
//
// The store implements the A-checkpoint upcall of Fig. 5 ("the most recent
// version of the data can be logged instead of all the past updates",
// §5.2) and the deferred-update transaction certification of §6.2: a
// transaction executes locally, then its read/write sets are atomically
// broadcast; every replica certifies it in the same total order, so all
// replicas reach the same commit/abort verdict.
package rsm

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/wire"
)

// Command kinds carried in broadcast payloads.
const (
	cmdPut uint8 = 1 // unconditional write
	cmdDel uint8 = 2 // unconditional delete
	cmdTx  uint8 = 3 // deferred-update transaction (§6.2)
)

// entry is one key's current value and version (the number of committed
// writes it has received).
type entry struct {
	value   string
	version uint64
}

// Store is one replica's state machine. Plug Apply into core.Config's
// OnDeliver and the Store itself into Checkpointer.
type Store struct {
	mu        sync.Mutex
	data      map[string]entry
	applied   uint64          // messages applied (monotone)
	committed uint64          // transactions committed
	aborted   uint64          // transactions aborted
	outcomes  map[string]bool // txID -> committed?
}

var _ core.Checkpointer = (*Store)(nil)

// NewStore creates an empty replica.
func NewStore() *Store {
	return &Store{
		data:     make(map[string]entry),
		outcomes: make(map[string]bool),
	}
}

// EncodePut builds the payload of an unconditional write.
func EncodePut(key, value string) []byte {
	w := wire.NewWriter(8 + len(key) + len(value))
	w.U8(cmdPut)
	w.String(key)
	w.String(value)
	return w.Bytes()
}

// EncodeDel builds the payload of an unconditional delete.
func EncodeDel(key string) []byte {
	w := wire.NewWriter(8 + len(key))
	w.U8(cmdDel)
	w.String(key)
	return w.Bytes()
}

// Tx is a deferred-update transaction: the read set carries the versions
// observed during local execution; the write set carries the updates to
// install if certification succeeds.
type Tx struct {
	ID     string
	Reads  map[string]uint64 // key -> version read
	Writes map[string]string // key -> new value
}

// EncodeTx builds the payload of a transaction commit request.
func EncodeTx(tx Tx) []byte {
	w := wire.NewWriter(64)
	w.U8(cmdTx)
	w.String(tx.ID)
	rkeys := make([]string, 0, len(tx.Reads))
	for k := range tx.Reads {
		rkeys = append(rkeys, k)
	}
	sort.Strings(rkeys)
	w.U64(uint64(len(rkeys)))
	for _, k := range rkeys {
		w.String(k)
		w.U64(tx.Reads[k])
	}
	wkeys := make([]string, 0, len(tx.Writes))
	for k := range tx.Writes {
		wkeys = append(wkeys, k)
	}
	sort.Strings(wkeys)
	w.U64(uint64(len(wkeys)))
	for _, k := range wkeys {
		w.String(k)
		w.String(tx.Writes[k])
	}
	return w.Bytes()
}

// DecodeTx parses a transaction commit request produced by EncodeTx; ok
// is false when the payload is not a well-formed transaction. Speculators
// consuming the tentative delivery stream use it to inspect predicted
// transactions without applying them.
func DecodeTx(payload []byte) (tx Tx, ok bool) {
	r := wire.NewReader(payload)
	if r.U8() != cmdTx {
		return Tx{}, false
	}
	tx.ID = r.String()
	nReads := r.U64()
	tx.Reads = make(map[string]uint64)
	for i := uint64(0); i < nReads && r.Err() == nil; i++ {
		k := r.String()
		tx.Reads[k] = r.U64()
	}
	nWrites := r.U64()
	tx.Writes = make(map[string]string)
	for i := uint64(0); i < nWrites && r.Err() == nil; i++ {
		k := r.String()
		tx.Writes[k] = r.String()
	}
	if r.Err() != nil {
		return Tx{}, false
	}
	return tx, true
}

// Apply is the delivery callback: it interprets one ordered message.
// Deterministic by construction, so identical delivery sequences yield
// identical replica states.
func (s *Store) Apply(d core.Delivery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyPayload(d.Msg.Payload)
}

// applyPayload mutates the state machine. s.mu held.
func (s *Store) applyPayload(payload []byte) {
	r := wire.NewReader(payload)
	switch r.U8() {
	case cmdPut:
		key := r.String()
		value := r.String()
		if r.Err() != nil {
			return
		}
		e := s.data[key]
		s.data[key] = entry{value: value, version: e.version + 1}
	case cmdDel:
		key := r.String()
		if r.Err() != nil {
			return
		}
		e, ok := s.data[key]
		if ok {
			// A delete bumps the version and clears the value; the
			// version must keep growing so later certification
			// still detects the conflict.
			s.data[key] = entry{value: "", version: e.version + 1}
		}
	case cmdTx:
		txID := r.String()
		nReads := r.U64()
		reads := make(map[string]uint64, nReads)
		for i := uint64(0); i < nReads && r.Err() == nil; i++ {
			k := r.String()
			reads[k] = r.U64()
		}
		nWrites := r.U64()
		type kv struct{ k, v string }
		writes := make([]kv, 0, nWrites)
		for i := uint64(0); i < nWrites && r.Err() == nil; i++ {
			writes = append(writes, kv{r.String(), r.String()})
		}
		if r.Err() != nil {
			return
		}
		// Certification: every read version must still be current.
		ok := true
		for k, v := range reads {
			if s.data[k].version != v {
				ok = false
				break
			}
		}
		if ok {
			for _, w := range writes {
				e := s.data[w.k]
				s.data[w.k] = entry{value: w.v, version: e.version + 1}
			}
			s.committed++
		} else {
			s.aborted++
		}
		s.outcomes[txID] = ok
	default:
		return
	}
	s.applied++
}

// Get returns the value and version of key.
func (s *Store) Get(key string) (string, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	return e.value, e.version, ok
}

// Begin snapshots the versions of the given keys for a deferred-update
// transaction's read set.
func (s *Store) Begin(keys ...string) map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	reads := make(map[string]uint64, len(keys))
	for _, k := range keys {
		reads[k] = s.data[k].version
	}
	return reads
}

// Outcome reports a certified transaction's verdict (ok=false if the
// transaction has not been delivered yet).
func (s *Store) Outcome(txID string) (committed, known bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	committed, known = s.outcomes[txID]
	return committed, known
}

// Applied returns the number of applied messages.
func (s *Store) Applied() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// CommitStats returns (committed, aborted) transaction counts.
func (s *Store) CommitStats() (uint64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed, s.aborted
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Fingerprint returns a deterministic digest of the full state, used by
// tests to assert replica convergence.
func (s *Store) Fingerprint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.encodeLocked())
}

// ---- core.Checkpointer (Fig. 5) ----

// Checkpoint folds delivered messages into the serialized application
// state: the returned bytes logically "contain" every folded update.
func (s *Store) Checkpoint(prev []byte, delivered []msg.Message) []byte {
	// Pure fold: decode prev into a scratch store, apply, re-encode.
	// The live store already applied these messages via Apply.
	scratch := NewStore()
	scratch.mu.Lock()
	defer scratch.mu.Unlock()
	scratch.restoreLocked(prev)
	for _, m := range delivered {
		scratch.applyPayload(m.Payload)
	}
	return scratch.encodeLocked()
}

// Restore implements the recovery/state-transfer upcall: the replica
// resets itself to the checkpointed state.
func (s *Store) Restore(app []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string]entry)
	s.outcomes = make(map[string]bool)
	s.applied = 0
	s.committed = 0
	s.aborted = 0
	s.restoreLocked(app)
}

// restoreLocked loads a serialized state. s.mu held.
func (s *Store) restoreLocked(app []byte) {
	if len(app) == 0 {
		return
	}
	r := wire.NewReader(app)
	n := r.U64()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		k := r.String()
		v := r.String()
		ver := r.U64()
		s.data[k] = entry{value: v, version: ver}
	}
	s.applied = r.U64()
	s.committed = r.U64()
	s.aborted = r.U64()
	nOut := r.U64()
	for i := uint64(0); i < nOut && r.Err() == nil; i++ {
		id := r.String()
		s.outcomes[id] = r.Bool()
	}
}

// encodeLocked serializes the state deterministically. s.mu held.
func (s *Store) encodeLocked() []byte {
	w := wire.NewWriter(256)
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		e := s.data[k]
		w.String(k)
		w.String(e.value)
		w.U64(e.version)
	}
	w.U64(s.applied)
	w.U64(s.committed)
	w.U64(s.aborted)
	txIDs := make([]string, 0, len(s.outcomes))
	for id := range s.outcomes {
		txIDs = append(txIDs, id)
	}
	sort.Strings(txIDs)
	w.U64(uint64(len(txIDs)))
	for _, id := range txIDs {
		w.String(id)
		w.Bool(s.outcomes[id])
	}
	return w.Bytes()
}
