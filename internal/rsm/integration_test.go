package rsm_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/rsm"
)

// buildReplicated wires one Store per process into a cluster.
func buildReplicated(opts harness.Options) (*harness.Cluster, []*rsm.Store) {
	stores := make([]*rsm.Store, opts.N)
	for i := range stores {
		stores[i] = rsm.NewStore()
	}
	opts.OnDeliver = func(pid ids.ProcessID, d core.Delivery) {
		stores[pid].Apply(d)
	}
	opts.OnRestore = func(pid ids.ProcessID, s core.Snapshot) {
		stores[pid].Restore(s.App)
	}
	return harness.NewCluster(opts), stores
}

func TestReplicatedKVConverges(t *testing.T) {
	c, stores := buildReplicated(harness.Options{N: 3, Seed: 61})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 0; i < 20; i++ {
		sender := ids.ProcessID(i % 3)
		if _, err := c.Broadcast(ctx, sender, rsm.EncodePut(fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	fp := stores[0].Fingerprint()
	for p := 1; p < 3; p++ {
		if stores[p].Fingerprint() != fp {
			t.Fatalf("replica %d diverged", p)
		}
	}
	if v, _, _ := stores[1].Get("k0"); v == "" {
		t.Fatal("replica missing data")
	}
}

func TestReplicatedKVRecoversAfterCrash(t *testing.T) {
	c, stores := buildReplicated(harness.Options{N: 3, Seed: 62})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 0; i < 10; i++ {
		if _, err := c.Broadcast(ctx, 0, rsm.EncodePut(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash(2)
	// More writes while p2 is down.
	for i := 10; i < 15; i++ {
		if _, err := c.Broadcast(ctx, 0, rsm.EncodePut(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if stores[2].Fingerprint() != stores[0].Fingerprint() {
		t.Fatal("recovered replica diverged")
	}
}

func TestKVCheckpointerPerProcess(t *testing.T) {
	// Full wiring: per-process Store acts as Checkpointer, OnDeliver and
	// OnRestore. State transfer then ships real application snapshots.
	stores := make([]*rsm.Store, 3)
	for i := range stores {
		stores[i] = rsm.NewStore()
	}
	opts := harness.Options{
		N:    3,
		Seed: 64,
		Core: core.Config{CheckpointEvery: 5, Delta: 3},
		OnDeliver: func(pid ids.ProcessID, d core.Delivery) {
			stores[pid].Apply(d)
		},
		OnRestore: func(pid ids.ProcessID, s core.Snapshot) {
			stores[pid].Restore(s.App)
		},
	}
	// The Checkpointer in core.Config is shared across processes in
	// harness.Options; its Checkpoint fold is pure (state in, state
	// out), so sharing is safe — Restore must go to the right store,
	// which OnRestore above guarantees. Use store[0] solely as the
	// pure fold engine.
	opts.Core.Checkpointer = foldOnly{s: stores[0]}
	c := harness.NewCluster(opts)
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	c.Crash(2)
	for i := 0; i < 40; i++ {
		if _, err := c.Broadcast(ctx, 0, rsm.EncodePut(fmt.Sprintf("k%d", i%7), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AwaitRound(ctx, 0, 15); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[0].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if stores[2].Fingerprint() != stores[0].Fingerprint() {
		t.Fatal("state-transferred replica diverged")
	}
}

// foldOnly adapts a Store to a pure Checkpointer: Checkpoint delegates to
// the store's pure fold (state in, state out — safe to share between
// processes), while Restore is a no-op because restores are routed to the
// right per-process store via harness.Options.OnRestore.
type foldOnly struct{ s *rsm.Store }

var _ core.Checkpointer = foldOnly{}

func (f foldOnly) Checkpoint(prev []byte, delivered []msg.Message) []byte {
	return f.s.Checkpoint(prev, delivered)
}

func (f foldOnly) Restore(app []byte) {}
