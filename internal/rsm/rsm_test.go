package rsm

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/msg"
)

func deliver(s *Store, pos uint64, payload []byte) {
	s.Apply(core.Delivery{
		Msg: msg.Message{
			ID:      ids.MsgID{Sender: 0, Incarnation: 1, Seq: pos + 1},
			Payload: payload,
		},
		Round: pos,
		Pos:   pos,
	})
}

func TestPutGetDel(t *testing.T) {
	s := NewStore()
	deliver(s, 0, EncodePut("a", "1"))
	v, ver, ok := s.Get("a")
	if !ok || v != "1" || ver != 1 {
		t.Fatalf("get: %q %d %v", v, ver, ok)
	}
	deliver(s, 1, EncodePut("a", "2"))
	v, ver, _ = s.Get("a")
	if v != "2" || ver != 2 {
		t.Fatalf("overwrite: %q %d", v, ver)
	}
	deliver(s, 2, EncodeDel("a"))
	v, ver, ok = s.Get("a")
	if v != "" || ver != 3 || !ok {
		t.Fatalf("del keeps versioned tombstone: %q %d %v", v, ver, ok)
	}
	if s.Applied() != 3 {
		t.Fatalf("applied = %d", s.Applied())
	}
}

func TestIdenticalSequencesConverge(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val byte
		Del bool
	}) bool {
		a, b := NewStore(), NewStore()
		for i, op := range ops {
			var payload []byte
			if op.Del {
				payload = EncodeDel(fmt.Sprintf("k%d", op.Key%8))
			} else {
				payload = EncodePut(fmt.Sprintf("k%d", op.Key%8), fmt.Sprintf("v%d", op.Val))
			}
			deliver(a, uint64(i), payload)
			deliver(b, uint64(i), payload)
		}
		return a.Fingerprint() == b.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTxCommitsWhenReadSetCurrent(t *testing.T) {
	s := NewStore()
	deliver(s, 0, EncodePut("x", "10"))
	reads := s.Begin("x")
	tx := Tx{ID: "t1", Reads: reads, Writes: map[string]string{"x": "11", "y": "1"}}
	deliver(s, 1, EncodeTx(tx))
	committed, known := s.Outcome("t1")
	if !known || !committed {
		t.Fatalf("outcome: %v %v", committed, known)
	}
	if v, _, _ := s.Get("x"); v != "11" {
		t.Fatalf("x = %q", v)
	}
	if v, _, _ := s.Get("y"); v != "1" {
		t.Fatalf("y = %q", v)
	}
	c, a := s.CommitStats()
	if c != 1 || a != 0 {
		t.Fatalf("stats: %d %d", c, a)
	}
}

func TestTxAbortsOnConflict(t *testing.T) {
	s := NewStore()
	deliver(s, 0, EncodePut("x", "10"))
	// Two transactions read the same version of x; the first to be
	// ordered commits, the second aborts — on every replica alike.
	reads1 := s.Begin("x")
	reads2 := s.Begin("x")
	deliver(s, 1, EncodeTx(Tx{ID: "t1", Reads: reads1, Writes: map[string]string{"x": "11"}}))
	deliver(s, 2, EncodeTx(Tx{ID: "t2", Reads: reads2, Writes: map[string]string{"x": "99"}}))
	if committed, _ := s.Outcome("t1"); !committed {
		t.Fatal("t1 should commit")
	}
	if committed, _ := s.Outcome("t2"); committed {
		t.Fatal("t2 should abort")
	}
	if v, _, _ := s.Get("x"); v != "11" {
		t.Fatalf("x = %q, want winner's value", v)
	}
	c, a := s.CommitStats()
	if c != 1 || a != 1 {
		t.Fatalf("stats: %d %d", c, a)
	}
}

func TestTxReadOfMissingKeyIsVersionZero(t *testing.T) {
	s := NewStore()
	reads := s.Begin("fresh")
	if reads["fresh"] != 0 {
		t.Fatalf("missing key version = %d", reads["fresh"])
	}
	deliver(s, 0, EncodeTx(Tx{ID: "t", Reads: reads, Writes: map[string]string{"fresh": "v"}}))
	if committed, _ := s.Outcome("t"); !committed {
		t.Fatal("tx on fresh key should commit")
	}
}

func TestOutcomeUnknownBeforeDelivery(t *testing.T) {
	s := NewStore()
	if _, known := s.Outcome("nope"); known {
		t.Fatal("unknown tx reported known")
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	s := NewStore()
	var delivered []msg.Message
	for i := 0; i < 20; i++ {
		payload := EncodePut(fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i))
		delivered = append(delivered, msg.Message{
			ID:      ids.MsgID{Sender: 0, Incarnation: 1, Seq: uint64(i + 1)},
			Payload: payload,
		})
		deliver(s, uint64(i), payload)
	}
	// The pure fold from scratch must equal the live state.
	snap := s.Checkpoint(nil, delivered)
	fresh := NewStore()
	fresh.Restore(snap)
	if fresh.Fingerprint() != s.Fingerprint() {
		t.Fatal("checkpoint fold diverged from live state")
	}
	// Incremental fold: first half, then second half on top.
	half := s.Checkpoint(nil, delivered[:10])
	full := s.Checkpoint(half, delivered[10:])
	fresh2 := NewStore()
	fresh2.Restore(full)
	if fresh2.Fingerprint() != s.Fingerprint() {
		t.Fatal("incremental checkpoint fold diverged")
	}
}

func TestRestoreReplacesState(t *testing.T) {
	s := NewStore()
	deliver(s, 0, EncodePut("old", "x"))
	other := NewStore()
	deliver(other, 0, EncodePut("new", "y"))
	other.mu.Lock()
	snap := other.encodeLocked()
	other.mu.Unlock()
	s.Restore(snap)
	if _, _, ok := s.Get("old"); ok {
		t.Fatal("old state survived restore")
	}
	if v, _, _ := s.Get("new"); v != "y" {
		t.Fatal("restored state missing")
	}
	if s.Fingerprint() != other.Fingerprint() {
		t.Fatal("restore not faithful")
	}
}

func TestMalformedPayloadIgnored(t *testing.T) {
	s := NewStore()
	deliver(s, 0, []byte{99})    // unknown command
	deliver(s, 1, []byte{})      // empty
	deliver(s, 2, []byte{1, 50}) // truncated put
	if s.Applied() != 0 {
		t.Fatalf("malformed payloads applied: %d", s.Applied())
	}
}
