// Package wire implements the compact binary codec used for every network
// message and stable-storage record in the system.
//
// The encoding is deliberately simple: unsigned varints for integers,
// length-prefixed byte strings, and a caller-supplied record tag. A Writer
// never fails; a Reader is sticky-error so decoding code can be written as a
// straight line and checked once at the end (the same discipline as
// encoding/binary but allocation-conscious).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// ErrTruncated is returned when a buffer ends before a value is complete.
var ErrTruncated = errors.New("wire: truncated input")

// ErrMalformed is returned when a value is syntactically invalid.
var ErrMalformed = errors.New("wire: malformed input")

// Writer accumulates an encoded record. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated to sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Reset empties the Writer for reuse, keeping its allocated capacity. Any
// previously returned Bytes() slice is invalidated.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// writerPool recycles Writers across encode calls on the hot paths
// (heartbeats, gossip frames, consensus ballot messages): steady-state
// sends stop allocating a fresh buffer per message.
var writerPool = sync.Pool{New: func() any { return &Writer{} }}

// poolMaxCap bounds the capacity of buffers kept in the pool; one huge
// record (a state transfer, a recovery batch) must not pin its buffer
// forever.
const poolMaxCap = 64 << 10

// GetWriter returns an empty pooled Writer with at least sizeHint capacity.
// Release it with PutWriter once the encoded bytes have been fully consumed
// — every transport layer in this module copies synchronously on Send, so
// releasing right after the send call is safe.
func GetWriter(sizeHint int) *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	if cap(w.buf) < sizeHint {
		w.buf = make([]byte, 0, sizeHint)
	}
	return w
}

// PutWriter returns w to the pool. The caller must not touch w (or any
// slice previously obtained from w.Bytes()) afterwards.
func PutWriter(w *Writer) {
	if cap(w.buf) > poolMaxCap {
		return // oversized one-off: let the GC have it
	}
	writerPool.Put(w)
}

// Bytes returns the encoded record. The returned slice aliases the Writer's
// internal buffer; callers that retain it must not reuse the Writer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends a single byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U64 appends an unsigned varint.
func (w *Writer) U64(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// I64 appends a signed varint (zig-zag).
func (w *Writer) I64(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Bytes32 appends a length-prefixed byte string.
func (w *Writer) Bytes32(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends b with no length prefix.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader decodes a record produced by Writer. It is sticky-error: after the
// first failure every accessor returns a zero value and Err reports the
// failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns an error if decoding failed or bytes remain unconsumed.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// U8 decodes a single byte.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Bool decodes a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U64 decodes an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// I64 decodes a signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.off += n
	return v
}

// Bytes32 decodes a length-prefixed byte string. The result aliases the
// input buffer.
func (r *Reader) Bytes32() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return b
}

// BytesCopy decodes a length-prefixed byte string into fresh storage, safe to
// retain after the input buffer is reused.
func (r *Reader) BytesCopy() []byte {
	b := r.Bytes32()
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	return string(r.Bytes32())
}
