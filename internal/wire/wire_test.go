package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	w := NewWriter(64)
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U64(0)
	w.U64(1<<63 + 12345)
	w.I64(-42)
	w.I64(1 << 40)
	w.Bytes32([]byte("payload"))
	w.String("a string")

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round-trip failed")
	}
	if got := r.U64(); got != 0 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.U64(); got != 1<<63+12345 {
		t.Fatalf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.I64(); got != 1<<40 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Bytes32 = %q", got)
	}
	if got := r.String(); got != "a string" {
		t.Fatalf("String = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

// TestRoundTripProperty quick-checks arbitrary values survive a round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(u uint64, i int64, b []byte, s string, flag bool) bool {
		w := NewWriter(0)
		w.U64(u)
		w.I64(i)
		w.Bytes32(b)
		w.String(s)
		w.Bool(flag)
		r := NewReader(w.Bytes())
		if r.U64() != u || r.I64() != i {
			return false
		}
		if got := r.Bytes32(); !bytes.Equal(got, b) {
			return false
		}
		if r.String() != s || r.Bool() != flag {
			return false
		}
		return r.Done() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncatedInputsFailCleanly(t *testing.T) {
	w := NewWriter(0)
	w.U64(500)
	w.Bytes32([]byte("hello world"))
	full := w.Bytes()
	// Every strict prefix must produce ErrTruncated, never a panic.
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.U64()
		r.Bytes32()
		if r.Err() == nil {
			t.Fatalf("prefix of %d bytes decoded without error", cut)
		}
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("prefix %d: got %v, want ErrTruncated", cut, r.Err())
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	_ = r.U64() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// All subsequent reads return zero values without panicking.
	if r.U8() != 0 || r.U64() != 0 || r.I64() != 0 || r.Bytes32() != nil || r.Bool() {
		t.Fatal("sticky error not honored")
	}
}

func TestDoneRejectsTrailingBytes(t *testing.T) {
	w := NewWriter(0)
	w.U64(1)
	w.U8(99) // trailing garbage
	r := NewReader(w.Bytes())
	r.U64()
	if err := r.Done(); err == nil {
		t.Fatal("Done accepted trailing bytes")
	}
}

func TestBytesCopyIsIndependent(t *testing.T) {
	w := NewWriter(0)
	w.Bytes32([]byte("mutate me"))
	buf := w.Bytes()
	r := NewReader(buf)
	cp := r.BytesCopy()
	buf[len(buf)-1] ^= 0xff
	if string(cp) != "mutate me" {
		t.Fatal("BytesCopy aliases the input")
	}
}

func TestLenAndRemaining(t *testing.T) {
	w := NewWriter(8)
	w.U8(1)
	w.U8(2)
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	r := NewReader(w.Bytes())
	if r.Remaining() != 2 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	r.U8()
	if r.Remaining() != 1 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}
