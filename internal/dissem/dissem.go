// Package dissem implements the payload dissemination plane of the
// ordering/dissemination split (Ring Paxos style): broadcasters stream full
// payloads around a successor ring derived from the failure-detector
// membership, while consensus orders ID vectors only (msg.IDRec — identity
// plus payload checksum, no bodies). Each process forwards a payload to its
// single ring successor, so per-process egress is O(payload) per message
// instead of the O(N·payload) a sequencer pays when proposals carry bodies.
//
// The ring is an optimization, not a correctness mechanism: relay frames are
// fair-lossy like everything else, and a payload that misses a process is
// repaired by the digest-gossip pull path (or, after checkpointing, by state
// transfer). On suspicion the ring heals around the suspect — the successor
// is recomputed from the failure detector's trusted set at every send.
package dissem

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Alive is the membership oracle the ring derives successors from
// (satisfied by fd.API).
type Alive interface {
	// Trusted returns the currently unsuspected processes in pid order.
	Trusted() []ids.ProcessID
}

// Net is the sending side of the ring's channel (satisfied by router.Net).
type Net interface {
	Send(to ids.ProcessID, payload []byte)
}

// Sink consumes one disseminated payload for a group. It reports whether the
// message was new at this process — the ring forwards only new messages, so
// the sink's dedup is also the relay's loop prevention.
type Sink func(m msg.Message) bool

// Options tunes a Ring.
type Options struct {
	// QueueLen bounds the forward queue (default 256). Local publishers
	// block when it is full (backpressure on the broadcaster); inbound
	// relay frames are dropped instead (the receive loop must not block —
	// gossip repairs the loss).
	QueueLen int
}

// Stats is a snapshot of ring counters.
type Stats struct {
	Published  uint64 // locally originated payloads enqueued
	Relayed    uint64 // frames forwarded to the successor
	Received   uint64 // well-formed frames received
	Duplicates uint64 // received frames the sink had already seen
	DropFull   uint64 // inbound frames dropped: forward queue full
	DropNoSink uint64 // frames for a group with no registered sink
	DropBad    uint64 // malformed frames
}

type frame struct {
	group ids.GroupID
	hops  uint8
	m     msg.Message
}

// Ring is one process's relay: one per process, shared by every group (the
// frame carries the group tag). Create with New, Register each group's sink,
// Start, and Stop with the process.
type Ring struct {
	pid   ids.ProcessID
	n     int
	alive Alive
	net   Net

	queue   chan frame
	stopped chan struct{}

	mu      sync.Mutex
	sinks   map[ids.GroupID]Sink
	started bool

	cancel context.CancelFunc
	wg     sync.WaitGroup

	published, relayed, received, duplicates atomic.Uint64
	dropFull, dropNoSink, dropBad            atomic.Uint64
}

// New creates a ring for process pid of n over net, with liveness from
// alive.
func New(pid ids.ProcessID, n int, alive Alive, net Net, opts Options) *Ring {
	if opts.QueueLen <= 0 {
		opts.QueueLen = 256
	}
	return &Ring{
		pid:     pid,
		n:       n,
		alive:   alive,
		net:     net,
		queue:   make(chan frame, opts.QueueLen),
		stopped: make(chan struct{}),
		sinks:   make(map[ids.GroupID]Sink),
	}
}

// Inert returns a ring that drops every publish and delivers nothing — the
// stand-in handed to a group whose process-level ring is gone (the process
// is crashing). Payload repair falls to gossip.
func Inert() *Ring {
	r := &Ring{stopped: make(chan struct{}), sinks: make(map[ids.GroupID]Sink)}
	close(r.stopped)
	return r
}

// Register installs the sink for group g (replacing any previous one).
func (r *Ring) Register(g ids.GroupID, sink Sink) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sinks[g] = sink
}

// Unregister removes group g's sink; its frames are dropped afterwards.
func (r *Ring) Unregister(g ids.GroupID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sinks, g)
}

// Start launches the forward loop.
func (r *Ring) Start(ctx context.Context) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return
	}
	r.started = true
	ctx, r.cancel = context.WithCancel(ctx)
	r.wg.Add(1)
	go r.forward(ctx)
}

// Stop halts the forward loop and unblocks any pending publisher.
func (r *Ring) Stop() {
	r.mu.Lock()
	if r.cancel != nil {
		r.cancel()
	}
	select {
	case <-r.stopped:
	default:
		close(r.stopped)
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// Publish enqueues a locally originated payload for relay to the successor.
// It blocks when the forward queue is full (backpressure) and drops the
// frame once the ring is stopped.
func (r *Ring) Publish(g ids.GroupID, m msg.Message) {
	select {
	case <-r.stopped:
		return
	default:
	}
	select {
	case r.queue <- frame{group: g, hops: 0, m: m}:
		r.published.Add(1)
	case <-r.stopped:
	}
}

// Publisher returns a facade bound to group g (satisfies core's
// Disseminator).
func (r *Ring) Publisher(g ids.GroupID) GroupPublisher {
	return GroupPublisher{r: r, g: g}
}

// GroupPublisher publishes one group's payloads to the process ring.
type GroupPublisher struct {
	r *Ring
	g ids.GroupID
}

// Publish submits m to the ring under the publisher's group.
func (p GroupPublisher) Publish(m msg.Message) { p.r.Publish(p.g, m) }

// OnMessage is the router handler for ring relay frames. It hands the
// payload to the group's sink and, when the sink reports it new and the hop
// budget is not exhausted, re-enqueues it for the successor. It never
// blocks: if the forward queue is full the frame is dropped and gossip
// repairs the hole downstream.
func (r *Ring) OnMessage(from ids.ProcessID, payload []byte) {
	rd := wire.NewReader(payload)
	g := ids.GroupID(rd.I64())
	hops := rd.U8()
	m := msg.DecodeMessage(rd)
	if rd.Done() != nil {
		r.dropBad.Add(1)
		return
	}
	r.received.Add(1)
	r.mu.Lock()
	sink := r.sinks[g]
	r.mu.Unlock()
	if sink == nil {
		r.dropNoSink.Add(1)
		return
	}
	if !sink(m) {
		r.duplicates.Add(1)
		return // seen before: the ring already passed through here
	}
	// A frame received with h hops has made h+1 sends; n-1 sends visit
	// every member of a stable ring.
	if int(hops)+1 >= r.n-1 {
		return
	}
	select {
	case r.queue <- frame{group: g, hops: hops + 1, m: m}:
	default:
		r.dropFull.Add(1)
	}
}

func (r *Ring) forward(ctx context.Context) {
	defer r.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case f := <-r.queue:
			succ := r.successor()
			if succ == r.pid || succ == ids.Nobody {
				continue // alone in the trusted set
			}
			w := wire.GetWriter(32 + len(f.m.Payload))
			w.I64(int64(f.group))
			w.U8(f.hops)
			f.m.Encode(w)
			r.net.Send(succ, w.Bytes())
			wire.PutWriter(w)
			r.relayed.Add(1)
		}
	}
}

// successor returns the next trusted process after r.pid in cyclic pid
// order, healing around suspects.
func (r *Ring) successor() ids.ProcessID {
	trusted := r.alive.Trusted()
	if len(trusted) == 0 {
		return ids.Nobody
	}
	for _, p := range trusted { // sorted by pid
		if p > r.pid {
			return p
		}
	}
	return trusted[0]
}

// SetObs exports the ring counters as read-on-scrape metrics under
// "abcast.ring.<name>" — the ring already keeps lock-free atomics, so no
// double bookkeeping. Nil is a no-op.
func (r *Ring) SetObs(p *obs.Plane) {
	if p == nil {
		return
	}
	reg := p.Reg()
	reg.Func("abcast.ring.published", func() int64 { return int64(r.published.Load()) })
	reg.Func("abcast.ring.relayed", func() int64 { return int64(r.relayed.Load()) })
	reg.Func("abcast.ring.received", func() int64 { return int64(r.received.Load()) })
	reg.Func("abcast.ring.duplicates", func() int64 { return int64(r.duplicates.Load()) })
	reg.Func("abcast.ring.drop_full", func() int64 { return int64(r.dropFull.Load()) })
	reg.Func("abcast.ring.drop_no_sink", func() int64 { return int64(r.dropNoSink.Load()) })
	reg.Func("abcast.ring.drop_bad", func() int64 { return int64(r.dropBad.Load()) })
}

// Stats snapshots the ring counters.
func (r *Ring) Stats() Stats {
	return Stats{
		Published:  r.published.Load(),
		Relayed:    r.relayed.Load(),
		Received:   r.received.Load(),
		Duplicates: r.duplicates.Load(),
		DropFull:   r.dropFull.Load(),
		DropNoSink: r.dropNoSink.Load(),
		DropBad:    r.dropBad.Load(),
	}
}
