package dissem

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/wire"
)

// fakeAlive is a mutable trusted set.
type fakeAlive struct {
	mu      sync.Mutex
	trusted []ids.ProcessID
}

func (f *fakeAlive) Trusted() []ids.ProcessID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ids.ProcessID, len(f.trusted))
	copy(out, f.trusted)
	return out
}

func (f *fakeAlive) set(pids ...ids.ProcessID) {
	f.mu.Lock()
	f.trusted = pids
	f.mu.Unlock()
}

// loopNet delivers sends synchronously into the target ring's OnMessage.
type loopNet struct {
	mu    sync.Mutex
	from  ids.ProcessID
	rings map[ids.ProcessID]*Ring
	drop  map[ids.ProcessID]bool // unreachable targets
}

func (l *loopNet) Send(to ids.ProcessID, payload []byte) {
	l.mu.Lock()
	r := l.rings[to]
	dropped := l.drop[to]
	l.mu.Unlock()
	if r == nil || dropped {
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	r.OnMessage(l.from, cp)
}

// testCluster builds n rings wired through loopNets, with a recording sink
// per ring on group g that dedups by message ID.
func testCluster(t *testing.T, n int, g ids.GroupID) (rings []*Ring, alive *fakeAlive, got []chan msg.Message, stop func()) {
	t.Helper()
	alive = &fakeAlive{}
	all := make([]ids.ProcessID, n)
	for i := range all {
		all[i] = ids.ProcessID(i)
	}
	alive.set(all...)
	table := make(map[ids.ProcessID]*Ring)
	ctx, cancel := context.WithCancel(context.Background())
	got = make([]chan msg.Message, n)
	for i := 0; i < n; i++ {
		pid := ids.ProcessID(i)
		net := &loopNet{from: pid, rings: table}
		r := New(pid, n, alive, net, Options{})
		table[pid] = r
		ch := make(chan msg.Message, 16)
		got[i] = ch
		seen := make(map[ids.MsgID]bool)
		var mu sync.Mutex
		r.Register(g, func(m msg.Message) bool {
			mu.Lock()
			defer mu.Unlock()
			if seen[m.ID] {
				return false
			}
			seen[m.ID] = true
			ch <- m
			return true
		})
		rings = append(rings, r)
		r.Start(ctx)
	}
	return rings, alive, got, func() {
		cancel()
		for _, r := range rings {
			r.Stop()
		}
	}
}

func await(t *testing.T, ch chan msg.Message, want msg.Message) {
	t.Helper()
	select {
	case m := <-ch:
		if !m.Equal(want) {
			t.Fatalf("got %v, want %v", m, want)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("timed out waiting for %v", want)
	}
}

func TestRingRelaysToEveryMember(t *testing.T) {
	rings, _, got, stop := testCluster(t, 3, 0)
	defer stop()
	m := msg.Message{ID: ids.MsgID{Sender: 0, Incarnation: 1, Seq: 1}, Payload: []byte("hello ring")}
	rings[0].Publish(0, m)
	await(t, got[1], m)
	await(t, got[2], m)
	select {
	case extra := <-got[0]:
		t.Fatalf("origin sink invoked with %v", extra)
	case <-time.After(50 * time.Millisecond):
	}
	if s := rings[0].Stats(); s.Published != 1 || s.Relayed != 1 {
		t.Fatalf("origin stats = %+v, want Published=1 Relayed=1", s)
	}
}

func TestRingHealsAroundSuspect(t *testing.T) {
	rings, alive, got, stop := testCluster(t, 3, 0)
	defer stop()
	alive.set(0, 2) // p1 suspected: p0's successor becomes p2
	m := msg.Message{ID: ids.MsgID{Sender: 0, Incarnation: 1, Seq: 2}, Payload: []byte("skip p1")}
	rings[0].Publish(0, m)
	await(t, got[2], m)
	select {
	case <-got[1]:
		t.Fatal("suspected p1 received the relay")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestRingDedupStopsLoops(t *testing.T) {
	rings, _, got, stop := testCluster(t, 3, 0)
	defer stop()
	m := msg.Message{ID: ids.MsgID{Sender: 1, Incarnation: 1, Seq: 7}, Payload: []byte("x")}
	// Publish the same message twice: downstream sinks must fire once.
	rings[1].Publish(0, m)
	rings[1].Publish(0, m)
	await(t, got[2], m)
	await(t, got[0], m)
	time.Sleep(50 * time.Millisecond)
	if len(got[2]) != 0 || len(got[0]) != 0 {
		t.Fatal("duplicate relay reached a sink twice")
	}
}

func TestRingDropsUnregisteredAndMalformed(t *testing.T) {
	rings, _, _, stop := testCluster(t, 2, 0)
	defer stop()
	m := msg.Message{ID: ids.MsgID{Sender: 0, Incarnation: 1, Seq: 1}, Payload: []byte("y")}
	w := wire.GetWriter(64)
	w.I64(99) // group with no sink
	w.U8(0)
	m.Encode(w)
	rings[1].OnMessage(0, w.Bytes())
	wire.PutWriter(w)
	rings[1].OnMessage(0, []byte{0xff}) // truncated
	s := rings[1].Stats()
	if s.DropNoSink != 1 || s.DropBad != 1 {
		t.Fatalf("stats = %+v, want DropNoSink=1 DropBad=1", s)
	}
}

func TestInertRingDropsPublishes(t *testing.T) {
	r := Inert()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			r.Publish(0, msg.Message{ID: ids.MsgID{Sender: 0, Incarnation: 1, Seq: uint64(i)}})
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("inert ring blocked a publisher")
	}
	r.Stop()
}

func TestPublishUnblocksOnStop(t *testing.T) {
	alive := &fakeAlive{}
	alive.set(0, 1)
	r := New(0, 2, alive, &loopNet{from: 0, rings: map[ids.ProcessID]*Ring{}}, Options{QueueLen: 1})
	// Never started: the queue fills and the next publish blocks until Stop.
	r.Publish(0, msg.Message{ID: ids.MsgID{Sender: 0, Incarnation: 1, Seq: 1}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Publish(0, msg.Message{ID: ids.MsgID{Sender: 0, Incarnation: 1, Seq: 2}})
	}()
	time.Sleep(20 * time.Millisecond)
	r.Stop()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher still blocked after Stop")
	}
}
