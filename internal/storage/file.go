package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// File is a file-backed Stable engine for real deployments. Each cell is a
// file written via temp-file-plus-rename (atomic on POSIX); each log is an
// append-only file of CRC-framed records. A torn tail (partial record from a
// crash mid-append) is detected by the CRC and discarded on read, which is
// the standard write-ahead-log recovery discipline.
//
// Open log handles are cached per key (an Append used to reopen the file on
// every record); Close releases them. With syncWrites the engine fsyncs
// every single record — the sync-per-write baseline that the group-commit
// WAL engine is measured against in E15.
type File struct {
	mu     sync.Mutex
	dir    string
	closed bool
	sync   bool // fsync after every write (durability vs. throughput knob)
	logs   map[string]*os.File
	syncs  atomic.Int64
}

var _ Stable = (*File)(nil)
var _ Closer = (*File)(nil)

// NewFile opens (creating if needed) a file-backed store rooted at dir.
// If syncWrites is true every Put/Append is fsynced before returning.
func NewFile(dir string, syncWrites bool) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	return &File{dir: dir, sync: syncWrites, logs: make(map[string]*os.File)}, nil
}

// Close implements Closer: cached log handles are released.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	var first error
	for key, fh := range f.logs {
		if err := fh.Close(); err != nil && first == nil {
			first = err
		}
		delete(f.logs, key)
	}
	return first
}

// SyncCount returns the number of fsyncs issued (observability; E15
// compares it against the WAL's).
func (f *File) SyncCount() int64 { return f.syncs.Load() }

// escape maps a storage key to a safe file name. Keys use '/' as a logical
// separator; it is flattened so every key is a single file in dir.
func escape(key string) string {
	r := strings.NewReplacer("/", "~", "\\", "~", ":", "~")
	return r.Replace(key)
}

func unescape(name string) string {
	return strings.ReplaceAll(name, "~", "/")
}

func (f *File) cellPath(key string) string { return filepath.Join(f.dir, "c."+escape(key)) }
func (f *File) logPath(key string) string  { return filepath.Join(f.dir, "l."+escape(key)) }

// Put implements Stable.
func (f *File) Put(key string, val []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	path := f.cellPath(key)
	tmp := path + ".tmp"
	framed := frame(val)
	if err := os.WriteFile(tmp, framed, 0o644); err != nil {
		return fmt.Errorf("storage: write cell: %w", err)
	}
	if f.sync {
		if err := syncFile(tmp); err != nil {
			return err
		}
		f.syncs.Add(1)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: rename cell: %w", err)
	}
	return nil
}

// Get implements Stable.
func (f *File) Get(key string) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, false, ErrClosed
	}
	b, err := os.ReadFile(f.cellPath(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("storage: read cell: %w", err)
	}
	val, _, ok := unframe(b)
	if !ok {
		// A torn cell write lost the update; the old value was already
		// renamed away only on success, so this means corruption.
		return nil, false, fmt.Errorf("storage: cell %q corrupt", key)
	}
	return val, true, nil
}

// Append implements Stable. The open handle is cached per key so repeated
// appends to the same log skip the open/close pair.
func (f *File) Append(key string, rec []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	fh, ok := f.logs[key]
	if !ok {
		var err error
		fh, err = os.OpenFile(f.logPath(key), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("storage: open log: %w", err)
		}
		f.logs[key] = fh
	}
	if _, err := fh.Write(frame(rec)); err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	if f.sync {
		if err := fh.Sync(); err != nil {
			return fmt.Errorf("storage: fsync: %w", err)
		}
		f.syncs.Add(1)
	}
	return nil
}

// Records implements Stable.
func (f *File) Records(key string) ([][]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	b, err := os.ReadFile(f.logPath(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: read log: %w", err)
	}
	var recs [][]byte
	for len(b) > 0 {
		rec, rest, ok := unframe(b)
		if !ok {
			// Torn tail from a crash mid-append: discard it.
			break
		}
		recs = append(recs, rec)
		b = rest
	}
	return recs, nil
}

// Delete implements Stable.
func (f *File) Delete(key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if fh, ok := f.logs[key]; ok {
		fh.Close()
		delete(f.logs, key)
	}
	for _, p := range []string{f.cellPath(key), f.logPath(key)} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("storage: delete: %w", err)
		}
	}
	return nil
}

// List implements Stable.
func (f *File) List(prefix string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: list: %w", err)
	}
	seen := make(map[string]bool)
	var keys []string
	for _, e := range entries {
		name := e.Name()
		var key string
		switch {
		case strings.HasPrefix(name, "c."):
			key = unescape(strings.TrimPrefix(name, "c."))
		case strings.HasPrefix(name, "l."):
			key = unescape(strings.TrimPrefix(name, "l."))
		default:
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			continue
		}
		if strings.HasPrefix(key, prefix) && !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// frame wraps a payload as [len u32][crc u32][payload].
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// unframe extracts one framed payload, returning it, the remaining bytes and
// whether the frame was intact.
func unframe(b []byte) (payload, rest []byte, ok bool) {
	if len(b) < 8 {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	crc := binary.LittleEndian.Uint32(b[4:8])
	if uint32(len(b)-8) < n {
		return nil, nil, false
	}
	payload = b[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, nil, false
	}
	cp := make([]byte, n)
	copy(cp, payload)
	return cp, b[8+n:], true
}

func syncFile(path string) error {
	fh, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storage: open for fsync: %w", err)
	}
	defer fh.Close()
	if err := fh.Sync(); err != nil && err != io.EOF {
		return fmt.Errorf("storage: fsync: %w", err)
	}
	return nil
}
