package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedCrash is returned by a Faulty store once its trigger fires. The
// node layer treats it as a process crash, which lets tests crash a process
// at an exact protocol step (e.g. "after logging the proposal for round k
// but before the Consensus decides", the window §4.2 reasons about).
var ErrInjectedCrash = errors.New("storage: injected crash")

// Faulty wraps a Stable engine and fails the Nth log operation (Put or
// Append), counting from 1. After firing, every subsequent log operation
// also fails until Disarm is called, modelling a process that is down.
type Faulty struct {
	inner Stable

	mu      sync.Mutex
	failAt  int64 // 0 = disarmed
	ops     int64
	tripped bool
	onTrip  func()
	latency time.Duration // extra delay to every durability point
	// tripOnce is replaced (not reset in place) on every re-arm, so an
	// in-flight trip of the previous arming keeps its own Once while a
	// new arming starts fresh.
	tripOnce *sync.Once

	// obsState is the persist-latency instrumentation (SetObs); atomic so
	// wiring can land after operations are already in flight.
	obsState atomic.Pointer[storeObs]
}

var (
	_ Stable      = (*Faulty)(nil)
	_ AsyncStable = (*Faulty)(nil)
)

// NewFaulty wraps inner. The trigger starts disarmed.
func NewFaulty(inner Stable) *Faulty {
	return &Faulty{inner: inner}
}

// Inner returns the wrapped engine.
func (f *Faulty) Inner() Stable { return f.inner }

// FailAfter arms the trigger: the n-th subsequent log operation fails.
// onTrip, if non-nil, runs exactly once when the trigger fires (typically
// it launches a goroutine that crashes the node). It is invoked
// synchronously inside the failing operation, under the trigger lock, so
// it must not invoke storage operations itself.
func (f *Faulty) FailAfter(n int64, onTrip func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt = n
	f.ops = 0
	f.tripped = false
	f.onTrip = onTrip
	f.tripOnce = new(sync.Once)
}

// Disarm clears the trigger and the tripped state. It reports whether the
// trigger had already fired — read and reset under one lock, so callers
// can atomically distinguish "survived unarmed" from "a trip (and its
// onTrip) already happened".
func (f *Faulty) Disarm() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	fired := f.tripped
	f.failAt = 0
	f.tripped = false
	return fired
}

// Tripped reports whether the trigger has fired.
func (f *Faulty) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// SetLatency injects a fixed extra delay into every log operation's
// durability point, modelling a slow disk: synchronous operations return
// late; asynchronous completions resolve late (issue time is unchanged —
// a slow fsync, not a slow syscall — so callers that issue under a lock
// never stall on the injected delay). Zero disables; the read path and the
// failure trigger are unaffected.
func (f *Faulty) SetLatency(d time.Duration) {
	f.mu.Lock()
	f.latency = d
	f.mu.Unlock()
}

func (f *Faulty) lat() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.latency
}

// sleepLat stalls a synchronous operation by the injected latency.
func (f *Faulty) sleepLat() {
	if d := f.lat(); d > 0 {
		time.Sleep(d)
	}
}

// delayed postpones c's resolution by the injected latency. The chained
// completion resolves on a timer goroutine, never on the caller's.
func (f *Faulty) delayed(c *Completion) *Completion {
	d := f.lat()
	if d <= 0 {
		return c
	}
	out := newCompletion()
	c.OnDone(func(err error) {
		time.AfterFunc(d, func() { out.complete(err) })
	})
	return out
}

// check counts one log operation and reports whether it must fail.
func (f *Faulty) check() bool {
	f.mu.Lock()
	if f.tripped {
		f.mu.Unlock()
		return true
	}
	if f.failAt == 0 {
		f.mu.Unlock()
		return false
	}
	f.ops++
	if f.ops < f.failAt {
		f.mu.Unlock()
		return false
	}
	f.tripped = true
	// Run the callback under the trigger lock so arming, tripping and
	// disarming serialize: after Disarm returns, any fired trip has
	// already completed its onTrip (no notification can race past a
	// disarm). onTrip must therefore not invoke storage operations.
	if f.onTrip != nil && f.tripOnce != nil {
		f.tripOnce.Do(f.onTrip)
	}
	f.mu.Unlock()
	return true
}

// Put implements Stable.
func (f *Faulty) Put(key string, val []byte) error {
	if f.check() {
		return ErrInjectedCrash
	}
	start := time.Now()
	err := f.inner.Put(key, val)
	f.sleepLat()
	f.obsState.Load().observe(start, "persist")
	return err
}

// Append implements Stable.
func (f *Faulty) Append(key string, rec []byte) error {
	if f.check() {
		return ErrInjectedCrash
	}
	start := time.Now()
	err := f.inner.Append(key, rec)
	f.sleepLat()
	f.obsState.Load().observe(start, "persist")
	return err
}

// PutAsync implements AsyncStable. The trigger is checked at issue time —
// an injected crash fails the operation before it reaches the inner
// engine, exactly like the synchronous path.
func (f *Faulty) PutAsync(key string, val []byte) *Completion {
	if f.check() {
		return completed(ErrInjectedCrash)
	}
	if as, ok := f.inner.(AsyncStable); ok {
		return f.observeAsync(f.delayed(as.PutAsync(key, val)))
	}
	return f.observeAsync(f.delayed(completed(f.inner.Put(key, val))))
}

// AppendAsync implements AsyncStable.
func (f *Faulty) AppendAsync(key string, rec []byte) *Completion {
	if f.check() {
		return completed(ErrInjectedCrash)
	}
	if as, ok := f.inner.(AsyncStable); ok {
		return f.observeAsync(f.delayed(as.AppendAsync(key, rec)))
	}
	return f.observeAsync(f.delayed(completed(f.inner.Append(key, rec))))
}

// DeleteAsync implements AsyncStable (a log operation: it advances the
// trigger, like Delete).
func (f *Faulty) DeleteAsync(key string) *Completion {
	if f.check() {
		return completed(ErrInjectedCrash)
	}
	if as, ok := f.inner.(AsyncStable); ok {
		return f.observeAsync(f.delayed(as.DeleteAsync(key)))
	}
	return f.observeAsync(f.delayed(completed(f.inner.Delete(key))))
}

// Sync implements AsyncStable. The barrier itself is not a log operation,
// so it does not advance the trigger; a tripped store still fails it. The
// injected latency applies: the barrier covers the delayed completions.
func (f *Faulty) Sync() error {
	f.mu.Lock()
	tripped := f.tripped
	f.mu.Unlock()
	if tripped {
		return ErrInjectedCrash
	}
	if as, ok := f.inner.(AsyncStable); ok {
		err := as.Sync()
		f.sleepLat()
		return err
	}
	f.sleepLat()
	return nil
}

// Get implements Stable.
func (f *Faulty) Get(key string) ([]byte, bool, error) {
	f.mu.Lock()
	tripped := f.tripped
	f.mu.Unlock()
	if tripped {
		return nil, false, ErrInjectedCrash
	}
	return f.inner.Get(key)
}

// Records implements Stable.
func (f *Faulty) Records(key string) ([][]byte, error) {
	f.mu.Lock()
	tripped := f.tripped
	f.mu.Unlock()
	if tripped {
		return nil, ErrInjectedCrash
	}
	return f.inner.Records(key)
}

// Delete implements Stable.
func (f *Faulty) Delete(key string) error {
	if f.check() {
		return ErrInjectedCrash
	}
	start := time.Now()
	err := f.inner.Delete(key)
	f.sleepLat()
	f.obsState.Load().observe(start, "persist")
	return err
}

// List implements Stable.
func (f *Faulty) List(prefix string) ([]string, error) {
	return f.inner.List(prefix)
}
