package storage

import "sync"

// Completion is the handle returned by asynchronous log operations
// (AsyncStable.PutAsync / AppendAsync). It resolves exactly once, when the
// operation's durability point is reached — for the group-commit WAL engine
// that is the fsync that covers the record; for synchronous engines the
// operation completed before the Completion was returned.
//
// The crash-recovery discipline (§2.1/§5.5) is: a process may update its
// volatile state as soon as the write is issued, but it must not *act* on
// the write — send the message the log protects, deliver the decision —
// until the Completion resolves without error.
type Completion struct {
	mu   sync.Mutex
	done bool
	err  error
	ch   chan struct{}
	cbs  []func(error)
}

func newCompletion() *Completion {
	return &Completion{ch: make(chan struct{})}
}

// completed returns an already-resolved Completion (synchronous engines).
func completed(err error) *Completion {
	c := newCompletion()
	c.complete(err)
	return c
}

// complete resolves the completion: the waiters unblock and the registered
// callbacks run, in registration order, on the calling goroutine.
func (c *Completion) complete(err error) {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return
	}
	c.done = true
	c.err = err
	cbs := c.cbs
	c.cbs = nil
	close(c.ch)
	c.mu.Unlock()
	for _, fn := range cbs {
		fn(err)
	}
}

// Done returns a channel closed when the operation has resolved.
func (c *Completion) Done() <-chan struct{} { return c.ch }

// Wait blocks until the operation resolves and returns its error.
func (c *Completion) Wait() error {
	<-c.ch
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Poll reports, without blocking, whether the operation has resolved, and
// its error if so. Callers on a hot path use it to take the synchronous
// fast path (apply state transitions inline) when the engine completed the
// write eagerly, falling back to OnDone otherwise.
func (c *Completion) Poll() (err error, done bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err, c.done
}

// OnDone registers fn to run when the operation resolves. Callbacks
// registered before resolution run in registration order on the resolving
// goroutine (the WAL's completion dispatcher); a callback registered after
// resolution runs on a fresh goroutine. fn therefore NEVER runs
// synchronously on the registering goroutine, so it may take locks the
// registrar holds.
func (c *Completion) OnDone(fn func(error)) {
	c.mu.Lock()
	if !c.done {
		c.cbs = append(c.cbs, fn)
		c.mu.Unlock()
		return
	}
	err := c.err
	c.mu.Unlock()
	go fn(err)
}

// AsyncStable extends Stable with an asynchronous durability pipeline.
// PutAsync/AppendAsync issue the write and return immediately; the
// Completion resolves once the record is durable. Sync is a barrier: it
// returns once everything issued before it is durable.
//
// The WAL engine implements it natively with group commit (many concurrent
// writes, one fsync); every other engine is adapted by Async, which
// performs the operation synchronously and returns a resolved Completion —
// semantically identical, just without coalescing.
type AsyncStable interface {
	Stable
	// PutAsync issues an atomic cell replacement; the Completion resolves
	// when it is durable.
	PutAsync(key string, val []byte) *Completion
	// AppendAsync issues one log-record append; the Completion resolves
	// when it is durable.
	AppendAsync(key string, rec []byte) *Completion
	// DeleteAsync issues a cell/log removal; the Completion resolves when
	// it is durable. Batch GC (DiscardBelow) issues all its deletes this
	// way so they share group commits instead of paying one fsync each.
	DeleteAsync(key string) *Completion
	// Sync blocks until every previously issued write is durable.
	Sync() error
}

// Async adapts any Stable to AsyncStable. Engines with a native
// asynchronous pipeline (the WAL, or a wrapper over one) are returned
// unchanged; everything else gets the synchronous shim.
func Async(st Stable) AsyncStable {
	if as, ok := st.(AsyncStable); ok {
		return as
	}
	return syncShim{st}
}

// syncShim adapts a synchronous engine: the "async" operations block until
// the engine's own durability point (whatever it is) and resolve eagerly.
type syncShim struct{ Stable }

var _ AsyncStable = syncShim{}

func (s syncShim) PutAsync(key string, val []byte) *Completion {
	return completed(s.Put(key, val))
}

func (s syncShim) AppendAsync(key string, rec []byte) *Completion {
	return completed(s.Append(key, rec))
}

func (s syncShim) DeleteAsync(key string) *Completion {
	return completed(s.Delete(key))
}

func (s syncShim) Sync() error { return nil }
