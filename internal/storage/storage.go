// Package storage provides the stable-storage abstraction of the
// crash-recovery model (§2.1): "The primitives log and retrieve allow an up
// process to access its stable storage. When it crashes, a process
// definitively loses the content of its volatile memory; the content of a
// stable storage is not affected by crashes."
//
// Two engines are provided: Mem, a crash-faithful in-memory store used by
// the simulation harness (the harness holds it outside the process
// incarnation, so it survives crashes exactly as stable storage must), and
// File, a file-backed store with CRC-framed append logs for real
// deployments.
//
// The Accounted wrapper attributes every operation and byte to a layer
// (consensus, broadcast, node, ...) keyed by a key prefix. That accounting
// is how experiment E1 verifies the paper's central claim: the basic
// broadcast protocol performs zero log operations beyond those of the
// underlying Consensus (§4.3).
package storage

import "errors"

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("storage: closed")

// Stable is the stable-storage interface. Put models the paper's "log"
// primitive for a named cell (atomic overwrite); Get models "retrieve".
// Append/Records model an append-only log for incremental logging (§5.5).
//
// Implementations must be safe for concurrent use.
type Stable interface {
	// Put atomically replaces the value of cell key.
	Put(key string, val []byte) error
	// Get returns the value of cell key, and whether the cell exists.
	Get(key string) ([]byte, bool, error)
	// Append appends one record to the log named key.
	Append(key string, rec []byte) error
	// Records returns all records of the log named key, oldest first.
	Records(key string) ([][]byte, error)
	// Delete removes a cell or log. Deleting a missing key is a no-op.
	Delete(key string) error
	// List returns all existing keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
}

// Closer is implemented by engines that hold external resources.
type Closer interface {
	Close() error
}
