// Package storage provides the stable-storage abstraction of the
// crash-recovery model (§2.1): "The primitives log and retrieve allow an up
// process to access its stable storage. When it crashes, a process
// definitively loses the content of its volatile memory; the content of a
// stable storage is not affected by crashes."
//
// Three engines are provided: Mem, a crash-faithful in-memory store used
// by the simulation harness (the harness holds it outside the process
// incarnation, so it survives crashes exactly as stable storage must);
// File, a file-per-key store with CRC-framed append logs that fsyncs every
// record when opened with syncWrites; and WAL, a group-commit write-ahead
// log (one segmented append-only file, an in-memory index, torn-tail
// recovery) that coalesces all concurrent writes into one fsync.
//
// # Durability policy
//
// The paper's crash-recovery model (§2.1, §5.5) requires that logged state
// be durable before the process acts on it (sends the message the log
// protects, delivers the decision) — NOT one fsync per log call. That gap
// is the group-commit engine's opportunity:
//
//   - File with syncWrites: every Put/Append fsyncs before returning.
//     One fsync per record — maximal latency, the E15 baseline.
//   - WAL: a record is durable once the fsync covering its commit group
//     completes. A group closes when SyncEvery records are pending or the
//     oldest has waited MaxSyncDelay, whichever is first. Synchronous
//     Put/Append still block until that fsync, so the Stable contract
//     ("returned => durable") is identical to File's — concurrent callers
//     just share the fsync. The asynchronous API (AsyncStable: PutAsync /
//     AppendAsync returning a Completion, plus a Sync barrier) lets the
//     protocol hot path issue every persist of a pipelined round window
//     up front and act on each as its completion fires, amortizing one
//     fsync across the whole window.
//
// At every SyncEvery/MaxSyncDelay setting the guarantee after a crash is
// the same: the durable prefix contains exactly the operations whose
// completions resolved (or synchronous calls that returned), and a torn
// tail from a crash mid-group is discarded on recovery — safe because
// nothing ever acted on those records. The knobs only trade the latency
// of reaching the durability point against fsyncs per record.
//
// # Log lifecycle
//
// An append-only log accumulates dead records: overwritten cells, deleted
// keys, compacted protocol state (the checkpoint task of §5.2 deletes
// whole consensus rounds). Segment compaction reclaims them so a
// long-lived store's disk usage tracks its LIVE state, not its history:
//
//   - Triggers: background compaction runs on the WAL's committer when
//     on-disk bytes exceed WALOptions.CompactFactor times the live index
//     bytes and the CompactMinBytes floor (the trigger is evaluated after
//     each commit group, so an idle engine compacts on its next write or
//     an explicit Compact call). Compact() forces one cycle
//     synchronously; DiskBytes, LiveBytes and CompactCount expose the
//     footprint.
//   - Mechanism: the committer drains the write queue, snapshots the
//     index at exactly that stream position, rolls to a fresh segment,
//     and rewrites the snapshot into it — every cell as a put record,
//     every append-log as ONE atomic log-snapshot record (a torn or
//     missing snapshot frame leaves the pre-compaction log intact; a
//     delete-then-re-append encoding could lose acknowledged entries to
//     a partial replay). Writes enqueued during the cycle simply land
//     after the rewrite in the stream.
//   - Crash safety: old segments are unlinked only after the rewrite's
//     fsync, oldest first. A crash before the unlinks replays the old
//     stream plus an arbitrary (possibly torn) prefix of the rewrite —
//     idempotent over the state it describes; a crash mid-unlink leaves
//     a contiguous suffix of old segments, so no delete record is ever
//     separated from the earlier record it masks. Replay therefore
//     recovers the exact index at every crash point (the compaction
//     crash tests cut the rewrite at arbitrary byte offsets).
//
// The checkpoint floor bounds what compaction can reclaim: records stay
// live until the protocol's checkpoint deletes them, so a deployment
// without checkpointing keeps its whole consensus history live and
// compaction only reclaims overwritten cells. Bounded disk needs both
// tasks — §5.2's fold to bound the live state, compaction to bound the
// garbage (experiment E18 measures the two together).
//
// The Accounted wrapper attributes every operation and byte to a layer
// (consensus, broadcast, node, ...) keyed by a key prefix. That accounting
// is how experiment E1 verifies the paper's central claim: the basic
// broadcast protocol performs zero log operations beyond those of the
// underlying Consensus (§4.3). Accounted and Faulty forward the
// asynchronous API to the engine they wrap, so the fault-injection and
// accounting harnesses compose with the WAL unchanged.
package storage

import "errors"

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("storage: closed")

// Stable is the stable-storage interface. Put models the paper's "log"
// primitive for a named cell (atomic overwrite); Get models "retrieve".
// Append/Records model an append-only log for incremental logging (§5.5).
//
// Implementations must be safe for concurrent use.
type Stable interface {
	// Put atomically replaces the value of cell key.
	Put(key string, val []byte) error
	// Get returns the value of cell key, and whether the cell exists.
	Get(key string) ([]byte, bool, error)
	// Append appends one record to the log named key.
	Append(key string, rec []byte) error
	// Records returns all records of the log named key, oldest first.
	Records(key string) ([][]byte, error)
	// Delete removes a cell or log. Deleting a missing key is a no-op.
	Delete(key string) error
	// List returns all existing keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
}

// Closer is implemented by engines that hold external resources.
type Closer interface {
	Close() error
}
