package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// walOpts returns fast test options (tiny delay so tests don't sleep).
func walOpts() WALOptions {
	return WALOptions{SyncEvery: 8, MaxSyncDelay: 200 * time.Microsecond}
}

func TestWALSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put("cell", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("log", []byte("r1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("log", []byte("r2")); err != nil {
		t.Fatal(err)
	}
	if err := w.Put("cell", []byte("overwritten")); err != nil {
		t.Fatal(err)
	}
	if err := w.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got, ok, _ := w2.Get("cell")
	if !ok || string(got) != "overwritten" {
		t.Fatalf("cell after reopen: %q %v", got, ok)
	}
	recs, _ := w2.Records("log")
	if len(recs) != 2 || string(recs[0]) != "r1" || string(recs[1]) != "r2" {
		t.Fatalf("log after reopen: %v", recs)
	}
}

func TestWALDeleteIsDurable(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	w.Put("k", []byte("v"))
	w.Append("k", []byte("r"))
	if err := w.Delete("k"); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, ok, _ := w2.Get("k"); ok {
		t.Fatal("cell survived a durable delete")
	}
	if recs, _ := w2.Records("k"); len(recs) != 0 {
		t.Fatal("log survived a durable delete")
	}
}

// TestWALTornTailMidGroupCommit simulates a crash in the middle of a group
// commit: the tail of the segment holds a partial frame (and garbage). On
// reopen the torn tail must be discarded, the durable prefix replayed, and
// new writes must land cleanly after the truncation point.
func TestWALTornTailMidGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append("log", []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Put("cell", []byte("stable"))
	w.Close()

	// A group commit was cut short by the crash: a full frame header that
	// claims more payload than was written, then nothing.
	path := filepath.Join(dir, segName(1))
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	fh.Write([]byte{200, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3})
	fh.Close()

	w2, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	recs, _ := w2.Records("log")
	if len(recs) != 5 || string(recs[4]) != "r4" {
		t.Fatalf("durable prefix lost: %v", recs)
	}
	if got, ok, _ := w2.Get("cell"); !ok || string(got) != "stable" {
		t.Fatalf("cell lost: %q %v", got, ok)
	}
	// The tail was truncated, so post-recovery writes are readable after
	// yet another reopen.
	if err := w2.Append("log", []byte("after")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	recs, _ = w3.Records("log")
	if len(recs) != 6 || string(recs[5]) != "after" {
		t.Fatalf("post-recovery append lost: %v", recs)
	}
}

// TestWALTornFrameMidStreamIsCorruption: a torn frame that is NOT the tail
// (more segments follow) cannot be a crash artifact and must fail the open.
func TestWALTornFrameMidStreamIsCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SyncEvery: 1, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// SegmentBytes 1 rolls on every group: at least two segments.
	w.Put("a", []byte("1"))
	w.Put("b", []byte("2"))
	w.Close()

	// Corrupt the FIRST segment's tail.
	path := filepath.Join(dir, segName(1))
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	fh.Write([]byte{99, 0, 0, 0, 1})
	fh.Close()

	if _, err := OpenWAL(dir, walOpts()); err == nil {
		t.Fatal("mid-stream torn frame accepted as a tail")
	}
}

func TestWALSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SyncEvery: 1, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := 0; i < 20; i++ {
		payload[0] = byte(i)
		if err := w.Append("log", payload); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	entries, _ := os.ReadDir(dir)
	if len(entries) < 3 {
		t.Fatalf("expected several segments, got %d", len(entries))
	}
	w2, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recs, _ := w2.Records("log")
	if len(recs) != 20 {
		t.Fatalf("cross-segment replay lost records: %d", len(recs))
	}
	for i, r := range recs {
		if r[0] != byte(i) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

// TestWALGroupCommitCoalesces drives many concurrent synchronous writers
// and checks they shared fsyncs: the engine's whole point.
func TestWALGroupCommitCoalesces(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{SyncEvery: 16, MaxSyncDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const writers, per = 16, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Append(fmt.Sprintf("log/%d", g), []byte("rec")); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	ops := int64(writers * per)
	if w.RecordCount() != ops {
		t.Fatalf("records = %d, want %d", w.RecordCount(), ops)
	}
	if s := w.SyncCount(); s >= ops/2 {
		t.Fatalf("group commit did not coalesce: %d fsyncs for %d records", s, ops)
	}
	t.Logf("%d records, %d fsyncs, %d groups", ops, w.SyncCount(), w.GroupCount())
}

// TestWALAsyncCompletionOrderAndBarrier checks the async pipeline: issued
// writes resolve, in order, and Sync() is a full barrier.
func TestWALAsyncCompletionOrderAndBarrier(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var mu sync.Mutex
	var order []int
	var comps []*Completion
	for i := 0; i < 50; i++ {
		c := w.AppendAsync("log", []byte{byte(i)})
		i := i
		c.OnDone(func(err error) {
			if err != nil {
				t.Errorf("completion %d: %v", i, err)
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
		comps = append(comps, c)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, c := range comps {
		if err, done := c.Poll(); !done || err != nil {
			t.Fatalf("completion %d not resolved after barrier: done=%v err=%v", i, done, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 50 {
		t.Fatalf("callbacks: %d of 50", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("callback order broken at %d: %v", i, order[:i+1])
		}
	}
}

// TestWALFaultyInjection exercises the ISSUE's composition: a Faulty
// trigger on top of the WAL fails log operations at the trigger point,
// async and sync alike, while the durable prefix stays readable on reopen.
func TestWALFaultyInjection(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(w)
	f.FailAfter(3, nil)
	if err := f.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := f.AppendAsync("log", []byte("2")).Wait(); err != nil {
		t.Fatal(err)
	}
	if err := f.PutAsync("b", []byte("3")).Wait(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("want injected crash, got %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("sync on tripped store: %v", err)
	}
	f.Disarm()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if v, ok, _ := w2.Get("a"); !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatal("pre-trip put lost")
	}
	if _, ok, _ := w2.Get("b"); ok {
		t.Fatal("injected-crash write became durable")
	}
}

func TestWALClosedOps(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), walOpts())
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if err := w.AppendAsync("k", nil).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if _, _, err := w.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestAsyncShimAdaptsSyncEngines: the shim gives every engine the async
// API with eager completions, and Async is the identity on AsyncStables.
func TestAsyncShimAdaptsSyncEngines(t *testing.T) {
	m := NewMem()
	as := Async(m)
	c := as.PutAsync("k", []byte("v"))
	if err, done := c.Poll(); !done || err != nil {
		t.Fatalf("shim completion not eager: %v %v", err, done)
	}
	ran := make(chan struct{})
	c.OnDone(func(err error) { close(ran) })
	select {
	case <-ran:
	case <-time.After(time.Second):
		t.Fatal("OnDone after resolution never ran")
	}
	if err := as.Sync(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := m.Get("k"); !ok || string(v) != "v" {
		t.Fatal("shim write lost")
	}

	w, err := OpenWAL(t.TempDir(), walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if Async(w) != AsyncStable(w) {
		t.Fatal("Async should be the identity on a native AsyncStable")
	}
	// Wrappers forward asyncness.
	if _, ok := any(NewAccounted(w)).(AsyncStable); !ok {
		t.Fatal("Accounted lost the async API")
	}
	if _, ok := any(NewFaulty(w)).(AsyncStable); !ok {
		t.Fatal("Faulty lost the async API")
	}
}
