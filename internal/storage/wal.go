package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// WAL is the group-commit write-ahead-log engine: a single segmented
// append-only file per store (not per key), CRC-framed records, an
// in-memory index of cells and logs, and a committer that coalesces all
// concurrent Put/Append calls into one write + one fsync.
//
// # Durability policy
//
// Every mutation (Put, Append, Delete) becomes one framed record in the
// current segment. Records are made durable in groups: the committer
// flushes + fsyncs when SyncEvery records are pending or when the oldest
// pending record has waited MaxSyncDelay, whichever comes first (a Sync
// barrier or Close flushes immediately). A synchronous Put/Append blocks
// until the fsync that covers its record, so the Stable contract
// ("returned => durable") is unchanged — concurrent callers simply share
// one fsync, which is the classic group-commit discipline. PutAsync /
// AppendAsync return a Completion that resolves at the same point,
// letting a caller issue many writes and pay one fsync for the lot.
//
// Reads (Get/Records/List) are served from the in-memory index and
// therefore see issued-but-not-yet-durable writes of this same WAL
// instance (read-your-writes). After a crash, reopening replays only the
// durable prefix: a torn tail (partial group at the moment of the crash)
// is detected by the CRC framing and truncated, exactly the recovery
// discipline of §5.5 — which is safe because no operation covering those
// records ever completed, so no process acted on them.
//
// # Compaction
//
// Deleted and overwritten records stay on disk until segment compaction
// reclaims them. Compaction is incremental — one segment per pass: with
// CompactFactor > 0 (or an explicit Compact call) the committer picks
// the oldest segment, rescues the current state of every still-live key
// it touches into the tail (cells as fresh put records, logs as one
// atomic log-snapshot record each), fsyncs, and unlinks just that
// segment. A pass therefore costs one segment plus the live state it
// shadows, never a whole-log rewrite; the background trigger keeps
// firing a pass per commit group until the dead-space ratio is back
// under CompactFactor. The rescue rides the same group-commit pipeline
// position as the records it replaces: the queue is drained first, the
// snapshot is taken at exactly that stream position, and the victim is
// unlinked only after the rescue's fsync — so a crash at any point
// replays to the same index (see the package doc's "Log lifecycle"
// section for the crash argument).
//
// # Failure model
//
// A write or fsync error poisons the engine: the failed group and every
// later operation resolve with the error. This mirrors a dying
// incarnation — the caller must crash and recover from the durable
// prefix.
type WAL struct {
	dir  string
	opts WALOptions

	mu         sync.Mutex
	cells      map[string][]byte
	logs       map[string][][]byte
	queue      []*walOp
	oldest     time.Time // arrival of queue[0]
	urgent     bool      // a barrier (or Close) demands an immediate flush
	closed     bool
	failed     error         // first IO error; poisons all later operations
	liveBytes  int64         // approximate record bytes of the live index
	compactReq []*Completion // explicit Compact callers awaiting a cycle

	// compactHook, when set (tests only, under mu), is called from the
	// committer at named stages of a compaction cycle to freeze crash
	// points.
	compactHook func(stage string)

	// Committer-owned (no lock needed: single goroutine).
	seg     *os.File
	segSeq  int
	segSize int64

	kick    chan struct{} // wakes the committer (capacity 1)
	closeCh chan struct{}
	// notify carries flushed groups, in order, to the dispatcher that
	// resolves their completions — off the committer goroutine so a slow
	// completion callback cannot stall the next fsync.
	notify       chan []*walOp
	commitDone   chan struct{}
	displDone    chan struct{}
	syncCount    atomic.Int64
	groupCount   atomic.Int64
	recordCount  atomic.Int64
	diskBytes    atomic.Int64
	compactCount atomic.Int64

	// obsState is the fsync-latency instrumentation (SetObs); atomic so
	// wiring can land while the committer is already flushing.
	obsState atomic.Pointer[storeObs]
}

// WALOptions tunes the group-commit policy.
type WALOptions struct {
	// SyncEvery is the pending-record count that forces a flush (size
	// trigger; default 64).
	SyncEvery int
	// MaxSyncDelay bounds how long a record may wait for its group (time
	// trigger). The default, 0, is natural batching: the committer
	// flushes as soon as it is free, so each fsync coalesces exactly
	// what queued while the previous one ran. A positive delay holds
	// groups open longer — fewer, larger fsyncs at the cost of commit
	// latency (worthwhile on slow disks).
	MaxSyncDelay time.Duration
	// SegmentBytes is the segment-roll threshold (default 64 MiB).
	SegmentBytes int64
	// NoSync skips fsync entirely (throughput ceiling / tests). Records
	// are still written; durability is whatever the OS page cache gives.
	NoSync bool
	// CompactFactor enables background segment compaction: once the
	// on-disk bytes exceed CompactFactor times the live index bytes (and
	// CompactMinBytes), the committer runs one incremental pass per
	// commit group — rescuing the oldest segment's live keys into the
	// tail and unlinking it — until the ratio recovers, bounding
	// steady-state disk usage at roughly CompactFactor x live state
	// without ever paying a whole-log rewrite. 0 disables compaction
	// (records are reclaimed only by an explicit Compact call); values
	// below 1.5 are clamped to 1.5 — a lower factor would re-trigger
	// immediately after every pass.
	CompactFactor float64
	// CompactMinBytes is the disk-size floor below which background
	// compaction never triggers (default 1 MiB): rewriting a tiny log
	// costs more than the bytes it reclaims.
	CompactMinBytes int64
}

func (o *WALOptions) fill() {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 64
	}
	if o.MaxSyncDelay < 0 {
		o.MaxSyncDelay = 0
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.CompactFactor > 0 && o.CompactFactor < 1.5 {
		o.CompactFactor = 1.5
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = 1 << 20
	}
}

var (
	_ Stable      = (*WAL)(nil)
	_ AsyncStable = (*WAL)(nil)
	_ Closer      = (*WAL)(nil)
)

// walOp is one queued mutation: the framed record plus its completion.
// A barrier has a nil buf.
type walOp struct {
	buf []byte
	c   *Completion
	err error
}

// Record ops.
const (
	walPut byte = iota + 1
	walAppend
	walDelete
	// walLogSnap atomically replaces a whole append-log with the entries
	// carried in its value — the compactor's rewrite form of a log. One
	// frame per log keeps the replacement crash-atomic: a torn or missing
	// snapshot record leaves the pre-compaction log intact, never a
	// truncated one.
	walLogSnap
)

// encodeLogSnap packs a log's entries as a walLogSnap value:
// [count u32] then per entry [len u32][bytes].
func encodeLogSnap(entries [][]byte) []byte {
	n := 4
	for _, e := range entries {
		n += 4 + len(e)
	}
	b := make([]byte, 4, n)
	binary.LittleEndian.PutUint32(b, uint32(len(entries)))
	for _, e := range entries {
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(e)))
		b = append(b, l[:]...)
		b = append(b, e...)
	}
	return b
}

// decodeLogSnap unpacks a walLogSnap value; nil, false on malformed input.
func decodeLogSnap(b []byte) ([][]byte, bool) {
	if len(b) < 4 {
		return nil, false
	}
	count := binary.LittleEndian.Uint32(b)
	b = b[4:]
	entries := make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 4 {
			return nil, false
		}
		l := binary.LittleEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < l {
			return nil, false
		}
		cp := make([]byte, l)
		copy(cp, b[:l])
		entries = append(entries, cp)
		b = b[l:]
	}
	return entries, true
}

func encodeWALRec(op byte, key string, val []byte) []byte {
	b := make([]byte, 1+4+len(key)+len(val))
	b[0] = op
	binary.LittleEndian.PutUint32(b[1:5], uint32(len(key)))
	copy(b[5:], key)
	copy(b[5+len(key):], val)
	return b
}

func decodeWALRec(b []byte) (op byte, key string, val []byte, ok bool) {
	if len(b) < 5 {
		return 0, "", nil, false
	}
	n := binary.LittleEndian.Uint32(b[1:5])
	if uint32(len(b)-5) < n {
		return 0, "", nil, false
	}
	return b[0], string(b[5 : 5+n]), b[5+n:], true
}

func segName(seq int) string { return fmt.Sprintf("wal-%08d.log", seq) }

// OpenWAL opens (creating if needed) a WAL store rooted at dir and replays
// the durable record stream into the in-memory index. A torn frame in the
// last segment truncates the segment there (anything at or past the first
// torn frame of the tail segment was never covered by a completed fsync —
// an fsync persists the whole file — so no operation over it ever
// completed); a torn frame in an earlier segment is corruption and fails
// the open.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: wal dir: %w", err)
	}
	w := &WAL{
		dir:        dir,
		opts:       opts,
		cells:      make(map[string][]byte),
		logs:       make(map[string][][]byte),
		kick:       make(chan struct{}, 1),
		closeCh:    make(chan struct{}),
		notify:     make(chan []*walOp, 128),
		commitDone: make(chan struct{}),
		displDone:  make(chan struct{}),
	}
	if err := w.replay(); err != nil {
		return nil, err
	}
	go w.commitLoop()
	go w.dispatchLoop()
	return w, nil
}

// replay rebuilds the index from the segments and opens the tail segment
// for appending.
func (w *WAL) replay() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("storage: wal list: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(name, "wal-%08d.log", &seq); err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)

	for i, seq := range seqs {
		path := filepath.Join(w.dir, segName(seq))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("storage: wal read %s: %w", path, err)
		}
		b := data
		kept := len(data)
		for len(b) > 0 {
			rec, rest, ok := unframe(b)
			if !ok {
				// Torn frame: fine at the very tail of the last
				// segment (crash mid-group-commit; nothing covering
				// these bytes ever completed), corruption anywhere
				// else.
				if i != len(seqs)-1 {
					return fmt.Errorf("storage: wal segment %s: torn frame mid-stream", path)
				}
				off := int64(len(data) - len(b))
				if err := os.Truncate(path, off); err != nil {
					return fmt.Errorf("storage: wal truncate torn tail: %w", err)
				}
				kept = int(off)
				break
			}
			w.applyRec(rec)
			b = rest
		}
		w.diskBytes.Add(int64(kept))
	}

	w.segSeq = 1
	if n := len(seqs); n > 0 {
		w.segSeq = seqs[n-1]
	}
	path := filepath.Join(w.dir, segName(w.segSeq))
	seg, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: wal open segment: %w", err)
	}
	st, err := seg.Stat()
	if err != nil {
		seg.Close()
		return fmt.Errorf("storage: wal stat segment: %w", err)
	}
	// Make the segment's directory entry durable before any record in it
	// is acknowledged: an fsynced file that the directory forgot on power
	// loss would silently drop acknowledged records.
	if err := syncDirEntry(w.dir); err != nil {
		seg.Close()
		return err
	}
	w.seg = seg
	w.segSize = st.Size()
	return nil
}

// syncDirEntry fsyncs a directory so freshly created file entries survive
// power loss.
func syncDirEntry(dir string) error {
	dh, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: wal open dir: %w", err)
	}
	defer dh.Close()
	if err := dh.Sync(); err != nil {
		return fmt.Errorf("storage: wal fsync dir: %w", err)
	}
	return nil
}

// applyRec replays one durable record into the index.
func (w *WAL) applyRec(rec []byte) {
	op, key, val, ok := decodeWALRec(rec)
	if !ok {
		return // framed but malformed: skip (forward compatibility)
	}
	switch op {
	case walPut:
		cp := make([]byte, len(val))
		copy(cp, val)
		w.applyPut(key, cp)
	case walAppend:
		cp := make([]byte, len(val))
		copy(cp, val)
		w.applyAppend(key, cp)
	case walDelete:
		w.applyDelete(key)
	case walLogSnap:
		if entries, ok := decodeLogSnap(val); ok {
			w.applyLogSnap(key, entries)
		}
	}
}

// recLiveBytes approximates the on-disk footprint of one record (frame +
// header + key + value); the live-bytes counter driving the compaction
// trigger sums it over the index.
func recLiveBytes(key string, valLen int) int64 {
	return int64(13 + len(key) + valLen)
}

// applyPut installs a cell value (already copied). Callers hold w.mu or
// run single-threaded (replay, committer snapshot application).
func (w *WAL) applyPut(key string, cp []byte) {
	if old, ok := w.cells[key]; ok {
		w.liveBytes -= recLiveBytes(key, len(old))
	}
	w.liveBytes += recLiveBytes(key, len(cp))
	w.cells[key] = cp
}

// applyAppend appends one (already copied) log entry.
func (w *WAL) applyAppend(key string, cp []byte) {
	w.liveBytes += recLiveBytes(key, len(cp))
	w.logs[key] = append(w.logs[key], cp)
}

// applyDelete removes a cell or log.
func (w *WAL) applyDelete(key string) {
	if old, ok := w.cells[key]; ok {
		w.liveBytes -= recLiveBytes(key, len(old))
		delete(w.cells, key)
	}
	if recs, ok := w.logs[key]; ok {
		for _, r := range recs {
			w.liveBytes -= recLiveBytes(key, len(r))
		}
		delete(w.logs, key)
	}
}

// applyLogSnap replaces a whole log with the snapshot's entries.
func (w *WAL) applyLogSnap(key string, entries [][]byte) {
	if recs, ok := w.logs[key]; ok {
		for _, r := range recs {
			w.liveBytes -= recLiveBytes(key, len(r))
		}
	}
	for _, e := range entries {
		w.liveBytes += recLiveBytes(key, len(e))
	}
	if len(entries) == 0 {
		delete(w.logs, key)
		return
	}
	w.logs[key] = entries
}

// enqueueLocked queues one framed record. w.mu held.
func (w *WAL) enqueueLocked(buf []byte) *Completion {
	op := &walOp{buf: buf, c: newCompletion()}
	if len(w.queue) == 0 {
		w.oldest = time.Now()
	}
	w.queue = append(w.queue, op)
	return op.c
}

func (w *WAL) wakeCommitter() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// PutAsync implements AsyncStable: the index is updated immediately
// (read-your-writes), durability resolves with the group's fsync.
func (w *WAL) PutAsync(key string, val []byte) *Completion {
	w.mu.Lock()
	if c, bad := w.unusableLocked(); bad {
		w.mu.Unlock()
		return c
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	w.applyPut(key, cp)
	c := w.enqueueLocked(frame(encodeWALRec(walPut, key, val)))
	w.mu.Unlock()
	w.wakeCommitter()
	return c
}

// AppendAsync implements AsyncStable.
func (w *WAL) AppendAsync(key string, rec []byte) *Completion {
	w.mu.Lock()
	if c, bad := w.unusableLocked(); bad {
		w.mu.Unlock()
		return c
	}
	cp := make([]byte, len(rec))
	copy(cp, rec)
	w.applyAppend(key, cp)
	c := w.enqueueLocked(frame(encodeWALRec(walAppend, key, rec)))
	w.mu.Unlock()
	w.wakeCommitter()
	return c
}

// unusableLocked returns a resolved error completion when the engine can
// no longer accept writes. w.mu held.
func (w *WAL) unusableLocked() (*Completion, bool) {
	if w.closed {
		return completed(ErrClosed), true
	}
	if w.failed != nil {
		return completed(w.failed), true
	}
	return nil, false
}

// Put implements Stable: PutAsync + wait, so concurrent synchronous
// callers share one fsync.
func (w *WAL) Put(key string, val []byte) error {
	return w.PutAsync(key, val).Wait()
}

// Append implements Stable.
func (w *WAL) Append(key string, rec []byte) error {
	return w.AppendAsync(key, rec).Wait()
}

// DeleteAsync implements AsyncStable. Deletions are logged records too, so
// they survive recovery.
func (w *WAL) DeleteAsync(key string) *Completion {
	w.mu.Lock()
	if c, bad := w.unusableLocked(); bad {
		w.mu.Unlock()
		return c
	}
	w.applyDelete(key)
	c := w.enqueueLocked(frame(encodeWALRec(walDelete, key, nil)))
	w.mu.Unlock()
	w.wakeCommitter()
	return c
}

// Delete implements Stable.
func (w *WAL) Delete(key string) error {
	return w.DeleteAsync(key).Wait()
}

// Sync implements AsyncStable: a barrier that returns once every write
// issued before it is durable.
func (w *WAL) Sync() error {
	w.mu.Lock()
	if c, bad := w.unusableLocked(); bad {
		w.mu.Unlock()
		return c.Wait()
	}
	c := w.enqueueLocked(nil)
	w.urgent = true
	w.mu.Unlock()
	w.wakeCommitter()
	return c.Wait()
}

// Get implements Stable (from the index).
func (w *WAL) Get(key string) ([]byte, bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, false, ErrClosed
	}
	v, ok := w.cells[key]
	if !ok {
		return nil, false, nil
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true, nil
}

// Records implements Stable (from the index).
func (w *WAL) Records(key string) ([][]byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrClosed
	}
	recs := w.logs[key]
	out := make([][]byte, len(recs))
	for i, r := range recs {
		cp := make([]byte, len(r))
		copy(cp, r)
		out[i] = cp
	}
	return out, nil
}

// List implements Stable (from the index).
func (w *WAL) List(prefix string) ([]string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, ErrClosed
	}
	var keys []string
	for k := range w.cells {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	for k := range w.logs {
		if _, dup := w.cells[k]; dup {
			continue
		}
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Close implements Closer: flushes the queue, stops the pipeline, closes
// the segment. Pending completions resolve before Close returns.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.closeCh)
	w.wakeCommitter()
	<-w.commitDone
	<-w.displDone
	err := w.seg.Close()
	w.seg = nil
	return err
}

// SetGroupCommit adjusts the durability policy at runtime (the
// abcast.ProtocolOptions SyncEvery/MaxSyncDelay knobs route here).
func (w *WAL) SetGroupCommit(syncEvery int, maxSyncDelay time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if syncEvery > 0 {
		w.opts.SyncEvery = syncEvery
	}
	if maxSyncDelay >= 0 {
		w.opts.MaxSyncDelay = maxSyncDelay
	}
}

// GroupCommit returns the live durability policy (the values SetGroupCommit
// last applied, or the construction-time defaults).
func (w *WAL) GroupCommit() (syncEvery int, maxSyncDelay time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.opts.SyncEvery, w.opts.MaxSyncDelay
}

// Compact forces one incremental compaction pass: the pending queue is
// flushed, the still-live keys of the oldest segment are rescued into
// the tail (group-committed: the rescue's fsync completes first), and
// that one segment is unlinked. It returns once the pass is durable.
// One call reclaims one segment; call it repeatedly — or rely on
// background compaction (WALOptions.CompactFactor), which runs the same
// pass automatically whenever dead records outgrow the live state —
// to converge on a fully compacted log.
func (w *WAL) Compact() error {
	w.mu.Lock()
	if c, bad := w.unusableLocked(); bad {
		w.mu.Unlock()
		return c.Wait()
	}
	c := newCompletion()
	w.compactReq = append(w.compactReq, c)
	w.urgent = true
	w.mu.Unlock()
	w.wakeCommitter()
	return c.Wait()
}

// SyncCount returns the number of fsyncs issued (observability; E15
// reports fsyncs/msg to show the amortization).
func (w *WAL) SyncCount() int64 { return w.syncCount.Load() }

// CompactCount returns the number of completed compaction cycles.
func (w *WAL) CompactCount() int64 { return w.compactCount.Load() }

// DiskBytes returns the total bytes across all live segments
// (observability; the E18 experiment and the compaction regression guard
// read it).
func (w *WAL) DiskBytes() int64 { return w.diskBytes.Load() }

// LiveBytes returns the approximate record bytes of the live index — what
// a compaction cycle would rewrite. DiskBytes/LiveBytes is the dead-space
// ratio the CompactFactor trigger watches.
func (w *WAL) LiveBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.liveBytes
}

// GroupCount returns the number of commit groups flushed.
func (w *WAL) GroupCount() int64 { return w.groupCount.Load() }

// RecordCount returns the number of records written.
func (w *WAL) RecordCount() int64 { return w.recordCount.Load() }

// commitLoop is the group-commit engine: it waits for work, optionally
// holds the group open to let it grow (size/time triggers, mirroring the
// protocol's adaptive batching), then writes the whole group with one
// write and one fsync and hands it to the dispatcher. Compaction runs on
// this goroutine too: the queue is drained and the index snapshotted in
// one critical section, so the rewrite sits at exactly its stream
// position.
func (w *WAL) commitLoop() {
	defer close(w.commitDone)
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && len(w.compactReq) == 0 && !w.closed {
			w.mu.Unlock()
			select {
			case <-w.kick:
			case <-w.closeCh:
			}
			w.mu.Lock()
		}
		if len(w.queue) == 0 && w.closed {
			reqs := w.compactReq
			w.compactReq = nil
			w.mu.Unlock()
			for _, c := range reqs {
				c.complete(ErrClosed)
			}
			close(w.notify)
			return
		}
		// Hold the group open under light load: flush on SyncEvery
		// pending records, the oldest record aging past MaxSyncDelay, a
		// barrier, or shutdown — whichever comes first.
		if !w.closed && !w.urgent && w.opts.MaxSyncDelay > 0 &&
			len(w.queue) > 0 && len(w.queue) < w.opts.SyncEvery {
			wait := w.opts.MaxSyncDelay - time.Since(w.oldest)
			if wait > 0 {
				w.mu.Unlock()
				timer := time.NewTimer(wait)
				select {
				case <-w.kick:
				case <-w.closeCh:
				case <-timer.C:
				}
				timer.Stop()
				continue
			}
		}
		batch := w.queue
		w.queue = nil
		w.urgent = false
		err := w.failed
		reqs := w.compactReq
		w.compactReq = nil
		// The compaction snapshot is taken in the same critical section
		// that drains the queue: the snapshot's logical position in the
		// record stream is exactly "after batch, before anything enqueued
		// later", which is where the rewrite will be written.
		var snap *compactSnap
		if err == nil && !w.closed && (len(reqs) > 0 || w.compactDueLocked()) {
			snap = w.snapshotLocked()
		}
		w.mu.Unlock()

		if err == nil {
			err = w.writeGroup(batch)
			if err != nil {
				w.poison(err)
			}
		}
		for _, op := range batch {
			op.err = err
		}
		w.notify <- batch

		if snap != nil && err == nil {
			if cerr := w.compact(snap); cerr != nil {
				w.poison(cerr)
				err = cerr
			}
		}
		if len(reqs) > 0 {
			cerr := err
			if cerr == nil && snap == nil {
				cerr = ErrClosed // Close raced the request; the cycle never ran
			}
			for _, c := range reqs {
				c.complete(cerr)
			}
		}
	}
}

// poison records the first IO error; every later operation resolves with
// it.
func (w *WAL) poison(err error) {
	w.mu.Lock()
	if w.failed == nil {
		w.failed = err
	}
	w.mu.Unlock()
}

// compactSnap is the live index at one record-stream position, pending
// rewrite.
type compactSnap struct {
	cells map[string][]byte
	logs  map[string][][]byte
	hook  func(stage string)
}

// compactDueLocked evaluates the background trigger. w.mu held.
func (w *WAL) compactDueLocked() bool {
	if w.opts.CompactFactor <= 0 {
		return false
	}
	disk := w.diskBytes.Load()
	return disk > w.opts.CompactMinBytes &&
		float64(disk) > w.opts.CompactFactor*float64(w.liveBytes)
}

// snapshotLocked shallow-copies the index (values and log entries are
// immutable once installed, so copying the map headers suffices). w.mu
// held.
func (w *WAL) snapshotLocked() *compactSnap {
	cs := &compactSnap{
		cells: make(map[string][]byte, len(w.cells)),
		logs:  make(map[string][][]byte, len(w.logs)),
		hook:  w.compactHook,
	}
	for k, v := range w.cells {
		cs.cells[k] = v
	}
	for k, recs := range w.logs {
		// Clamp the capacity so a concurrent append to the live log
		// allocates a new backing array instead of sharing this one.
		cs.logs[k] = recs[:len(recs):len(recs)]
	}
	return cs
}

// oldestSegment returns the lowest segment sequence present on disk.
func (w *WAL) oldestSegment() (int, bool, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return 0, false, fmt.Errorf("storage: wal compact list: %w", err)
	}
	oldest, found := 0, false
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &seq); err == nil {
			if !found || seq < oldest {
				oldest, found = seq, true
			}
		}
	}
	return oldest, found, nil
}

// victimKeys scans one sealed segment and returns the set of keys its
// records touch, plus the segment's size. The segment is sealed (never
// the write target), so every frame is complete — a torn frame here is
// corruption, not a crash artifact.
func (w *WAL) victimKeys(path string) (map[string]struct{}, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: wal compact read: %w", err)
	}
	keys := make(map[string]struct{})
	b := data
	for len(b) > 0 {
		rec, rest, ok := unframe(b)
		if !ok {
			return nil, 0, fmt.Errorf("storage: wal compact: torn frame in sealed segment %s", path)
		}
		if _, key, _, ok := decodeWALRec(rec); ok {
			keys[key] = struct{}{}
		}
		b = rest
	}
	return keys, int64(len(data)), nil
}

// compact performs ONE incremental compaction pass on the committer
// goroutine: pick the oldest segment on disk as the victim, rescue the
// current state of every still-live key it touches into the active tail
// (cells as put records, logs as atomic log-snapshot records), fsync,
// then unlink just that one segment. The pass cost is bounded by one
// segment plus the live state it shadows — not by total log size, which
// is what the old whole-log rewrite paid. Repeated passes (one per
// commit-loop iteration while the CompactFactor trigger stays hot, or
// one per explicit Compact call) converge on a fully compacted log.
//
// Correctness: the victim is the oldest segment, so its records sit at
// the bottom of the replay stream — every key it touches is either dead
// (masked by a later record; dropping it changes nothing) or rescued as
// a put / log-snapshot appended at the very top, which replays to
// exactly the current state no matter what the intervening segments
// say. A log-snapshot replaces its log atomically, so middle-segment
// appends beneath it cannot double-apply. Crash safety: until the
// unlink, replay sees the victim plus (a possibly torn suffix of) the
// rescue records, which are idempotent over the state they describe;
// after the fsync the rescue fully substitutes for the victim. When the
// victim IS the active tail (a lone segment full of dead bytes), it is
// rolled first so the frozen file can be rescued and unlinked — without
// that, a single-segment log could never shrink.
func (w *WAL) compact(snap *compactSnap) error {
	victim, found, err := w.oldestSegment()
	if err != nil {
		return err
	}
	if !found {
		return nil
	}
	if victim == w.segSeq {
		if err := w.rollSegment(); err != nil {
			return err
		}
	}
	victimPath := filepath.Join(w.dir, segName(victim))
	touched, victimSize, err := w.victimKeys(victimPath)
	if err != nil {
		return err
	}
	// "begin": the victim is chosen and the tail is about to grow rescue
	// records; crash tests record the tail's durable size here.
	if snap.hook != nil {
		snap.hook("begin")
	}

	keys := make([]string, 0, len(touched))
	for k := range touched {
		if _, live := snap.cells[k]; live {
			keys = append(keys, k)
			continue
		}
		if len(snap.logs[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var rescued int64
	var buf []byte
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := w.seg.Write(buf); err != nil {
			return fmt.Errorf("storage: wal compact write: %w", err)
		}
		w.segSize += int64(len(buf))
		rescued += int64(len(buf))
		buf = buf[:0]
		return nil
	}
	for _, k := range keys {
		if v, ok := snap.cells[k]; ok {
			buf = append(buf, frame(encodeWALRec(walPut, k, v))...)
		}
		if entries := snap.logs[k]; len(entries) > 0 {
			buf = append(buf, frame(encodeWALRec(walLogSnap, k, encodeLogSnap(entries)))...)
		}
		if len(buf) >= 1<<20 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	// "rewrite": the rescue records are written but not yet durable — a
	// crash here leaves an arbitrary suffix of them torn off the tail.
	if snap.hook != nil {
		snap.hook("rewrite")
	}
	if !w.opts.NoSync {
		if err := w.seg.Sync(); err != nil {
			return fmt.Errorf("storage: wal compact fsync: %w", err)
		}
		w.syncCount.Add(1)
	}
	if snap.hook != nil {
		snap.hook("unlink")
	}

	// The rescue is durable: the victim is garbage. It is the oldest
	// segment, so removing it keeps the survivors a contiguous suffix.
	if err := os.Remove(victimPath); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: wal compact unlink: %w", err)
	}
	// Make the unlink durable: a power loss that resurrected the victim
	// is harmless for correctness (its records are masked from above) but
	// would skew the disk accounting on replay.
	if err := syncDirEntry(w.dir); err != nil {
		return err
	}
	w.diskBytes.Add(rescued - victimSize)
	w.compactCount.Add(1)
	if st := w.obsState.Load(); st != nil {
		st.plane.Flight().Event(obs.EvCompaction, 0, uint64(w.compactCount.Load()),
			rescued, victimSize, "segment reclaimed")
	}
	return nil
}

// writeGroup writes one group to the current segment (rolling it first if
// the group would overflow) and fsyncs once. Committer goroutine only.
func (w *WAL) writeGroup(batch []*walOp) error {
	var n, recs int
	for _, op := range batch {
		if op.buf != nil {
			n += len(op.buf)
			recs++
		}
	}
	if recs == 0 {
		return nil // pure barrier: all prior groups already synced
	}
	if w.segSize > 0 && w.segSize+int64(n) > w.opts.SegmentBytes {
		if err := w.rollSegment(); err != nil {
			return err
		}
	}
	buf := make([]byte, 0, n)
	for _, op := range batch {
		buf = append(buf, op.buf...)
	}
	if _, err := w.seg.Write(buf); err != nil {
		return fmt.Errorf("storage: wal write: %w", err)
	}
	w.segSize += int64(len(buf))
	w.diskBytes.Add(int64(len(buf)))
	if !w.opts.NoSync {
		start := time.Now()
		if err := w.seg.Sync(); err != nil {
			return fmt.Errorf("storage: wal fsync: %w", err)
		}
		w.syncCount.Add(1)
		w.obsState.Load().observe(start, "wal fsync")
	}
	w.groupCount.Add(1)
	w.recordCount.Add(int64(recs))
	return nil
}

// rollSegment closes the current (fully synced) segment and starts the
// next one. Committer goroutine only.
func (w *WAL) rollSegment() error {
	if err := w.seg.Close(); err != nil {
		return fmt.Errorf("storage: wal roll: %w", err)
	}
	w.segSeq++
	seg, err := os.OpenFile(filepath.Join(w.dir, segName(w.segSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: wal roll open: %w", err)
	}
	// The records fsynced into this segment are only as durable as its
	// directory entry.
	if err := syncDirEntry(w.dir); err != nil {
		seg.Close()
		return err
	}
	w.seg = seg
	w.segSize = 0
	return nil
}

// dispatchLoop resolves completions in group order, off the committer
// goroutine so callbacks (which may send network messages or take protocol
// locks) cannot stall the next fsync.
func (w *WAL) dispatchLoop() {
	defer close(w.displDone)
	for batch := range w.notify {
		for _, op := range batch {
			op.c.complete(op.err)
		}
	}
}
