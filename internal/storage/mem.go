package storage

import (
	"sort"
	"strings"
	"sync"
)

// Mem is an in-memory Stable engine. The simulation harness allocates one
// Mem per process and keeps it across crash/recover cycles, which gives it
// exactly the persistence semantics of stable storage while the process's
// volatile state (everything inside the incarnation) is destroyed.
type Mem struct {
	mu    sync.Mutex
	cells map[string][]byte
	logs  map[string][][]byte
}

var _ Stable = (*Mem)(nil)

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{
		cells: make(map[string][]byte),
		logs:  make(map[string][][]byte),
	}
}

// Put implements Stable.
func (m *Mem) Put(key string, val []byte) error {
	cp := make([]byte, len(val))
	copy(cp, val)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cells[key] = cp
	return nil
}

// Get implements Stable.
func (m *Mem) Get(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.cells[key]
	if !ok {
		return nil, false, nil
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true, nil
}

// Append implements Stable.
func (m *Mem) Append(key string, rec []byte) error {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.logs[key] = append(m.logs[key], cp)
	return nil
}

// Records implements Stable.
func (m *Mem) Records(key string) ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	recs := m.logs[key]
	out := make([][]byte, len(recs))
	for i, r := range recs {
		cp := make([]byte, len(r))
		copy(cp, r)
		out[i] = cp
	}
	return out, nil
}

// Delete implements Stable.
func (m *Mem) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cells, key)
	delete(m.logs, key)
	return nil
}

// List implements Stable.
func (m *Mem) List(prefix string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var keys []string
	for k := range m.cells {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	for k := range m.logs {
		if _, dup := m.cells[k]; dup {
			continue
		}
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Size returns the total number of stored payload bytes (cells plus log
// records). It is used by the log-size experiments (E3).
func (m *Mem) Size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, v := range m.cells {
		total += len(v)
	}
	for _, recs := range m.logs {
		for _, r := range recs {
			total += len(r)
		}
	}
	return total
}

// KeyCount returns the number of live cells and logs. Used by E3 to show
// that application-level checkpoints keep the log from growing indefinitely.
func (m *Mem) KeyCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.cells)
	for k := range m.logs {
		if _, dup := m.cells[k]; !dup {
			n++
		}
	}
	return n
}
