package storage

import (
	"sort"
	"strings"
	"sync"
)

// LayerStats aggregates the stable-storage traffic of one protocol layer.
type LayerStats struct {
	PutOps      int64
	PutBytes    int64
	AppendOps   int64
	AppendBytes int64
	GetOps      int64
	DeleteOps   int64
}

// LogOps returns the number of forced-write ("log") operations: the quantity
// the paper's minimal-logging claim (§4.3) is stated in.
func (s LayerStats) LogOps() int64 { return s.PutOps + s.AppendOps }

// LogBytes returns the number of bytes written by log operations.
func (s LayerStats) LogBytes() int64 { return s.PutBytes + s.AppendBytes }

// Add accumulates o into s.
func (s *LayerStats) Add(o LayerStats) {
	s.PutOps += o.PutOps
	s.PutBytes += o.PutBytes
	s.AppendOps += o.AppendOps
	s.AppendBytes += o.AppendBytes
	s.GetOps += o.GetOps
	s.DeleteOps += o.DeleteOps
}

// Accounted wraps a Stable engine and attributes each operation to a layer
// derived from the key's first path segment ("cons/..." -> "cons",
// "abcast/..." -> "abcast", ...). Experiment E1 uses it to verify that the
// basic protocol's only log writes are the Consensus proposals.
type Accounted struct {
	inner Stable

	mu     sync.Mutex
	layers map[string]*LayerStats
}

var (
	_ Stable      = (*Accounted)(nil)
	_ AsyncStable = (*Accounted)(nil)
)

// NewAccounted wraps inner with per-layer accounting.
func NewAccounted(inner Stable) *Accounted {
	return &Accounted{inner: inner, layers: make(map[string]*LayerStats)}
}

// Inner returns the wrapped engine.
func (a *Accounted) Inner() Stable { return a.inner }

func layerOf(key string) string {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i]
	}
	return key
}

// bump applies fn to the stats of key's layer under the lock.
func (a *Accounted) bump(key string, fn func(*LayerStats)) {
	layer := layerOf(key)
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.layers[layer]
	if !ok {
		st = &LayerStats{}
		a.layers[layer] = st
	}
	fn(st)
}

// Put implements Stable.
func (a *Accounted) Put(key string, val []byte) error {
	a.bump(key, func(st *LayerStats) {
		st.PutOps++
		st.PutBytes += int64(len(val))
	})
	return a.inner.Put(key, val)
}

// PutAsync implements AsyncStable, forwarding to the inner engine's
// asynchronous pipeline when it has one (accounting at issue time).
func (a *Accounted) PutAsync(key string, val []byte) *Completion {
	a.bump(key, func(st *LayerStats) {
		st.PutOps++
		st.PutBytes += int64(len(val))
	})
	if as, ok := a.inner.(AsyncStable); ok {
		return as.PutAsync(key, val)
	}
	return completed(a.inner.Put(key, val))
}

// AppendAsync implements AsyncStable.
func (a *Accounted) AppendAsync(key string, rec []byte) *Completion {
	a.bump(key, func(st *LayerStats) {
		st.AppendOps++
		st.AppendBytes += int64(len(rec))
	})
	if as, ok := a.inner.(AsyncStable); ok {
		return as.AppendAsync(key, rec)
	}
	return completed(a.inner.Append(key, rec))
}

// DeleteAsync implements AsyncStable.
func (a *Accounted) DeleteAsync(key string) *Completion {
	a.bump(key, func(st *LayerStats) { st.DeleteOps++ })
	if as, ok := a.inner.(AsyncStable); ok {
		return as.DeleteAsync(key)
	}
	return completed(a.inner.Delete(key))
}

// Sync implements AsyncStable (barrier on the inner pipeline).
func (a *Accounted) Sync() error {
	if as, ok := a.inner.(AsyncStable); ok {
		return as.Sync()
	}
	return nil
}

// Get implements Stable.
func (a *Accounted) Get(key string) ([]byte, bool, error) {
	a.bump(key, func(st *LayerStats) { st.GetOps++ })
	return a.inner.Get(key)
}

// Append implements Stable.
func (a *Accounted) Append(key string, rec []byte) error {
	a.bump(key, func(st *LayerStats) {
		st.AppendOps++
		st.AppendBytes += int64(len(rec))
	})
	return a.inner.Append(key, rec)
}

// Records implements Stable.
func (a *Accounted) Records(key string) ([][]byte, error) {
	return a.inner.Records(key)
}

// Delete implements Stable.
func (a *Accounted) Delete(key string) error {
	a.bump(key, func(st *LayerStats) { st.DeleteOps++ })
	return a.inner.Delete(key)
}

// List implements Stable.
func (a *Accounted) List(prefix string) ([]string, error) {
	return a.inner.List(prefix)
}

// Layer returns a snapshot of the stats of one layer.
func (a *Accounted) Layer(name string) LayerStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st, ok := a.layers[name]; ok {
		return *st
	}
	return LayerStats{}
}

// Layers returns a snapshot of all layer stats.
func (a *Accounted) Layers() map[string]LayerStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]LayerStats, len(a.layers))
	for k, v := range a.layers {
		out[k] = *v
	}
	return out
}

// LayerNames returns the known layers, sorted.
func (a *Accounted) LayerNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.layers))
	for k := range a.layers {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Total returns the sum over all layers.
func (a *Accounted) Total() LayerStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t LayerStats
	for _, v := range a.layers {
		t.Add(*v)
	}
	return t
}

// Reset zeroes all counters (used between benchmark phases).
func (a *Accounted) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.layers = make(map[string]*LayerStats)
}
