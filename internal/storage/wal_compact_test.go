package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// indexDump captures a WAL's full logical state for exact-recovery
// comparisons.
type indexDump struct {
	cells map[string]string
	logs  map[string][]string
}

func dumpWAL(t *testing.T, w *WAL) indexDump {
	t.Helper()
	d := indexDump{cells: make(map[string]string), logs: make(map[string][]string)}
	keys, err := w.List("")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, k := range keys {
		if v, ok, err := w.Get(k); err != nil {
			t.Fatalf("get %q: %v", k, err)
		} else if ok {
			d.cells[k] = string(v)
		}
		recs, err := w.Records(k)
		if err != nil {
			t.Fatalf("records %q: %v", k, err)
		}
		for _, r := range recs {
			d.logs[k] = append(d.logs[k], string(r))
		}
	}
	return d
}

func compareDumps(t *testing.T, want, got indexDump, context string) {
	t.Helper()
	if len(want.cells) != len(got.cells) {
		t.Fatalf("%s: %d cells recovered; want %d", context, len(got.cells), len(want.cells))
	}
	for k, v := range want.cells {
		if got.cells[k] != v {
			t.Fatalf("%s: cell %q = %q; want %q", context, k, got.cells[k], v)
		}
	}
	if len(want.logs) != len(got.logs) {
		t.Fatalf("%s: %d logs recovered; want %d", context, len(got.logs), len(want.logs))
	}
	for k, recs := range want.logs {
		if len(got.logs[k]) != len(recs) {
			t.Fatalf("%s: log %q has %d records; want %d (lost or duplicated)",
				context, k, len(got.logs[k]), len(recs))
		}
		for i, r := range recs {
			if got.logs[k][i] != r {
				t.Fatalf("%s: log %q record %d = %q; want %q", context, k, i, got.logs[k][i], r)
			}
		}
	}
}

// fillChurn writes a workload with plenty of dead records: cells
// overwritten many times, logs appended and periodically deleted.
func fillChurn(t *testing.T, w *WAL, rounds int) {
	t.Helper()
	val := bytes.Repeat([]byte("v"), 128)
	for i := 0; i < rounds; i++ {
		for c := 0; c < 8; c++ {
			if err := w.Put(fmt.Sprintf("cell-%d", c), append(val, byte(i), byte(c))); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Append("log-a", fmt.Appendf(nil, "rec-%d", i)); err != nil {
			t.Fatal(err)
		}
		if i%4 == 3 {
			if err := w.Delete("log-a"); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Delete(fmt.Sprintf("cell-%d", i%8)); err != nil {
			t.Fatal(err)
		}
	}
}

func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") {
			segs = append(segs, e.Name())
		}
	}
	return segs
}

// TestWALCompactPreservesIndex: an explicit compaction must leave the
// logical state untouched, reclaim the dead segments, and survive a clean
// reopen.
func TestWALCompactPreservesIndex(t *testing.T) {
	dir := t.TempDir()
	opts := walOpts()
	opts.SegmentBytes = 4 << 10 // force many segments
	w, err := OpenWAL(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	fillChurn(t, w, 60)
	before := dumpWAL(t, w)
	segsBefore := len(segmentFiles(t, dir))
	diskBefore := w.DiskBytes()

	if err := w.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	compareDumps(t, before, dumpWAL(t, w), "after compact")
	if got := w.CompactCount(); got != 1 {
		t.Fatalf("compact count %d; want 1", got)
	}
	if segs := len(segmentFiles(t, dir)); segs >= segsBefore {
		t.Fatalf("segments not reclaimed: %d before, %d after", segsBefore, segs)
	}
	if w.DiskBytes() >= diskBefore {
		t.Fatalf("disk not reclaimed: %d before, %d after", diskBefore, w.DiskBytes())
	}

	// Writes after the compaction land in the surviving tail.
	if err := w.Put("post", []byte("compact")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, opts)
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer w2.Close()
	want := before
	want.cells["post"] = "compact"
	compareDumps(t, want, dumpWAL(t, w2), "reopen after compact")
}

// crashStateAt runs a churn workload, triggers a compaction pass, and
// copies the directory's file state at the named stage — the exact
// on-disk bytes a crash at that instant would leave (the hook runs on the
// committer goroutine, so no segment write races the copy). It returns
// the copy directory, the expected logical state, and the tail segment's
// durable size recorded at the "begin" stage — rescue records land past
// that offset, so crash cuts must stay within the rescue suffix (the
// bytes before it were fsynced long before the pass started).
func crashStateAt(t *testing.T, stage string) (string, indexDump, int) {
	t.Helper()
	dir := t.TempDir()
	copyDir := t.TempDir()
	opts := walOpts()
	opts.SegmentBytes = 4 << 10
	w, err := OpenWAL(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fillChurn(t, w, 60)
	expect := dumpWAL(t, w)

	copied := false
	rescueStart := -1
	w.mu.Lock()
	w.compactHook = func(s string) {
		if s == "begin" && rescueStart < 0 {
			// The tail (highest-numbered segment) is about to grow rescue
			// records; everything in it so far is durable.
			segs := segmentFiles(t, dir)
			st, err := os.Stat(filepath.Join(dir, segs[len(segs)-1]))
			if err != nil {
				t.Errorf("hook stat tail: %v", err)
				return
			}
			rescueStart = int(st.Size())
		}
		if s != stage || copied {
			return
		}
		copied = true
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("hook readdir: %v", err)
			return
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Errorf("hook read %s: %v", e.Name(), err)
				return
			}
			if err := os.WriteFile(filepath.Join(copyDir, e.Name()), data, 0o644); err != nil {
				t.Errorf("hook write %s: %v", e.Name(), err)
				return
			}
		}
	}
	w.mu.Unlock()
	if err := w.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if !copied {
		t.Fatalf("compaction never reached stage %q", stage)
	}
	if rescueStart < 0 {
		t.Fatal("compaction never reached stage \"begin\"")
	}
	return copyDir, expect, rescueStart
}

// TestWALCompactCrashBeforeUnlink: crash after the rescue is durable but
// before the victim segment is unlinked — replay sees the whole old
// stream plus the complete rescue records and must recover the exact
// index (the rescue is idempotent over the state it describes).
func TestWALCompactCrashBeforeUnlink(t *testing.T) {
	crashDir, expect, _ := crashStateAt(t, "unlink")
	w, err := OpenWAL(crashDir, walOpts())
	if err != nil {
		t.Fatalf("reopen crash state: %v", err)
	}
	defer w.Close()
	compareDumps(t, expect, dumpWAL(t, w), "crash before unlink")
}

// TestWALCompactCrashMidRewrite: crash while the rescue records are
// being appended to the tail — the old segments (victim included) are
// all present and the rescue is a partial (possibly torn) suffix of the
// tail. Replay must recover the exact index at every truncation point
// within the rescue suffix: a torn frame is discarded by the CRC
// framing, and the complete put / log-snapshot records that survive are
// idempotent — in particular a log snapshot replaces its log atomically,
// never partially. Cuts before the rescue suffix are not valid crash
// states: those bytes were covered by fsyncs that completed before the
// pass began.
func TestWALCompactCrashMidRewrite(t *testing.T) {
	crashDir, expect, rescueStart := crashStateAt(t, "rewrite")
	segs := segmentFiles(t, crashDir)
	rewriteSeg := segs[len(segs)-1] // the tail the rescue was appended to
	full, err := os.ReadFile(filepath.Join(crashDir, rewriteSeg))
	if err != nil {
		t.Fatal(err)
	}
	span := len(full) - rescueStart
	if span <= 0 {
		t.Fatalf("no rescue records written: tail %d bytes, durable prefix %d", len(full), rescueStart)
	}
	// Sweep truncation points across the rescue suffix, cutting mid-frame
	// and at arbitrary byte offsets.
	cuts := []int{
		rescueStart, rescueStart + 1, rescueStart + span/4,
		rescueStart + span/2, len(full) - 1, len(full),
	}
	for _, cut := range cuts {
		if cut < rescueStart || cut > len(full) {
			continue
		}
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			caseDir := t.TempDir()
			for _, name := range segs {
				data, err := os.ReadFile(filepath.Join(crashDir, name))
				if err != nil {
					t.Fatal(err)
				}
				if name == rewriteSeg {
					data = data[:cut]
				}
				if err := os.WriteFile(filepath.Join(caseDir, name), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			w, err := OpenWAL(caseDir, walOpts())
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer w.Close()
			compareDumps(t, expect, dumpWAL(t, w), fmt.Sprintf("mid-rewrite cut=%d", cut))
		})
	}
}

// TestWALCompactConcurrentWrites: writes issued while a compaction cycle
// runs must neither be lost nor duplicated, whether they land before or
// after the rewrite in the stream.
func TestWALCompactConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	fillChurn(t, w, 40)

	done := make(chan error, 1)
	go func() { done <- w.Compact() }()
	for i := 0; i < 50; i++ {
		if err := w.Append("during", fmt.Appendf(nil, "d-%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := w.Put("during-cell", fmt.Appendf(nil, "v-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("compact: %v", err)
	}
	expect := dumpWAL(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, walOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := dumpWAL(t, w2)
	compareDumps(t, expect, got, "concurrent writes across compaction")
	if len(got.logs["during"]) != 50 {
		t.Fatalf("log written during compaction has %d records; want 50", len(got.logs["during"]))
	}
}

// TestCompactionBoundsWALSize is the regression guard for the log
// lifecycle: under a sustained overwrite/delete workload with background
// compaction enabled, steady-state disk usage must stay within a fixed
// multiple of the live state — at unchanged durability (every Put still
// blocks on its covering fsync). Without compaction the same workload
// grows the log without bound (checked as the control).
func TestCompactionBoundsWALSize(t *testing.T) {
	churn := func(w *WAL, rounds int) {
		val := bytes.Repeat([]byte("x"), 256)
		for i := 0; i < rounds; i++ {
			for c := 0; c < 16; c++ {
				if err := w.Put(fmt.Sprintf("cell-%d", c), val); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Append("log", val[:64]); err != nil {
				t.Fatal(err)
			}
			if i%8 == 7 {
				if err := w.Delete("log"); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	const rounds = 400

	// Both runs skip fsync: the record STREAMS are identical either way
	// (so the durability of the two runs is equal by construction), and
	// the property under test is bytes on disk, not sync latency — the
	// fsync-ordering half of compaction crash safety is covered by the
	// crash tests above.
	// Control: no compaction — the dead records accumulate.
	ctrl, err := OpenWAL(t.TempDir(), WALOptions{SyncEvery: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	churn(ctrl, rounds)
	ctrlDisk, ctrlLive := ctrl.DiskBytes(), ctrl.LiveBytes()
	ctrl.Close()

	opts := WALOptions{
		SyncEvery:       64,
		SegmentBytes:    32 << 10,
		CompactFactor:   4,
		CompactMinBytes: 16 << 10,
		NoSync:          true,
	}
	w, err := OpenWAL(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	churn(w, rounds)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	disk, live := w.DiskBytes(), w.LiveBytes()
	t.Logf("control: disk=%d live=%d (ratio %.1f); compacted: disk=%d live=%d (ratio %.1f), %d cycles",
		ctrlDisk, ctrlLive, float64(ctrlDisk)/float64(ctrlLive),
		disk, live, float64(disk)/float64(live), w.CompactCount())
	if w.CompactCount() == 0 {
		t.Fatal("background compaction never triggered")
	}
	// The trigger fires at CompactFactor x live; between cycles the log
	// can grow back up to the trigger plus one in-flight burst, so 2 x
	// factor is a safe steady-state bound — far below the unbounded
	// control.
	bound := int64(2 * opts.CompactFactor * float64(live))
	if bound < opts.CompactMinBytes*2 {
		bound = opts.CompactMinBytes * 2
	}
	if disk > bound {
		t.Fatalf("WAL disk %d exceeds %d (live %d x factor %.0f x 2)", disk, bound, live, opts.CompactFactor)
	}
	if ctrlDisk < disk*2 {
		t.Fatalf("control run should dwarf the compacted run: control %d vs compacted %d", ctrlDisk, disk)
	}
}
