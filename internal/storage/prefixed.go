package storage

import "strings"

// Prefixed is a namespacing wrapper: every key of the wrapped engine is
// transparently qualified with a fixed prefix, so several independent
// components (the ordering groups of a sharded process, most prominently)
// can share one physical store without key collisions — and, when the
// shared engine is the group-commit WAL, share its fsyncs: cross-namespace
// writes coalesce into the same commit group, which is exactly why a
// sharded process runs all its groups over one WAL.
//
// The asynchronous durability API (AsyncStable) is forwarded to the inner
// engine when it has one, so the protocol hot path keeps its group-commit
// pipeline through the wrapper; synchronous engines get the usual eager
// shim semantics.
//
// Prefixed deliberately does NOT implement Closer: the inner engine is
// shared, and the component that owns it — not the namespaces borrowed from
// it — decides when it closes.
type Prefixed struct {
	inner  Stable
	prefix string
}

var (
	_ Stable      = (*Prefixed)(nil)
	_ AsyncStable = (*Prefixed)(nil)
)

// NewPrefixed wraps inner so every key is qualified as "<namespace>/key".
// A trailing separator in namespace is optional; the empty namespace
// returns a wrapper that leaves keys untouched.
func NewPrefixed(inner Stable, namespace string) *Prefixed {
	p := namespace
	if p != "" && !strings.HasSuffix(p, "/") {
		p += "/"
	}
	return &Prefixed{inner: inner, prefix: p}
}

// Inner returns the shared engine underneath the namespace.
func (p *Prefixed) Inner() Stable { return p.inner }

// Namespace returns the qualifying prefix (with its trailing separator).
func (p *Prefixed) Namespace() string { return p.prefix }

// Put implements Stable.
func (p *Prefixed) Put(key string, val []byte) error {
	return p.inner.Put(p.prefix+key, val)
}

// Get implements Stable.
func (p *Prefixed) Get(key string) ([]byte, bool, error) {
	return p.inner.Get(p.prefix + key)
}

// Append implements Stable.
func (p *Prefixed) Append(key string, rec []byte) error {
	return p.inner.Append(p.prefix+key, rec)
}

// Records implements Stable.
func (p *Prefixed) Records(key string) ([][]byte, error) {
	return p.inner.Records(p.prefix + key)
}

// Delete implements Stable.
func (p *Prefixed) Delete(key string) error {
	return p.inner.Delete(p.prefix + key)
}

// List implements Stable. Keys come back in the namespace's coordinates
// (the qualifying prefix is stripped), so callers cannot tell they are
// sharing the engine.
func (p *Prefixed) List(prefix string) ([]string, error) {
	keys, err := p.inner.List(p.prefix + prefix)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, strings.TrimPrefix(k, p.prefix))
	}
	return out, nil
}

// PutAsync implements AsyncStable, forwarding to the inner engine's
// asynchronous pipeline when it has one.
func (p *Prefixed) PutAsync(key string, val []byte) *Completion {
	if as, ok := p.inner.(AsyncStable); ok {
		return as.PutAsync(p.prefix+key, val)
	}
	return completed(p.inner.Put(p.prefix+key, val))
}

// AppendAsync implements AsyncStable.
func (p *Prefixed) AppendAsync(key string, rec []byte) *Completion {
	if as, ok := p.inner.(AsyncStable); ok {
		return as.AppendAsync(p.prefix+key, rec)
	}
	return completed(p.inner.Append(p.prefix+key, rec))
}

// DeleteAsync implements AsyncStable.
func (p *Prefixed) DeleteAsync(key string) *Completion {
	if as, ok := p.inner.(AsyncStable); ok {
		return as.DeleteAsync(p.prefix + key)
	}
	return completed(p.inner.Delete(p.prefix + key))
}

// Sync implements AsyncStable (barrier on the shared pipeline: it covers
// the writes of every namespace, not just this one — a shared fsync is the
// point of sharing the engine).
func (p *Prefixed) Sync() error {
	if as, ok := p.inner.(AsyncStable); ok {
		return as.Sync()
	}
	return nil
}
