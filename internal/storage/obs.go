package storage

import (
	"time"

	"repro/internal/obs"
)

// storeObs is the observability state a storage layer holds once SetObs is
// called. It is installed through an atomic.Pointer so wiring may happen
// after the engine's goroutines are already running (the harness builds
// the storage chain before the plane) without a data race.
type storeObs struct {
	plane *obs.Plane
	hist  *obs.Histogram
}

// observe records one durability latency and flags it to the flight
// recorder when it crosses the plane's slow-sync threshold.
func (s *storeObs) observe(start time.Time, what string) {
	if s == nil {
		return
	}
	el := time.Since(start)
	s.hist.Observe(el.Nanoseconds())
	if slow := s.plane.SlowSync(); slow > 0 && el >= slow {
		s.plane.Flight().Event(obs.EvSlowSync, 0, 0, el.Nanoseconds(), 0, what)
	}
}

// SetObs wires the WAL into an observability plane: fsync latency lands in
// "abcast.storage.fsync_ns" (with EvSlowSync flight events past the
// threshold), and the engine's lifetime counters become read-on-scrape
// metrics. Safe to call after the committer started; nil is a no-op.
func (w *WAL) SetObs(p *obs.Plane) {
	if p == nil {
		return
	}
	reg := p.Reg()
	w.obsState.Store(&storeObs{plane: p, hist: reg.Histogram("abcast.storage.fsync_ns")})
	reg.Func("abcast.storage.wal_syncs", w.SyncCount)
	reg.Func("abcast.storage.wal_groups", w.GroupCount)
	reg.Func("abcast.storage.wal_records", w.RecordCount)
	reg.Func("abcast.storage.wal_disk_bytes", w.DiskBytes)
	reg.Func("abcast.storage.wal_live_bytes", w.LiveBytes)
	reg.Func("abcast.storage.wal_compactions", w.CompactCount)
}

// FsyncLatency snapshots the fsync-latency histogram (empty until SetObs
// wires a plane — the autotuner falls back to record-count heuristics when
// no latency signal is available).
func (w *WAL) FsyncLatency() obs.HistSnapshot {
	if st := w.obsState.Load(); st != nil {
		return st.hist.Snapshot()
	}
	return (*obs.Histogram)(nil).Snapshot()
}

// SetObs wires the fault-injecting wrapper into an observability plane:
// every log operation's durability latency — including the injected
// SetLatency delay, which is the point: the histogram shows what the
// protocol actually waited for — lands in "abcast.storage.persist_ns",
// with EvSlowSync events past the threshold. Nil is a no-op.
func (f *Faulty) SetObs(p *obs.Plane) {
	if p == nil {
		return
	}
	f.obsState.Store(&storeObs{plane: p, hist: p.Reg().Histogram("abcast.storage.persist_ns")})
}

// observeAsync stamps c's resolution into the persist histogram.
func (f *Faulty) observeAsync(c *Completion) *Completion {
	st := f.obsState.Load()
	if st == nil {
		return c
	}
	start := time.Now()
	c.OnDone(func(error) { st.observe(start, "persist") })
	return c
}
