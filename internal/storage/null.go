package storage

// Null is a Stable that discards every write and remembers nothing. The
// crash-stop baseline (internal/ctbaseline) plugs it into the consensus
// engine: in the crash-no-recovery model processes never restart, so logging
// buys nothing — which is exactly why the crash-recovery protocol's logging
// is the cost being measured against it (experiments E1/E7).
type Null struct{}

var _ Stable = Null{}

// Put implements Stable (discard).
func (Null) Put(string, []byte) error { return nil }

// Get implements Stable (always missing).
func (Null) Get(string) ([]byte, bool, error) { return nil, false, nil }

// Append implements Stable (discard).
func (Null) Append(string, []byte) error { return nil }

// Records implements Stable (always empty).
func (Null) Records(string) ([][]byte, error) { return nil, nil }

// Delete implements Stable (no-op).
func (Null) Delete(string) error { return nil }

// List implements Stable (always empty).
func (Null) List(string) ([]string, error) { return nil, nil }
