package storage

import (
	"bytes"
	"fmt"
	"testing"
)

// TestExportNamespaceRoundTrip: cells and logs cross the namespace rewrite
// byte-for-byte and record-for-record, and the accounting matches.
func TestExportNamespaceRoundTrip(t *testing.T) {
	engine := NewMem()
	src := NewPrefixed(engine, "g2/")
	dst := NewPrefixed(engine, "retired/g2/")

	if err := src.Put("cell-a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := src.Put("cell-b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	var wantBytes int64 = int64(len("alpha") + len("beta"))
	for i := 0; i < 5; i++ {
		rec := fmt.Appendf(nil, "record-%d", i)
		if err := src.Append("log-x", rec); err != nil {
			t.Fatal(err)
		}
		wantBytes += int64(len(rec))
	}

	keys, n, err := ExportNamespace(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if keys != 3 || n != wantBytes {
		t.Fatalf("export moved %d keys / %d bytes; want 3 / %d", keys, n, wantBytes)
	}
	if v, ok, err := dst.Get("cell-a"); err != nil || !ok || !bytes.Equal(v, []byte("alpha")) {
		t.Fatalf("cell-a after export: %q %v %v", v, ok, err)
	}
	recs, err := dst.Records("log-x")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("log-x has %d records after export; want 5", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("record-%d", i); string(r) != want {
			t.Fatalf("record %d = %q; want %q (order must survive)", i, r, want)
		}
	}
	// The source namespace is untouched by the export.
	if names, err := src.List(""); err != nil || len(names) != 3 {
		t.Fatalf("source namespace after export: %v %v", names, err)
	}

	// Purge reclaims exactly the source namespace; the archive survives.
	removed, err := PurgeNamespace(src)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("purge removed %d keys; want 3", removed)
	}
	if names, err := src.List(""); err != nil || len(names) != 0 {
		t.Fatalf("source namespace after purge: %v %v", names, err)
	}
	if _, ok, _ := dst.Get("cell-a"); !ok {
		t.Fatal("purge of the source namespace destroyed the archive")
	}
}

// TestExportNamespaceEmpty: an empty namespace exports and purges as a
// no-op (retiring a group that never wrote is legal).
func TestExportNamespaceEmpty(t *testing.T) {
	engine := NewMem()
	keys, n, err := ExportNamespace(NewPrefixed(engine, "a/"), NewPrefixed(engine, "b/"))
	if err != nil || keys != 0 || n != 0 {
		t.Fatalf("empty export: %d keys %d bytes %v", keys, n, err)
	}
	removed, err := PurgeNamespace(NewPrefixed(engine, "a/"))
	if err != nil || removed != 0 {
		t.Fatalf("empty purge: %d %v", removed, err)
	}
}
