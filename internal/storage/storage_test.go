package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

// engines returns a fresh instance of every Stable implementation.
func engines(t *testing.T) map[string]Stable {
	t.Helper()
	fileStore, err := NewFile(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fileStore.Close() })
	walStore, err := OpenWAL(t.TempDir(), WALOptions{SyncEvery: 4, MaxSyncDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { walStore.Close() })
	return map[string]Stable{
		"mem":  NewMem(),
		"file": fileStore,
		"wal":  walStore,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, st := range engines(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.Put("a/k1", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			got, ok, err := st.Get("a/k1")
			if err != nil || !ok || !bytes.Equal(got, []byte("v1")) {
				t.Fatalf("get: %q %v %v", got, ok, err)
			}
			// Overwrite is atomic replacement.
			if err := st.Put("a/k1", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			got, _, _ = st.Get("a/k1")
			if !bytes.Equal(got, []byte("v2")) {
				t.Fatalf("after overwrite: %q", got)
			}
		})
	}
}

func TestGetMissingKey(t *testing.T) {
	for name, st := range engines(t) {
		t.Run(name, func(t *testing.T) {
			_, ok, err := st.Get("nope")
			if err != nil || ok {
				t.Fatalf("missing key: ok=%v err=%v", ok, err)
			}
		})
	}
}

func TestAppendRecordsInOrder(t *testing.T) {
	for name, st := range engines(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				if err := st.Append("log", []byte(fmt.Sprintf("r%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			recs, err := st.Records("log")
			if err != nil || len(recs) != 10 {
				t.Fatalf("records: %d %v", len(recs), err)
			}
			for i, r := range recs {
				if string(r) != fmt.Sprintf("r%d", i) {
					t.Fatalf("record %d = %q", i, r)
				}
			}
		})
	}
}

func TestRecordsOfMissingLog(t *testing.T) {
	for name, st := range engines(t) {
		t.Run(name, func(t *testing.T) {
			recs, err := st.Records("absent")
			if err != nil || len(recs) != 0 {
				t.Fatalf("absent log: %d %v", len(recs), err)
			}
		})
	}
}

func TestDeleteRemovesCellAndLog(t *testing.T) {
	for name, st := range engines(t) {
		t.Run(name, func(t *testing.T) {
			st.Put("x", []byte("1"))
			st.Append("x", []byte("2"))
			if err := st.Delete("x"); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := st.Get("x"); ok {
				t.Fatal("cell survived delete")
			}
			recs, _ := st.Records("x")
			if len(recs) != 0 {
				t.Fatal("log survived delete")
			}
			// Deleting a missing key is a no-op.
			if err := st.Delete("x"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestListByPrefix(t *testing.T) {
	for name, st := range engines(t) {
		t.Run(name, func(t *testing.T) {
			st.Put("cons/p/1", []byte("a"))
			st.Put("cons/d/1", []byte("b"))
			st.Put("abcast/ckpt", []byte("c"))
			st.Append("node/log", []byte("d"))
			keys, err := st.List("cons/")
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 2 || keys[0] != "cons/d/1" || keys[1] != "cons/p/1" {
				t.Fatalf("keys = %v", keys)
			}
			all, _ := st.List("")
			if len(all) != 4 {
				t.Fatalf("all = %v", all)
			}
		})
	}
}

// TestEnginesAgreeProperty drives both engines with the same random script
// and checks they expose identical state.
func TestEnginesAgreeProperty(t *testing.T) {
	fileStore, err := NewFile(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer fileStore.Close()
	memStore := NewMem()

	f := func(ops []struct {
		Kind byte
		Key  uint8
		Val  []byte
	}) bool {
		for _, op := range ops {
			key := fmt.Sprintf("k/%d", op.Key%8)
			switch op.Kind % 3 {
			case 0:
				memStore.Put(key, op.Val)
				fileStore.Put(key, op.Val)
			case 1:
				memStore.Append(key, op.Val)
				fileStore.Append(key, op.Val)
			case 2:
				memStore.Delete(key)
				fileStore.Delete(key)
			}
		}
		for i := 0; i < 8; i++ {
			key := fmt.Sprintf("k/%d", i)
			mv, mok, _ := memStore.Get(key)
			fv, fok, _ := fileStore.Get(key)
			if mok != fok || !bytes.Equal(mv, fv) {
				return false
			}
			mr, _ := memStore.Records(key)
			fr, _ := fileStore.Records(key)
			if len(mr) != len(fr) {
				return false
			}
			for j := range mr {
				if !bytes.Equal(mr[j], fr[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFileSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	st.Put("cell", []byte("persisted"))
	st.Append("log", []byte("r1"))
	st.Append("log", []byte("r2"))
	st.Close()

	st2, err := NewFile(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, ok, _ := st2.Get("cell")
	if !ok || string(got) != "persisted" {
		t.Fatalf("cell lost: %q %v", got, ok)
	}
	recs, _ := st2.Records("log")
	if len(recs) != 2 || string(recs[1]) != "r2" {
		t.Fatalf("log lost: %v", recs)
	}
}

func TestFileTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	st.Append("log", []byte("good"))
	st.Close()

	// Simulate a crash mid-append: garbage after the valid record.
	path := filepath.Join(dir, "l.log")
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	fh.Write([]byte{9, 0, 0, 0, 1, 2}) // claims 9 bytes, supplies 2
	fh.Close()

	st2, err := NewFile(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs, err := st2.Records("log")
	if err != nil || len(recs) != 1 || string(recs[0]) != "good" {
		t.Fatalf("torn tail handling: %v %v", recs, err)
	}
	// Appending after the torn tail still works (new record readable
	// only if the tail is truncated first — we accept losing it).
	st2.Append("log", []byte("after"))
	recs, _ = st2.Records("log")
	if len(recs) != 1 {
		// The torn frame still blocks the tail; the prefix remains intact.
		t.Logf("post-tear append unreadable as expected: %d records", len(recs))
	}
}

func TestFileKeyEscaping(t *testing.T) {
	st, err := NewFile(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	key := "cons/p/0000000000000001"
	st.Put(key, []byte("x"))
	keys, _ := st.List("cons/")
	if len(keys) != 1 || keys[0] != key {
		t.Fatalf("escaping broken: %v", keys)
	}
}

func TestAccountedAttributesLayers(t *testing.T) {
	a := NewAccounted(NewMem())
	a.Put("cons/p/1", make([]byte, 10))
	a.Put("cons/d/1", make([]byte, 5))
	a.Append("abcast/unordlog", make([]byte, 7))
	a.Get("node/epoch")
	a.Delete("cons/p/1")

	cons := a.Layer("cons")
	if cons.PutOps != 2 || cons.PutBytes != 15 || cons.DeleteOps != 1 {
		t.Fatalf("cons stats: %+v", cons)
	}
	ab := a.Layer("abcast")
	if ab.AppendOps != 1 || ab.AppendBytes != 7 || ab.LogOps() != 1 {
		t.Fatalf("abcast stats: %+v", ab)
	}
	if a.Layer("node").GetOps != 1 {
		t.Fatal("node get not counted")
	}
	total := a.Total()
	if total.LogOps() != 3 || total.LogBytes() != 22 {
		t.Fatalf("total: %+v", total)
	}
	names := a.LayerNames()
	if len(names) != 3 {
		t.Fatalf("layers: %v", names)
	}
	a.Reset()
	if a.Total().LogOps() != 0 {
		t.Fatal("reset failed")
	}
}

func TestFaultyTripsAtNthOp(t *testing.T) {
	tripped := false
	f := NewFaulty(NewMem())
	f.FailAfter(3, func() { tripped = true })

	if err := f.Put("k1", nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Append("k2", nil); err != nil {
		t.Fatal(err)
	}
	// Third log operation fails.
	if err := f.Put("k3", nil); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("want injected crash, got %v", err)
	}
	if !tripped || !f.Tripped() {
		t.Fatal("trip callback not run")
	}
	// Everything fails until disarmed, including reads (the process is down).
	if _, _, err := f.Get("k1"); !errors.Is(err, ErrInjectedCrash) {
		t.Fatal("reads should fail while tripped")
	}
	f.Disarm()
	if err := f.Put("k4", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Get("k1"); err != nil {
		t.Fatal(err)
	}
}

func TestMemSizeAndKeyCount(t *testing.T) {
	m := NewMem()
	m.Put("a", make([]byte, 100))
	m.Append("b", make([]byte, 50))
	m.Append("b", make([]byte, 25))
	if m.Size() != 175 {
		t.Fatalf("size = %d", m.Size())
	}
	if m.KeyCount() != 2 {
		t.Fatalf("keys = %d", m.KeyCount())
	}
	m.Delete("b")
	if m.Size() != 100 || m.KeyCount() != 1 {
		t.Fatalf("after delete: size=%d keys=%d", m.Size(), m.KeyCount())
	}
}
