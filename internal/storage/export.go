package storage

// Namespace snapshot export/import for live resharding: when a retired
// group's sealed history is archived into its successor's namespace, the
// whole source namespace (cells and logs alike) is rewritten key-for-key
// into the destination. Run against a WAL engine this rides the compactor's
// live-state representation — the export enumerates exactly the live index
// (dead records were already dropped by compaction), and the import lands as
// ordinary writes that the next commit group fsyncs and the next compaction
// cycle folds.

// ExportNamespace copies every key of src (cells via Put, logs via Append,
// preserving record order) into dst, returning the number of keys and
// payload bytes moved. src and dst are typically Prefixed views of the same
// shared engine, so "migration" is a namespace rewrite, not a second store.
func ExportNamespace(src, dst Stable) (keys int, bytes int64, err error) {
	names, err := src.List("")
	if err != nil {
		return 0, 0, err
	}
	for _, k := range names {
		// A name can hold a cell, a log, or (pathologically) both; copy
		// whichever exists so the destination replays identically.
		copied := false
		if v, ok, gerr := src.Get(k); gerr != nil {
			return keys, bytes, gerr
		} else if ok {
			if err := dst.Put(k, v); err != nil {
				return keys, bytes, err
			}
			bytes += int64(len(v))
			copied = true
		}
		recs, rerr := src.Records(k)
		if rerr != nil {
			return keys, bytes, rerr
		}
		for _, r := range recs {
			if err := dst.Append(k, r); err != nil {
				return keys, bytes, err
			}
			bytes += int64(len(r))
			copied = true
		}
		if copied {
			keys++
		}
	}
	return keys, bytes, nil
}

// PurgeNamespace deletes every key of st (a Prefixed view of a retired
// group's namespace), returning the count removed. On a WAL engine the
// deletes make the records dead, so the next compaction cycle reclaims the
// disk they held.
func PurgeNamespace(st Stable) (int, error) {
	names, err := st.List("")
	if err != nil {
		return 0, err
	}
	for i, k := range names {
		if err := st.Delete(k); err != nil {
			return i, err
		}
	}
	return len(names), nil
}
