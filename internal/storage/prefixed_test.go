package storage

import (
	"reflect"
	"testing"
)

func TestPrefixedNamespacing(t *testing.T) {
	shared := NewMem()
	a := NewPrefixed(shared, "g0")
	b := NewPrefixed(shared, "g1/") // trailing separator is optional

	if err := a.Put("cons/cell", []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("cons/cell", []byte("B")); err != nil {
		t.Fatal(err)
	}

	// Same key, different namespaces: no collision.
	got, ok, err := a.Get("cons/cell")
	if err != nil || !ok || string(got) != "A" {
		t.Fatalf("a.Get = %q,%v,%v; want A", got, ok, err)
	}
	got, ok, err = b.Get("cons/cell")
	if err != nil || !ok || string(got) != "B" {
		t.Fatalf("b.Get = %q,%v,%v; want B", got, ok, err)
	}

	// The shared engine sees qualified keys.
	if _, ok, _ := shared.Get("g0/cons/cell"); !ok {
		t.Fatal("qualified key g0/cons/cell missing from shared engine")
	}

	// Deleting in one namespace leaves the other untouched.
	if err := a.Delete("cons/cell"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := a.Get("cons/cell"); ok {
		t.Fatal("a still sees deleted key")
	}
	if _, ok, _ := b.Get("cons/cell"); !ok {
		t.Fatal("b lost its key to a's delete")
	}
}

func TestPrefixedAppendRecordsAndList(t *testing.T) {
	shared := NewMem()
	a := NewPrefixed(shared, "g0")
	b := NewPrefixed(shared, "g1")

	for _, rec := range []string{"r1", "r2"} {
		if err := a.Append("log", []byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Append("log", []byte("other")); err != nil {
		t.Fatal(err)
	}
	recs, err := a.Records("log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "r1" || string(recs[1]) != "r2" {
		t.Fatalf("a.Records = %q; want [r1 r2]", recs)
	}

	if err := a.Put("cells/x", nil); err != nil {
		t.Fatal(err)
	}
	// List comes back in namespace coordinates, without g1's keys.
	keys, err := a.List("")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cells/x", "log"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("a.List = %v; want %v", keys, want)
	}
	keys, err = a.List("cells/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"cells/x"}) {
		t.Fatalf("a.List(cells/) = %v; want [cells/x]", keys)
	}
}

func TestPrefixedEmptyNamespaceIsTransparent(t *testing.T) {
	shared := NewMem()
	p := NewPrefixed(shared, "")
	if err := p.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := shared.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("shared.Get(k) = %q,%v; want v", got, ok)
	}
}

// TestPrefixedAsyncForwarding checks the asynchronous API reaches the inner
// engine's pipeline with qualified keys: over the WAL, completions resolve
// at the covering fsync and both namespaces' writes share the commit groups.
func TestPrefixedAsyncForwarding(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	a := NewPrefixed(w, "g0")
	b := NewPrefixed(w, "g1")
	ca := a.PutAsync("cell", []byte("A"))
	cb := b.AppendAsync("log", []byte("B"))
	if err := ca.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := cb.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := w.Get("g0/cell"); !ok || string(got) != "A" {
		t.Fatalf("wal.Get(g0/cell) = %q,%v; want A", got, ok)
	}
	recs, err := w.Records("g1/log")
	if err != nil || len(recs) != 1 || string(recs[0]) != "B" {
		t.Fatalf("wal.Records(g1/log) = %q,%v; want [B]", recs, err)
	}

	// The synchronous-engine path resolves eagerly.
	m := NewPrefixed(NewMem(), "ns")
	if err := m.DeleteAsync("gone").Wait(); err != nil {
		t.Fatal(err)
	}
	if err, done := m.PutAsync("k", nil).Poll(); !done || err != nil {
		t.Fatalf("mem-backed PutAsync not eagerly resolved: %v,%v", err, done)
	}
}
