// Package obs is the process-wide observability plane: a zero-dependency
// metrics registry (lock-free counters, gauges and log-linear latency
// histograms behind one "abcast.<layer>.<name>" namespace, exported via
// expvar and a Prometheus text-format handler), a sampled per-message
// lifecycle tracer (nanosecond stage timestamps from A-broadcast to
// confirm, feeding per-stage latency histograms), and a bounded in-memory
// flight recorder of structured anomaly events (lease churn, tentative
// revokes, state transfers, payload stalls, slow fsyncs, suspicion and
// epoch changes) that turns a failing soak seed into a replayable causal
// timeline.
//
// Every layer of the stack holds an optional *Plane and instruments itself
// unconditionally: a nil Plane (and every component reached through one)
// is safe to call and costs a few nil checks — a process without the
// plane wired pays almost nothing, one with it wired pays one atomic add
// per counter event and a sampled map insert per traced message.
//
// # Lifetime and incarnations
//
// A Plane belongs to the PROCESS, not to one incarnation: it survives
// crashes and recoveries, so its counters are monotonic for the process
// lifetime — exactly what a Prometheus scrape needs. Per-incarnation
// views (core.Stats and friends) are computed by snapshotting the
// counters at incarnation start and subtracting.
//
// # Sampling
//
// The tracer samples deterministically by message-identity hash
// (Options.SampleRate = 1-in-N, default 64), so every process of a
// cluster traces the SAME messages without coordination — a span started
// at the origin's Broadcast gains stage stamps on whichever process the
// lifecycle touches. Raise the rate (SampleRate 1 traces everything) for
// tests and latency studies; keep the default for production-shaped
// workloads, where tracing overhead stays under the noise floor of the
// E14/E19/E20 guard numbers.
package obs

import (
	"time"

	"repro/internal/ids"
)

// Options tunes a Plane.
type Options struct {
	// PID stamps flight-recorder events and the exported labels.
	PID ids.ProcessID
	// SampleRate traces 1-in-N messages (deterministic by MsgID hash).
	// 0 uses the default (64); 1 traces every message; negative disables
	// tracing entirely.
	SampleRate int
	// FlightCap bounds the flight-recorder ring (default 1024 events).
	FlightCap int
	// SlowSync is the fsync-duration threshold above which the storage
	// layer records an EvSlowSync flight event (default 20ms).
	SlowSync time.Duration
	// Labels, when non-empty, is a raw Prometheus label list (e.g.
	// `pid="3"`) appended to every metric this plane exports — how a
	// multi-process harness keeps per-process series apart on one
	// endpoint.
	Labels string
}

func (o *Options) fill() {
	if o.SampleRate == 0 {
		o.SampleRate = 64
	}
	if o.FlightCap <= 0 {
		o.FlightCap = 1024
	}
	if o.SlowSync <= 0 {
		o.SlowSync = 20 * time.Millisecond
	}
}

// Plane bundles the three observability facilities one process shares
// across all of its layers (and, sharded, all of its groups). All methods
// are safe on a nil *Plane.
type Plane struct {
	opts   Options
	reg    *Registry
	trace  *Tracer
	flight *Recorder
}

// New builds a Plane.
func New(opts Options) *Plane {
	opts.fill()
	reg := NewRegistry(opts.Labels)
	return &Plane{
		opts:   opts,
		reg:    reg,
		trace:  newTracer(reg, opts.SampleRate),
		flight: newRecorder(opts.PID, opts.FlightCap),
	}
}

// Reg returns the metrics registry (nil on a nil plane — still safe to
// ask for metrics, they just go unregistered).
func (p *Plane) Reg() *Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// Trace returns the lifecycle tracer (nil on a nil plane).
func (p *Plane) Trace() *Tracer {
	if p == nil {
		return nil
	}
	return p.trace
}

// Flight returns the anomaly flight recorder (nil on a nil plane).
func (p *Plane) Flight() *Recorder {
	if p == nil {
		return nil
	}
	return p.flight
}

// PID returns the process id the plane was built for (0 on nil).
func (p *Plane) PID() ids.ProcessID {
	if p == nil {
		return 0
	}
	return p.opts.PID
}

// SlowSync returns the slow-fsync threshold (0 on a nil plane, which
// disables slow-sync events).
func (p *Plane) SlowSync() time.Duration {
	if p == nil {
		return 0
	}
	return p.opts.SlowSync
}
