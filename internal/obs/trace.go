package obs

import (
	"sync"
	"time"

	"repro/internal/ids"
)

// Stage is one point in a message's lifecycle. Stages are marked on
// whichever process the lifecycle touches: the origin marks Broadcast,
// BatchSeal and Propose; every process marks Decide, DecideDurable,
// Tentative, Deliver and Confirm for its own commit path; non-origin
// processes mark PayloadArrive (ring relay) or PullRepair (gossip pull)
// when the body shows up ahead of or behind the order.
type Stage int

const (
	StBroadcast Stage = iota // A-broadcast accepted at the origin
	StBatchSeal              // origin's batch containing the message sealed
	StPropose                // batch handed to consensus
	StPayloadArrive          // body arrived via ring dissemination
	StPullRepair             // body arrived via digest-gossip pull repair
	StDecide                 // ordering round reached accept quorum
	StDecideDurable          // round's decision fsynced locally
	StTentative              // speculative (tentative) delivery
	StDeliver                // definitive delivery to the application
	StConfirm                // earlier tentative delivery confirmed
	numStages
)

var stageNames = [numStages]string{
	"broadcast", "batch_seal", "propose", "payload_arrive", "pull_repair",
	"decide", "decide_durable", "tentative", "deliver", "confirm",
}

// String implements fmt.Stringer.
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "?"
	}
	return stageNames[s]
}

// span is one sampled message's timeline: absolute nanosecond wall stamps
// per stage (0 = not reached here).
type span struct {
	start int64
	at    [numStages]int64
}

// roundKey identifies one ordering round of one group for the
// consensus-side stamps that predate knowledge of the round's MsgIDs.
type roundKey struct {
	g ids.GroupID
	k uint64
}

type roundStamp struct {
	decide  int64
	durable int64
}

const (
	spanCap  = 4096 // concurrent in-flight sampled spans
	roundCap = 1024 // unfolded round stamps
)

// Tracer samples per-message lifecycle spans and folds them into
// per-stage latency histograms "abcast.trace.<stage>_ns" (offset from the
// span's first stamp) plus "abcast.trace.e2e_ns". Sampling is a
// deterministic hash of the MsgID, so every process of a cluster traces
// the same messages without coordination; a span auto-creates at its
// first Mark, wherever in the lifecycle that happens to be.
//
// All methods are safe on a nil *Tracer.
type Tracer struct {
	rate uint64 // sample 1-in-rate; 0 = tracing disabled

	mu     sync.Mutex
	spans  map[ids.MsgID]*span
	rounds map[roundKey]roundStamp

	stageHist [numStages]*Histogram
	e2e       *Histogram
	finished  *Counter
	dropped   *Counter
}

func newTracer(reg *Registry, sampleRate int) *Tracer {
	if sampleRate < 0 {
		sampleRate = 0 // disabled
	}
	t := &Tracer{
		rate:     uint64(sampleRate),
		spans:    make(map[ids.MsgID]*span),
		rounds:   make(map[roundKey]roundStamp),
		e2e:      reg.Histogram("abcast.trace.e2e_ns"),
		finished: reg.Counter("abcast.trace.spans_finished"),
		dropped:  reg.Counter("abcast.trace.spans_dropped"),
	}
	for s := Stage(0); s < numStages; s++ {
		t.stageHist[s] = reg.Histogram("abcast.trace." + stageNames[s] + "_ns")
	}
	return t
}

// Sampled reports whether id falls in the trace sample. Deterministic
// across processes (pure function of the identity), cheap enough for the
// hot path.
func (t *Tracer) Sampled(id ids.MsgID) bool {
	if t == nil || t.rate == 0 {
		return false
	}
	if t.rate == 1 {
		return true
	}
	// FNV-1a over the identity fields.
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(uint64(uint32(id.Sender)))
	mix(uint64(id.Incarnation))
	mix(id.Seq)
	return h%t.rate == 0
}

// Mark stamps stage s for id now. The first Mark for a sampled id creates
// its span; later stamps for an already-stamped stage keep the first time
// (retries don't rewrite history).
func (t *Tracer) Mark(id ids.MsgID, s Stage) {
	if t == nil || !t.Sampled(id) {
		return
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	sp := t.spans[id]
	if sp == nil {
		if len(t.spans) >= spanCap {
			t.mu.Unlock()
			t.dropped.Inc()
			return
		}
		sp = &span{start: now}
		t.spans[id] = sp
	}
	if sp.at[s] == 0 {
		sp.at[s] = now
	}
	t.mu.Unlock()
}

// MarkRound stamps a round-scoped stage (StDecide, StDecideDurable) for
// round k of group g — the consensus layer knows rounds, not message
// identities. Core folds the stamps into message spans at commit.
func (t *Tracer) MarkRound(g ids.GroupID, k uint64, s Stage) {
	if t == nil || t.rate == 0 {
		return
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	key := roundKey{g, k}
	rs, ok := t.rounds[key]
	if !ok && len(t.rounds) >= roundCap {
		for victim := range t.rounds { // cap safety: evict an arbitrary stale stamp
			delete(t.rounds, victim)
			break
		}
	}
	switch s {
	case StDecide:
		if rs.decide == 0 {
			rs.decide = now
		}
	case StDecideDurable:
		if rs.durable == 0 {
			rs.durable = now
		}
	}
	t.rounds[key] = rs
	t.mu.Unlock()
}

// FoldRound copies round k's consensus stamps into each sampled id's span
// and retires the round entry. Called by core when the round commits.
func (t *Tracer) FoldRound(g ids.GroupID, k uint64, msgs []ids.MsgID) {
	if t == nil || t.rate == 0 {
		return
	}
	t.mu.Lock()
	key := roundKey{g, k}
	rs, ok := t.rounds[key]
	if ok {
		delete(t.rounds, key)
	}
	if ok && (rs.decide != 0 || rs.durable != 0) {
		for _, id := range msgs {
			sp := t.spans[id]
			if sp == nil {
				continue
			}
			if sp.at[StDecide] == 0 {
				sp.at[StDecide] = rs.decide
			}
			if sp.at[StDecideDurable] == 0 {
				sp.at[StDecideDurable] = rs.durable
			}
		}
	}
	t.mu.Unlock()
}

// Finish stamps final for id, closes the span, and feeds every recorded
// stage into its offset-from-start histogram plus the end-to-end one.
// No-op for unsampled or unknown ids.
func (t *Tracer) Finish(id ids.MsgID, final Stage) {
	if t == nil || !t.Sampled(id) {
		return
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	sp := t.spans[id]
	if sp == nil {
		t.mu.Unlock()
		return
	}
	delete(t.spans, id)
	t.mu.Unlock()
	if sp.at[final] == 0 {
		sp.at[final] = now
	}
	for s := Stage(0); s < numStages; s++ {
		if sp.at[s] != 0 {
			t.stageHist[s].Observe(sp.at[s] - sp.start)
		}
	}
	t.e2e.Observe(sp.at[final] - sp.start)
	t.finished.Inc()
}

// Abort drops id's span without recording (revoked-and-never-redelivered
// cleanup). No-op for unknown ids.
func (t *Tracer) Abort(id ids.MsgID) {
	if t == nil || t.rate == 0 {
		return
	}
	t.mu.Lock()
	delete(t.spans, id)
	t.mu.Unlock()
}

// Pending returns the number of open spans (tests, leak checks).
func (t *Tracer) Pending() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
