package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Prometheus text-format exposition. Several registries (one per process
// of an in-process cluster) can share one endpoint: WritePromAll groups
// series by metric family so each family's TYPE line is emitted exactly
// once, with each registry's const labels keeping its series distinct.

type promSeries struct {
	labels string
	value  string // pre-rendered sample value
	suffix string // "", "_bucket", "_sum", "_count"
}

type promFamily struct {
	name   string // prometheus-legal family name
	typ    string // counter | gauge | histogram
	series []promSeries
}

// collectProm renders one registry's metrics into families, applying the
// registry's const labels plus extra.
func collectProm(r *Registry, extra string, fams map[string]*promFamily, order *[]string) {
	if r == nil {
		return
	}
	constLabels := joinLabels(r.labels, extra)
	add := func(famName, typ string, s promSeries) {
		f := fams[famName]
		if f == nil {
			f = &promFamily{name: famName, typ: typ}
			fams[famName] = f
			*order = append(*order, famName)
		}
		f.series = append(f.series, s)
	}
	r.Each(func(name string, v int64, counter bool) {
		base, lbl := splitName(name)
		typ := "gauge"
		if counter {
			typ = "counter"
		}
		add(promName(base), typ, promSeries{
			labels: joinLabels(lbl, constLabels),
			value:  fmt.Sprintf("%d", v),
		})
	})
	r.EachHistogram(func(name string, s HistSnapshot) {
		base, lbl := splitName(name)
		fam := promName(base)
		lbls := joinLabels(lbl, constLabels)
		var cum uint64
		for i, c := range s.Bucket {
			if c == 0 {
				continue
			}
			cum += c
			add(fam, "histogram", promSeries{
				suffix: "_bucket",
				labels: joinLabels(lbls, fmt.Sprintf(`le="%d"`, bucketHigh(i))),
				value:  fmt.Sprintf("%d", cum),
			})
		}
		add(fam, "histogram", promSeries{
			suffix: "_bucket",
			labels: joinLabels(lbls, `le="+Inf"`),
			value:  fmt.Sprintf("%d", s.Count),
		})
		add(fam, "histogram", promSeries{suffix: "_sum", labels: lbls, value: fmt.Sprintf("%d", s.Sum)})
		add(fam, "histogram", promSeries{suffix: "_count", labels: lbls, value: fmt.Sprintf("%d", s.Count)})
	})
}

// WritePromAll writes the merged text-format exposition of several
// registries. extras[i] (optional, may be nil or shorter) adds const
// labels to registry i's series — e.g. `pid="2"` for a multi-process
// harness sharing one endpoint.
func WritePromAll(w io.Writer, regs []*Registry, extras []string) error {
	fams := map[string]*promFamily{}
	var order []string
	for i, r := range regs {
		extra := ""
		if i < len(extras) {
			extra = extras[i]
		}
		collectProm(r, extra, fams, &order)
	}
	sort.Strings(order)
	var b strings.Builder
	for _, fn := range order {
		f := fams[fn]
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			if s.labels == "" {
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.suffix, s.value)
			} else {
				fmt.Fprintf(&b, "%s%s{%s} %s\n", f.name, s.suffix, s.labels, s.value)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteProm writes one registry's exposition.
func (r *Registry) WriteProm(w io.Writer) error {
	return WritePromAll(w, []*Registry{r}, nil)
}

// ServeHTTP makes a single registry a Prometheus scrape target.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteProm(w)
}

// PromHandler serves the merged exposition of planes (one per process),
// labelling each plane's series with pid="<i>" unless the plane already
// carries its own labels.
func PromHandler(planes []*Plane) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		regs := make([]*Registry, 0, len(planes))
		extras := make([]string, 0, len(planes))
		for _, p := range planes {
			if p == nil {
				continue
			}
			extra := ""
			if p.Reg().labels == "" {
				extra = fmt.Sprintf(`pid="%d"`, p.PID())
			}
			regs = append(regs, p.Reg())
			extras = append(extras, extra)
		}
		_ = WritePromAll(w, regs, extras)
	})
}
