package obs

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/ids"
)

// Registry is the named-metric namespace of one Plane. Metric names follow
// "abcast.<layer>.<name>" and may carry a raw Prometheus label suffix in
// braces — "abcast.core.delivered{group=\"2\"}" — so sharded groups sharing
// one registry keep distinct series.
//
// All lookup methods are safe on a nil *Registry: they return a fresh,
// fully usable but unregistered metric, so instrumentation code never
// branches on whether observability is wired.
type Registry struct {
	labels string // extra const labels appended to every exported series

	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaug  map[string]*Gauge
	hists map[string]*Histogram
	funcs map[string]func() int64
}

// NewRegistry creates a registry; labels (may be empty) is a raw Prometheus
// label list like `pid="3"` added to every series it exports.
func NewRegistry(labels string) *Registry {
	return &Registry{
		labels: labels,
		ctrs:   make(map[string]*Counter),
		gaug:   make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		funcs:  make(map[string]func() int64),
	}
}

// Counter returns the counter named name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.ctrs[name]
	if c == nil {
		c = new(Counter)
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the gauge named name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gaug[name]
	if g == nil {
		g = new(Gauge)
		r.gaug[name] = g
	}
	return g
}

// Histogram returns the histogram named name, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Func registers a read-on-scrape gauge backed by fn — how layers that
// already keep atomic counters (dissem, group mux, WAL) export them without
// double bookkeeping. Re-registering a name replaces the function.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// names returns all metric names of one kind, sorted (for stable export).
func sortedKeys[M any](m map[string]M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Each walks every metric as (name, value) pairs — counters and funcs as
// monotonic/instant values, gauges as instants — in sorted name order.
// Histograms are walked separately via EachHistogram.
func (r *Registry) Each(fn func(name string, value int64, counter bool)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for n, c := range r.ctrs {
		ctrs[n] = c
	}
	gaug := make(map[string]*Gauge, len(r.gaug))
	for n, g := range r.gaug {
		gaug[n] = g
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	r.mu.Unlock()
	for _, n := range sortedKeys(ctrs) {
		fn(n, int64(ctrs[n].Value()), true)
	}
	for _, n := range sortedKeys(gaug) {
		fn(n, gaug[n].Value(), false)
	}
	for _, n := range sortedKeys(funcs) {
		fn(n, funcs[n](), false)
	}
}

// EachHistogram walks every histogram snapshot in sorted name order.
func (r *Registry) EachHistogram(fn func(name string, s HistSnapshot)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	for _, n := range sortedKeys(hists) {
		fn(n, hists[n].Snapshot())
	}
}

// HistogramSnapshot returns the named histogram's snapshot and whether it
// exists (without creating it).
func (r *Registry) HistogramSnapshot(name string) (HistSnapshot, bool) {
	if r == nil {
		return HistSnapshot{}, false
	}
	r.mu.Lock()
	h := r.hists[name]
	r.mu.Unlock()
	if h == nil {
		return HistSnapshot{}, false
	}
	return h.Snapshot(), true
}

// GroupLabel suffixes a metric name with its ordering-group label, the
// convention every layer uses so sharded groups sharing one registry keep
// distinct series: GroupLabel("abcast.core.delivered", 2) →
// `abcast.core.delivered{group="2"}`.
func GroupLabel(name string, g ids.GroupID) string {
	return fmt.Sprintf("%s{group=\"%d\"}", name, g)
}

// splitName separates a metric name into its base and an optional raw
// label list: "abcast.core.delivered{group=\"1\"}" → base
// "abcast.core.delivered", labels `group="1"`.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels merges two raw label lists.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// promName rewrites a dotted metric base name to a Prometheus-legal one
// (dots and other separators become underscores).
func promName(base string) string {
	var b strings.Builder
	b.Grow(len(base))
	for i := 0; i < len(base); i++ {
		c := base[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// expvarPublished guards expvar.Publish, which panics on duplicate names —
// relevant when tests build multiple planes in one process.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the registry under expvar as a single JSON map
// variable (histograms as {count,sum,max,p50,p90,p99}). The name is
// typically "abcast" or "abcast.p3"; duplicate publishes are ignored.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any {
		out := map[string]any{}
		r.Each(func(n string, v int64, _ bool) { out[n] = v })
		r.EachHistogram(func(n string, s HistSnapshot) {
			out[n] = map[string]any{
				"count": s.Count,
				"sum":   s.Sum,
				"max":   s.Max,
				"p50":   s.Quantile(0.50),
				"p90":   s.Quantile(0.90),
				"p99":   s.Quantile(0.99),
			}
		})
		return out
	}))
}

// String renders a compact human-readable dump (debugging aid).
func (r *Registry) String() string {
	if r == nil {
		return "(no registry)"
	}
	var b strings.Builder
	r.Each(func(n string, v int64, _ bool) {
		fmt.Fprintf(&b, "%s = %d\n", n, v)
	})
	r.EachHistogram(func(n string, s HistSnapshot) {
		fmt.Fprintf(&b, "%s = count=%d p50=%d p99=%d max=%d\n",
			n, s.Count, s.Quantile(0.5), s.Quantile(0.99), s.Max)
	})
	return b.String()
}
