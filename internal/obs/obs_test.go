package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ids"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and
	// bucket bounds must tile without gaps.
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 1000, 1 << 20, (1 << 20) + 12345, 1<<62 + 9}
	for _, v := range vals {
		i := bucketIndex(v)
		hi := bucketHigh(i)
		if v > hi {
			t.Fatalf("value %d above its bucket %d high %d", v, i, hi)
		}
		if i > 0 && v <= bucketHigh(i-1) {
			t.Fatalf("value %d should be in an earlier bucket than %d (prev high %d)", v, i, bucketHigh(i-1))
		}
	}
	for i := 1; i < 200; i++ {
		if bucketHigh(i) <= bucketHigh(i-1) {
			t.Fatalf("bucket bounds not increasing at %d: %d <= %d", i, bucketHigh(i), bucketHigh(i-1))
		}
		if bucketIndex(bucketHigh(i-1)+1) != i {
			t.Fatalf("gap between buckets %d and %d", i-1, i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := new(Histogram)
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v * 1000) // 1µs .. 1ms
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	p50 := s.Quantile(0.50)
	if p50 < 450_000 || p50 > 560_000 {
		t.Fatalf("p50 = %d, want ~500000", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 930_000 || p99 > 1_000_000 {
		t.Fatalf("p99 = %d, want ~990000", p99)
	}
	if s.Max != 1_000_000 {
		t.Fatalf("max = %d", s.Max)
	}
	if m := s.Quantile(1); m != 1_000_000 {
		t.Fatalf("p100 = %d, want max", m)
	}

	// Merge doubles the counts but keeps the shape.
	s2 := h.Snapshot()
	s2.Merge(s)
	if s2.Count != 2000 || s2.Sum != 2*s.Sum {
		t.Fatalf("merge: count=%d sum=%d", s2.Count, s2.Sum)
	}
	if d := s2.Quantile(0.5) - p50; d < -70_000 || d > 70_000 {
		t.Fatalf("merged p50 moved: %d vs %d", s2.Quantile(0.5), p50)
	}
}

func TestNilSafety(t *testing.T) {
	var p *Plane
	p.Reg().Counter("x").Inc()
	p.Reg().Gauge("g").Set(7)
	p.Reg().Histogram("h").Observe(5)
	p.Reg().Func("f", func() int64 { return 1 })
	p.Trace().Mark(ids.MsgID{Seq: 1}, StBroadcast)
	p.Trace().MarkRound(0, 1, StDecide)
	p.Trace().FoldRound(0, 1, nil)
	p.Trace().Finish(ids.MsgID{Seq: 1}, StDeliver)
	p.Flight().Event(EvCheckpoint, 0, 1, 0, 0, "")
	if p.Flight().Total() != 0 || p.Trace().Pending() != 0 {
		t.Fatal("nil plane recorded something")
	}
	var c *Counter
	c.Inc()
	var h *Histogram
	h.Observe(1)
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram counted")
	}
	// A nil registry still hands out working (unregistered) metrics.
	var r *Registry
	cc := r.Counter("y")
	cc.Inc()
	if cc.Value() != 1 {
		t.Fatal("unregistered counter broken")
	}
}

func TestPromExposition(t *testing.T) {
	r := NewRegistry(`pid="0"`)
	r.Counter(`abcast.core.delivered{group="1"}`).Add(5)
	r.Counter(`abcast.core.delivered{group="2"}`).Add(7)
	r.Gauge("abcast.wal.live_bytes").Set(1234)
	r.Func("abcast.ring.relayed", func() int64 { return 42 })
	r.Histogram("abcast.trace.e2e_ns").Observe(100)
	r.Histogram("abcast.trace.e2e_ns").Observe(3000)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE abcast_core_delivered counter",
		`abcast_core_delivered{group="1",pid="0"} 5`,
		`abcast_core_delivered{group="2",pid="0"} 7`,
		"# TYPE abcast_wal_live_bytes gauge",
		`abcast_wal_live_bytes{pid="0"} 1234`,
		`abcast_ring_relayed{pid="0"} 42`,
		"# TYPE abcast_trace_e2e_ns histogram",
		`abcast_trace_e2e_ns_bucket{pid="0",le="+Inf"} 2`,
		`abcast_trace_e2e_ns_sum{pid="0"} 3100`,
		`abcast_trace_e2e_ns_count{pid="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE abcast_core_delivered") != 1 {
		t.Fatalf("family TYPE repeated:\n%s", out)
	}
	// Basic format sanity: every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestTracerLifecycle(t *testing.T) {
	reg := NewRegistry("")
	tr := newTracer(reg, 1) // sample everything
	id := ids.MsgID{Sender: 2, Incarnation: 1, Seq: 9}

	tr.Mark(id, StBroadcast)
	tr.Mark(id, StPropose)
	tr.MarkRound(3, 17, StDecide)
	tr.MarkRound(3, 17, StDecideDurable)
	tr.FoldRound(3, 17, []ids.MsgID{id})
	tr.Mark(id, StTentative)
	time.Sleep(time.Millisecond)
	tr.Finish(id, StConfirm)

	if tr.Pending() != 0 {
		t.Fatalf("span leaked: %d", tr.Pending())
	}
	for _, name := range []string{
		"abcast.trace.broadcast_ns", "abcast.trace.propose_ns",
		"abcast.trace.decide_ns", "abcast.trace.decide_durable_ns",
		"abcast.trace.tentative_ns", "abcast.trace.confirm_ns",
		"abcast.trace.e2e_ns",
	} {
		s, ok := reg.HistogramSnapshot(name)
		if !ok || s.Count != 1 {
			t.Fatalf("%s count = %d (ok=%v)", name, s.Count, ok)
		}
	}
	if e2e, _ := reg.HistogramSnapshot("abcast.trace.e2e_ns"); e2e.Max < int64(time.Millisecond) {
		t.Fatalf("e2e too small: %d", e2e.Max)
	}
	// Folding retired the round stamp.
	tr.mu.Lock()
	nrounds := len(tr.rounds)
	tr.mu.Unlock()
	if nrounds != 0 {
		t.Fatalf("round stamps leaked: %d", nrounds)
	}
}

func TestTracerSamplingDeterministic(t *testing.T) {
	a := newTracer(NewRegistry(""), 8)
	b := newTracer(NewRegistry(""), 8)
	sampled := 0
	for i := 0; i < 4096; i++ {
		id := ids.MsgID{Sender: ids.ProcessID(i % 5), Incarnation: uint32(i % 3), Seq: uint64(i)}
		sa, sb := a.Sampled(id), b.Sampled(id)
		if sa != sb {
			t.Fatalf("sampling disagrees for %v", id)
		}
		if sa {
			sampled++
		}
	}
	// 1-in-8 over 4096 ids: expect ~512, allow wide slack.
	if sampled < 256 || sampled > 1024 {
		t.Fatalf("sample rate off: %d/4096 at 1-in-8", sampled)
	}
	// Disabled tracer samples nothing.
	d := newTracer(NewRegistry(""), -1)
	if d.Sampled(ids.MsgID{Seq: 1}) {
		t.Fatal("disabled tracer sampled")
	}
}

func TestRecorderRing(t *testing.T) {
	r := newRecorder(3, 8)
	for i := 0; i < 5; i++ {
		r.Event(EvCheckpoint, 1, uint64(i), 0, 0, "")
	}
	// Below capacity: nothing dropped, watermark == total.
	if r.Len() != 5 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	for i := 5; i < 20; i++ {
		r.Event(EvCheckpoint, 1, uint64(i), 0, 0, "")
	}
	d := r.Dump()
	if len(d) != 8 || r.Total() != 20 {
		t.Fatalf("len=%d total=%d", len(d), r.Total())
	}
	// Oldest-first, contiguous tail, PID stamped.
	for i, e := range d {
		if e.Round != uint64(12+i) {
			t.Fatalf("dump[%d].Round = %d, want %d", i, e.Round, 12+i)
		}
		if e.PID != 3 {
			t.Fatalf("dump[%d].PID = %v", i, e.PID)
		}
		if i > 0 && e.Seq != d[i-1].Seq+1 {
			t.Fatalf("seq gap at %d", i)
		}
	}
	if !strings.Contains(r.String(), "12 earlier events overwritten") {
		t.Fatalf("dump header missing overwrite note:\n%s", r.String())
	}
}

func TestPlaneDefaults(t *testing.T) {
	p := New(Options{PID: 2})
	if p.Trace() == nil || p.Reg() == nil || p.Flight() == nil {
		t.Fatal("plane components missing")
	}
	if p.SlowSync() != 20*time.Millisecond {
		t.Fatalf("default slow-sync = %v", p.SlowSync())
	}
	if p.PID() != 2 {
		t.Fatalf("pid = %v", p.PID())
	}
	p.Reg().PublishExpvar("abcast.test.p2")
	p.Reg().PublishExpvar("abcast.test.p2") // duplicate must not panic
}
