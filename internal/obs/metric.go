package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing lock-free counter. All methods are
// safe on a nil *Counter (they no-op / return zero), so instrumentation
// sites never need to guard.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value (int64, lock-free). Safe on nil.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: log-linear (HDR-style). Values 0..15 get their
// own bucket; above that, each power-of-two octave is split into 16 linear
// sub-buckets. With 60 octaves the top bucket covers every int64 nanosecond
// value (~292 years), for 16 + 60*16 = 976 buckets of 8 bytes each — small
// enough to allocate eagerly, precise to ~6% relative error everywhere.
const (
	histLinear  = 16 // exact buckets for values < 16
	histSubBits = 4  // 16 sub-buckets per octave
	histBuckets = histLinear + (64-histSubBits)*histLinear
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histLinear {
		return int(v)
	}
	e := bits.Len64(uint64(v)) // 5..64 here
	return histLinear + (e-histSubBits-1)*histLinear + int((uint64(v)>>(e-histSubBits-1))&(histLinear-1))
}

// bucketHigh returns the inclusive upper bound of bucket i (the value such
// that every v with bucketIndex(v) == i satisfies v <= bucketHigh(i)).
func bucketHigh(i int) int64 {
	if i < histLinear {
		return int64(i)
	}
	g := (i - histLinear) / histLinear // octave index: e = g+5
	s := (i - histLinear) % histLinear
	e := g + histSubBits + 1
	low := int64(1)<<(e-1) + int64(s)<<(e-histSubBits-1)
	return low + int64(1)<<(e-histSubBits-1) - 1
}

// Histogram is a lock-free log-linear latency histogram. Record and
// snapshot race benignly (a snapshot may miss in-flight records; it never
// corrupts). Safe on nil.
type Histogram struct {
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	bucket [histBuckets]atomic.Uint64
}

// Observe records one value (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.bucket[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistSnapshot is a consistent-enough copy of a histogram, mergeable and
// queryable for quantiles.
type HistSnapshot struct {
	Count  uint64
	Sum    int64
	Max    int64
	Bucket []uint64 // len histBuckets; omitted trailing zeros allowed after Merge
}

// Snapshot copies the histogram (nil-safe: returns an empty snapshot).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Bucket: make([]uint64, histBuckets)}
	if h == nil {
		return s
	}
	var n uint64
	for i := range h.bucket {
		c := h.bucket[i].Load()
		s.Bucket[i] = c
		n += c
	}
	// Derive the count from the buckets so quantiles are internally
	// consistent even if records landed between the loads.
	s.Count = n
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Merge folds o into s (for cross-process / cross-group rollups).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(s.Bucket) < histBuckets {
		b := make([]uint64, histBuckets)
		copy(b, s.Bucket)
		s.Bucket = b
	}
	for i, c := range o.Bucket {
		s.Bucket[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Delta returns the observations recorded since prev was taken: bucket-wise
// subtraction of an earlier snapshot of the same histogram. A bucket that
// appears to have regressed (the underlying histogram was replaced — e.g. a
// new incarnation without a shared registry) clamps to zero rather than
// wrapping, so a controller consuming epoch deltas degrades to "no data this
// epoch" instead of acting on garbage.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Bucket: make([]uint64, histBuckets)}
	if s.Count < prev.Count {
		// Regression: treat s as a fresh histogram — the delta is s itself.
		prev = HistSnapshot{}
	}
	var n uint64
	for i := range d.Bucket {
		var cur, old uint64
		if i < len(s.Bucket) {
			cur = s.Bucket[i]
		}
		if i < len(prev.Bucket) {
			old = prev.Bucket[i]
		}
		if cur > old {
			d.Bucket[i] = cur - old
		}
		n += d.Bucket[i]
	}
	d.Count = n
	if s.Sum > prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	// Max over just the delta window is unknowable from cumulative buckets;
	// the cumulative max is a safe upper bound for quantile clamping.
	d.Max = s.Max
	return d
}

// Quantile returns the value at quantile q in [0,1] (bucket upper bound;
// exact for values < 16, within one sub-bucket above). Returns 0 on an
// empty histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Bucket {
		cum += c
		if cum >= rank {
			hi := bucketHigh(i)
			if hi > s.Max && s.Max > 0 {
				return s.Max
			}
			return hi
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
