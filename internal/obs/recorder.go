package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/ids"
)

// EventKind classifies a flight-recorder event.
type EventKind int

const (
	EvNodeStart       EventKind = iota // incarnation started (A=incarnation)
	EvLeaseAcquire                     // sequencer lease acquired (A=holder pid)
	EvLeaseLost                        // lease dropped/revoked (A=holder pid)
	EvTentativeRevoke                  // speculative deliveries rolled back (A=count)
	EvStateSent                        // checkpoint state served to a peer (A=peer, Round=upto)
	EvStateAdopt                       // checkpoint state adopted from a peer (Round=new next round)
	EvCursorLag                        // merge cursor lagged behind the retention floor
	EvCheckpoint                       // checkpoint cut (Round=next undelivered)
	EvCompaction                       // WAL segment compaction pass (A=segments before, B=after)
	EvSuspect                          // failure detector began suspecting a peer (A=peer)
	EvTrust                            // failure detector trusts a peer again (A=peer)
	EvEpochChange                      // peer's epoch number increased (A=peer, B=epoch)
	EvPayloadStall                     // delivery blocked awaiting a payload body (Round=round)
	EvSlowSync                         // durability op over threshold (A=duration ns)
	EvTune                             // autotuner moved a knob (A=old value, B=new value, Note=knob)
	EvViolation                        // harness-detected safety/liveness violation
	EvReshardSeal                      // retiring group sealed (Round=final round, A=drain window)
	EvReshardJoin                      // new group spliced into the order (A=new gid, B=global offset)
	EvReshardDrain                     // retiring group drained (Round=final+1, A=orphan count, B=drain ns)
	EvReshardMigrate                   // retired namespace archived into successor (A=keys, B=bytes)
)

var evNames = map[EventKind]string{
	EvNodeStart: "node-start", EvLeaseAcquire: "lease-acquire", EvLeaseLost: "lease-lost",
	EvTentativeRevoke: "tentative-revoke", EvStateSent: "state-sent", EvStateAdopt: "state-adopt",
	EvCursorLag: "cursor-lag", EvCheckpoint: "checkpoint", EvCompaction: "compaction",
	EvSuspect: "suspect", EvTrust: "trust", EvEpochChange: "epoch-change",
	EvPayloadStall: "payload-stall", EvSlowSync: "slow-sync", EvTune: "tune",
	EvViolation: "VIOLATION", EvReshardSeal: "reshard-seal", EvReshardJoin: "reshard-join",
	EvReshardDrain: "reshard-drain", EvReshardMigrate: "reshard-migrate",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if n, ok := evNames[k]; ok {
		return n
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one structured flight-recorder entry. A and B are
// kind-specific small operands (peer pid, count, nanoseconds, ...); Note
// carries anything that doesn't fit.
type Event struct {
	Seq   uint64 // process-wide event sequence number (1-based)
	T     time.Time
	Kind  EventKind
	PID   ids.ProcessID
	Group ids.GroupID
	Round uint64
	A, B  int64
	Note  string
}

// String renders one line of a dump.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s %v %v/%v", e.Seq, e.T.Format("15:04:05.000000"), e.Kind, e.PID, e.Group)
	if e.Round != 0 {
		fmt.Fprintf(&b, " r=%d", e.Round)
	}
	if e.A != 0 || e.B != 0 {
		fmt.Fprintf(&b, " a=%d b=%d", e.A, e.B)
	}
	if e.Note != "" {
		b.WriteString(" ")
		b.WriteString(e.Note)
	}
	return b.String()
}

// Recorder is a bounded ring of recent anomaly events: cheap enough to
// leave on (one short critical section per event), bounded (the ring
// overwrites its oldest entry once full), and dumpable on demand — the
// soak harness snapshots it on the first safety/liveness violation so a
// failing seed arrives with its causal timeline attached.
//
// All methods are safe on a nil *Recorder.
type Recorder struct {
	pid ids.ProcessID

	mu    sync.Mutex
	ring  []Event
	next  int    // ring write position
	total uint64 // events ever recorded (== next Seq)
}

func newRecorder(pid ids.ProcessID, cap_ int) *Recorder {
	return &Recorder{pid: pid, ring: make([]Event, 0, cap_)}
}

// Record appends an event (pid defaulting to the recorder's own).
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	e.T = time.Now()
	r.mu.Lock()
	r.total++
	e.Seq = r.total
	if e.PID == 0 {
		e.PID = r.pid
	}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.next] = e
		r.next = (r.next + 1) % cap(r.ring)
	}
	r.mu.Unlock()
}

// Event is shorthand for Record with the common fields.
func (r *Recorder) Event(k EventKind, g ids.GroupID, round uint64, a, b int64, note string) {
	r.Record(obsEvent(k, g, round, a, b, note))
}

func obsEvent(k EventKind, g ids.GroupID, round uint64, a, b int64, note string) Event {
	return Event{Kind: k, Group: g, Round: round, A: a, B: b, Note: note}
}

// Total returns how many events were ever recorded (>= len(Dump())).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring's capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.ring)
}

// Len returns how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Dump returns the retained events oldest-first.
func (r *Recorder) Dump() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// String renders the whole retained timeline, one event per line.
func (r *Recorder) String() string {
	evs := r.Dump()
	if len(evs) == 0 {
		return "(flight recorder empty)"
	}
	var b strings.Builder
	total := r.Total()
	if total > uint64(len(evs)) {
		fmt.Fprintf(&b, "(%d earlier events overwritten)\n", total-uint64(len(evs)))
	}
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// DumpAll merges several processes' recorders into one Seq-stable,
// time-ordered timeline (the harness's cluster-wide view).
func DumpAll(planes []*Plane) []Event {
	var all []Event
	for _, p := range planes {
		all = append(all, p.Flight().Dump()...)
	}
	// Insertion sort by time is fine at flight-recorder scale.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].T.Before(all[j-1].T); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	return all
}

// FormatDump renders a merged timeline.
func FormatDump(evs []Event) string {
	if len(evs) == 0 {
		return "(flight recorder empty)"
	}
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
