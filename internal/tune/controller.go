package tune

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Controller is the per-process autotuner: one goroutine, epoch-ticked,
// driving every registered Group plus the optional shared Sync target
// through the pure step functions. Construct with New, register targets,
// then Start; Stop joins the goroutine. Start/Stop are idempotent.
type Controller struct {
	opts  Options
	plane *obs.Plane

	mu      sync.Mutex
	groups  []*groupCtl
	syncs   []*syncCtl
	running bool
	stopCh  chan struct{}
	done    chan struct{}

	epochs *obs.Counter // abcast.tune.epochs
	moves  *obs.Counter // abcast.tune.adjustments
}

// groupCtl is the per-group controller state: the previous cumulative
// snapshot (for epoch deltas) and the quorum-latency EWMA baseline.
type groupCtl struct {
	g        Group
	prev     GroupSignals
	havePrev bool
	baseline float64 // EWMA of per-epoch quorum p99 (ns)

	delayG *obs.Gauge // abcast.tune.batch_delay_ns{g}
	depthG *obs.Gauge // abcast.tune.depth{g}
}

// syncCtl is the durability-arbiter state. The controller tracks the
// policy it last applied (the WAL's construction-time policy stands until
// the first decision).
type syncCtl struct {
	s        Sync
	prev     SyncSignals
	havePrev bool
	every    int
	delay    time.Duration
	applied  bool
	idle     int
	active   int // consecutive epochs with records (sustained-stream signal)
	hold     int // growth-cooldown epochs left after an efficiency backoff
	// accRecs/accSyncs accumulate the grouping audit since the last window
	// change; fresh skips the transition epoch whose syncs mix policies.
	accRecs  int64
	accSyncs int64
	fresh    bool
	// recAvg is the EWMA-smoothed per-epoch record rate: the busy tests see
	// a few-epoch average, so one jittery epoch of a thin stream cannot
	// flap the window.
	recAvg float64

	everyG *obs.Gauge // abcast.tune.sync_every
	delayG *obs.Gauge // abcast.tune.sync_delay_ns
}

// New validates opts and builds a controller publishing its decisions to
// plane (nil disables metrics and flight events, not the control loop).
func New(opts Options, plane *obs.Plane) (*Controller, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts.fill()
	reg := plane.Reg()
	return &Controller{
		opts:   opts,
		plane:  plane,
		epochs: reg.Counter("abcast.tune.epochs"),
		moves:  reg.Counter("abcast.tune.adjustments"),
	}, nil
}

// Options returns the validated, default-filled bounds.
func (c *Controller) Options() Options { return c.opts }

// AddGroup registers one ordering group. Safe before or after Start.
func (c *Controller) AddGroup(g Group) {
	reg := c.plane.Reg()
	gc := &groupCtl{
		g:      g,
		delayG: reg.Gauge("abcast.tune.batch_delay_ns{" + g.Name + "}"),
		depthG: reg.Gauge("abcast.tune.depth{" + g.Name + "}"),
	}
	c.mu.Lock()
	c.groups = append(c.groups, gc)
	c.mu.Unlock()
}

// AddSync registers a durability target. A process with one shared WAL
// registers it once — that single target is what arbitrates the sync
// policy across every group writing through it; a per-group-store
// deployment registers each distinct engine. Safe before or after Start.
func (c *Controller) AddSync(s Sync) {
	reg := c.plane.Reg()
	label := ""
	if s.Name != "" {
		label = "{" + s.Name + "}"
	}
	sc := &syncCtl{
		s:      s,
		everyG: reg.Gauge("abcast.tune.sync_every" + label),
		delayG: reg.Gauge("abcast.tune.sync_delay_ns" + label),
	}
	c.mu.Lock()
	c.syncs = append(c.syncs, sc)
	c.mu.Unlock()
}

// Start forks the epoch ticker. Idempotent while running, and restartable
// after Stop — a process's crash/recover cycle maps onto Stop/Start.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		return
	}
	c.running = true
	stop := make(chan struct{})
	done := make(chan struct{})
	c.stopCh, c.done = stop, done
	c.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(c.opts.Epoch)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
}

// Stop halts the ticker and joins the goroutine. Idempotent; a controller
// that was never started stops trivially.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	close(c.stopCh)
	done := c.done
	c.mu.Unlock()
	<-done
}

// Tick runs one epoch step synchronously. The ticker calls it; tests call
// it directly for deterministic trajectories.
func (c *Controller) Tick() {
	c.mu.Lock()
	groups := append([]*groupCtl(nil), c.groups...)
	syncs := append([]*syncCtl(nil), c.syncs...)
	c.mu.Unlock()

	c.epochs.Inc()
	for _, gc := range groups {
		c.tickGroup(gc)
	}
	for _, sc := range syncs {
		c.tickSync(sc)
	}
}

// delta differences cumulative counters with a reset guard: a regression
// (new incarnation, fresh counter set) re-baselines at the current value.
func delta(cur, prev uint64) uint64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

func delta64(cur, prev int64) int64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

const ewmaAlpha = 0.2 // baseline smoothing: ~5-epoch memory

// syncEWMA smooths the per-epoch record deltas fed to StepSync's busy
// tests (~2-3 epochs of memory): thin streams wobble epoch to epoch, and
// the raw deltas would flap the group-commit window.
const syncEWMA = 0.4

// syncGrowCooldown is how many epochs an efficiency backoff suppresses
// amortization growth. A closed-loop serial writer trips the busy test
// (its record rate rebounds the moment the window shrinks), so without a
// cooldown the policy would re-probe every epoch and tax one round in
// three with a full sync delay; with it the tax is one round in ~17.
const syncGrowCooldown = 16

func (c *Controller) tickGroup(gc *groupCtl) {
	sig, ok := gc.g.Signals()
	if !ok {
		gc.havePrev = false // process down: re-baseline on recovery
		return
	}
	if !gc.havePrev {
		gc.prev, gc.havePrev = sig, true
		gc.delayG.Set(int64(sig.BatchDelay))
		gc.depthG.Set(int64(sig.Depth))
		return
	}

	be := BatchEpoch{
		Proposals:  delta(sig.Proposals, gc.prev.Proposals),
		Messages:   delta(sig.Messages, gc.prev.Messages),
		FullSeals:  delta(sig.FullSeals, gc.prev.FullSeals),
		TimerSeals: delta(sig.TimerSeals, gc.prev.TimerSeals),
		Backlog:    sig.Backlog,
	}
	qEpoch := sig.Quorum.Delta(gc.prev.Quorum)
	gc.prev = sig

	de := DepthEpoch{
		Proposals: be.Proposals,
		Backlog:   sig.Backlog,
		InFlight:  sig.InFlight,
		QuorumP99: 0,
		Baseline:  gc.baseline,
	}
	if qEpoch.Count > 0 {
		de.QuorumP99 = qEpoch.Quantile(0.99)
	}

	d := StepBatchDelay(sig.BatchDelay, c.opts.BatchDelayMin, c.opts.BatchDelayMax, be)
	if d != sig.BatchDelay {
		gc.g.SetBatchDelay(d)
		c.record(gc.g.Name+"/batch_delay", int64(sig.BatchDelay), int64(d))
	}
	gc.delayG.Set(int64(d))

	if nd := StepDepth(sig.Depth, c.opts.DepthMin, c.opts.DepthMax, de); nd != sig.Depth {
		gc.g.SetDepth(nd)
		c.record(gc.g.Name+"/depth", int64(sig.Depth), int64(nd))
		gc.depthG.Set(int64(nd))
	} else {
		gc.depthG.Set(int64(sig.Depth))
	}

	// Update the baseline after the decision: the inflation test compares
	// this epoch against the past, then this epoch joins the past.
	if de.QuorumP99 > 0 {
		if gc.baseline == 0 {
			gc.baseline = float64(de.QuorumP99)
		} else {
			gc.baseline = (1-ewmaAlpha)*gc.baseline + ewmaAlpha*float64(de.QuorumP99)
		}
	}
}

func (c *Controller) tickSync(sc *syncCtl) {
	sig, ok := sc.s.Signals()
	if !ok {
		sc.havePrev = false
		sc.recAvg = 0 // crash: the old rate is stale
		sc.accRecs, sc.accSyncs, sc.fresh = 0, 0, false
		return
	}
	if !sc.havePrev {
		sc.prev, sc.havePrev = sig, true
		if !sc.applied {
			// Start amortization from the cap: the first busy epoch keeps
			// it, the first idle ones collapse it.
			sc.every, sc.delay = c.opts.SyncEveryMax, c.opts.SyncDelayMax
		}
		return
	}

	recs := delta64(sig.Records, sc.prev.Records)
	syncs := delta64(sig.Syncs, sc.prev.Syncs)
	sc.recAvg = (1-syncEWMA)*sc.recAvg + syncEWMA*float64(recs)
	// The grouping audit: accumulate raw deltas under an unchanged window
	// (the transition epoch is skipped — its syncs mix two policies) and
	// hold the verdict until effAudit records make the sample meaningful.
	// A clean verdict restarts the audit.
	ineffective := false
	if sc.every > 1 || sc.delay > 0 {
		if sc.fresh {
			sc.fresh = false
			sc.accRecs, sc.accSyncs = 0, 0
		} else {
			sc.accRecs += recs
			sc.accSyncs += syncs
			if sc.accRecs >= effAudit {
				ineffective = sc.accSyncs > 0 && sc.accRecs < effTarget*sc.accSyncs
				if !ineffective {
					sc.accRecs, sc.accSyncs = 0, 0
				}
			}
		}
	} else {
		sc.accRecs, sc.accSyncs = 0, 0
	}
	se := SyncEpoch{
		Records:     sc.recAvg,
		Epoch:       c.opts.Epoch,
		Ineffective: ineffective,
		GrowHold:    sc.hold > 0,
	}
	if p := sig.Persist.Delta(sc.prev.Persist); p.Count > 0 {
		se.PersistP99 = p.Quantile(0.99)
	}
	sc.prev = sig
	if recs == 0 {
		sc.idle++
	} else {
		sc.idle = 0
	}
	// The active streak follows the smoothed rate, not the raw epoch: a
	// single stalled epoch inside a steady stream must not reset the
	// sustained-stream signal (the decay it triggers costs several epochs
	// of prompt syncs); genuine fade drains the EWMA and breaks the streak.
	if sc.recAvg >= 1 {
		sc.active++
	} else {
		sc.active = 0
	}
	se.IdleEpochs = sc.idle
	se.ActiveEpochs = sc.active
	if sc.hold > 0 {
		sc.hold--
	}

	every, delay, backoff := StepSync(sc.every, sc.delay, c.opts.SyncEveryMax, c.opts.SyncDelayMax, se)
	if backoff {
		sc.hold = syncGrowCooldown
	}
	if !sc.applied || every != sc.every || delay != sc.delay {
		prevEvery := sc.every
		sc.every, sc.delay, sc.applied = every, delay, true
		sc.fresh = true // new window: the old audit sample is void
		sc.s.Apply(every, delay)
		c.record("sync_policy", int64(prevEvery), int64(every))
	}
	sc.everyG.Set(int64(sc.every))
	sc.delayG.Set(int64(sc.delay))
}

// record counts one knob move and drops it in the flight recorder.
func (c *Controller) record(knob string, old, new_ int64) {
	c.moves.Inc()
	c.plane.Flight().Event(obs.EvTune, 0, 0, old, new_, knob)
}
