package tune

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestValidateRejectsBadBounds(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want string
	}{
		{"negative epoch", Options{Epoch: -time.Millisecond}, "Epoch"},
		{"negative batch delay min", Options{BatchDelayMin: -1}, "BatchDelayMin"},
		{"negative batch delay max", Options{BatchDelayMax: -1}, "BatchDelayMax"},
		{"batch min over max", Options{BatchDelayMin: 2 * time.Millisecond, BatchDelayMax: time.Millisecond}, "BatchDelayMin"},
		{"negative depth min", Options{DepthMin: -1}, "DepthMin"},
		{"negative depth max", Options{DepthMax: -2}, "DepthMax"},
		{"depth min over max", Options{DepthMin: 8, DepthMax: 2}, "DepthMin 8 > DepthMax 2"},
		{"negative sync every max", Options{SyncEveryMax: -1}, "SyncEveryMax"},
		{"negative sync delay max", Options{SyncDelayMax: -1}, "SyncDelayMax"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.o.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) = nil, want error mentioning %q", c.o, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate error %q does not mention %q", err, c.want)
			}
			if _, err := New(c.o, nil); err == nil {
				t.Fatalf("New accepted invalid options %+v", c.o)
			}
		})
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero Options rejected: %v", err)
	}
}

func TestOptionsFillDefaults(t *testing.T) {
	c, err := New(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	o := c.Options()
	if o.Epoch != DefaultEpoch || o.BatchDelayMax != DefaultBatchDelayMax ||
		o.DepthMin != 1 || o.DepthMax != DefaultDepthMax ||
		o.SyncEveryMax != DefaultSyncEveryMax || o.SyncDelayMax != DefaultSyncDelayMax {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestStepBatchDelayMonotoneAndBounded(t *testing.T) {
	const min, max = 0, 2 * time.Millisecond
	trickle := BatchEpoch{Proposals: 2, Messages: 2, TimerSeals: 2}
	burst := BatchEpoch{Proposals: 10, Messages: 300, FullSeals: 9, TimerSeals: 1}
	idle := BatchEpoch{}

	// Trickle grows, never past max; repeated application reaches max and
	// then holds (fixed point — no oscillation).
	d := time.Duration(0)
	var last time.Duration = -1
	for i := 0; i < 100; i++ {
		nd := StepBatchDelay(d, min, max, trickle)
		if nd < d {
			t.Fatalf("trickle shrank the delay: %v -> %v", d, nd)
		}
		if nd > max {
			t.Fatalf("delay exceeded max: %v", nd)
		}
		last, d = d, nd
	}
	if d != max || last != max {
		t.Fatalf("trickle did not converge to max: %v (prev %v)", d, last)
	}

	// Burst (full seals dominate) shrinks monotonically to min and holds.
	for i := 0; i < 100; i++ {
		nd := StepBatchDelay(d, min, max, burst)
		if nd > d {
			t.Fatalf("burst grew the delay: %v -> %v", d, nd)
		}
		d = nd
	}
	if d != min {
		t.Fatalf("burst did not converge to min: %v", d)
	}

	// Idle from anywhere decays to min.
	d = max
	for i := 0; i < 100; i++ {
		d = StepBatchDelay(d, min, max, idle)
	}
	if d != min {
		t.Fatalf("idle did not decay to min: %v", d)
	}

	// A deep backlog forces shrink even when seals look trickle-ish.
	got := StepBatchDelay(max, min, max, BatchEpoch{Proposals: 1, Messages: 1, TimerSeals: 1, Backlog: drainBacklog + 1})
	if got >= max {
		t.Fatalf("backlog did not shrink the delay: %v", got)
	}
}

func TestStepDepthSaturationAndInflation(t *testing.T) {
	const min, max = 1, 8

	// Saturated window with backlog doubles until max, then holds.
	d := 1
	for i := 0; i < 10; i++ {
		nd := StepDepth(d, min, max, DepthEpoch{Proposals: 5, Backlog: 100, InFlight: d})
		if nd < d {
			t.Fatalf("saturation shrank depth %d -> %d", d, nd)
		}
		if nd > max {
			t.Fatalf("depth exceeded max: %d", nd)
		}
		d = nd
	}
	if d != max {
		t.Fatalf("saturation did not converge to max: %d", d)
	}

	// Quorum inflation halves even while saturated (congestion wins).
	nd := StepDepth(d, min, max, DepthEpoch{Proposals: 5, Backlog: 100, InFlight: d, QuorumP99: 10_000_000, Baseline: 1_000_000})
	if nd >= d {
		t.Fatalf("inflation did not shrink depth: %d -> %d", d, nd)
	}

	// Idle decays one step per epoch to min.
	d = max
	for i := 0; i < max+2; i++ {
		d = StepDepth(d, min, max, DepthEpoch{})
	}
	if d != min {
		t.Fatalf("idle did not decay to min: %d", d)
	}

	// Non-saturated steady load holds (fixed point).
	if got := StepDepth(4, min, max, DepthEpoch{Proposals: 5, Backlog: 0, InFlight: 2}); got != 4 {
		t.Fatalf("steady load moved depth: 4 -> %d", got)
	}
}

func TestStepDepthBaselineDampsOscillation(t *testing.T) {
	// A persistent latency level must stop triggering shrink once the
	// baseline absorbs it: simulate the controller's EWMA update and check
	// the depth stops moving.
	const min, max = 1, 8
	depth := 8
	baseline := 1_000_000.0 // 1ms history
	p99 := int64(5_000_000) // new persistent level: 5ms
	changes := 0
	prev := depth
	for i := 0; i < 50; i++ {
		depth = StepDepth(depth, min, max, DepthEpoch{Proposals: 5, QuorumP99: p99, Baseline: baseline})
		if depth != prev {
			changes++
			prev = depth
		}
		baseline = (1-ewmaAlpha)*baseline + ewmaAlpha*float64(p99)
	}
	if changes > 4 {
		t.Fatalf("depth kept oscillating under a steady signal: %d changes", changes)
	}
	if depth < min || depth > max {
		t.Fatalf("depth out of bounds: %d", depth)
	}
}

func TestStepSyncAmortizeAndCollapse(t *testing.T) {
	const maxEvery = 64
	const maxDelay = 2 * time.Millisecond
	epoch := 10 * time.Millisecond

	// Busy epochs (measured fsync cost dominates) double toward the cap.
	every, delay := 1, time.Duration(0)
	for i := 0; i < 20; i++ {
		ne, nd, _ := StepSync(every, delay, maxEvery, maxDelay, SyncEpoch{Records: 100, PersistP99: 1_000_000, Epoch: epoch})
		if ne < every || nd < delay {
			t.Fatalf("busy epoch reduced amortization: (%d,%v) -> (%d,%v)", every, delay, ne, nd)
		}
		if ne > maxEvery || nd > maxDelay {
			t.Fatalf("policy exceeded caps: (%d,%v)", ne, nd)
		}
		every, delay = ne, nd
	}
	if every != maxEvery || delay != maxDelay {
		t.Fatalf("busy epochs did not converge to caps: (%d,%v)", every, delay)
	}

	// One idle epoch only decays; the second collapses to sync-on-write.
	every, delay, _ = StepSync(every, delay, maxEvery, maxDelay, SyncEpoch{IdleEpochs: 1, Epoch: epoch})
	if every == 1 && delay == 0 {
		t.Fatalf("collapsed after a single idle epoch (no hysteresis)")
	}
	every, delay, _ = StepSync(every, delay, maxEvery, maxDelay, SyncEpoch{IdleEpochs: 2, Epoch: epoch})
	if every != 1 || delay != 0 {
		t.Fatalf("did not collapse to sync-on-write: (%d,%v)", every, delay)
	}

	// No latency signal: the record-rate fallback still amortizes.
	ne, _, _ := StepSync(1, 0, maxEvery, maxDelay, SyncEpoch{Records: 50, Epoch: epoch})
	if ne <= 1 {
		t.Fatalf("record-rate fallback did not amortize: %d", ne)
	}
}

// TestStepSyncEfficiencyBackoff: a closed-loop serial writer (one record
// per fsync) defeats amortization — the window is a pure latency tax, so
// a failed grouping audit collapses the policy and reports it; while the
// controller's cooldown (GrowHold) is pending, a busy signal holds instead
// of re-probing.
func TestStepSyncEfficiencyBackoff(t *testing.T) {
	const maxEvery = 64
	const maxDelay = 2 * time.Millisecond
	epoch := 2 * time.Millisecond

	// A failed grouping audit under an amortizing policy collapses it.
	every, delay, backoff := StepSync(8, maxDelay, maxEvery, maxDelay, SyncEpoch{Records: 6, Ineffective: true, Epoch: epoch})
	if !backoff {
		t.Fatalf("failed audit under (8,%v) did not report a backoff", maxDelay)
	}
	if every != 1 || delay != 0 {
		t.Fatalf("backoff did not collapse the policy: (%d,%v)", every, delay)
	}

	// Without an audit verdict the window survives a busy stream.
	if _, _, b := StepSync(8, maxDelay, maxEvery, maxDelay, SyncEpoch{Records: 6, ActiveEpochs: 5, Epoch: epoch}); b {
		t.Fatal("clean audit reported a backoff")
	}

	// During the cooldown a busy epoch holds rather than growing.
	ne, nd, _ := StepSync(1, 0, maxEvery, maxDelay, SyncEpoch{Records: 20, Epoch: epoch, GrowHold: true})
	if ne != 1 || nd != 0 {
		t.Fatalf("busy epoch grew during cooldown: (%d,%v)", ne, nd)
	}
	// Without the hold the same epoch probes amortization again.
	if ne, _, _ = StepSync(1, 0, maxEvery, maxDelay, SyncEpoch{Records: 20, Epoch: epoch}); ne <= 1 {
		t.Fatalf("busy epoch after cooldown did not re-probe: %d", ne)
	}
}

// TestControllerSerialWriterBackoff drives the end-to-end inefficiency
// path: concurrent load amortizes the policy to the cap, then a serial
// writer (records == syncs, epoch after epoch) collapses it back to
// sync-on-write, and the growth cooldown keeps busy-looking epochs from
// re-probing immediately.
func TestControllerSerialWriterBackoff(t *testing.T) {
	c, err := New(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ssig := SyncSignals{}
	var applied [][2]int64
	c.AddSync(Sync{
		Signals: func() (SyncSignals, bool) { return ssig, true },
		Apply: func(e int, d time.Duration) {
			applied = append(applied, [2]int64{int64(e), int64(d)})
		},
	})

	c.Tick() // baseline
	// Concurrent producers: many records, few syncs — grows to the cap.
	for i := 0; i < 8; i++ {
		ssig.Records += 100
		ssig.Syncs += 2
		c.Tick()
	}
	if len(applied) == 0 || applied[len(applied)-1][0] != DefaultSyncEveryMax {
		t.Fatalf("concurrent load did not reach the cap: %v", applied)
	}

	// Serial writer: every record pays its own fsync. Once the audit
	// sample fills, the policy must collapse to (1, 0).
	for i := 0; i < 6; i++ {
		ssig.Records += 6
		ssig.Syncs += 6
		c.Tick()
	}
	if got := applied[len(applied)-1]; got[0] != 1 || got[1] != 0 {
		t.Fatalf("serial writer did not collapse the policy: %v", applied)
	}

	// Cooldown: busy-looking serial epochs must not re-grow the window.
	n := len(applied)
	for i := 0; i < 5; i++ {
		ssig.Records += 20
		ssig.Syncs += 20
		c.Tick()
	}
	if len(applied) != n {
		t.Fatalf("policy re-probed during the growth cooldown: %v", applied[n:])
	}
}

// TestControllerTickDrivesTargets drives a controller through synthetic
// epochs end to end: signals in, knob callbacks out, metrics + flight
// events published.
func TestControllerTickDrivesTargets(t *testing.T) {
	plane := obs.New(obs.Options{PID: 0})
	c, err := New(Options{BatchDelayMax: 2 * time.Millisecond, DepthMax: 8}, plane)
	if err != nil {
		t.Fatal(err)
	}

	sig := GroupSignals{Depth: 1, BatchDelay: 0}
	var setDelay []time.Duration
	var setDepth []int
	c.AddGroup(Group{
		Name:    "g0",
		Signals: func() (GroupSignals, bool) { return sig, true },
		SetBatchDelay: func(d time.Duration) {
			setDelay = append(setDelay, d)
			sig.BatchDelay = d
		},
		SetDepth: func(d int) {
			setDepth = append(setDepth, d)
			sig.Depth = d
		},
	})

	ssig := SyncSignals{}
	var applied [][2]int64
	c.AddSync(Sync{
		Signals: func() (SyncSignals, bool) { return ssig, true },
		Apply: func(e int, d time.Duration) {
			applied = append(applied, [2]int64{int64(e), int64(d)})
		},
	})

	// Epoch 0 baselines. Then trickle epochs: 2 concurrent proposals of 1
	// message each per epoch, sealed by timer — batch delay must grow;
	// pipeline saturated with backlog — depth must grow; records flowing —
	// sync amortizes.
	c.Tick()
	for i := 0; i < 30; i++ {
		sig.Proposals += 2
		sig.Messages += 2
		sig.TimerSeals += 2
		sig.Backlog = 10
		sig.InFlight = sig.Depth
		ssig.Records += 100
		c.Tick()
	}
	if len(setDelay) == 0 || setDelay[len(setDelay)-1] == 0 {
		t.Fatalf("trickle did not grow the batch delay: %v", setDelay)
	}
	if len(setDepth) == 0 || sig.Depth != 8 {
		t.Fatalf("saturation did not deepen the pipeline: depth %d (%v)", sig.Depth, setDepth)
	}
	if len(applied) == 0 || applied[len(applied)-1][0] != DefaultSyncEveryMax {
		t.Fatalf("load did not amortize the sync policy: %v", applied)
	}

	// Idle epochs: everything decays — delay to 0, depth to 1, sync to
	// sync-on-write.
	sig.Backlog, sig.InFlight = 0, 0
	for i := 0; i < 30; i++ {
		c.Tick()
	}
	if sig.BatchDelay != 0 || sig.Depth != 1 {
		t.Fatalf("idle did not decay knobs: delay %v depth %d", sig.BatchDelay, sig.Depth)
	}
	if got := applied[len(applied)-1]; got[0] != 1 || got[1] != 0 {
		t.Fatalf("idle did not collapse sync policy: %v", got)
	}

	// Decisions are observable: adjustment counter moved and EvTune events
	// landed in the flight recorder.
	var adj int64
	plane.Reg().Each(func(name string, v int64, counter bool) {
		if name == "abcast.tune.adjustments" {
			adj = v
		}
	})
	if adj == 0 {
		t.Fatalf("no abcast.tune.adjustments recorded")
	}
	tuneEvents := 0
	for _, e := range plane.Flight().Dump() {
		if e.Kind == obs.EvTune {
			tuneEvents++
		}
	}
	if tuneEvents == 0 {
		t.Fatalf("no EvTune flight events recorded")
	}
}

// TestControllerSurvivesCounterReset models a crash/recovery: cumulative
// counters jump backwards. The controller must re-baseline, not compute
// huge bogus deltas that slam knobs around.
func TestControllerSurvivesCounterReset(t *testing.T) {
	c, err := New(Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sig := GroupSignals{Proposals: 1000, Messages: 50000, FullSeals: 900, TimerSeals: 100, Depth: 4, BatchDelay: time.Millisecond}
	down := false
	c.AddGroup(Group{
		Name:          "g0",
		Signals:       func() (GroupSignals, bool) { return sig, !down },
		SetBatchDelay: func(d time.Duration) { sig.BatchDelay = d },
		SetDepth:      func(d int) { sig.Depth = d },
	})
	c.Tick() // baseline
	c.Tick()

	// Crash: signals unavailable, then restart with reset counters.
	down = true
	c.Tick()
	down = false
	sig.Proposals, sig.Messages, sig.FullSeals, sig.TimerSeals = 2, 2, 0, 2
	before := sig.BatchDelay
	c.Tick() // must re-baseline (no delta computed this epoch)
	if sig.BatchDelay != before {
		t.Fatalf("controller acted on a reset epoch: delay %v -> %v", before, sig.BatchDelay)
	}

	// Even without the ok=false gap, a raw counter regression re-baselines
	// via the delta guard instead of wrapping.
	sig2 := GroupSignals{Proposals: 1 << 60, Depth: 1}
	c2, _ := New(Options{}, nil)
	moved := false
	c2.AddGroup(Group{
		Name:          "g1",
		Signals:       func() (GroupSignals, bool) { return sig2, true },
		SetBatchDelay: func(time.Duration) { moved = true },
		SetDepth:      func(int) {},
	})
	c2.Tick()
	sig2.Proposals = 3 // reset
	sig2.TimerSeals = 2
	sig2.Messages = 2
	c2.Tick()
	_ = moved // a move is fine; what matters is deltas stayed sane
	if got := delta(3, 1<<60); got != 3 {
		t.Fatalf("delta reset guard broken: %d", got)
	}
}

func TestControllerStartStopIdempotent(t *testing.T) {
	c, err := New(Options{Epoch: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.AddGroup(Group{
		Name:          "g0",
		Signals:       func() (GroupSignals, bool) { return GroupSignals{Depth: 1}, true },
		SetBatchDelay: func(time.Duration) {},
		SetDepth:      func(int) {},
	})
	c.Start()
	c.Start()
	time.Sleep(5 * time.Millisecond)
	c.Stop()
	c.Stop()
	c.Start() // restartable: crash/recover maps onto Stop/Start
	c.Stop()

	// A controller that was never started must also stop cleanly.
	c2, _ := New(Options{}, nil)
	c2.Stop()
}
