// Package tune closes the loop between the observability plane and the
// stack's hot-path knobs. A Controller is a per-process epoch-ticked
// gradient/AIMD regulator: every epoch it snapshots cheap cumulative
// signals from each ordering group (batch seal causes, pipeline occupancy,
// backlog, quorum latency) and from the shared durability engine
// (records/sync, fsync latency), differences them against the previous
// epoch, and nudges three knobs —
//
//   - the adaptive-batching window (core.Protocol.SetBatchDelay): shrink
//     when batches seal full before the timer (the delay is slack) or when
//     a backlog must drain, grow toward the cap under trickle load so tiny
//     batches aggregate;
//   - the pipeline window (core.Protocol.SetPipelineDepth): deepen
//     multiplicatively while the window is saturated and a backlog waits,
//     shrink when quorum latency inflates against its moving baseline
//     (the classic AIMD congestion response), decay toward the floor when
//     idle;
//   - the WAL group-commit policy (storage.WAL.SetGroupCommit): amortize
//     harder (larger SyncEvery, longer MaxSyncDelay) while the record rate
//     makes batching fsyncs worthwhile, back off (with a growth cooldown)
//     when the achieved records-per-sync shows the window holds serial
//     writers hostage without batching anything, and collapse toward
//     sync-on-write after consecutive idle epochs so a lone request pays
//     one prompt fsync instead of a full amortization window.
//
// One controller serves a whole process: all groups of a sharded process
// feed the same instance, and the single durability target arbitrates the
// shared WAL's policy across them (the WAL's counters are process-wide, so
// "any group busy" keeps amortization on). The controller runs exactly one
// goroutine regardless of group count, never touches a hot path except
// through the lock-light Set* entry points, and exports every decision as
// abcast.tune.* metrics plus EvTune flight-recorder events.
//
// The step functions (StepBatchDelay, StepDepth, StepSync) are pure:
// current value + epoch observation in, new value out. The controller owns
// only the epoch differencing and the EWMA/debounce bookkeeping around
// them (quorum baseline, smoothed record rate, inefficiency streak).
package tune

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// Options bounds the controller. The zero value of any field selects its
// default; explicit negative values (and inverted min/max pairs) are
// rejected by Validate rather than silently clamped.
type Options struct {
	// Epoch is the controller tick period (default 10ms). Each epoch takes
	// one gradient step, so convergence time is a few dozen epochs.
	Epoch time.Duration

	// BatchDelayMin/Max bound the adaptive-batching window (defaults 0 and
	// 2ms). Static MaxBatchDelay becomes the initial value.
	BatchDelayMin time.Duration
	BatchDelayMax time.Duration

	// DepthMin/Max bound the live pipeline window (defaults 1 and 8). The
	// stack additionally clamps DepthMax to the consensus learner's
	// ask-ahead span (consensus.DecideWindow).
	DepthMin int
	DepthMax int

	// SyncEveryMax / SyncDelayMax bound how hard the WAL group commit may
	// amortize (defaults 64 and 2ms). The floor is always sync-on-write
	// (SyncEvery 1, MaxSyncDelay 0).
	SyncEveryMax int
	SyncDelayMax time.Duration
}

// Defaults for zero-valued Options fields.
const (
	DefaultEpoch         = 10 * time.Millisecond
	DefaultBatchDelayMax = 2 * time.Millisecond
	DefaultDepthMax      = 8
	DefaultSyncEveryMax  = 64
	DefaultSyncDelayMax  = 2 * time.Millisecond
)

// Validate rejects nonsensical bounds with explicit errors. It does not
// mutate o; fill() applies defaults afterwards.
func (o Options) Validate() error {
	var errs []error
	if o.Epoch < 0 {
		errs = append(errs, fmt.Errorf("tune: negative Epoch %v", o.Epoch))
	}
	if o.BatchDelayMin < 0 {
		errs = append(errs, fmt.Errorf("tune: negative BatchDelayMin %v", o.BatchDelayMin))
	}
	if o.BatchDelayMax < 0 {
		errs = append(errs, fmt.Errorf("tune: negative BatchDelayMax %v", o.BatchDelayMax))
	}
	if o.BatchDelayMax > 0 && o.BatchDelayMin > o.BatchDelayMax {
		errs = append(errs, fmt.Errorf("tune: BatchDelayMin %v > BatchDelayMax %v", o.BatchDelayMin, o.BatchDelayMax))
	}
	if o.DepthMin < 0 {
		errs = append(errs, fmt.Errorf("tune: negative DepthMin %d", o.DepthMin))
	}
	if o.DepthMax < 0 {
		errs = append(errs, fmt.Errorf("tune: negative DepthMax %d", o.DepthMax))
	}
	if o.DepthMax > 0 && o.DepthMin > o.DepthMax {
		errs = append(errs, fmt.Errorf("tune: DepthMin %d > DepthMax %d", o.DepthMin, o.DepthMax))
	}
	if o.SyncEveryMax < 0 {
		errs = append(errs, fmt.Errorf("tune: negative SyncEveryMax %d", o.SyncEveryMax))
	}
	if o.SyncDelayMax < 0 {
		errs = append(errs, fmt.Errorf("tune: negative SyncDelayMax %v", o.SyncDelayMax))
	}
	return errors.Join(errs...)
}

// Filled returns o with the defaults applied to zero fields — the bounds
// a controller built from o will actually run with.
func (o Options) Filled() Options {
	o.fill()
	return o
}

// fill applies defaults to zero fields (after Validate accepted them).
func (o *Options) fill() {
	if o.Epoch == 0 {
		o.Epoch = DefaultEpoch
	}
	if o.BatchDelayMax == 0 {
		o.BatchDelayMax = DefaultBatchDelayMax
	}
	if o.BatchDelayMax < o.BatchDelayMin {
		o.BatchDelayMax = o.BatchDelayMin
	}
	if o.DepthMin == 0 {
		o.DepthMin = 1
	}
	if o.DepthMax == 0 {
		o.DepthMax = DefaultDepthMax
	}
	if o.DepthMax < o.DepthMin {
		o.DepthMax = o.DepthMin
	}
	if o.SyncEveryMax == 0 {
		o.SyncEveryMax = DefaultSyncEveryMax
	}
	if o.SyncEveryMax < 1 {
		o.SyncEveryMax = 1
	}
	if o.SyncDelayMax == 0 {
		o.SyncDelayMax = DefaultSyncDelayMax
	}
}

// GroupSignals is one epoch snapshot of an ordering group. Counter fields
// are cumulative (for the incarnation or the process — the controller
// differences successive reads and survives resets); the rest are
// instantaneous.
type GroupSignals struct {
	Proposals  uint64
	Messages   uint64
	FullSeals  uint64
	TimerSeals uint64
	Delivered  uint64

	Backlog  int
	InFlight int
	TentOut  int

	Depth      int
	BatchDelay time.Duration

	// Quorum is the cumulative propose → accept-quorum histogram.
	Quorum obs.HistSnapshot
}

// Group is one ordering group under control. Signals returns ok=false when
// the group is temporarily unobservable (process down, incarnation being
// rebuilt); the controller skips the epoch and re-baselines on the next
// good read. The Set callbacks must tolerate being called at any time.
type Group struct {
	// Name labels this group's abcast.tune.* metrics (e.g. "g0").
	Name          string
	Signals       func() (GroupSignals, bool)
	SetBatchDelay func(time.Duration)
	SetDepth      func(int)
}

// SyncSignals is one epoch snapshot of the shared durability engine.
type SyncSignals struct {
	Records int64 // cumulative records written
	Syncs   int64 // cumulative fsyncs issued
	// Persist is the cumulative fsync-latency histogram (zero Count when
	// the engine is not wired to a plane — the controller falls back to a
	// record-rate heuristic).
	Persist obs.HistSnapshot
}

// Sync is the durability policy under control — typically one WAL shared
// by every group of the process, which is exactly why a process has one
// controller: a single arbiter sets one policy from the aggregate load.
type Sync struct {
	// Name labels this target's abcast.tune.sync_* metrics; empty is fine
	// for the common single shared engine.
	Name    string
	Signals func() (SyncSignals, bool)
	Apply   func(syncEvery int, maxSyncDelay time.Duration)
}
