package tune

import "time"

// The step functions are the controller's whole policy, kept pure so unit
// tests can drive them through synthetic epochs: (current knob, bounds,
// one epoch's observation) in, new knob out. Each is a textbook AIMD
// shape — multiplicative moves away from a bad operating point, additive
// (or geometric-decay) moves toward a better one — so for any steady
// observation the iteration has a fixed point and cannot oscillate.

// BatchEpoch is one epoch's batching observation (deltas, not cumulative).
type BatchEpoch struct {
	Proposals  uint64 // proposals submitted this epoch
	Messages   uint64 // messages across them
	FullSeals  uint64 // sealed by a size cap
	TimerSeals uint64 // sealed non-full
	Backlog    int    // instantaneous ordering backlog
}

// aggTarget is the mean batch size below which a trickle is worth
// aggregating: timer-sealed batches smaller than this pull the delay up.
const aggTarget = 4

// drainBacklog is the ordering-backlog size past which holding batches
// back is counterproductive regardless of seal causes: drain first.
const drainBacklog = 64

// StepBatchDelay moves the adaptive-batching window one epoch.
//
//   - Idle (no proposals, no backlog): geometric decay toward min, so the
//     next lone request is not taxed by a window grown for past load.
//   - Full seals dominate, or a backlog is waiting: multiplicative
//     decrease — batches fill (or work queues) without the timer's help,
//     the delay only adds latency.
//   - Timer seals dominate with small batches (trickle): additive
//     increase toward max, aggregating more messages per consensus round.
//     Growth needs at least two proposals in the epoch — aggregation
//     merges concurrent proposals, so a lone closed-loop request per
//     epoch has nothing to merge with and a window would be pure latency.
//   - Otherwise hold.
func StepBatchDelay(cur, min, max time.Duration, e BatchEpoch) time.Duration {
	switch {
	case e.Proposals == 0 && e.Backlog == 0:
		cur /= 2
	case e.FullSeals >= e.TimerSeals && e.FullSeals > 0,
		e.Backlog > drainBacklog:
		cur /= 2
	case e.TimerSeals > 0 && e.Proposals >= 2 && e.Messages < aggTarget*e.Proposals:
		cur += max / 8
	}
	return clampDur(cur, min, max)
}

// DepthEpoch is one epoch's pipeline observation.
type DepthEpoch struct {
	Proposals uint64 // proposals submitted this epoch
	Backlog   int    // instantaneous ordering backlog
	InFlight  int    // rounds proposed, decision pending
	// QuorumP99 is this epoch's propose → accept-quorum p99 in ns (0 when
	// no rounds decided this epoch); Baseline is the controller's EWMA of
	// past epochs' p99.
	QuorumP99 int64
	Baseline  float64
}

// quorumInflation is the multiplicative headroom over the EWMA baseline
// past which deepening is judged to be hurting coordination latency.
const quorumInflation = 2.0

// StepDepth moves the live pipeline window one epoch.
//
//   - Quorum latency inflated ≥2x over its moving baseline: multiplicative
//     decrease — extra in-flight rounds are queueing, not overlapping.
//   - Window saturated (in-flight fills the depth) with a backlog still
//     waiting: multiplicative increase — more overlap drains it faster.
//   - Idle: additive decay toward min, one step per epoch.
//   - Otherwise hold.
//
// The EWMA baseline supplies the damping: a persistent load change pulls
// the baseline along until the inflation test stops firing, so the depth
// settles instead of sawtoothing.
func StepDepth(cur, min, max int, e DepthEpoch) int {
	switch {
	case e.QuorumP99 > 0 && e.Baseline > 0 && float64(e.QuorumP99) > quorumInflation*e.Baseline && cur > min:
		cur /= 2
	case e.InFlight >= cur && e.Backlog > 0:
		cur *= 2
	case e.Proposals == 0 && e.Backlog == 0:
		cur--
	}
	return clampInt(cur, min, max)
}

// SyncEpoch is one epoch's durability observation. Records is an
// EWMA-smoothed per-epoch rate — the controller smooths the raw deltas so
// one jittery epoch of a thin stream (a follower's round records) cannot
// flap the policy; a synthetic test may feed raw counts.
type SyncEpoch struct {
	Records float64 // records written per epoch (smoothed)
	// PersistP99 is this epoch's fsync p99 in ns (0 = no latency signal).
	PersistP99 int64
	Epoch      time.Duration // the epoch length (rate denominator)
	IdleEpochs int           // consecutive epochs with zero records, this one included
	// ActiveEpochs is the consecutive epochs whose smoothed record rate
	// stayed at or above one record per epoch, this one included (0 when
	// the rate has drained below that).
	ActiveEpochs int
	// Ineffective reports the controller's grouping audit: records and
	// syncs accumulated since the last window change (skipping the mixed
	// transition epoch) reached a sample of effAudit records whose
	// records-per-sync is below effTarget. Auditing an accumulated sample
	// instead of single epochs keeps thin streams — a follower's two
	// records per epoch, where one sync of timing skew flips the ratio —
	// from reading as serial writers.
	Ineffective bool
	// GrowHold suppresses amortization growth: the controller sets it for a
	// cooldown after an efficiency backoff, so a serial writer that defeats
	// amortization is not re-probed every epoch.
	GrowHold bool
}

// idleCollapse is how many consecutive idle epochs collapse the policy to
// sync-on-write: one quiet epoch may be a scheduling hiccup, two is idle.
const idleCollapse = 2

// effTarget is the minimum records-per-sync an amortizing policy must
// achieve to keep its window: below it the delay holds single records
// hostage without batching anything (a closed-loop serial writer), so the
// policy is a pure latency tax and backs off.
const effTarget = 2

// sustainEpochs is how many consecutive active epochs mark a stream as
// sustained: a thin but continuous record stream (a trickle) benefits from
// grouping even when no single epoch looks busy, while gapped traffic
// (closed-loop callers pausing between requests) never strings this many
// active epochs together and keeps the prompt-sync default.
const sustainEpochs = 3

// effAudit is the record-sample size of the grouping audit: the
// controller withholds the inefficiency verdict until this many records
// have been written under an unchanged window, so the verdict reflects
// the window's real grouping, not one epoch's timing.
const effAudit = 16

// StepSync moves the group-commit policy one epoch. The third return
// reports an efficiency backoff — the controller starts a growth cooldown
// on it (see SyncEpoch.GrowHold).
//
//   - Idle for idleCollapse epochs with the smoothed rate drained too:
//     collapse to sync-on-write (1, 0) so a lone request after the quiet
//     period pays one prompt fsync. The smoothed-rate guard keeps one
//     scheduler stall under continuous load (two quiet epochs, but a rate
//     history that says traffic) from cliff-dropping the window; genuine
//     idle drains the EWMA within a few epochs and then collapses.
//   - Audited as inefficient (Ineffective while amortizing): the writer
//     is serial — each record waits out the window alone, so the window is
//     a pure latency tax; collapse to sync-on-write and report the
//     backoff.
//   - Busy — at least 8 records arrived this epoch (issuing one syscall
//     per record at that rate is waste even on a fast device), or a
//     sustained stream (sustainEpochs consecutive active epochs) is
//     either thick enough to group (2+ records per epoch) or costly
//     enough that prompt syncs would eat over a quarter of the epoch
//     (records × fsync p99 > epoch/4): amortize harder — SyncEvery
//     doubles toward its cap, MaxSyncDelay ramps additively — unless a
//     cooldown (GrowHold) is pending, in which case hold.
//   - Light load in between: geometric decay toward sync-on-write.
//
// The sustained test and the efficiency backoff are a matched pair: a
// steady stream from concurrent producers amortizes (records/sync stays
// over effTarget, the window survives), while a steady stream from one
// serial caller probes, audits at records/sync ~ 1, and collapses — rate
// alone cannot tell those apart, achieved grouping can.
func StepSync(curEvery int, curDelay time.Duration, maxEvery int, maxDelay time.Duration, e SyncEpoch) (int, time.Duration, bool) {
	// Below the hard record-rate threshold, any busy verdict needs the
	// full sustained streak: a single commit's records span about two
	// epochs, and a shorter gate would let the commit's own stream grow
	// the window mid-commit and tax its trailing records with the new
	// sync delay.
	busy := e.Records >= 8
	if !busy && e.ActiveEpochs >= sustainEpochs {
		busy = e.Records >= 2 ||
			(e.PersistP99 > 0 && e.Records*float64(e.PersistP99) > float64(e.Epoch)/4)
	}
	amortizing := curEvery > 1 || curDelay > 0
	backoff := false
	switch {
	case e.IdleEpochs >= idleCollapse && e.Records < 1:
		curEvery, curDelay = 1, 0
	case amortizing && e.Ineffective:
		curEvery, curDelay = 1, 0
		backoff = true
	case busy && !e.GrowHold:
		curEvery *= 2
		curDelay += maxDelay / 4
	case busy:
		// Cooling down after a backoff: hold instead of re-probing.
	default:
		curEvery /= 2
		curDelay /= 2
	}
	return clampInt(curEvery, 1, maxEvery), clampDur(curDelay, 0, maxDelay), backoff
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampDur(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
