package core_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
)

// TestGCForcedStateTransferWhenLagUnderDelta is the regression test for a
// liveness hole implicit in the paper's tuning of Δ: with Δ larger than
// the checkpoint interval, a process whose lag is below Δ could neither
// replay the missed Consensus instances (peers garbage-collected them,
// Fig. 4 line (c)) nor receive a state transfer (lag ≤ Δ). The fix sends a
// state message to any peer below the sender's GC floor regardless of Δ.
func TestGCForcedStateTransferWhenLagUnderDelta(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		N:    3,
		Seed: 401,
		// Δ deliberately much larger than the checkpoint interval.
		Core: core.Config{CheckpointEvery: 5, Delta: 1000},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 60*time.Second)

	c.Crash(2)
	// 12 messages: lag 12 << Δ=1000, but the survivors' checkpoints GC
	// everything below their floor.
	for i := 0; i < 12; i++ {
		if _, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Nodes[0].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	// Without the GC-floor rule this would hang forever.
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if c.Nodes[2].Proto().Stats().StateAdopted == 0 {
		t.Fatal("expected a GC-forced state transfer")
	}
}

// TestReplayFallsBackToStateTransferWhenInstancesForgotten is the
// regression test for the second liveness hole: a recovering process whose
// own logged proposal references an instance that every peer has
// garbage-collected must not block forever inside the replay phase — the
// consensus layer reports the instance as forgotten and recovery proceeds
// to the state-transfer path.
func TestReplayFallsBackToStateTransferWhenInstancesForgotten(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		N:    3,
		Seed: 402,
		Core: core.Config{CheckpointEvery: 4, Delta: 2},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 120*time.Second)

	// p2 participates for a while (so it logs proposals), then crashes.
	for i := 0; i < 6; i++ {
		if _, err := c.Broadcast(ctx, 2, []byte(fmt.Sprintf("pre%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AwaitRound(ctx, 2, 3); err != nil {
		t.Fatal(err)
	}
	c.Crash(2)

	// The survivors move far ahead and garbage-collect everything —
	// including the instances p2 will try to replay.
	for i := 0; i < 30; i++ {
		if _, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("post%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Nodes[0].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	// p2's replay hits forgotten instances; recovery must still return
	// and catch up via state transfer.
	if _, err := c.Recover(2); err != nil {
		t.Fatalf("recovery blocked or failed: %v", err)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
}

// TestHeterogeneousConfigsInteroperate checks that a basic-protocol
// process (no checkpointing, no Δ) still catches up when its peers run the
// full alternative protocol and GC their logs: the peers' GC floor forces
// a state transfer that the basic process adopts via the floor clause.
func TestHeterogeneousConfigsInteroperate(t *testing.T) {
	// The harness applies one config to all nodes, so build the mixed
	// cluster manually: exercise the floor-adoption clause by giving
	// every node Delta=0 (state transfer nominally off) but checkpoints
	// on. Catch-up then relies purely on the GC-floor rules.
	c := harness.NewCluster(harness.Options{
		N:    3,
		Seed: 403,
		Core: core.Config{CheckpointEvery: 5, Delta: 0},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 120*time.Second)

	c.Crash(2)
	for i := 0; i < 20; i++ {
		if _, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Nodes[0].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
}
