package core

import "time"

// This file is the core's live-tuning surface: the knobs internal/tune may
// move while the incarnation runs, and the signals it observes to decide.
// Everything here is cheap and lock-light — the controller ticks on an
// epoch timer and must never contend with the ordering hot path.

// TuneSignals is the per-epoch observation the autotuner reads from one
// protocol instance. Counter fields are cumulative for the incarnation (the
// controller differences successive reads); the rest are instantaneous.
type TuneSignals struct {
	Proposals  uint64 // proposals submitted
	Messages   uint64 // messages across all proposals
	FullSeals  uint64 // proposals sealed by a size cap
	TimerSeals uint64 // non-full proposals sealed by the time trigger
	Delivered  uint64 // messages appended to Agreed

	Backlog  int // Unordered-set size (ordering backlog)
	InFlight int // consensus rounds proposed, decision pending
	TentOut  int // tentative deliveries emitted but not yet settled

	Depth      int           // live pipeline depth
	BatchDelay time.Duration // live adaptive-batching window
}

// TuneSignals snapshots the controller-facing signals. The counters come
// from the lock-free metric set; the instantaneous fields take the protocol
// lock briefly.
func (p *Protocol) TuneSignals() TuneSignals {
	s := TuneSignals{
		Proposals:  p.met.proposalsSubmitted.Value(),
		Messages:   p.met.proposedMessages.Value(),
		FullSeals:  p.met.batchFullSeals.Value(),
		TimerSeals: p.met.batchTimerSeals.Value(),
		Delivered:  p.met.delivered.Value(),
		Depth:      int(p.depth()),
		BatchDelay: p.batchDelay(),
	}
	p.mu.Lock()
	s.Backlog = p.unordered.Len()
	s.InFlight = len(p.inflightRounds)
	for _, t := range p.tentative {
		s.TentOut += len(t.ids)
	}
	p.mu.Unlock()
	return s
}

// SetBatchDelay moves the adaptive-batching time trigger at runtime
// (negative clamps to 0 = propose immediately). Shrinking it may ripen a
// held-back batch, so the sequencer is poked to re-evaluate its sleep.
func (p *Protocol) SetBatchDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if p.liveBatchDelay.Swap(int64(d)) != int64(d) {
		p.poke()
	}
}

// BatchDelay returns the live adaptive-batching window.
func (p *Protocol) BatchDelay() time.Duration { return p.batchDelay() }

// SetPipelineDepth resizes the live pipeline window (the number of
// consensus rounds the sequencer keeps in flight), clamped to
// [1, max(PipelineDepth, MaxPipelineDepth)] — the decision channel was
// sized for that ceiling at New, so the resize is just an atomic store.
// Shrinking never cancels rounds already in flight; the window drains to
// the new depth as decisions land.
func (p *Protocol) SetPipelineDepth(d int) {
	if d < 1 {
		d = 1
	}
	if d > p.maxDepth {
		d = p.maxDepth
	}
	if p.liveDepth.Swap(int32(d)) != int32(d) {
		p.poke() // deepening opens slots the sequencer can fill now
	}
}

// PipelineDepth returns the live pipeline depth.
func (p *Protocol) PipelineDepth() int { return int(p.depth()) }

// MaxPipelineDepth returns the ceiling SetPipelineDepth clamps to.
func (p *Protocol) MaxPipelineDepth() int { return p.maxDepth }
