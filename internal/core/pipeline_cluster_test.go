package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
)

// pipelinedCore is the high-throughput configuration under test: deep
// pipeline, adaptive batching, batched broadcast with incremental logging.
func pipelinedCore() core.Config {
	return core.Config{
		PipelineDepth:    4,
		BatchedBroadcast: true,
		IncrementalLog:   true,
		MaxBatchBytes:    8 << 10,
		MaxBatchDelay:    300 * time.Microsecond,
	}
}

// TestPipelinedClusterTotalOrder drives concurrent senders through a
// pipelined+batched cluster and verifies the full Atomic Broadcast spec.
func TestPipelinedClusterTotalOrder(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 7701, Core: pipelinedCore()})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 60*time.Second)

	if _, err := c.Run(ctx, harness.Workload{
		Senders:           []ids.ProcessID{0, 1, 2},
		MessagesPerSender: 40,
		Pipeline:          4,
	}); err != nil {
		t.Fatalf("workload: %v", err)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedClusterCrashRecovery crashes a process while the pipeline
// has rounds in flight, keeps the survivors ordering, then recovers it and
// checks the replayed process converges to the same total order.
func TestPipelinedClusterCrashRecovery(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 7702, Core: pipelinedCore()})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 60*time.Second)

	for i := 0; i < 30; i++ {
		if _, err := c.Broadcast(ctx, 1, []byte("pre-crash")); err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
	}
	c.Crash(1)

	// Survivors keep ordering while p1 is down.
	for i := 0; i < 20; i++ {
		id, err := c.Broadcast(ctx, 0, []byte("while-down"))
		if err != nil {
			t.Fatalf("broadcast while down: %v", err)
		}
		if i == 19 {
			if err := c.AwaitDelivered(ctx, id, 0, 2); err != nil {
				t.Fatal(err)
			}
		}
	}

	if _, err := c.Recover(1); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
}
