package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/storage"
	"repro/internal/wire"
)

// fakeNet records sends for handler-level tests.
type fakeNet struct {
	mu    sync.Mutex
	sent  [][]byte
	to    []ids.ProcessID
	multi [][]byte
}

func (f *fakeNet) Send(to ids.ProcessID, payload []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sent = append(f.sent, append([]byte(nil), payload...))
	f.to = append(f.to, to)
}

func (f *fakeNet) Multisend(payload []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.multi = append(f.multi, append([]byte(nil), payload...))
}

func (f *fakeNet) sends() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.sent)
}

// fakeCons is a consensus stub: decisions are fed manually.
type fakeCons struct {
	mu        sync.Mutex
	proposals map[uint64][]byte
	decisions map[uint64][]byte
	floor     uint64
}

func newFakeCons() *fakeCons {
	return &fakeCons{
		proposals: make(map[uint64][]byte),
		decisions: make(map[uint64][]byte),
	}
}

func (f *fakeCons) Propose(k uint64, v []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.proposals[k]; !ok {
		f.proposals[k] = append([]byte(nil), v...)
	}
	return nil
}

func (f *fakeCons) WaitDecided(ctx context.Context, k uint64) ([]byte, error) {
	for {
		f.mu.Lock()
		v, ok := f.decisions[k]
		f.mu.Unlock()
		if ok {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

func (f *fakeCons) DecidedLocal(k uint64) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.decisions[k]
	return v, ok
}

func (f *fakeCons) Proposal(k uint64) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.proposals[k]
	return v, ok
}

func (f *fakeCons) DiscardBelow(k uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k > f.floor {
		f.floor = k
	}
	return nil
}

func (f *fakeCons) decide(k uint64, batch []msg.Message) {
	w := wire.NewWriter(64)
	msg.EncodeBatch(w, batch)
	f.mu.Lock()
	f.decisions[k] = w.Bytes()
	f.mu.Unlock()
}

// newTestProtocol builds an unstarted Protocol with fakes, for direct
// handler testing.
func newTestProtocol(cfg Config) (*Protocol, *fakeNet, *fakeCons) {
	cfg.PID = 0
	cfg.N = 3
	cfg.Incarnation = 1
	net := &fakeNet{}
	cons := newFakeCons()
	p := New(cfg, storage.NewMem(), cons, net)
	return p, net, cons
}

func encodeGossip(k uint64, batch []msg.Message) []byte {
	w := wire.NewWriter(64)
	w.U8(subGossip)
	w.U64(k)
	msg.EncodeBatch(w, batch)
	return w.Bytes()
}

func encodeState(ks, floor uint64, ds *deliveryState) []byte {
	w := wire.NewWriter(64)
	w.U8(subState)
	w.U64(ks)
	w.U64(floor)
	ds.encode(w)
	return w.Bytes()
}

func TestOnGossipMergesUnordered(t *testing.T) {
	p, _, _ := newTestProtocol(Config{})
	mm := m(1, 1, 1)
	p.OnMessage(1, encodeGossip(0, []msg.Message{mm}))
	if !p.unorderedHas(mm.ID) {
		t.Fatal("gossiped message not merged")
	}
	// Duplicate gossip is idempotent.
	p.OnMessage(1, encodeGossip(0, []msg.Message{mm}))
	if p.UnorderedLen() != 1 {
		t.Fatalf("unordered len = %d", p.UnorderedLen())
	}
}

// unorderedHas is a test accessor.
func (p *Protocol) unorderedHas(id ids.MsgID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.unordered.Contains(id)
}

func TestOnGossipSkipsDeliveredMessages(t *testing.T) {
	p, _, _ := newTestProtocol(Config{})
	mm := m(1, 1, 1)
	p.mu.Lock()
	p.ds.appendBatch(0, []msg.Message{mm})
	p.mu.Unlock()
	p.OnMessage(1, encodeGossip(1, []msg.Message{mm}))
	if p.UnorderedLen() != 0 {
		t.Fatal("already-delivered message re-added to Unordered")
	}
}

func TestOnGossipTracksAheadRound(t *testing.T) {
	p, _, _ := newTestProtocol(Config{})
	p.OnMessage(1, encodeGossip(7, nil))
	p.mu.Lock()
	gk := p.gossipK
	p.mu.Unlock()
	if gk != 7 {
		t.Fatalf("gossipK = %d", gk)
	}
	// A lower round does not regress it.
	p.OnMessage(2, encodeGossip(3, nil))
	p.mu.Lock()
	gk = p.gossipK
	p.mu.Unlock()
	if gk != 7 {
		t.Fatalf("gossipK regressed to %d", gk)
	}
}

func TestOnGossipSendsStateWhenPeerLagsBeyondDelta(t *testing.T) {
	p, net, _ := newTestProtocol(Config{Delta: 3})
	p.mu.Lock()
	p.k = 10
	p.mu.Unlock()
	// Peer at round 2: 10 > 2+3 — send state.
	p.OnMessage(1, encodeGossip(2, nil))
	if net.sends() != 1 {
		t.Fatalf("state sends = %d", net.sends())
	}
	if p.Stats().StateSent != 1 {
		t.Fatal("state send not counted")
	}
	// Rate limit: an immediate second gossip from the same peer does not
	// trigger another state message.
	p.OnMessage(1, encodeGossip(2, nil))
	if net.sends() != 1 {
		t.Fatalf("rate limit failed: %d sends", net.sends())
	}
}

func TestOnGossipNoStateWithinDelta(t *testing.T) {
	p, net, _ := newTestProtocol(Config{Delta: 10})
	p.mu.Lock()
	p.k = 5
	p.mu.Unlock()
	p.OnMessage(1, encodeGossip(2, nil)) // lag 3 <= Δ=10
	if net.sends() != 0 {
		t.Fatal("state sent within Δ")
	}
}

func TestOnGossipGCFloorForcesState(t *testing.T) {
	// Even with a huge Δ, a peer below our GC floor must get a state
	// message — it can never replay the discarded instances.
	p, net, _ := newTestProtocol(Config{Delta: 1000, CheckpointEvery: 5})
	p.mu.Lock()
	p.k = 12
	p.gcFloor = 10
	p.mu.Unlock()
	p.OnMessage(1, encodeGossip(4, nil))
	if net.sends() != 1 {
		t.Fatalf("GC-forced state not sent (sends=%d)", net.sends())
	}
}

func TestOnStateStagesAdoptionWhenBehind(t *testing.T) {
	p, _, _ := newTestProtocol(Config{Delta: 2})
	src := newDeliveryState()
	src.appendBatch(0, []msg.Message{m(1, 1, 1)})
	p.OnMessage(1, encodeState(9, 0, src)) // newK=10 > 0+2
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pending == nil || p.pendingK != 10 {
		t.Fatalf("adoption not staged: pending=%v k=%d", p.pending != nil, p.pendingK)
	}
}

func TestOnStateSmallDesyncOnlyUpdatesGossipK(t *testing.T) {
	p, _, _ := newTestProtocol(Config{Delta: 10})
	src := newDeliveryState()
	p.OnMessage(1, encodeState(4, 0, src)) // newK=5 <= 0+10
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pending != nil {
		t.Fatal("adoption staged for small desync")
	}
	if p.gossipK != 5 {
		t.Fatalf("gossipK = %d", p.gossipK)
	}
}

func TestOnStateAdoptsWhenBelowSendersFloor(t *testing.T) {
	// newK (6) is within Δ (10), but the sender GC'd everything below 5:
	// we are at 0 < 5, so we must adopt anyway.
	p, _, _ := newTestProtocol(Config{Delta: 10})
	src := newDeliveryState()
	p.OnMessage(1, encodeState(5, 5, src))
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pending == nil {
		t.Fatal("GC-forced adoption not staged")
	}
}

func TestOnStateInterruptsSequencer(t *testing.T) {
	p, _, _ := newTestProtocol(Config{Delta: 1})
	interrupted := make(chan struct{})
	wctx, cancel := context.WithCancel(context.Background())
	p.mu.Lock()
	p.inflightRounds[0] = cancel
	p.mu.Unlock()
	go func() {
		<-wctx.Done()
		close(interrupted)
	}()
	src := newDeliveryState()
	p.OnMessage(1, encodeState(99, 0, src))
	select {
	case <-interrupted:
	case <-time.After(2 * time.Second):
		t.Fatal("sequencer not interrupted by state transfer")
	}
}

func TestOnMessageIgnoresGarbage(t *testing.T) {
	p, net, _ := newTestProtocol(Config{})
	p.OnMessage(1, nil)
	p.OnMessage(1, []byte{99})             // unknown subtype
	p.OnMessage(1, []byte{subGossip})      // truncated
	p.OnMessage(1, []byte{subState, 0xff}) // truncated
	if net.sends() != 0 || p.UnorderedLen() != 0 {
		t.Fatal("garbage had effects")
	}
}

func TestMaybeAdoptSkipsStaleTransfer(t *testing.T) {
	p, _, _ := newTestProtocol(Config{Delta: 1})
	p.mu.Lock()
	p.k = 50
	src := newDeliveryState()
	p.pending = src
	p.pendingK = 10 // older than our current round
	p.mu.Unlock()
	p.maybeAdopt()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.k != 50 || p.Stats().StateAdopted != 0 {
		t.Fatal("stale transfer adopted")
	}
	if p.pending != nil {
		t.Fatal("stale transfer not cleared")
	}
}

func TestMaybeAdoptInstallsStateAndNotifiesWaiters(t *testing.T) {
	var restored []Snapshot
	var delivered []Delivery
	p, _, cons := newTestProtocol(Config{
		Delta:     1,
		OnRestore: func(s Snapshot) { restored = append(restored, s) },
		OnDeliver: func(d Delivery) { delivered = append(delivered, d) },
	})
	mm := m(0, 1, 1) // our own broadcast, covered by the transfer
	waiter := make(chan struct{})
	src := newDeliveryState()
	src.appendBatch(0, []msg.Message{mm})
	src.fold([]byte("app"), 1)
	src.appendBatch(1, []msg.Message{m(1, 1, 1)})

	p.mu.Lock()
	p.waiters[mm.ID] = []chan struct{}{waiter}
	p.pending = src
	p.pendingK = 2
	p.mu.Unlock()
	p.maybeAdopt()

	select {
	case <-waiter:
	case <-time.After(time.Second):
		t.Fatal("waiter not notified by adoption")
	}
	if len(restored) != 1 || string(restored[0].App) != "app" {
		t.Fatalf("restore callback: %+v", restored)
	}
	if len(delivered) != 1 || delivered[0].Msg.ID != (m(1, 1, 1)).ID {
		t.Fatalf("suffix redelivery: %+v", delivered)
	}
	if p.Round() != 2 {
		t.Fatalf("round = %d", p.Round())
	}
	st := p.Stats()
	if st.StateAdopted != 1 || st.DeliveredByTransfer != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// The adoption persisted a checkpoint and discarded consensus state.
	if _, ok, _ := p.st.Get(keyCkpt); !ok {
		t.Fatal("adoption did not persist a checkpoint")
	}
	cons.mu.Lock()
	floor := cons.floor
	cons.mu.Unlock()
	if floor != 2 {
		t.Fatalf("consensus floor = %d", floor)
	}
}
