package core

import (
	"testing"

	"repro/internal/msg"
)

// TestFoldBelowRetainsRoundsAtOrAboveFloor: the merge-floor fold moves
// only the sub-floor prefix into the base; rounds at or above the floor
// keep their explicit per-round form (what a cross-group merge needs).
func TestFoldBelowRetainsRoundsAtOrAboveFloor(t *testing.T) {
	d := newDeliveryState()
	d.appendBatch(0, []msg.Message{m(0, 1, 1), m(1, 1, 1)})
	d.appendBatch(1, []msg.Message{m(0, 1, 2)})
	d.appendBatch(3, []msg.Message{m(1, 1, 2)}) // round 2 was empty

	d.foldBelow([]byte("app"), 2)
	if d.base.Rounds != 2 || d.base.Pos != 3 || string(d.base.App) != "app" {
		t.Fatalf("base after partial fold: %+v", d.base)
	}
	if len(d.suffix) != 1 || d.suffix[0].round != 3 {
		t.Fatalf("suffix after partial fold: %+v", d.suffix)
	}
	// Folded and retained messages are all still contained.
	for _, mm := range []msg.Message{m(0, 1, 1), m(1, 1, 1), m(0, 1, 2), m(1, 1, 2)} {
		if !d.contains(mm.ID) {
			t.Fatalf("%v no longer contained", mm.ID)
		}
	}
	// The retained delivery keeps its global position.
	ds := d.deliveries()
	if len(ds) != 1 || ds[0].Pos != 3 || ds[0].Round != 3 {
		t.Fatalf("retained delivery: %+v", ds)
	}
	// Folding again at a higher floor absorbs the rest.
	d.foldBelow([]byte("app2"), 4)
	if len(d.suffix) != 0 || d.base.Rounds != 4 || d.base.Pos != 4 {
		t.Fatalf("full fold after partial: %+v", d.base)
	}
	// A floor below the current base never regresses it.
	d.foldBelow([]byte("app3"), 1)
	if d.base.Rounds != 4 {
		t.Fatalf("fold regressed base rounds: %+v", d.base)
	}
}

// TestFoldBelowZeroFloorIsNoopOnSuffix: an idle merge frontier (floor 0)
// folds nothing — the documented liveness caveat of merged-mode
// checkpointing.
func TestFoldBelowZeroFloorIsNoopOnSuffix(t *testing.T) {
	d := newDeliveryState()
	d.appendBatch(0, []msg.Message{m(0, 1, 1)})
	if got := d.cutBelow(0); got != 0 {
		t.Fatalf("cutBelow(0) = %d; want 0", got)
	}
	if msgs := d.suffixMessagesPrefix(d.cutBelow(0)); len(msgs) != 0 {
		t.Fatalf("suffixMessagesPrefix(cutBelow(0)) = %v", msgs)
	}
}

// TestFoldedCoverageIsExact is the regression test for the fold/ordering
// divergence: a sender's later message (m4) can be ordered rounds before
// an earlier one (m3, gossip lost). A process that folds the prefix
// containing only m4 must NOT claim to contain m3 — otherwise it skips m3
// when a later round delivers it while an unfolded process appends it,
// and the two delivery sequences diverge position by position (the soak
// caught exactly this as a Total Order violation).
func TestFoldedCoverageIsExact(t *testing.T) {
	m3, m4 := m(1, 1, 3), m(1, 1, 4)

	folded := newDeliveryState()
	unfolded := newDeliveryState()
	// Round 0 delivers m4 only; m3 is still in flight.
	folded.appendBatch(0, []msg.Message{m4})
	unfolded.appendBatch(0, []msg.Message{m4})
	// One process checkpoints, the other does not.
	folded.fold([]byte("app"), 1)
	if folded.contains(m3.ID) {
		t.Fatal("folded state claims to contain the undelivered m3")
	}
	// Round 1 delivers m3: both processes must append it at the same
	// position.
	a := folded.appendBatch(1, []msg.Message{m3})
	b := unfolded.appendBatch(1, []msg.Message{m3})
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("m3 skipped: folded=%v unfolded=%v", a, b)
	}
	if a[0].Pos != b[0].Pos || a[0].Msg.ID != b[0].Msg.ID {
		t.Fatalf("sequences diverged: folded delivers %v@%d, unfolded %v@%d",
			a[0].Msg.ID, a[0].Pos, b[0].Msg.ID, b[0].Pos)
	}
}
