package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/msg"
	"repro/internal/wire"
)

// startTestProtocol builds and starts a protocol over the fakes, cleaning
// up with the test.
func startTestProtocol(t *testing.T, cfg Config) (*Protocol, *fakeCons) {
	t.Helper()
	p, _, cons := newTestProtocol(cfg)
	if err := p.Start(context.Background()); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(p.Stop)
	return p, cons
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func proposalBatch(t *testing.T, cons *fakeCons, k uint64) []msg.Message {
	t.Helper()
	raw, ok := cons.Proposal(k)
	if !ok {
		t.Fatalf("no proposal for round %d", k)
	}
	r := wire.NewReader(raw)
	batch := msg.DecodeBatch(r)
	if r.Err() != nil {
		t.Fatalf("corrupt proposal %d", k)
	}
	return batch
}

// TestPipelineProposesAheadOfCommit is the core pipelining property: with
// depth > 1 the sequencer proposes round 1 while round 0's decision is
// still outstanding, and round 1's proposal excludes the messages already
// in flight in round 0.
func TestPipelineProposesAheadOfCommit(t *testing.T) {
	p, cons := startTestProtocol(t, Config{PipelineDepth: 3})

	id0, err := p.BroadcastAsync([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "round 0 proposal", func() bool {
		_, ok := cons.Proposal(0)
		return ok
	})

	// Round 0 is undecided; a new message must still be proposed (round 1).
	id1, err := p.BroadcastAsync([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "round 1 proposal", func() bool {
		_, ok := cons.Proposal(1)
		return ok
	})

	b0 := proposalBatch(t, cons, 0)
	if len(b0) != 1 || b0[0].ID != id0 {
		t.Fatalf("round 0 batch = %v, want [%v]", b0, id0)
	}
	b1 := proposalBatch(t, cons, 1)
	if len(b1) != 1 || b1[0].ID != id1 {
		t.Fatalf("round 1 batch = %v, want only %v (in-flight excluded)", b1, id1)
	}

	cons.decide(0, b0)
	cons.decide(1, b1)
	waitFor(t, 2*time.Second, "both rounds committed", func() bool {
		return p.Round() >= 2
	})
	_, seq := p.Sequence()
	if len(seq) != 2 || seq[0].Msg.ID != id0 || seq[1].Msg.ID != id1 {
		t.Fatalf("delivery sequence = %v", seq)
	}
	if st := p.Stats(); st.PipelinedProposals == 0 {
		t.Fatal("expected at least one pipelined proposal")
	}
}

// TestPipelineCommitsInOrder: a decision for round 1 arriving before round
// 0's must not be delivered early — commits are strictly in round order.
func TestPipelineCommitsInOrder(t *testing.T) {
	p, cons := startTestProtocol(t, Config{PipelineDepth: 2})

	id0, _ := p.BroadcastAsync([]byte("first"))
	waitFor(t, 2*time.Second, "round 0 proposal", func() bool {
		_, ok := cons.Proposal(0)
		return ok
	})
	id1, _ := p.BroadcastAsync([]byte("second"))
	waitFor(t, 2*time.Second, "round 1 proposal", func() bool {
		_, ok := cons.Proposal(1)
		return ok
	})

	// Decide round 1 first: nothing may be delivered yet.
	cons.decide(1, proposalBatch(t, cons, 1))
	time.Sleep(30 * time.Millisecond)
	if k := p.Round(); k != 0 {
		t.Fatalf("round advanced to %d without round 0's decision", k)
	}
	if p.Delivered(id1) {
		t.Fatal("round 1 delivered before round 0")
	}

	cons.decide(0, proposalBatch(t, cons, 0))
	waitFor(t, 2*time.Second, "in-order commit of both rounds", func() bool {
		return p.Round() >= 2
	})
	_, seq := p.Sequence()
	if len(seq) != 2 || seq[0].Msg.ID != id0 || seq[1].Msg.ID != id1 {
		t.Fatalf("delivery sequence = %v, want [%v %v]", seq, id0, id1)
	}
}

// TestAdaptiveBatchTimeTrigger: with MaxBatchDelay set, a lone message is
// held back (aggregating load) and proposed only once the delay expires.
func TestAdaptiveBatchTimeTrigger(t *testing.T) {
	p, cons := startTestProtocol(t, Config{
		MaxBatchDelay: 120 * time.Millisecond,
		MaxBatchBytes: 1 << 20,
	})

	if _, err := p.BroadcastAsync([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	if _, ok := cons.Proposal(0); ok {
		t.Fatal("batch proposed before the time trigger")
	}
	// A second message rides in the same held-back batch.
	if _, err := p.BroadcastAsync([]byte("rider")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "time-triggered proposal", func() bool {
		_, ok := cons.Proposal(0)
		return ok
	})
	if got := len(proposalBatch(t, cons, 0)); got != 2 {
		t.Fatalf("aggregated batch size = %d, want 2", got)
	}
}

// TestAdaptiveBatchSizeTrigger: a batch reaching MaxBatchBytes is full and
// proposed immediately, overriding a long MaxBatchDelay.
func TestAdaptiveBatchSizeTrigger(t *testing.T) {
	p, cons := startTestProtocol(t, Config{
		MaxBatchDelay: 10 * time.Second,
		MaxBatchBytes: 64,
	})

	payload := make([]byte, 40)
	if _, err := p.BroadcastAsync(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := p.BroadcastAsync(payload); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "size-triggered proposal", func() bool {
		_, ok := cons.Proposal(0)
		return ok
	})
}

// TestPipelineReproposesLostMessages: when a round decides a competing
// batch, our in-flight messages return to the pending pool and are
// re-proposed in a later round — the liveness half of in-flight exclusion.
func TestPipelineReproposesLostMessages(t *testing.T) {
	p, cons := startTestProtocol(t, Config{PipelineDepth: 2})

	mine, _ := p.BroadcastAsync([]byte("mine"))
	waitFor(t, 2*time.Second, "round 0 proposal", func() bool {
		_, ok := cons.Proposal(0)
		return ok
	})
	// Round 0 decides another process's batch, not containing our message.
	theirs := m(2, 1, 1)
	cons.decide(0, []msg.Message{theirs})
	waitFor(t, 2*time.Second, "round 0 commit", func() bool {
		return p.Round() >= 1
	})
	// Our message must be proposed again in a later round and delivered.
	waitFor(t, 2*time.Second, "re-proposal of the lost message", func() bool {
		for k := uint64(1); k < 8; k++ {
			raw, ok := cons.Proposal(k)
			if !ok {
				continue
			}
			batch := msg.DecodeBatch(wire.NewReader(raw))
			for _, mm := range batch {
				if mm.ID == mine {
					cons.decide(k, batch)
					return true
				}
			}
		}
		return false
	})
	waitFor(t, 2*time.Second, "delivery of the re-proposed message", func() bool {
		return p.Delivered(mine)
	})
}
