package core

import (
	"fmt"
	"testing"

	"repro/internal/msg"
	"repro/internal/wire"
)

// benchBatch builds n unordered messages with the given payload size.
func benchBatch(n, payload int) []msg.Message {
	out := make([]msg.Message, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, m(1, 1, uint64(i+1)))
		out[i].Payload = make([]byte, payload)
	}
	return out
}

// BenchmarkGossipFrameEncode measures the periodic gossip encode paths:
// the full-payload frame (classic mode) versus the ID digest. The digest
// is what makes steady-state anti-entropy O(IDs) instead of O(payloads) —
// the byte counts reported per op ARE the per-tick background cost.
func BenchmarkGossipFrameEncode(b *testing.B) {
	for _, n := range []int{16, 256} {
		batch := benchBatch(n, 256)
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := wire.GetWriter(64)
				w.U8(subGossip)
				w.U64(42)
				msg.EncodeBatch(w, batch)
				b.SetBytes(int64(w.Len()))
				wire.PutWriter(w)
			}
		})
		b.Run(fmt.Sprintf("digest/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := wire.GetWriter(64)
				w.U8(subDigest)
				w.U64(42)
				w.U64(uint64(len(batch)))
				for _, mm := range batch {
					msg.EncodeID(w, mm.ID)
				}
				b.SetBytes(int64(w.Len()))
				wire.PutWriter(w)
			}
		})
	}
}

// BenchmarkBatchDecode measures the matching receive path.
func BenchmarkBatchDecode(b *testing.B) {
	batch := benchBatch(64, 256)
	w := wire.NewWriter(64)
	msg.EncodeBatch(w, batch)
	buf := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := wire.NewReader(buf)
		if got := msg.DecodeBatch(r); len(got) != 64 {
			b.Fatal("bad decode")
		}
	}
}
