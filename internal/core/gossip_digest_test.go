package core

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/wire"
)

// addUnordered injects messages straight into the Unordered set, as if
// they had arrived by gossip — in particular, without ever touching the
// eager buffer (the ISSUE's "never eager-pushed" stale case).
func addUnordered(p *Protocol, ms ...msg.Message) {
	p.mu.Lock()
	for _, mm := range ms {
		p.unordered.Add(mm)
	}
	p.mu.Unlock()
}

// decodeFrame splits one captured core-channel frame into its subtype and
// payload reader.
func decodeFrame(t *testing.T, frame []byte) (uint8, *wire.Reader) {
	t.Helper()
	if len(frame) < 1 {
		t.Fatal("empty frame")
	}
	r := wire.NewReader(frame)
	return r.U8(), r
}

// frameIDs returns the message IDs advertised by one gossip or digest
// frame.
func frameIDs(t *testing.T, frame []byte) []ids.MsgID {
	t.Helper()
	sub, r := decodeFrame(t, frame)
	r.U64() // k
	switch sub {
	case subGossip:
		batch := msg.DecodeBatch(r)
		out := make([]ids.MsgID, 0, len(batch))
		for _, mm := range batch {
			out = append(out, mm.ID)
		}
		return out
	case subDigest:
		return msg.DecodeIDs(r)
	default:
		t.Fatalf("unexpected subtype %d", sub)
		return nil
	}
}

// TestGossipRotationCoversWholeSet is the truncation-starvation
// regression: with GossipMaxMessages below the Unordered size, successive
// periodic ticks must rotate the window so every message — including the
// ones past the truncation point, which a fixed canonical-prefix cut
// would starve for as long as the set stays large — is advertised within
// ceil(len/max) ticks. Verified for both the classic full-payload frames
// and the digest frames.
func TestGossipRotationCoversWholeSet(t *testing.T) {
	for _, digest := range []bool{false, true} {
		name := "full"
		if digest {
			name = "digest"
		}
		t.Run(name, func(t *testing.T) {
			p, net, _ := newTestProtocol(Config{GossipMaxMessages: 2, DigestGossip: digest})
			var all []msg.Message
			for seq := uint64(1); seq <= 6; seq++ {
				all = append(all, m(1, 1, seq))
			}
			addUnordered(p, all...)

			seen := make(map[ids.MsgID]bool)
			for tick := 0; tick < 3; tick++ {
				p.sendGossip()
			}
			net.mu.Lock()
			frames := append([][]byte(nil), net.multi...)
			net.mu.Unlock()
			for _, frame := range frames {
				if got := frameIDs(t, frame); len(got) > 2 {
					t.Fatalf("frame advertised %d messages, cap is 2", len(got))
				} else {
					for _, id := range got {
						seen[id] = true
					}
				}
			}
			for _, mm := range all {
				if !seen[mm.ID] {
					t.Fatalf("message %v past the truncation point never advertised in 3 ticks", mm.ID)
				}
			}
		})
	}
}

// TestGossipRotationReachesPeer drives the same scenario end to end at
// the handler level: messages that were never eager-pushed sit in p0's
// Unordered set past the truncation point; after enough rotated ticks
// relayed to a second process, the peer holds every one of them.
func TestGossipRotationReachesPeer(t *testing.T) {
	a, netA, _ := newTestProtocol(Config{GossipMaxMessages: 2})
	b, _, _ := newTestProtocol(Config{GossipMaxMessages: 2})
	var all []msg.Message
	for seq := uint64(1); seq <= 5; seq++ {
		all = append(all, m(1, 1, seq))
	}
	addUnordered(a, all...)

	for tick := 0; tick < 3; tick++ {
		a.sendGossip()
	}
	netA.mu.Lock()
	frames := append([][]byte(nil), netA.multi...)
	netA.mu.Unlock()
	for _, frame := range frames {
		b.OnMessage(0, frame)
	}
	for _, mm := range all {
		if !b.unorderedHas(mm.ID) {
			t.Fatalf("peer missing %v after rotated gossip", mm.ID)
		}
	}
}

// TestDigestGossipSendsIDsNotPayloads: digest mode's periodic frame
// carries the IDs and round number but none of the payload bytes.
func TestDigestGossipSendsIDsNotPayloads(t *testing.T) {
	p, net, _ := newTestProtocol(Config{DigestGossip: true})
	big := m(1, 1, 1)
	big.Payload = make([]byte, 4096)
	addUnordered(p, big)

	p.sendGossip()
	net.mu.Lock()
	frames := append([][]byte(nil), net.multi...)
	net.mu.Unlock()
	if len(frames) != 1 {
		t.Fatalf("%d frames", len(frames))
	}
	sub, _ := decodeFrame(t, frames[0])
	if sub != subDigest {
		t.Fatalf("subtype %d, want digest", sub)
	}
	if len(frames[0]) > 64 {
		t.Fatalf("digest frame is %dB for one 4KiB message — payload leaked", len(frames[0]))
	}
	if got := frameIDs(t, frames[0]); len(got) != 1 || got[0] != big.ID {
		t.Fatalf("digest IDs = %v", got)
	}
	if st := p.Stats(); st.DigestsSent != 1 {
		t.Fatalf("DigestsSent = %d", st.DigestsSent)
	}
}

// TestOnDigestPullsOnlyMissing: a digest listing known, delivered and
// unknown messages triggers one pull naming exactly the unknown ones.
func TestOnDigestPullsOnlyMissing(t *testing.T) {
	p, net, _ := newTestProtocol(Config{DigestGossip: true})
	known := m(1, 1, 1)
	delivered := m(1, 1, 2)
	missing := m(1, 1, 3)
	addUnordered(p, known)
	p.mu.Lock()
	p.ds.appendBatch(0, []msg.Message{delivered})
	p.mu.Unlock()

	w := wire.NewWriter(64)
	w.U8(subDigest)
	w.U64(0)
	msg.EncodeIDs(w, []ids.MsgID{known.ID, delivered.ID, missing.ID})
	p.OnMessage(1, w.Bytes())

	net.mu.Lock()
	defer net.mu.Unlock()
	if len(net.sent) != 1 || net.to[0] != 1 {
		t.Fatalf("pull sends: %d (to %v)", len(net.sent), net.to)
	}
	sub, r := decodeFrame(t, net.sent[0])
	if sub != subPull {
		t.Fatalf("subtype %d, want pull", sub)
	}
	got := msg.DecodeIDs(r)
	if len(got) != 1 || got[0] != missing.ID {
		t.Fatalf("pulled %v, want just %v", got, missing.ID)
	}
}

// TestOnDigestNoPullWhenNothingMissing: a fully known digest generates no
// traffic.
func TestOnDigestNoPullWhenNothingMissing(t *testing.T) {
	p, net, _ := newTestProtocol(Config{DigestGossip: true})
	known := m(1, 1, 1)
	addUnordered(p, known)
	w := wire.NewWriter(64)
	w.U8(subDigest)
	w.U64(0)
	msg.EncodeIDs(w, []ids.MsgID{known.ID})
	p.OnMessage(1, w.Bytes())
	if net.sends() != 0 {
		t.Fatal("pull sent for fully known digest")
	}
}

// TestOnPullServesUnorderedPayloads: a pull request is answered with one
// unicast full-payload gossip frame holding the requested messages still
// in Unordered; already-ordered or unknown IDs are omitted.
func TestOnPullServesUnorderedPayloads(t *testing.T) {
	p, net, _ := newTestProtocol(Config{DigestGossip: true})
	held := m(1, 1, 1)
	ordered := m(1, 1, 2)
	addUnordered(p, held)
	p.mu.Lock()
	p.ds.appendBatch(0, []msg.Message{ordered})
	p.mu.Unlock()

	w := wire.NewWriter(64)
	w.U8(subPull)
	msg.EncodeIDs(w, []ids.MsgID{held.ID, ordered.ID, m(9, 9, 9).ID})
	p.OnMessage(1, w.Bytes())

	net.mu.Lock()
	defer net.mu.Unlock()
	if len(net.sent) != 1 || net.to[0] != 1 {
		t.Fatalf("pull reply sends: %d", len(net.sent))
	}
	sub, r := decodeFrame(t, net.sent[0])
	if sub != subGossip {
		t.Fatalf("subtype %d, want gossip", sub)
	}
	r.U64() // k
	batch := msg.DecodeBatch(r)
	if len(batch) != 1 || !batch[0].Equal(held) {
		t.Fatalf("served %v, want just %v", batch, held)
	}
	if st := p.Stats(); st.PullsServed != 1 {
		t.Fatalf("PullsServed = %d", st.PullsServed)
	}
}

// TestDigestAntiEntropyRoundTrip relays the full digest → pull → payload
// exchange between two handler-level protocols: the receiver ends up
// holding every message the sender advertised, so a process that missed
// every eager push (it was down, §2.1) still converges — the recovery
// catch-up fallback.
func TestDigestAntiEntropyRoundTrip(t *testing.T) {
	a, netA, _ := newTestProtocol(Config{DigestGossip: true})
	b, netB, _ := newTestProtocol(Config{DigestGossip: true})
	var all []msg.Message
	for seq := uint64(1); seq <= 4; seq++ {
		mm := m(1, 1, seq)
		mm.Payload = []byte{byte(seq), 0xAB}
		all = append(all, mm)
	}
	addUnordered(a, all...)

	// Both test protocols are PID 0, so each sees the other as peer 1.
	// a's periodic digest reaches b...
	a.sendGossip()
	netA.mu.Lock()
	digests := append([][]byte(nil), netA.multi...)
	netA.mu.Unlock()
	for _, f := range digests {
		b.OnMessage(1, f)
	}
	// ...b pulls what it misses from a...
	netB.mu.Lock()
	pulls := append([][]byte(nil), netB.sent...)
	netB.mu.Unlock()
	if len(pulls) == 0 {
		t.Fatal("no pull emitted")
	}
	for _, f := range pulls {
		a.OnMessage(1, f)
	}
	// ...and a's unicast payload reply fills b's Unordered set.
	netA.mu.Lock()
	replies := append([][]byte(nil), netA.sent...)
	netA.mu.Unlock()
	if len(replies) == 0 {
		t.Fatal("no pull reply emitted")
	}
	for _, f := range replies {
		b.OnMessage(1, f)
	}
	for _, mm := range all {
		if !b.unorderedHas(mm.ID) {
			t.Fatalf("receiver missing %v after anti-entropy round trip", mm.ID)
		}
	}
	if st := b.Stats(); st.PullsSent != 1 {
		t.Fatalf("PullsSent = %d", st.PullsSent)
	}
}

// TestOnDigestTracksAheadRound: the round-discovery half of §4.2 works
// identically through digests.
func TestOnDigestTracksAheadRound(t *testing.T) {
	p, _, _ := newTestProtocol(Config{DigestGossip: true})
	w := wire.NewWriter(16)
	w.U8(subDigest)
	w.U64(7)
	msg.EncodeIDs(w, nil)
	p.OnMessage(1, w.Bytes())
	p.mu.Lock()
	gk := p.gossipK
	p.mu.Unlock()
	if gk != 7 {
		t.Fatalf("gossipK = %d", gk)
	}
}

// TestOnDigestSendsStateWhenPeerLags: the Δ / GC-floor state-transfer
// trigger fires on digests exactly as it does on full gossip.
func TestOnDigestSendsStateWhenPeerLags(t *testing.T) {
	p, net, _ := newTestProtocol(Config{DigestGossip: true, Delta: 3})
	p.mu.Lock()
	p.k = 10
	p.mu.Unlock()
	w := wire.NewWriter(16)
	w.U8(subDigest)
	w.U64(2) // peer at round 2: 10 > 2+3
	msg.EncodeIDs(w, nil)
	p.OnMessage(1, w.Bytes())
	net.mu.Lock()
	defer net.mu.Unlock()
	if len(net.sent) != 1 {
		t.Fatalf("state sends = %d", len(net.sent))
	}
	if sub, _ := decodeFrame(t, net.sent[0]); sub != subState {
		t.Fatalf("subtype %d, want state", sub)
	}
}

// TestOnPullIgnoresGarbage: malformed pulls and digests have no effect.
func TestOnPullIgnoresGarbage(t *testing.T) {
	p, net, _ := newTestProtocol(Config{DigestGossip: true})
	p.OnMessage(1, []byte{subPull})
	p.OnMessage(1, []byte{subPull, 0xff})
	p.OnMessage(1, []byte{subDigest})
	p.OnMessage(1, []byte{subDigest, 0xff, 0xff})
	if net.sends() != 0 {
		t.Fatal("garbage produced traffic")
	}
}

// TestDigestTickKeepsEagerBuffer: a periodic digest ships only IDs, so it
// must NOT clear the eager buffer — the payload push the buffer owes
// peers still happens (as a full-payload delta frame) right after the
// guard window. In classic mode the same tick ships the payloads and may
// clear the buffer.
func TestDigestTickKeepsEagerBuffer(t *testing.T) {
	p, net, _ := newTestProtocol(Config{DigestGossip: true})
	mm := m(0, 1, 1)
	p.mu.Lock()
	p.unordered.Add(mm)
	p.eagerBuf = append(p.eagerBuf, mm)
	p.mu.Unlock()

	p.sendGossip() // digest tick: IDs only
	p.mu.Lock()
	kept := len(p.eagerBuf) > 0 || p.flushArmed
	p.mu.Unlock()
	if !kept {
		t.Fatal("digest tick cancelled the pending eager payload push")
	}
	// The deferred eager flush (armed behind the guard window) must ship
	// the payload as a full-payload frame shortly after.
	deadline := time.Now().Add(time.Second)
	ok := false
	for time.Now().Before(deadline) && !ok {
		net.mu.Lock()
		for _, f := range net.multi {
			if len(f) > 0 && f[0] == subGossip {
				r := wire.NewReader(f[1:])
				r.U64() // k
				batch := msg.DecodeBatch(r)
				if len(batch) == 1 && batch[0].Equal(mm) {
					ok = true
				}
			}
		}
		net.mu.Unlock()
		if !ok {
			time.Sleep(time.Millisecond)
		}
	}
	if !ok {
		t.Fatal("eager payload push never happened after the digest tick")
	}

	// Classic mode: a covering tick clears the buffer (the payloads just
	// shipped).
	pc, _, _ := newTestProtocol(Config{})
	pc.mu.Lock()
	pc.unordered.Add(mm)
	pc.eagerBuf = append(pc.eagerBuf, mm)
	pc.mu.Unlock()
	pc.sendGossip()
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if len(pc.eagerBuf) != 0 {
		t.Fatal("classic covering tick did not clear the eager buffer")
	}
}

// TestOnDigestDedupsPullsAcrossPeers: within one gossip interval, digests
// from several peers advertising the same missing message draw exactly
// one pull — without the dedup, every advertiser would be pulled and
// would answer with a redundant full-payload reply.
func TestOnDigestDedupsPullsAcrossPeers(t *testing.T) {
	p, net, _ := newTestProtocol(Config{DigestGossip: true, GossipInterval: time.Hour})
	missing := m(1, 1, 7)
	frame := func() []byte {
		w := wire.NewWriter(32)
		w.U8(subDigest)
		w.U64(0)
		msg.EncodeIDs(w, []ids.MsgID{missing.ID})
		return w.Bytes()
	}
	p.OnMessage(1, frame())
	p.OnMessage(2, frame())
	p.OnMessage(1, frame())
	if got := net.sends(); got != 1 {
		t.Fatalf("%d pulls for one missing message (want 1)", got)
	}
	if st := p.Stats(); st.PullsSent != 1 {
		t.Fatalf("PullsSent = %d", st.PullsSent)
	}
}
