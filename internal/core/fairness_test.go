package core

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/msg"
)

func fm(sender ids.ProcessID, seq uint64) msg.Message {
	return msg.Message{ID: ids.MsgID{Sender: sender, Incarnation: 1, Seq: seq}}
}

// TestFairInterleaveRoundRobins checks the overflow reorder: message i of
// every sender must precede message i+1 of any sender, with each sender's
// own sequence order intact.
func TestFairInterleaveRoundRobins(t *testing.T) {
	// Canonical order: sender-major, so per-sender runs are contiguous.
	pending := []msg.Message{
		fm(0, 1), fm(0, 2), fm(0, 3), fm(0, 4),
		fm(1, 1), fm(1, 2),
		fm(2, 1), fm(2, 2), fm(2, 3),
	}
	out := fairInterleave(pending)
	if len(out) != len(pending) {
		t.Fatalf("interleave changed length: %d != %d", len(out), len(pending))
	}
	want := []ids.MsgID{
		{Sender: 0, Incarnation: 1, Seq: 1}, {Sender: 1, Incarnation: 1, Seq: 1}, {Sender: 2, Incarnation: 1, Seq: 1},
		{Sender: 0, Incarnation: 1, Seq: 2}, {Sender: 1, Incarnation: 1, Seq: 2}, {Sender: 2, Incarnation: 1, Seq: 2},
		{Sender: 0, Incarnation: 1, Seq: 3}, {Sender: 2, Incarnation: 1, Seq: 3},
		{Sender: 0, Incarnation: 1, Seq: 4},
	}
	for i, m := range out {
		if m.ID != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, m.ID, want[i])
		}
	}
}

func TestFairInterleaveSingleSenderUntouched(t *testing.T) {
	pending := []msg.Message{fm(1, 1), fm(1, 2), fm(1, 3)}
	out := fairInterleave(pending)
	for i, m := range out {
		if m.ID != pending[i].ID {
			t.Fatalf("single-sender slice reordered at %d: %v", i, m.ID)
		}
	}
}

// TestFairInterleaveBoundsTruncation drives the real overflow path: with a
// MaxBatch smaller than one hot sender's backlog, the proposed batch must
// still include every sender's head instead of only the lowest pid's run.
func TestFairInterleaveBoundsTruncation(t *testing.T) {
	pending := []msg.Message{
		fm(0, 1), fm(0, 2), fm(0, 3), fm(0, 4), fm(0, 5), fm(0, 6),
		fm(1, 1), fm(1, 2),
		fm(2, 1),
	}
	out := fairInterleave(pending)
	const maxBatch = 4
	batch := out[:maxBatch]
	seen := map[ids.ProcessID]int{}
	for _, m := range batch {
		seen[m.ID.Sender]++
	}
	for s := ids.ProcessID(0); s < 3; s++ {
		if seen[s] == 0 {
			t.Fatalf("sender %v starved out of the truncated batch: %v", s, seen)
		}
	}
	if seen[0] >= maxBatch {
		t.Fatalf("hot sender monopolized the batch: %v", seen)
	}
}
