package core

import (
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/wire"
)

// Core-channel message subtypes.
const (
	subGossip uint8 = 1 // gossip(k_p, Unordered_p)
	subState  uint8 = 2 // state(k_p - 1, Agreed_p)
)

// gossipTask periodically multisends gossip(k_p, Unordered_p): it
// disseminates data messages so every good process eventually proposes
// them, and lets a process that was down discover the most up-to-date round
// (§4.2).
func (p *Protocol) gossipTask() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.GossipInterval)
	defer ticker.Stop()
	p.sendGossip()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-ticker.C:
			p.sendGossip()
		}
	}
}

func (p *Protocol) sendGossip() {
	p.mu.Lock()
	p.lastGossip = time.Now()
	k := p.k
	truncated := false
	batch := p.unordered.Slice()
	if len(batch) > p.cfg.GossipMaxMessages {
		// The canonical prefix may exclude freshly added messages: keep
		// the eager buffer so the delta path still pushes them promptly.
		batch = batch[:p.cfg.GossipMaxMessages]
		truncated = len(p.eagerBuf) > 0
	} else {
		p.eagerBuf = nil // fully covered by this send
	}
	p.stats.GossipSent++
	p.mu.Unlock()

	p.gossipFrame(k, batch)
	if truncated {
		p.eagerGossip() // arms a deferred flush for the kept buffer
	}
}

// gossipFrame encodes and multisends one gossip(k, batch) frame — the
// shared wire format of the periodic and eager paths.
func (p *Protocol) gossipFrame(k uint64, batch []msg.Message) {
	w := wire.NewWriter(64)
	w.U8(subGossip)
	w.U64(k)
	msg.EncodeBatch(w, batch)
	p.net.Multisend(w.Bytes())
}

// eagerGossip pushes messages added since the last flush right after a
// local A-broadcast, so they reach the other sequencers without waiting
// for the next periodic tick. Unlike the periodic task it sends only the
// delta — re-sending the whole Unordered set per broadcast would make the
// hot path quadratic under load; repetition (which fairness needs) is the
// periodic task's job. A tiny guard coalesces very tight submission loops
// (it must stay well under the gossip interval, or it phase-locks onto the
// periodic ticker and every broadcast waits a full tick); messages skipped
// by the guard stay buffered for the next flush.
func (p *Protocol) eagerGossip() {
	p.mu.Lock()
	if len(p.eagerBuf) == 0 {
		p.mu.Unlock()
		return
	}
	guard := p.cfg.GossipInterval / 128
	if since := time.Since(p.lastGossip); since < guard {
		// Coalesce: arm a one-shot flush for when the guard expires, so
		// buffered messages never wait for the full periodic tick (the
		// submitters may all be blocked on them).
		if !p.flushArmed {
			p.flushArmed = true
			time.AfterFunc(guard-since, func() {
				p.mu.Lock()
				p.flushArmed = false
				stopped := p.stopped
				p.mu.Unlock()
				if !stopped {
					p.eagerGossip()
				}
			})
		}
		p.mu.Unlock()
		return
	}
	batch := p.eagerBuf
	if len(batch) > p.cfg.GossipMaxMessages {
		p.eagerBuf = batch[p.cfg.GossipMaxMessages:]
		batch = batch[:p.cfg.GossipMaxMessages]
	} else {
		p.eagerBuf = nil
	}
	remainder := len(p.eagerBuf) > 0
	k := p.k
	p.lastGossip = time.Now()
	p.stats.GossipSent++
	p.mu.Unlock()

	p.gossipFrame(k, batch)
	if remainder {
		p.eagerGossip() // arms a deferred flush for the truncated tail
	}
}

// OnMessage is the router handler for the core channel.
func (p *Protocol) OnMessage(from ids.ProcessID, payload []byte) {
	if len(payload) < 1 {
		return
	}
	r := wire.NewReader(payload)
	switch r.U8() {
	case subGossip:
		p.onGossip(from, r)
	case subState:
		p.onState(from, r)
	}
}

// onGossip merges the sender's Unordered set and compares round numbers
// ("upon receive gossip(k_q, U_q)", Fig. 2 / Fig. 3 line (d)).
func (p *Protocol) onGossip(from ids.ProcessID, r *wire.Reader) {
	kq := r.U64()
	batch := msg.DecodeBatch(r)
	if r.Err() != nil {
		return
	}

	p.mu.Lock()
	p.stats.GossipReceived++
	added := 0
	for _, m := range batch {
		if p.ds.contains(m.ID) {
			continue
		}
		if p.unordered.Add(m) {
			added++
		}
	}
	if added > 0 {
		p.notePendingLocked()
	}
	var sendState []byte
	lagging := p.cfg.Delta > 0 && p.k > kq+p.cfg.Delta
	// A peer below our GC floor can never learn those rounds through
	// Consensus again (we discarded them, Fig. 4 line (c)); only a state
	// transfer can unblock it, whatever Δ says. This closes a liveness
	// hole the paper leaves implicit in the tuning of Δ.
	gcForced := kq < p.gcFloor
	switch {
	case kq > p.k:
		// q is ahead: remember the most up-to-date round.
		if kq > p.gossipK {
			p.gossipK = kq
		}
	case from != p.cfg.PID && (lagging || gcForced):
		// q lagged behind: ship it our state (rate-limited per
		// destination to avoid flooding a recovering process).
		now := time.Now()
		if now.Sub(p.lastStateTo[from]) >= 2*p.cfg.GossipInterval {
			p.lastStateTo[from] = now
			w := wire.NewWriter(256)
			w.U8(subState)
			w.U64(p.k - 1)
			w.U64(p.gcFloor)
			p.ds.encode(w)
			sendState = w.Bytes()
			p.stats.StateSent++
		}
	}
	wakeNeeded := added > 0 || kq > p.k
	p.mu.Unlock()

	if wakeNeeded {
		p.poke()
	}
	if sendState != nil {
		p.net.Send(from, sendState)
	}
}

// onState handles a state message ("upon receive state(k_q, A_q)"): if this
// process is seriously late it adopts the state and skips the missed
// Consensus instances; otherwise it just notes the newer round.
func (p *Protocol) onState(from ids.ProcessID, r *wire.Reader) {
	ks := r.U64()
	floor := r.U64()
	ds := decodeDeliveryState(r)
	if ds == nil || r.Err() != nil {
		return
	}
	newK := ks + 1

	p.mu.Lock()
	// Adopt when seriously behind (the paper's Δ rule) or when the
	// sender garbage-collected rounds we still need (we could otherwise
	// never terminate them through Consensus).
	if (p.cfg.Delta > 0 && newK > p.k+p.cfg.Delta) || (p.k < floor && newK > p.k) {
		// Seriously behind: stage the adoption and interrupt every
		// in-flight decision wait (Fig. 3 line (e)); the pipeline
		// restarts from the adopted state (line (f)).
		if p.pending == nil || newK > p.pendingK {
			p.pending = ds
			p.pendingK = newK
		}
		p.interruptInflightLocked()
	} else {
		// Small de-synchronization: treat like gossip.
		if newK > p.gossipK {
			p.gossipK = newK
		}
	}
	p.mu.Unlock()
	p.poke()
}
