package core

import (
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Core-channel message subtypes.
const (
	subGossip uint8 = 1 // gossip(k_p, Unordered_p) — full payloads
	subState  uint8 = 2 // state(k_p - 1, Agreed_p)
	subDigest uint8 = 3 // gossip(k_p, IDs of Unordered_p) — anti-entropy digest
	subPull   uint8 = 4 // pull(IDs): please send these messages' payloads
	subFloor  uint8 = 5 // floor(merge frontier, topology epoch, topology) — cluster GC floor
)

// gossipTask periodically multisends gossip(k_p, Unordered_p): it
// disseminates data messages so every good process eventually proposes
// them, and lets a process that was down discover the most up-to-date round
// (§4.2).
func (p *Protocol) gossipTask() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.cfg.GossipInterval)
	defer ticker.Stop()
	p.sendGossip()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-ticker.C:
			p.sendGossip()
		}
	}
}

// sendGossip emits one periodic gossip frame. With DigestGossip the frame
// carries (k_p, message IDs) — a few bytes per unordered message instead
// of its payload; receivers pull only what they miss (see onDigest). The
// round-discovery half of gossip (§4.2 — "discover the most up-to-date
// round") rides k_p in both formats, so recovery catch-up is untouched;
// payload dissemination to processes that missed the eager push happens
// through the pull exchange (digest mode) or the full frame (classic
// mode).
//
// When the Unordered set exceeds GossipMaxMessages the window ROTATES
// across ticks (gossipCursor): a fixed canonical-prefix truncation would
// starve every message past the cut for as long as the set stays large —
// fairness needs repetition of *all* of Unordered, not its head.
func (p *Protocol) sendGossip() {
	p.mu.Lock()
	p.lastGossip = time.Now()
	k := p.k
	snap := p.unordered.Slice()
	max := p.cfg.GossipMaxMessages
	digest := p.cfg.DigestGossip
	var batch []msg.Message
	if len(snap) > max {
		start := p.gossipCursor % len(snap)
		batch = make([]msg.Message, 0, max)
		for i := 0; i < max; i++ {
			batch = append(batch, snap[(start+i)%len(snap)])
		}
		p.gossipCursor = (start + max) % len(snap)
	} else {
		batch = snap
		p.gossipCursor = 0
		if !digest {
			// Every pending eager payload just shipped in this frame. A
			// digest ships only IDs, so in digest mode the buffer is
			// never "covered" here — the eager path still owes peers the
			// payload push.
			p.eagerBuf = nil
		}
	}
	// Messages the frame did not carry as payloads (past the rotating
	// window, or advertised only by ID): keep the eager buffer armed so
	// the delta path pushes them promptly.
	pending := len(p.eagerBuf) > 0
	p.met.gossipSent.Inc()
	if digest {
		p.met.digestsSent.Inc()
	}
	// Ring mode: a payload-starved round must not rely on a single pull
	// surviving the fair-lossy net. Re-pull its still-missing payloads
	// every tick (per-message rate limit in lastPull applies) and poke the
	// sequencer as lost-wakeup insurance.
	var repull []ids.MsgID
	starving := p.starved != nil
	if starving {
		now := time.Now()
		for _, rec := range p.starved.recs {
			if p.ds.contains(rec.ID) || p.unordered.Contains(rec.ID) {
				continue
			}
			if t, seen := p.lastPull[rec.ID]; seen && now.Sub(t) < p.cfg.GossipInterval {
				continue
			}
			p.lastPull[rec.ID] = now
			repull = append(repull, rec.ID)
		}
		if len(repull) > 0 {
			p.met.pullsSent.Inc()
		}
	}
	p.mu.Unlock()

	if digest {
		p.digestFrame(k, batch)
	} else {
		p.gossipFrame(k, batch, ids.Nobody)
	}
	if fs := p.cfg.FloorSelf; fs != nil {
		// Piggyback the merge-floor frame on the periodic gossip cadence:
		// peers fold it into their cluster-floor view (group.FloorTracker),
		// and the attached topology epoch lets a process whose state
		// transfer skipped the reshard marker rounds resync its topology.
		floor, epoch, topo := fs()
		w := wire.GetWriter(64)
		w.U8(subFloor)
		w.U64(floor)
		w.U64(epoch)
		w.Bytes32(topo)
		p.net.Multisend(w.Bytes())
		wire.PutWriter(w)
	}
	if len(repull) > 0 {
		w := wire.GetWriter(64)
		w.U8(subPull)
		msg.EncodeIDs(w, repull)
		p.net.Multisend(w.Bytes())
		wire.PutWriter(w)
	}
	if starving {
		p.poke()
	}
	if pending {
		p.eagerGossip() // arms a deferred flush for the kept buffer
	}
}

// gossipFrame encodes one gossip(k, batch) full-payload frame — the shared
// wire format of the periodic (classic mode), eager, and pull-reply paths
// — and multisends it (to == ids.Nobody) or sends it to one peer.
func (p *Protocol) gossipFrame(k uint64, batch []msg.Message, to ids.ProcessID) {
	w := wire.GetWriter(64)
	w.U8(subGossip)
	w.U64(k)
	msg.EncodeBatch(w, batch)
	if to == ids.Nobody {
		p.net.Multisend(w.Bytes())
	} else {
		p.net.Send(to, w.Bytes())
	}
	wire.PutWriter(w)
}

// digestFrame encodes and multisends one digest(k, IDs) frame.
func (p *Protocol) digestFrame(k uint64, batch []msg.Message) {
	w := wire.GetWriter(64)
	w.U8(subDigest)
	w.U64(k)
	w.U64(uint64(len(batch)))
	for _, m := range batch {
		msg.EncodeID(w, m.ID)
	}
	p.net.Multisend(w.Bytes())
	wire.PutWriter(w)
}

// eagerGossip pushes messages added since the last flush right after a
// local A-broadcast, so they reach the other sequencers without waiting
// for the next periodic tick. Unlike the periodic task it sends only the
// delta — re-sending the whole Unordered set per broadcast would make the
// hot path quadratic under load; repetition (which fairness needs) is the
// periodic task's job. It always ships full payloads, including in digest
// mode: the delta is exactly the data peers cannot have yet, so an
// ID-only frame would only add a pull round-trip. A tiny guard coalesces
// very tight submission loops (it must stay well under the gossip
// interval, or it phase-locks onto the periodic ticker and every broadcast
// waits a full tick); messages skipped by the guard stay buffered for the
// next flush.
func (p *Protocol) eagerGossip() {
	p.mu.Lock()
	if len(p.eagerBuf) == 0 {
		p.mu.Unlock()
		return
	}
	guard := p.cfg.GossipInterval / 128
	if since := time.Since(p.lastGossip); since < guard {
		// Coalesce: arm a one-shot flush for when the guard expires, so
		// buffered messages never wait for the full periodic tick (the
		// submitters may all be blocked on them).
		if !p.flushArmed {
			p.flushArmed = true
			time.AfterFunc(guard-since, func() {
				p.mu.Lock()
				p.flushArmed = false
				stopped := p.stopped
				p.mu.Unlock()
				if !stopped {
					p.eagerGossip()
				}
			})
		}
		p.mu.Unlock()
		return
	}
	batch := p.eagerBuf
	if len(batch) > p.cfg.GossipMaxMessages {
		p.eagerBuf = batch[p.cfg.GossipMaxMessages:]
		batch = batch[:p.cfg.GossipMaxMessages]
	} else {
		p.eagerBuf = nil
	}
	remainder := len(p.eagerBuf) > 0
	k := p.k
	p.lastGossip = time.Now()
	p.met.gossipSent.Inc()
	p.mu.Unlock()

	p.gossipFrame(k, batch, ids.Nobody)
	if remainder {
		p.eagerGossip() // arms a deferred flush for the truncated tail
	}
}

// OnMessage is the router handler for the core channel.
func (p *Protocol) OnMessage(from ids.ProcessID, payload []byte) {
	if len(payload) < 1 {
		return
	}
	r := wire.NewReader(payload)
	switch r.U8() {
	case subGossip:
		p.onGossip(from, r)
	case subState:
		p.onState(from, r)
	case subDigest:
		p.onDigest(from, r)
	case subPull:
		p.onPull(from, r)
	case subFloor:
		p.onFloor(from, r)
	}
}

// onFloor handles a peer's merge-floor frame (cluster-wide GC floor lane).
func (p *Protocol) onFloor(from ids.ProcessID, r *wire.Reader) {
	floor := r.U64()
	epoch := r.U64()
	topo := r.BytesCopy()
	if r.Err() != nil {
		return
	}
	if cb := p.cfg.OnPeerFloor; cb != nil {
		cb(from, floor, epoch, topo)
	}
}

// noteRoundLocked implements the round-comparison half of "upon receive
// gossip(k_q, U_q)" shared by the full-payload and digest paths: remember
// a more up-to-date round, or ship state to a peer that lagged beyond Δ or
// fell under our GC floor. It returns the encoded state message to send
// (nil if none) — the caller transmits it outside the lock. p.mu held.
func (p *Protocol) noteRoundLocked(from ids.ProcessID, kq uint64) (sendState []byte) {
	lagging := p.cfg.Delta > 0 && p.k > kq+p.cfg.Delta
	// A peer below our GC floor can never learn those rounds through
	// Consensus again (we discarded them, Fig. 4 line (c)); only a state
	// transfer can unblock it, whatever Δ says. This closes a liveness
	// hole the paper leaves implicit in the tuning of Δ.
	gcForced := kq < p.gcFloor
	switch {
	case kq > p.k:
		// q is ahead: remember the most up-to-date round.
		if kq > p.gossipK {
			p.gossipK = kq
		}
	case from != p.cfg.PID && (lagging || gcForced):
		// q lagged behind: ship it our state (rate-limited per
		// destination to avoid flooding a recovering process).
		now := time.Now()
		if now.Sub(p.lastStateTo[from]) >= 2*p.cfg.GossipInterval {
			p.lastStateTo[from] = now
			w := wire.NewWriter(256)
			w.U8(subState)
			w.U64(p.k - 1)
			w.U64(p.gcFloor)
			p.ds.encode(w)
			sendState = w.Bytes()
			p.met.stateSent.Inc()
			cause := "peer lagging"
			if gcForced {
				// The transfer is forced by our GC floor, not by Δ: the
				// cluster-wide merge floor exists to make this rare (a
				// recovering process should find its rounds still live).
				p.met.stateSentGCForced.Inc()
				cause = "peer below gc floor"
			}
			p.fl.Event(obs.EvStateSent, p.cfg.Group, p.k, int64(from), int64(kq), cause)
		}
	}
	return sendState
}

// onGossip merges the sender's Unordered set and compares round numbers
// ("upon receive gossip(k_q, U_q)", Fig. 2 / Fig. 3 line (d)).
func (p *Protocol) onGossip(from ids.ProcessID, r *wire.Reader) {
	kq := r.U64()
	batch := msg.DecodeBatch(r)
	if r.Err() != nil {
		return
	}

	p.mu.Lock()
	p.met.gossipReceived.Inc()
	added := 0
	for _, m := range batch {
		if p.drained || p.ds.contains(m.ID) {
			// Drained: the sealed sequence is complete; gossiped leftovers
			// are orphans the resharding layer re-injects elsewhere, and
			// re-admitting them here would bounce them between peers forever.
			continue
		}
		if p.unordered.Add(m) {
			added++
			// A payload we had asked for by ID arrived: stamp the repair
			// hop so starved-round latency shows up in the trace plane.
			if _, pulled := p.lastPull[m.ID]; pulled {
				p.tr.Mark(m.ID, obs.StPullRepair)
			}
		}
	}
	if added > 0 {
		p.notePendingLocked()
	}
	sendState := p.noteRoundLocked(from, kq)
	wakeNeeded := added > 0 || kq > p.k
	p.mu.Unlock()

	if wakeNeeded {
		p.poke()
	}
	if sendState != nil {
		p.net.Send(from, sendState)
	}
}

// onDigest handles an ID-only gossip frame: the round comparison is
// identical to onGossip, and for every advertised message this process
// neither holds nor has delivered it sends one pull request back — the
// payloads then arrive as a unicast full-payload gossip frame (onPull).
// This is the anti-entropy loop: steady-state bandwidth is O(|Unordered|)
// IDs, and a process that missed the eager push (loss, or it was down)
// recovers exactly the payloads it misses.
func (p *Protocol) onDigest(from ids.ProcessID, r *wire.Reader) {
	kq := r.U64()
	idList := msg.DecodeIDs(r)
	if r.Err() != nil {
		return
	}

	p.mu.Lock()
	p.met.gossipReceived.Inc()
	now := time.Now()
	var missing []ids.MsgID
	for _, id := range idList {
		if p.drained || p.unordered.Contains(id) || p.ds.contains(id) {
			continue // drained: no pulls — the sealed sequence needs nothing
		}
		// Pull dedup: every peer advertises the same backlog within one
		// interval, so without it one missing message would draw a pull
		// to each of the N-1 senders and N-1 full-payload replies. One
		// pull per message per interval bounds the repair traffic; if
		// the reply is lost, the next interval's digests retry.
		if t, ok := p.lastPull[id]; ok && now.Sub(t) < p.cfg.GossipInterval {
			continue
		}
		p.lastPull[id] = now
		missing = append(missing, id)
	}
	if len(p.lastPull) > 8192 {
		for id, t := range p.lastPull {
			if now.Sub(t) >= p.cfg.GossipInterval {
				delete(p.lastPull, id)
			}
		}
	}
	sendState := p.noteRoundLocked(from, kq)
	if len(missing) > 0 {
		p.met.pullsSent.Inc()
	}
	wakeNeeded := kq > p.k
	p.mu.Unlock()

	if wakeNeeded {
		p.poke()
	}
	if len(missing) > 0 && from != p.cfg.PID {
		w := wire.GetWriter(64)
		w.U8(subPull)
		msg.EncodeIDs(w, missing)
		p.net.Send(from, w.Bytes())
		wire.PutWriter(w)
	}
	if sendState != nil {
		p.net.Send(from, sendState)
	}
}

// onPull serves a pull request: the requested messages still in Unordered
// go back as one unicast full-payload gossip frame (the digest protocol's
// payload fallback). Messages already ordered here are omitted — the
// requester learns them through Consensus or a state transfer, never as
// unordered payloads it might re-propose — EXCEPT in ring mode, where the
// delivery suffix also serves: a ring-mode requester pulls precisely
// because an ID is ordered but its payload never arrived, and this process
// may have delivered (and removed from Unordered) the only copy. The
// requester re-adding it to Unordered is harmless: a re-proposal of an
// already-ordered ID is deduplicated by appendBatch.
func (p *Protocol) onPull(from ids.ProcessID, r *wire.Reader) {
	idList := msg.DecodeIDs(r)
	if r.Err() != nil || len(idList) == 0 || from == p.cfg.PID {
		return
	}

	p.mu.Lock()
	batch := make([]msg.Message, 0, len(idList))
	for _, id := range idList {
		if len(batch) >= p.cfg.GossipMaxMessages {
			break // the next digest tick re-advertises the rest
		}
		if m, ok := p.unordered.Get(id); ok {
			batch = append(batch, m)
		} else if p.ringMode() {
			if i, ok := p.ds.index[id]; ok {
				batch = append(batch, p.ds.suffix[i].m)
			}
		}
	}
	k := p.k
	if len(batch) > 0 {
		p.met.pullsServed.Inc()
	}
	p.mu.Unlock()

	if len(batch) > 0 {
		p.gossipFrame(k, batch, from)
	}
}

// onState handles a state message ("upon receive state(k_q, A_q)"): if this
// process is seriously late it adopts the state and skips the missed
// Consensus instances; otherwise it just notes the newer round.
func (p *Protocol) onState(from ids.ProcessID, r *wire.Reader) {
	ks := r.U64()
	floor := r.U64()
	ds := decodeDeliveryState(r)
	if ds == nil || r.Err() != nil {
		return
	}
	newK := ks + 1

	p.mu.Lock()
	// Adopt when seriously behind (the paper's Δ rule) or when the
	// sender garbage-collected rounds we still need (we could otherwise
	// never terminate them through Consensus).
	if (p.cfg.Delta > 0 && newK > p.k+p.cfg.Delta) || (p.k < floor && newK > p.k) {
		// Seriously behind: stage the adoption and interrupt every
		// in-flight decision wait (Fig. 3 line (e)); the pipeline
		// restarts from the adopted state (line (f)).
		if p.pending == nil || newK > p.pendingK {
			p.pending = ds
			p.pendingK = newK
		}
		p.interruptInflightLocked()
	} else {
		// Small de-synchronization: treat like gossip.
		if newK > p.gossipK {
			p.gossipK = newK
		}
	}
	p.mu.Unlock()
	p.poke()
}
