package core_test

// Ring-dissemination integration tests: the ordering/dissemination split
// (payloads around the successor ring, ID+checksum vectors through
// consensus) must preserve uniform total order delivery under loss,
// successor crashes, payload starvation and crash-recovery replay.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dissem"
	"repro/internal/harness"
	"repro/internal/ids"
)

func TestRingModeDeliversEverywhere(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, RingDissem: true})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 20*time.Second)

	id, err := c.Broadcast(ctx, 0, []byte("ring hello"))
	if err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if err := c.AwaitDelivered(ctx, id, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyAll(0, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRingModeTotalOrderLossyNet(t *testing.T) {
	// Relay-loss variant: the lossy channel drops ring relay frames like
	// any other packet, so some deliveries must wait out the pull repair
	// path before the cursor advances.
	c := harness.NewCluster(harness.Options{
		N:          3,
		Seed:       707,
		Net:        harness.DefaultLossyNet(707),
		RingDissem: true,
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 120*time.Second)

	m, err := c.Run(ctx, harness.Workload{
		Senders:           []ids.ProcessID{0, 1, 2},
		MessagesPerSender: 20,
		Pipeline:          2,
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	if m.Errors > 0 {
		t.Fatalf("%d broadcast errors", m.Errors)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyAll(0, 1, 2); err != nil {
		t.Fatal(err)
	}
}

// TestRingModeStarvedDeliveryUnblocksViaPull forces every remote payload
// through the repair path: all rings are inert (publishes dropped, nothing
// relayed), so a decided ID vector always arrives before its payloads and
// delivery is gated until the targeted pull fills the gap.
func TestRingModeStarvedDeliveryUnblocksViaPull(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		N:    3,
		Seed: 808,
		Ring: func(ids.ProcessID) *dissem.Ring { return dissem.Inert() },
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 60*time.Second)

	var last ids.MsgID
	for i := 0; i < 5; i++ {
		id, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("starved-%d", i)))
		if err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
		last = id
	}
	if err := c.AwaitDelivered(ctx, last, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyAll(0, 1, 2); err != nil {
		t.Fatal(err)
	}

	var stalls, pulls uint64
	for _, n := range c.Nodes {
		if p := n.Proto(); p != nil {
			st := p.Stats()
			stalls += st.PayloadStalls
			pulls += st.PullsSent
		}
	}
	if stalls == 0 {
		t.Fatalf("expected payload-starved rounds with inert rings, got none (pulls=%d)", pulls)
	}
	t.Logf("payload stalls=%d pulls=%d", stalls, pulls)
}

// TestRingModeSuccessorCrashHeals crashes a broadcaster's ring successor
// mid-stream: the ring must heal around the suspect, messages ordered
// while the successor was down must still reach the survivors, and the
// recovered process must catch up on everything it missed.
func TestRingModeSuccessorCrashHeals(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 909, RingDissem: true})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 120*time.Second)

	// A first burst with everyone up: p0's relay route is 0 -> 1 -> 2.
	for i := 0; i < 5; i++ {
		if _, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatalf("broadcast pre-%d: %v", i, err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}

	// Kill p0's successor. Until suspicion kicks in, relays to p1 vanish;
	// afterwards the ring heals to 0 -> 2 and payloads flow again. Either
	// way nothing ordered may be lost.
	c.Crash(1)
	for i := 0; i < 10; i++ {
		if _, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("mid-%d", i))); err != nil {
			t.Fatalf("broadcast mid-%d: %v", i, err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyAll(0, 2); err != nil {
		t.Fatal(err)
	}

	// The successor recovers and must learn the messages ordered while it
	// was down (pull/state transfer), then rejoin the ring for new traffic.
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	id, err := c.Broadcast(ctx, 0, []byte("post-recovery"))
	if err != nil {
		t.Fatalf("broadcast post: %v", err)
	}
	if err := c.AwaitDelivered(ctx, id, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyAll(0, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRingModeCrashRecoveryReplay(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 1010, RingDissem: true})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 120*time.Second)

	for i := 0; i < 8; i++ {
		if _, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("r-%d", i))); err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}

	// The broadcaster crashes and replays its WAL: the unordered log holds
	// payloads locally, so replayed rounds must re-resolve against it.
	c.Crash(0)
	if _, err := c.Recover(0); err != nil {
		t.Fatal(err)
	}
	id, err := c.Broadcast(ctx, 0, []byte("after-replay"))
	if err != nil {
		t.Fatalf("broadcast after replay: %v", err)
	}
	if err := c.AwaitDelivered(ctx, id, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyAll(0, 1, 2); err != nil {
		t.Fatal(err)
	}
}
