package core
