package core_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/msg"
)

// countingCheckpointer is a trivial application: its state is the count of
// messages applied, encoded in decimal.
type countingCheckpointer struct {
	mu       sync.Mutex
	restores int
}

func (cc *countingCheckpointer) Checkpoint(prev []byte, delivered []msg.Message) []byte {
	count := 0
	if len(prev) > 0 {
		fmt.Sscanf(string(prev), "%d", &count)
	}
	return []byte(fmt.Sprintf("%d", count+len(delivered)))
}

func (cc *countingCheckpointer) Restore(app []byte) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.restores++
}

func (cc *countingCheckpointer) Restores() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.restores
}

func TestCheckpointShortensReplay(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		N:    3,
		Seed: 91,
		Core: core.Config{CheckpointEvery: 5},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 60*time.Second)

	for i := 0; i < 30; i++ {
		if _, err := c.Broadcast(ctx, 1, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AwaitRound(ctx, 1, 10); err != nil {
		t.Fatal(err)
	}
	// Force a checkpoint at a known point, then crash and recover.
	if err := c.Nodes[1].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	kAtCkpt := c.Nodes[1].Proto().Round()
	c.Crash(1)
	if _, err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	st := c.Nodes[1].Proto().Stats()
	if !st.RecoveredFromCkpt {
		t.Fatal("expected recovery from checkpoint")
	}
	// Replay must cover only the rounds after the checkpoint.
	if st.ReplayedRounds > c.Nodes[1].Proto().Round()-kAtCkpt+2 {
		t.Fatalf("replayed %d rounds, checkpoint was at %d", st.ReplayedRounds, kAtCkpt)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestAppCheckpointBoundsSuffix(t *testing.T) {
	ck := &countingCheckpointer{}
	c := harness.NewCluster(harness.Options{
		N:    3,
		Seed: 92,
		Core: core.Config{CheckpointEvery: 4, Checkpointer: ck},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 60*time.Second)

	for i := 0; i < 40; i++ {
		if _, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Nodes[0].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	base, suffix := c.Nodes[0].Proto().Sequence()
	if base.Pos == 0 {
		t.Fatal("expected a non-empty application checkpoint base")
	}
	if base.App == nil {
		t.Fatal("expected application state in the checkpoint")
	}
	// The folded prefix plus the suffix covers all deliveries.
	if got := base.Pos + uint64(len(suffix)); got < 40 {
		t.Fatalf("coverage %d < 40 messages", got)
	}
	// The VC must cover exactly the folded messages.
	var count int
	fmt.Sscanf(string(base.App), "%d", &count)
	if uint64(count) != base.Pos {
		t.Fatalf("app state folded %d messages, base position is %d", count, base.Pos)
	}
	if err := c.VerifySafety(); err != nil {
		t.Fatal(err)
	}
}

func TestStateTransferSkipsMissedRounds(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		N:    3,
		Seed: 93,
		Core: core.Config{CheckpointEvery: 10, Delta: 3},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 120*time.Second)

	// p2 goes down for many rounds; the others checkpoint and GC their
	// consensus logs, so p2 cannot replay the missed instances — it MUST
	// adopt a state transfer.
	c.Crash(2)
	for i := 0; i < 50; i++ {
		if _, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("gap%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AwaitRound(ctx, 0, 20); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[0].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].Proto().CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(2); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	st := c.Nodes[2].Proto().Stats()
	if st.StateAdopted == 0 {
		t.Fatal("expected p2 to adopt a state transfer")
	}
	if st.DeliveredByTransfer == 0 {
		t.Fatal("expected p2 to skip messages via the transfer")
	}
	sent := c.Nodes[0].Proto().Stats().StateSent + c.Nodes[1].Proto().Stats().StateSent
	if sent == 0 {
		t.Fatal("expected an up-to-date process to send a state message")
	}
}

func TestBatchedBroadcastSurvivesSenderCrash(t *testing.T) {
	for _, incremental := range []bool{false, true} {
		name := "full-log"
		if incremental {
			name = "incremental-log"
		}
		t.Run(name, func(t *testing.T) {
			c := harness.NewCluster(harness.Options{
				N:    3,
				Seed: 94,
				Core: core.Config{BatchedBroadcast: true, IncrementalLog: incremental},
			})
			defer c.Stop()
			if err := c.StartAll(); err != nil {
				t.Fatal(err)
			}
			ctx := ctxT(t, 60*time.Second)

			// With §5.4 batching, A-broadcast returns after logging
			// Unordered — before ordering. Crash the sender right
			// away: on recovery the logged messages must still make
			// it into the total order.
			var ids0 []ids.MsgID
			for i := 0; i < 5; i++ {
				id, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("logged%d", i)))
				if err != nil {
					t.Fatal(err)
				}
				ids0 = append(ids0, id)
			}
			c.Crash(0)
			if _, err := c.Recover(0); err != nil {
				t.Fatal(err)
			}
			st := c.Nodes[0].Proto().Stats()
			if st.RecoveredUnordered == 0 && !c.Nodes[0].Proto().Delivered(ids0[0]) {
				t.Fatal("unordered messages neither recovered nor already delivered")
			}
			for _, id := range ids0 {
				if err := c.AwaitDelivered(ctx, id, 0, 1, 2); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.VerifyAll(0, 1, 2); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFaultStormMaintainsSafetyAndLiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("fault storm is slow")
	}
	c := harness.NewCluster(harness.Options{
		N:    5,
		Seed: 95,
		Net:  harness.DefaultLossyNet(95),
		Core: core.Config{CheckpointEvery: 20, Delta: 10},
	})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 180*time.Second)

	faultCtx, stopFaults := context.WithTimeout(ctx, 3*time.Second)
	defer stopFaults()
	wait := c.RunFaults(faultCtx,
		harness.FaultSchedule{PID: 3, UpFor: 400 * time.Millisecond, DownFor: 200 * time.Millisecond},
		harness.FaultSchedule{PID: 4, UpFor: 300 * time.Millisecond, DownFor: 300 * time.Millisecond},
	)

	if _, err := c.Run(ctx, harness.Workload{
		Senders:           []ids.ProcessID{0, 1, 2},
		MessagesPerSender: 25,
	}); err != nil {
		t.Fatal(err)
	}
	wait()
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2, 3, 4); err != nil {
		t.Fatal(err)
	}
}
