package core_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/harness"
	"repro/internal/ids"
)

func ctxT(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestBroadcastDeliversEverywhere(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 20*time.Second)

	id, err := c.Broadcast(ctx, 0, []byte("hello"))
	if err != nil {
		t.Fatalf("broadcast: %v", err)
	}
	if err := c.AwaitDelivered(ctx, id, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyAll(0, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestTotalOrderManySendersParallel(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 101})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 60*time.Second)

	m, err := c.Run(ctx, harness.Workload{
		Senders:           []ids.ProcessID{0, 1, 2},
		MessagesPerSender: 30,
		Pipeline:          2,
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	if m.Errors > 0 {
		t.Fatalf("%d broadcast errors", m.Errors)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestBasicRecoveryReplaysFullHistory(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 7})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 30*time.Second)

	for i := 0; i < 10; i++ {
		if _, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
	}
	// Make sure p1 has participated in (hence logged proposals for) a few
	// rounds before crashing it.
	if err := c.AwaitRound(ctx, 1, 3); err != nil {
		t.Fatal(err)
	}
	// Crash p1 and recover it: the basic protocol must rebuild Agreed by
	// replaying the logged Consensus instances.
	c.Crash(1)
	if _, err := c.Recover(1); err != nil {
		t.Fatalf("recover: %v", err)
	}
	st := c.Nodes[1].Proto().Stats()
	if st.ReplayedRounds == 0 {
		t.Fatalf("expected a non-trivial replay, got %d rounds", st.ReplayedRounds)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveringProcessCatchesUpViaGossip(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 21})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 60*time.Second)

	// p2 goes down; the others keep ordering messages (p2 never proposed
	// in those rounds). When p2 recovers, gossip tells it it lagged and
	// it proposes empty sets for the missed rounds.
	c.Crash(2)
	for i := 0; i < 8; i++ {
		if _, err := c.Broadcast(ctx, 0, []byte(fmt.Sprintf("while-down-%d", i))); err != nil {
			t.Fatalf("broadcast: %v", err)
		}
	}
	if _, err := c.Recover(2); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestCrashedSenderMessageStillDelivered(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 33})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 30*time.Second)

	// The sender's broadcast returns (it is in Agreed), then the sender
	// crashes for good. Termination clause 2: everyone else must still
	// deliver it (they already ordered it).
	id, err := c.Broadcast(ctx, 2, []byte("last words"))
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(2)
	if err := c.AwaitDelivered(ctx, id, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifySafety(); err != nil {
		t.Fatal(err)
	}
}

func TestDeliverySequencesArePrefixRelated(t *testing.T) {
	c := harness.NewCluster(harness.Options{N: 3, Seed: 55})
	defer c.Stop()
	if err := c.StartAll(); err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t, 60*time.Second)

	if _, err := c.Run(ctx, harness.Workload{
		Senders:           []ids.ProcessID{0, 1, 2},
		MessagesPerSender: 15,
	}); err != nil {
		t.Fatal(err)
	}
	// Direct pairwise prefix check on the raw sequences. This is valid at
	// any instant (prefix-relatedness is an invariant, not a liveness
	// property), so no draining is needed before the snapshot.
	histories := make(map[ids.ProcessID][]ids.MsgID)
	for p := 0; p < 3; p++ {
		_, suffix := c.Nodes[p].Proto().Sequence()
		seq := make([]ids.MsgID, len(suffix))
		for i, d := range suffix {
			seq[i] = d.Msg.ID
		}
		histories[ids.ProcessID(p)] = seq
	}
	if err := check.VerifyPrefix(histories); err != nil {
		t.Fatal(err)
	}
	// Termination is a liveness property: drain before checking it.
	if err := c.AwaitAllDelivered(ctx, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
}
