package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/wire"
)

func m(s int32, inc uint32, seq uint64) msg.Message {
	return msg.Message{
		ID:      ids.MsgID{Sender: ids.ProcessID(s), Incarnation: inc, Seq: seq},
		Payload: []byte{byte(seq)},
	}
}

func TestAppendBatchAssignsContiguousPositions(t *testing.T) {
	d := newDeliveryState()
	out1 := d.appendBatch(0, []msg.Message{m(1, 1, 1), m(0, 1, 1)})
	if len(out1) != 2 {
		t.Fatalf("appended %d", len(out1))
	}
	// Canonical order within the batch: sender 0 first.
	if out1[0].Msg.ID.Sender != 0 || out1[0].Pos != 0 || out1[1].Pos != 1 {
		t.Fatalf("positions wrong: %+v", out1)
	}
	out2 := d.appendBatch(1, []msg.Message{m(2, 1, 1)})
	if out2[0].Pos != 2 || out2[0].Round != 1 {
		t.Fatalf("second batch: %+v", out2)
	}
	if d.nextPos() != 3 {
		t.Fatalf("nextPos = %d", d.nextPos())
	}
}

func TestAppendBatchIsIdempotentAcrossRounds(t *testing.T) {
	d := newDeliveryState()
	d.appendBatch(0, []msg.Message{m(0, 1, 1)})
	// The same message decided again in a later round is not re-delivered
	// (the ⊕ rule).
	out := d.appendBatch(1, []msg.Message{m(0, 1, 1), m(0, 1, 2)})
	if len(out) != 1 || out[0].Msg.ID.Seq != 2 {
		t.Fatalf("dedup failed: %+v", out)
	}
}

func TestFoldMovesSuffixIntoBase(t *testing.T) {
	d := newDeliveryState()
	d.appendBatch(0, []msg.Message{m(0, 1, 1), m(1, 1, 1)})
	d.appendBatch(1, []msg.Message{m(0, 1, 2)})
	d.fold([]byte("appstate"), 2)
	if len(d.suffix) != 0 {
		t.Fatal("suffix not cleared")
	}
	if d.base.Pos != 3 || d.base.Rounds != 2 || string(d.base.App) != "appstate" {
		t.Fatalf("base: %+v", d.base)
	}
	// Folded messages are still contained (via the VC).
	for _, id := range []ids.MsgID{m(0, 1, 1).ID, m(1, 1, 1).ID, m(0, 1, 2).ID} {
		if !d.contains(id) {
			t.Fatalf("folded message %v no longer contained", id)
		}
	}
	if d.contains(m(0, 1, 3).ID) {
		t.Fatal("future message contained")
	}
	// Deliveries after a fold continue at the folded position.
	out := d.appendBatch(2, []msg.Message{m(1, 1, 2)})
	if out[0].Pos != 3 {
		t.Fatalf("post-fold position = %d", out[0].Pos)
	}
}

func TestAdoptClonesState(t *testing.T) {
	src := newDeliveryState()
	src.appendBatch(0, []msg.Message{m(0, 1, 1)})
	src.fold([]byte("s"), 1)
	src.appendBatch(1, []msg.Message{m(1, 1, 1)})

	dst := newDeliveryState()
	dst.adopt(src)
	if !dst.contains(m(0, 1, 1).ID) || !dst.contains(m(1, 1, 1).ID) {
		t.Fatal("adopted state incomplete")
	}
	// Mutating the source must not affect the adopted copy.
	src.appendBatch(2, []msg.Message{m(2, 1, 1)})
	src.base.VC.Observe(m(9, 1, 9).ID)
	if dst.contains(m(2, 1, 1).ID) || dst.contains(m(9, 1, 9).ID) {
		t.Fatal("adopt aliased the source")
	}
}

func TestDeliveryStateEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		d := newDeliveryState()
		round := uint64(0)
		for r := 0; r < 5; r++ {
			batch := make([]msg.Message, rng.IntN(4))
			for i := range batch {
				batch[i] = m(int32(rng.IntN(3)), 1, rng.Uint64N(20)+1)
			}
			d.appendBatch(round, batch)
			round++
			if rng.IntN(3) == 0 {
				d.fold([]byte{byte(r)}, round)
			}
		}
		w := wire.NewWriter(0)
		d.encode(w)
		got := decodeDeliveryState(wire.NewReader(w.Bytes()))
		if got == nil {
			return false
		}
		if got.base.Pos != d.base.Pos || got.base.Rounds != d.base.Rounds {
			return false
		}
		if !got.base.VC.Equal(d.base.VC) {
			return false
		}
		if len(got.suffix) != len(d.suffix) {
			return false
		}
		for i := range d.suffix {
			if got.suffix[i].m.ID != d.suffix[i].m.ID || got.suffix[i].round != d.suffix[i].round {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeDeliveryStateRejectsGarbage(t *testing.T) {
	if decodeDeliveryState(wire.NewReader([]byte{0xff, 0x01})) != nil {
		t.Fatal("garbage decoded")
	}
}

// TestTwoStatesSameBatchesConverge is the Total Order engine-room property:
// two delivery states fed the same per-round batches (in any within-batch
// permutation) are identical.
func TestTwoStatesSameBatchesConverge(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		a, b := newDeliveryState(), newDeliveryState()
		for round := uint64(0); round < 8; round++ {
			batch := make([]msg.Message, rng.IntN(5))
			for i := range batch {
				batch[i] = m(int32(rng.IntN(3)), 1, rng.Uint64N(25)+1)
			}
			perm := make([]msg.Message, len(batch))
			copy(perm, batch)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			a.appendBatch(round, batch)
			b.appendBatch(round, perm)
		}
		da, db := a.deliveries(), b.deliveries()
		if len(da) != len(db) {
			return false
		}
		for i := range da {
			if da[i].Msg.ID != db[i].Msg.ID || da[i].Pos != db[i].Pos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
