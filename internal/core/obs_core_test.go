package core

import (
	"sync"
	"testing"

	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/wire"
)

// The sequencer retries a starved round on every wake (payload arrival,
// gossip tick, pull reply), so the stall counter must count the round's
// first park only — one stall event per starved round, not one per retry.
func TestPayloadStallCountedOncePerRound(t *testing.T) {
	p, _, _ := newTestProtocol(Config{})
	mm := m(1, 1, 1)
	recs := []msg.IDRec{msg.Rec(mm)}

	if _, ok := p.resolvePayloads(3, recs); ok {
		t.Fatal("resolved a round whose payload is missing")
	}
	for i := 0; i < 5; i++ { // retries of the same parked round
		if _, ok := p.resolvePayloads(3, recs); ok {
			t.Fatal("resolved without the payload")
		}
	}
	if got := p.Stats().PayloadStalls; got != 1 {
		t.Fatalf("PayloadStalls = %d after retries of one round, want 1", got)
	}

	// A different round parking is a new stall.
	if _, ok := p.resolvePayloads(4, recs); ok {
		t.Fatal("resolved without the payload")
	}
	if got := p.Stats().PayloadStalls; got != 2 {
		t.Fatalf("PayloadStalls = %d after second round parked, want 2", got)
	}

	// Arrival unblocks the round without further counting.
	p.mu.Lock()
	p.unordered.Add(mm)
	p.mu.Unlock()
	batch, ok := p.resolvePayloads(4, recs)
	if !ok || len(batch) != 1 {
		t.Fatalf("resolve after arrival: ok=%v len=%d", ok, len(batch))
	}
	if got := p.Stats().PayloadStalls; got != 2 {
		t.Fatalf("PayloadStalls = %d after resolution, want 2", got)
	}
}

// Registry counters are process-lifetime monotonic (the Prometheus
// contract), while Protocol.Stats reports per-incarnation values by
// subtracting the baseline captured at New. A recovering incarnation must
// therefore start its Stats at zero — recovery replay re-commits rounds,
// but it can never re-inflate HeartbeatRounds or PayloadStalls, which only
// the live sequencer and delivery gate increment.
func TestIncarnationStatsResetOverLifetimeCounters(t *testing.T) {
	plane := obs.New(obs.Options{})
	cfg := Config{PID: 0, N: 3, Incarnation: 1, Obs: plane}
	p1 := New(cfg, storage.NewMem(), newFakeCons(), &fakeNet{})
	p1.met.heartbeatRounds.Inc()
	p1.met.heartbeatRounds.Inc()
	p1.met.payloadStalls.Inc()
	if st := p1.Stats(); st.HeartbeatRounds != 2 || st.PayloadStalls != 1 {
		t.Fatalf("incarnation 1 stats: %+v", st)
	}

	cfg.Incarnation = 2
	p2 := New(cfg, storage.NewMem(), newFakeCons(), &fakeNet{})
	if st := p2.Stats(); st.HeartbeatRounds != 0 || st.PayloadStalls != 0 {
		t.Fatalf("recovered incarnation inherited counters: %+v", st)
	}

	// The exported series keeps the cumulative process-lifetime total.
	hb := plane.Reg().Counter(obs.GroupLabel("abcast.core.heartbeat_rounds", 0))
	if hb.Value() != 2 {
		t.Fatalf("lifetime heartbeat_rounds = %d, want 2", hb.Value())
	}
}

// Stats must be safe to read while deliveries and broadcasts run — it is
// built from atomic counter reads, not the protocol mutex. Run with -race.
func TestStatsRaceUnderConcurrentDelivery(t *testing.T) {
	p, _, _ := newTestProtocol(Config{})
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			_, _ = p.BroadcastAsync([]byte("x"))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := uint64(0); k < 200; k++ {
			w := wire.NewWriter(0)
			msg.EncodeBatch(w, []msg.Message{m(1, 1, k+1)})
			p.commit(k, w.Bytes())
		}
	}()
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				close(done)
				return
			default:
				_ = p.Stats()
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	st := p.Stats()
	if st.Broadcasts != 300 || st.Delivered != 200 {
		t.Fatalf("final stats: %+v", st)
	}
}
