package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/storage"
	"repro/internal/wire"
)

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.GossipInterval <= 0 || c.GossipMaxMessages <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

func TestBroadcastAssignsMonotoneIDs(t *testing.T) {
	p, _, _ := newTestProtocol(Config{})
	id1, err := p.BroadcastAsync([]byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := p.BroadcastAsync([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if id1.Sender != 0 || id1.Incarnation != 1 || id1.Seq != 1 {
		t.Fatalf("id1 = %v", id1)
	}
	if id2.Seq != 2 {
		t.Fatalf("id2 = %v", id2)
	}
	if p.Stats().Broadcasts != 2 {
		t.Fatal("broadcasts not counted")
	}
}

func TestBroadcastCopiesPayload(t *testing.T) {
	p, _, _ := newTestProtocol(Config{})
	buf := []byte("mutable")
	id, _ := p.BroadcastAsync(buf)
	buf[0] = 'X'
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, mm := range p.unordered.Slice() {
		if mm.ID == id && string(mm.Payload) != "mutable" {
			t.Fatal("payload aliased caller buffer")
		}
	}
}

func TestBroadcastAfterStopFails(t *testing.T) {
	p, _, _ := newTestProtocol(Config{})
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	if _, err := p.BroadcastAsync([]byte("x")); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
}

func TestBatchedBroadcastLogsBeforeReturn(t *testing.T) {
	p, _, _ := newTestProtocol(Config{BatchedBroadcast: true})
	p.ctx, p.cancel = context.WithCancel(context.Background())
	defer p.cancel()
	ctx := context.Background()
	if _, err := p.Broadcast(ctx, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	// The Unordered cell must already be on stable storage.
	raw, ok, err := p.st.Get(keyUnord)
	if err != nil || !ok {
		t.Fatalf("unordered cell missing: %v %v", ok, err)
	}
	r := wire.NewReader(raw)
	set := msg.DecodeSet(r)
	if set.Len() != 1 {
		t.Fatalf("logged set len = %d", set.Len())
	}
}

func TestBatchedIncrementalBroadcastAppendsRecord(t *testing.T) {
	p, _, _ := newTestProtocol(Config{BatchedBroadcast: true, IncrementalLog: true})
	p.ctx, p.cancel = context.WithCancel(context.Background())
	defer p.cancel()
	for i := 0; i < 3; i++ {
		if _, err := p.Broadcast(context.Background(), []byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := p.st.Records(keyUnordLog)
	if err != nil || len(recs) != 3 {
		t.Fatalf("incremental records = %d (%v)", len(recs), err)
	}
}

func TestRecoverUnorderedMergesCellAndLog(t *testing.T) {
	st := storage.NewMem()
	// Simulate a previous incarnation: full cell with one message plus
	// two incremental records (one duplicated, one torn).
	mkMsg := func(seq uint64) msg.Message {
		return msg.Message{
			ID:      ids.MsgID{Sender: 0, Incarnation: 1, Seq: seq},
			Payload: []byte{byte(seq)},
		}
	}
	w := wire.NewWriter(0)
	set := msg.NewSet()
	set.Add(mkMsg(1))
	set.Encode(w)
	st.Put(keyUnord, w.Bytes())

	w2 := wire.NewWriter(0)
	mkMsg(2).Encode(w2)
	st.Append(keyUnordLog, w2.Bytes())
	w3 := wire.NewWriter(0)
	mkMsg(1).Encode(w3) // duplicate of the cell entry
	st.Append(keyUnordLog, w3.Bytes())
	st.Append(keyUnordLog, []byte{0xff}) // torn record

	cfg := Config{PID: 0, N: 3, Incarnation: 2, BatchedBroadcast: true}
	p := New(cfg, st, newFakeCons(), &fakeNet{})
	if err := p.recoverUnordered(); err != nil {
		t.Fatal(err)
	}
	if p.UnorderedLen() != 2 {
		t.Fatalf("recovered %d messages, want 2", p.UnorderedLen())
	}
	if p.Stats().RecoveredUnordered != 2 {
		t.Fatalf("stats: %+v", p.Stats())
	}
}

func TestCommitNotifiesWaitersAndSubtractsUnordered(t *testing.T) {
	var delivered []Delivery
	p, _, _ := newTestProtocol(Config{
		OnDeliver: func(d Delivery) { delivered = append(delivered, d) },
	})
	mm := m(0, 1, 1)
	ch := make(chan struct{})
	p.mu.Lock()
	p.unordered.Add(mm)
	p.waiters[mm.ID] = []chan struct{}{ch}
	p.mu.Unlock()

	w := wire.NewWriter(0)
	msg.EncodeBatch(w, []msg.Message{mm})
	p.commit(0, w.Bytes())

	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("waiter not notified")
	}
	if p.UnorderedLen() != 0 {
		t.Fatal("ordered message still in Unordered")
	}
	if p.Round() != 1 {
		t.Fatalf("round = %d", p.Round())
	}
	if len(delivered) != 1 || delivered[0].Pos != 0 {
		t.Fatalf("deliveries: %+v", delivered)
	}
	st := p.Stats()
	if st.Rounds != 1 || st.Delivered != 1 || st.EmptyRounds != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCommitEmptyRoundCounted(t *testing.T) {
	p, _, _ := newTestProtocol(Config{})
	w := wire.NewWriter(0)
	msg.EncodeBatch(w, nil)
	p.commit(0, w.Bytes())
	if p.Stats().EmptyRounds != 1 {
		t.Fatal("empty round not counted")
	}
}

func TestSequenceExposesBaseAndSuffix(t *testing.T) {
	p, _, _ := newTestProtocol(Config{})
	w := wire.NewWriter(0)
	msg.EncodeBatch(w, []msg.Message{m(1, 1, 1)})
	p.commit(0, w.Bytes())
	base, suffix := p.Sequence()
	if base.Pos != 0 || len(suffix) != 1 {
		t.Fatalf("sequence: base=%+v suffix=%d", base, len(suffix))
	}
	if !p.Delivered(m(1, 1, 1).ID) {
		t.Fatal("Delivered lookup failed")
	}
	if p.Delivered(m(2, 1, 9).ID) {
		t.Fatal("phantom delivery")
	}
}

func TestCheckpointNowFoldsWithCheckpointer(t *testing.T) {
	fold := &recordingCheckpointer{}
	p, _, cons := newTestProtocol(Config{CheckpointEvery: 100, Checkpointer: fold})
	w := wire.NewWriter(0)
	msg.EncodeBatch(w, []msg.Message{m(1, 1, 1), m(2, 1, 1)})
	p.commit(0, w.Bytes())
	if err := p.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	base, suffix := p.Sequence()
	if base.Pos != 2 || len(suffix) != 0 {
		t.Fatalf("fold failed: base=%+v suffix=%d", base, len(suffix))
	}
	if fold.calls != 1 || fold.lastCount != 2 {
		t.Fatalf("checkpointer: %+v", fold)
	}
	if _, ok, _ := p.st.Get(keyCkpt); !ok {
		t.Fatal("checkpoint cell not written")
	}
	cons.mu.Lock()
	defer cons.mu.Unlock()
	if cons.floor != 1 {
		t.Fatalf("consensus floor = %d", cons.floor)
	}
	if p.Stats().Checkpoints != 1 {
		t.Fatal("checkpoint not counted")
	}
}

type recordingCheckpointer struct {
	calls     int
	lastCount int
}

func (r *recordingCheckpointer) Checkpoint(prev []byte, delivered []msg.Message) []byte {
	r.calls++
	r.lastCount = len(delivered)
	return append(prev, byte(len(delivered)))
}

func (r *recordingCheckpointer) Restore([]byte) {}

func TestCheckpointNowWithoutCheckpointerKeepsSuffix(t *testing.T) {
	p, _, _ := newTestProtocol(Config{CheckpointEvery: 100})
	w := wire.NewWriter(0)
	msg.EncodeBatch(w, []msg.Message{m(1, 1, 1)})
	p.commit(0, w.Bytes())
	if err := p.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	// §5.1 without §5.2: the full queue is logged, nothing is folded.
	base, suffix := p.Sequence()
	if base.Pos != 0 || len(suffix) != 1 {
		t.Fatalf("unexpected fold: base=%+v suffix=%d", base, len(suffix))
	}
}

func TestDoubleStartRejected(t *testing.T) {
	p, _, _ := newTestProtocol(Config{})
	p.mu.Lock()
	p.started = true
	p.mu.Unlock()
	if err := p.Start(context.Background()); err == nil {
		t.Fatal("double start accepted")
	}
}
