package core

import (
	"repro/internal/ids"
	"repro/internal/msg"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// suffixEntry is one explicitly delivered message and the Consensus round
// that ordered it.
type suffixEntry struct {
	m     msg.Message
	round uint64
}

// deliveryState is the Agreed queue generalized per §5.2: an application
// checkpoint (base) plus the messages delivered after it (suffix). With no
// checkpointing the base stays empty and the suffix is the whole queue —
// the basic protocol's Agreed.
type deliveryState struct {
	base   Snapshot
	suffix []suffixEntry
	index  map[ids.MsgID]int // id -> suffix position
}

func newDeliveryState() *deliveryState {
	return &deliveryState{
		base:  Snapshot{VC: vclock.New()},
		index: make(map[ids.MsgID]int),
	}
}

// contains implements the membership predicate of the redefined delivery
// sequence: explicit in the suffix, or covered by the base checkpoint's
// vector clock.
func (d *deliveryState) contains(id ids.MsgID) bool {
	if _, ok := d.index[id]; ok {
		return true
	}
	return d.base.VC.Covers(id)
}

// nextPos is the global position the next delivered message will get.
func (d *deliveryState) nextPos() uint64 {
	return d.base.Pos + uint64(len(d.suffix))
}

// appendBatch applies the ⊕ rule for the batch decided by round: messages
// not yet contained are appended in canonical order. It returns the new
// deliveries with their agreed positions.
func (d *deliveryState) appendBatch(round uint64, batch []msg.Message) []Delivery {
	sorted := make([]msg.Message, len(batch))
	copy(sorted, batch)
	msg.SortCanonical(sorted)
	var out []Delivery
	for _, m := range sorted {
		if d.contains(m.ID) {
			continue
		}
		d.index[m.ID] = len(d.suffix)
		d.suffix = append(d.suffix, suffixEntry{m: m, round: round})
		out = append(out, Delivery{Msg: m, Round: round, Pos: d.base.Pos + uint64(len(d.suffix)) - 1})
	}
	return out
}

// deliveries returns the suffix as Delivery values (for re-delivery on
// recovery and for the pull API).
func (d *deliveryState) deliveries() []Delivery {
	out := make([]Delivery, len(d.suffix))
	for i, e := range d.suffix {
		out[i] = Delivery{Msg: e.m, Round: e.round, Pos: d.base.Pos + uint64(i)}
	}
	return out
}

// suffixMessagesPrefix returns the first cut suffix messages in delivery
// order (cut as computed by cutBelow).
func (d *deliveryState) suffixMessagesPrefix(cut int) []msg.Message {
	out := make([]msg.Message, cut)
	for i := 0; i < cut; i++ {
		out[i] = d.suffix[i].m
	}
	return out
}

// cutBelow returns the length of the suffix prefix whose rounds are below
// floor.
func (d *deliveryState) cutBelow(floor uint64) int {
	cut := 0
	for cut < len(d.suffix) && d.suffix[cut].round < floor {
		cut++
	}
	return cut
}

// fold replaces the whole delivered prefix with a checkpoint: the base
// absorbs the suffix (vector clock + position) and adopts the given
// application state. rounds is the next round number at the time of the
// fold (all suffix rounds are below it).
func (d *deliveryState) fold(app []byte, rounds uint64) {
	d.foldBelow(app, rounds)
}

// foldBelow folds only the suffix entries of rounds below floor into the
// base — the merge-floor generalization of fold: entries of rounds at or
// above floor keep their explicit per-round form so a cross-group merge
// (batch or streaming) can still reconstruct their interleave. app is the
// application state containing every folded message.
func (d *deliveryState) foldBelow(app []byte, floor uint64) {
	d.foldPrefix(app, d.cutBelow(floor), floor)
}

// foldPrefix is foldBelow with the suffix cut point already computed
// (CheckpointNow scans the suffix once and reuses it).
func (d *deliveryState) foldPrefix(app []byte, cut int, floor uint64) {
	for _, e := range d.suffix[:cut] {
		d.base.VC.Observe(e.m.ID)
	}
	d.base.Pos += uint64(cut)
	if floor > d.base.Rounds {
		d.base.Rounds = floor
	}
	d.base.App = app
	rest := d.suffix[cut:]
	d.suffix = make([]suffixEntry, len(rest))
	copy(d.suffix, rest)
	d.index = make(map[ids.MsgID]int, len(rest))
	for i, e := range d.suffix {
		d.index[e.m.ID] = i
	}
}

// adopt replaces the whole state with another process's (state transfer,
// §5.3, or checkpoint retrieval on recovery).
func (d *deliveryState) adopt(o *deliveryState) {
	d.base = Snapshot{
		App:    o.base.App,
		VC:     o.base.VC.Clone(),
		Rounds: o.base.Rounds,
		Pos:    o.base.Pos,
	}
	d.suffix = make([]suffixEntry, len(o.suffix))
	copy(d.suffix, o.suffix)
	d.index = make(map[ids.MsgID]int, len(o.index))
	for id, i := range o.index {
		d.index[id] = i
	}
}

// snapshotBase returns a copy of the base snapshot.
func (d *deliveryState) snapshotBase() Snapshot {
	return Snapshot{
		App:    d.base.App,
		VC:     d.base.VC.Clone(),
		Rounds: d.base.Rounds,
		Pos:    d.base.Pos,
	}
}

// encode serializes the full state (base + suffix with rounds).
func (d *deliveryState) encode(w *wire.Writer) {
	w.Bool(d.base.App != nil)
	w.Bytes32(d.base.App)
	d.base.VC.Encode(w)
	w.U64(d.base.Rounds)
	w.U64(d.base.Pos)
	w.U64(uint64(len(d.suffix)))
	for _, e := range d.suffix {
		w.U64(e.round)
		e.m.Encode(w)
	}
}

// decodeDeliveryState reads a state written by encode; nil on corruption.
func decodeDeliveryState(r *wire.Reader) *deliveryState {
	d := newDeliveryState()
	hasApp := r.Bool()
	app := r.BytesCopy()
	if !hasApp {
		app = nil
	}
	vc := vclock.Decode(r)
	rounds := r.U64()
	pos := r.U64()
	n := r.U64()
	if r.Err() != nil {
		return nil
	}
	d.base = Snapshot{App: app, VC: vc, Rounds: rounds, Pos: pos}
	for i := uint64(0); i < n; i++ {
		round := r.U64()
		m := msg.DecodeMessage(r)
		if r.Err() != nil {
			return nil
		}
		if _, dup := d.index[m.ID]; dup {
			continue
		}
		d.index[m.ID] = len(d.suffix)
		d.suffix = append(d.suffix, suffixEntry{m: m, round: round})
	}
	return d
}
