package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/wire"
)

// checkpointTask implements Fig. 4's checkpoint task: every
// CheckpointEvery rounds it logs (k_p, Agreed_p) — folding the delivered
// suffix into an application-level checkpoint when a Checkpointer is
// configured — and discards Consensus state below k_p (line (c)).
func (p *Protocol) checkpointTask() {
	defer p.wg.Done()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-p.ckptCh:
			_ = p.CheckpointNow()
		}
	}
}

// CheckpointNow performs one checkpoint immediately (Fig. 4 lines (b)/(c)).
// It is exported so applications and experiments can force a checkpoint at
// a chosen moment; the periodic task calls it too.
func (p *Protocol) CheckpointNow() error {
	p.mu.Lock()
	if p.cfg.Checkpointer != nil {
		// The fold floor: everything delivered, unless a merge floor
		// retains the per-round structure of rounds the process-wide
		// merge frontier has not yet passed.
		floor := p.k
		if p.cfg.MergeFloor != nil {
			if f := p.cfg.MergeFloor(); f < floor {
				floor = f
			}
		}
		if cut := p.ds.cutBelow(floor); cut > 0 {
			// (b) Agreed_p ← (A-checkpoint(Agreed_p), VC(Agreed_p)): the
			// application folds the delivered prefix below the floor into
			// its state; the checkpoint vector clock replaces the explicit
			// messages.
			app := p.cfg.Checkpointer.Checkpoint(p.ds.base.App, p.ds.suffixMessagesPrefix(cut))
			p.ds.foldPrefix(app, cut, floor)
		}
	}
	w := wire.GetWriter(256)
	defer wire.PutWriter(w)
	w.U64(p.k)
	p.ds.encode(w)
	k := p.k
	p.met.checkpoints.Inc()

	// Compact the incremental Unordered log under the same lock that
	// Broadcast appends under, so no record is lost.
	var compactErr error
	if p.cfg.BatchedBroadcast && p.cfg.IncrementalLog {
		uw := wire.GetWriter(64)
		p.unordered.Encode(uw)
		// Put copies synchronously on every engine, so the buffer can go
		// back to the pool as soon as the call returns.
		if err := p.st.Put(keyUnord, uw.Bytes()); err != nil {
			compactErr = err
		} else if err := p.st.Delete(keyUnordLog); err != nil {
			compactErr = err
		}
		wire.PutWriter(uw)
	}
	p.mu.Unlock()

	if compactErr != nil {
		return fmt.Errorf("core: compact unordered log: %w", compactErr)
	}
	// log(k_p, Agreed_p)
	if err := p.st.Put(keyCkpt, w.Bytes()); err != nil {
		return fmt.Errorf("core: log checkpoint: %w", err)
	}
	// (c) Proposed_p[i], i < k_p can be discarded from the log — capped
	// by the cluster-wide durable floor when one is wired: a peer whose
	// own recoverable prefix ends below k still needs those instances to
	// re-learn its missing rounds through Consensus, and discarding them
	// would force it into a state transfer (the gcFloor path).
	discard := k
	if p.cfg.DiscardFloor != nil {
		if f := p.cfg.DiscardFloor(); f < discard {
			discard = f
		}
	}
	// The floor is persisted so a recovering incarnation knows how much
	// of its Consensus log actually survived (gcFloor must reflect what
	// was discarded, not the checkpoint counter).
	fw := wire.GetWriter(16)
	fw.U64(discard)
	err := p.st.Put(keyGCFloor, fw.Bytes())
	wire.PutWriter(fw)
	if err != nil {
		return fmt.Errorf("core: log gc floor: %w", err)
	}
	if err := p.cons.DiscardBelow(discard); err != nil {
		return fmt.Errorf("core: discard consensus log: %w", err)
	}
	p.fl.Event(obs.EvCheckpoint, p.cfg.Group, k, int64(discard), 0, "")
	p.mu.Lock()
	if discard > p.gcFloor {
		p.gcFloor = discard
	}
	p.mu.Unlock()
	if cb := p.cfg.OnCheckpoint; cb != nil {
		cb(k)
	}
	return nil
}
